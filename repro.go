// Package repro is the public facade of the reproduction of Didona et al.,
// "Distributed Transactional Systems Cannot Be Fast" (SPAA 2019).
//
// It re-exports the stable entry points:
//
//   - Protocols / Protocol: the registry of 13 modeled storage systems
//     (the Table 1 systems, the §3.4 corner designs and the two
//     "impossible" victim protocols the theorem refutes);
//   - Characterize / Table1: regenerate the paper's Table 1 from measured
//     behaviour (rounds, values per message, blocking, write-transaction
//     support, consistency checks);
//   - RunTheorem: run the mechanical adversary of Theorems 1 and 2 against
//     any protocol — it either names the property the protocol sacrifices
//     or constructs a causal-consistency-violating execution;
//   - MeasureLatency / LatencySweep: the latency/staleness experiments;
//   - MeasureThroughput / ThroughputSweep: closed-loop concurrent load
//     runs (many clients, per-txn latency, committed txns per virtual
//     second) built on the internal/driver harness;
//   - Deploy: build a simulated deployment for custom experiments.
//
// See DESIGN.md for the layer architecture and system inventory and
// EXPERIMENTS.md for how to run the experiments and benchmarks.
package repro

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/workload"
)

// Protocol is a modeled storage system.
type Protocol = protocol.Protocol

// Deployment is a protocol instantiated on a simulated kernel.
type Deployment = protocol.Deployment

// Config parameterizes a deployment.
type Config = protocol.Config

// Verdict is the outcome of the theorem adversary.
type Verdict = adversary.Verdict

// Row is a measured Table 1 row.
type Row = core.Row

// LatencyReport is the outcome of a latency experiment.
type LatencyReport = core.LatencyReport

// ThroughputReport is the outcome of a closed-loop throughput run.
type ThroughputReport = core.ThroughputReport

// LoadCurve is a swept open-loop latency–throughput curve.
type LoadCurve = core.LoadCurve

// Mix describes a workload.
type Mix = workload.Mix

// Protocols returns the names of every modeled system.
func Protocols() []string { return core.Names() }

// Lookup returns the protocol with the given name.
func Lookup(name string) (Protocol, error) {
	p := core.ByName(name)
	if p == nil {
		return nil, fmt.Errorf("repro: unknown protocol %q (have %v)", name, core.Names())
	}
	return p, nil
}

// Deploy builds a deployment of the named protocol and initializes the
// objects (the paper's Q_0).
func Deploy(name string, cfg Config) (*Deployment, error) {
	p, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	d := protocol.Deploy(p, cfg)
	if err := d.InitAll(400_000); err != nil {
		return nil, err
	}
	return d, nil
}

// Characterize measures one protocol's Table 1 row.
func Characterize(name string, seeds []int64) (Row, error) {
	p, err := Lookup(name)
	if err != nil {
		return Row{}, err
	}
	return core.Characterize(p, seeds)
}

// Table1 regenerates the paper's Table 1 (measured) for all protocols.
func Table1(seeds []int64) (string, error) {
	rows, err := core.Table1(seeds)
	if err != nil {
		return "", err
	}
	return core.FormatTable1(rows), nil
}

// RunTheorem runs the adversary of Theorem 1 against the named protocol.
func RunTheorem(name string) (*Verdict, error) {
	p, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return adversary.NewAttack(p).Run()
}

// RunTheoremPartial runs the general (Theorem 2) attack: m servers,
// partially replicated objects.
func RunTheoremPartial(name string, servers int) (*Verdict, error) {
	p, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	a := adversary.NewAttack(p)
	a.Cfg = protocol.Config{
		Servers: servers, ObjectsPerServer: 1, Replication: 2,
		Clients: 2, Readers: 8, Seed: 101,
	}
	return a.Run()
}

// MeasureLatency runs the latency experiment for one protocol.
func MeasureLatency(name string, mix Mix, txns int, seed int64) (LatencyReport, error) {
	p, err := Lookup(name)
	if err != nil {
		return LatencyReport{}, err
	}
	return core.MeasureLatency(p, mix, txns, seed)
}

// MeasureThroughput runs a closed-loop concurrent load experiment: clients
// concurrent clients submitting txns transactions of the mix, reporting
// throughput and latency under load.
func MeasureThroughput(name string, mix Mix, clients, txns int, seed int64) (ThroughputReport, error) {
	p, err := Lookup(name)
	if err != nil {
		return ThroughputReport{}, err
	}
	return core.MeasureThroughput(p, mix, clients, txns, seed)
}

// MeasureLoadCurve runs the open-loop latency–throughput curve
// experiment: the protocol's saturated throughput is estimated
// closed-loop, then offered load is swept from light load to past
// saturation, reporting queueing delay and latency per point and the
// knee of the curve.
func MeasureLoadCurve(name string, mix Mix, seed int64) (LoadCurve, error) {
	p, err := Lookup(name)
	if err != nil {
		return LoadCurve{}, err
	}
	return core.MeasureLoadCurve(p, mix, seed, core.CurveOptions{})
}

// ReadHeavy is the canonical 95/5 workload mix.
func ReadHeavy() Mix { return workload.ReadHeavy() }

// Balanced is the 50/50 workload mix.
func Balanced() Mix { return workload.Balanced() }

package history

import "math/bits"

// bitset is a fixed-capacity set of small non-negative integers, used for
// transaction index sets in the dependency graph and the solver's order
// closure. It replaces the raw uint64 masks of the original checkers,
// whose silent 64-element ceiling was only guarded by MaxTxns.
type bitset []uint64

// newBitset returns an empty bitset able to hold values in [0, n).
func newBitset(n int) bitset {
	return make(bitset, (n+63)/64)
}

// set adds i to the set.
func (b bitset) set(i int) { b[i>>6] |= 1 << uint(i&63) }

// has reports whether i is in the set.
func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// clear removes i from the set.
func (b bitset) clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// reset empties the set in place.
func (b bitset) reset() {
	for w := range b {
		b[w] = 0
	}
}

// empty reports whether the set has no elements.
func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// grow returns a bitset with at least words words, preserving contents.
// The receiver is returned unchanged when already wide enough.
func (b bitset) grow(words int) bitset {
	if len(b) >= words {
		return b
	}
	out := make(bitset, words)
	copy(out, b)
	return out
}

// or unions o into b (capacities must match).
func (b bitset) or(o bitset) {
	for w := range b {
		b[w] |= o[w]
	}
}

// count returns the number of elements.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach calls f for every element in ascending order.
func (b bitset) forEach(f func(i int)) {
	for w, word := range b {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			f(i)
			word &= word - 1
		}
	}
}

// clone returns an independent copy.
func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

// copyFrom overwrites b with o (capacities must match).
func (b bitset) copyFrom(o bitset) { copy(b, o) }

// containsAll reports whether every element of o is in b (capacities
// must match).
func (b bitset) containsAll(o bitset) bool {
	for w := range o {
		if o[w]&^b[w] != 0 {
			return false
		}
	}
	return true
}

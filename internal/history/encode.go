package history

import (
	"fmt"

	"repro/internal/model"
)

// Compact byte encoding of small histories over a fixed alphabet, used by
// the FuzzCheck harness: any byte string decodes to some history (the
// decoder is total), and histories within the alphabet round-trip, so a
// seed corpus of known-violating shapes can be expressed as bytes for the
// fuzzer to mutate.
//
// Alphabet: 4 objects "A".."D" with initial values "iA".."iD", 4 clients
// "c0".."c3", 16 write values "w0".."w15". Format, per transaction:
//
//	byte 0: client (low 2 bits)
//	byte 1: op count (1 + low 2 bits, capped at 3)
//	per op:
//	  byte 0: bit 0 = write flag; bits 1-2 = object
//	  byte 1: value selector — for reads, 0 means the initial value and
//	          v > 0 means "w{(v-1)%16}"; for writes, "w{v%16}"
//	byte: invocation gap since the previous invocation (low 5 bits)
//	byte: duration until completion (1 + low 5 bits)
//
// Duplicate written values, dangling reads and other malformed shapes are
// representable on purpose: the checkers must reject them gracefully, and
// the fuzzer should explore those paths.

// maxDecodedTxns caps decoded histories so the fuzz harness can afford
// the exhaustive differential oracle on every input.
const maxDecodedTxns = 16

var encObjects = [4]string{"A", "B", "C", "D"}

// encInitials returns the fixed initial-value map of the encoding.
func encInitials() map[string]model.Value {
	m := make(map[string]model.Value, len(encObjects))
	for _, o := range encObjects {
		m[o] = model.Value("i" + o)
	}
	return m
}

// DecodeHistory decodes data into a history. It is total: every input
// yields a (possibly empty) history, never a panic.
func DecodeHistory(data []byte) *History {
	h := New(encInitials())
	seqs := map[string]int{}
	now := int64(0)
	pos := 0
	next := func() (byte, bool) {
		if pos >= len(data) {
			return 0, false
		}
		b := data[pos]
		pos++
		return b, true
	}
	for h.Len() < maxDecodedTxns {
		cb, more := next()
		if !more {
			break
		}
		nb, more := next()
		if !more {
			break
		}
		client := fmt.Sprintf("c%d", cb&3)
		nops := int(nb&3) + 1
		if nops > 3 {
			nops = 3
		}
		rec := &TxnRecord{Client: client}
		for i := 0; i < nops; i++ {
			ob, more := next()
			if !more {
				break
			}
			vb, more := next()
			if !more {
				break
			}
			obj := encObjects[(ob>>1)&3]
			if ob&1 == 1 { // write
				rec.Writes = append(rec.Writes, model.Write{
					Object: obj, Value: model.Value(fmt.Sprintf("w%d", vb%16)),
				})
			} else { // read
				if rec.Reads == nil {
					rec.Reads = map[string]model.Value{}
				}
				if vb == 0 {
					rec.Reads[obj] = model.Value("i" + obj)
				} else {
					rec.Reads[obj] = model.Value(fmt.Sprintf("w%d", (vb-1)%16))
				}
			}
		}
		gb, _ := next()
		db, more := next()
		if !more {
			db = 0
		}
		now += int64(gb & 31)
		rec.Invoked = now
		rec.Completed = now + 1 + int64(db&31)
		seqs[client]++
		rec.ID = model.TxnID{Client: client, Seq: seqs[client]}
		h.Add(rec)
	}
	return h
}

// EncodeHistory encodes a history built over the decoder's alphabet. It
// returns an error when a record falls outside it (wrong client/object
// names, values other than w0..w15 or the initials, more than 3 ops).
func EncodeHistory(h *History) ([]byte, error) {
	var out []byte
	clientNum := map[string]byte{"c0": 0, "c1": 1, "c2": 2, "c3": 3}
	objNum := map[string]byte{"A": 0, "B": 1, "C": 2, "D": 3}
	valNum := func(v model.Value) (byte, bool) {
		// Exact match required: Sscanf alone would accept trailing
		// garbage ("w1x") and silently mis-encode it as w1.
		var n int
		if _, err := fmt.Sscanf(string(v), "w%d", &n); err != nil || n < 0 || n > 15 ||
			string(v) != fmt.Sprintf("w%d", n) {
			return 0, false
		}
		return byte(n), true
	}
	if h.Len() > maxDecodedTxns {
		return nil, fmt.Errorf("history too large to encode: %d > %d", h.Len(), maxDecodedTxns)
	}
	prev := int64(0)
	for _, rec := range h.Records() {
		cn, known := clientNum[rec.Client]
		if !known {
			return nil, fmt.Errorf("client %q outside the encoding alphabet", rec.Client)
		}
		type op struct{ b, v byte }
		var ops []op
		for _, obj := range sortedObjects(rec.Reads) {
			on, knownObj := objNum[obj]
			if !knownObj {
				return nil, fmt.Errorf("object %q outside the encoding alphabet", obj)
			}
			val := rec.Reads[obj]
			if val == model.Value("i"+obj) {
				ops = append(ops, op{on << 1, 0})
			} else if vn, okVal := valNum(val); okVal {
				ops = append(ops, op{on << 1, vn + 1})
			} else {
				return nil, fmt.Errorf("read value %q outside the encoding alphabet", val)
			}
		}
		for _, w := range rec.Writes {
			on, knownObj := objNum[w.Object]
			if !knownObj {
				return nil, fmt.Errorf("object %q outside the encoding alphabet", w.Object)
			}
			vn, okVal := valNum(w.Value)
			if !okVal {
				return nil, fmt.Errorf("write value %q outside the encoding alphabet", w.Value)
			}
			ops = append(ops, op{on<<1 | 1, vn})
		}
		if len(ops) == 0 || len(ops) > 3 {
			return nil, fmt.Errorf("%d ops in %s, encodable range is 1..3", len(ops), rec.ID)
		}
		gap := rec.Invoked - prev
		dur := rec.Completed - rec.Invoked - 1
		if gap < 0 || gap > 31 || dur < 0 || dur > 31 {
			return nil, fmt.Errorf("timing of %s outside the encoding range", rec.ID)
		}
		prev = rec.Invoked
		out = append(out, cn, byte(len(ops)-1))
		for _, o := range ops {
			out = append(out, o.b, o.v)
		}
		out = append(out, byte(gap), byte(dur))
	}
	return out, nil
}

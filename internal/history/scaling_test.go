package history

import (
	"testing"
	"time"
)

// checkerBudget is the wall-clock ceiling for one 128-transaction
// certification on CI hardware (the acceptance bar of the solver rework;
// the old enumeration could not represent these histories at all).
const checkerBudget = 10 * time.Second

func timedCheck(t *testing.T, what string, h *History, level string, wantOK bool) {
	t.Helper()
	start := time.Now()
	v := Check(h, level)
	elapsed := time.Since(start)
	if v.OK != wantOK {
		t.Fatalf("%s at %s: OK=%v (want %v): %s", what, level, v.OK, wantOK, v.Reason)
	}
	if elapsed > checkerBudget {
		t.Fatalf("%s at %s took %v, budget %v", what, level, elapsed, checkerBudget)
	}
	t.Logf("%s at %s: %v (n=%d)", what, level, elapsed, h.Len())
}

// TestCheckerScaling128 certifies 128-transaction concurrent histories in
// both directions — accepting AND refuting — within the wall-clock
// budget. CI runs this under -race (see the checker-scaling job).
func TestCheckerScaling128(t *testing.T) {
	accept := GenSerializable(41, 128, 8)
	timedCheck(t, "accepting/serializable", accept, "serializable", true)
	timedCheck(t, "accepting/strict", accept, "strict-serializable", true)
	timedCheck(t, "accepting/causal", accept, "causal", true)

	refuteCausal := GenViolating(43, 128)
	timedCheck(t, "refuting/causal", refuteCausal, "causal", false)
	timedCheck(t, "refuting/serializable", refuteCausal, "serializable", false)

	// The branching refutation: causally consistent but not serializable,
	// so the serializable check must explore and kill both writer orders
	// of every divergent group.
	diverge := GenCausalOnly(47, 128)
	timedCheck(t, "diverging/causal", diverge, "causal", true)
	timedCheck(t, "diverging/serializable", diverge, "serializable", false)
}

// TestCheckerScaling256 doubles the window to prove headroom beyond the
// acceptance bar (the shared ceiling is MaxTxns = 4096; full-grid
// 2000-transaction windows are covered by TestSessionFullGridWindow).
func TestCheckerScaling256(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	accept := GenSerializable(53, 256, 8)
	timedCheck(t, "accepting/serializable", accept, "serializable", true)
	timedCheck(t, "accepting/causal", accept, "causal", true)
	refute := GenViolating(59, 256)
	timedCheck(t, "refuting/causal", refute, "causal", false)
}

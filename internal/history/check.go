package history

import (
	"fmt"

	"repro/internal/model"
)

// Verdict is the outcome of a consistency check.
type Verdict struct {
	OK     bool
	Reason string
	// Witness is a serialization order that certifies OK verdicts: for
	// causal consistency, the serialization found for the last client
	// checked; for (strict) serializability, the single total order.
	Witness []model.TxnID
}

func ok(witness []model.TxnID) Verdict { return Verdict{OK: true, Witness: witness} }

func fail(format string, args ...any) Verdict {
	return Verdict{OK: false, Reason: fmt.Sprintf(format, args...)}
}

// MaxTxns bounds the BATCH checkers and bounded sessions (NewSession),
// whose closures retain the entire history at O(n²) space. It is no
// longer the ceiling of the incremental path: a streaming session
// (NewStreamingSession) retires committed prefixes of the closure, so
// its memory follows the active window and it certifies runs far past
// this constant. MaxTxns survives as the differential-oracle bound —
// below it the batch checker cross-checks every streaming verdict
// (core certifyRun, ptest.RunLoad); above it the streaming session is
// the only exact checker and the cross-check is skipped.
const MaxTxns = 4096

// ov keys the writer lookup: (object, value) pairs are unique writers
// under the paper's distinct-values assumption.
type ov struct {
	o string
	v model.Value
}

// graph is the precomputed dependency structure shared by the checkers.
type graph struct {
	h     *History
	txns  []*TxnRecord
	index map[model.TxnID]int
	// preds[i] is the set of direct predecessors of txn i under the
	// relation being checked (program order ∪ reads-from [∪ real time]).
	preds []bitset
	// writes[i] is the final value txn i leaves in each object it wrote.
	writes []map[string]model.Value
	// writer maps (object, value) to the writing txn index.
	writer map[ov]int
	// writersOf[obj] lists every txn index writing obj, ascending.
	writersOf map[string][]int
}

// build constructs the dependency graph. realTime adds completed-before-
// invoked edges (for strict serializability). It returns an error verdict
// for malformed histories (too large, duplicate values, dangling reads).
func build(h *History, realTime bool) (*graph, *Verdict) {
	g := &graph{h: h, txns: h.Records(), index: make(map[model.TxnID]int)}
	n := len(g.txns)
	if n > MaxTxns {
		v := fail("history too large for exact checking: %d > %d transactions", n, MaxTxns)
		return nil, &v
	}
	for i, t := range g.txns {
		if _, dup := g.index[t.ID]; dup {
			v := fail("duplicate transaction id %s", t.ID)
			return nil, &v
		}
		g.index[t.ID] = i
	}
	g.preds = make([]bitset, n)
	for i := range g.preds {
		g.preds[i] = newBitset(n)
	}
	g.writes = make([]map[string]model.Value, n)

	// Writer lookup: (object, value) -> txn index. Distinct values
	// required, and no write may collide with an object's initial value
	// (the initial value is a value too; a collision would make "reads
	// the initial value" ambiguous).
	g.writer = make(map[ov]int)
	g.writersOf = make(map[string][]int)
	for i, t := range g.txns {
		g.writes[i] = make(map[string]model.Value, len(t.Writes))
		for _, w := range t.Writes {
			g.writes[i][w.Object] = w.Value // last write wins
		}
		for obj, val := range g.writes[i] {
			if val == h.Initial(obj) {
				v := fail("values not distinct: %s=%s written by %s equals the initial value",
					obj, val, t.ID)
				return nil, &v
			}
			key := ov{obj, val}
			if j, dup := g.writer[key]; dup && j != i {
				v := fail("values not distinct: %s=%s written by both %s and %s",
					obj, val, g.txns[j].ID, t.ID)
				return nil, &v
			}
			g.writer[key] = i
			g.writersOf[obj] = append(g.writersOf[obj], i)
		}
	}

	// Program order: chain per client.
	for _, c := range h.Clients() {
		recs := h.ByClient(c)
		for i := 1; i < len(recs); i++ {
			g.preds[g.index[recs[i].ID]].set(g.index[recs[i-1].ID])
		}
	}

	// Reads-from: forced by value distinctness.
	for i, t := range g.txns {
		for obj, val := range t.Reads {
			if val == h.Initial(obj) {
				continue // reads the initial value
			}
			j, found := g.writer[ov{obj, val}]
			if !found {
				v := fail("dangling read: %s read %s=%s, never written", t.ID, obj, val)
				return nil, &v
			}
			if j != i {
				g.preds[i].set(j)
			}
		}
	}

	if realTime {
		for i, a := range g.txns {
			if a.Completed < 0 {
				continue
			}
			for j, b := range g.txns {
				if i != j && a.Completed < b.Invoked {
					g.preds[j].set(i)
				}
			}
		}
	}
	return g, nil
}

// acyclic checks the (transitive) predecessor relation for cycles via
// Kahn's algorithm and returns a topological order when acyclic.
func (g *graph) acyclic() ([]int, bool) {
	n := len(g.txns)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = g.preds[i].count()
	}
	var order []int
	var frontier []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		order = append(order, v)
		for j := 0; j < n; j++ {
			if g.preds[j].has(v) {
				indeg[j]--
				if indeg[j] == 0 {
					frontier = append(frontier, j)
				}
			}
		}
	}
	return order, len(order) == n
}

func (g *graph) witness(order []int) []model.TxnID {
	out := make([]model.TxnID, len(order))
	for i, idx := range order {
		out[i] = g.txns[idx].ID
	}
	return out
}

// Check certifies a complete history at a claimed consistency level
// ("causal", "read-atomic", "serializable", "strict-serializable"). Any
// other level (including "none") falls back to the causal check, the
// paper's baseline property. The load driver uses it to certify concurrent
// executions at each protocol's claimed level.
//
// It is a thin wrapper over a one-shot incremental Session: the history
// is appended record by record and the final verdict returned. Use
// CheckIncremental for the full session verdict (first offending commit,
// witness prefix), or CheckBatch for the retained one-shot solver.
func Check(h *History, level string) Verdict {
	return CheckIncremental(h, level).Verdict
}

// CheckIncremental runs a whole history through an incremental Session
// and returns the full session verdict, including the first offending
// commit index and minimal witness prefix on refutation.
func CheckIncremental(h *History, level string) SessionVerdict {
	s := NewSession(h.initial, level, h.Len())
	for _, rec := range h.Records() {
		if !s.Append(rec) {
			break
		}
	}
	return s.Finish()
}

// CheckBatch dispatches to the one-shot batch engines, which build the
// full dependency graph and solve from scratch. It is retained as the
// differential oracle for the incremental Session (the two must agree
// verdict for verdict) and as the baseline of the incremental-vs-batch
// cost comparison the bench reports.
func CheckBatch(h *History, level string) Verdict {
	switch level {
	case "read-atomic":
		return CheckReadAtomic(h)
	case "serializable":
		return CheckSerializable(h)
	case "strict-serializable":
		return CheckStrictSerializable(h)
	default:
		return CheckCausal(h)
	}
}

// CheckCausal checks Definition 1: the causal relation must be acyclic and
// every client must have a serialization of all transactions, respecting
// causal order and all program orders, in which its own transactions are
// legal.
func CheckCausal(h *History) Verdict {
	g, errv := build(h, false)
	if errv != nil {
		return *errv
	}
	topo, isDag := g.acyclic()
	if !isDag {
		return fail("causal relation is cyclic")
	}
	base := newOrderClosure(g, topo)
	var lastWitness []model.TxnID
	for _, c := range h.Clients() {
		checkSet := newBitset(len(g.txns))
		any := false
		for _, rec := range h.ByClient(c) {
			checkSet.set(g.index[rec.ID])
			if len(rec.Reads) > 0 {
				any = true
			}
		}
		if !any {
			continue // write-only clients are satisfied by any extension
		}
		s := newSolver(g, base.clone(), checkSet)
		order, found := s.solve()
		if !found {
			return fail("no causal serialization exists for client %s", c)
		}
		lastWitness = g.witness(order)
	}
	return ok(lastWitness)
}

// CheckSerializable checks classic serializability: one serialization of
// all transactions, respecting program order and reads-from, legal for
// every transaction.
func CheckSerializable(h *History) Verdict {
	g, errv := build(h, false)
	if errv != nil {
		return *errv
	}
	topo, isDag := g.acyclic()
	if !isDag {
		return fail("dependency relation is cyclic")
	}
	s := newSolver(g, newOrderClosure(g, topo), nil)
	order, found := s.solve()
	if !found {
		return fail("no serialization exists")
	}
	return ok(g.witness(order))
}

// CheckStrictSerializable additionally requires the serialization to
// respect real-time order (a transaction that completed before another was
// invoked must be serialized first).
func CheckStrictSerializable(h *History) Verdict {
	g, errv := build(h, true)
	if errv != nil {
		return *errv
	}
	topo, isDag := g.acyclic()
	if !isDag {
		return fail("real-time-augmented dependency relation is cyclic")
	}
	s := newSolver(g, newOrderClosure(g, topo), nil)
	order, found := s.solve()
	if !found {
		return fail("no strict serialization exists")
	}
	return ok(g.witness(order))
}

// CheckReadAtomic checks RAMP's read atomicity: no transaction observes a
// fractured read — if T reads object X from writer W, and W also wrote
// object Y which T reads, then T must read Y from W or from a transaction
// that did not complete before W was invoked (i.e. not from a strictly
// older writer). Dangling reads are also violations.
func CheckReadAtomic(h *History) Verdict {
	g, errv := build(h, false)
	if errv != nil {
		return *errv
	}
	writerOf := func(t *TxnRecord, obj string) (int, bool) {
		val := t.Reads[obj]
		if val == h.Initial(obj) {
			return -1, true // initial pseudo-writer: older than everything
		}
		j, found := g.writer[ov{obj, val}]
		return j, found
	}
	for _, t := range g.txns {
		for obj := range t.Reads {
			w, found := writerOf(t, obj)
			if !found {
				return fail("dangling read in %s on %s", t.ID, obj)
			}
			if w < 0 {
				continue
			}
			for obj2 := range t.Reads {
				if obj2 == obj {
					continue
				}
				if _, siblingWrite := g.writes[w][obj2]; !siblingWrite {
					continue
				}
				w2, found2 := writerOf(t, obj2)
				if !found2 {
					return fail("dangling read in %s on %s", t.ID, obj2)
				}
				if w2 == w {
					continue
				}
				// Fractured if the observed writer of obj2 is strictly
				// older than w (initial value, or completed before w was
				// invoked).
				if w2 < 0 {
					return fail("fractured read: %s read %s from %s but %s from the initial value",
						t.ID, obj, g.txns[w].ID, obj2)
				}
				a, b := g.txns[w2], g.txns[w]
				if a.Completed >= 0 && a.Completed < b.Invoked {
					return fail("fractured read: %s read %s from %s but %s from older %s",
						t.ID, obj, b.ID, obj2, a.ID)
				}
			}
		}
	}
	return ok(nil)
}

package history

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// Verdict is the outcome of a consistency check.
type Verdict struct {
	OK     bool
	Reason string
	// Witness is a serialization order that certifies OK verdicts: for
	// causal consistency, the serialization found for the last client
	// checked; for (strict) serializability, the single total order.
	Witness []model.TxnID
}

func ok(witness []model.TxnID) Verdict { return Verdict{OK: true, Witness: witness} }

func fail(format string, args ...any) Verdict {
	return Verdict{OK: false, Reason: fmt.Sprintf(format, args...)}
}

// maxTxns bounds the exact-search checkers; experiment windows stay well
// below it.
const maxTxns = 62

// graph is the precomputed dependency structure shared by the checkers.
type graph struct {
	h     *History
	txns  []*TxnRecord
	index map[model.TxnID]int
	// preds[i] is the bitmask of direct predecessors of txn i under the
	// relation being checked (program order ∪ reads-from [∪ real time]).
	preds []uint64
	// lastVal(obj, writer) lookup: the value txn i leaves in obj.
	writes []map[string]model.Value
}

// build constructs the dependency graph. realTime adds completed-before-
// invoked edges (for strict serializability). It returns an error verdict
// for malformed histories (too large, duplicate values, dangling reads).
func build(h *History, realTime bool) (*graph, *Verdict) {
	g := &graph{h: h, txns: h.Records(), index: make(map[model.TxnID]int)}
	n := len(g.txns)
	if n > maxTxns {
		v := fail("history too large for exact checking: %d > %d transactions", n, maxTxns)
		return nil, &v
	}
	for i, t := range g.txns {
		if _, dup := g.index[t.ID]; dup {
			v := fail("duplicate transaction id %s", t.ID)
			return nil, &v
		}
		g.index[t.ID] = i
	}
	g.preds = make([]uint64, n)
	g.writes = make([]map[string]model.Value, n)

	// Writer lookup: (object, value) -> txn index. Distinct values
	// required.
	type ov struct {
		o string
		v model.Value
	}
	writer := make(map[ov]int)
	for i, t := range g.txns {
		g.writes[i] = make(map[string]model.Value, len(t.Writes))
		for _, w := range t.Writes {
			g.writes[i][w.Object] = w.Value // last write wins
		}
		for obj, val := range g.writes[i] {
			key := ov{obj, val}
			if j, dup := writer[key]; dup && j != i {
				v := fail("values not distinct: %s=%s written by both %s and %s",
					obj, val, g.txns[j].ID, t.ID)
				return nil, &v
			}
			writer[key] = i
		}
	}

	// Program order: chain per client.
	for _, c := range h.Clients() {
		recs := h.ByClient(c)
		for i := 1; i < len(recs); i++ {
			g.preds[g.index[recs[i].ID]] |= 1 << uint(g.index[recs[i-1].ID])
		}
	}

	// Reads-from: forced by value distinctness.
	for i, t := range g.txns {
		for obj, val := range t.Reads {
			if val == h.Initial(obj) {
				continue // reads the initial value
			}
			j, found := writer[ov{obj, val}]
			if !found {
				v := fail("dangling read: %s read %s=%s, never written", t.ID, obj, val)
				return nil, &v
			}
			if j != i {
				g.preds[i] |= 1 << uint(j)
			}
		}
	}

	if realTime {
		for i, a := range g.txns {
			if a.Completed < 0 {
				continue
			}
			for j, b := range g.txns {
				if i != j && a.Completed < b.Invoked {
					g.preds[j] |= 1 << uint(i)
				}
			}
		}
	}
	return g, nil
}

// acyclic checks the (transitive) predecessor relation for cycles via
// Kahn's algorithm and returns a topological order when acyclic.
func (g *graph) acyclic() ([]int, bool) {
	n := len(g.txns)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		m := g.preds[i]
		for m != 0 {
			m &= m - 1
			indeg[i]++
		}
	}
	var order []int
	var frontier []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		order = append(order, v)
		for j := 0; j < n; j++ {
			if g.preds[j]&(1<<uint(v)) != 0 {
				indeg[j]--
				if indeg[j] == 0 {
					frontier = append(frontier, j)
				}
			}
		}
	}
	return order, len(order) == n
}

// legalFor searches for a linear extension of g in which every transaction
// in checkSet (bitmask) is legal: each of its reads returns the value of
// the last preceding write to that object, or the initial value when no
// write precedes it. Returns the witness order on success.
func (g *graph) legalFor(checkSet uint64) ([]int, bool) {
	n := len(g.txns)
	failed := make(map[string]bool)

	lastWrite := make(map[string]model.Value)
	fingerprint := func(mask uint64) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%x|", mask)
		objs := make([]string, 0, len(lastWrite))
		for o := range lastWrite {
			objs = append(objs, o)
		}
		sort.Strings(objs)
		for _, o := range objs {
			b.WriteString(o)
			b.WriteByte('=')
			b.WriteString(string(lastWrite[o]))
			b.WriteByte(';')
		}
		return b.String()
	}

	order := make([]int, 0, n)
	var search func(mask uint64) bool
	search = func(mask uint64) bool {
		if mask == (uint64(1)<<uint(n))-1 {
			return true
		}
		fp := fingerprint(mask)
		if failed[fp] {
			return false
		}
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if mask&bit != 0 || g.preds[i]&^mask != 0 {
				continue
			}
			t := g.txns[i]
			if checkSet&bit != 0 && !g.legalHere(t, lastWrite) {
				continue
			}
			// Place i.
			saved := make(map[string]model.Value, len(g.writes[i]))
			for obj, val := range g.writes[i] {
				if prev, okPrev := lastWrite[obj]; okPrev {
					saved[obj] = prev
				} else {
					saved[obj] = "\x00absent"
				}
				lastWrite[obj] = val
			}
			order = append(order, i)
			if search(mask | bit) {
				return true
			}
			order = order[:len(order)-1]
			for obj, prev := range saved {
				if prev == "\x00absent" {
					delete(lastWrite, obj)
				} else {
					lastWrite[obj] = prev
				}
			}
		}
		failed[fp] = true
		return false
	}
	if !search(0) {
		return nil, false
	}
	return order, true
}

// legalHere reports whether t's reads are legal given the current
// last-write map (initial values when absent).
func (g *graph) legalHere(t *TxnRecord, lastWrite map[string]model.Value) bool {
	for obj, val := range t.Reads {
		want, written := lastWrite[obj]
		if !written {
			want = g.h.Initial(obj)
		}
		if val != want {
			return false
		}
	}
	return true
}

func (g *graph) witness(order []int) []model.TxnID {
	out := make([]model.TxnID, len(order))
	for i, idx := range order {
		out[i] = g.txns[idx].ID
	}
	return out
}

// Check dispatches to the checker matching a claimed consistency level
// ("causal", "read-atomic", "serializable", "strict-serializable"). Any
// other level (including "none") falls back to the causal check, the
// paper's baseline property. The load driver uses it to certify concurrent
// executions at each protocol's claimed level.
func Check(h *History, level string) Verdict {
	switch level {
	case "read-atomic":
		return CheckReadAtomic(h)
	case "serializable":
		return CheckSerializable(h)
	case "strict-serializable":
		return CheckStrictSerializable(h)
	default:
		return CheckCausal(h)
	}
}

// CheckCausal checks Definition 1: the causal relation must be acyclic and
// every client must have a serialization of all transactions, respecting
// causal order and all program orders, in which its own transactions are
// legal.
func CheckCausal(h *History) Verdict {
	g, errv := build(h, false)
	if errv != nil {
		return *errv
	}
	if _, isDag := g.acyclic(); !isDag {
		return fail("causal relation is cyclic")
	}
	var lastWitness []model.TxnID
	for _, c := range h.Clients() {
		var checkSet uint64
		any := false
		for _, rec := range h.ByClient(c) {
			checkSet |= 1 << uint(g.index[rec.ID])
			if len(rec.Reads) > 0 {
				any = true
			}
		}
		if !any {
			continue // write-only clients are satisfied by any extension
		}
		order, found := g.legalFor(checkSet)
		if !found {
			return fail("no causal serialization exists for client %s", c)
		}
		lastWitness = g.witness(order)
	}
	return ok(lastWitness)
}

// CheckSerializable checks classic serializability: one serialization of
// all transactions, respecting program order and reads-from, legal for
// every transaction.
func CheckSerializable(h *History) Verdict {
	g, errv := build(h, false)
	if errv != nil {
		return *errv
	}
	if _, isDag := g.acyclic(); !isDag {
		return fail("dependency relation is cyclic")
	}
	order, found := g.legalFor(^uint64(0))
	if !found {
		return fail("no serialization exists")
	}
	return ok(g.witness(order))
}

// CheckStrictSerializable additionally requires the serialization to
// respect real-time order (a transaction that completed before another was
// invoked must be serialized first).
func CheckStrictSerializable(h *History) Verdict {
	g, errv := build(h, true)
	if errv != nil {
		return *errv
	}
	if _, isDag := g.acyclic(); !isDag {
		return fail("real-time-augmented dependency relation is cyclic")
	}
	order, found := g.legalFor(^uint64(0))
	if !found {
		return fail("no strict serialization exists")
	}
	return ok(g.witness(order))
}

// CheckReadAtomic checks RAMP's read atomicity: no transaction observes a
// fractured read — if T reads object X from writer W, and W also wrote
// object Y which T reads, then T must read Y from W or from a transaction
// that did not complete before W was invoked (i.e. not from a strictly
// older writer). Dangling reads are also violations.
func CheckReadAtomic(h *History) Verdict {
	g, errv := build(h, false)
	if errv != nil {
		return *errv
	}
	writerOf := func(t *TxnRecord, obj string) (int, bool) {
		val := t.Reads[obj]
		if val == h.Initial(obj) {
			return -1, true // initial pseudo-writer: older than everything
		}
		for j := range g.txns {
			if v, wrote := g.writes[j][obj]; wrote && v == val {
				return j, true
			}
		}
		return 0, false
	}
	for _, t := range g.txns {
		for obj := range t.Reads {
			w, found := writerOf(t, obj)
			if !found {
				return fail("dangling read in %s on %s", t.ID, obj)
			}
			if w < 0 {
				continue
			}
			for obj2 := range t.Reads {
				if obj2 == obj {
					continue
				}
				if _, siblingWrite := g.writes[w][obj2]; !siblingWrite {
					continue
				}
				w2, found2 := writerOf(t, obj2)
				if !found2 {
					return fail("dangling read in %s on %s", t.ID, obj2)
				}
				if w2 == w {
					continue
				}
				// Fractured if the observed writer of obj2 is strictly
				// older than w (initial value, or completed before w was
				// invoked).
				if w2 < 0 {
					return fail("fractured read: %s read %s from %s but %s from the initial value",
						t.ID, obj, g.txns[w].ID, obj2)
				}
				a, b := g.txns[w2], g.txns[w]
				if a.Completed >= 0 && a.Completed < b.Invoked {
					return fail("fractured read: %s read %s from %s but %s from older %s",
						t.ID, obj, b.ID, obj2, a.ID)
				}
			}
		}
	}
	return ok(nil)
}

package history

import (
	"testing"
	"time"

	"repro/internal/model"
)

var sessionLevels = []string{"causal", "read-atomic", "serializable", "strict-serializable"}

// TestSessionMatchesBatchOnRandomHistories is the incremental agreement
// contract: on seeded random histories mixing legal and illegal reads,
// the Session (fed record by record) and the one-shot batch solver must
// return identical verdicts at every level, in both directions.
func TestSessionMatchesBatchOnRandomHistories(t *testing.T) {
	accepts, refutes := 0, 0
	for seed := int64(1); seed <= 300; seed++ {
		n := 2 + int(seed%13) // 2..14 transactions
		h := genDifferential(seed*104729, n)
		for _, level := range sessionLevels {
			got := CheckIncremental(h, level)
			want := CheckBatch(h, level)
			if got.OK != want.OK {
				t.Fatalf("seed %d level %s: session says OK=%v (%s), batch says OK=%v (%s)\n%s",
					seed, level, got.OK, got.Reason, want.OK, want.Reason, h)
			}
			if got.OK {
				accepts++
				if got.FirstViolation != -1 || got.WitnessPrefix != nil {
					t.Fatalf("seed %d level %s: accepting verdict carries violation fields: %+v",
						seed, level, got)
				}
				if level == "serializable" || level == "strict-serializable" {
					validateTotalWitness(t, h, got.Witness, level == "strict-serializable")
				}
			} else {
				refutes++
			}
		}
	}
	// The corpus must exercise both directions, or agreement is vacuous.
	if accepts < 80 || refutes < 80 {
		t.Fatalf("session differential corpus lost its teeth: %d accepting, %d refuting", accepts, refutes)
	}
}

// TestSessionAgreesOnGeneratorShapes runs the session against the
// synthetic generator output whose verdicts are known by construction.
func TestSessionAgreesOnGeneratorShapes(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, tc := range []struct {
			name string
			h    *History
		}{
			{"serializable", GenSerializable(seed, 48, 8)},
			{"causalonly", GenCausalOnly(seed, 36)},
			{"violating", GenViolating(seed, 40)},
		} {
			for _, level := range sessionLevels {
				got := CheckIncremental(tc.h, level)
				want := CheckBatch(tc.h, level)
				if got.OK != want.OK {
					t.Fatalf("%s seed %d level %s: session OK=%v, batch OK=%v (%s / %s)",
						tc.name, seed, level, got.OK, want.OK, got.Reason, want.Reason)
				}
			}
		}
	}
}

// TestSessionFirstViolationIsMinimal pins the first-offending-commit
// contract on the refuting corpus: the appended prefix through the first
// violation must refute under the batch checker, the witness prefix must
// name exactly that prefix, and re-feeding the records before it must
// raise no violation.
func TestSessionFirstViolationIsMinimal(t *testing.T) {
	checked := 0
	for seed := int64(1); seed <= 200 && checked < 60; seed++ {
		n := 4 + int(seed%11)
		h := genDifferential(seed*7919, n)
		for _, level := range []string{"causal", "serializable", "strict-serializable"} {
			sv := CheckIncremental(h, level)
			if sv.OK {
				continue
			}
			checked++
			if sv.FirstViolation < 0 || sv.FirstViolation >= h.Len() {
				t.Fatalf("seed %d level %s: first violation index %d out of range (n=%d): %s",
					seed, level, sv.FirstViolation, h.Len(), sv.Reason)
			}
			if len(sv.WitnessPrefix) != sv.FirstViolation+1 {
				t.Fatalf("seed %d level %s: witness prefix has %d entries for first violation %d",
					seed, level, len(sv.WitnessPrefix), sv.FirstViolation)
			}
			if sv.FirstViolationID != h.Records()[sv.FirstViolation].ID {
				t.Fatalf("seed %d level %s: first violation ID %s is not record %d",
					seed, level, sv.FirstViolationID, sv.FirstViolation)
			}
			// The minimal prefix must itself refute under the batch path.
			if pv := CheckBatch(h.Prefix(sv.FirstViolation+1), level); pv.OK {
				t.Fatalf("seed %d level %s: prefix through first offending commit %d certifies clean",
					seed, level, sv.FirstViolation)
			}
			// Re-feeding the records before the offending commit must not
			// raise a violation (the session never fires early).
			s := NewSession(h.initial, level, sv.FirstViolation)
			for k := 0; k < sv.FirstViolation; k++ {
				if !s.Append(h.Records()[k]) {
					t.Fatalf("seed %d level %s: session violates at %d on re-feed, first violation was %d",
						seed, level, k, sv.FirstViolation)
				}
			}
		}
	}
	if checked < 30 {
		t.Fatalf("minimality corpus lost its teeth: only %d refutations checked", checked)
	}
}

// TestSessionFullGridWindow certifies a full 2000-transaction concurrent
// history — the bench grid's default cell size — in both directions
// within the per-cell CI budget, the acceptance bar of the incremental
// rework (the batch path alone had to shrink -txns below 512).
func TestSessionFullGridWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(what string, h *History, level string, wantOK bool) SessionVerdict {
		t.Helper()
		start := time.Now()
		sv := CheckIncremental(h, level)
		elapsed := time.Since(start)
		if sv.OK != wantOK {
			t.Fatalf("%s at %s: OK=%v (want %v): %s", what, level, sv.OK, wantOK, sv.Reason)
		}
		if elapsed > checkerBudget {
			t.Fatalf("%s at %s took %v, budget %v", what, level, elapsed, checkerBudget)
		}
		t.Logf("%s at %s: %v (n=%d, resolves=%d)", what, level, elapsed, h.Len(), sv.Resolves)
		return sv
	}

	accept := GenSerializable(61, 2000, 8)
	run("accepting/causal", accept, "causal", true)
	run("accepting/serializable", accept, "serializable", true)

	// The violating generator plants the offense in its last five
	// transactions, so the session must sustain ~1995 clean incremental
	// appends before refuting — and must name the offender exactly.
	refute := GenViolating(67, 2000)
	sv := run("refuting/causal", refute, "causal", false)
	if sv.FirstViolation < 1995 {
		t.Fatalf("violation planted in the last 5 txns, session reports index %d", sv.FirstViolation)
	}
	if pv := CheckBatch(refute.Prefix(sv.FirstViolation+1), "causal"); pv.OK {
		t.Fatalf("minimal prefix %d certifies clean under batch", sv.FirstViolation+1)
	}
}

// TestSessionCapacityRefusal: appends beyond MaxTxns must refuse with a
// capacity error, not masquerade as a consistency violation.
func TestSessionCapacityRefusal(t *testing.T) {
	s := NewSession(nil, "causal", 64)
	over := false
	for i := 0; i <= MaxTxns; i++ {
		rec := &TxnRecord{
			ID:     model.TxnID{Client: "c0", Seq: i + 1},
			Client: "c0", Invoked: int64(i), Completed: int64(i),
		}
		if !s.Append(rec) {
			over = true
			break
		}
	}
	if !over {
		t.Fatalf("session accepted %d appends past the ceiling", MaxTxns+1)
	}
	sv := s.Finish()
	if sv.OK || sv.FirstViolation != -1 || sv.Appended != MaxTxns {
		t.Fatalf("capacity refusal malformed: %+v", sv)
	}
}

// TestSessionDuplicateIDPrefix: a malformed append (duplicate txn id)
// must honour the witness-prefix contract like every other violation —
// the prefix runs up to AND including the offending commit.
func TestSessionDuplicateIDPrefix(t *testing.T) {
	s := NewSession(nil, "causal", 4)
	a := &TxnRecord{ID: model.TxnID{Client: "c0", Seq: 1}, Client: "c0", Invoked: 0, Completed: 1}
	if !s.Append(a) {
		t.Fatal("first append refused")
	}
	dup := &TxnRecord{ID: model.TxnID{Client: "c0", Seq: 1}, Client: "c0", Invoked: 2, Completed: 3}
	if s.Append(dup) {
		t.Fatal("duplicate id accepted")
	}
	sv := s.Finish()
	if sv.OK || sv.FirstViolation != 1 || sv.FirstViolationID != dup.ID {
		t.Fatalf("duplicate-id verdict malformed: %+v", sv)
	}
	if len(sv.WitnessPrefix) != 2 || sv.WitnessPrefix[1] != dup.ID {
		t.Fatalf("witness prefix must include the offending commit: %v", sv.WitnessPrefix)
	}
}

// TestSessionLatchesAfterViolation: once refuted, later appends are
// ignored and the verdict is stable.
func TestSessionLatchesAfterViolation(t *testing.T) {
	h := GenViolating(71, 24)
	s := NewSession(h.initial, "causal", h.Len())
	stopped := -1
	for k, rec := range h.Records() {
		if !s.Append(rec) {
			stopped = k
			break
		}
	}
	if stopped < 0 {
		t.Fatal("violating history certified clean")
	}
	first := s.Finish()
	if s.Append(h.Records()[0]) {
		t.Fatal("append accepted after the session was sealed")
	}
	again := s.Finish()
	if first.FirstViolation != again.FirstViolation || first.Reason != again.Reason {
		t.Fatalf("verdict not stable: %+v vs %+v", first, again)
	}
}

// TestSessionIncrementalBudget pins the per-client closure cost of the
// incremental path on a wide full-grid cell: 16 program orders over the
// default 2000-transaction window. Before the streaming rework the
// session's per-append closure maintenance blew up with the client
// count, so the ride-along cost drifted to many multiples of a one-shot
// batch solve on exactly this shape. The bar: best-of-three incremental
// wall within 1.5x of one batch wall (the batch solve runs seconds here
// — repeating it would dominate the suite for a denominator that large).
// Wall-clock comparisons flake on loaded machines, so the ratio only
// fails in tandem with an absolute floor — a fast run that overshoots
// the ratio inside the floor is noise, not a regression.
func TestSessionIncrementalBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	h := GenSerializable(61, 2000, 16)

	best := func(f func()) time.Duration {
		min := time.Duration(0)
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); min == 0 || d < min {
				min = d
			}
		}
		return min
	}

	start := time.Now()
	bv := CheckBatch(h, "causal")
	batch := time.Since(start)
	if !bv.OK {
		t.Fatalf("batch refutes the serializable corpus: %s", bv.Reason)
	}
	var sv SessionVerdict
	inc := best(func() { sv = CheckIncremental(h, "causal") })
	if !sv.OK {
		t.Fatalf("session refutes the serializable corpus: %s", sv.Reason)
	}

	const floor = 250 * time.Millisecond
	if inc > batch*3/2 && inc > floor {
		t.Fatalf("incremental %v vs batch %v: past 1.5x with the %v floor cleared — "+
			"the per-client closure cost regressed", inc, batch, floor)
	}
	t.Logf("16-client 2000-txn causal: incremental %v, batch %v (resolves=%d)", inc, batch, sv.Resolves)
}

package history

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/model"
)

// runStreaming certifies h through a streaming session at the given
// eviction cadence (0: the default). every=1 sweeps after every append —
// the most aggressive retirement schedule, used by the differential
// tests to maximize interleavings of eviction with constraint threading.
func runStreaming(h *History, level string, every int) SessionVerdict {
	s := NewStreamingSession(h.initial, level, h.Clients())
	if every > 0 {
		s.evictEvery = every
	}
	for _, rec := range h.Records() {
		if !s.Append(rec) {
			break
		}
	}
	return s.Finish()
}

// genDenseSerializable builds a serializable history whose reads-from
// relation densely orders the transactions: every transaction reads the
// latest write of X and replaces it, so the dependency order alone
// buries the past — which is what eviction needs at levels without
// real-time edges. A second object takes occasional extra writes so
// batches still carry anti-dependency clauses to decide.
func genDenseSerializable(seed int64, n, clients int) *History {
	rng := genRNG(seed)
	initial := map[string]model.Value{"X": "i-X", "Y": "i-Y"}
	h := New(initial)
	seqs := make(map[string]int)
	cur := initial["X"]
	for i := 0; i < n; i++ {
		c := fmt.Sprintf("c%d", i%clients)
		seqs[c]++
		inv := int64(i * 10)
		next := model.Value(fmt.Sprintf("x%d", i))
		rec := &TxnRecord{
			ID: model.TxnID{Client: c, Seq: seqs[c]}, Client: c,
			Reads:   map[string]model.Value{"X": cur},
			Writes:  []model.Write{{Object: "X", Value: next}},
			Invoked: inv, Completed: inv + int64(5+rng.next(40)),
		}
		if rng.next(4) == 0 {
			rec.Writes = append(rec.Writes,
				model.Write{Object: "Y", Value: model.Value(fmt.Sprintf("y%d", i))})
		}
		h.Add(rec)
		cur = next
	}
	return h
}

// TestStreamingEvictionDifferential is the eviction agreement contract:
// on a corpus mixing accepting and refuting histories at every level,
// the aggressively evicting session (sweep per append), the non-evicting
// bounded session, and the batch oracle must agree on the verdict — and
// the two sessions on the first-violation index and transaction too.
func TestStreamingEvictionDifferential(t *testing.T) {
	accepts, refutes, retired := 0, 0, 0
	check := func(what string, h *History) {
		t.Helper()
		for _, level := range sessionLevels {
			got := runStreaming(h, level, 1)
			want := CheckIncremental(h, level)
			if got.OK != want.OK || got.FirstViolation != want.FirstViolation ||
				got.FirstViolationID != want.FirstViolationID {
				t.Fatalf("%s at %s: evicting OK=%v fv=%d (%s); bounded OK=%v fv=%d (%s)\n%s",
					what, level, got.OK, got.FirstViolation, got.Reason,
					want.OK, want.FirstViolation, want.Reason, h)
			}
			if batch := CheckBatch(h, level); got.OK != batch.OK {
				t.Fatalf("%s at %s: evicting OK=%v (%s), batch OK=%v (%s)\n%s",
					what, level, got.OK, got.Reason, batch.OK, batch.Reason, h)
			}
			if got.OK {
				accepts++
				if level == "serializable" || level == "strict-serializable" {
					validateTotalWitness(t, h, got.Witness, level == "strict-serializable")
				}
			} else {
				refutes++
			}
			retired += got.Retired
		}
	}
	for seed := int64(1); seed <= 150; seed++ {
		n := 2 + int(seed%13)
		check(fmt.Sprintf("differential seed %d", seed), genDifferential(seed*104729, n))
	}
	for seed := int64(1); seed <= 6; seed++ {
		check("serializable", GenSerializable(seed, 96, 8))
		check("dense", genDenseSerializable(seed, 96, 8))
		check("causalonly", GenCausalOnly(seed, 48))
		check("violating", GenViolating(seed, 64))
	}
	for name, h := range seedHistories() {
		check(name, h)
	}
	if accepts < 80 || refutes < 80 {
		t.Fatalf("eviction differential corpus lost its teeth: %d accepting, %d refuting", accepts, refutes)
	}
	if retired == 0 {
		t.Fatal("eviction differential never retired a transaction: the evicting path was not exercised")
	}
}

// FuzzStreamingEviction mutates encoded histories and asserts the
// evicting session agrees with the bounded session (verdict, first
// violation) and the batch checker (verdict) at every level.
func FuzzStreamingEviction(f *testing.F) {
	for _, h := range seedHistories() {
		data, err := EncodeHistory(h)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h := DecodeHistory(data)
		if h.Len() == 0 {
			return
		}
		for _, level := range sessionLevels {
			got := runStreaming(h, level, 1)
			want := CheckIncremental(h, level)
			if got.OK != want.OK || got.FirstViolation != want.FirstViolation {
				t.Fatalf("level %s: evicting OK=%v fv=%d (%s); bounded OK=%v fv=%d (%s)\n%s",
					level, got.OK, got.FirstViolation, got.Reason,
					want.OK, want.FirstViolation, want.Reason, h)
			}
			if batch := CheckBatch(h, level); got.OK != batch.OK {
				t.Fatalf("level %s: evicting OK=%v (%s), batch OK=%v (%s)\n%s",
					level, got.OK, got.Reason, batch.OK, batch.Reason, h)
			}
		}
	})
}

// TestStreamingLiftsCeiling certifies histories past MaxTxns, where the
// batch oracle refuses outright: the accepting direction must retire
// aggressively enough to keep the window flat, and the refuting
// direction must still pin the violation to its planted tail.
func TestStreamingLiftsCeiling(t *testing.T) {
	n := 3 * MaxTxns / 2 // 6144 — comfortably past the batch ceiling
	start := time.Now()
	sv := runStreaming(GenSerializable(11, n, 8), "strict-serializable", 0)
	if !sv.OK {
		t.Fatalf("streaming refuted a serializable history at %d txns: %s (violation %d)",
			n, sv.Reason, sv.FirstViolation)
	}
	if sv.Appended != n {
		t.Fatalf("appended %d of %d", sv.Appended, n)
	}
	if sv.Retired < n/2 {
		t.Fatalf("only %d of %d transactions retired: eviction is stalling", sv.Retired, n)
	}
	if sv.PeakWindow > n/4 {
		t.Fatalf("peak window %d on %d txns: closure state is not window-bounded", sv.PeakWindow, n)
	}
	if len(sv.Witness) != n {
		t.Fatalf("witness covers %d of %d transactions", len(sv.Witness), n)
	}
	if elapsed := time.Since(start); elapsed > checkerBudget {
		t.Fatalf("streaming accept of %d txns took %v, budget %v", n, elapsed, checkerBudget)
	}

	// Refuting direction, causal level: the Lemma-1 violation is planted
	// in the last 5 transactions.
	sv = runStreaming(GenViolating(13, n), "causal", 0)
	if sv.OK {
		t.Fatalf("streaming accepted a violating %d-txn history", n)
	}
	if sv.FirstViolation < n-5 {
		t.Fatalf("first violation pinned at %d, want within the planted tail [%d, %d)",
			sv.FirstViolation, n-5, n)
	}
}

// TestStreamingWitnessSplicesRetiredChain pins the witness contract
// under eviction: the retired chain followed by the live-window
// extension must itself be a legal serialization of the full history.
func TestStreamingWitnessSplicesRetiredChain(t *testing.T) {
	cases := []struct {
		level string
		h     *History
	}{
		// Real-time edges order the whole past before the live frontier
		// wherever the overlap chain has a cut, so eviction progresses on
		// the generator's loosely coupled mix (this seed has cuts; a seed
		// whose overlap chain never breaks legitimately retires nothing).
		{"strict-serializable", GenSerializable(11, 600, 8)},
		// Pure serializability has no real-time edges: eviction advances
		// only as far as the dependency order buries the past, so this
		// leg uses the densely chained history.
		{"serializable", genDenseSerializable(7, 600, 8)},
	}
	for _, tc := range cases {
		sv := runStreaming(tc.h, tc.level, 1)
		if !sv.OK {
			t.Fatalf("%s: refuted: %s", tc.level, sv.Reason)
		}
		if sv.Retired == 0 {
			t.Fatalf("%s: nothing retired; witness splice untested", tc.level)
		}
		validateTotalWitness(t, tc.h, sv.Witness, tc.level == "strict-serializable")
	}
}

// TestStreamingUndeclaredClientRefusal: once eviction has begun, a
// client the session has never seen cannot be threaded to the retired
// prefix, so its first append must refuse (not refute) — and declaring
// the client up front must make the same history certify clean.
func TestStreamingUndeclaredClientRefusal(t *testing.T) {
	build := func() *History {
		h := New(map[string]model.Value{})
		for i := 0; i < 200; i++ {
			c := fmt.Sprintf("c%d", i%2)
			inv := int64(i * 10)
			h.Add(&TxnRecord{
				ID: model.TxnID{Client: c, Seq: i/2 + 1}, Client: c,
				Writes:  []model.Write{{Object: "X", Value: model.Value(fmt.Sprintf("v%d", i))}},
				Invoked: inv, Completed: inv + 5,
			})
		}
		h.Add(&TxnRecord{
			ID: model.TxnID{Client: "late", Seq: 1}, Client: "late",
			Writes:  []model.Write{{Object: "X", Value: "v-late"}},
			Invoked: 2000, Completed: 2005,
		})
		return h
	}

	h := build()
	s := NewStreamingSession(h.initial, "strict-serializable", []string{"c0", "c1"})
	s.evictEvery = 1
	for _, rec := range h.Records() {
		if !s.Append(rec) {
			break
		}
	}
	sv := s.Finish()
	if sv.OK || sv.FirstViolation != -1 {
		t.Fatalf("undeclared client: OK=%v fv=%d (%s), want a refusal", sv.OK, sv.FirstViolation, sv.Reason)
	}
	if sv.Retired == 0 {
		t.Fatal("nothing retired before the late client arrived; refusal path untested")
	}

	sv = runStreaming(build(), "strict-serializable", 1) // declares every client
	if !sv.OK {
		t.Fatalf("declared clients: refused or refuted: %s", sv.Reason)
	}
}

// TestStreamingCertify100k is the streaming-scale smoke (CI runs it with
// STREAM_SMOKE=1): a 100k-transaction, 256-client history certifies
// ride-along with the closure window and the heap both bounded by the
// active window, not the run length.
func TestStreamingCertify100k(t *testing.T) {
	if os.Getenv("STREAM_SMOKE") == "" {
		t.Skip("set STREAM_SMOKE=1 to run the 100k streaming smoke")
	}
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	n := 100_000
	start := time.Now()
	sv := runStreaming(GenSerializable(3, n, 256), "strict-serializable", 0)
	elapsed := time.Since(start)
	if !sv.OK {
		t.Fatalf("refuted at txn %d: %s", sv.FirstViolation, sv.Reason)
	}
	if sv.Appended != n || sv.Retired < n-4*MaxTxns {
		t.Fatalf("appended %d, retired %d: window not streaming", sv.Appended, sv.Retired)
	}
	if sv.PeakWindow > MaxTxns {
		t.Fatalf("peak window %d exceeds the old whole-history ceiling %d", sv.PeakWindow, MaxTxns)
	}

	var after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&after)
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 512<<20 {
		t.Fatalf("heap grew %d MiB over the run; streaming state should stay window-sized", grew>>20)
	}
	t.Logf("100k/256-client cell: %v wall, peak window %d, %d retired, %d resolves",
		elapsed, sv.PeakWindow, sv.Retired, sv.Resolves)
}

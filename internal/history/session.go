// Online incremental certification: a Session carries the transitively
// closed partial order and the anti-dependency clause set of a history
// ACROSS commits, so a load run can be certified as it executes instead
// of re-solving the whole prefix per call.
//
// The key observation is that everything the batch solver derives from
// the history is monotone in the prefix: committing one more transaction
// only ever ADDS base edges (program order, reads-from, real time),
// ADDS unit edges (an initial-value read must precede every later writer
// of the object) and ADDS anti-dependency clauses (a new writer of an
// object some earlier transaction read threads a new (o → W) ∨ (t → o)
// disjunction). Nothing is ever retracted, so the session can keep the
// closed base order and the clause set and extend them per Append with
// rollback-free propagation — and the first append whose constraint set
// admits no satisfying order IS the first offending commit, with the
// appended prefix as the minimal refutable witness.
//
// Branching decisions, unlike constraints, are not monotone, so the
// session does not persist them as facts. Instead it retains the last
// satisfying order found (the "model") and repairs it greedily: a new
// base edge is folded into the model, and a new clause is satisfied by
// committing whichever disjunct the model can absorb without a cycle.
// Only when repair fails — the model contradicts the new constraints —
// does the session fall back to a fresh solver search from the retained
// base and clause set; only when THAT fails is a violation declared.
// On the accepting runs certification rides along with, repair almost
// always succeeds and an Append costs a handful of bitset operations.
//
// Reads may observe writers that have not been appended yet (the driver
// collects completions per client, not in dependency order), so the
// session parks such reads as pending and threads their edges and
// clauses when the writer commits; a read still pending when Finish is
// called is the batch checker's dangling-read refutation.
package history

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// SessionVerdict is the outcome of an incremental certification run.
type SessionVerdict struct {
	Verdict
	// FirstViolation is the 0-based append index of the first offending
	// commit — the first transaction whose appended prefix admits no
	// legal serialization (or is malformed). It is -1 when the history
	// certified clean, and also -1 when the session refused for capacity
	// (more than MaxTxns appends).
	FirstViolation int
	// FirstViolationID is the transaction appended at FirstViolation.
	FirstViolationID model.TxnID
	// WitnessPrefix is the minimal refutable prefix: the IDs of every
	// transaction appended up to and including the first offending
	// commit, in append order. Nil when the history certified clean.
	WitnessPrefix []model.TxnID
	// Appended is the number of transactions the session accepted
	// (violating appends included); Resolves counts the full solver
	// searches the session had to fall back to (0 on a run certified
	// entirely by model repair).
	Appended int
	Resolves int
}

// obligation is one value read awaiting or holding its writer: reader
// read obj=val, written by txn index writer (-1 while the writer has not
// been appended yet).
type obligation struct {
	reader int
	obj    string
	val    model.Value
	writer int
}

// clientState is the per-serialization constraint state. Causal
// consistency requires one serialization per client (each legal only for
// that client's transactions), so the session keeps one state per
// reading client; the total-order levels use a single shared state.
type clientState struct {
	client string
	// base is the forced order: every global edge plus this
	// serialization's unit edges. Monotone — edges are never removed.
	base *orderClosure
	// model is the last satisfying extension of base (base plus committed
	// clause disjuncts). nil transiently when repair failed and a solver
	// re-search is owed at the end of the current Append.
	model *orderClosure
	// clauses is the retained anti-dependency clause set. Clauses
	// satisfied by base are pruned lazily at each re-solve.
	clauses []clause
}

// Session certifies a history incrementally at one consistency level:
// Append each transaction as it commits (in any order consistent with
// per-client program order), then Finish for the verdict. Append reports
// false as soon as the appended prefix is refutable, which is how a load
// run learns about the first offending commit while still running.
type Session struct {
	level    string
	realTime bool // strict-serializable: completed-before-invoked edges
	perCli   bool // causal: one serialization per reading client
	ra       bool // read-atomic: pairwise fracture checks, no closures

	initial map[string]model.Value

	txns   []*TxnRecord
	index  map[model.TxnID]int
	lastOf map[string]int // last appended txn per client (program order)

	writes    []map[string]model.Value // final value per object, per txn
	writer    map[ov]int
	writersOf map[string][]int

	valueReaders map[string][]*obligation
	initReaders  map[string][]int
	pending      map[ov][]*obligation
	pendingCnt   int
	unresolved   []int // per-txn count of reads still awaiting a writer

	words  int // current bitset word capacity of every closure
	base   *orderClosure
	states map[string]*clientState
	order  []*clientState // states in creation order (deterministic)

	resolves int
	done     bool
	sv       *SessionVerdict
}

// NewSession starts an incremental certification at the given level
// ("causal", "read-atomic", "serializable", "strict-serializable"; any
// other level checks causal, mirroring Check). initial gives the initial
// value per object; capHint sizes the closure bitsets for the expected
// transaction count (they grow if exceeded).
func NewSession(initial map[string]model.Value, level string, capHint int) *Session {
	s := &Session{
		level:        level,
		initial:      make(map[string]model.Value, len(initial)),
		index:        make(map[model.TxnID]int),
		lastOf:       make(map[string]int),
		writer:       make(map[ov]int),
		writersOf:    make(map[string][]int),
		valueReaders: make(map[string][]*obligation),
		initReaders:  make(map[string][]int),
		pending:      make(map[ov][]*obligation),
		states:       make(map[string]*clientState),
	}
	for k, v := range initial {
		s.initial[k] = v
	}
	switch level {
	case "read-atomic":
		s.ra = true
	case "serializable":
	case "strict-serializable":
		s.realTime = true
	default:
		s.level = "causal"
		s.perCli = true
	}
	if capHint < 64 {
		capHint = 64
	}
	if capHint > MaxTxns {
		capHint = MaxTxns
	}
	s.words = (capHint + 63) / 64
	if !s.ra {
		s.base = &orderClosure{}
		if !s.perCli {
			// Total-order levels: one shared serialization state whose
			// base IS the global closure (aliased, not cloned — there is
			// only one serialization, so its unit edges are global facts
			// and maintaining a second identical closure would double the
			// forced-edge cost).
			st := &clientState{base: s.base, model: &orderClosure{}}
			s.states[""] = st
			s.order = append(s.order, st)
		}
	}
	return s
}

// Initial returns the initial value of obj (the zero Value when unset).
func (s *Session) Initial(obj string) model.Value { return s.initial[obj] }

// Appended returns the number of transactions appended so far.
func (s *Session) Appended() int { return len(s.txns) }

// Append feeds the next committed transaction to the session and reports
// whether the appended prefix still admits a legal serialization. Once
// it returns false the session is sealed: the verdict (with the first
// offending commit) is available from Finish and later appends are
// ignored.
func (s *Session) Append(rec *TxnRecord) bool {
	if s.done {
		return false
	}
	i := len(s.txns)
	if i >= MaxTxns {
		s.done = true
		s.sv = &SessionVerdict{
			Verdict:        fail("history too large for exact checking: > %d transactions", MaxTxns),
			FirstViolation: -1,
			Appended:       len(s.txns),
			Resolves:       s.resolves,
		}
		return false
	}
	if _, dup := s.index[rec.ID]; dup {
		// Append before sealing so the witness prefix includes the
		// offending commit itself, like every other violation path.
		s.txns = append(s.txns, rec)
		return s.violate(i, rec.ID, "duplicate transaction id %s", rec.ID)
	}
	s.txns = append(s.txns, rec)
	s.index[rec.ID] = i
	s.unresolved = append(s.unresolved, 0)

	// Final writes (last write per object wins) and value distinctness.
	w := make(map[string]model.Value, len(rec.Writes))
	for _, wr := range rec.Writes {
		w[wr.Object] = wr.Value
	}
	s.writes = append(s.writes, w)
	wobjs := make([]string, 0, len(w))
	for obj := range w {
		wobjs = append(wobjs, obj)
	}
	sort.Strings(wobjs)
	for _, obj := range wobjs {
		val := w[obj]
		if val == s.Initial(obj) {
			return s.violate(i, rec.ID,
				"values not distinct: %s=%s written by %s equals the initial value", obj, val, rec.ID)
		}
		if j, dup := s.writer[ov{obj, val}]; dup && j != i {
			return s.violate(i, rec.ID,
				"values not distinct: %s=%s written by both %s and %s", obj, val, s.txns[j].ID, rec.ID)
		}
		s.writer[ov{obj, val}] = i
		s.writersOf[obj] = append(s.writersOf[obj], i)
	}

	if !s.ra {
		s.addNode(i)
		// Program order.
		if prev, seen := s.lastOf[rec.Client]; seen {
			if !s.forceGlobal(i, prev, i) {
				return false
			}
		}
		// Real time (strict serializability): nearest neighbours first so
		// older pairs are usually already implied transitively.
		if s.realTime {
			for j := i - 1; j >= 0; j-- {
				a := s.txns[j]
				if a.Completed >= 0 && a.Completed < rec.Invoked {
					if !s.forceGlobal(i, j, i) {
						return false
					}
				}
				if rec.Completed >= 0 && rec.Completed < a.Invoked {
					if !s.forceGlobal(i, i, j) {
						return false
					}
				}
			}
		}
	}
	s.lastOf[rec.Client] = i

	// The new transaction as a writer: thread the obligations of every
	// EARLIER read of the objects it wrote.
	for _, obj := range wobjs {
		for _, r := range s.initReaders[obj] {
			// An initial-value read must precede every writer of the object.
			if r != i && !s.ra {
				if !s.forceIn(i, s.stateFor(s.txns[r].Client), r, i) {
					return false
				}
			}
		}
		if !s.ra {
			for _, ob := range s.valueReaders[obj] {
				if ob.writer < 0 || ob.writer == i || ob.reader == i {
					continue // pending (threaded at resolution), or own
				}
				// Anti-dependency: the new writer must not land between the
				// read's writer and the read. Reader-before-new-writer first:
				// for a run appended in rough time order that disjunct is the
				// one the model usually absorbs.
				s.addClause(s.stateFor(s.txns[ob.reader].Client),
					clause{ob.reader, i, i, ob.writer})
			}
		}
		// Reads that were waiting for exactly this write resolve now.
		key := ov{obj, w[obj]}
		if waiting := s.pending[key]; len(waiting) > 0 {
			delete(s.pending, key)
			for _, ob := range waiting {
				s.unresolved[ob.reader]--
				s.pendingCnt--
				if !s.bind(i, ob, i) {
					return false
				}
				if s.ra && s.unresolved[ob.reader] == 0 {
					if !s.checkReadAtomic(i, ob.reader) {
						return false
					}
				}
			}
		}
	}

	// The new transaction as a reader.
	for _, obj := range sortedObjects(rec.Reads) {
		val := rec.Reads[obj]
		if val == s.Initial(obj) {
			s.initReaders[obj] = append(s.initReaders[obj], i)
			if s.ra {
				continue
			}
			st := s.stateFor(rec.Client)
			for _, o := range s.writersOf[obj] {
				if o == i {
					continue // own write: reads precede writes
				}
				if !s.forceIn(i, st, i, o) {
					return false
				}
			}
			continue
		}
		ob := &obligation{reader: i, obj: obj, val: val, writer: -1}
		s.valueReaders[obj] = append(s.valueReaders[obj], ob)
		if wi, found := s.writer[ov{obj, val}]; found {
			if !s.bind(i, ob, wi) {
				return false
			}
		} else {
			s.pending[ov{obj, val}] = append(s.pending[ov{obj, val}], ob)
			s.unresolved[i]++
			s.pendingCnt++
		}
	}
	if s.ra && len(rec.Reads) > 0 && s.unresolved[i] == 0 {
		if !s.checkReadAtomic(i, i) {
			return false
		}
	}

	// Any state whose model could not absorb the new constraints owes a
	// full solver search; failure here is the first offending commit.
	for _, st := range s.order {
		if st.model == nil && !s.resolve(i, st) {
			return false
		}
	}
	return true
}

// Finish seals the session and returns the verdict. Reads still awaiting
// a writer refute the history (the batch checker's dangling read); an
// accepting verdict carries a witness serialization extended from the
// retained model.
func (s *Session) Finish() SessionVerdict {
	if s.sv != nil {
		return *s.sv
	}
	if s.pendingCnt > 0 {
		first := -1
		var firstOb *obligation
		for _, waiting := range s.pending {
			for _, ob := range waiting {
				if first < 0 || ob.reader < first ||
					(ob.reader == first && ob.obj < firstOb.obj) {
					first, firstOb = ob.reader, ob
				}
			}
		}
		s.violate(first, s.txns[first].ID,
			"dangling read: %s read %s=%s, never written", s.txns[first].ID, firstOb.obj, firstOb.val)
		return *s.sv
	}
	var witness []model.TxnID
	if !s.ra && len(s.order) > 0 {
		// Mirror the batch checkers: the witness is the serialization of
		// the last state checked (for causal, the last reading client in
		// sorted order; for the total orders, the single shared state).
		st := s.order[0]
		if s.perCli {
			for _, other := range s.order[1:] {
				if other.client > st.client {
					st = other
				}
			}
		}
		witness = make([]model.TxnID, 0, len(s.txns))
		for _, idx := range extendClosure(st.model) {
			witness = append(witness, s.txns[idx].ID)
		}
	}
	s.done = true
	s.sv = &SessionVerdict{
		Verdict:        ok(witness),
		FirstViolation: -1,
		Appended:       len(s.txns),
		Resolves:       s.resolves,
	}
	return *s.sv
}

// violate seals the session with a refutation first established at
// append index cur.
func (s *Session) violate(cur int, id model.TxnID, format string, args ...any) bool {
	s.done = true
	prefix := make([]model.TxnID, 0, cur+1)
	for k := 0; k <= cur && k < len(s.txns); k++ {
		prefix = append(prefix, s.txns[k].ID)
	}
	s.sv = &SessionVerdict{
		Verdict:          fail(format, args...),
		FirstViolation:   cur,
		FirstViolationID: id,
		WitnessPrefix:    prefix,
		Appended:         len(s.txns),
		Resolves:         s.resolves,
	}
	return false
}

// noSerialization is the per-level refutation message, matching the
// batch checkers.
func (s *Session) noSerialization(client string) string {
	switch {
	case s.perCli:
		return fmt.Sprintf("no causal serialization exists for client %s", client)
	case s.realTime:
		return "no strict serialization exists"
	default:
		return "no serialization exists"
	}
}

// cyclicBase is the per-level message for a cycle in the forced global
// order, matching the batch checkers.
func (s *Session) cyclicBase() string {
	switch {
	case s.perCli:
		return "causal relation is cyclic"
	case s.realTime:
		return "real-time-augmented dependency relation is cyclic"
	default:
		return "dependency relation is cyclic"
	}
}

// addNode grows every closure by one node (and widens the bitsets when
// the capacity is exhausted). It cannot fail: capacity refusal happens
// before it, at the MaxTxns check.
func (s *Session) addNode(i int) {
	if i >= s.words*64 {
		s.words *= 2
		s.base.growWords(s.words)
		for _, st := range s.order {
			if st.base != s.base {
				st.base.growWords(s.words)
			}
			if st.model != nil {
				st.model.growWords(s.words)
			}
		}
	}
	s.base.addNode(s.words)
	for _, st := range s.order {
		if st.base != s.base {
			st.base.addNode(s.words)
		}
		if st.model != nil {
			st.model.addNode(s.words)
		}
	}
}

// stateFor returns (creating on first use) the serialization state the
// given client's read obligations constrain.
func (s *Session) stateFor(client string) *clientState {
	if !s.perCli {
		return s.states[""]
	}
	if st, found := s.states[client]; found {
		return st
	}
	st := &clientState{client: client, base: s.base.clone(), model: s.base.clone()}
	s.states[client] = st
	s.order = append(s.order, st)
	return st
}

// forceGlobal adds a forced edge of the global relation (program order,
// reads-from, real time) to the base and every state. A cycle in the
// global base refutes the history outright.
func (s *Session) forceGlobal(cur, a, b int) bool {
	if !s.base.addEdge(a, b) {
		return s.violate(cur, s.txns[cur].ID, "%s", s.cyclicBase())
	}
	for _, st := range s.order {
		if !s.forceIn(cur, st, a, b) {
			return false
		}
	}
	return true
}

// forceIn adds a forced edge to one state's base and folds it into the
// model (invalidating the model on conflict; a base conflict refutes).
func (s *Session) forceIn(cur int, st *clientState, a, b int) bool {
	if !st.base.addEdge(a, b) {
		return s.violate(cur, s.txns[cur].ID, "%s", s.noSerialization(st.client))
	}
	if st.model != nil && !st.model.addEdge(a, b) {
		st.model = nil
	}
	return true
}

// addClause retains an anti-dependency clause and repairs the model:
// clauses the base already satisfies are dropped, clauses the model
// satisfies cost nothing, and otherwise the model greedily commits the
// first disjunct it can absorb. If neither fits, the model is
// invalidated and Append falls back to a full solver search.
func (s *Session) addClause(st *clientState, c clause) {
	if st.base.succ[c.a1].has(c.b1) || st.base.succ[c.a2].has(c.b2) {
		return
	}
	st.clauses = append(st.clauses, c)
	if st.model == nil {
		return
	}
	if st.model.succ[c.a1].has(c.b1) || st.model.succ[c.a2].has(c.b2) {
		return
	}
	if st.model.addEdge(c.a1, c.b1) || st.model.addEdge(c.a2, c.b2) {
		return
	}
	st.model = nil
}

// bind resolves a value read to its writer: the reads-from edge becomes
// part of the global base and the read's anti-dependency clauses are
// threaded against every other known writer of the object (writers still
// to come are threaded by the writer-side pass of Append).
func (s *Session) bind(cur int, ob *obligation, wi int) bool {
	ob.writer = wi
	if ob.reader == wi {
		if s.ra {
			return true // reading your own write is not a fracture
		}
		return s.violate(cur, s.txns[cur].ID, "%s",
			s.noSerialization(s.txns[ob.reader].Client))
	}
	if s.ra {
		return true
	}
	if !s.forceGlobal(cur, wi, ob.reader) {
		return false
	}
	st := s.stateFor(s.txns[ob.reader].Client)
	for _, o := range s.writersOf[ob.obj] {
		if o == wi || o == ob.reader {
			continue
		}
		s.addClause(st, clause{o, wi, ob.reader, o})
	}
	return true
}

// resolve rebuilds a state's model by a full solver search over the
// retained base and clause set. Failure means the appended prefix admits
// no legal serialization: the current append is the first offending
// commit.
func (s *Session) resolve(cur int, st *clientState) bool {
	live := st.clauses[:0]
	for _, c := range st.clauses {
		if st.base.succ[c.a1].has(c.b1) || st.base.succ[c.a2].has(c.b2) {
			continue // satisfied by the base: monotone, stays satisfied
		}
		live = append(live, c)
	}
	st.clauses = live
	s.resolves++
	model, found := newClauseSolver(st.base.clone(), st.clauses).solveClosure()
	if !found {
		return s.violate(cur, s.txns[cur].ID, "%s", s.noSerialization(st.client))
	}
	st.model = model
	return true
}

// checkReadAtomic runs the pairwise fracture check for reader (all of
// whose reads have resolved writers) at append index cur, mirroring
// CheckReadAtomic.
func (s *Session) checkReadAtomic(cur, reader int) bool {
	t := s.txns[reader]
	objs := sortedObjects(t.Reads)
	writerOf := func(obj string) int {
		val := t.Reads[obj]
		if val == s.Initial(obj) {
			return -1 // initial pseudo-writer: older than everything
		}
		return s.writer[ov{obj, val}]
	}
	for _, obj := range objs {
		w := writerOf(obj)
		if w < 0 {
			continue
		}
		for _, obj2 := range objs {
			if obj2 == obj {
				continue
			}
			if _, sibling := s.writes[w][obj2]; !sibling {
				continue
			}
			w2 := writerOf(obj2)
			if w2 == w {
				continue
			}
			if w2 < 0 {
				return s.violate(cur, s.txns[cur].ID,
					"fractured read: %s read %s from %s but %s from the initial value",
					t.ID, obj, s.txns[w].ID, obj2)
			}
			a, b := s.txns[w2], s.txns[w]
			if a.Completed >= 0 && a.Completed < b.Invoked {
				return s.violate(cur, s.txns[cur].ID,
					"fractured read: %s read %s from %s but %s from older %s",
					t.ID, obj, b.ID, obj2, a.ID)
			}
		}
	}
	return true
}

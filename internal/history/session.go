// Online incremental certification: a Session carries the transitively
// closed partial order and the anti-dependency clause set of a history
// ACROSS commits, so a load run can be certified as it executes instead
// of re-solving the whole prefix per call.
//
// The key observation is that everything the batch solver derives from
// the history is monotone in the prefix: committing one more transaction
// only ever ADDS base edges (program order, reads-from, real time),
// ADDS unit edges (an initial-value read must precede every later writer
// of the object) and ADDS anti-dependency clauses (a new writer of an
// object some earlier transaction read threads a new (o → W) ∨ (t → o)
// disjunction). Nothing is ever retracted, so the session can keep the
// closed base order and the clause set and extend them per Append with
// rollback-free propagation — and the first append whose constraint set
// admits no satisfying order IS the first offending commit, with the
// appended prefix as the minimal refutable witness.
//
// Branching decisions, unlike constraints, are not monotone, so the
// session does not persist them as facts. Instead it retains the last
// satisfying order found (the "model") and repairs it greedily: a new
// base edge is folded into the model, and a new clause is satisfied by
// committing whichever disjunct the model can absorb without a cycle.
// Clause satisfaction is monotone in the model, so ONE shared growing
// model serves every serialization state at once: committing a disjunct
// for one client can never unsatisfy another client's clauses. Only when
// repair fails — the shared model contradicts a state's new constraints —
// does that state fall back to a fresh solver search over its own base
// and clause set (becoming privately modeled from then on); only when
// THAT fails is a violation declared. Per-client bases are sparse
// copy-on-write overlays over the single global closure (cow.go), so a
// global edge costs O(1) per client instead of a full closure update.
//
// Reads may observe writers that have not been appended yet (the driver
// collects completions per client, not in dependency order), so the
// session parks such reads as pending and threads their edges and
// clauses when the writer commits; a read still pending when Finish is
// called is the batch checker's dangling-read refutation.
//
// # Streaming mode and windowed eviction
//
// NewSession keeps every appended transaction and refuses past MaxTxns.
// NewStreamingSession lifts that ceiling: it RETIRES committed prefixes
// of the closure once nothing in the future can reach them, so closure
// state is bounded by the active window rather than by total appends.
// Each sweep retires the largest downward-closed set S of live
// transactions such that:
//
//	C1. every member of S base-precedes every live transaction outside
//	    S (computed as a blocked-set fixpoint: a transaction failing a
//	    per-member condition blocks, and anything not preceding a
//	    blocked transaction blocks transitively);
//	C2. every declared client has appended at least once — so every
//	    future transaction chains to S through its client's
//	    program-order tail (C6), making S → future a base fact;
//	C3. no member has pending reads (constraints fully threaded);
//	C6. no member is the newest transaction of its client (the tail
//	    keeps future appends ordered after the retired prefix).
//
// Live anti-dependency clauses referencing a member do NOT block
// retirement (clauses between concurrent transactions are satisfied in
// the model but never in the base, so they would pin the window open
// forever). Instead the sweep DECIDES every such clause on the way out,
// using the batch's defining property: a member base-precedes every
// live transaction, so a member→live disjunct is satisfied (clause
// dropped), a live→member disjunct is dead (its sibling is
// unit-forced), and a member↔member disjunct joins the batch's ghost
// constraint set below.
//
// Members of one batch may be mutually unordered (concurrent
// transactions retire together — requiring a total chain would deadlock
// the window on the first concurrent pair), so each batch freezes its
// internal base order at retirement. Every later ordering question
// against the retired set is then a recorded fact: cross-batch pairs
// are ordered by batch (each batch preceded everything live when it
// retired, including all later batches), same-batch pairs by the frozen
// order. The one genuinely open case — constraints between two
// same-batch members the base never ordered, reachable through clause
// decisions at the sweep or a late read of a long-retired writer — is
// recorded per state as "ghost" unit edges and ghost clauses over the
// frozen batch order, decided exactly as the non-evicting session's
// solver would: retired↔live edges all point retired→live, so a batch
// is isolated from the live window and a batch-local solver search
// (ghostCheck) is the whole decision. Per-state forced units between
// batch members migrate into ghost edges at retirement, preserving
// each serialization's facts. Verdicts and first-violation indices are
// identical to the non-evicting session (the eviction differential
// fuzz pins this). Retired slots return to a free list and are reused,
// so bitset rows are sized by the PEAK window. Per-transaction scalars
// that future reads may still name (the (object,value)→writer map,
// IDs, the duplicate-ID index, batch positions) are kept for the whole
// run; they are O(1) per transaction, not O(window).
package history

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/model"
)

// SessionVerdict is the outcome of an incremental certification run.
type SessionVerdict struct {
	Verdict
	// FirstViolation is the 0-based append index of the first offending
	// commit — the first transaction whose appended prefix admits no
	// legal serialization (or is malformed). It is -1 when the history
	// certified clean, and also -1 when the session refused for capacity
	// (more than MaxTxns appends on a bounded session) or for an
	// undeclared client appearing after eviction began.
	FirstViolation int
	// FirstViolationID is the transaction appended at FirstViolation.
	FirstViolationID model.TxnID
	// WitnessPrefix is the minimal refutable prefix: the IDs of every
	// transaction appended up to and including the first offending
	// commit, in append order. Nil when the history certified clean.
	WitnessPrefix []model.TxnID
	// Appended is the number of transactions the session accepted
	// (violating appends included); Resolves counts the full solver
	// searches the session had to fall back to (0 on a run certified
	// entirely by model repair).
	Appended int
	Resolves int
	// Retired counts transactions evicted from the closure window
	// (streaming sessions only); PeakWindow is the largest live window
	// the session ever held — the quantity closure memory scales with.
	Retired    int
	PeakWindow int
}

// obligation is one value read awaiting or holding its writer: reader
// read obj=val, written by txn index writer (-1 while the writer has not
// been appended yet).
type obligation struct {
	reader int
	obj    string
	val    model.Value
	writer int
}

// clientState is the per-serialization constraint state. Causal
// consistency requires one serialization per client (each legal only for
// that client's transactions), so the session keeps one state per
// reading client; the total-order levels use a single shared state.
type clientState struct {
	client string
	// base is the forced order: every global edge plus this
	// serialization's unit edges, as a copy-on-write overlay over the
	// session's global closure. Monotone — edges are never removed.
	base *cowClosure
	// shared marks a state whose model is the session's shared model.
	// When false, model is this state's private satisfying extension
	// (nil transiently while a solver re-search is owed).
	shared bool
	model  *orderClosure
	// conflict marks a state whose model could not absorb this Append's
	// constraints: a full solver search is owed at the end of Append.
	conflict bool
	// hint is the model the conflict invalidated, retained until the
	// owed re-solve warm-starts its branch polarity from it (the old
	// model is usually one flip from a satisfying order).
	hint *orderClosure
	// clauses is the retained anti-dependency clause set, slot-indexed.
	// Clauses satisfied by base are pruned lazily at re-solves and
	// eviction sweeps.
	clauses []clause
	// ghosts holds this serialization's forced unit edges between
	// same-batch retired transactions the base never ordered, as local
	// index pairs per batch (see the package comment); ghostClauses holds
	// the still-disjunctive constraints whose disjuncts both landed
	// inside one batch, in the same local index space. Nil until a sweep
	// decision or a late read creates one.
	ghosts       map[int32][][2]int32
	ghostClauses map[int32][]clause
}

// retiredBatch is one batch of transactions evicted together: a
// downward-closed set, every member of which base-preceded every
// transaction left live (and so, transitively, everything appended or
// retired later). succ freezes the base order among the members —
// which concurrent members may legitimately lack — so later
// constraints between two same-batch members resolve against it, or
// become per-state ghost units when the pair is unordered.
type retiredBatch struct {
	members []int    // global indices, ascending append order
	succ    []bitset // frozen base order among members (local indices)
}

// objRetired summarizes the retired writers of one object: only the
// latest holding batch's writers matter individually — any
// earlier-batch retired writer base-precedes them, permanently
// satisfying its anti-dependency disjunct against their reads.
type objRetired struct {
	batch   int32
	writers []int32 // global indices of the object's writers in batch
}

// Session certifies a history incrementally at one consistency level:
// Append each transaction as it commits (in any order consistent with
// per-client program order), then Finish for the verdict. Append reports
// false as soon as the appended prefix is refutable, which is how a load
// run learns about the first offending commit while still running.
type Session struct {
	level    string
	realTime bool // strict-serializable: completed-before-invoked edges
	perCli   bool // causal: one serialization per reading client
	ra       bool // read-atomic: pairwise fracture checks, no closures

	// streaming lifts the MaxTxns ceiling and (for the closure levels)
	// enables windowed eviction; declared lists the clients that may
	// appear once eviction has begun.
	streaming       bool
	declared        map[string]bool
	pendingDeclared int
	evictEvery      int // appends between eviction sweeps
	sinceSweep      int
	evicting        bool

	initial map[string]model.Value

	// Global append-order records. txns and writes rows are released on
	// retirement; ids and index are kept for witnesses and duplicate
	// detection, writer/retiredW for reads that resolve to long-retired
	// writers.
	txns   []*TxnRecord
	ids    []model.TxnID
	index  map[model.TxnID]int
	lastOf map[string]int // last appended txn per client (program order)

	writes    []map[string]model.Value // final value per object, per txn
	writer    map[ov]int
	writersOf map[string][]int // LIVE writers per object
	// batchOf/localOf name a retired transaction's batch and its
	// position within it (-1 while live); batches hold each batch's
	// frozen internal base order; retiredW summarizes, per object, the
	// latest batch holding retired writers of it.
	batchOf           []int32
	localOf           []int32
	batches           []*retiredBatch
	retiredW          map[string]*objRetired
	maxRetiredInvoked int64 // real time vs retired txns, one comparison

	valueReaders map[string][]*obligation
	initReaders  map[string][]int
	pending      map[ov][]*obligation
	pendingCnt   int
	unresolved   []int // per-txn count of reads still awaiting a writer

	// Slot space: closure rows are indexed by slot, reused through free;
	// slotOf maps a global index to its slot (-1 once retired); globOf
	// maps a slot back (-1: free).
	slotOf     []int32
	globOf     []int
	free       []int32
	nLive      int
	peakWindow int
	retired    int

	words  int // current bitset word capacity of every closure
	base   *orderClosure
	model  *orderClosure // the shared model (see package comment)
	states map[string]*clientState
	order  []*clientState // states in creation order (deterministic)

	resolves int
	done     bool
	sv       *SessionVerdict
}

func newSession(initial map[string]model.Value, level string, capHint int) *Session {
	s := &Session{
		level:        level,
		initial:      make(map[string]model.Value, len(initial)),
		index:        make(map[model.TxnID]int),
		lastOf:       make(map[string]int),
		writer:       make(map[ov]int),
		writersOf:    make(map[string][]int),
		retiredW:     make(map[string]*objRetired),
		valueReaders: make(map[string][]*obligation),
		initReaders:  make(map[string][]int),
		pending:      make(map[ov][]*obligation),
		states:       make(map[string]*clientState),
	}
	for k, v := range initial {
		s.initial[k] = v
	}
	switch level {
	case "read-atomic":
		s.ra = true
	case "serializable":
	case "strict-serializable":
		s.realTime = true
	default:
		s.level = "causal"
		s.perCli = true
	}
	if capHint < 64 {
		capHint = 64
	}
	s.words = (capHint + 63) / 64
	if !s.ra {
		s.base = &orderClosure{}
		s.model = &orderClosure{}
		if !s.perCli {
			// Total-order levels: one shared serialization state whose
			// base IS the global closure (write-through, not cloned —
			// there is only one serialization, so its unit edges are
			// global facts).
			st := &clientState{base: newCowClosure(s.base, true), shared: true}
			s.states[""] = st
			s.order = append(s.order, st)
		}
	}
	return s
}

// NewSession starts an incremental certification at the given level
// ("causal", "read-atomic", "serializable", "strict-serializable"; any
// other level checks causal, mirroring Check). initial gives the initial
// value per object; capHint sizes the closure bitsets for the expected
// transaction count (they grow if exceeded). A bounded session keeps
// every transaction and refuses past MaxTxns — use NewStreamingSession
// for runs beyond the batch oracle's ceiling.
func NewSession(initial map[string]model.Value, level string, capHint int) *Session {
	if capHint > MaxTxns {
		capHint = MaxTxns
	}
	return newSession(initial, level, capHint)
}

// NewStreamingSession starts an unbounded incremental certification:
// committed prefixes of the closure are retired once no pending read or
// program-order tail can reach them (see the package comment), so
// session memory is bounded by the active window rather than by total
// appends. clients declares every client that will appear
// in the history; a client outside the declared set may still appear as
// long as its first transaction precedes the first eviction, after
// which unknown clients are refused (their transactions would not chain
// to the retired prefix). The read-atomic level streams without
// eviction: it keeps no closures, only O(1)-per-txn scalars.
func NewStreamingSession(initial map[string]model.Value, level string, clients []string) *Session {
	s := newSession(initial, level, 256)
	s.streaming = true
	s.evictEvery = 64
	s.declared = make(map[string]bool, len(clients))
	for _, c := range clients {
		if !s.declared[c] {
			s.declared[c] = true
			s.pendingDeclared++
		}
	}
	return s
}

// Initial returns the initial value of obj (the zero Value when unset).
func (s *Session) Initial(obj string) model.Value { return s.initial[obj] }

// Appended returns the number of transactions appended so far.
func (s *Session) Appended() int { return len(s.txns) }

// Window reports the session's eviction state: currently live
// transactions, the peak live window, and the retired count.
func (s *Session) Window() (live, peak, retired int) {
	return s.nLive, s.peakWindow, s.retired
}

// retiredG reports whether global index g has been retired.
func (s *Session) retiredG(g int) bool { return s.batchOf[g] >= 0 }

// slot translates a live global index to its closure slot.
func (s *Session) slot(g int) int { return int(s.slotOf[g]) }

// modelOf returns the model serving st: the shared model, or the
// state's private one (nil while a resolve is owed).
func (s *Session) modelOf(st *clientState) *orderClosure {
	if st.shared {
		return s.model
	}
	return st.model
}

// Append feeds the next committed transaction to the session and reports
// whether the appended prefix still admits a legal serialization. Once
// it returns false the session is sealed: the verdict (with the first
// offending commit) is available from Finish and later appends are
// ignored.
func (s *Session) Append(rec *TxnRecord) bool {
	if s.done {
		return false
	}
	i := len(s.txns)
	if !s.streaming && i >= MaxTxns {
		return s.refuse("history too large for exact checking: > %d transactions", MaxTxns)
	}
	if _, seen := s.lastOf[rec.Client]; !seen && s.streaming {
		if s.declared[rec.Client] {
			s.pendingDeclared--
		} else if s.evicting {
			return s.refuse(
				"streaming session: client %s appeared after eviction began (declare all clients to NewStreamingSession)",
				rec.Client)
		}
	}
	if _, dup := s.index[rec.ID]; dup {
		// Append before sealing so the witness prefix includes the
		// offending commit itself, like every other violation path.
		s.txns = append(s.txns, rec)
		s.ids = append(s.ids, rec.ID)
		return s.violate(i, rec.ID, "duplicate transaction id %s", rec.ID)
	}
	s.txns = append(s.txns, rec)
	s.ids = append(s.ids, rec.ID)
	s.index[rec.ID] = i
	s.unresolved = append(s.unresolved, 0)
	s.batchOf = append(s.batchOf, -1)
	s.localOf = append(s.localOf, -1)
	if s.ra {
		s.slotOf = append(s.slotOf, int32(i))
	} else {
		s.slotOf = append(s.slotOf, int32(s.addSlot(i)))
	}

	// Final writes (last write per object wins) and value distinctness.
	w := make(map[string]model.Value, len(rec.Writes))
	for _, wr := range rec.Writes {
		w[wr.Object] = wr.Value
	}
	s.writes = append(s.writes, w)
	wobjs := make([]string, 0, len(w))
	for obj := range w {
		wobjs = append(wobjs, obj)
	}
	sort.Strings(wobjs)
	for _, obj := range wobjs {
		val := w[obj]
		if val == s.Initial(obj) {
			return s.violate(i, rec.ID,
				"values not distinct: %s=%s written by %s equals the initial value", obj, val, rec.ID)
		}
		if j, dup := s.writer[ov{obj, val}]; dup && j != i {
			return s.violate(i, rec.ID,
				"values not distinct: %s=%s written by both %s and %s", obj, val, s.ids[j], rec.ID)
		}
		s.writer[ov{obj, val}] = i
		s.writersOf[obj] = append(s.writersOf[obj], i)
	}

	if !s.ra {
		// Program order.
		if prev, seen := s.lastOf[rec.Client]; seen {
			if !s.forceGlobal(i, prev, i) {
				return false
			}
		}
		// Real time (strict serializability): live transactions newest
		// first so older pairs are usually already implied transitively;
		// edges against the retired prefix reduce to one comparison (a
		// retired txn precedes i by construction, and i preceding any
		// retired txn is a cycle).
		if s.realTime {
			for t := len(s.globOf) - 1; t >= 0; t-- {
				j := s.globOf[t]
				if j < 0 || j == i {
					continue
				}
				a := s.txns[j]
				if a.Completed >= 0 && a.Completed < rec.Invoked {
					if !s.forceGlobal(i, j, i) {
						return false
					}
				}
				if rec.Completed >= 0 && rec.Completed < a.Invoked {
					if !s.forceGlobal(i, i, j) {
						return false
					}
				}
			}
			if s.retired > 0 && rec.Completed >= 0 && rec.Completed < s.maxRetiredInvoked {
				return s.violate(i, rec.ID, "%s", s.cyclicBase())
			}
		}
	}
	s.lastOf[rec.Client] = i

	// The new transaction as a writer: thread the obligations of every
	// EARLIER read of the objects it wrote.
	for _, obj := range wobjs {
		for _, r := range s.initReaders[obj] {
			// An initial-value read must precede every writer of the object.
			if r != i && !s.ra {
				if !s.forceIn(i, s.stateFor(s.txns[r].Client), r, i) {
					return false
				}
			}
		}
		if !s.ra {
			for _, ob := range s.valueReaders[obj] {
				if ob.writer < 0 || ob.writer == i || ob.reader == i {
					continue // pending (threaded at resolution), or own
				}
				// Anti-dependency: the new writer must not land between the
				// read's writer and the read. Reader-before-new-writer first:
				// for a run appended in rough time order that disjunct is the
				// one the model usually absorbs.
				if !s.addConstraint(i, s.stateFor(s.txns[ob.reader].Client),
					ob.reader, i, i, ob.writer) {
					return false
				}
			}
		}
		// Reads that were waiting for exactly this write resolve now.
		key := ov{obj, w[obj]}
		if waiting := s.pending[key]; len(waiting) > 0 {
			delete(s.pending, key)
			for _, ob := range waiting {
				s.unresolved[ob.reader]--
				s.pendingCnt--
				if !s.bind(i, ob, i) {
					return false
				}
				if s.ra && s.unresolved[ob.reader] == 0 {
					if !s.checkReadAtomic(i, ob.reader) {
						return false
					}
				}
			}
		}
	}

	// The new transaction as a reader.
	for _, obj := range sortedObjects(rec.Reads) {
		val := rec.Reads[obj]
		if val == s.Initial(obj) {
			s.initReaders[obj] = append(s.initReaders[obj], i)
			if s.ra {
				continue
			}
			st := s.stateFor(rec.Client)
			if s.retiredW[obj] != nil {
				// A retired writer precedes every live transaction, and
				// an initial-value read must precede every writer.
				return s.violate(i, rec.ID, "%s", s.noSerialization(st.client))
			}
			for _, o := range s.writersOf[obj] {
				if o == i {
					continue // own write: reads precede writes
				}
				if !s.forceIn(i, st, i, o) {
					return false
				}
			}
			continue
		}
		ob := &obligation{reader: i, obj: obj, val: val, writer: -1}
		s.valueReaders[obj] = append(s.valueReaders[obj], ob)
		if wi, found := s.writer[ov{obj, val}]; found {
			if !s.bind(i, ob, wi) {
				return false
			}
		} else {
			s.pending[ov{obj, val}] = append(s.pending[ov{obj, val}], ob)
			s.unresolved[i]++
			s.pendingCnt++
		}
	}
	if s.ra && len(rec.Reads) > 0 && s.unresolved[i] == 0 {
		if !s.checkReadAtomic(i, i) {
			return false
		}
	}

	// Any state whose model could not absorb the new constraints owes a
	// full solver search; failure here is the first offending commit.
	for _, st := range s.order {
		if st.conflict && !s.resolve(i, st) {
			return false
		}
	}

	if s.streaming && !s.ra && s.pendingDeclared <= 0 {
		s.sinceSweep++
		if s.sinceSweep >= s.evictEvery {
			s.sinceSweep = 0
			if !s.sweep(i) {
				return false
			}
		}
	}
	return true
}

// Finish seals the session and returns the verdict. Reads still awaiting
// a writer refute the history (the batch checker's dangling read); an
// accepting verdict carries a witness serialization: each retired batch
// in order (members topologically sorted under the frozen base order
// plus the witness state's ghost units) followed by an extension of the
// retained model over the live window.
func (s *Session) Finish() SessionVerdict {
	if s.sv != nil {
		return *s.sv
	}
	if s.pendingCnt > 0 {
		first := -1
		var firstOb *obligation
		for _, waiting := range s.pending {
			for _, ob := range waiting {
				if first < 0 || ob.reader < first ||
					(ob.reader == first && ob.obj < firstOb.obj) {
					first, firstOb = ob.reader, ob
				}
			}
		}
		s.violate(first, s.ids[first],
			"dangling read: %s read %s=%s, never written", s.ids[first], firstOb.obj, firstOb.val)
		return *s.sv
	}
	var witness []model.TxnID
	if !s.ra && len(s.order) > 0 {
		// Mirror the batch checkers: the witness is the serialization of
		// the last state checked (for causal, the last reading client in
		// sorted order; for the total orders, the single shared state).
		st := s.order[0]
		if s.perCli {
			for _, other := range s.order[1:] {
				if other.client > st.client {
					st = other
				}
			}
		}
		witness = make([]model.TxnID, 0, len(s.txns))
		for bi := range s.batches {
			witness = s.appendBatchWitness(witness, int32(bi), st)
		}
		for _, t := range extendClosure(s.modelOf(st)) {
			if g := s.globOf[t]; g >= 0 {
				witness = append(witness, s.ids[g])
			}
		}
	}
	s.done = true
	s.sv = &SessionVerdict{
		Verdict:        ok(witness),
		FirstViolation: -1,
		Appended:       len(s.txns),
		Resolves:       s.resolves,
		Retired:        s.retired,
		PeakWindow:     s.peakWindow,
	}
	return *s.sv
}

// violate seals the session with a refutation first established at
// append index cur.
func (s *Session) violate(cur int, id model.TxnID, format string, args ...any) bool {
	s.done = true
	prefix := make([]model.TxnID, 0, cur+1)
	for k := 0; k <= cur && k < len(s.ids); k++ {
		prefix = append(prefix, s.ids[k])
	}
	s.sv = &SessionVerdict{
		Verdict:          fail(format, args...),
		FirstViolation:   cur,
		FirstViolationID: id,
		WitnessPrefix:    prefix,
		Appended:         len(s.txns),
		Resolves:         s.resolves,
		Retired:          s.retired,
		PeakWindow:       s.peakWindow,
	}
	return false
}

// refuse seals the session without blaming a transaction (capacity or
// streaming-declaration refusals: FirstViolation stays -1).
func (s *Session) refuse(format string, args ...any) bool {
	s.done = true
	s.sv = &SessionVerdict{
		Verdict:        fail(format, args...),
		FirstViolation: -1,
		Appended:       len(s.txns),
		Resolves:       s.resolves,
		Retired:        s.retired,
		PeakWindow:     s.peakWindow,
	}
	return false
}

// noSerialization is the per-level refutation message, matching the
// batch checkers.
func (s *Session) noSerialization(client string) string {
	switch {
	case s.perCli:
		return fmt.Sprintf("no causal serialization exists for client %s", client)
	case s.realTime:
		return "no strict serialization exists"
	default:
		return "no serialization exists"
	}
}

// cyclicBase is the per-level message for a cycle in the forced global
// order, matching the batch checkers.
func (s *Session) cyclicBase() string {
	switch {
	case s.perCli:
		return "causal relation is cyclic"
	case s.realTime:
		return "real-time-augmented dependency relation is cyclic"
	default:
		return "dependency relation is cyclic"
	}
}

// addSlot allocates a closure slot for global index g: a retired slot
// off the free list (rows already zeroed) or a fresh node in every
// closure, widening the bitsets when slot capacity is exhausted.
func (s *Session) addSlot(g int) int {
	if n := len(s.free); n > 0 {
		t := int(s.free[n-1])
		s.free = s.free[:n-1]
		s.globOf[t] = g
		s.nLive++
		return t
	}
	n := len(s.base.succ)
	if n >= s.words*64 {
		s.words *= 2
		s.base.growWords(s.words)
		s.model.growWords(s.words)
		for _, st := range s.order {
			st.base.growWords(s.words)
			if !st.shared && st.model != nil {
				st.model.growWords(s.words)
			}
		}
	}
	s.base.addNode(s.words)
	s.model.addNode(s.words)
	for _, st := range s.order {
		if !st.shared && st.model != nil {
			st.model.addNode(s.words)
		}
	}
	s.globOf = append(s.globOf, g)
	s.nLive++
	if s.nLive > s.peakWindow {
		s.peakWindow = s.nLive
	}
	return n
}

// stateFor returns (creating on first use) the serialization state the
// given client's read obligations constrain. New states start as pure
// views of the global closure and the shared model — creation is O(1).
func (s *Session) stateFor(client string) *clientState {
	if !s.perCli {
		return s.states[""]
	}
	if st, found := s.states[client]; found {
		return st
	}
	st := &clientState{client: client, base: newCowClosure(s.base, false), shared: true}
	s.states[client] = st
	s.order = append(s.order, st)
	return st
}

// forceGlobal adds a forced edge of the global relation (program order,
// reads-from, real time) to the base, the shared model, and every
// state. a and b are global indices; edges into or out of the retired
// prefix reduce to implication or refutation. A cycle in the global
// base refutes the history outright.
func (s *Session) forceGlobal(cur, a, b int) bool {
	ra, rb := s.retiredG(a), s.retiredG(b)
	switch {
	case ra && rb:
		switch s.edgeStatus(a, b) {
		case edgeSatisfied:
			return true // already a frozen fact
		case edgeDead:
			return s.violate(cur, s.ids[cur], "%s", s.cyclicBase())
		}
		// Base-unordered within one batch: a global fact binds every
		// serialization (unreachable from current edge sources, which
		// always have a live endpoint; kept for completeness).
		for _, st := range s.order {
			if !s.ghostForce(cur, st, a, b) {
				return false
			}
		}
		return true
	case ra:
		return true // retired precedes every live transaction
	case rb:
		return s.violate(cur, s.ids[cur], "%s", s.cyclicBase())
	}
	sa, sb := s.slot(a), s.slot(b)
	if !s.base.addEdge(sa, sb) {
		return s.violate(cur, s.ids[cur], "%s", s.cyclicBase())
	}
	if !s.model.addEdge(sa, sb) {
		// The shared model committed disjuncts that contradict the new
		// base edge: every state leaning on it owes a private re-solve,
		// and the shared model restarts from the (consistent) base.
		for _, st := range s.order {
			if st.shared {
				st.shared = false
				st.model = nil
				st.hint = s.model
				st.conflict = true
			}
		}
		s.model = s.base.clone()
	}
	for _, st := range s.order {
		if st.base.diverged() {
			if st.base.has(sb, sa) {
				return s.violate(cur, s.ids[cur], "%s", s.noSerialization(st.client))
			}
			st.base.applyParentEdge(sa, sb)
		}
		if !st.shared && st.model != nil && !st.model.addEdge(sa, sb) {
			st.hint = st.model
			st.model = nil
			st.conflict = true
		}
	}
	return true
}

// forceIn adds a forced edge to one state's base and folds it into its
// model (degrading the state to a private re-solve on conflict; a base
// conflict refutes). a and b are global indices.
func (s *Session) forceIn(cur int, st *clientState, a, b int) bool {
	ra, rb := s.retiredG(a), s.retiredG(b)
	switch {
	case ra && rb:
		switch s.edgeStatus(a, b) {
		case edgeSatisfied:
			return true
		case edgeDead:
			return s.violate(cur, s.ids[cur], "%s", s.noSerialization(st.client))
		}
		return s.ghostForce(cur, st, a, b)
	case ra:
		return true
	case rb:
		return s.violate(cur, s.ids[cur], "%s", s.noSerialization(st.client))
	}
	sa, sb := s.slot(a), s.slot(b)
	if !st.base.addEdge(sa, sb) {
		return s.violate(cur, s.ids[cur], "%s", s.noSerialization(st.client))
	}
	if st.shared {
		if !s.model.addEdge(sa, sb) {
			// Only this state needs the edge; the shared model stays
			// valid for everyone else.
			st.shared = false
			st.model = nil
			st.hint = s.model
			st.conflict = true
		}
	} else if st.model != nil && !st.model.addEdge(sa, sb) {
		st.hint = st.model
		st.model = nil
		st.conflict = true
	}
	return true
}

// edge dispositions against the retired prefix.
const (
	edgeOpen      = iota // both endpoints live: a real ordering literal
	edgeSatisfied        // already a frozen or implied base fact
	edgeDead             // its reverse is a frozen or implied base fact
	edgeGhost            // both retired in one batch, base-unordered
)

// edgeStatus classifies a prospective edge a→b (global indices) against
// the retired prefix. Retired transactions precede every live one,
// earlier batches precede later ones, and same-batch pairs resolve
// against the batch's frozen base order — every non-ghost answer is a
// base fact the non-evicting session would have read off its closure.
func (s *Session) edgeStatus(a, b int) int {
	ba, bb := s.batchOf[a], s.batchOf[b]
	switch {
	case ba >= 0 && bb >= 0:
		if ba != bb {
			if ba < bb {
				return edgeSatisfied
			}
			return edgeDead
		}
		batch := s.batches[ba]
		la, lb := int(s.localOf[a]), int(s.localOf[b])
		if batch.succ[la].has(lb) {
			return edgeSatisfied
		}
		if batch.succ[lb].has(la) {
			return edgeDead
		}
		return edgeGhost
	case ba >= 0:
		return edgeSatisfied
	case bb >= 0:
		return edgeDead
	default:
		return edgeOpen
	}
}

// ghostReaches reports whether local index from reaches to over the
// batch's frozen base order plus the given ghost edges (paths may
// alternate base hops and ghost edges freely).
func ghostReaches(batch *retiredBatch, edges [][2]int32, from, to int) bool {
	if from == to || batch.succ[from].has(to) {
		return true
	}
	if len(edges) == 0 {
		return false
	}
	visited := map[int]bool{from: true}
	stack := []int{from}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == to || batch.succ[x].has(to) {
			return true
		}
		for _, e := range edges {
			u, v := int(e[0]), int(e[1])
			if !visited[v] && (u == x || batch.succ[x].has(u)) {
				visited[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// ghostBlocked reports whether forcing the same-batch unit a→b would
// cycle against st's view of the batch (the frozen base order plus its
// own ghost units).
func (s *Session) ghostBlocked(st *clientState, a, b int) bool {
	bi := s.batchOf[a]
	var edges [][2]int32
	if st.ghosts != nil {
		edges = st.ghosts[bi]
	}
	return ghostReaches(s.batches[bi], edges, int(s.localOf[b]), int(s.localOf[a]))
}

// ghostForce records the forced unit a→b (same-batch retired global
// indices, base-unordered) in st, refuting on a cycle or when the
// batch's ghost clause set loses its last satisfying order — the exact
// decision the non-evicting session's solver would make, since ghost
// constraints can never interact with the live window (no edge points
// from a live transaction into the retired prefix).
func (s *Session) ghostForce(cur int, st *clientState, a, b int) bool {
	if s.ghostBlocked(st, a, b) {
		return s.violate(cur, s.ids[cur], "%s", s.noSerialization(st.client))
	}
	bi := s.batchOf[a]
	la, lb := s.localOf[a], s.localOf[b]
	edges := st.ghosts[bi]
	if ghostReaches(s.batches[bi], edges, int(la), int(lb)) {
		return true // already implied
	}
	if st.ghosts == nil {
		st.ghosts = make(map[int32][][2]int32)
	}
	st.ghosts[bi] = append(edges, [2]int32{la, lb})
	if len(st.ghostClauses[bi]) > 0 && !s.ghostCheck(st, bi) {
		return s.violate(cur, s.ids[cur], "%s", s.noSerialization(st.client))
	}
	return true
}

// ghostClauseAdd retains a clause whose disjuncts both landed inside
// one batch (batch-local indices) and re-decides the batch's ghost
// constraint set.
func (s *Session) ghostClauseAdd(cur int, st *clientState, bi int32, c clause) bool {
	if st.ghostClauses == nil {
		st.ghostClauses = make(map[int32][]clause)
	}
	st.ghostClauses[bi] = append(st.ghostClauses[bi], c)
	if !s.ghostCheck(st, bi) {
		return s.violate(cur, s.ids[cur], "%s", s.noSerialization(st.client))
	}
	return true
}

// batchClosure materializes one batch's frozen base order plus st's
// ghost units for it as a solver-ready closure over the batch's local
// indices. Reports false when the units cycle (defensive: units are
// cycle-checked as they are recorded).
func (s *Session) batchClosure(bi int32, st *clientState) (*orderClosure, bool) {
	batch := s.batches[bi]
	k := len(batch.members)
	c := &orderClosure{succ: make([]bitset, k), pred: make([]bitset, k)}
	for u := 0; u < k; u++ {
		c.succ[u] = batch.succ[u].clone()
		c.pred[u] = newBitset(k)
	}
	for u := 0; u < k; u++ {
		batch.succ[u].forEach(func(v int) { c.pred[v].set(u) })
	}
	for _, e := range st.ghosts[bi] {
		if !c.addEdge(int(e[0]), int(e[1])) {
			return nil, false
		}
	}
	return c, true
}

// ghostCheck decides st's accumulated ghost constraint set for one
// batch exactly as the non-evicting solver would: the frozen order plus
// every ghost unit must extend to an order satisfying every ghost
// clause. The batch is isolated from the live window, so this
// batch-local search is the whole decision.
func (s *Session) ghostCheck(st *clientState, bi int32) bool {
	c, ok := s.batchClosure(bi, st)
	if !ok {
		return false
	}
	clauses := st.ghostClauses[bi]
	if len(clauses) == 0 {
		return true
	}
	_, ok = newClauseSolver(c, clauses, nil).solveClosure()
	return ok
}

// addConstraint threads the anti-dependency disjunction
// (a1→b1) ∨ (a2→b2) (global indices) into st. Disjuncts touching the
// retired prefix are decided immediately: a satisfied disjunct drops
// the clause, a dead disjunct unit-forces its sibling, two dead
// disjuncts refute, a single ghost disjunct (same-batch retired pair
// the base never ordered) commits as a ghost unit when free, and two
// ghost disjuncts are retained as a ghost clause. Fully live clauses
// are retained slot-indexed.
func (s *Session) addConstraint(cur int, st *clientState, a1, b1, a2, b2 int) bool {
	d1, d2 := s.edgeStatus(a1, b1), s.edgeStatus(a2, b2)
	switch {
	case d1 == edgeSatisfied || d2 == edgeSatisfied:
		return true
	case d1 == edgeDead && d2 == edgeDead:
		return s.violate(cur, s.ids[cur], "%s", s.noSerialization(st.client))
	case d1 == edgeDead:
		if d2 == edgeGhost {
			return s.ghostForce(cur, st, a2, b2)
		}
		return s.forceIn(cur, st, a2, b2)
	case d2 == edgeDead:
		if d1 == edgeGhost {
			return s.ghostForce(cur, st, a1, b1)
		}
		return s.forceIn(cur, st, a1, b1)
	case d1 == edgeGhost && d2 == edgeGhost:
		// Both disjuncts landed inside one batch (they share a
		// transaction, so it is the same batch): keep the disjunction as
		// a ghost clause — greedily committing one side could refute a
		// history the other side satisfies.
		return s.ghostClauseAdd(cur, st, s.batchOf[a1], clause{
			int(s.localOf[a1]), int(s.localOf[b1]),
			int(s.localOf[a2]), int(s.localOf[b2])})
	case d1 == edgeGhost:
		// A free ghost edge satisfies the clause without constraining
		// the live window; only when it would cycle must the live
		// sibling carry the clause.
		if !s.ghostBlocked(st, a1, b1) {
			return s.ghostForce(cur, st, a1, b1)
		}
		return s.forceIn(cur, st, a2, b2)
	case d2 == edgeGhost:
		if !s.ghostBlocked(st, a2, b2) {
			return s.ghostForce(cur, st, a2, b2)
		}
		return s.forceIn(cur, st, a1, b1)
	}
	s.addClause(st, clause{s.slot(a1), s.slot(b1), s.slot(a2), s.slot(b2)})
	return true
}

// addClause retains a fully live anti-dependency clause (slot-indexed)
// and repairs the model: clauses the state's base already satisfies are
// dropped, clauses the model satisfies cost nothing, and otherwise the
// model greedily commits the first disjunct it can absorb without a
// cycle (committing into the shared model is safe for every other
// state: clause satisfaction is monotone in the model). If neither
// fits, the state owes a solver search at the end of this Append.
func (s *Session) addClause(st *clientState, c clause) {
	if st.base.has(c.a1, c.b1) || st.base.has(c.a2, c.b2) {
		return
	}
	st.clauses = append(st.clauses, c)
	if st.conflict {
		return
	}
	m := s.modelOf(st)
	if m == nil {
		return
	}
	if m.succ[c.a1].has(c.b1) || m.succ[c.a2].has(c.b2) {
		return
	}
	if m.addEdge(c.a1, c.b1) || m.addEdge(c.a2, c.b2) {
		return
	}
	if st.shared {
		st.shared = false
		st.model = nil
	} else {
		st.model = nil
	}
	st.hint = m
	st.conflict = true
}

// bind resolves a value read to its writer: the reads-from edge becomes
// part of the global base and the read's anti-dependency clauses are
// threaded against every other known writer of the object (writers still
// to come are threaded by the writer-side pass of Append; retired
// writers reduce to one chain-position comparison).
func (s *Session) bind(cur int, ob *obligation, wi int) bool {
	ob.writer = wi
	if ob.reader == wi {
		if s.ra {
			return true // reading your own write is not a fracture
		}
		return s.violate(cur, s.ids[cur], "%s",
			s.noSerialization(s.txns[ob.reader].Client))
	}
	if s.ra {
		return true
	}
	if !s.forceGlobal(cur, wi, ob.reader) {
		return false
	}
	st := s.stateFor(s.txns[ob.reader].Client)
	if s.retiredG(wi) {
		// Every retired writer o of the object in a batch after wi's
		// sits between wi and the (live) reader in every extension of
		// the base: (o→wi) and (reader→o) are both base-refuted. Writers
		// retired in wi's own batch resolve against the frozen batch
		// order, or become ghost units when the base never ordered them;
		// earlier-batch writers satisfy their disjunct outright.
		if or := s.retiredW[ob.obj]; or != nil {
			if or.batch > s.batchOf[wi] {
				return s.violate(cur, s.ids[cur], "%s", s.noSerialization(st.client))
			}
			for _, og := range or.writers {
				o := int(og)
				if o == wi {
					continue
				}
				switch s.edgeStatus(o, wi) {
				case edgeSatisfied:
				case edgeDead:
					return s.violate(cur, s.ids[cur], "%s", s.noSerialization(st.client))
				case edgeGhost:
					if !s.ghostForce(cur, st, o, wi) {
						return false
					}
				}
			}
		}
	}
	for _, o := range s.writersOf[ob.obj] {
		if o == wi || o == ob.reader {
			continue
		}
		if !s.addConstraint(cur, st, o, wi, ob.reader, o) {
			return false
		}
	}
	return true
}

// resolve rebuilds a state's model by a full solver search over the
// retained base and clause set. Failure means the appended prefix admits
// no legal serialization: the current append is the first offending
// commit.
func (s *Session) resolve(cur int, st *clientState) bool {
	live := st.clauses[:0]
	for _, c := range st.clauses {
		if st.base.has(c.a1, c.b1) || st.base.has(c.a2, c.b2) {
			continue // satisfied by the base: monotone, stays satisfied
		}
		live = append(live, c)
	}
	st.clauses = live
	s.resolves++
	hint := st.hint
	st.hint = nil
	m, found := newClauseSolver(st.base.materialize(), st.clauses, hint).solveClosure()
	if !found {
		return s.violate(cur, s.ids[cur], "%s", s.noSerialization(st.client))
	}
	st.shared = false
	st.model = m
	st.conflict = false
	return true
}

// sweep retires the largest retirable downward-closed set of live
// transactions (conditions C1–C6 of the package comment): transactions
// failing a per-member condition block, anything not base-preceding a
// blocked transaction blocks transitively, and whatever remains
// precedes everything left live — retirable as one batch. Clauses
// referencing a member are decided on the way out (see the package
// comment); the decisions can refute the history, in which case sweep
// reports false with the current append as the offending commit.
func (s *Session) sweep(cur int) bool {
	if s.nLive < 2 {
		return true
	}
	liveSet := newBitset(s.words * 64)
	blocked := newBitset(s.words * 64)
	var queue []int
	block := func(t int) {
		if !blocked.has(t) {
			blocked.set(t)
			queue = append(queue, t)
		}
	}
	for t, g := range s.globOf {
		if g < 0 {
			continue
		}
		liveSet.set(t)
		if s.unresolved[g] != 0 || // C3: pending reads still thread constraints
			s.lastOf[s.txns[g].Client] == g { // C6: program-order tail
			block(t)
		}
	}
	for len(queue) > 0 {
		y := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		pred := s.base.pred[y]
		for w := range liveSet {
			rest := liveSet[w] &^ blocked[w] &^ pred[w]
			for rest != 0 {
				block(w<<6 + bits.TrailingZeros64(rest))
				rest &= rest - 1
			}
		}
	}
	var members []int
	for t, g := range s.globOf {
		if g >= 0 && !blocked.has(t) {
			members = append(members, g)
		}
	}
	if len(members) == 0 {
		return true
	}
	sort.Ints(members)

	// Decide every clause that references a member, in slot space while
	// slots are still valid: against st's own base a disjunct may already
	// be satisfied or dead; otherwise membership decides it — a member
	// base-precedes everything staying live, so member→out is satisfied,
	// out→member is dead, and member↔member (a "pair") is deferred to the
	// batch's ghost domain. Actions are collected as global indices and
	// applied after retireBatch assigns the batch-local index space.
	const (
		dSat = iota
		dDead
		dPair // both endpoints in the batch, st.base-unordered
		dOpen // both endpoints staying live, st.base-unordered
	)
	const (
		actForce       = iota // unit-force a live disjunct
		actGhost              // record a ghost unit
		actGhostClause        // retain a two-pair disjunction as a ghost clause
	)
	type sweepAct struct {
		st             *clientState
		kind           int
		a1, b1, a2, b2 int // global indices (a2/b2 used by actGhostClause)
	}
	var acts []sweepAct
	for _, st := range s.order {
		classify := func(a, b int) int {
			if st.base.has(a, b) {
				return dSat
			}
			if st.base.has(b, a) {
				return dDead
			}
			ina, inb := !blocked.has(a), !blocked.has(b)
			switch {
			case ina && inb:
				return dPair
			case ina:
				return dSat
			case inb:
				return dDead
			}
			return dOpen
		}
		keep := st.clauses[:0]
		for _, c := range st.clauses {
			d1, d2 := classify(c.a1, c.b1), classify(c.a2, c.b2)
			switch {
			case d1 == dSat || d2 == dSat:
				// Satisfied forever (base and membership facts are monotone).
			case d1 == dOpen && d2 == dOpen:
				keep = append(keep, c)
			case d1 == dDead && d2 == dDead:
				// Unreachable in a live session: the edge that killed the
				// second disjunct broke the state's model and the resolve at
				// that append (before any sweep) would have refuted.
				return s.violate(cur, s.ids[cur], "%s", s.noSerialization(st.client))
			case d1 == dDead && d2 == dOpen:
				acts = append(acts, sweepAct{st: st, kind: actForce,
					a1: s.globOf[c.a2], b1: s.globOf[c.b2]})
			case d2 == dDead && d1 == dOpen:
				acts = append(acts, sweepAct{st: st, kind: actForce,
					a1: s.globOf[c.a1], b1: s.globOf[c.b1]})
			case d1 == dPair && d2 == dPair:
				acts = append(acts, sweepAct{st: st, kind: actGhostClause,
					a1: s.globOf[c.a1], b1: s.globOf[c.b1],
					a2: s.globOf[c.a2], b2: s.globOf[c.b2]})
			case d1 == dPair && d2 == dDead:
				acts = append(acts, sweepAct{st: st, kind: actGhost,
					a1: s.globOf[c.a1], b1: s.globOf[c.b1]})
			case d2 == dPair && d1 == dDead:
				acts = append(acts, sweepAct{st: st, kind: actGhost,
					a1: s.globOf[c.a2], b1: s.globOf[c.b2]})
			default:
				// dPair with a dOpen sibling cannot arise: the disjuncts
				// share a transaction, which cannot be both in and out of
				// the batch. Satisfy the live sibling defensively.
				if d1 == dOpen {
					acts = append(acts, sweepAct{st: st, kind: actForce,
						a1: s.globOf[c.a1], b1: s.globOf[c.b1]})
				} else {
					acts = append(acts, sweepAct{st: st, kind: actForce,
						a1: s.globOf[c.a2], b1: s.globOf[c.b2]})
				}
			}
		}
		st.clauses = keep
	}

	bi := int32(len(s.batches))
	s.retireBatch(members)

	// Apply the deferred decisions. Ghost registrations are appended in
	// bulk and each touched state re-decided ONCE per sweep (the state's
	// model — intact here, resolves ran before the sweep — orders every
	// forced pair and satisfies every retained disjunction, so the
	// re-decision is guaranteed satisfiable; the check is defensive).
	// Live unit-forces can degrade states, whose resolves run last.
	ghostTouched := make(map[*clientState]bool)
	for _, act := range acts {
		st := act.st
		switch act.kind {
		case actGhost:
			if st.ghosts == nil {
				st.ghosts = make(map[int32][][2]int32)
			}
			st.ghosts[bi] = append(st.ghosts[bi],
				[2]int32{s.localOf[act.a1], s.localOf[act.b1]})
			ghostTouched[st] = true
		case actGhostClause:
			if st.ghostClauses == nil {
				st.ghostClauses = make(map[int32][]clause)
			}
			st.ghostClauses[bi] = append(st.ghostClauses[bi], clause{
				int(s.localOf[act.a1]), int(s.localOf[act.b1]),
				int(s.localOf[act.a2]), int(s.localOf[act.b2])})
			ghostTouched[st] = true
		}
	}
	for _, st := range s.order {
		if ghostTouched[st] && !s.ghostCheck(st, bi) {
			return s.violate(cur, s.ids[cur], "%s", s.noSerialization(st.client))
		}
	}
	for _, act := range acts {
		if act.kind == actForce && !s.forceIn(cur, act.st, act.a1, act.b1) {
			return false
		}
	}
	for _, st := range s.order {
		if st.conflict && !s.resolve(cur, st) {
			return false
		}
	}
	return true
}

// retireBatch evicts the given global indices from the window as one
// batch: the base order among them is frozen (along with each state's
// own forced units, migrated to ghost edges), their per-object
// bookkeeping is reduced to the retained scalars, and their closure
// rows — plus the bits they occupy in every live predecessor row — are
// released for reuse.
func (s *Session) retireBatch(members []int) {
	s.evicting = true
	sort.Ints(members)
	bi := int32(len(s.batches))
	k := len(members)
	batch := &retiredBatch{members: members, succ: make([]bitset, k)}
	for li, g := range members {
		row := newBitset(k)
		sr := s.base.succ[s.slot(g)]
		for lj, h := range members {
			if lj != li && sr.has(s.slot(h)) {
				row.set(lj)
			}
		}
		batch.succ[li] = row
	}
	s.batches = append(s.batches, batch)
	// Per-state forced units between members are serialization facts the
	// global base never learned; carry them over as ghost edges.
	for _, st := range s.order {
		if !st.base.diverged() {
			continue
		}
		var extra [][2]int32
		for li, g := range members {
			sg := s.slot(g)
			for lj, h := range members {
				if li != lj && !batch.succ[li].has(lj) && st.base.has(sg, s.slot(h)) {
					extra = append(extra, [2]int32{int32(li), int32(lj)})
				}
			}
		}
		if len(extra) > 0 {
			if st.ghosts == nil {
				st.ghosts = make(map[int32][][2]int32)
			}
			st.ghosts[bi] = extra
		}
	}
	for _, g := range members {
		for obj := range s.writes[g] {
			or := s.retiredW[obj]
			if or == nil || or.batch != bi {
				or = &objRetired{batch: bi}
				s.retiredW[obj] = or
			}
			or.writers = append(or.writers, int32(g))
		}
	}
	// No live successor row can contain a member's slot (an edge from a
	// live transaction into the batch would cycle against the batch
	// preceding everything live), so clearing the predecessor rows and
	// zeroing each member's own rows fully releases the slots.
	clearRows := func(c *orderClosure, t int) {
		for x := range c.pred {
			c.pred[x].clear(t)
		}
		c.succ[t].reset()
		c.pred[t].reset()
	}
	for li, g := range members {
		t := s.slot(g)
		s.batchOf[g] = bi
		s.localOf[g] = int32(li)
		s.slotOf[g] = -1
		s.globOf[t] = -1
		s.nLive--
		s.retired++
		rec := s.txns[g]
		if rec.Invoked > s.maxRetiredInvoked {
			s.maxRetiredInvoked = rec.Invoked
		}
		for obj := range rec.Reads {
			if obs := s.valueReaders[obj]; len(obs) > 0 {
				live := obs[:0]
				for _, ob := range obs {
					if ob.reader != g {
						live = append(live, ob)
					}
				}
				s.valueReaders[obj] = live
			}
			if rs := s.initReaders[obj]; len(rs) > 0 {
				live := rs[:0]
				for _, r := range rs {
					if r != g {
						live = append(live, r)
					}
				}
				s.initReaders[obj] = live
			}
		}
		for obj := range s.writes[g] {
			ws := s.writersOf[obj]
			live := ws[:0]
			for _, o := range ws {
				if o != g {
					live = append(live, o)
				}
			}
			s.writersOf[obj] = live
		}
		s.txns[g] = nil
		s.writes[g] = nil
		clearRows(s.base, t)
		clearRows(s.model, t)
		for _, st := range s.order {
			st.base.retire(t)
			if !st.shared && st.model != nil {
				clearRows(st.model, t)
			}
		}
		s.free = append(s.free, int32(t))
	}
}

// appendBatchWitness emits one retired batch in a total order extending
// its frozen base order, st's ghost units, and st's ghost clauses,
// earliest-appended-first among unconstrained members (deterministic).
func (s *Session) appendBatchWitness(out []model.TxnID, bi int32, st *clientState) []model.TxnID {
	batch := s.batches[bi]
	c, okc := s.batchClosure(bi, st)
	if !okc {
		// Unreachable: ghost units are cycle-checked as they are recorded.
		for _, g := range batch.members {
			out = append(out, s.ids[g])
		}
		return out
	}
	if clauses := st.ghostClauses[bi]; len(clauses) > 0 {
		if m, found := newClauseSolver(c, clauses, nil).solveClosure(); found {
			c = m
		}
	}
	for _, l := range extendClosure(c) {
		out = append(out, s.ids[batch.members[l]])
	}
	return out
}

// checkReadAtomic runs the pairwise fracture check for reader (all of
// whose reads have resolved writers) at append index cur, mirroring
// CheckReadAtomic.
func (s *Session) checkReadAtomic(cur, reader int) bool {
	t := s.txns[reader]
	objs := sortedObjects(t.Reads)
	writerOf := func(obj string) int {
		val := t.Reads[obj]
		if val == s.Initial(obj) {
			return -1 // initial pseudo-writer: older than everything
		}
		return s.writer[ov{obj, val}]
	}
	for _, obj := range objs {
		w := writerOf(obj)
		if w < 0 {
			continue
		}
		for _, obj2 := range objs {
			if obj2 == obj {
				continue
			}
			if _, sibling := s.writes[w][obj2]; !sibling {
				continue
			}
			w2 := writerOf(obj2)
			if w2 == w {
				continue
			}
			if w2 < 0 {
				return s.violate(cur, s.ids[cur],
					"fractured read: %s read %s from %s but %s from the initial value",
					t.ID, obj, s.ids[w], obj2)
			}
			a, b := s.txns[w2], s.txns[w]
			if a.Completed >= 0 && a.Completed < b.Invoked {
				return s.violate(cur, s.ids[cur],
					"fractured read: %s read %s from %s but %s from older %s",
					t.ID, obj, b.ID, obj2, a.ID)
			}
		}
	}
	return true
}

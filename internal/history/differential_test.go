package history

import (
	"fmt"
	"testing"

	"repro/internal/model"
)

// genDifferential builds a seeded random small history mixing legal and
// illegal reads: writes get unique values, reads draw from the whole
// value pool (including values written causally later, which can force
// refutations, and the initial values).
func genDifferential(seed int64, n int) *History {
	rng := genRNG(seed)
	objects := []string{"X", "Y", "Z"}
	clients := []string{"c0", "c1", "c2"}
	initial := map[string]model.Value{}
	for _, o := range objects {
		initial[o] = model.Value("i" + o)
	}
	// Pre-assign writes so reads can reference any of them.
	type w struct {
		txn int
		obj string
		val model.Value
	}
	var writes []w
	isWriter := make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.next(5) < 2 { // ~40% writers
			isWriter[i] = true
			for k := 0; k <= rng.next(2); k++ {
				obj := objects[rng.next(len(objects))]
				writes = append(writes, w{i, obj, model.Value(fmt.Sprintf("v%d-%s", i, obj))})
			}
		}
	}
	pool := func(obj string) []model.Value {
		out := []model.Value{initial[obj]}
		for _, wr := range writes {
			if wr.obj == obj {
				out = append(out, wr.val)
			}
		}
		return out
	}
	h := New(initial)
	seqs := map[string]int{}
	now := int64(0)
	for i := 0; i < n; i++ {
		c := clients[rng.next(len(clients))]
		seqs[c]++
		rec := &TxnRecord{
			ID: model.TxnID{Client: c, Seq: seqs[c]}, Client: c,
			Invoked: now, Completed: now + int64(1+rng.next(20)),
		}
		now += int64(1 + rng.next(4))
		if isWriter[i] {
			for _, wr := range writes {
				if wr.txn == i {
					rec.Writes = append(rec.Writes, model.Write{Object: wr.obj, Value: wr.val})
				}
			}
		} else {
			rec.Reads = map[string]model.Value{}
			for k := 0; k <= rng.next(2); k++ {
				obj := objects[rng.next(len(objects))]
				vals := pool(obj)
				rec.Reads[obj] = vals[rng.next(len(vals))]
			}
		}
		h.Add(rec)
	}
	return h
}

// TestDifferentialSolverVsExhaustive is the agreement contract: on seeded
// random histories (n ≤ 12) the constraint-propagation solver and the
// exhaustive enumeration must return identical verdicts at every level.
func TestDifferentialSolverVsExhaustive(t *testing.T) {
	levels := []string{"causal", "serializable", "strict-serializable"}
	accepts, refutes := 0, 0
	for seed := int64(1); seed <= 400; seed++ {
		n := 2 + int(seed%11) // 2..12 transactions
		h := genDifferential(seed*7919, n)
		for _, level := range levels {
			got := Check(h, level)
			want := checkExhaustive(h, level)
			if got.OK != want.OK {
				t.Fatalf("seed %d level %s: solver says OK=%v (%s), exhaustive says OK=%v (%s)\n%s",
					seed, level, got.OK, got.Reason, want.OK, want.Reason, h)
			}
			if got.OK {
				accepts++
				if level != "causal" {
					validateTotalWitness(t, h, got.Witness, level == "strict-serializable")
				}
			} else {
				refutes++
			}
		}
	}
	// The corpus must exercise both directions, or agreement is vacuous.
	if accepts < 50 || refutes < 50 {
		t.Fatalf("differential corpus lost its teeth: %d accepting, %d refuting verdicts", accepts, refutes)
	}
}

// TestDifferentialAgreesOnProtocolShapedHistories runs both checkers over
// the synthetic generator output at exhaustive-affordable sizes.
func TestDifferentialAgreesOnProtocolShapedHistories(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		for _, tc := range []struct {
			name string
			h    *History
		}{
			{"serializable", GenSerializable(seed, 20, 4)},
			{"causalonly", GenCausalOnly(seed, 18)},
			{"violating", GenViolating(seed, 15)},
		} {
			for _, level := range []string{"causal", "serializable", "strict-serializable"} {
				got := Check(tc.h, level)
				want := checkExhaustive(tc.h, level)
				if got.OK != want.OK {
					t.Fatalf("%s seed %d level %s: solver OK=%v, exhaustive OK=%v (%s / %s)",
						tc.name, seed, level, got.OK, want.OK, got.Reason, want.Reason)
				}
			}
		}
	}
}

// validateTotalWitness replays a serializable/strict-serializable witness
// and fails the test unless it is a permutation of the history respecting
// program order, reads-from and (when realTime) real-time order, in which
// every transaction's reads return the last written value.
func validateTotalWitness(t *testing.T, h *History, witness []model.TxnID, realTime bool) {
	t.Helper()
	if len(witness) != h.Len() {
		t.Fatalf("witness has %d entries for %d transactions", len(witness), h.Len())
	}
	pos := make(map[model.TxnID]int, len(witness))
	recs := make(map[model.TxnID]*TxnRecord, h.Len())
	for _, r := range h.Records() {
		recs[r.ID] = r
	}
	for i, id := range witness {
		if _, dup := pos[id]; dup {
			t.Fatalf("witness repeats %s", id)
		}
		if _, known := recs[id]; !known {
			t.Fatalf("witness contains unknown txn %s", id)
		}
		pos[id] = i
	}
	// Program order.
	for _, c := range h.Clients() {
		byc := h.ByClient(c)
		for i := 1; i < len(byc); i++ {
			if pos[byc[i-1].ID] > pos[byc[i].ID] {
				t.Fatalf("witness violates program order: %s after %s", byc[i-1].ID, byc[i].ID)
			}
		}
	}
	// Real time.
	if realTime {
		for _, a := range h.Records() {
			if a.Completed < 0 {
				continue
			}
			for _, b := range h.Records() {
				if a.ID != b.ID && a.Completed < b.Invoked && pos[a.ID] > pos[b.ID] {
					t.Fatalf("witness violates real time: %s after %s", a.ID, b.ID)
				}
			}
		}
	}
	// Replay legality.
	state := map[string]model.Value{}
	for _, id := range witness {
		r := recs[id]
		for obj, val := range r.Reads {
			want, written := state[obj]
			if !written {
				want = h.Initial(obj)
			}
			if val != want {
				t.Fatalf("witness illegal at %s: read %s=%s, last write is %s", id, obj, val, want)
			}
		}
		for _, w := range r.Writes {
			state[w.Object] = w.Value
		}
	}
}

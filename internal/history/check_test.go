package history

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func rec(client string, seq int, reads map[string]model.Value, writes ...model.Write) *TxnRecord {
	return &TxnRecord{
		ID:        model.TxnID{Client: client, Seq: seq},
		Client:    client,
		Reads:     reads,
		Writes:    writes,
		Invoked:   0,
		Completed: 1,
	}
}

// paperSetup builds the initial transactions of the paper's proof: T_in0
// writes x_in0 to X0, T_in1 writes x_in1 to X1, then client cw reads both
// initial values (T_in_r) and issues Tw = (w(X0)x0, w(X1)x1).
func paperSetup() *History {
	h := New(nil)
	h.Add(rec("cin0", 1, nil, model.Write{Object: "X0", Value: "xin0"}))
	h.Add(rec("cin1", 1, nil, model.Write{Object: "X1", Value: "xin1"}))
	h.Add(rec("cw", 1, map[string]model.Value{"X0": "xin0", "X1": "xin1"}))
	h.Add(rec("cw", 2, nil, model.Write{Object: "X0", Value: "x0"}, model.Write{Object: "X1", Value: "x1"}))
	return h
}

func TestCausalAcceptsBothOldValues(t *testing.T) {
	h := paperSetup()
	h.Add(rec("cr", 1, map[string]model.Value{"X0": "xin0", "X1": "xin1"}))
	if v := CheckCausal(h); !v.OK {
		t.Fatalf("old/old read rejected: %s", v.Reason)
	}
}

func TestCausalAcceptsBothNewValues(t *testing.T) {
	h := paperSetup()
	h.Add(rec("cr", 1, map[string]model.Value{"X0": "x0", "X1": "x1"}))
	if v := CheckCausal(h); !v.OK {
		t.Fatalf("new/new read rejected: %s", v.Reason)
	}
}

// TestCausalRejectsMixedRead is Lemma 1 of the paper: a reader cannot see
// the new value for one object and the initial value for the other,
// because cw's read of the initial values causally orders T_in before Tw.
func TestCausalRejectsMixedRead(t *testing.T) {
	for _, mixed := range []map[string]model.Value{
		{"X0": "x0", "X1": "xin1"},
		{"X0": "xin0", "X1": "x1"},
	} {
		h := paperSetup()
		h.Add(rec("cr", 1, mixed))
		if v := CheckCausal(h); v.OK {
			t.Fatalf("mixed read %v accepted", mixed)
		}
	}
}

func TestCausalDetectsCycle(t *testing.T) {
	h := New(nil)
	// c1: T1 r(Y)b ; T2 w(X)a      c2: T3 r(X)a ; T4 w(Y)b
	// T4 -> T1 (rf), T1 -> T2 (po), T2 -> T3 (rf), T3 -> T4 (po): cycle.
	h.Add(rec("c1", 1, map[string]model.Value{"Y": "b"}))
	h.Add(rec("c1", 2, nil, model.Write{Object: "X", Value: "a"}))
	h.Add(rec("c2", 1, map[string]model.Value{"X": "a"}))
	h.Add(rec("c2", 2, nil, model.Write{Object: "Y", Value: "b"}))
	if v := CheckCausal(h); v.OK {
		t.Fatal("cyclic causality accepted")
	}
}

func TestCausalAllowsDivergentOrdersOfConcurrentWrites(t *testing.T) {
	// Two concurrent writers; two readers observe them in opposite orders.
	// Causally consistent, but not serializable.
	h := New(map[string]model.Value{"X": "x0"})
	h.Add(rec("w1", 1, nil, model.Write{Object: "X", Value: "a"}))
	h.Add(rec("w2", 1, nil, model.Write{Object: "X", Value: "b"}))
	h.Add(rec("r1", 1, map[string]model.Value{"X": "a"}))
	h.Add(rec("r1", 2, map[string]model.Value{"X": "b"}))
	h.Add(rec("r2", 1, map[string]model.Value{"X": "b"}))
	h.Add(rec("r2", 2, map[string]model.Value{"X": "a"}))
	if v := CheckCausal(h); !v.OK {
		t.Fatalf("divergent concurrent orders rejected by causal: %s", v.Reason)
	}
	if v := CheckSerializable(h); v.OK {
		t.Fatal("divergent concurrent orders accepted by serializability")
	}
}

func TestSerializableSimple(t *testing.T) {
	h := New(map[string]model.Value{"X": "x0"})
	h.Add(rec("w", 1, nil, model.Write{Object: "X", Value: "a"}))
	h.Add(rec("r", 1, map[string]model.Value{"X": "a"}))
	v := CheckSerializable(h)
	if !v.OK {
		t.Fatalf("rejected: %s", v.Reason)
	}
	if len(v.Witness) != 2 {
		t.Fatalf("witness = %v", v.Witness)
	}
}

func TestStrictSerializableRejectsStaleRead(t *testing.T) {
	h := New(map[string]model.Value{"X": "x0"})
	a := rec("w1", 1, nil, model.Write{Object: "X", Value: "a"})
	a.Invoked, a.Completed = 0, 10
	b := rec("w2", 1, nil, model.Write{Object: "X", Value: "b"})
	b.Invoked, b.Completed = 20, 30
	r := rec("r", 1, map[string]model.Value{"X": "a"})
	r.Invoked, r.Completed = 40, 50
	h.Add(a)
	h.Add(b)
	h.Add(r)
	if v := CheckSerializable(h); !v.OK {
		t.Fatalf("serializable rejected: %s", v.Reason)
	}
	if v := CheckStrictSerializable(h); v.OK {
		t.Fatal("stale read accepted by strict serializability")
	}
}

func TestReadAtomicFracturedRead(t *testing.T) {
	mk := func(xv, yv model.Value) *History {
		h := New(map[string]model.Value{"X": "x0", "Y": "y0"})
		w := rec("w", 1, nil, model.Write{Object: "X", Value: "a"}, model.Write{Object: "Y", Value: "b"})
		w.Invoked, w.Completed = 10, 20
		r := rec("r", 1, map[string]model.Value{"X": xv, "Y": yv})
		r.Invoked, r.Completed = 30, 40
		h.Add(w)
		h.Add(r)
		return h
	}
	if v := CheckReadAtomic(mk("a", "b")); !v.OK {
		t.Fatalf("atomic read rejected: %s", v.Reason)
	}
	if v := CheckReadAtomic(mk("x0", "y0")); !v.OK {
		t.Fatalf("all-old read rejected: %s", v.Reason)
	}
	if v := CheckReadAtomic(mk("a", "y0")); v.OK {
		t.Fatal("fractured read (new,old) accepted")
	}
	if v := CheckReadAtomic(mk("x0", "b")); v.OK {
		t.Fatal("fractured read (old,new) accepted")
	}
}

func TestDanglingReadRejectedEverywhere(t *testing.T) {
	h := New(nil)
	h.Add(rec("r", 1, map[string]model.Value{"X": "ghost"}))
	for name, check := range map[string]func(*History) Verdict{
		"causal": CheckCausal, "ser": CheckSerializable,
		"strict": CheckStrictSerializable, "ra": CheckReadAtomic,
	} {
		if v := check(h); v.OK {
			t.Fatalf("%s accepted dangling read", name)
		}
	}
}

func TestDuplicateValuesRejected(t *testing.T) {
	h := New(nil)
	h.Add(rec("a", 1, nil, model.Write{Object: "X", Value: "v"}))
	h.Add(rec("b", 1, nil, model.Write{Object: "X", Value: "v"}))
	if v := CheckCausal(h); v.OK {
		t.Fatal("duplicate values accepted")
	}
}

func TestDuplicateTxnIDRejected(t *testing.T) {
	h := New(nil)
	h.Add(rec("a", 1, nil, model.Write{Object: "X", Value: "v1"}))
	h.Add(rec("a", 1, nil, model.Write{Object: "X", Value: "v2"}))
	if v := CheckCausal(h); v.OK {
		t.Fatal("duplicate txn ids accepted")
	}
}

func TestReadYourOwnWriteWithinRMWTxn(t *testing.T) {
	// A transaction that reads X and also writes X: our convention is
	// reads-precede-writes, so the read must see the *previous* value.
	h := New(map[string]model.Value{"X": "x0"})
	h.Add(rec("c", 1, map[string]model.Value{"X": "x0"}, model.Write{Object: "X", Value: "a"}))
	h.Add(rec("c", 2, map[string]model.Value{"X": "a"}))
	if v := CheckCausal(h); !v.OK {
		t.Fatalf("rmw rejected: %s", v.Reason)
	}
	if v := CheckSerializable(h); !v.OK {
		t.Fatalf("rmw rejected by ser: %s", v.Reason)
	}
}

func TestHistoryTooLarge(t *testing.T) {
	h := New(nil)
	for i := 0; i < MaxTxns+1; i++ {
		h.Add(rec("c", i+1, nil, model.Write{Object: "X", Value: model.Value(fmt.Sprintf("v%d", i))}))
	}
	if v := CheckCausal(h); v.OK {
		t.Fatal("oversized history accepted instead of reported")
	}
}

// randomSequentialHistory builds a history by executing randomly generated
// transactions strictly one after another against a single logical store:
// the result is serializable by construction.
func randomSequentialHistory(seed int64, nTxn int) *History {
	rng := seed
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := int((rng >> 33) % int64(n))
		if v < 0 {
			v = -v
		}
		return v
	}
	objects := []string{"X", "Y", "Z"}
	clients := []string{"c0", "c1", "c2"}
	state := map[string]model.Value{"X": "i", "Y": "i", "Z": "i"}
	h := New(map[string]model.Value{"X": "i", "Y": "i", "Z": "i"})
	seqs := map[string]int{}
	now := int64(0)
	for i := 0; i < nTxn; i++ {
		c := clients[next(len(clients))]
		seqs[c]++
		r := &TxnRecord{
			ID: model.TxnID{Client: c, Seq: seqs[c]}, Client: c,
			Reads: map[string]model.Value{}, Invoked: now, Completed: now + 1,
		}
		now += 2
		if next(2) == 0 { // read-only over 1-2 objects
			for _, o := range objects[:1+next(2)] {
				r.Reads[o] = state[o]
			}
		} else { // write-only over 1-2 objects
			for _, o := range objects[:1+next(2)] {
				val := model.Value(fmt.Sprintf("v%d-%s", i, o))
				r.Writes = append(r.Writes, model.Write{Object: o, Value: val})
				state[o] = val
			}
		}
		h.Add(r)
	}
	return h
}

// Property: sequential executions satisfy every consistency level, and the
// implication chain strict ⇒ serializable ⇒ causal holds.
func TestSequentialHistoriesSatisfyAllLevels(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		h := randomSequentialHistory(seed, int(n%10)+2)
		st := CheckStrictSerializable(h)
		se := CheckSerializable(h)
		ca := CheckCausal(h)
		ra := CheckReadAtomic(h)
		if !st.OK || !se.OK || !ca.OK || !ra.OK {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: whenever the serializability checker accepts a (possibly
// mutated) history, the causal checker must accept it too.
func TestSerializableImpliesCausal(t *testing.T) {
	f := func(seed int64, n uint8, mutate bool) bool {
		h := randomSequentialHistory(seed, int(n%8)+2)
		if mutate && h.Len() > 2 {
			// Swap one read value for another object's current value to
			// perturb the history; verdicts may change but the
			// implication must not break.
			for _, r := range h.Records() {
				if len(r.Reads) > 0 {
					for o := range r.Reads {
						r.Reads[o] = "i"
						break
					}
					break
				}
			}
		}
		se := CheckSerializable(h)
		ca := CheckCausal(h)
		if se.OK && !ca.OK {
			return false
		}
		st := CheckStrictSerializable(h)
		if st.OK && !se.OK {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWitnessRespectsProgramOrder(t *testing.T) {
	h := paperSetup()
	h.Add(rec("cr", 1, map[string]model.Value{"X0": "x0", "X1": "x1"}))
	v := CheckCausal(h)
	if !v.OK {
		t.Fatalf("rejected: %s", v.Reason)
	}
	pos := map[model.TxnID]int{}
	for i, id := range v.Witness {
		pos[id] = i
	}
	if pos[model.TxnID{Client: "cw", Seq: 1}] > pos[model.TxnID{Client: "cw", Seq: 2}] {
		t.Fatalf("witness violates program order: %v", v.Witness)
	}
}

func TestHistoryString(t *testing.T) {
	h := paperSetup()
	s := h.String()
	if s == "" {
		t.Fatal("empty string rendering")
	}
	if want := "cw"; !contains(s, want) {
		t.Fatalf("rendering missing %q: %s", want, s)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Copy-on-write closure overlays.
//
// The incremental session keeps one serialization state per reading
// client at the causal level, and every state's forced order is a
// superset of the single global base order (program order, reads-from,
// real time). Cloning the base per client — the original representation
// — made every global edge cost O(clients) full closure updates, the
// dominant term of the 16-client incremental slowdown. A cowClosure
// instead SHARES the global closure and keeps only the rows a state's
// own unit edges have diverged on, as sparse per-row overrides:
//
//   - effective succ/pred row of x = override row if present, else the
//     parent row (the invariant: an override row is always a superset
//     of its parent row);
//   - a state with no overrides is represented in O(1) and costs O(1)
//     per global edge (the parent's own closure pass already updated
//     every row it can see);
//   - when the parent gains an edge, applyParentEdge re-closes only the
//     overridden rows (and copy-on-writes the rare un-overridden row
//     whose closure now depends on an overridden one).
//
// writeThrough marks the aliased total-order state, whose unit edges
// ARE global facts: it delegates straight to the parent.
package history

// cowClosure is a transitively closed partial order represented as
// sparse row overrides over a shared parent closure.
type cowClosure struct {
	parent       *orderClosure
	writeThrough bool
	dsucc        map[int]bitset
	dpred        map[int]bitset
}

func newCowClosure(parent *orderClosure, writeThrough bool) *cowClosure {
	return &cowClosure{
		parent:       parent,
		writeThrough: writeThrough,
		dsucc:        make(map[int]bitset),
		dpred:        make(map[int]bitset),
	}
}

// succRow returns the effective successor row of x (read-only).
func (c *cowClosure) succRow(x int) bitset {
	if row, ok := c.dsucc[x]; ok {
		return row
	}
	return c.parent.succ[x]
}

// predRow returns the effective predecessor row of x (read-only).
func (c *cowClosure) predRow(x int) bitset {
	if row, ok := c.dpred[x]; ok {
		return row
	}
	return c.parent.pred[x]
}

// has reports whether a is ordered strictly before b.
func (c *cowClosure) has(a, b int) bool { return c.succRow(a).has(b) }

// diverged reports whether the overlay differs from its parent.
func (c *cowClosure) diverged() bool { return len(c.dsucc)+len(c.dpred) > 0 }

// addEdge orders a strictly before b and re-closes transitively,
// copy-on-writing every row the insertion touches. It reports false on
// conflict (b already ordered before a).
func (c *cowClosure) addEdge(a, b int) bool {
	if c.writeThrough {
		return c.parent.addEdge(a, b)
	}
	if a == b {
		return false
	}
	if c.succRow(a).has(b) {
		return true
	}
	if c.succRow(b).has(a) {
		return false
	}
	c.insert(a, b)
	return true
}

// insert performs the full closure insertion of edge a→b over the
// effective rows. Unlike addEdge it does not assume the overlay is
// currently closed, so applyParentEdge can use it to catch an overlay
// up after the parent moved ahead; per-row superset checks make it
// idempotent.
func (c *cowClosure) insert(a, b int) {
	// Everything at or before a precedes everything at or after b. The
	// rows iterated (succ of b, pred of a) are never mutated by the
	// respective phase: b is not in {a} ∪ pred(a) (that would be the
	// conflict case) and a is not in {b} ∪ succ(b).
	after := c.succRow(b)
	upd := func(x int) {
		row, ok := c.dsucc[x]
		if !ok {
			prow := c.parent.succ[x]
			if prow.has(b) && prow.containsAll(after) {
				return
			}
			row = prow.clone()
			c.dsucc[x] = row
		} else if row.has(b) && row.containsAll(after) {
			return
		}
		row.or(after)
		row.set(b)
	}
	upd(a)
	c.predRow(a).forEach(upd)
	before := c.predRow(a)
	updP := func(y int) {
		row, ok := c.dpred[y]
		if !ok {
			prow := c.parent.pred[y]
			if prow.has(a) && prow.containsAll(before) {
				return
			}
			row = prow.clone()
			c.dpred[y] = row
		} else if row.has(a) && row.containsAll(before) {
			return
		}
		row.or(before)
		row.set(a)
	}
	updP(b)
	after.forEach(updP)
}

// applyParentEdge re-establishes the overlay's transitive closure after
// the parent gained edge a→b (and was itself re-closed). An overlay with
// no overrides needs nothing: its effective rows ARE the parent's.
func (c *cowClosure) applyParentEdge(a, b int) {
	if c.writeThrough || !c.diverged() {
		return
	}
	_, sb := c.dsucc[b]
	_, pa := c.dpred[a]
	if !sb && !pa {
		// succ(b) and pred(a) agree with the parent, so the parent's own
		// closure pass fully updated every un-overridden row; only the
		// overridden rows in the affected regions still owe the update.
		predA := c.predRow(a)
		after := c.parent.succ[b]
		for x, row := range c.dsucc {
			if x == a || predA.has(x) {
				if !row.has(b) || !row.containsAll(after) {
					row.or(after)
					row.set(b)
				}
			}
		}
		for y, row := range c.dpred {
			if y == b || after.has(y) {
				if !row.has(a) || !row.containsAll(predA) {
					row.or(predA)
					row.set(a)
				}
			}
		}
		return
	}
	c.insert(a, b)
}

// materialize builds a dense closure equal to the effective order, for
// the solver (which owns and mutates its input).
func (c *cowClosure) materialize() *orderClosure {
	out := c.parent.clone()
	for x, row := range c.dsucc {
		out.succ[x] = row.clone()
	}
	for x, row := range c.dpred {
		out.pred[x] = row.clone()
	}
	return out
}

// growWords widens every override row (the parent grows separately).
func (c *cowClosure) growWords(words int) {
	for x, row := range c.dsucc {
		c.dsucc[x] = row.grow(words)
	}
	for x, row := range c.dpred {
		c.dpred[x] = row.grow(words)
	}
}

// retire drops slot t from the overlay: its own override rows are
// deleted and the bit is cleared from every override pred row. No
// override succ row can contain t — an edge x→t would contradict t
// preceding every live transaction, the retirement precondition.
func (c *cowClosure) retire(t int) {
	delete(c.dsucc, t)
	delete(c.dpred, t)
	for _, row := range c.dpred {
		row.clear(t)
	}
}

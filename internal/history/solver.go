// Constraint-propagation search for legal serializations.
//
// The original checkers enumerated linear extensions of the dependency
// graph outright, which refutes (proves NO serialization exists) only by
// exhausting a factorial search — the reason certification was capped at
// 62 transactions and violator load histories at 24. The solver instead
// works DPLL-style over ordering literals "a before b":
//
//   - The known edges (program order, reads-from, real time) seed a
//     transitively closed partial order kept as per-txn bitsets.
//   - Each legality obligation becomes constraints. A read by t of the
//     initial value of obj demands every writer of obj after t (unit
//     edges). A read by t of v written by W demands, for every other
//     writer o of obj, the anti-dependency disjunction
//     (o → W) ∨ (t → o): o must not land between the read's writer and
//     the read.
//   - Unit propagation: a disjunct whose reverse is already implied is
//     dead; its sibling becomes a forced edge. Edge insertion closes the
//     order transitively and detects conflicts immediately.
//   - When propagation reaches a fixpoint with undecided constraints
//     left, the solver branches on the first one, exploring both
//     disjuncts; failed closure states are memoized so the search never
//     re-explores an ordering state it has already refuted.
//
// A satisfying assignment is a partial order in which every constraint
// holds, so ANY linear extension of it is a legal serialization — the
// witness is its deterministic smallest-index-first extension. The search
// is sound and complete with respect to the exhaustive checker (see
// checkExhaustive and the differential suite).
package history

import (
	"sort"

	"repro/internal/model"
)

// orderClosure is a transitively closed strict partial order over txn
// indices: succ[i] holds every j ordered after i, pred[i] every j before.
type orderClosure struct {
	succ []bitset
	pred []bitset
}

// newOrderClosure closes g.preds transitively. topo must be a topological
// order of g (from graph.acyclic).
func newOrderClosure(g *graph, topo []int) *orderClosure {
	n := len(g.txns)
	c := &orderClosure{succ: make([]bitset, n), pred: make([]bitset, n)}
	for i := 0; i < n; i++ {
		c.succ[i] = newBitset(n)
		c.pred[i] = newBitset(n)
	}
	// Process in topological order: every direct predecessor's closure is
	// complete before it is folded in.
	for _, i := range topo {
		g.preds[i].forEach(func(j int) {
			c.pred[i].or(c.pred[j])
			c.pred[i].set(j)
		})
	}
	for i := 0; i < n; i++ {
		c.pred[i].forEach(func(j int) { c.succ[j].set(i) })
	}
	return c
}

func (c *orderClosure) clone() *orderClosure {
	out := &orderClosure{succ: make([]bitset, len(c.succ)), pred: make([]bitset, len(c.pred))}
	for i := range c.succ {
		out.succ[i] = c.succ[i].clone()
		out.pred[i] = c.pred[i].clone()
	}
	return out
}

func (c *orderClosure) copyFrom(o *orderClosure) {
	for i := range c.succ {
		c.succ[i].copyFrom(o.succ[i])
		c.pred[i].copyFrom(o.pred[i])
	}
}

// addNode appends an isolated node with row capacity words and returns
// its index. Used by the incremental session, whose node count grows as
// transactions commit (the batch path sizes the closure up front).
func (c *orderClosure) addNode(words int) int {
	c.succ = append(c.succ, make(bitset, words))
	c.pred = append(c.pred, make(bitset, words))
	return len(c.succ) - 1
}

// growWords widens every row to at least words words.
func (c *orderClosure) growWords(words int) {
	for i := range c.succ {
		c.succ[i] = c.succ[i].grow(words)
		c.pred[i] = c.pred[i].grow(words)
	}
}

// addEdge orders a strictly before b and re-closes transitively.
// It reports false on conflict (b is already ordered before a).
func (c *orderClosure) addEdge(a, b int) bool {
	if a == b {
		return false
	}
	if c.succ[a].has(b) {
		return true
	}
	if c.succ[b].has(a) {
		return false
	}
	// Fast path for the incremental session's common shape: edges point at
	// a transaction with no successors yet (the one just appended), so the
	// closure update degenerates to single-bit sets instead of word-wise
	// unions over the whole row.
	if c.succ[b].empty() {
		c.succ[a].set(b)
		c.pred[a].forEach(func(x int) { c.succ[x].set(b) })
		c.pred[b].or(c.pred[a])
		c.pred[b].set(a)
		return true
	}
	if c.pred[a].empty() {
		c.succ[a].or(c.succ[b])
		c.succ[a].set(b)
		c.pred[b].set(a)
		c.succ[b].forEach(func(y int) { c.pred[y].set(a) })
		return true
	}
	// Everything at or before a precedes everything at or after b.
	after := c.succ[b]
	update := func(x int) {
		c.succ[x].or(after)
		c.succ[x].set(b)
	}
	update(a)
	c.pred[a].forEach(update)
	before := c.pred[a]
	updateP := func(y int) {
		c.pred[y].or(before)
		c.pred[y].set(a)
	}
	updateP(b)
	after.forEach(updateP)
	return true
}

// clause is the anti-dependency disjunction (a1 → b1) ∨ (a2 → b2).
type clause struct {
	a1, b1, a2, b2 int
}

// solver searches for an extension of the base order satisfying every
// legality clause of the transactions in checkSet.
type solver struct {
	order   *orderClosure
	clauses []clause
	// failed memoizes refuted closure states (packed succ bitsets), the
	// conflict-driven pruning that keeps refutation from re-deriving the
	// same dead ends through different branch orders.
	failed map[string]struct{}
	// unsat is set when constraint construction already proves the check
	// impossible (a transaction reading its own write: reads precede
	// writes, so no placement is ever legal).
	unsat bool
	// bigHint is an optional previously satisfying order (the session's
	// last model): at each branch the search tries the disjunct that
	// order satisfied first. A model invalidated by one new constraint is
	// usually one flip away from a satisfying order, so the warm-started
	// descent commits the surviving guesses without backtracking instead
	// of re-deriving them clause by clause. Soundness and completeness
	// are untouched — the hint only permutes branch order.
	bigHint *orderClosure
	// hint is bigHint projected to the sub-solver's dense index space.
	hint []bitset
}

// newSolver builds the clause set for the txns in checkSet (nil: all
// txns) over the given base closure. The closure is owned by the solver
// afterwards.
func newSolver(g *graph, base *orderClosure, checkSet bitset) *solver {
	s := &solver{order: base, failed: make(map[string]struct{})}
	for t := range g.txns {
		if checkSet != nil && !checkSet.has(t) {
			continue
		}
		rec := g.txns[t]
		for _, obj := range sortedObjects(rec.Reads) {
			val := rec.Reads[obj]
			if val == g.h.Initial(obj) {
				// Initial-value read: every writer of obj after t. Unit
				// edges, applied immediately.
				for _, o := range g.writersOf[obj] {
					if o == t {
						continue // own write: reads precede writes
					}
					if !s.order.addEdge(t, o) {
						s.unsat = true
						return s
					}
				}
				continue
			}
			w := g.writer[ov{obj, val}] // build validated existence
			if w == t {
				s.unsat = true // reads its own write: never legal
				return s
			}
			for _, o := range g.writersOf[obj] {
				if o == w || o == t {
					continue
				}
				if s.order.succ[o].has(w) || s.order.succ[t].has(o) {
					continue // already satisfied by the base order
				}
				s.clauses = append(s.clauses, clause{o, w, t, o})
			}
		}
	}
	return s
}

// propagate applies unit propagation to a fixpoint. It reports false on
// conflict (a clause with both disjuncts dead, or a forced edge closing a
// cycle).
func (s *solver) propagate() bool {
	for changed := true; changed; {
		changed = false
		for _, c := range s.clauses {
			if s.order.succ[c.a1].has(c.b1) || s.order.succ[c.a2].has(c.b2) {
				continue // satisfied
			}
			dead1 := s.order.succ[c.b1].has(c.a1)
			dead2 := s.order.succ[c.b2].has(c.a2)
			switch {
			case dead1 && dead2:
				return false
			case dead1:
				if !s.order.addEdge(c.a2, c.b2) {
					return false
				}
				changed = true
			case dead2:
				if !s.order.addEdge(c.a1, c.b1) {
					return false
				}
				changed = true
			}
		}
	}
	return true
}

// key packs the closure into a memoization key. The successor bitsets
// fully determine the solver state: clause status is derived from them.
func (s *solver) key() string {
	words := 0
	for _, row := range s.order.succ {
		words += len(row)
	}
	buf := make([]byte, 0, words*8)
	for _, row := range s.order.succ {
		for _, w := range row {
			buf = append(buf,
				byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
				byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
		}
	}
	return string(buf)
}

// newClauseSolver builds a solver over a pre-built clause set, for the
// incremental session, which constructs clauses itself as transactions
// commit. The closure is owned by the solver afterwards; hint, when
// non-nil, is a previously satisfying order in the same index space used
// to warm-start branch polarity (see solver.bigHint).
func newClauseSolver(order *orderClosure, clauses []clause, hint *orderClosure) *solver {
	return &solver{order: order, clauses: clauses, failed: make(map[string]struct{}), bigHint: hint}
}

// solve runs the search and, on success, returns the deterministic
// smallest-index-first linear extension of the satisfying order.
func (s *solver) solve() ([]int, bool) {
	if s.unsat {
		return nil, false
	}
	if !s.run() {
		return nil, false
	}
	return extendClosure(s.order), true
}

// solveClosure runs the search and, on success, returns the satisfying
// partial order itself (for the session's retained model).
func (s *solver) solveClosure() (*orderClosure, bool) {
	if s.unsat || !s.run() {
		return nil, false
	}
	return s.order, true
}

// run solves the clause set by projecting the search onto the
// clause-involved transactions and replaying the winning disjunct edges
// onto the full closure. The projection is exact: every test the search
// performs — clause satisfied/dead, addEdge cycle detection — queries
// ordering bits between clause endpoints only, and under a transitively
// closed order a new involved pair x → y appears after addEdge(a, b)
// exactly when x ⪯ a and b ⪯ y, which is again an involved-pair
// predicate. So the restricted relation evolves autonomously and the
// branch-and-propagate search runs unchanged on a K-node closure, with
// per-node clone and memoization cost O(K²) instead of O(n²) — the
// difference between streaming certification staying incremental at
// thousands of committed transactions and grinding on whole-history
// clones whenever a handful of recent commits are mutually undecided.
func (s *solver) run() bool {
	if len(s.clauses) == 0 {
		return true
	}
	// Map the clause-involved transactions to a dense [0, K) index space,
	// in first-appearance order so branching stays deterministic.
	toSmall := make(map[int]int)
	var nodes []int
	add := func(x int) {
		if _, ok := toSmall[x]; !ok {
			toSmall[x] = len(nodes)
			nodes = append(nodes, x)
		}
	}
	for _, c := range s.clauses {
		add(c.a1)
		add(c.b1)
		add(c.a2)
		add(c.b2)
	}
	k := len(nodes)
	small := &orderClosure{succ: make([]bitset, k), pred: make([]bitset, k)}
	for i := 0; i < k; i++ {
		small.succ[i] = newBitset(k)
		small.pred[i] = newBitset(k)
	}
	for i, bi := range nodes {
		for j, bj := range nodes {
			if i != j && s.order.succ[bi].has(bj) {
				small.succ[i].set(j)
				small.pred[j].set(i)
			}
		}
	}
	sc := make([]clause, len(s.clauses))
	for i, c := range s.clauses {
		sc[i] = clause{toSmall[c.a1], toSmall[c.b1], toSmall[c.a2], toSmall[c.b2]}
	}
	sub := &solver{order: small, clauses: sc, failed: make(map[string]struct{})}
	if h := s.bigHint; h != nil {
		sub.hint = make([]bitset, k)
		for i, bi := range nodes {
			sub.hint[i] = newBitset(k)
			if bi >= len(h.succ) {
				continue // appended after the hint model was solved
			}
			row := h.succ[bi]
			for j, bj := range nodes {
				if bj>>6 < len(row) && row.has(bj) {
					sub.hint[i].set(j)
				}
			}
		}
	}
	if !sub.search() {
		return false
	}
	// Replay one satisfied disjunct per clause onto the full closure. Each
	// replayed pair holds in the satisfying small order, so the closure of
	// base ∪ replay is a subrelation of it — acyclic, every addEdge
	// succeeds, and every clause is satisfied by its chosen edge.
	for i, c := range sc {
		big := s.clauses[i]
		if small.succ[c.a1].has(c.b1) {
			if !s.order.addEdge(big.a1, big.b1) {
				return false // unreachable: pair holds in the small order
			}
		} else if !s.order.addEdge(big.a2, big.b2) {
			return false // unreachable
		}
	}
	return true
}

// search finds an extension of s.order satisfying every clause, or
// reports that none exists. It first runs a clone-free optimistic
// descent committing one disjunct per undecided clause (hint polarity
// first); only when that descent dead-ends does it restore the single
// entry snapshot and run the complete branch-and-memoize search. The
// happy path — a warm-started re-solve whose hint survives — costs no
// per-node clones or memo keys at all.
func (s *solver) search() bool {
	if !s.propagate() {
		return false
	}
	snap := s.order.clone()
	if s.descend() {
		return true
	}
	s.order.copyFrom(snap)
	return s.searchFull()
}

// descend greedily commits clauses in order without backtracking: the
// preferred disjunct (hint polarity) first, its sibling when the
// preferred edge cycles immediately. False means only that the greedy
// path dead-ended, not that the instance is unsatisfiable.
func (s *solver) descend() bool {
	for {
		if !s.propagate() {
			return false
		}
		pick := -1
		for i, c := range s.clauses {
			if !s.order.succ[c.a1].has(c.b1) && !s.order.succ[c.a2].has(c.b2) {
				pick = i
				break
			}
		}
		if pick < 0 {
			return true
		}
		c := s.clauses[pick]
		x1, y1, x2, y2 := c.a1, c.b1, c.a2, c.b2
		if s.hint != nil && !s.hint[c.a1].has(c.b1) && s.hint[c.a2].has(c.b2) {
			x1, y1, x2, y2 = c.a2, c.b2, c.a1, c.b1
		}
		if !s.order.addEdge(x1, y1) && !s.order.addEdge(x2, y2) {
			return false
		}
	}
}

func (s *solver) searchFull() bool {
	if !s.propagate() {
		return false
	}
	pick := -1
	for i, c := range s.clauses {
		if !s.order.succ[c.a1].has(c.b1) && !s.order.succ[c.a2].has(c.b2) {
			pick = i
			break
		}
	}
	if pick < 0 {
		return true // every clause satisfied: the order is legal
	}
	key := s.key()
	if _, refuted := s.failed[key]; refuted {
		return false
	}
	c := s.clauses[pick]
	// Branch polarity: follow the warm-start hint when it decided this
	// pair, otherwise first disjunct first (the deterministic default).
	x1, y1, x2, y2 := c.a1, c.b1, c.a2, c.b2
	if s.hint != nil && !s.hint[c.a1].has(c.b1) && s.hint[c.a2].has(c.b2) {
		x1, y1, x2, y2 = c.a2, c.b2, c.a1, c.b1
	}
	saved := s.order.clone()
	if s.order.addEdge(x1, y1) && s.searchFull() {
		return true
	}
	s.order.copyFrom(saved)
	if s.order.addEdge(x2, y2) && s.searchFull() {
		return true
	}
	s.order.copyFrom(saved)
	s.failed[key] = struct{}{}
	return false
}

// extendClosure produces the smallest-index-first linear extension of a
// transitively closed partial order.
func extendClosure(c *orderClosure) []int {
	n := len(c.succ)
	var placed bitset
	if n > 0 {
		placed = make(bitset, len(c.pred[0]))
	}
	order := make([]int, 0, n)
	for len(order) < n {
		for i := 0; i < n; i++ {
			if !placed.has(i) && placed.containsAll(c.pred[i]) {
				placed.set(i)
				order = append(order, i)
				break
			}
		}
	}
	return order
}

// sortedObjects returns the read-set object names in ascending order so
// clause construction (and with it branching and witnesses) is
// deterministic regardless of map iteration.
func sortedObjects(reads map[string]model.Value) []string {
	out := make([]string, 0, len(reads))
	for o := range reads {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

package history

import (
	"testing"

	"repro/internal/model"
)

// seedHistories are the known shapes the fuzzer starts from: the paper's
// §3 counterexample (Lemma 1's mixed read, the witness the adversary
// extracts from naivefast/twopcfast), the one-round fracture shape that
// fails eigerps under load (half a multi-object commit visible), a
// divergent-order history (causal but not serializable), and a clean
// accepting history.
func seedHistories() map[string]*History {
	rec := func(client string, seq int, inv, dur int64, reads map[string]model.Value, writes ...model.Write) *TxnRecord {
		return &TxnRecord{
			ID: model.TxnID{Client: client, Seq: seq}, Client: client,
			Reads: reads, Writes: writes, Invoked: inv, Completed: inv + dur,
		}
	}
	out := map[string]*History{}

	// Lemma 1: cin writes A, c1 reads it with B's initial, then writes
	// both; c2's mixed read (new A, initial B) has no causal
	// serialization.
	lemma1 := New(encInitials())
	lemma1.Add(rec("c0", 1, 0, 2, nil, model.Write{Object: "A", Value: "w0"}))
	lemma1.Add(rec("c1", 1, 2, 2, map[string]model.Value{"A": "w0", "B": "iB"}))
	lemma1.Add(rec("c1", 2, 4, 2, nil, model.Write{Object: "A", Value: "w1"}, model.Write{Object: "B", Value: "w2"}))
	lemma1.Add(rec("c2", 1, 6, 2, map[string]model.Value{"A": "w1", "B": "iB"}))
	out["lemma1-mixed-read"] = lemma1

	// The naivefast/twopcfast/eigerps load fracture: one multi-object
	// write, a reader sees half of it.
	fractured := New(encInitials())
	fractured.Add(rec("c0", 1, 0, 4, nil, model.Write{Object: "C", Value: "w3"}, model.Write{Object: "D", Value: "w4"}))
	fractured.Add(rec("c1", 1, 1, 2, map[string]model.Value{"C": "w3", "D": "iD"}))
	out["fractured-commit"] = fractured

	// Divergent observation orders: causal, not serializable.
	diverge := New(encInitials())
	diverge.Add(rec("c0", 1, 0, 9, nil, model.Write{Object: "A", Value: "w5"}))
	diverge.Add(rec("c1", 1, 1, 9, nil, model.Write{Object: "A", Value: "w6"}))
	diverge.Add(rec("c2", 1, 2, 1, map[string]model.Value{"A": "w5"}))
	diverge.Add(rec("c3", 1, 2, 1, map[string]model.Value{"A": "w6"}))
	diverge.Add(rec("c2", 2, 4, 1, map[string]model.Value{"A": "w6"}))
	diverge.Add(rec("c3", 2, 4, 1, map[string]model.Value{"A": "w5"}))
	out["divergent-orders"] = diverge

	// Clean accepting history.
	accept := New(encInitials())
	accept.Add(rec("c0", 1, 0, 2, nil, model.Write{Object: "A", Value: "w7"}, model.Write{Object: "B", Value: "w8"}))
	accept.Add(rec("c1", 1, 3, 2, map[string]model.Value{"A": "w7", "B": "w8"}))
	accept.Add(rec("c1", 2, 6, 2, nil, model.Write{Object: "B", Value: "w9"}))
	accept.Add(rec("c2", 1, 9, 2, map[string]model.Value{"B": "w9"}))
	out["accepting"] = accept
	return out
}

// TestSeedHistoriesRoundTripAndVerdicts pins the seed corpus: every seed
// must round-trip through the encoding and carry its intended verdict.
func TestSeedHistoriesRoundTripAndVerdicts(t *testing.T) {
	wantCausal := map[string]bool{
		"lemma1-mixed-read": false,
		"fractured-commit":  false,
		"divergent-orders":  true,
		"accepting":         true,
	}
	wantSer := map[string]bool{
		"lemma1-mixed-read": false,
		"fractured-commit":  false,
		"divergent-orders":  false,
		"accepting":         true,
	}
	for name, h := range seedHistories() {
		data, err := EncodeHistory(h)
		if err != nil {
			t.Fatalf("%s does not encode: %v", name, err)
		}
		rt := DecodeHistory(data)
		if rt.String() != h.String() {
			t.Fatalf("%s round-trip mismatch:\noriginal:\n%srestored:\n%s", name, h, rt)
		}
		if got := CheckCausal(h); got.OK != wantCausal[name] {
			t.Fatalf("%s: causal OK=%v, want %v (%s)", name, got.OK, wantCausal[name], got.Reason)
		}
		if got := CheckSerializable(h); got.OK != wantSer[name] {
			t.Fatalf("%s: serializable OK=%v, want %v (%s)", name, got.OK, wantSer[name], got.Reason)
		}
	}
}

// FuzzCheck feeds mutated encoded histories to every checker level and
// cross-checks the constraint-propagation solver against the exhaustive
// oracle: identical verdicts, the strict ⇒ serializable ⇒ causal
// implication chain, valid witnesses on acceptance, and no panics on
// malformed inputs. CI runs a short -fuzztime smoke; longer local runs
// dig deeper.
func FuzzCheck(f *testing.F) {
	for _, h := range seedHistories() {
		data, err := EncodeHistory(h)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h := DecodeHistory(data)
		if h.Len() == 0 {
			return
		}
		verdicts := map[string]Verdict{}
		for _, level := range []string{"causal", "serializable", "strict-serializable"} {
			got := Check(h, level)
			want := checkExhaustive(h, level)
			if got.OK != want.OK {
				t.Fatalf("level %s: solver OK=%v (%s), exhaustive OK=%v (%s)\n%s",
					level, got.OK, got.Reason, want.OK, want.Reason, h)
			}
			if got.OK && level != "causal" {
				validateTotalWitness(t, h, got.Witness, level == "strict-serializable")
			}
			verdicts[level] = got
		}
		if verdicts["strict-serializable"].OK && !verdicts["serializable"].OK {
			t.Fatalf("strict accepted but serializable refuted\n%s", h)
		}
		if verdicts["serializable"].OK && !verdicts["causal"].OK {
			t.Fatalf("serializable accepted but causal refuted\n%s", h)
		}
		Check(h, "read-atomic") // must not panic
	})
}

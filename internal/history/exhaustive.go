// The original enumeration-based checkers, kept verbatim in spirit as the
// differential-testing oracle for the constraint-propagation solver: both
// paths must agree on every verdict for every history the exhaustive side
// can afford (≤ 62 transactions, its uint64-mask ceiling).
package history

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// maxExhaustiveTxns is the hard ceiling of the enumeration path: state
// masks are single uint64 words.
const maxExhaustiveTxns = 62

// checkExhaustive mirrors Check via the original permutation search. It
// exists for differential testing and fuzzing only; production
// certification goes through the solver.
func checkExhaustive(h *History, level string) Verdict {
	switch level {
	case "read-atomic":
		return CheckReadAtomic(h) // polynomial: one shared implementation
	case "serializable":
		return exhaustiveTotal(h, false)
	case "strict-serializable":
		return exhaustiveTotal(h, true)
	default:
		return exhaustiveCausal(h)
	}
}

// exhaustiveCausal is CheckCausal by enumeration.
func exhaustiveCausal(h *History) Verdict {
	g, masks, errv := buildMasks(h, false)
	if errv != nil {
		return *errv
	}
	if _, isDag := g.acyclic(); !isDag {
		return fail("causal relation is cyclic")
	}
	var lastWitness []model.TxnID
	for _, c := range h.Clients() {
		var checkSet uint64
		any := false
		for _, rec := range h.ByClient(c) {
			checkSet |= 1 << uint(g.index[rec.ID])
			if len(rec.Reads) > 0 {
				any = true
			}
		}
		if !any {
			continue // write-only clients are satisfied by any extension
		}
		order, found := legalFor(g, masks, checkSet)
		if !found {
			return fail("no causal serialization exists for client %s", c)
		}
		lastWitness = g.witness(order)
	}
	return ok(lastWitness)
}

// exhaustiveTotal is Check(Strict)Serializable by enumeration.
func exhaustiveTotal(h *History, realTime bool) Verdict {
	g, masks, errv := buildMasks(h, realTime)
	if errv != nil {
		return *errv
	}
	if _, isDag := g.acyclic(); !isDag {
		if realTime {
			return fail("real-time-augmented dependency relation is cyclic")
		}
		return fail("dependency relation is cyclic")
	}
	order, found := legalFor(g, masks, ^uint64(0))
	if !found {
		if realTime {
			return fail("no strict serialization exists")
		}
		return fail("no serialization exists")
	}
	return ok(g.witness(order))
}

// buildMasks builds the shared graph and converts its predecessor bitsets
// to the uint64 masks the enumeration operates on.
func buildMasks(h *History, realTime bool) (*graph, []uint64, *Verdict) {
	if n := h.Len(); n > maxExhaustiveTxns {
		v := fail("history too large for exhaustive checking: %d > %d transactions", n, maxExhaustiveTxns)
		return nil, nil, &v
	}
	g, errv := build(h, realTime)
	if errv != nil {
		return nil, nil, errv
	}
	masks := make([]uint64, len(g.txns))
	for i := range g.txns {
		g.preds[i].forEach(func(j int) { masks[i] |= 1 << uint(j) })
	}
	return g, masks, nil
}

// legalFor searches for a linear extension of the mask graph in which
// every transaction in checkSet (bitmask) is legal: each of its reads
// returns the value of the last preceding write to that object, or the
// initial value when no write precedes it. Returns the witness order on
// success.
func legalFor(g *graph, preds []uint64, checkSet uint64) ([]int, bool) {
	n := len(g.txns)
	failed := make(map[string]bool)

	lastWrite := make(map[string]model.Value)
	fingerprint := func(mask uint64) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%x|", mask)
		objs := make([]string, 0, len(lastWrite))
		for o := range lastWrite {
			objs = append(objs, o)
		}
		sort.Strings(objs)
		for _, o := range objs {
			b.WriteString(o)
			b.WriteByte('=')
			b.WriteString(string(lastWrite[o]))
			b.WriteByte(';')
		}
		return b.String()
	}

	order := make([]int, 0, n)
	var search func(mask uint64) bool
	search = func(mask uint64) bool {
		if mask == (uint64(1)<<uint(n))-1 {
			return true
		}
		fp := fingerprint(mask)
		if failed[fp] {
			return false
		}
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if mask&bit != 0 || preds[i]&^mask != 0 {
				continue
			}
			t := g.txns[i]
			if checkSet&bit != 0 && !legalHere(g, t, lastWrite) {
				continue
			}
			// Place i.
			saved := make(map[string]model.Value, len(g.writes[i]))
			for obj, val := range g.writes[i] {
				if prev, okPrev := lastWrite[obj]; okPrev {
					saved[obj] = prev
				} else {
					saved[obj] = "\x00absent"
				}
				lastWrite[obj] = val
			}
			order = append(order, i)
			if search(mask | bit) {
				return true
			}
			order = order[:len(order)-1]
			for obj, prev := range saved {
				if prev == "\x00absent" {
					delete(lastWrite, obj)
				} else {
					lastWrite[obj] = prev
				}
			}
		}
		failed[fp] = true
		return false
	}
	if !search(0) {
		return nil, false
	}
	return order, true
}

// legalHere reports whether t's reads are legal given the current
// last-write map (initial values when absent).
func legalHere(g *graph, t *TxnRecord, lastWrite map[string]model.Value) bool {
	for obj, val := range t.Reads {
		want, written := lastWrite[obj]
		if !written {
			want = g.h.Initial(obj)
		}
		if val != want {
			return false
		}
	}
	return true
}

package history

import (
	"fmt"

	"repro/internal/model"
)

// Synthetic history generators for checker scaling tests and benchmarks:
// deterministic concurrent histories of arbitrary size whose verdict at
// each level is known by construction, so certification cost can be
// measured for both the accepting and the refuting direction without a
// protocol run in the loop.

// genRNG is a tiny deterministic LCG (the same recurrence the existing
// tests use) so generated histories are identical across platforms.
type genRNG int64

func (r *genRNG) next(n int) int {
	*r = *r*6364136223846793005 + 1442695040888963407
	v := int((int64(*r) >> 33) % int64(n))
	if v < 0 {
		v = -v
	}
	return v
}

// GenSerializable builds an n-transaction concurrent history that is
// strict-serializable (hence serializable and causal) by construction: it
// executes randomly generated read/write transactions against one logical
// store in a serial order, but overlaps the invocation windows so the
// real-time order is a sparse suborder and the checker has genuine search
// to do. clients transactions interleave round-robin across that many
// program orders.
func GenSerializable(seed int64, n, clients int) *History {
	if clients <= 0 {
		clients = 8
	}
	rng := genRNG(seed)
	objects := []string{"X", "Y", "Z", "W"}
	state := map[string]model.Value{}
	initial := map[string]model.Value{}
	for _, o := range objects {
		initial[o] = model.Value("i-" + o)
		state[o] = initial[o]
	}
	h := New(initial)
	seqs := make(map[string]int)
	for i := 0; i < n; i++ {
		c := fmt.Sprintf("c%d", i%clients)
		seqs[c]++
		// Overlapping windows: invocation order follows the serial order,
		// completion lags by a pseudo-random spread, so transactions up to
		// ~8 apart are concurrent in real time.
		inv := int64(i * 10)
		rec := &TxnRecord{
			ID: model.TxnID{Client: c, Seq: seqs[c]}, Client: c,
			Invoked: inv, Completed: inv + int64(5+rng.next(80)),
		}
		if rng.next(2) == 0 { // read-only over 1-2 objects
			rec.Reads = map[string]model.Value{}
			first := rng.next(len(objects))
			for k := 0; k <= rng.next(2); k++ {
				o := objects[(first+k)%len(objects)]
				rec.Reads[o] = state[o]
			}
		} else { // write-only over 1-2 objects
			first := rng.next(len(objects))
			for k := 0; k <= rng.next(2); k++ {
				o := objects[(first+k)%len(objects)]
				val := model.Value(fmt.Sprintf("v%d-%s", i, o))
				rec.Writes = append(rec.Writes, model.Write{Object: o, Value: val})
				state[o] = val
			}
		}
		h.Add(rec)
	}
	return h
}

// GenCausalOnly builds an n-transaction history that is causally
// consistent but NOT serializable: it embeds divergent observation groups
// (two concurrent writers; two readers observing them in opposite orders)
// among serializable filler. Checking it at "serializable" exercises the
// refuting direction through real branching — every group's two writer
// orders must both be explored and refuted.
func GenCausalOnly(seed int64, n int) *History {
	h := New(map[string]model.Value{})
	groups := n / 6 // each divergent group is 6 transactions
	if groups < 1 {
		groups = 1
	}
	cnt := 0
	for grp := 0; grp < groups && cnt+6 <= n; grp++ {
		obj := fmt.Sprintf("G%d", grp)
		a := model.Value(fmt.Sprintf("a%d", grp))
		b := model.Value(fmt.Sprintf("b%d", grp))
		add := func(client string, seq int, reads map[string]model.Value, writes ...model.Write) {
			inv := int64(cnt * 10)
			h.Add(&TxnRecord{
				ID: model.TxnID{Client: client, Seq: seq}, Client: client,
				Reads: reads, Writes: writes,
				Invoked: inv, Completed: inv + 1000, // all overlap within a group
			})
			cnt++
		}
		add(fmt.Sprintf("w%d-1", grp), 1, nil, model.Write{Object: obj, Value: a})
		add(fmt.Sprintf("w%d-2", grp), 1, nil, model.Write{Object: obj, Value: b})
		add(fmt.Sprintf("r%d-1", grp), 1, map[string]model.Value{obj: a})
		add(fmt.Sprintf("r%d-1", grp), 2, map[string]model.Value{obj: b})
		add(fmt.Sprintf("r%d-2", grp), 1, map[string]model.Value{obj: b})
		add(fmt.Sprintf("r%d-2", grp), 2, map[string]model.Value{obj: a})
	}
	// Serializable filler on disjoint objects up to n transactions.
	filler := GenSerializable(seed, n-cnt, 4)
	for _, rec := range filler.Records() {
		rec.Invoked += int64(cnt) * 10
		rec.Completed += int64(cnt) * 10
		h.Add(rec)
	}
	for _, o := range []string{"X", "Y", "Z", "W"} {
		h.initial[o] = model.Value("i-" + o)
	}
	return h
}

// GenViolating builds an n-transaction history that is NOT causally
// consistent (and so refutes every level): serializable filler with the
// paper's Lemma 1 mixed-read counterexample embedded — a reader observes
// the new value of one object and the initial value of its sibling after
// the writer's own read causally ordered the initials first. Refuting it
// is the checker's hard direction: NO serialization may exist.
func GenViolating(seed int64, n int) *History {
	h := GenSerializable(seed, n-5, 8)
	h.initial["P0"] = "pin0"
	h.initial["P1"] = "pin1"
	base := int64((n - 5) * 10)
	add := func(client string, seq int, reads map[string]model.Value, writes ...model.Write) {
		h.Add(&TxnRecord{
			ID: model.TxnID{Client: client, Seq: seq}, Client: client,
			Reads: reads, Writes: writes,
			Invoked: base, Completed: base + 1000,
		})
	}
	add("vin0", 1, nil, model.Write{Object: "P0", Value: "p0-new-in"})
	add("vw", 1, map[string]model.Value{"P0": "p0-new-in", "P1": "pin1"})
	add("vw", 2, nil, model.Write{Object: "P0", Value: "p0-new"}, model.Write{Object: "P1", Value: "p1-new"})
	// Mixed read: new P0, initial P1 — impossible under causality.
	add("vr", 1, map[string]model.Value{"P0": "p0-new", "P1": "pin1"})
	add("vr", 2, map[string]model.Value{"P0": "p0-new"})
	return h
}

// Package history implements the formal history model of the paper
// (Section 2) and executable consistency checkers: causal consistency
// exactly as in Definition 1, plus serializability, strict serializability
// and read atomicity for characterizing the stronger/weaker systems of
// Table 1.
//
// The checkers assume the paper's "all written values are distinct"
// simplification, which the workloads enforce by construction; under it the
// reads-from relation is uniquely determined and Definition 1 reduces to:
// the causal relation (transitive closure of program orders and reads-from)
// is acyclic, and for every client c there is a linear extension of it in
// which every transaction of c is legal.
//
// Three checking engines implement that search, all bounded by the
// shared ceiling MaxTxns. The production path is the incremental Session
// (session.go): it carries the transitively closed partial order and the
// anti-dependency clause set across commits, so a load run is certified
// as it executes (Check is a thin batch wrapper over a one-shot session)
// and a violation is pinned to its first offending commit with the
// minimal witness prefix. The one-shot constraint-propagation solver
// over ordering literals (solver.go, entry CheckBatch) re-solves a
// complete history from scratch and serves as the session's differential
// oracle and cost baseline; the original exhaustive enumeration survives
// as the oracle of last resort (exhaustive.go, ≤ 62 transactions).
package history

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// TxnRecord is one transaction as observed at its client: the values its
// reads returned and the writes it issued.
type TxnRecord struct {
	ID     model.TxnID
	Client string
	Reads  map[string]model.Value
	Writes []model.Write
	// Invoked and Completed are virtual times; Completed < 0 marks a
	// transaction that never completed (it is still included, matching
	// the paper's comm(H) completion of pending writes).
	Invoked, Completed int64
}

// IsReadOnly reports whether the record performed no writes.
func (r *TxnRecord) IsReadOnly() bool { return len(r.Writes) == 0 }

func (r *TxnRecord) String() string {
	s := r.ID.String() + "{"
	objs := make([]string, 0, len(r.Reads))
	for o := range r.Reads {
		objs = append(objs, o)
	}
	sort.Strings(objs)
	for i, o := range objs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("r(%s)%s", o, r.Reads[o])
	}
	for i, w := range r.Writes {
		if i > 0 || len(objs) > 0 {
			s += " "
		}
		s += w.String()
	}
	return s + "}"
}

// History is a multi-client history. Records are appended in per-client
// program order (the order the client invoked them).
type History struct {
	records []*TxnRecord
	byCli   map[string][]*TxnRecord
	initial map[string]model.Value
}

// New creates a history. initial gives the initial value per object
// (model.Bottom assumed for objects not listed).
func New(initial map[string]model.Value) *History {
	h := &History{byCli: make(map[string][]*TxnRecord), initial: make(map[string]model.Value)}
	for k, v := range initial {
		h.initial[k] = v
	}
	return h
}

// Add appends a record; calls for the same client must be in program order.
func (h *History) Add(rec *TxnRecord) {
	h.records = append(h.records, rec)
	h.byCli[rec.Client] = append(h.byCli[rec.Client], rec)
}

// NewRecord converts a protocol result into a transaction record, ready
// for History.Add or Session.Append.
func NewRecord(res *model.Result) *TxnRecord {
	rec := &TxnRecord{
		ID:        res.Txn.ID,
		Client:    res.Txn.ID.Client,
		Reads:     make(map[string]model.Value, len(res.Txn.ReadSet)),
		Writes:    append([]model.Write(nil), res.Txn.Writes...),
		Invoked:   res.Invoked,
		Completed: res.Completed,
	}
	for _, obj := range res.Txn.ReadSet {
		rec.Reads[obj] = res.Value(obj)
	}
	return rec
}

// AddResult converts a protocol result into a record and appends it.
func (h *History) AddResult(res *model.Result) {
	h.Add(NewRecord(res))
}

// Prefix returns a new history over the first n records (in insertion
// order) sharing the receiver's initial values. The records themselves
// are shared, not copied. It panics if n exceeds Len.
func (h *History) Prefix(n int) *History {
	out := New(h.initial)
	for _, rec := range h.records[:n] {
		out.Add(rec)
	}
	return out
}

// Len returns the number of records.
func (h *History) Len() int { return len(h.records) }

// Records returns all records in insertion order.
func (h *History) Records() []*TxnRecord { return h.records }

// Clients returns the client names, sorted.
func (h *History) Clients() []string {
	out := make([]string, 0, len(h.byCli))
	for c := range h.byCli {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ByClient returns client c's records in program order.
func (h *History) ByClient(c string) []*TxnRecord { return h.byCli[c] }

// Initial returns the initial value of obj.
func (h *History) Initial(obj string) model.Value { return h.initial[obj] }

// Initials returns a copy of the initial-value map, e.g. for seeding a
// Session over this history's records.
func (h *History) Initials() map[string]model.Value {
	out := make(map[string]model.Value, len(h.initial))
	for k, v := range h.initial {
		out[k] = v
	}
	return out
}

func (h *History) String() string {
	s := ""
	for _, c := range h.Clients() {
		s += c + ": "
		for i, r := range h.byCli[c] {
			if i > 0 {
				s += " ; "
			}
			s += r.String()
		}
		s += "\n"
	}
	return s
}

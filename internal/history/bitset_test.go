package history

import "testing"

// TestBitsetCrosses64 pins the regression the type exists to fix: indices
// past 63 must land in later words, not silently wrap into the first.
func TestBitsetCrosses64(t *testing.T) {
	b := newBitset(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.has(i) {
			t.Fatalf("fresh bitset has %d", i)
		}
		b.set(i)
		if !b.has(i) {
			t.Fatalf("set(%d) not visible", i)
		}
	}
	// Index 64 must not alias index 0.
	b2 := newBitset(200)
	b2.set(64)
	if b2.has(0) {
		t.Fatal("set(64) aliased bit 0: the uint64 overflow bug")
	}
	if b2.count() != 1 {
		t.Fatalf("count = %d, want 1", b2.count())
	}
}

func TestBitsetCount(t *testing.T) {
	b := newBitset(130)
	want := 0
	for i := 0; i < 130; i += 3 {
		b.set(i)
		want++
	}
	if b.count() != want {
		t.Fatalf("count = %d, want %d", b.count(), want)
	}
	b.set(0) // re-setting must not double-count
	if b.count() != want {
		t.Fatalf("count after re-set = %d, want %d", b.count(), want)
	}
}

func TestBitsetOrForEachOrder(t *testing.T) {
	a, b := newBitset(128), newBitset(128)
	a.set(3)
	a.set(70)
	b.set(70)
	b.set(127)
	a.or(b)
	var got []int
	a.forEach(func(i int) { got = append(got, i) })
	want := []int{3, 70, 127}
	if len(got) != len(want) {
		t.Fatalf("forEach yielded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forEach yielded %v, want ascending %v", got, want)
		}
	}
}

func TestBitsetCloneIndependence(t *testing.T) {
	a := newBitset(96)
	a.set(95)
	c := a.clone()
	if !c.has(95) || c.count() != 1 {
		t.Fatal("clone not equal to source")
	}
	c.set(1)
	if a.has(1) {
		t.Fatal("clone shares storage with source")
	}
	a.copyFrom(c)
	if !a.has(1) || a.count() != c.count() {
		t.Fatal("copyFrom did not synchronize")
	}
}

func TestBitsetContainsAll(t *testing.T) {
	a, b := newBitset(130), newBitset(130)
	a.set(5)
	a.set(129)
	b.set(129)
	if !a.containsAll(b) {
		t.Fatal("superset not recognized")
	}
	if !a.containsAll(newBitset(130)) {
		t.Fatal("empty set not contained")
	}
	b.set(64)
	if a.containsAll(b) {
		t.Fatal("missing element 64 not detected")
	}
}

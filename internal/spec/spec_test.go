package spec

import (
	"testing"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/protocols/naivefast"
)

func TestMeasureNaivefastROT(t *testing.T) {
	d := protocol.Deploy(naivefast.New(), protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 1})
	if err := d.InitAll(100_000); err != nil {
		t.Fatal(err)
	}
	from := d.Kernel.Trace().Len()
	res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 100_000)
	if !res.OK() {
		t.Fatal("ROT failed")
	}
	m := MeasureResult(d, from, res)
	if !m.FastROT() {
		t.Fatalf("naivefast ROT not measured as fast: %s", m)
	}
	if m.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", m.Rounds)
	}
	if m.MaxValuesPerObject != 1 {
		t.Fatalf("values per object = %d, want 1", m.MaxValuesPerObject)
	}
	if m.Deferred {
		t.Fatal("naivefast measured as blocking")
	}
}

func TestMeasureWriteTxnRoundsCounted(t *testing.T) {
	d := protocol.Deploy(naivefast.New(), protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 1})
	if err := d.InitAll(100_000); err != nil {
		t.Fatal(err)
	}
	from := d.Kernel.Trace().Len()
	res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "a"}, model.Write{Object: "X1", Value: "b"}), 100_000)
	m := MeasureResult(d, from, res)
	if m.Rounds != 1 || !m.Completed {
		t.Fatalf("write measurement = %s", m)
	}
}

func TestBuildProfileNaivefast(t *testing.T) {
	prof, err := BuildProfile(naivefast.New(), protocol.Config{
		Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 7,
	}, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !prof.FastROT() {
		t.Fatalf("naivefast profile not fast: %+v", prof)
	}
	if !prof.MultiWrite {
		t.Fatal("naivefast multi-write not detected")
	}
	if prof.Trials != 3 {
		t.Fatalf("trials = %d", prof.Trials)
	}
	// The claims say causal; randomized trials may or may not catch the
	// violation (the adversary package catches it deterministically), so
	// no assertion on CausalOK here — only that the measurement ran.
	if prof.ROTRounds != 1 || prof.ValuesPerObject != 1 {
		t.Fatalf("profile = %+v", prof)
	}
}

func TestMeasureEmptyWindow(t *testing.T) {
	d := protocol.Deploy(naivefast.New(), protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 1, Seed: 1})
	m := Measure(d.Kernel, 0, 0, model.TxnID{Client: "c0", Seq: 1}, "c0", d.Place)
	if m.Rounds != 0 || m.Deferred {
		t.Fatalf("empty window measurement = %s", m)
	}
}

// Package spec measures the fast-read-only-transaction sub-properties of
// Definition 4 from execution traces, rather than trusting a protocol's
// claims: rounds per read-only transaction, written values per
// server→client message (per object), and whether servers answer read
// requests in the computation step that receives them (non-blocking /
// one-roundtrip). Table 1 of the paper is regenerated from these
// measurements plus consistency checks on recorded histories.
package spec

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// Measurement is what a single transaction's trace shows.
type Measurement struct {
	Txn       model.TxnID
	Completed bool
	// Rounds counts the client steps that sent at least one request
	// (read or write) belonging to the transaction: a one-round
	// transaction has Rounds == 1.
	Rounds int
	// MaxValuesPerObject is the largest number of written values for a
	// single object carried by any single server→client response.
	// Definition 4 requires ≤ 1.
	MaxValuesPerObject int
	// MaxValuesPerMsg is the largest total number of written values in
	// any single server→client response (informational; the fat-metadata
	// design of §3.4 inflates this, not MaxValuesPerObject).
	MaxValuesPerMsg int
	// ForeignValues reports that some response carried a value for an
	// object the sending server does not store — forbidden by the
	// general one-value property (Definition 5, 2a); the fat-metadata
	// design violates exactly this.
	ForeignValues bool
	// Deferred reports that some server answered a read request in a
	// later computation step than the one receiving it (blocking), or
	// never answered although the transaction completed via other means.
	Deferred bool
	// ServerSteps is the largest number of computation steps any single
	// server spent between receiving this transaction's first request
	// and sending its (final) response to the client.
	ServerSteps int
}

// FastROT reports whether the measured transaction was fast per
// Definition 4.
func (m Measurement) FastROT() bool {
	return m.Completed && m.Rounds <= 1 && m.MaxValuesPerObject <= 1 &&
		!m.ForeignValues && !m.Deferred
}

func (m Measurement) String() string {
	return fmt.Sprintf("txn=%s rounds=%d vals/obj=%d vals/msg=%d deferred=%v done=%v",
		m.Txn, m.Rounds, m.MaxValuesPerObject, m.MaxValuesPerMsg, m.Deferred, m.Completed)
}

// Measure analyzes the trace window [from, to) of the kernel for the given
// transaction. clientID is the invoking client; pl gives the server set
// and object placement (for foreign-value detection).
func Measure(k *sim.Kernel, from, to int, tid model.TxnID, clientID sim.ProcessID, pl *protocol.Placement) Measurement {
	srv := make(map[sim.ProcessID]bool)
	for _, s := range pl.Servers() {
		srv[s] = true
	}
	m := Measurement{Txn: tid}

	// pendingReq[s] counts requests of this txn consumed by server s that
	// have not yet been answered; stepsSince[s] counts the server's steps
	// since the first unanswered request arrived.
	pendingReq := make(map[sim.ProcessID]int)
	stepsSince := make(map[sim.ProcessID]int)

	events := k.Trace().Events
	if to > len(events) {
		to = len(events)
	}
	if from < 0 {
		from = 0
	}
	for _, ev := range events[from:to] {
		switch {
		case ev.Kind == sim.EvResponse && ev.Proc == clientID:
			// completion annotation handled by caller; ignore
		case ev.Kind != sim.EvStep:
			continue
		}
		if ev.Kind != sim.EvStep {
			continue
		}
		if ev.Proc == clientID {
			sentReq := false
			for _, ref := range ev.Sent {
				p, ok := k.PayloadOf(ref.ID).(protocol.TxnPayload)
				if !ok || p.Txn() != tid {
					continue
				}
				if r := p.PayloadRole(); r == protocol.RoleReadReq || r == protocol.RoleWriteReq {
					if srv[ref.Link.To] {
						sentReq = true
					}
				}
			}
			if sentReq {
				m.Rounds++
			}
			continue
		}
		if !srv[ev.Proc] {
			continue
		}
		// Server step: count consumed requests and sent responses of tid.
		consumedReq, sentResp := 0, 0
		for _, ref := range ev.Consumed {
			p, ok := k.PayloadOf(ref.ID).(protocol.TxnPayload)
			if ok && p.Txn() == tid && ref.Link.From == clientID {
				if r := p.PayloadRole(); r == protocol.RoleReadReq || r == protocol.RoleWriteReq {
					consumedReq++
				}
			}
		}
		for _, ref := range ev.Sent {
			p, ok := k.PayloadOf(ref.ID).(protocol.TxnPayload)
			if !ok || p.Txn() != tid || ref.Link.To != clientID {
				continue
			}
			role := p.PayloadRole()
			if role != protocol.RoleReadResp && role != protocol.RoleWriteResp {
				continue
			}
			sentResp++
			if vc, carries := p.(protocol.ValueCarrier); carries {
				perObj := make(map[string]int)
				total := 0
				for _, vr := range vc.CarriedValues() {
					if vr.Value == model.Bottom {
						continue // ⊥ placeholders are not written values
					}
					if !pl.Hosts(ev.Proc, vr.Object) {
						m.ForeignValues = true
					}
					perObj[vr.Object]++
					total++
				}
				for _, n := range perObj {
					if n > m.MaxValuesPerObject {
						m.MaxValuesPerObject = n
					}
				}
				if total > m.MaxValuesPerMsg {
					m.MaxValuesPerMsg = total
				}
			}
		}
		// Blocking bookkeeping.
		if pendingReq[ev.Proc] > 0 {
			stepsSince[ev.Proc]++
			if stepsSince[ev.Proc] > m.ServerSteps {
				m.ServerSteps = stepsSince[ev.Proc]
			}
		}
		if sentResp > 0 && consumedReq == 0 && pendingReq[ev.Proc] > 0 {
			// Answered in a later step than the request arrived: blocking.
			m.Deferred = true
		}
		pendingReq[ev.Proc] += consumedReq - sentResp
		if pendingReq[ev.Proc] < 0 {
			pendingReq[ev.Proc] = 0
		}
		if pendingReq[ev.Proc] == 0 {
			stepsSince[ev.Proc] = 0
		}
	}
	for _, n := range pendingReq {
		if n > 0 {
			// A request was never answered in the window; if the txn
			// completed anyway the protocol used other traffic, which is
			// fine, but an unanswered read with an incomplete txn is a
			// block.
			m.Deferred = true
		}
	}
	return m
}

// MeasureResult is a convenience wrapper: measure the transaction a
// Deployment.RunTxn executed, given the trace position before invocation.
func MeasureResult(d *protocol.Deployment, from int, res *model.Result) Measurement {
	if res == nil {
		return Measurement{}
	}
	m := Measure(d.Kernel, from, d.Kernel.Trace().Len(), res.Txn.ID,
		sim.ProcessID(res.Txn.ID.Client), d.Place)
	m.Completed = res.OK()
	return m
}

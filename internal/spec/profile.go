package spec

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// Profile is a measured Table-1 row for one protocol.
type Profile struct {
	Protocol string
	Claims   protocol.Claims

	// Measured read-only transaction properties (max over trials).
	ROTRounds       int
	ValuesPerObject int
	ValuesPerMsg    int
	ForeignValues   bool
	NonBlocking     bool
	// MultiWrite reports whether a multi-object write transaction was
	// accepted and completed.
	MultiWrite bool
	// Consistency verdicts over the randomized concurrent workloads.
	CausalOK     bool
	CausalReason string
	SerOK        bool
	StrictOK     bool
	ReadAtomicOK bool
	// Trials is the number of randomized workload trials run.
	Trials int
}

// FastROT reports whether the measured profile satisfies Definition 4.
func (p Profile) FastROT() bool {
	return p.ROTRounds <= 1 && p.ValuesPerObject <= 1 && !p.ForeignValues && p.NonBlocking
}

func (p Profile) String() string {
	return fmt.Sprintf("%-12s R=%d V=%d N=%v W=%v causal=%v",
		p.Protocol, p.ROTRounds, p.ValuesPerObject, p.NonBlocking, p.MultiWrite, p.CausalOK)
}

// invocation pairs a client with a transaction for a concurrent phase.
type invocation struct {
	client sim.ProcessID
	txn    *model.Txn
}

// runPhase invokes all transactions concurrently and drives the system
// with sched until every involved client is idle (or the budget runs out).
// Completed results are appended to the history.
func runPhase(d *protocol.Deployment, sched sim.Scheduler, h *history.History, invs []invocation, budget int) {
	ids := make([]model.TxnID, len(invs))
	for i, inv := range invs {
		ids[i] = d.Invoke(inv.client, inv.txn)
	}
	sim.Run(d.Kernel, sched, func(*sim.Kernel) bool {
		for _, inv := range invs {
			if d.Client(inv.client).Busy() {
				return false
			}
		}
		return true
	}, budget)
	for i, inv := range invs {
		res := d.Client(inv.client).Results()[ids[i]]
		if res.OK() && h != nil {
			h.AddResult(res)
		}
	}
}

// BuildProfile measures a protocol: deploys it, measures ROT properties on
// a settled store, tests multi-object write support, and checks
// consistency of randomized concurrent workloads (one per seed).
func BuildProfile(p protocol.Protocol, cfg protocol.Config, seeds []int64) (Profile, error) {
	prof := Profile{Protocol: p.Name(), Claims: p.Claims(), NonBlocking: true,
		CausalOK: true, SerOK: true, StrictOK: true, ReadAtomicOK: true}

	// --- property measurement on a fresh deployment ---
	d := protocol.Deploy(p, cfg)
	if err := d.InitAll(200_000); err != nil {
		return prof, err
	}
	objs := d.Place.Objects()
	if len(objs) < 2 {
		return prof, fmt.Errorf("spec: need at least 2 objects, have %d", len(objs))
	}
	x0, x1 := objs[0], objs[1]

	// Multi-object write support.
	wres := d.RunTxn(d.Clients[0], model.NewWriteOnly(model.TxnID{},
		model.Write{Object: x0, Value: "prof-w0"}, model.Write{Object: x1, Value: "prof-w1"}), 200_000)
	prof.MultiWrite = wres.OK()
	if !prof.MultiWrite {
		// Write the objects individually so reads have fresh data.
		r1 := d.RunTxn(d.Clients[0], model.NewWriteOnly(model.TxnID{}, model.Write{Object: x0, Value: "prof-s0"}), 200_000)
		r2 := d.RunTxn(d.Clients[0], model.NewWriteOnly(model.TxnID{}, model.Write{Object: x1, Value: "prof-s1"}), 200_000)
		if !r1.OK() || !r2.OK() {
			return prof, fmt.Errorf("spec: single writes failed under %s", p.Name())
		}
	}
	d.Settle(200_000)

	// Read-only transaction measurement: several ROTs from a different
	// client, over fair and random schedules.
	scheds := []sim.Scheduler{&sim.RoundRobin{}, sim.NewRandom(cfg.Seed + 101), sim.NewRandom(cfg.Seed + 202)}
	for _, sched := range scheds {
		from := d.Kernel.Trace().Len()
		res := d.RunTxnWith(d.Clients[1], model.NewReadOnly(model.TxnID{}, x0, x1), sched, 200_000)
		if res == nil || !res.OK() {
			return prof, fmt.Errorf("spec: ROT did not complete under %s", p.Name())
		}
		m := MeasureResult(d, from, res)
		if m.Rounds > prof.ROTRounds {
			prof.ROTRounds = m.Rounds
		}
		if m.MaxValuesPerObject > prof.ValuesPerObject {
			prof.ValuesPerObject = m.MaxValuesPerObject
		}
		if m.MaxValuesPerMsg > prof.ValuesPerMsg {
			prof.ValuesPerMsg = m.MaxValuesPerMsg
		}
		if m.ForeignValues {
			prof.ForeignValues = true
		}
		if m.Deferred {
			prof.NonBlocking = false
		}
		d.Settle(200_000)
	}

	// --- randomized concurrent workloads for consistency checking ---
	for _, seed := range seeds {
		prof.Trials++
		wd := protocol.Deploy(p, protocol.Config{
			Servers: cfg.Servers, ObjectsPerServer: cfg.ObjectsPerServer,
			Replication: cfg.Replication, Clients: 2, Seed: seed, Latency: cfg.Latency,
		})
		if err := wd.InitAll(200_000); err != nil {
			return prof, err
		}
		// The init transactions are recorded in the history, so their
		// values must NOT double as declared initials (a written value
		// colliding with an initial value is ambiguous for the checker):
		// reads of the init values get reads-from edges to the recorded
		// init transactions instead, which carries the same causality.
		// The declared initials are sentinels nothing ever writes or
		// returns — in particular NOT model.Bottom, so a read that came
		// back empty (a lost-write bug) is still refuted as dangling
		// rather than aliasing the initial value.
		sentinels := make(map[string]model.Value)
		for _, obj := range wd.Place.Objects() {
			sentinels[obj] = model.Value("pre_" + obj)
		}
		h := history.New(sentinels)
		// Record the init transactions so causality through them counts.
		for i, obj := range wd.Place.Objects() {
			h.Add(&history.TxnRecord{
				ID:     model.TxnID{Client: string(wd.Inits[i]), Seq: 1},
				Client: string(wd.Inits[i]),
				Writes: []model.Write{{Object: obj, Value: protocol.InitialValue(obj)}},
			})
		}
		sched := sim.NewRandom(seed * 13)
		c0, c1 := wd.Clients[0], wd.Clients[1]
		ox0, ox1 := wd.Place.Objects()[0], wd.Place.Objects()[1]

		mkWrite := func(tag string) *model.Txn {
			if prof.MultiWrite {
				return model.NewWriteOnly(model.TxnID{},
					model.Write{Object: ox0, Value: model.Value(tag + "-0")},
					model.Write{Object: ox1, Value: model.Value(tag + "-1")})
			}
			return model.NewWriteOnly(model.TxnID{}, model.Write{Object: ox0, Value: model.Value(tag + "-0")})
		}
		runPhase(wd, sched, h, []invocation{
			{c0, model.NewReadOnly(model.TxnID{}, ox0, ox1)},
			{c1, mkWrite(fmt.Sprintf("s%d-a", seed))},
		}, 200_000)
		runPhase(wd, sched, h, []invocation{
			{c0, mkWrite(fmt.Sprintf("s%d-b", seed))},
			{c1, model.NewReadOnly(model.TxnID{}, ox0, ox1)},
		}, 200_000)
		runPhase(wd, sched, h, []invocation{
			{c0, model.NewReadOnly(model.TxnID{}, ox0, ox1)},
			{c1, model.NewReadOnly(model.TxnID{}, ox1)},
		}, 200_000)

		if v := history.CheckCausal(h); !v.OK {
			prof.CausalOK = false
			if prof.CausalReason == "" {
				prof.CausalReason = fmt.Sprintf("seed %d: %s", seed, v.Reason)
			}
		}
		if v := history.CheckSerializable(h); !v.OK {
			prof.SerOK = false
		}
		if v := history.CheckStrictSerializable(h); !v.OK {
			prof.StrictOK = false
		}
		if v := history.CheckReadAtomic(h); !v.OK {
			prof.ReadAtomicOK = false
		}
	}
	return prof, nil
}

package workload

import (
	"testing"
	"testing/quick"
)

var objs = []string{"X0", "X1", "X2", "X3"}

func TestGeneratorMixFractions(t *testing.T) {
	g := NewGenerator(Mix{ReadFraction: 0.8, ReadWidth: 2, WriteWidth: 2, ZipfS: 0.9}, objs, 42)
	reads, writes := 0, 0
	for i := 0; i < 1000; i++ {
		txn := g.Next("c0")
		if txn.IsReadOnly() {
			reads++
			if len(txn.ReadSet) != 2 {
				t.Fatalf("read width = %d", len(txn.ReadSet))
			}
		} else {
			writes++
			if len(txn.WriteSet()) != 2 {
				t.Fatalf("write width = %d", len(txn.WriteSet()))
			}
		}
	}
	frac := float64(reads) / 1000
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("read fraction = %.2f, want ≈0.8", frac)
	}
	_ = writes
}

func TestValuesAreDistinct(t *testing.T) {
	g := NewGenerator(Balanced(), objs, 7)
	seen := make(map[string]bool)
	for i := 0; i < 500; i++ {
		txn := g.Next("c1")
		for _, w := range txn.Writes {
			key := w.Object + "=" + string(w.Value)
			if seen[key] {
				t.Fatalf("duplicate value %s", key)
			}
			seen[key] = true
		}
	}
}

func TestZipfSkewPrefersLowRanks(t *testing.T) {
	g := NewGenerator(Mix{ReadFraction: 0, WriteWidth: 1, ZipfS: 1.2}, objs, 11)
	counts := make(map[string]int)
	for i := 0; i < 2000; i++ {
		txn := g.NextSingleWrite("c0")
		counts[txn.Writes[0].Object]++
	}
	if counts["X0"] <= counts["X3"] {
		t.Fatalf("zipf skew not observed: %v", counts)
	}
}

func TestUniformWhenZipfZero(t *testing.T) {
	g := NewGenerator(Mix{ReadFraction: 0, WriteWidth: 1, ZipfS: 0}, objs, 13)
	counts := make(map[string]int)
	for i := 0; i < 4000; i++ {
		counts[g.NextSingleWrite("c0").Writes[0].Object]++
	}
	for _, o := range objs {
		if counts[o] < 700 || counts[o] > 1300 {
			t.Fatalf("uniform distribution off: %v", counts)
		}
	}
}

func TestWidthsClamped(t *testing.T) {
	g := NewGenerator(Mix{ReadFraction: 1, ReadWidth: 99}, objs, 17)
	txn := g.Next("c0")
	if len(txn.ReadSet) != len(objs) {
		t.Fatalf("read width not clamped: %d", len(txn.ReadSet))
	}
}

func TestDistinctObjectsPerTxn(t *testing.T) {
	f := func(seed int64) bool {
		g := NewGenerator(Mix{ReadFraction: 0.5, ReadWidth: 3, WriteWidth: 3, ZipfS: 1.5}, objs, seed)
		for i := 0; i < 20; i++ {
			txn := g.Next("c")
			seen := map[string]bool{}
			for _, o := range txn.Objects() {
				if seen[o] {
					return false
				}
				seen[o] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Package workload generates the transaction mixes of the experiments:
// read-dominated workloads over zipfian-skewed keys (the regimes the
// paper's introduction motivates: Facebook-style read-heavy traffic),
// parameterized by read fraction and write-transaction width, with the
// distinct-value discipline the checkers require.
package workload

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/sim"
)

// Mix describes a workload.
type Mix struct {
	// ReadFraction is the fraction of read-only transactions (0..1).
	ReadFraction float64
	// ReadWidth is the number of objects per read-only transaction.
	ReadWidth int
	// WriteWidth is the number of objects per write transaction (1 for
	// single-object systems).
	WriteWidth int
	// ZipfS is the zipf skew parameter (0 = uniform).
	ZipfS float64
}

// ReadHeavy is the canonical 95/5 read-dominated mix.
func ReadHeavy() Mix { return Mix{ReadFraction: 0.95, ReadWidth: 2, WriteWidth: 2, ZipfS: 0.99} }

// Balanced is a 50/50 mix.
func Balanced() Mix { return Mix{ReadFraction: 0.5, ReadWidth: 2, WriteWidth: 2, ZipfS: 0.99} }

// Generator produces transactions for a fixed object universe.
type Generator struct {
	mix     Mix
	objects []string
	rng     *sim.RNG
	weights []float64 // zipf cumulative weights
	seq     int
}

// NewGenerator builds a generator over the given objects.
func NewGenerator(mix Mix, objects []string, seed int64) *Generator {
	if mix.ReadWidth <= 0 {
		mix.ReadWidth = 2
	}
	if mix.WriteWidth <= 0 {
		mix.WriteWidth = 1
	}
	if mix.ReadWidth > len(objects) {
		mix.ReadWidth = len(objects)
	}
	if mix.WriteWidth > len(objects) {
		mix.WriteWidth = len(objects)
	}
	g := &Generator{mix: mix, objects: objects, rng: sim.NewRNG(seed)}
	// Zipf cumulative distribution over object ranks.
	total := 0.0
	cum := make([]float64, len(objects))
	for i := range objects {
		w := 1.0
		if mix.ZipfS > 0 {
			w = 1.0 / math.Pow(float64(i+1), mix.ZipfS)
		}
		total += w
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	g.weights = cum
	return g
}

// pickObject samples an object by zipf rank.
func (g *Generator) pickObject() string {
	u := g.rng.Float64()
	for i, c := range g.weights {
		if u <= c {
			return g.objects[i]
		}
	}
	return g.objects[len(g.objects)-1]
}

// pickDistinct samples n distinct objects.
func (g *Generator) pickDistinct(n int) []string {
	seen := make(map[string]bool, n)
	var out []string
	for len(out) < n {
		o := g.pickObject()
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// Next produces the next transaction for the given client tag. Values are
// globally unique by construction.
func (g *Generator) Next(client string) *model.Txn {
	g.seq++
	if g.rng.Float64() < g.mix.ReadFraction {
		return model.NewReadOnly(model.TxnID{}, g.pickDistinct(g.mix.ReadWidth)...)
	}
	objs := g.pickDistinct(g.mix.WriteWidth)
	var writes []model.Write
	for _, o := range objs {
		writes = append(writes, model.Write{
			Object: o,
			Value:  model.Value(fmt.Sprintf("v-%s-%d-%s", client, g.seq, o)),
		})
	}
	return model.NewWriteOnly(model.TxnID{}, writes...)
}

// NextSingleWrite produces a single-object write (for no-WTX systems).
func (g *Generator) NextSingleWrite(client string) *model.Txn {
	g.seq++
	o := g.pickObject()
	return model.NewWriteOnly(model.TxnID{}, model.Write{
		Object: o,
		Value:  model.Value(fmt.Sprintf("v-%s-%d-%s", client, g.seq, o)),
	})
}

// Package driver is the closed-loop concurrent load harness: it keeps N
// protocol clients saturated with transactions from a workload generator,
// records per-transaction latency, computes throughput (committed
// transactions per virtual second) and abort/incompletion rates, and can
// collect the completed operations into a history for consistency
// certification of concurrent executions.
//
// This is the execution mode the paper's motivation describes — many
// concurrent clients over a skewed read-heavy mix — as opposed to the
// one-transaction-at-a-time lockstep the proof machinery uses. Each client
// runs closed-loop: it has up to Pipeline invocations outstanding and
// submits a new transaction as soon as one completes. The run is fully
// deterministic: the same protocol, configuration and seed produce the
// same events, the same latencies and the same history.
//
// Load runs default to the kernel's load mode (tracing and payload
// retention disabled) so memory stays flat over millions of events; set
// KeepTrace to retain the full trace for debugging.
package driver

import (
	"fmt"

	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config parameterizes a load run.
type Config struct {
	// Clients is the number of concurrent closed-loop clients (default 2).
	Clients int
	// Pipeline is the maximum outstanding invocations per client
	// (default 1: classic closed loop; higher values pipeline into the
	// per-client invocation queue).
	Pipeline int
	// Txns is the total number of transactions across all clients
	// (default 100), distributed round-robin.
	Txns int
	// Mix is the workload (zero value: workload defaults).
	Mix workload.Mix
	// Seed derives the kernel RNG and all per-client generator streams.
	Seed int64
	// Servers, ObjectsPerServer, Replication and Latency size the
	// deployment (protocol.Config semantics; zero values use its
	// defaults).
	Servers          int
	ObjectsPerServer int
	Replication      int
	Latency          sim.LatencyModel
	// MaxEvents bounds kernel events for the whole run (default
	// 20_000·Txns + 200_000 — generous because blocking protocols such as
	// spanner advance their safe time by spinning 1µs steps while a read
	// is parked, which can cost thousands of events per transaction at
	// low client counts).
	MaxEvents int
	// RecordHistory collects completed transactions into Report.History
	// for consistency checking. Keep Txns small (≤ ~60) when set: the
	// exact checkers are exponential.
	RecordHistory bool
	// KeepTrace retains the full kernel trace and payload registry
	// instead of running in load mode.
	KeepTrace bool
}

func (c *Config) defaults() {
	if c.Clients <= 0 {
		c.Clients = 2
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	if c.Txns <= 0 {
		c.Txns = 100
	}
	if c.Servers <= 0 {
		c.Servers = 2
	}
	if c.ObjectsPerServer <= 0 {
		c.ObjectsPerServer = 2
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 20_000*c.Txns + 200_000
	}
}

// Report is the outcome of one load run.
type Report struct {
	Protocol string
	Clients  int
	Pipeline int

	// Issued counts invoked transactions; Committed the ones that
	// completed without error; Rejected the ones the protocol refused
	// (unsupported shapes); Incomplete the ones still unfinished when the
	// run ended (0 on a healthy run).
	Issued     int
	Committed  int
	Rejected   int
	Incomplete int

	// Events is the number of kernel events executed (excluding
	// initialization); Duration the virtual time the measured phase
	// spanned.
	Events   int
	Duration sim.Time

	// Throughput is committed transactions per virtual second.
	Throughput float64
	// AbortRate is Rejected/Issued.
	AbortRate float64

	// Latency summarizes committed-transaction latency (virtual µs),
	// split by transaction class, plus mean read-round count.
	Latency   stats.Summary
	ROT       stats.Summary
	Write     stats.Summary
	ROTRounds float64

	// History holds the completed operations when Config.RecordHistory
	// was set (nil otherwise), with the deployment's initial values, ready
	// for history.Check*.
	History *history.History
}

func (r *Report) String() string {
	return fmt.Sprintf("%-12s clients=%d committed=%d/%d thr=%.1f txn/s p50=%d p99=%d",
		r.Protocol, r.Clients, r.Committed, r.Issued, r.Throughput, r.Latency.P50, r.Latency.P99)
}

// Run deploys p and drives a closed-loop load run per cfg.
func Run(p protocol.Protocol, cfg Config) (*Report, error) {
	cfg.defaults()
	d := protocol.Deploy(p, protocol.Config{
		Servers:          cfg.Servers,
		ObjectsPerServer: cfg.ObjectsPerServer,
		Replication:      cfg.Replication,
		Clients:          cfg.Clients,
		Seed:             cfg.Seed,
		Latency:          cfg.Latency,
	})
	if !cfg.KeepTrace {
		d.Kernel.SetTraceCap(-1)
		d.Kernel.SetPayloadRetention(false)
	}
	if err := d.InitAll(400_000); err != nil {
		return nil, fmt.Errorf("driver: %s init: %w", p.Name(), err)
	}
	return RunOn(d, cfg)
}

// RunOn drives a closed-loop load run against an existing, initialized
// deployment. The deployment must have at least cfg.Clients workload
// clients.
func RunOn(d *protocol.Deployment, cfg Config) (*Report, error) {
	cfg.defaults()
	if len(d.Clients) < cfg.Clients {
		return nil, fmt.Errorf("driver: deployment has %d clients, need %d", len(d.Clients), cfg.Clients)
	}
	rep := &Report{Protocol: d.Proto.Name(), Clients: cfg.Clients, Pipeline: cfg.Pipeline}
	multiWrite := d.Proto.Claims().MultiWriteTxn
	objects := d.Place.Objects()

	// Independent deterministic generator stream per client, so the
	// workload each client submits does not depend on scheduling.
	cls := make([]protocol.Client, cfg.Clients)
	gens := make([]*workload.Generator, cfg.Clients)
	quota := make([]int, cfg.Clients)
	issued := make([]int, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		cls[i] = d.Client(d.Clients[i])
		gens[i] = workload.NewGenerator(cfg.Mix, objects, cfg.Seed*1_000_003+int64(i)*7919+11)
		quota[i] = cfg.Txns / cfg.Clients
		if i < cfg.Txns%cfg.Clients {
			quota[i]++
		}
	}

	nextTxn := func(i int) *model.Txn {
		t := gens[i].Next(string(d.Clients[i]))
		if !t.IsReadOnly() && !multiWrite {
			t = gens[i].NextSingleWrite(string(d.Clients[i]))
		}
		return t
	}
	// refill tops every client up to its pipeline depth (closed loop).
	refill := func() {
		for i, cl := range cls {
			for issued[i] < quota[i] && cl.Outstanding() < cfg.Pipeline {
				d.Invoke(d.Clients[i], nextTxn(i))
				issued[i]++
				rep.Issued++
			}
		}
	}
	// needRefill is the scheduler stop predicate: hand control back to
	// the driver the moment some client has spare pipeline capacity.
	needRefill := func() bool {
		for i, cl := range cls {
			if issued[i] < quota[i] && cl.Outstanding() < cfg.Pipeline {
				return true
			}
		}
		return false
	}

	lat := stats.NewCollector()
	rot := stats.NewCollector()
	wr := stats.NewCollector()
	rounds, nROT := 0, 0
	if cfg.RecordHistory {
		rep.History = history.New(d.Initials())
	}
	collect := func() {
		for _, cl := range cls {
			for _, res := range cl.TakeFinished() {
				if !res.OK() {
					rep.Rejected++
					continue
				}
				rep.Committed++
				l := res.Completed - res.Invoked
				lat.Add(l)
				if res.Txn.IsReadOnly() {
					rot.Add(l)
					rounds += res.Rounds
					nROT++
				} else {
					wr.Add(l)
				}
				if rep.History != nil {
					rep.History.AddResult(res)
				}
			}
		}
	}

	sched := &sim.Network{}
	start := d.Kernel.Now()
	for {
		refill()
		n := sim.Run(d.Kernel, sched, func(*sim.Kernel) bool { return needRefill() }, cfg.MaxEvents-rep.Events)
		rep.Events += n
		collect()
		if needRefill() && rep.Events < cfg.MaxEvents {
			continue // a client freed up: top it up and keep going
		}
		// Either everything is issued (n == 0 with nothing enabled means
		// the run is fully drained) or the event budget ran out.
		if n == 0 || rep.Events >= cfg.MaxEvents {
			break
		}
	}
	collect()
	rep.Duration = d.Kernel.Now() - start

	for _, cl := range cls {
		rep.Incomplete += cl.Outstanding()
	}
	rep.Latency = lat.Summarize()
	rep.ROT = rot.Summarize()
	rep.Write = wr.Summarize()
	if nROT > 0 {
		rep.ROTRounds = float64(rounds) / float64(nROT)
	}
	if rep.Duration > 0 {
		rep.Throughput = float64(rep.Committed) / (float64(rep.Duration) / 1e6)
	}
	if rep.Issued > 0 {
		rep.AbortRate = float64(rep.Rejected) / float64(rep.Issued)
	}
	return rep, nil
}

// Package driver is the concurrent load harness: it drives N protocol
// clients with transactions from a workload generator, records
// per-transaction latency, computes throughput (committed transactions
// per virtual second) and abort/incompletion rates, and can collect the
// completed operations into a history for consistency certification of
// concurrent executions.
//
// Certification can ride along with the run itself (Config.Certify):
// every committed transaction is appended to an incremental
// history.Session at the protocol's claimed consistency level as it is
// collected, so full-size load runs are certified without re-solving the
// history afterwards, and a violating run is pinned to its first
// offending commit (with the minimal witness prefix) in Report.Cert.
//
// Two load regimes are supported. Closed loop (the default) keeps every
// client saturated: up to Pipeline invocations outstanding per client, a
// new transaction submitted the moment one completes — this measures the
// saturated endpoint of the latency–throughput curve. Open loop
// (Config.Rate > 0) injects transactions at instants drawn from a
// seeded arrival process (Poisson or deterministic-rate) regardless of
// completions, assigning them round-robin to clients; queueing delay
// (scheduled arrival → first client step), service latency (first step →
// completion) and in-flight depth are tracked separately, which is what
// exhibits the whole latency–throughput curve rather than its saturated
// end. The run is fully deterministic either way: the same protocol,
// configuration and seed produce the same events, the same latencies and
// the same history.
//
// Three stepping engines drive the kernel. The default (Config.Workers
// == 0) is the serial Network scheduler. Workers ≥ 1 selects sharded
// stepping: one shard per server with clients striped across them,
// per-shard windows executed on a worker pool, and a deterministic
// merge — the run is a function of the shard partition and seed only,
// so Workers=1 reproduces any Workers=N run byte for byte (the serial
// oracle guarantee), while Workers=0 is a different, also
// deterministic, schedule. The sharded default is per-link conservative
// lookahead (sim.NewLookaheadRunner): each shard advances to its own
// null-message bound instead of a global window edge. Config.Barrier
// selects the window-synchronized barrier engine of the earlier design
// for comparison. Report.Sharding records the sharded run's shape,
// including the critical-path event count that bounds multi-core
// speedup, the null-message advances and per-shard blocked time.
//
// Closed-loop sharded runs refill clients mid-window: the runner calls
// back into the driver after every client step (from the parallel
// phase, touching only that client's generator and counters), so a
// client is topped back up the moment a transaction completes rather
// than at the next round boundary. Config.Rebalance replaces the static
// client striping with a measured one: a short probe run counts events
// per process, then clients are re-striped longest-processing-time
// first onto the least-loaded shards — a pure function of the probe's
// deterministic counts, reported in Report.Sharding.Partition.
//
// Load runs default to the kernel's load mode (tracing and payload
// retention disabled) so memory stays flat over millions of events; set
// KeepTrace to retain the full trace for debugging (serial engine only).
package driver

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config parameterizes a load run.
type Config struct {
	// Clients is the number of concurrent closed-loop clients (default 2).
	Clients int
	// Pipeline is the maximum outstanding invocations per client
	// (default 1: classic closed loop; higher values pipeline into the
	// per-client invocation queue).
	Pipeline int
	// Txns is the total number of transactions across all clients
	// (default 100), distributed round-robin.
	Txns int
	// Mix is the workload (zero value: workload defaults).
	Mix workload.Mix
	// Seed derives the kernel RNG and all per-client generator streams.
	Seed int64
	// Servers, ObjectsPerServer, Replication and Latency size the
	// deployment (protocol.Config semantics; zero values use its
	// defaults).
	Servers          int
	ObjectsPerServer int
	Replication      int
	Latency          sim.LatencyModel
	// Topology selects a geo-asymmetric deployment (protocol.Config
	// semantics: sites, intra- vs cross-site latency distributions with
	// declared per-link floors; ignored when Latency is set). Under
	// sharded stepping the client striping becomes site-aware — every
	// shard stays single-site, so cross-site shard pairs keep the wide
	// cross-site lookahead bound. Nil is the uniform deployment.
	Topology *protocol.Topology
	// MaxEvents bounds kernel events for the whole run (default
	// 20_000·Txns + 200_000 — generous because blocking protocols such as
	// spanner advance their safe time by spinning 1µs steps while a read
	// is parked, which can cost thousands of events per transaction at
	// low client counts).
	MaxEvents int
	// RecordHistory collects completed transactions into Report.History
	// for consistency checking. The BATCH checkers certify recorded
	// histories up to history.MaxTxns transactions; past that ceiling the
	// streaming ride-along session (Certify) is the only exact checker.
	RecordHistory bool
	// Certify runs ride-along certification: every committed transaction
	// is appended, as it is collected, to a streaming history.Session
	// checking the protocol's claimed consistency level, so the full run
	// is certified without re-solving the history afterwards and a
	// violation is pinned to its first offending commit while the run is
	// still in flight. Works in both load regimes, independent of
	// RecordHistory. The session retires committed prefixes of its
	// closure as the run proceeds, so certification memory follows the
	// active window, not Txns — runs far past history.MaxTxns certify
	// exactly (that constant still bounds the batch cross-checks
	// downstream consumers run on recorded histories). The verdict lands
	// in Report.Cert and the cumulative wall-clock spent inside the
	// session in Report.CertWall.
	Certify bool
	// ProbeStaleness samples visibility staleness while the run executes:
	// every probeStride-th committed write transaction is re-read through
	// a reserved frozen reader (protocol.Deployment.VisibleAll) on a
	// kernel snapshot taken at collection time, asking whether the values
	// it wrote are already — and still — the frozen-visible state. A
	// probe counts as stale when some written object returns a different
	// value (not yet replicated, or already overwritten by a concurrent
	// writer), and as incomplete when the frozen schedule cannot finish
	// the read (blocking protocols). Probes run on snapshots only, so the
	// measured run is untouched and stays deterministic; tallies land in
	// Report.Staleness.
	ProbeStaleness bool
	// KeepTrace retains the full kernel trace and payload registry
	// instead of running in load mode.
	KeepTrace bool
	// Rate > 0 switches the run to open loop: Txns transactions are
	// injected at instants drawn from an arrival process of Rate
	// transactions per virtual second (Poisson by default), round-robin
	// across the clients, regardless of completions. Pipeline is ignored:
	// arrivals queue without bound at their client.
	Rate float64
	// DeterministicArrivals selects the fixed-interval arrival process
	// instead of Poisson (open loop only).
	DeterministicArrivals bool
	// NoTimeLeap disables the Network scheduler's time-leap, restoring
	// the spin-parked-servers behaviour. Comparison/debugging only.
	NoTimeLeap bool
	// LatencyFloor declares the lower bound of a custom Latency model
	// (ignored when Latency is nil — the default model declares 500µs).
	// The sharded engine sizes its conservative time windows by it; 0 is
	// always safe but shrinks windows to 1µs.
	LatencyFloor sim.Time
	// Workers selects the stepping engine. 0 (the default) is the serial
	// Network scheduler. ≥ 1 switches to sharded stepping: the process
	// set is partitioned into one shard per server (clients striped
	// across them) and per-shard windows execute on min(Workers, active
	// shards) goroutines, under the per-link lookahead engine unless
	// Barrier is set. The schedule, history and report are a function of
	// the shard partition, engine and seed only — NEVER of Workers — so
	// Workers=1 is the serial differential oracle for any higher setting,
	// byte for byte. Sharded runs are a different (valid) member of the
	// schedule space than Workers=0: reports differ between the engines,
	// deterministically each.
	// Incompatible with KeepTrace and NoTimeLeap.
	Workers int
	// Barrier selects the window-synchronized barrier engine of the
	// original sharded design instead of per-link lookahead (Workers ≥ 1
	// only). Kept for comparison runs: the barrier pays a global round
	// every latency-floor window, which is exactly what lookahead removes.
	Barrier bool
	// Nemesis schedules deterministic fault injection — server
	// crash/restart cycles and link partitions at fixed virtual instants —
	// into the measured phase (never into initialization). The schedule is
	// a pure function of Seed and the Nemesis configuration, so faulted
	// runs keep every determinism guarantee: same engine + same worker
	// partition ⇒ byte-identical report at any Workers count. Nil runs
	// fault-free (and byte-identical to runs before the nemesis layer
	// existed).
	Nemesis *Nemesis
	// Rebalance replaces the static client→shard striping with a measured
	// one (Workers ≥ 1, driver.Run only): a short probe run on a separate
	// deployment counts events per process, then clients are assigned
	// longest-processing-time-first to the least-loaded shards. The plan
	// is a pure function of the probe's deterministic counts — worker
	// independence is unaffected — and is reported in
	// Report.Sharding.Partition with Rebalanced set.
	Rebalance bool
	// plan carries the measured shard assignment from Run's probe to
	// RunOn; nil means the static stripe.
	plan map[sim.ProcessID]int
}

func (c *Config) defaults() {
	if c.Clients <= 0 {
		c.Clients = 2
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	if c.Txns <= 0 {
		c.Txns = 100
	}
	if c.Servers <= 0 {
		c.Servers = 2
	}
	if c.ObjectsPerServer <= 0 {
		c.ObjectsPerServer = 2
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 20_000*c.Txns + 200_000
	}
}

// Report is the outcome of one load run.
type Report struct {
	Protocol string
	Clients  int
	Pipeline int

	// Issued counts invoked transactions; Committed the ones that
	// completed without error; Rejected the ones the protocol refused
	// (unsupported shapes); Incomplete the ones still unfinished when the
	// run ended (0 on a healthy run).
	Issued     int
	Committed  int
	Rejected   int
	Incomplete int

	// Events is the number of kernel events executed (excluding
	// initialization); Duration the virtual time the measured phase
	// spanned.
	Events   int
	Duration sim.Time

	// Throughput is committed transactions per virtual second.
	Throughput float64
	// AbortRate is Rejected/Issued.
	AbortRate float64

	// Latency summarizes committed-transaction latency (virtual µs),
	// split by transaction class, plus mean read-round count. In open
	// loop it is end-to-end: measured from the scheduled arrival instant,
	// so client-side queueing counts against it.
	Latency   stats.Summary
	ROT       stats.Summary
	Write     stats.Summary
	ROTRounds float64

	// Open-loop additions (populated when Config.Rate > 0).
	// OfferedRate echoes the configured arrival rate (txn per virtual
	// second); QueueDelay is scheduled arrival → the client's first step
	// of the transaction; Service is first step → completion; InFlight
	// samples the total outstanding transactions at every injection.
	OfferedRate float64
	QueueDelay  stats.Summary
	Service     stats.Summary
	InFlight    stats.Summary

	// History holds the completed operations when Config.RecordHistory
	// was set (nil otherwise), with the deployment's initial values, ready
	// for history.Check*.
	History *history.History

	// Ride-along certification outcome (populated when Config.Certify was
	// set): CertLevel is the consistency level checked (the protocol's
	// claimed level), Cert the incremental session verdict — including
	// the first offending commit index and minimal witness prefix on
	// violation, plus the Retired/PeakWindow eviction counters — and
	// CertWall the cumulative wall-clock spent inside
	// Session.Append/Finish (the one nondeterministic field of a run).
	CertLevel string
	Cert      *history.SessionVerdict
	CertWall  time.Duration

	// Staleness tallies the frozen visibility probes of the run (nil
	// unless Config.ProbeStaleness).
	Staleness *StalenessReport

	// Nemesis is the fault-injection outcome (nil on fault-free runs, so
	// existing report serializations stay byte-diffable): applied fault
	// counts, unavailability, recovery latency and the degraded-phase
	// transaction slice.
	Nemesis *NemesisReport

	// Sharding carries the deterministic shape of a sharded run
	// (Config.Workers ≥ 1): windows executed, per-round critical path and
	// shard occupancy. Nil under the serial engine.
	Sharding *sim.ShardingStats
}

// StalenessReport tallies the outcome of the frozen visibility probes a
// run samples under Config.ProbeStaleness. Probes is the number of
// committed write transactions sampled (every probeStride-th, capped at
// probeCap); Stale counts probes where some written value was not the
// frozen-visible state of its object — a staleness signal covering both
// not-yet-replicated and already-overwritten values, not a consistency
// verdict (that is what Certify is for); Incomplete counts probes the
// frozen schedule could not finish, the signature of blocking designs.
// The Faulted* fields split out the probes whose sampled transaction's
// lifetime crossed a nemesis fault window (always 0 on fault-free runs),
// the same classification FaultedCommitted uses: an active partition is
// expected to drive FaultedStale up — values commit at the writer's side
// but cannot replicate — and the ratio recovering after heal is the
// staleness signature of a partition. A crash or replacement stalls the
// transactions that need the dead server instead; they complete in a
// burst at the restart, and their probes sample the window's aftermath —
// the stable frontier still catching up — which is where replacement
// staleness shows.
type StalenessReport struct {
	Probes     int
	Stale      int
	Incomplete int

	FaultedProbes     int `json:",omitempty"`
	FaultedStale      int `json:",omitempty"`
	FaultedIncomplete int `json:",omitempty"`
}

// probeStride and probeCap bound the staleness sampling: one probe per
// probeStride committed writes, at most probeCap probes per run — each
// probe clones the kernel, so unbounded sampling would dominate long
// runs.
const (
	probeStride = 16
	probeCap    = 64
)

func (r *Report) String() string {
	return fmt.Sprintf("%-12s clients=%d committed=%d/%d thr=%.1f txn/s p50=%d p99=%d",
		r.Protocol, r.Clients, r.Committed, r.Issued, r.Throughput, r.Latency.P50, r.Latency.P99)
}

// Run deploys p and drives a load run per cfg (closed loop by default,
// open loop when cfg.Rate > 0). With cfg.Rebalance it first runs a short
// probe on a separate deployment to measure the per-process load profile
// and re-stripes the clients accordingly.
func Run(p protocol.Protocol, cfg Config) (*Report, error) {
	cfg.defaults()
	if cfg.Rebalance {
		if cfg.Workers <= 0 {
			return nil, fmt.Errorf("driver: Rebalance requires sharded stepping (Workers ≥ 1)")
		}
		plan, err := probePlan(p, cfg)
		if err != nil {
			return nil, err
		}
		cfg.plan = plan
	}
	d, err := deploy(p, cfg)
	if err != nil {
		return nil, err
	}
	return RunOn(d, cfg)
}

// deploy builds and initializes a deployment for cfg.
func deploy(p protocol.Protocol, cfg Config) (*protocol.Deployment, error) {
	d := protocol.Deploy(p, protocol.Config{
		Servers:          cfg.Servers,
		ObjectsPerServer: cfg.ObjectsPerServer,
		Replication:      cfg.Replication,
		Clients:          cfg.Clients,
		Seed:             cfg.Seed,
		Latency:          cfg.Latency,
		LatencyFloor:     cfg.LatencyFloor,
		Topology:         cfg.Topology,
	})
	if !cfg.KeepTrace {
		d.Kernel.SetTraceCap(-1)
		d.Kernel.SetPayloadRetention(false)
	}
	if err := d.InitAll(400_000); err != nil {
		return nil, fmt.Errorf("driver: %s init: %w", p.Name(), err)
	}
	return d, nil
}

// probeTxns sizes the rebalance probe: an eighth of the run, at least two
// transactions per client, capped well below any real run's cost.
func probeTxns(cfg Config) int {
	n := cfg.Txns / 8
	if min := 2 * cfg.Clients; n < min {
		n = min
	}
	if n > 1024 {
		n = 1024
	}
	if n > cfg.Txns {
		n = cfg.Txns
	}
	if n < 1 {
		n = 1
	}
	return n
}

// probePlan runs the short probe under the statically striped sharded
// engine and derives the measured assignment: servers stay pinned to
// their shard; every other process is placed longest-processing-time
// first onto the currently least-loaded shard (ties: lowest shard, then
// sorted process ID). Everything in sight is deterministic, so the plan
// is too.
func probePlan(p protocol.Protocol, cfg Config) (map[sim.ProcessID]int, error) {
	pc := cfg
	pc.Rebalance = false
	pc.plan = nil
	pc.Certify = false
	pc.RecordHistory = false
	pc.ProbeStaleness = false
	pc.Nemesis = nil // the probe measures the healthy load profile
	pc.Txns = probeTxns(cfg)
	d, err := deploy(p, pc)
	if err != nil {
		return nil, fmt.Errorf("driver: rebalance probe: %w", err)
	}
	r, err := startRun(d, pc)
	if err != nil {
		return nil, fmt.Errorf("driver: rebalance probe: %w", err)
	}
	if pc.Rate > 0 {
		_, err = r.runOpen()
	} else {
		_, err = r.runClosed()
	}
	if err != nil {
		return nil, fmt.Errorf("driver: rebalance probe: %w", err)
	}
	ev := r.runner.ProcessEvents()
	plan := make(map[sim.ProcessID]int, len(ev))
	n := d.Place.NumServers()
	load := make([]int, n)
	for _, sid := range d.Place.Servers() {
		s := d.Place.ServerIndex(sid)
		plan[sid] = s
		load[s] += ev[sid]
	}
	type item struct {
		pid sim.ProcessID
		n   int
	}
	var items []item
	for _, pid := range d.Kernel.Processes() {
		if _, isServer := plan[pid]; isServer {
			continue
		}
		items = append(items, item{pid, ev[pid]})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].n != items[j].n {
			return items[i].n > items[j].n
		}
		return items[i].pid < items[j].pid
	})
	for _, it := range items {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		plan[it.pid] = best
		load[best] += it.n
	}
	return plan, nil
}

// engine abstracts the stepping mode behind the load loops: the serial
// Network scheduler (Config.Workers == 0) or the sharded window runner.
// Both contracts match sim.Run's: execute until quiescence, the stop
// predicate (checked between events / between windows), the horizon, or
// the event budget, returning the events executed.
type engine interface {
	run(stop func(*sim.Kernel) bool, maxEvents int) int
	setHorizon(t sim.Time)
}

type serialEngine struct {
	k     *sim.Kernel
	sched *sim.Network
}

func (e *serialEngine) run(stop func(*sim.Kernel) bool, maxEvents int) int {
	return sim.Run(e.k, e.sched, stop, maxEvents)
}
func (e *serialEngine) setHorizon(t sim.Time) { e.sched.Horizon = t }

type shardedEngine struct{ r *sim.ShardedRunner }

func (e *shardedEngine) run(stop func(*sim.Kernel) bool, maxEvents int) int {
	return e.r.Run(stop, maxEvents)
}
func (e *shardedEngine) setHorizon(t sim.Time) { e.r.SetHorizon(t) }

// shardAssignment partitions a deployment for sharded stepping: one
// shard per server (the shard of partition k owns server k), with the
// client-side processes (workload clients, readers, initializers)
// striped across the shards in sorted process order — unless a measured
// plan from the rebalance probe overrides the stripe. On a multi-site
// topology the stripe is site-aware: each client-side process is placed
// round-robin among the shards of its OWN site, so every shard stays
// single-site and the lookahead engine's cross-site shard-pair bounds
// keep the wide cross-site floor instead of collapsing to the intra-site
// minimum. Either way the assignment is a pure function of
// deterministic inputs, so the sharded schedule is too.
func shardAssignment(d *protocol.Deployment, plan map[sim.ProcessID]int) (func(sim.ProcessID) int, int, error) {
	n := d.Place.NumServers()
	if plan != nil {
		for _, pid := range d.Kernel.Processes() {
			if s, ok := plan[pid]; !ok || s < 0 || s >= n {
				return nil, 0, fmt.Errorf("driver: rebalance plan does not cover process %s", pid)
			}
		}
		return func(pid sim.ProcessID) int { return plan[pid] }, n, nil
	}
	assign := make(map[sim.ProcessID]int, n)
	for _, sid := range d.Place.Servers() {
		assign[sid] = d.Place.ServerIndex(sid)
	}
	// Shards of each site, in server order; nil when the deployment is
	// uniform or some site has no server (then the plain stripe below
	// is the only sound choice).
	var bySite [][]int
	if t := d.Topo; t != nil && t.Sites > 1 {
		bySite = make([][]int, t.Sites)
		for _, sid := range d.Place.Servers() {
			s := t.SiteOf(sid)
			bySite[s] = append(bySite[s], d.Place.ServerIndex(sid))
		}
		for _, shards := range bySite {
			if len(shards) == 0 {
				bySite = nil
				break
			}
		}
	}
	i := 0
	next := make([]int, len(bySite)) // per-site round-robin cursor
	for _, pid := range d.Kernel.Processes() {
		if _, isServer := assign[pid]; isServer {
			continue
		}
		if bySite == nil {
			assign[pid] = i % n
			i++
			continue
		}
		s := d.Topo.SiteOf(pid)
		assign[pid] = bySite[s][next[s]%len(bySite[s])]
		next[s]++
	}
	return func(pid sim.ProcessID) int { return assign[pid] }, n, nil
}

// run carries the shared machinery of both load regimes.
type run struct {
	d      *protocol.Deployment
	cfg    Config
	rep    *Report
	cls    []protocol.Client
	gens   []*workload.Generator
	eng    engine
	runner *sim.ShardedRunner // non-nil under the sharded engine

	lat, rot, wr *stats.Collector
	queue, svc   *stats.Collector
	rounds, nROT int
	// Closed-loop quota bookkeeping, per client. The mid-window refill
	// hook mutates issued[i] from worker goroutines — safely, because
	// client i lives on exactly one shard and the hook touches only
	// index-i state (the serial merge orders everything else).
	quota, issued []int
	clientIdx     map[sim.ProcessID]int
	// injectAt maps a transaction to its scheduled open-loop arrival
	// instant (nil in closed loop). Entries are dropped on collection so
	// memory stays flat over long runs.
	injectAt map[model.TxnID]int64
	// sess is the ride-along certification session (nil unless
	// Config.Certify); sealed reports it refused an append — the history
	// is already refuted and later commits need not be fed.
	sess     *history.Session
	sealed   bool
	certWall time.Duration
	// stale accumulates the frozen visibility probes (nil unless
	// Config.ProbeStaleness and the deployment reserved a reader);
	// writesSeen drives the sampling stride.
	stale      *StalenessReport
	writesSeen int
	// nem threads the armed fault schedule through the run (nil unless
	// Config.Nemesis); injHorizon is the open-loop injection horizon the
	// fault-aware engineRun folds into its segment bounds (0 in closed
	// loop and while draining).
	nem        *nemesisState
	injHorizon sim.Time
}

func newRun(d *protocol.Deployment, cfg Config) *run {
	r := &run{
		d: d, cfg: cfg,
		rep:   &Report{Protocol: d.Proto.Name(), Clients: cfg.Clients, Pipeline: cfg.Pipeline},
		cls:   make([]protocol.Client, cfg.Clients),
		gens:  make([]*workload.Generator, cfg.Clients),
		lat:   stats.NewCollector(),
		rot:   stats.NewCollector(),
		wr:    stats.NewCollector(),
		queue: stats.NewCollector(),
		svc:   stats.NewCollector(),
	}
	objects := d.Place.Objects()
	// Independent deterministic generator stream per client, so the
	// workload each client submits does not depend on scheduling.
	for i := 0; i < cfg.Clients; i++ {
		r.cls[i] = d.Client(d.Clients[i])
		r.gens[i] = workload.NewGenerator(cfg.Mix, objects, cfg.Seed*1_000_003+int64(i)*7919+11)
	}
	if cfg.RecordHistory {
		r.rep.History = history.New(d.Initials())
	}
	if cfg.Certify {
		r.rep.CertLevel = d.Proto.Claims().Consistency
		// Streaming session with every workload client declared up front:
		// eviction may begin before a slow client's first commit is
		// collected, and an undeclared client arriving after the first
		// sweep would be refused.
		names := make([]string, cfg.Clients)
		for i := 0; i < cfg.Clients; i++ {
			names[i] = string(d.Clients[i])
		}
		r.sess = history.NewStreamingSession(d.Initials(), r.rep.CertLevel, names)
	}
	if cfg.ProbeStaleness && len(d.Readers) > 0 {
		r.stale = &StalenessReport{}
		r.rep.Staleness = r.stale
	}
	return r
}

func (r *run) nextTxn(i int) *model.Txn {
	t := r.gens[i].Next(string(r.d.Clients[i]))
	if !t.IsReadOnly() && !r.d.Proto.Claims().MultiWriteTxn {
		t = r.gens[i].NextSingleWrite(string(r.d.Clients[i]))
	}
	return t
}

// collect drains finished transactions from every client into the report.
func (r *run) collect() {
	for _, cl := range r.cls {
		for _, res := range cl.TakeFinished() {
			inject, open := int64(0), false
			if r.injectAt != nil {
				if at, found := r.injectAt[res.Txn.ID]; found {
					inject, open = at, true
					delete(r.injectAt, res.Txn.ID)
				}
			}
			if r.nem != nil {
				r.nem.observe(res, r.d.Place)
			}
			if !res.OK() {
				r.rep.Rejected++
				continue
			}
			r.rep.Committed++
			l := res.Completed - res.Invoked
			if open {
				// End-to-end from the scheduled arrival; the split
				// into queueing and service goes to the dedicated
				// collectors.
				r.queue.Add(res.Invoked - inject)
				r.svc.Add(l)
				l = res.Completed - inject
			}
			r.lat.Add(l)
			if res.Txn.IsReadOnly() {
				r.rot.Add(l)
				r.rounds += res.Rounds
				r.nROT++
			} else {
				r.wr.Add(l)
			}
			if r.stale != nil && !res.Txn.IsReadOnly() {
				r.probeStaleness(res)
			}
			if r.rep.History != nil || r.sess != nil {
				rec := history.NewRecord(res)
				if r.rep.History != nil {
					r.rep.History.Add(rec)
				}
				if r.sess != nil && !r.sealed {
					t0 := time.Now()
					clean := r.sess.Append(rec)
					r.certWall += time.Since(t0)
					if !clean {
						r.sealed = true
					}
				}
			}
		}
	}
}

// probeStaleness samples one committed write transaction: a frozen
// reader on a kernel snapshot re-reads every object the transaction
// wrote and the tallies record whether its values are the visible state
// right now. Runs on clones only — the measured run is untouched.
func (r *run) probeStaleness(res *model.Result) {
	r.writesSeen++
	if r.stale.Probes >= probeCap || (r.writesSeen-1)%probeStride != 0 {
		return
	}
	want := make(map[string]model.Value, len(res.Txn.Writes))
	for _, w := range res.Txn.Writes {
		want[w.Object] = w.Value // last write wins, matching the checkers
	}
	vis := r.d.VisibleAll(r.d.Readers[0], want, true)
	r.stale.Probes++
	if vis.Incomplete {
		r.stale.Incomplete++
	}
	if !vis.Visible {
		r.stale.Stale++
	}
	if r.nem != nil && r.nem.overlaps(res.Invoked, res.Completed) {
		// The sampled transaction's lifetime crossed a fault window: the
		// degraded-phase slice (same rule as FaultedCommitted).
		r.stale.FaultedProbes++
		if vis.Incomplete {
			r.stale.FaultedIncomplete++
		}
		if !vis.Visible {
			r.stale.FaultedStale++
		}
	}
}

// finish summarizes the run into the report.
func (r *run) finish(start sim.Time) *Report {
	rep := r.rep
	rep.Duration = r.d.Kernel.Now() - start
	for _, cl := range r.cls {
		rep.Incomplete += cl.Outstanding()
	}
	rep.Latency = r.lat.Summarize()
	rep.ROT = r.rot.Summarize()
	rep.Write = r.wr.Summarize()
	rep.QueueDelay = r.queue.Summarize()
	rep.Service = r.svc.Summarize()
	if r.nROT > 0 {
		rep.ROTRounds = float64(r.rounds) / float64(r.nROT)
	}
	if rep.Duration > 0 {
		rep.Throughput = float64(rep.Committed) / (float64(rep.Duration) / 1e6)
	}
	if rep.Issued > 0 {
		rep.AbortRate = float64(rep.Rejected) / float64(rep.Issued)
	}
	if r.sess != nil {
		t0 := time.Now()
		v := r.sess.Finish()
		r.certWall += time.Since(t0)
		rep.Cert = &v
		rep.CertWall = r.certWall
	}
	if r.runner != nil {
		st := r.runner.Stats()
		st.Rebalanced = r.cfg.plan != nil
		rep.Sharding = &st
	}
	if r.nem != nil {
		rep.Nemesis = r.nem.finish(r.d.Kernel, start)
	}
	return rep
}

// RunOn drives a load run against an existing, initialized deployment.
// The deployment must have at least cfg.Clients workload clients.
func RunOn(d *protocol.Deployment, cfg Config) (*Report, error) {
	r, err := startRun(d, cfg)
	if err != nil {
		return nil, err
	}
	if r.cfg.Rate > 0 {
		return r.runOpen()
	}
	return r.runClosed()
}

// startRun validates cfg against the deployment and assembles the run
// and its stepping engine.
func startRun(d *protocol.Deployment, cfg Config) (*run, error) {
	cfg.defaults()
	if len(d.Clients) < cfg.Clients {
		return nil, fmt.Errorf("driver: deployment has %d clients, need %d", len(d.Clients), cfg.Clients)
	}
	if cfg.Workers <= 0 && cfg.Barrier {
		return nil, fmt.Errorf("driver: Barrier selects between sharded engines and requires Workers ≥ 1")
	}
	if cfg.Rebalance && cfg.plan == nil {
		return nil, fmt.Errorf("driver: Rebalance needs the probe deployment driver.Run builds; call Run, not RunOn")
	}
	r := newRun(d, cfg)
	if cfg.Workers <= 0 {
		r.eng = &serialEngine{k: d.Kernel, sched: &sim.Network{NoTimeLeap: cfg.NoTimeLeap}}
	} else {
		if cfg.KeepTrace {
			return nil, fmt.Errorf("driver: Workers and KeepTrace are incompatible (sharded stepping has no global event order to record)")
		}
		if cfg.NoTimeLeap {
			return nil, fmt.Errorf("driver: Workers and NoTimeLeap are incompatible (sharded windows always leap)")
		}
		shardOf, shards, err := shardAssignment(d, cfg.plan)
		if err != nil {
			return nil, err
		}
		mk := sim.NewLookaheadRunner
		if cfg.Barrier {
			mk = sim.NewShardedRunner
		}
		runner, err := mk(d.Kernel, shardOf, shards, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("driver: %w", err)
		}
		r.runner = runner
		r.eng = &shardedEngine{r: runner}
	}
	if cfg.Nemesis != nil {
		faults, err := cfg.Nemesis.build(d, cfg.Seed, d.Kernel.Now())
		if err != nil {
			return nil, err
		}
		r.nem = newNemesisState(faults)
	}
	return r, nil
}

// refillClient tops one client up to its pipeline depth. It doubles as
// the sharded runner's mid-window refill hook, where it runs on a worker
// goroutine inside the parallel phase: everything it touches — the
// client's queue, its generator stream, its quota slot — is owned by
// exactly one shard, and the kernel is deliberately not told (the
// invoke annotation is a trace event; load runs drop those anyway).
func (r *run) refillClient(pid sim.ProcessID, _ sim.Time) {
	i, ok := r.clientIdx[pid]
	if !ok {
		return
	}
	cl := r.cls[i]
	for r.issued[i] < r.quota[i] && cl.Outstanding() < r.cfg.Pipeline {
		if r.runner == nil {
			// Serial engine: go through the deployment so the invoke
			// annotation lands in the trace (trace mode is serial-only).
			r.d.Invoke(pid, r.nextTxn(i))
		} else {
			cl.Invoke(r.nextTxn(i))
		}
		r.issued[i]++
	}
}

// runClosed keeps every client topped up to its pipeline depth.
func (r *run) runClosed() (*Report, error) {
	d, cfg, rep := r.d, r.cfg, r.rep
	r.quota = make([]int, cfg.Clients)
	r.issued = make([]int, cfg.Clients)
	r.clientIdx = make(map[sim.ProcessID]int, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		r.quota[i] = cfg.Txns / cfg.Clients
		if i < cfg.Txns%cfg.Clients {
			r.quota[i]++
		}
		r.clientIdx[d.Clients[i]] = i
	}
	if r.runner != nil {
		// Mid-window refill: completions re-arm their client inside the
		// round instead of waiting for the next engine exit.
		r.runner.SetRefill(r.refillClient)
	}
	// refill tops every client up between engine runs (the initial fill,
	// and the whole story for the serial engine).
	refill := func() {
		for i := range r.cls {
			r.refillClient(d.Clients[i], d.Kernel.Now())
		}
	}
	// needRefill is the scheduler stop predicate: hand control back to
	// the driver the moment some client has spare pipeline capacity.
	needRefill := func() bool {
		for i, cl := range r.cls {
			if r.issued[i] < r.quota[i] && cl.Outstanding() < cfg.Pipeline {
				return true
			}
		}
		return false
	}

	start := d.Kernel.Now()
	for {
		refill()
		n := r.engineRun(func(*sim.Kernel) bool { return needRefill() }, cfg.MaxEvents-rep.Events)
		rep.Events += n
		r.collect()
		if needRefill() && rep.Events < cfg.MaxEvents {
			continue // a client freed up: top it up and keep going
		}
		// Either everything is issued (n == 0 with nothing enabled means
		// the run is fully drained) or the event budget ran out.
		if n == 0 || rep.Events >= cfg.MaxEvents {
			break
		}
	}
	r.collect()
	for _, n := range r.issued {
		rep.Issued += n
	}
	return r.finish(start), nil
}

// runOpen injects transactions at the arrival process's instants,
// regardless of completions. The engine runs with its horizon set to
// the next arrival so virtual time never leaps past an injection; at
// the horizon the driver advances the clock to the scheduled instant
// and invokes the transaction at the next client round-robin. (Under
// the sharded engine the clock may already sit a few steps past the
// instant — window granularity, see sim.ShardedRunner.SetHorizon — so
// the invocation happens at the first actionable instant at or after
// it; queueing delay is measured from the scheduled instant in both
// engines.)
func (r *run) runOpen() (*Report, error) {
	d, cfg, rep := r.d, r.cfg, r.rep
	rep.OfferedRate = cfg.Rate
	r.injectAt = make(map[model.TxnID]int64, cfg.Clients*4)
	inFlight := stats.NewCollector()

	start := d.Kernel.Now()
	var arr sim.ArrivalProcess
	if cfg.DeterministicArrivals {
		arr = sim.NewUniformArrivals(cfg.Rate, start)
	} else {
		arr = sim.NewPoissonArrivals(cfg.Rate, cfg.Seed*999_983+77, start)
	}

	for injected := 0; injected < cfg.Txns && rep.Events < cfg.MaxEvents; injected++ {
		at := arr.Next()
		// Run everything scheduled strictly before the arrival (faults
		// due before it included, via the fault-aware dispatch).
		r.injHorizon = at
		rep.Events += r.engineRun(nil, cfg.MaxEvents-rep.Events)
		r.collect()
		d.Kernel.AdvanceTo(at)
		i := injected % cfg.Clients
		tid := d.Invoke(d.Clients[i], r.nextTxn(i))
		if r.runner != nil {
			// Lift the owning shard's persistent clock to the scheduled
			// instant so the lookahead engine never steps the injection
			// early (no-op under the barrier engine).
			r.runner.NotifyInvoked(d.Clients[i], at)
		}
		r.injectAt[tid] = int64(at)
		rep.Issued++
		depth := 0
		for _, cl := range r.cls {
			depth += cl.Outstanding()
		}
		inFlight.Add(int64(depth))
	}
	// Drain: no more arrivals, run until every client is idle.
	r.injHorizon = 0
	rep.Events += r.engineRun(nil, cfg.MaxEvents-rep.Events)
	r.collect()
	r.rep.InFlight = inFlight.Summarize()
	return r.finish(start), nil
}

package driver

import (
	"fmt"
	"testing"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/protocols/cops"
	"repro/internal/protocols/cure"
	"repro/internal/protocols/spanner"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestClosedLoopRunCompletes(t *testing.T) {
	rep, err := Run(cops.New(), Config{
		Clients: 4, Txns: 120, Mix: workload.ReadHeavy(), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Issued != 120 {
		t.Fatalf("issued = %d, want 120", rep.Issued)
	}
	if rep.Incomplete != 0 {
		t.Fatalf("incomplete = %d, want 0", rep.Incomplete)
	}
	if rep.Committed+rep.Rejected != rep.Issued {
		t.Fatalf("committed %d + rejected %d != issued %d", rep.Committed, rep.Rejected, rep.Issued)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput = %f", rep.Throughput)
	}
	if rep.Latency.N == 0 || rep.Latency.P50 <= 0 {
		t.Fatalf("latency summary empty: %+v", rep.Latency)
	}
}

// TestConcurrencyActuallyOverlaps distinguishes the concurrent harness
// from the old lockstep loop: with many clients the same transaction count
// must span far less virtual time than with one client.
func TestConcurrencyActuallyOverlaps(t *testing.T) {
	run := func(clients int) sim.Time {
		rep, err := Run(cops.New(), Config{
			Clients: clients, Txns: 64, Mix: workload.ReadHeavy(), Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Incomplete != 0 {
			t.Fatalf("clients=%d incomplete=%d", clients, rep.Incomplete)
		}
		return rep.Duration
	}
	solo := run(1)
	wide := run(16)
	if wide*4 > solo {
		t.Fatalf("16 clients not concurrent: solo took %dµs, 16-wide took %dµs (want ≥4x speedup)", solo, wide)
	}
}

// TestDeterminismSameSeed runs the same configuration twice and requires
// identical reports and identical histories, event for event.
func TestDeterminismSameSeed(t *testing.T) {
	run := func() *Report {
		rep, err := Run(cure.New(), Config{
			Clients: 8, Txns: 48, Mix: workload.Balanced(), Seed: 11, RecordHistory: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Committed != b.Committed || a.Rejected != b.Rejected || a.Events != b.Events ||
		a.Duration != b.Duration || a.Throughput != b.Throughput {
		t.Fatalf("reports differ:\n%v\n%v", a, b)
	}
	if a.Latency.Mean != b.Latency.Mean || a.Latency.P99 != b.Latency.P99 ||
		a.ROT.P50 != b.ROT.P50 || a.Write.P50 != b.Write.P50 {
		t.Fatalf("latency summaries differ:\n%+v\n%+v", a.Latency, b.Latency)
	}
	ha, hb := a.History.String(), b.History.String()
	if ha != hb {
		t.Fatalf("histories differ:\n%s\n---\n%s", ha, hb)
	}
	if a.History.Len() != a.Committed {
		t.Fatalf("history has %d records, committed %d", a.History.Len(), a.Committed)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	run := func(seed int64) *Report {
		rep, err := Run(cops.New(), Config{Clients: 4, Txns: 60, Mix: workload.ReadHeavy(), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(2)
	if a.Duration == b.Duration && a.Latency.Mean == b.Latency.Mean && a.Events == b.Events {
		t.Fatal("different seeds produced identical runs — generator streams not seeded")
	}
}

// TestConcurrentHistoriesConsistent certifies a ≥8-client concurrent
// execution per representative protocol at its claimed consistency level
// (and causal consistency as the baseline) via history.Check.
func TestConcurrentHistoriesConsistent(t *testing.T) {
	for _, p := range []protocol.Protocol{cops.New(), cure.New(), spanner.New()} {
		t.Run(p.Name(), func(t *testing.T) {
			// A small object universe keeps the exact checker tractable:
			// more read/write conflicts mean more reads-from ordering
			// edges, which prune the serialization search. The checker's
			// cost is seed-sensitive (it is an exact exponential search);
			// runs are deterministic, so this exact configuration is known
			// cheap — retune the seed if the histories ever change.
			rep, err := Run(p, Config{
				Clients: 8, Txns: 44, ObjectsPerServer: 1,
				Mix: workload.Balanced(), Seed: 2, RecordHistory: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Incomplete != 0 {
				t.Fatalf("incomplete = %d", rep.Incomplete)
			}
			if rep.History.Len() < 40 {
				t.Fatalf("history too small: %d records", rep.History.Len())
			}
			if v := history.Check(rep.History, "causal"); !v.OK {
				t.Fatalf("concurrent execution not causal: %s\n%s", v.Reason, rep.History)
			}
			if lvl := p.Claims().Consistency; lvl != "causal" {
				if v := history.Check(rep.History, lvl); !v.OK {
					t.Fatalf("concurrent execution violates claimed %s: %s", lvl, v.Reason)
				}
			}
		})
	}
}

// TestPipelineDepthQueuesInvocations exercises per-client pipelining
// (Outstanding > 1) end to end.
func TestPipelineDepthQueuesInvocations(t *testing.T) {
	rep, err := Run(cops.New(), Config{
		Clients: 2, Pipeline: 4, Txns: 80, Mix: workload.ReadHeavy(), Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete != 0 || rep.Committed+rep.Rejected != 80 {
		t.Fatalf("pipelined run broken: %+v", rep)
	}
}

// TestConstantLatencyDeployment uses sim.ConstantLatency as a deployment's
// latency model (the seed declared it with the wrong type, making this
// impossible).
func TestConstantLatencyDeployment(t *testing.T) {
	rep, err := Run(cops.New(), Config{
		Clients: 2, Txns: 20, Mix: workload.ReadHeavy(), Seed: 13,
		Latency: sim.ConstantLatency(400),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete != 0 {
		t.Fatalf("incomplete = %d", rep.Incomplete)
	}
	// With a constant 400µs link and 1µs steps, a one-round read-only
	// transaction takes 2·400 plus a few step costs — nothing near the
	// uniform default's spread.
	if rep.ROT.N > 0 && (rep.ROT.Min < 800 || rep.ROT.Min > 820) {
		t.Fatalf("ROT min latency = %d, want ~800-820 under constant 400µs links", rep.ROT.Min)
	}
}

// TestLoadModeMemoryFlat ensures a load run leaves no trace events or
// payload registry behind.
func TestLoadModeMemoryFlat(t *testing.T) {
	d := protocol.Deploy(cops.New(), protocol.Config{Servers: 2, ObjectsPerServer: 2, Clients: 4, Seed: 21})
	d.Kernel.SetTraceCap(-1)
	d.Kernel.SetPayloadRetention(false)
	if err := d.InitAll(400_000); err != nil {
		t.Fatal(err)
	}
	rep, err := RunOn(d, Config{Clients: 4, Txns: 200, Mix: workload.ReadHeavy(), Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete != 0 {
		t.Fatalf("incomplete = %d", rep.Incomplete)
	}
	if got := d.Kernel.Trace().Len(); got != 0 {
		t.Fatalf("load run retained %d trace events", got)
	}
	if d.Kernel.PayloadOf(1) != nil {
		t.Fatal("load run retained payloads")
	}
}

func TestRunOnRejectsOversizedClientCount(t *testing.T) {
	d := protocol.Deploy(cops.New(), protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 1})
	if err := d.InitAll(400_000); err != nil {
		t.Fatal(err)
	}
	if _, err := RunOn(d, Config{Clients: 8, Txns: 8}); err == nil {
		t.Fatal("expected error for more driver clients than deployed")
	}
}

func ExampleRun() {
	rep, err := Run(cops.New(), Config{Clients: 4, Txns: 40, Mix: workload.ReadHeavy(), Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Committed == 40, rep.Incomplete)
	// Output: true 0
}

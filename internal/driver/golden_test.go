package driver

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/protocol"
	"repro/internal/protocols/cure"
	"repro/internal/protocols/spanner"
	"repro/internal/workload"
)

// diffLines locates the first differing line of two texts for a readable
// failure message.
func diffLines(t *testing.T, what, a, b string) {
	t.Helper()
	if a == b {
		return
	}
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			t.Fatalf("%s diverged at line %d:\n  run 1: %s\n  run 2: %s", what, i+1, la[i], lb[i])
		}
	}
	t.Fatalf("%s diverged in length: %d vs %d lines", what, len(la), len(lb))
}

// TestReportByteIdentical is the determinism golden test: the same seed
// and configuration must produce a byte-identical driver.Report (JSON)
// and history across runs, in both load regimes. Any map-iteration or
// scheduling nondeterminism that creeps into the stack shows up here as
// a diff.
func TestReportByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		p    func() protocol.Protocol
		cfg  Config
	}{
		{"closed-cure", func() protocol.Protocol { return cure.New() },
			Config{Clients: 8, Txns: 48, Mix: workload.Balanced(), Seed: 11, RecordHistory: true}},
		{"open-cure", func() protocol.Protocol { return cure.New() },
			Config{Clients: 8, Txns: 40, Mix: workload.ReadHeavy(), Seed: 11, Rate: 900, RecordHistory: true}},
		{"open-spanner-uniform", func() protocol.Protocol { return spanner.New() },
			Config{Clients: 4, Txns: 30, Mix: workload.Balanced(), Seed: 23, Rate: 300, DeterministicArrivals: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func() (string, string) {
				rep, err := Run(tc.p(), tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				js, err := json.MarshalIndent(rep, "", " ")
				if err != nil {
					t.Fatal(err)
				}
				hist := ""
				if rep.History != nil {
					hist = rep.History.String()
				}
				return string(js), hist
			}
			j1, h1 := run()
			j2, h2 := run()
			diffLines(t, "report JSON", j1, j2)
			diffLines(t, "history", h1, h2)
		})
	}
}

package driver

import (
	"testing"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/protocols/cops"
	"repro/internal/protocols/cure"
	"repro/internal/protocols/spanner"
	"repro/internal/sim"
	"repro/internal/workload"
)

func crashNemesis(lose bool) *Nemesis {
	return &Nemesis{Crashes: 1, Lose: lose, Start: 5_000, Duration: 8_000}
}

func partitionNemesis() *Nemesis {
	return &Nemesis{Partitions: 1, Start: 5_000, Duration: 8_000}
}

// TestNemesisWorkersByteIdentical extends the serial-equals-parallel
// contract to faulted runs: a crash/restart or partition/heal schedule is
// part of the configuration, not of the execution, so for a fixed seed,
// engine and schedule the report — fault accounting included — must be
// byte-identical at every worker count.
func TestNemesisWorkersByteIdentical(t *testing.T) {
	protos := []struct {
		name string
		mk   func() protocol.Protocol
	}{
		{"cops", func() protocol.Protocol { return cops.New() }},
		{"spanner", func() protocol.Protocol { return spanner.New() }},
	}
	schedules := []struct {
		name string
		nem  func() *Nemesis
	}{
		{"crash", func() *Nemesis { return crashNemesis(false) }},
		{"partition", partitionNemesis},
	}
	engines := []struct {
		name    string
		barrier bool
	}{
		{"lookahead", false},
		{"barrier", true},
	}
	for _, p := range protos {
		for _, sch := range schedules {
			for _, eng := range engines {
				t.Run(p.name+"-"+sch.name+"-"+eng.name, func(t *testing.T) {
					base := Config{
						Clients: 8, Txns: 72, Mix: workload.Balanced(), Seed: 7,
						Servers: 4, ObjectsPerServer: 2,
						Barrier:       eng.barrier,
						RecordHistory: true, Certify: true,
						Nemesis: sch.nem(),
					}
					runWith := func(workers int) (*Report, string) {
						cfg := base
						cfg.Nemesis = sch.nem() // fresh: build mutates defaults
						cfg.Workers = workers
						rep, err := Run(p.mk(), cfg)
						if err != nil {
							t.Fatalf("workers=%d: %v", workers, err)
						}
						if rep.Nemesis == nil {
							t.Fatalf("workers=%d: no nemesis report", workers)
						}
						if rep.Nemesis.Applied != rep.Nemesis.Scheduled {
							t.Fatalf("workers=%d: applied %d of %d scheduled faults",
								workers, rep.Nemesis.Applied, rep.Nemesis.Scheduled)
						}
						if rep.Nemesis.UnavailableTime <= 0 {
							t.Fatalf("workers=%d: zero unavailable time across a fault window", workers)
						}
						if rep.Incomplete != 0 {
							t.Fatalf("workers=%d: %d transactions incomplete after heal", workers, rep.Incomplete)
						}
						if rep.Cert == nil || !rep.Cert.OK {
							t.Fatalf("workers=%d: persistent faults must certify clean (delay-indistinguishable): %+v",
								workers, rep.Cert)
						}
						return rep, reportFingerprint(t, rep)
					}
					_, want := runWith(1)
					for _, workers := range []int{2, 4} {
						_, got := runWith(workers)
						diffLines(t, "nemesis "+sch.name, want, got)
					}
				})
			}
		}
	}
}

// TestNemesisSerialDeterministic pins the serial engine the same way:
// same flags, same schedule, byte-identical reports across repeats.
func TestNemesisSerialDeterministic(t *testing.T) {
	cfg := Config{
		Clients: 8, Txns: 72, Mix: workload.Balanced(), Seed: 3,
		RecordHistory: true, Certify: true,
	}
	run := func() string {
		c := cfg
		c.Nemesis = crashNemesis(false)
		rep, err := Run(cops.New(), c)
		if err != nil {
			t.Fatal(err)
		}
		return reportFingerprint(t, rep)
	}
	want := run()
	diffLines(t, "serial nemesis repeat", want, run())
}

// TestNemesisCertifiedCells is the acceptance pair: a 2000-transaction
// cops run with a mid-run server crash+restart, and a 2-site cure run
// with a cross-site partition+heal. Both must complete everything and
// report nonzero unavailability and recovery latency. Cops must certify
// clean across the fault; cure carries its documented visibility
// fracture (ROADMAP: cure-fracture, clean at 8 clients fault-free but
// the partition's reshuffled delivery exposes it) — a refutation there
// is accepted iff it is pinned to a first offending commit whose witness
// prefix refutes on its own, the documented-gap contract.
func TestNemesisCertifiedCells(t *testing.T) {
	if testing.Short() {
		t.Skip("long certification cells")
	}
	t.Run("cops-crash-2000", func(t *testing.T) {
		rep, err := Run(cops.New(), Config{
			Clients: 8, Txns: 2000, Mix: workload.Balanced(), Seed: 11,
			Servers: 4, ObjectsPerServer: 2,
			Certify: true,
			Nemesis: &Nemesis{Crashes: 2, Start: 20_000, Period: 200_000, Duration: 10_000},
		})
		if err != nil {
			t.Fatal(err)
		}
		checkCertifiedCell(t, rep, false)
	})
	t.Run("cure-2site-partition", func(t *testing.T) {
		topo, err := protocol.TopologyByName("2site")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(cure.New(), Config{
			Clients: 8, Txns: 400, Mix: workload.Balanced(), Seed: 11,
			Servers: 4, ObjectsPerServer: 2, Topology: topo,
			RecordHistory: true, Certify: true,
			Nemesis: &Nemesis{Partitions: 1, Start: 20_000, Duration: 15_000},
		})
		if err != nil {
			t.Fatal(err)
		}
		checkCertifiedCell(t, rep, true)
	})
}

func checkCertifiedCell(t *testing.T, rep *Report, knownFracture bool) {
	t.Helper()
	if rep.Incomplete != 0 {
		t.Fatalf("%d transactions incomplete after heal", rep.Incomplete)
	}
	if rep.Committed == 0 {
		t.Fatal("nothing committed")
	}
	switch {
	case rep.Cert == nil:
		t.Fatal("ride-along certification did not run")
	case rep.Cert.OK:
		// Certified clean across the fault.
	case knownFracture:
		// The documented cure fracture: accept only a properly pinned
		// first violation whose witness prefix refutes by itself.
		v := rep.Cert
		if v.FirstViolation < 0 || len(v.WitnessPrefix) == 0 {
			t.Fatalf("fracture surfaced but not pinned: %+v", v)
		}
		if rep.History != nil && rep.History.Len() <= history.MaxTxns {
			if pv := history.CheckBatch(rep.History.Prefix(v.FirstViolation+1), rep.CertLevel); pv.OK {
				t.Fatalf("pinned prefix %d does not refute in batch", v.FirstViolation+1)
			}
		}
		t.Logf("documented cure fracture pinned under partition: first=%d id=%s (%s)",
			v.FirstViolation, v.FirstViolationID, v.Reason)
	default:
		t.Fatalf("faulted run does not certify at claimed level: %+v", rep.Cert)
	}
	n := rep.Nemesis
	if n == nil || n.Applied != n.Scheduled {
		t.Fatalf("fault schedule not fully applied: %+v", n)
	}
	if n.UnavailableTime <= 0 {
		t.Fatalf("zero unavailability: %+v", n)
	}
	if n.Recoveries == 0 || n.RecoveryLatency.N == 0 || n.RecoveryLatency.P50 <= 0 {
		t.Fatalf("no recovery latency measured: %+v", n)
	}
	if n.FaultedCommitted == 0 {
		t.Fatalf("no transaction lifetime crossed a fault window: %+v", n)
	}
	if n.LostMessages != 0 {
		t.Fatalf("persistent faults lost %d messages", n.LostMessages)
	}
}

// TestNemesisStalenessUnderPartition: with replication traffic severed
// (ServersOnly partition) while clients keep committing at their
// primaries, the staleness probes sampled inside the fault window must
// observe stale values — replicas cannot have the writes yet — at a
// higher rate than the run overall, and the run must still drain clean
// after heal.
func TestNemesisStalenessUnderPartition(t *testing.T) {
	rep, err := Run(cure.New(), Config{
		Clients: 8, Txns: 300, Mix: workload.Balanced(), Seed: 9,
		Servers: 2, ObjectsPerServer: 2, Replication: 2,
		ProbeStaleness: true, Certify: true,
		Nemesis: &Nemesis{Partitions: 1, ServersOnly: true, Start: 10_000, Duration: 40_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete != 0 {
		t.Fatalf("%d transactions incomplete after heal", rep.Incomplete)
	}
	st := rep.Staleness
	if st == nil || st.Probes == 0 {
		t.Fatalf("no staleness probes ran: %+v", st)
	}
	if st.FaultedProbes == 0 {
		t.Fatalf("no probe sampled inside the partition window: %+v", st)
	}
	if st.FaultedStale+st.FaultedIncomplete == 0 {
		t.Fatalf("probes inside a replication partition observed no staleness: %+v", st)
	}
	// Recovery after heal: the post-heal probes (the non-faulted rest)
	// must not be uniformly stale — replication catches up.
	cleanProbes := st.Probes - st.FaultedProbes
	cleanStale := st.Stale - st.FaultedStale
	if cleanProbes > 0 && cleanStale >= cleanProbes {
		t.Fatalf("staleness did not recover after heal: %d/%d clean probes stale", cleanStale, cleanProbes)
	}
	if rep.Cert == nil || !rep.Cert.OK {
		t.Fatalf("partition (delay-indistinguishable) broke certification: %+v", rep.Cert)
	}
}

// TestNemesisLossyCrashHasTeeth: a lossy crash on an unreplicated cops
// deployment discards committed-but-unreplicated state — real data loss,
// which ride-along certification must refute (pinned to a first
// offending commit with a checkable witness prefix) or the run must
// visibly fail to drain. A quiet clean pass would mean the nemesis
// layer's teeth are cosmetic.
func TestNemesisLossyCrashHasTeeth(t *testing.T) {
	rep, err := Run(cops.New(), Config{
		Clients: 8, Txns: 200, Mix: workload.Balanced(), Seed: 5,
		Servers: 2, ObjectsPerServer: 2,
		RecordHistory: true, Certify: true,
		Nemesis: crashNemesis(true),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nemesis == nil || rep.Nemesis.Crashes == 0 {
		t.Fatalf("lossy crash not applied: %+v", rep.Nemesis)
	}
	if rep.Nemesis.LostMessages == 0 && rep.Cert.OK && rep.Incomplete == 0 {
		t.Fatalf("lossy crash run lost nothing, completed and certified clean: no teeth (%+v)", rep.Nemesis)
	}
	if !rep.Cert.OK {
		// The violation must be pinned and its witness prefix must refute
		// on its own.
		v := rep.Cert
		if v.FirstViolation < 0 {
			t.Fatalf("violation not pinned: %+v", v)
		}
		if rep.History != nil && rep.History.Len() <= history.MaxTxns {
			if pv := history.CheckBatch(rep.History.Prefix(v.FirstViolation+1), rep.CertLevel); pv.OK {
				t.Fatalf("pinned prefix %d does not refute in batch", v.FirstViolation+1)
			}
		}
	}
}

// TestNemesisValidation pins the configuration refusals.
func TestNemesisValidation(t *testing.T) {
	base := Config{Clients: 2, Txns: 8, Seed: 1}
	bad := []*Nemesis{
		{Schedule: []sim.Fault{{Kind: sim.FaultCrash, Proc: "c0"}}},            // clients are not crash targets
		{Schedule: []sim.Fault{{Kind: sim.FaultCut, From: []sim.ProcessID{}}}}, // empty group
		{Schedule: []sim.Fault{{Kind: sim.FaultKind(99), Proc: "s0"}}},         // unknown kind
		{Schedule: []sim.Fault{{At: -5, Kind: sim.FaultCrash, Proc: "s0"}}},    // negative instant
		{Crashes: -1},
	}
	for i, n := range bad {
		cfg := base
		cfg.Nemesis = n
		if _, err := Run(cops.New(), cfg); err == nil {
			t.Errorf("bad nemesis %d accepted", i)
		}
	}
}

// FuzzNemesisSchedule drives arbitrary explicit fault schedules through a
// small cops run: whatever the instants, targets and loss flags, the run
// must return (no deadlock), kernel message conservation must hold, and
// the ride-along session verdict must agree with a batch re-solve of the
// surviving (collected) history.
func FuzzNemesisSchedule(f *testing.F) {
	f.Add(int64(1), uint16(4000), uint16(9000), uint16(6000), uint8(0), false)
	f.Add(int64(2), uint16(100), uint16(100), uint16(0), uint8(1), true)
	f.Add(int64(3), uint16(60000), uint16(30000), uint16(65535), uint8(7), true)
	f.Add(int64(4), uint16(0), uint16(0), uint16(1), uint8(2), false)
	f.Fuzz(func(t *testing.T, seed int64, crashAt, cutAt, dur uint16, target uint8, lose bool) {
		srv := sim.ProcessID([]string{"s0", "s1"}[int(target)%2])
		schedule := []sim.Fault{
			{At: sim.Time(crashAt), Kind: sim.FaultCrash, Proc: srv, Lose: lose},
			{At: sim.Time(crashAt) + sim.Time(dur) + 1, Kind: sim.FaultRestart, Proc: srv},
			{At: sim.Time(cutAt), Kind: sim.FaultCut,
				From: []sim.ProcessID{"s0", "c0"}, To: []sim.ProcessID{"s1", "c1"}},
			{At: sim.Time(cutAt) + sim.Time(dur) + 1, Kind: sim.FaultHeal,
				From: []sim.ProcessID{"s0", "c0"}, To: []sim.ProcessID{"s1", "c1"}},
		}
		cfg := Config{
			Clients: 2, Txns: 16, Mix: workload.Balanced(), Seed: seed,
			Servers: 2, ObjectsPerServer: 2,
			RecordHistory: true, Certify: true,
			Nemesis: &Nemesis{Schedule: schedule},
		}
		cfg.defaults()
		d, err := deploy(cops.New(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunOn(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Kernel.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		if rep.Nemesis == nil || rep.Nemesis.Scheduled != len(schedule) {
			t.Fatalf("schedule not threaded: %+v", rep.Nemesis)
		}
		// The streaming verdict and a batch re-solve of the surviving
		// history must agree — faults must not desynchronize the checkers.
		if rep.History.Len() <= history.MaxTxns {
			batch := history.CheckBatch(rep.History, rep.CertLevel)
			if batch.OK != rep.Cert.OK {
				t.Fatalf("session verdict %v disagrees with batch re-solve %v", rep.Cert.OK, batch.OK)
			}
		}
	})
}

package driver

import (
	"fmt"
	"testing"

	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/protocols/cops"
	"repro/internal/protocols/cure"
	"repro/internal/protocols/spanner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Generated cycles offset replacements by Period/4 and restores by
// 3·Period/4 inside the cycle, so the Period here is chosen to land both
// mid-run for short (72-txn, ~25ms) loads: the replace fires at 9_000,
// the restore at 10_000.
func replaceNemesis(lose bool) *Nemesis {
	return &Nemesis{Replaces: 1, Lose: lose, Start: 4_000, Period: 20_000}
}

func restoreNemesis() *Nemesis {
	return &Nemesis{Restores: 1, Start: 4_000, Period: 8_000}
}

// checkReconfigReport asserts the invariants every pure replace/restore
// schedule must satisfy: fully applied (companion restarts included),
// nonzero sync accounting, a real unavailability window and no lost
// messages (a non-lossy replacement reattaches the durable image — held
// traffic is delayed, never dropped).
func checkReconfigReport(t *testing.T, rep *Report) {
	t.Helper()
	n := rep.Nemesis
	if n == nil {
		t.Fatal("no nemesis report")
	}
	if n.Applied != n.Scheduled {
		t.Fatalf("applied %d of %d scheduled faults (companion restarts included)", n.Applied, n.Scheduled)
	}
	if n.Replacements+n.Restores == 0 {
		t.Fatalf("no replacement or restore applied: %+v", n)
	}
	if n.SyncedVersions == 0 {
		t.Fatalf("replacement adopted zero versions — the durable image vanished from the accounting: %+v", n)
	}
	if n.SyncTime <= 0 {
		t.Fatalf("zero catch-up time: %+v", n)
	}
	if n.UnavailableTime <= 0 {
		t.Fatalf("zero unavailable time across a replacement: %+v", n)
	}
	if n.Unrecovered != 0 {
		t.Fatalf("%d replacements never came back: %+v", n.Unrecovered, n)
	}
	if n.LostMessages != 0 {
		t.Fatalf("non-lossy reconfiguration lost %d messages", n.LostMessages)
	}
}

// TestReconfigWorkersByteIdentical extends the serial-equals-parallel
// contract to reconfiguration: a replace or restore schedule — companion
// restarts at data-dependent sync instants included — is part of the
// configuration, not of the execution, so for a fixed seed, engine and
// schedule the report must be byte-identical at every worker count.
func TestReconfigWorkersByteIdentical(t *testing.T) {
	protos := []struct {
		name string
		mk   func() protocol.Protocol
	}{
		{"cops", func() protocol.Protocol { return cops.New() }},
		{"spanner", func() protocol.Protocol { return spanner.New() }},
	}
	schedules := []struct {
		name string
		nem  func() *Nemesis
	}{
		{"replace", func() *Nemesis { return replaceNemesis(false) }},
		{"restore", restoreNemesis},
	}
	engines := []struct {
		name    string
		barrier bool
	}{
		{"lookahead", false},
		{"barrier", true},
	}
	for _, p := range protos {
		for _, sch := range schedules {
			for _, eng := range engines {
				t.Run(p.name+"-"+sch.name+"-"+eng.name, func(t *testing.T) {
					base := Config{
						Clients: 8, Txns: 72, Mix: workload.Balanced(), Seed: 7,
						Servers: 4, ObjectsPerServer: 2,
						Barrier:       eng.barrier,
						RecordHistory: true, Certify: true,
					}
					runWith := func(workers int) (*Report, string) {
						cfg := base
						cfg.Nemesis = sch.nem() // fresh: build mutates defaults
						cfg.Workers = workers
						rep, err := Run(p.mk(), cfg)
						if err != nil {
							t.Fatalf("workers=%d: %v", workers, err)
						}
						checkReconfigReport(t, rep)
						if rep.Incomplete != 0 {
							t.Fatalf("workers=%d: %d transactions incomplete after the replacement caught up",
								workers, rep.Incomplete)
						}
						if rep.Cert == nil || !rep.Cert.OK {
							t.Fatalf("workers=%d: non-lossy reconfiguration must certify clean: %+v",
								workers, rep.Cert)
						}
						return rep, reportFingerprint(t, rep)
					}
					_, want := runWith(1)
					for _, workers := range []int{2, 4} {
						_, got := runWith(workers)
						diffLines(t, "reconfig "+sch.name, want, got)
					}
				})
			}
		}
	}
}

// TestReconfigCertified2000 is the acceptance cell: a certified
// 2000-transaction cops run completes through a mid-run replica
// replacement on both sharded engines, with W1-vs-W4 byte-identity,
// nonzero sync accounting, and a ride-along verdict that agrees with the
// batch re-solve of the recorded history.
func TestReconfigCertified2000(t *testing.T) {
	if testing.Short() {
		t.Skip("long certification cells")
	}
	for _, eng := range []struct {
		name    string
		barrier bool
	}{
		{"lookahead", false},
		{"barrier", true},
	} {
		t.Run(eng.name, func(t *testing.T) {
			runWith := func(workers, txns int, certify bool) *Report {
				cfg := Config{
					Clients: 8, Txns: txns, Mix: workload.Balanced(), Seed: 11,
					Servers: 4, ObjectsPerServer: 2,
					Barrier: eng.barrier, Workers: workers,
					RecordHistory: true, Certify: certify,
					Nemesis: &Nemesis{Replaces: 1, Start: 20_000},
				}
				rep, err := Run(cops.New(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Incomplete != 0 {
					t.Fatalf("workers=%d: %d transactions incomplete", workers, rep.Incomplete)
				}
				checkReconfigReport(t, rep)
				return rep
			}
			// The certified cell: ride-along verdict, batch agreement,
			// replacement-phase slice populated.
			rep := runWith(1, 2000, true)
			if rep.Cert == nil || !rep.Cert.OK {
				t.Fatalf("certified replace cell refuted: %+v", rep.Cert)
			}
			if batch := history.CheckBatch(rep.History, rep.CertLevel); batch.OK != rep.Cert.OK {
				t.Fatalf("ride-along verdict OK=%v disagrees with batch re-solve OK=%v (%s)",
					rep.Cert.OK, batch.OK, batch.Reason)
			}
			if rep.Nemesis.SyncPhaseCommitted == 0 {
				t.Fatalf("no commit lifetime crossed the catch-up window: %+v", rep.Nemesis)
			}
			// W1-vs-W4 byte identity on the same certified cell.
			w4 := runWith(4, 2000, true)
			diffLines(t, "reconfig 2000 "+eng.name,
				reportFingerprint(t, rep), reportFingerprint(t, w4))
		})
	}
}

// TestReplaceLossyHasTeeth: replacing an unreplicated cops server with
// the disk gone discards committed-but-unreplicated state before its
// writes could propagate anywhere — under disjoint placement no peer
// holds the shard, so the replacement comes back owning nothing. Real
// data loss: ride-along certification must refute it (pinned to a first
// offending commit whose witness prefix refutes on its own) or the run
// must visibly fail to drain. The mirror of TestNemesisLossyCrashHasTeeth
// for the reconfiguration path.
func TestReplaceLossyHasTeeth(t *testing.T) {
	rep, err := Run(cops.New(), Config{
		Clients: 8, Txns: 200, Mix: workload.Balanced(), Seed: 5,
		Servers: 2, ObjectsPerServer: 2,
		RecordHistory: true, Certify: true,
		Nemesis: replaceNemesis(true),
	})
	if err != nil {
		t.Fatal(err)
	}
	n := rep.Nemesis
	if n == nil || n.Replacements == 0 {
		t.Fatalf("lossy replacement not applied: %+v", n)
	}
	if n.PeerSyncedVersions != 0 {
		t.Fatalf("disjoint placement transferred %d versions from peers that host nothing", n.PeerSyncedVersions)
	}
	if rep.Cert.OK && rep.Incomplete == 0 && n.LostMessages == 0 {
		t.Fatalf("lossy replacement lost nothing, completed and certified clean: no teeth (%+v)", n)
	}
	if !rep.Cert.OK {
		v := rep.Cert
		if v.FirstViolation < 0 {
			t.Fatalf("violation not pinned: %+v", v)
		}
		if rep.History != nil && rep.History.Len() <= history.MaxTxns {
			if pv := history.CheckBatch(rep.History.Prefix(v.FirstViolation+1), rep.CertLevel); pv.OK {
				t.Fatalf("pinned prefix %d does not refute in batch", v.FirstViolation+1)
			}
		}
	}
}

// TestReconfigStalenessUnderReplacement: while a replacement of one cure
// replica catches up, stabilization stalls — the live replica keeps
// committing but the global stable vector cannot advance past the dead
// peer — so the staleness probes sampled inside replacement windows must
// observe staleness (stale values or reads the frozen schedule cannot
// finish), and the post-catch-up probes must recover. Extends
// TestNemesisStalenessUnderPartition to the reconfiguration path.
func TestReconfigStalenessUnderReplacement(t *testing.T) {
	// Asymmetric placement: s0 is primary for every object, s1 a pure
	// replica. Replacing s1 never stalls a client — reads and writes keep
	// routing to s0 — but the stable vector cannot advance past the dead
	// replica, so probes sampled inside the window go stale, and the
	// replacement's catch-up pulls everything s0 committed meanwhile (a
	// real peer transfer, not an empty diff of two in-sync replicas).
	cfg := Config{
		Clients: 16, Txns: 600, Mix: workload.Balanced(), Seed: 9,
		Servers: 2, ObjectsPerServer: 2, Replication: 2,
		ProbeStaleness: true, Certify: true,
		Nemesis: &Nemesis{Schedule: []sim.Fault{
			{At: 15_000, Kind: sim.FaultCrash, Proc: "s1"},
			{At: 60_000, Kind: sim.FaultReplace, Proc: "s1"},
			{At: 110_000, Kind: sim.FaultCrash, Proc: "s1"},
			{At: 155_000, Kind: sim.FaultReplace, Proc: "s1"},
		}},
	}
	cfg.defaults()
	replicas := make(map[string][]sim.ProcessID)
	for i := 0; i < 4; i++ {
		replicas[fmt.Sprintf("X%d", i)] = []sim.ProcessID{"s0", "s1"}
	}
	d := protocol.Deploy(cure.New(), protocol.Config{
		Place:   protocol.NewPlacement(replicas),
		Clients: cfg.Clients,
		Seed:    cfg.Seed,
	})
	d.Kernel.SetTraceCap(-1)
	d.Kernel.SetPayloadRetention(false)
	if err := d.InitAll(400_000); err != nil {
		t.Fatal(err)
	}
	rep, err := RunOn(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete != 0 {
		t.Fatalf("%d transactions incomplete after the replacements caught up", rep.Incomplete)
	}
	if rep.Nemesis == nil || rep.Nemesis.Replacements == 0 {
		t.Fatalf("no replacement applied: %+v", rep.Nemesis)
	}
	if rep.Nemesis.PeerSyncedVersions == 0 {
		t.Fatalf("replicated placement transferred nothing from the live replica: %+v", rep.Nemesis)
	}
	st := rep.Staleness
	if st == nil || st.Probes == 0 {
		t.Fatalf("no staleness probes ran: %+v", st)
	}
	if st.FaultedProbes == 0 {
		t.Fatalf("no probe sampled inside a replacement window: %+v", st)
	}
	if st.FaultedStale+st.FaultedIncomplete == 0 {
		t.Fatalf("probes inside a replacement window observed no staleness: %+v", st)
	}
	// Recovery: once every replacement has caught up, probes must not be
	// uniformly stale — the adopted state serves reads again.
	cleanProbes := st.Probes - st.FaultedProbes
	cleanStale := st.Stale - st.FaultedStale
	if cleanProbes > 0 && cleanStale >= cleanProbes {
		t.Fatalf("staleness did not recover after catch-up: %d/%d clean probes stale", cleanStale, cleanProbes)
	}
}

// TestReconfigValidation pins the configuration refusals for the new
// schedule kinds.
func TestReconfigValidation(t *testing.T) {
	base := Config{Clients: 2, Txns: 8, Seed: 1}
	bad := []*Nemesis{
		{Schedule: []sim.Fault{{Kind: sim.FaultReplace, Proc: "c0"}}},                        // clients are not replace targets
		{Schedule: []sim.Fault{{Kind: sim.FaultRestore, From: []sim.ProcessID{"s0", "c1"}}}}, // restore set must be servers
		{Replaces: -1},
		{Restores: -1},
	}
	for i, n := range bad {
		cfg := base
		cfg.Nemesis = n
		if _, err := Run(cops.New(), cfg); err == nil {
			t.Errorf("bad nemesis %d accepted", i)
		}
	}
	// A bare restore fills in the whole server set.
	cfg := base
	cfg.Txns = 16
	cfg.Nemesis = &Nemesis{Schedule: []sim.Fault{{At: 4_000, Kind: sim.FaultRestore}}}
	rep, err := Run(cops.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nemesis.Restores != 1 || rep.Nemesis.SyncedVersions == 0 {
		t.Fatalf("bare restore did not rebuild the cluster: %+v", rep.Nemesis)
	}
}

// FuzzReconfigSchedule drives arbitrary interleavings of crash, cut,
// replace and restore through a small cops run: whatever the instants,
// targets and loss flags, the run must return (no deadlock), kernel
// message conservation must hold (nextID == delivered + in-flight +
// lost), the schedule must thread through — inserted companion restarts
// included — and the ride-along session verdict must agree with a batch
// re-solve of the surviving history.
func FuzzReconfigSchedule(f *testing.F) {
	f.Add(int64(1), uint16(4000), uint16(9000), uint16(20000), uint16(40000), uint8(0), false)
	f.Add(int64(2), uint16(100), uint16(100), uint16(100), uint16(100), uint8(1), true)
	f.Add(int64(3), uint16(60000), uint16(30000), uint16(65535), uint16(1), uint8(7), true)
	f.Add(int64(4), uint16(0), uint16(0), uint16(1), uint16(2), uint8(2), false)
	f.Fuzz(func(t *testing.T, seed int64, crashAt, cutAt, replaceAt, restoreAt uint16, target uint8, lose bool) {
		srv := sim.ProcessID([]string{"s0", "s1"}[int(target)%2])
		other := sim.ProcessID([]string{"s1", "s0"}[int(target)%2])
		schedule := []sim.Fault{
			{At: sim.Time(crashAt), Kind: sim.FaultCrash, Proc: srv, Lose: lose},
			{At: sim.Time(crashAt) + 5_000, Kind: sim.FaultRestart, Proc: srv},
			{At: sim.Time(cutAt), Kind: sim.FaultCut,
				From: []sim.ProcessID{"s0", "c0"}, To: []sim.ProcessID{"s1", "c1"}},
			{At: sim.Time(cutAt) + 5_000, Kind: sim.FaultHeal,
				From: []sim.ProcessID{"s0", "c0"}, To: []sim.ProcessID{"s1", "c1"}},
			{At: sim.Time(replaceAt), Kind: sim.FaultReplace, Proc: other, Lose: lose},
			{At: sim.Time(restoreAt), Kind: sim.FaultRestore},
		}
		cfg := Config{
			Clients: 2, Txns: 16, Mix: workload.Balanced(), Seed: seed,
			Servers: 2, ObjectsPerServer: 2,
			RecordHistory: true, Certify: true,
			Nemesis: &Nemesis{Schedule: schedule},
		}
		cfg.defaults()
		d, err := deploy(cops.New(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunOn(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Kernel.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		if rep.Nemesis == nil || rep.Nemesis.Scheduled < len(schedule) {
			t.Fatalf("schedule not threaded: %+v", rep.Nemesis)
		}
		if rep.History.Len() <= history.MaxTxns {
			batch := history.CheckBatch(rep.History, rep.CertLevel)
			if batch.OK != rep.Cert.OK {
				t.Fatalf("session verdict %v disagrees with batch re-solve %v", rep.Cert.OK, batch.OK)
			}
		}
	})
}

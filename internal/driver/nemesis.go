package driver

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Nemesis schedules deterministic fault injection into a load run: server
// crash/restart cycles, directed link partitions, replica replacements
// and coordinated cluster restores applied at fixed virtual instants. The schedule is a pure function of the run seed and
// this configuration — never of the worker count or the engine — so a
// faulted run replays byte-for-byte under every stepping mode, and
// ride-along certification keeps working across the faults (a violation
// exposed by a fault is pinned by Report.Cert.FirstViolation like any
// other).
//
// Faults apply between engine runs, when every pending inbox and arrival
// lives in the kernel; under sharded engines that quantizes fault
// instants to window boundaries, deterministically per engine.
type Nemesis struct {
	// Crashes is the number of crash→restart cycles to schedule. Targets
	// rotate pseudo-randomly (seeded) over the servers; clients are never
	// crashed (the driver holds direct references to them).
	Crashes int
	// Lose selects volatile-state loss for the scheduled crashes: the
	// target's income buffer is discarded at crash time and the process is
	// rebuilt by its recovery hook at restart (factory-fresh unless the
	// protocol implements sim.Recoverable). False models persistence —
	// state and inbox survive, making the outage indistinguishable from a
	// long network delay.
	Lose bool
	// Partitions is the number of partition→heal cycles. Each cut splits
	// the deployment into two halves (by site on a multi-site topology,
	// by trailing-index parity otherwise) and severs every link between
	// them, both directions.
	Partitions int
	// ServersOnly restricts partition groups to the servers: client↔server
	// links stay up, only server↔server replication/gossip traffic is cut.
	// This is the staleness scenario — reads still complete, but return
	// un-replicated values.
	ServersOnly bool
	// Replaces is the number of replica-replacement cycles: a server is
	// killed and a fresh process adopts its ID-space and shard, re-syncs
	// from the durable image and live peers (protocol.Deployment's
	// AdoptShard hook), and starts serving only once caught up — the
	// driver schedules the companion restart a deterministic sync
	// duration (syncBase + syncPerVersion × versions adopted) after the
	// replacement. Targets rotate pseudo-randomly (seeded) over the
	// servers, like Crashes. Lose selects disk loss: the replacement owns
	// only what live peers transfer.
	Replaces int
	// Restores is the number of coordinated whole-cluster restore cycles:
	// every server stops together, each rebuilds from its latest durable
	// snapshot, and the cluster comes back as one at a deterministic
	// restore duration derived from the total version count. Lose wipes
	// the snapshots — total data loss, which certification must catch.
	Restores int
	// Start is the virtual instant (relative to the measured run start) of
	// the first fault cycle; Period the spacing between cycle starts;
	// Duration the downtime of each cycle (crash→restart, cut→heal).
	// Within cycle i, crashes fire at Start+i·Period, replacements at
	// Start+Period/4+i·Period, partitions at Start+Period/2+i·Period and
	// restores at Start+3·Period/4+i·Period, so combined schedules
	// interleave instead of colliding. Zero values default to
	// Start=4000µs, Period=30000µs, Duration=8000µs.
	Start    sim.Time
	Period   sim.Time
	Duration sim.Time
	// Schedule, when non-empty, is an explicit fault list that replaces
	// the generated one entirely (Crashes/Partitions/Replaces/Restores
	// and the timing knobs are ignored). At instants are relative to the
	// measured run start. Crash/restart/replace targets must be servers;
	// a restore with an empty From is filled with all servers.
	Schedule []sim.Fault
}

// Deterministic catch-up cost model: a replacement (or restored cluster)
// comes back syncBase + syncPerVersion × (versions adopted) after the
// replace/restore instant. Virtual microseconds, part of the schedule —
// identical at any worker count — and coarse enough that a mid-run
// replacement is an outage an order of magnitude above the latency
// ceiling, matching the other nemesis durations.
const (
	syncBase       sim.Time = 2_000
	syncPerVersion sim.Time = 25
)

func (n *Nemesis) defaults() {
	if n.Start <= 0 {
		n.Start = 4_000
	}
	if n.Period <= 0 {
		n.Period = 30_000
	}
	if n.Duration <= 0 {
		n.Duration = 8_000
	}
}

// build validates the configuration against the deployment and returns
// the armed fault schedule: sorted by instant, At made absolute by adding
// the run-start time.
func (n *Nemesis) build(d *protocol.Deployment, seed int64, start sim.Time) ([]sim.Fault, error) {
	n.defaults()
	servers := d.Place.Servers()
	isServer := make(map[sim.ProcessID]bool, len(servers))
	for _, s := range servers {
		isServer[s] = true
	}
	var faults []sim.Fault
	if len(n.Schedule) > 0 {
		faults = append(faults, n.Schedule...)
		for i, f := range faults {
			switch f.Kind {
			case sim.FaultCrash, sim.FaultRestart:
				if !isServer[f.Proc] {
					return nil, fmt.Errorf("driver: nemesis %s targets %q: crash/restart targets must be servers", f.Kind, f.Proc)
				}
			case sim.FaultCut, sim.FaultHeal:
				if len(f.From) == 0 || len(f.To) == 0 {
					return nil, fmt.Errorf("driver: nemesis %s with an empty partition group", f.Kind)
				}
			case sim.FaultReplace:
				if !isServer[f.Proc] {
					return nil, fmt.Errorf("driver: nemesis %s targets %q: replace targets must be servers", f.Kind, f.Proc)
				}
			case sim.FaultRestore:
				if len(f.From) == 0 {
					// A bare restore means the whole cluster.
					faults[i].From = append([]sim.ProcessID(nil), servers...)
					break
				}
				for _, pid := range f.From {
					if !isServer[pid] {
						return nil, fmt.Errorf("driver: nemesis restore includes %q: restore targets must be servers", pid)
					}
				}
			default:
				return nil, fmt.Errorf("driver: unknown fault kind %d", f.Kind)
			}
			if f.At < 0 {
				return nil, fmt.Errorf("driver: nemesis fault at negative instant %d", f.At)
			}
		}
	} else {
		if n.Crashes < 0 || n.Partitions < 0 || n.Replaces < 0 || n.Restores < 0 {
			return nil, fmt.Errorf("driver: negative nemesis cycle count")
		}
		// The schedule RNG is its own stream — never the kernel's — so a
		// fault-free run with the same seed is untouched byte-for-byte.
		rng := sim.NewRNG(seed*1_000_033 + 97)
		for i := 0; i < n.Crashes; i++ {
			at := n.Start + sim.Time(i)*n.Period
			target := servers[rng.Intn(len(servers))]
			faults = append(faults,
				sim.Fault{At: at, Kind: sim.FaultCrash, Proc: target, Lose: n.Lose},
				sim.Fault{At: at + n.Duration, Kind: sim.FaultRestart, Proc: target})
		}
		// Replacement and restore cycles are offset inside the period so
		// combined schedules (crash+replace, …) interleave rather than
		// collide; their companion restarts are data-dependent (the sync
		// duration scales with the versions adopted) and get inserted into
		// the armed schedule at apply time, not here.
		for i := 0; i < n.Replaces; i++ {
			at := n.Start + n.Period/4 + sim.Time(i)*n.Period
			target := servers[rng.Intn(len(servers))]
			faults = append(faults,
				sim.Fault{At: at, Kind: sim.FaultReplace, Proc: target, Lose: n.Lose})
		}
		for i := 0; i < n.Restores; i++ {
			at := n.Start + (3*n.Period)/4 + sim.Time(i)*n.Period
			faults = append(faults,
				sim.Fault{At: at, Kind: sim.FaultRestore, Lose: n.Lose,
					From: append([]sim.ProcessID(nil), servers...)})
		}
		if n.Partitions > 0 {
			a, b := n.groups(d)
			if len(a) == 0 || len(b) == 0 {
				return nil, fmt.Errorf("driver: nemesis partition needs two non-empty halves (got %d|%d)", len(a), len(b))
			}
			for i := 0; i < n.Partitions; i++ {
				at := n.Start + n.Period/2 + sim.Time(i)*n.Period
				faults = append(faults,
					sim.Fault{At: at, Kind: sim.FaultCut, From: a, To: b},
					sim.Fault{At: at + n.Duration, Kind: sim.FaultHeal, From: a, To: b})
			}
		}
	}
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].At < faults[j].At })
	for i := range faults {
		faults[i].At += start
	}
	return faults, nil
}

// groups returns the two partition halves: the sites split (site 0 vs the
// rest) when the deployment is multi-site, trailing-index parity
// otherwise. ServersOnly keeps clients out — only replication traffic is
// severed.
func (n *Nemesis) groups(d *protocol.Deployment) (a, b []sim.ProcessID) {
	var pool []sim.ProcessID
	pool = append(pool, d.Place.Servers()...)
	if !n.ServersOnly {
		pool = append(pool, d.Clients...)
	}
	if t := d.Topo; t != nil && t.Sites > 1 {
		for _, pid := range pool {
			if t.SiteOf(pid) == 0 {
				a = append(a, pid)
			} else {
				b = append(b, pid)
			}
		}
		return a, b
	}
	for i, pid := range pool {
		if i%2 == 0 {
			a = append(a, pid)
		} else {
			b = append(b, pid)
		}
	}
	return a, b
}

// NemesisReport is the fault-injection outcome of a run (Report.Nemesis,
// nil on fault-free runs so existing serializations stay byte-diffable).
type NemesisReport struct {
	// Scheduled counts the faults in the armed schedule; Applied the ones
	// that changed anything (re-crashing a downed server is a no-op).
	Scheduled int
	Applied   int
	// Per-kind applied counts.
	Crashes    int
	Restarts   int
	Partitions int
	Heals      int
	// LostMessages counts income-buffer messages discarded by lossy
	// crashes (0 under persistence: a partition or persistent crash never
	// loses anything — held traffic is delayed, not dropped).
	LostMessages int64
	// UnavailableTime is the total virtual time some fault was active
	// (overlapping fault windows merged), clipped to the measured run.
	UnavailableTime sim.Time
	// Recoveries counts heal/restart events after which a qualifying
	// commit was observed (for a restart: a commit touching the restarted
	// server; for a heal: any commit); RecoveryLatency summarizes the
	// virtual time from the heal instant to that first commit.
	// Unrecovered counts heal/restart events never followed by one — a
	// run that ended before recovering, or a protocol that cannot.
	Recoveries      int
	Unrecovered     int
	RecoveryLatency stats.Summary
	// FaultedCommitted / FaultedRejected / FaultedLatency cover the
	// transactions whose lifetime overlapped a fault window — the
	// degraded-phase slice of the run, reported separately so fault-free
	// latency is not polluted by outage stalls.
	FaultedCommitted int
	FaultedRejected  int
	FaultedLatency   stats.Summary
	// Reconfiguration accounting. Replacements/Restores count applied
	// replace/restore events; SyncedVersions the versions replacements
	// adopted in total (durable image + peer transfer), PeerSyncedVersions
	// the peer-transferred share; SyncTime the summed virtual catch-up
	// duration (replace/restore instant → companion restart).
	Replacements       int
	Restores           int
	SyncedVersions     int64
	PeerSyncedVersions int64
	SyncTime           sim.Time
	// SyncPhaseCommitted / SyncPhaseLatency are the replacement-phase
	// slice: commits whose lifetime overlapped a catch-up window — the
	// price user transactions pay for a reconfiguration in flight.
	SyncPhaseCommitted int
	SyncPhaseLatency   stats.Summary
}

// faultWindow is a closed maximal interval during which ≥1 fault was
// active.
type faultWindow struct{ from, to sim.Time }

// recoveryMark is an open recovery-latency measurement: set at a restart
// or heal instant, closed by the first qualifying commit.
type recoveryMark struct {
	at   sim.Time
	proc sim.ProcessID // restart target; "" for heals (any commit counts)
	done bool
}

// nemesisState threads the armed schedule through a run.
type nemesisState struct {
	faults []sim.Fault // armed: sorted, absolute instants
	idx    int
	rep    *NemesisReport

	active   int // open-fault depth; >0 means inside a fault window
	winStart sim.Time
	windows  []faultWindow
	marks    []recoveryMark
	recLat   *stats.Collector
	faulted  *stats.Collector
	// syncWins are the catch-up windows (replace/restore instant →
	// companion restart), known in full at apply time because the sync
	// duration is a deterministic function of the versions adopted.
	syncWins []faultWindow
	syncLat  *stats.Collector
}

func newNemesisState(faults []sim.Fault) *nemesisState {
	return &nemesisState{
		faults:  faults,
		rep:     &NemesisReport{Scheduled: len(faults)},
		recLat:  stats.NewCollector(),
		faulted: stats.NewCollector(),
		syncLat: stats.NewCollector(),
	}
}

// next returns the first unapplied fault, nil when the schedule is spent.
func (s *nemesisState) next() *sim.Fault {
	if s.idx < len(s.faults) {
		return &s.faults[s.idx]
	}
	return nil
}

// applyDue applies every fault scheduled at or before the kernel's
// current instant. The caller guarantees the engine is not running.
// Replace/restore events insert their companion restarts into the armed
// schedule here — the sync duration is a deterministic function of the
// versions the replacement adopted, so the inserted instants (and hence
// the whole schedule) stay identical at any worker count per engine.
func (s *nemesisState) applyDue(k *sim.Kernel) {
	for s.idx < len(s.faults) && s.faults[s.idx].At <= k.Now() {
		f := s.faults[s.idx]
		s.idx++
		switch f.Kind {
		case sim.FaultReplace:
			// A replace of an already-down server continues its open crash
			// window rather than opening a second one (the companion restart
			// closes exactly one).
			wasUp := !k.Down(f.Proc)
			st, ok := k.Replace(f.Proc, f.Lose)
			if !ok {
				continue
			}
			s.rep.Applied++
			s.rep.Replacements++
			if wasUp {
				s.open(k.Now())
			}
			s.scheduleSyncRestart(k, st, []sim.ProcessID{f.Proc})
		case sim.FaultRestore:
			// One window slot per server this restore takes down (servers
			// already down keep their open crash windows); the coordinated
			// restart closes them all at the same instant.
			wasUp := 0
			for _, pid := range f.From {
				if !k.Down(pid) {
					wasUp++
				}
			}
			st, done := k.Restore(f.From, f.Lose)
			if done == 0 {
				continue
			}
			s.rep.Applied++
			s.rep.Restores++
			for i := 0; i < wasUp; i++ {
				s.open(k.Now())
			}
			up := make([]sim.ProcessID, 0, done)
			for _, pid := range f.From {
				if k.Down(pid) {
					up = append(up, pid)
				}
			}
			s.scheduleSyncRestart(k, st, up)
		default:
			if !k.ApplyFault(f) {
				continue
			}
			s.rep.Applied++
			switch f.Kind {
			case sim.FaultCrash:
				s.rep.Crashes++
				s.open(k.Now())
			case sim.FaultRestart:
				s.rep.Restarts++
				s.close(k.Now())
				s.marks = append(s.marks, recoveryMark{at: k.Now(), proc: f.Proc})
			case sim.FaultCut:
				s.rep.Partitions++
				s.open(k.Now())
			case sim.FaultHeal:
				s.rep.Heals++
				s.close(k.Now())
				s.marks = append(s.marks, recoveryMark{at: k.Now()})
			}
		}
	}
}

// scheduleSyncRestart accounts one replace/restore catch-up and inserts
// the companion restarts that bring the replacement(s) up once caught up:
// at now + syncBase + syncPerVersion × versions adopted. The inserted
// restarts become part of the armed schedule (Scheduled is bumped so the
// Applied == Scheduled invariant is preserved) and flow through the
// ordinary FaultRestart accounting — window close, recovery mark.
func (s *nemesisState) scheduleSyncRestart(k *sim.Kernel, st sim.SyncStats, procs []sim.ProcessID) {
	dur := syncBase + syncPerVersion*sim.Time(st.Total())
	s.rep.SyncedVersions += int64(st.Total())
	s.rep.PeerSyncedVersions += int64(st.Peer)
	s.rep.SyncTime += dur
	at := k.Now() + dur
	s.syncWins = append(s.syncWins, faultWindow{from: k.Now(), to: at})
	for _, pid := range procs {
		s.insert(sim.Fault{At: at, Kind: sim.FaultRestart, Proc: pid})
	}
}

// insert adds a fault to the armed schedule at its sorted position (at or
// after the current cursor — inserted faults are never in the past).
func (s *nemesisState) insert(f sim.Fault) {
	i := s.idx
	for i < len(s.faults) && s.faults[i].At <= f.At {
		i++
	}
	s.faults = append(s.faults, sim.Fault{})
	copy(s.faults[i+1:], s.faults[i:])
	s.faults[i] = f
	s.rep.Scheduled++
}

func (s *nemesisState) open(t sim.Time) {
	if s.active == 0 {
		s.winStart = t
	}
	s.active++
}

func (s *nemesisState) close(t sim.Time) {
	s.active--
	if s.active == 0 {
		s.windows = append(s.windows, faultWindow{from: s.winStart, to: t})
	}
}

// overlaps reports whether [inv, comp] (virtual µs) intersects any fault
// window, closed or still open.
func (s *nemesisState) overlaps(inv, comp int64) bool {
	for _, w := range s.windows {
		if inv <= int64(w.to) && comp >= int64(w.from) {
			return true
		}
	}
	return s.active > 0 && comp >= int64(s.winStart)
}

// overlapsSync reports whether [inv, comp] intersects a catch-up window
// (replace/restore instant → companion restart). Catch-up windows are
// closed at creation — the sync duration is known at apply time — so no
// open-window case exists here.
func (s *nemesisState) overlapsSync(inv, comp int64) bool {
	for _, w := range s.syncWins {
		if inv <= int64(w.to) && comp >= int64(w.from) {
			return true
		}
	}
	return false
}

// observe accounts one collected result: degraded-phase tallies for
// transactions whose lifetime crossed a fault window, and recovery-mark
// closure for the first qualifying commit after each restart/heal.
func (s *nemesisState) observe(res *model.Result, place *protocol.Placement) {
	if !res.OK() {
		if s.overlaps(res.Invoked, res.Completed) {
			s.rep.FaultedRejected++
		}
		return
	}
	if s.overlaps(res.Invoked, res.Completed) {
		s.rep.FaultedCommitted++
		s.faulted.Add(res.Completed - res.Invoked)
	}
	if s.overlapsSync(res.Invoked, res.Completed) {
		s.rep.SyncPhaseCommitted++
		s.syncLat.Add(res.Completed - res.Invoked)
	}
	for i := range s.marks {
		m := &s.marks[i]
		if m.done || res.Completed < int64(m.at) {
			continue
		}
		if m.proc != "" {
			touches := false
			for _, sid := range place.ServersFor(res.Txn.Objects()) {
				if sid == m.proc {
					touches = true
					break
				}
			}
			if !touches {
				continue
			}
		}
		m.done = true
		s.rep.Recoveries++
		s.recLat.Add(res.Completed - int64(m.at))
	}
}

// finish seals the report: the still-open window (an unhealed fault) is
// clipped to the run end, unavailability summed, unclosed recovery marks
// counted.
func (s *nemesisState) finish(k *sim.Kernel, runStart sim.Time) *NemesisReport {
	end := k.Now()
	if s.active > 0 {
		s.windows = append(s.windows, faultWindow{from: s.winStart, to: end})
		s.active = 0
	}
	for _, w := range s.windows {
		from, to := w.from, w.to
		if from < runStart {
			from = runStart
		}
		if to > end {
			to = end
		}
		if to > from {
			s.rep.UnavailableTime += to - from
		}
	}
	for _, m := range s.marks {
		if !m.done {
			s.rep.Unrecovered++
		}
	}
	s.rep.RecoveryLatency = s.recLat.Summarize()
	s.rep.FaultedLatency = s.faulted.Summarize()
	s.rep.SyncPhaseLatency = s.syncLat.Summarize()
	s.rep.LostMessages = k.LostInboxMessages()
	return s.rep
}

// engineRun is the fault-aware engine dispatch both load loops go
// through: it runs the engine in segments bounded by the next scheduled
// fault instant (and the open-loop injection horizon, when set), applying
// due faults between segments — serially, with every pending inbox and
// arrival in the kernel, which is what keeps the faulted schedule a pure
// function of seed, partition and engine at any worker count. With no
// nemesis configured it degenerates to a single engine run at the
// injection horizon, untouched behaviour.
func (r *run) engineRun(stop func(*sim.Kernel) bool, budget int) int {
	if r.nem == nil {
		r.eng.setHorizon(r.injHorizon)
		return r.eng.run(stop, budget)
	}
	k := r.d.Kernel
	total := 0
	for {
		r.nem.applyDue(k)
		h := r.injHorizon
		if f := r.nem.next(); f != nil && (h == 0 || f.At < h) {
			h = f.At
		}
		r.eng.setHorizon(h)
		n := r.eng.run(stop, budget-total)
		total += n
		if total >= budget || (stop != nil && stop(k)) {
			return total
		}
		f := r.nem.next()
		if f == nil || (r.injHorizon != 0 && f.At >= r.injHorizon) {
			// Schedule spent (or the rest belongs to a later injection
			// segment): leave the engine at the caller's horizon.
			r.eng.setHorizon(r.injHorizon)
			return total
		}
		// The engine exhausted everything before the fault instant — jump
		// the clock there (the virtual-time leap over a dead system) and
		// apply it. Each pass through here consumes ≥1 fault, so the loop
		// terminates.
		if f.At > k.Now() {
			k.AdvanceTo(f.At)
		}
		r.nem.applyDue(k)
	}
}

package driver

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/protocols/cops"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestTopologyStripingKeepsShardsSingleSite: under a declared 2-site
// topology every shard must stay single-site — the lookahead engine's
// shard-pair bounds are the minimum link floor across the pair, so one
// stray cross-site client would collapse a cross-site shard pair's
// bound from CrossLo back to IntraLo and erase the separation.
func TestTopologyStripingKeepsShardsSingleSite(t *testing.T) {
	topo, err := protocol.TopologyByName("2site")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(cops.New(), Config{
		Clients: 9, Txns: 60, Mix: workload.ReadHeavy(), Seed: 3,
		Servers: 4, Workers: 1, Topology: topo,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Sharding
	if st == nil || st.Shards != 4 {
		t.Fatalf("sharding stats = %+v, want 4 shards", st)
	}
	// Servers anchor their shards; derive each shard's site from them.
	shardSite := map[int]int{}
	for pid, shard := range st.Partition {
		if pid[0] != 's' {
			continue
		}
		shardSite[shard] = topo.SiteOf(sim.ProcessID(pid))
	}
	if len(shardSite) != 4 {
		t.Fatalf("server shards = %d, want one per server", len(shardSite))
	}
	for pid, shard := range st.Partition {
		if got, want := topo.SiteOf(sim.ProcessID(pid)), shardSite[shard]; got != want {
			t.Fatalf("%s (site %d) landed on shard %d (site %d)", pid, got, shard, want)
		}
	}
}

// TestTopologyLookaheadBeatsBarrier is the tentpole's payoff, pinned at
// the driver level: on a 2-site cell — intra-site floors 20× tighter
// than cross-site — the per-link lookahead engine executes the same
// schedule in strictly fewer rounds than the barrier engine, which
// stays pinned to the global (intra-site) floor. Both runs must commit
// the same transactions: the engines trade rounds, never outcomes.
func TestTopologyLookaheadBeatsBarrier(t *testing.T) {
	topo, err := protocol.TopologyByName("2site")
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Clients: 8, Txns: 120, Mix: workload.ReadHeavy(), Seed: 42,
		Servers: 4, Workers: 1, Topology: topo,
	}
	la, err := Run(cops.New(), base)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := base
	bcfg.Barrier = true
	ba, err := Run(cops.New(), bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !la.Sharding.Lookahead || ba.Sharding.Lookahead {
		t.Fatal("engine selection wrong")
	}
	if la.Committed != base.Txns || ba.Committed != base.Txns {
		t.Fatalf("committed %d (lookahead) vs %d (barrier), want %d both",
			la.Committed, ba.Committed, base.Txns)
	}
	if la.Sharding.Rounds >= ba.Sharding.Rounds {
		t.Fatalf("lookahead rounds %d did not beat barrier rounds %d on the "+
			"2-site cell — the per-link floors are not reaching the engine",
			la.Sharding.Rounds, ba.Sharding.Rounds)
	}
	if la.Sharding.NullAdvances == 0 {
		t.Fatal("no null-message advances on a 2-site cell")
	}
}

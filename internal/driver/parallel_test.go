package driver

import (
	"encoding/json"
	"testing"

	"repro/internal/protocol"
	"repro/internal/protocols/cops"
	"repro/internal/protocols/cure"
	"repro/internal/protocols/spanner"
	"repro/internal/workload"
)

// reportFingerprint marshals a report plus its history with the
// wall-clock (the one nondeterministic field) and the Workers stat (the
// configuration echo under comparison) zeroed, so runs can be compared
// byte for byte.
func reportFingerprint(t *testing.T, rep *Report) string {
	t.Helper()
	cw, workers := rep.CertWall, 0
	rep.CertWall = 0
	if rep.Sharding != nil {
		workers = rep.Sharding.Workers
		rep.Sharding.Workers = 0
	}
	js, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	rep.CertWall = cw
	if rep.Sharding != nil {
		rep.Sharding.Workers = workers
	}
	out := string(js)
	if rep.History != nil {
		out += "\n" + rep.History.String()
	}
	return out
}

// TestShardedWorkersByteIdentical is the serial-equals-parallel contract
// of sharded stepping: for a fixed seed and shard partition, Workers is
// an execution knob, not a semantic one. Workers=1 executes the window
// schedule serially and is the differential oracle; Workers=2 and 4 must
// reproduce its report, history and ride-along certification verdict
// byte for byte, across three protocols in both load regimes.
func TestShardedWorkersByteIdentical(t *testing.T) {
	protos := []struct {
		name string
		mk   func() protocol.Protocol
	}{
		{"cops", func() protocol.Protocol { return cops.New() }},
		{"cure", func() protocol.Protocol { return cure.New() }},
		{"spanner", func() protocol.Protocol { return spanner.New() }},
	}
	modes := []struct {
		name string
		rate float64
	}{
		{"closed", 0},
		{"open", 800},
	}
	for _, p := range protos {
		for _, mode := range modes {
			t.Run(p.name+"-"+mode.name, func(t *testing.T) {
				base := Config{
					Clients: 8, Txns: 72, Mix: workload.Balanced(), Seed: 7,
					Servers: 4, ObjectsPerServer: 2,
					Rate:          mode.rate,
					RecordHistory: true, Certify: true,
				}
				runWith := func(workers int) (*Report, string) {
					cfg := base
					cfg.Workers = workers
					rep, err := Run(p.mk(), cfg)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if rep.Incomplete != 0 {
						t.Fatalf("workers=%d: %d transactions incomplete", workers, rep.Incomplete)
					}
					if rep.Committed == 0 {
						t.Fatalf("workers=%d: nothing committed", workers)
					}
					if rep.Sharding == nil || rep.Sharding.Shards != 4 {
						t.Fatalf("workers=%d: sharding stats missing or wrong: %+v", workers, rep.Sharding)
					}
					return rep, reportFingerprint(t, rep)
				}
				oracle, want := runWith(1)
				if oracle.Cert == nil {
					t.Fatal("ride-along certification did not run")
				}
				for _, workers := range []int{2, 4} {
					_, got := runWith(workers)
					diffLines(t, "sharded report", want, got)
				}
			})
		}
	}
}

// TestShardedRunsAreValidExecutions: a sharded schedule is a different
// member of the asynchronous model's schedule space, not a weaker one —
// causal protocols must still certify clean at their claimed level on
// sharded histories (the same sweep the ptest conformance suite runs
// serially).
func TestShardedRunsAreValidExecutions(t *testing.T) {
	for _, mk := range []func() protocol.Protocol{
		func() protocol.Protocol { return cops.New() },
		func() protocol.Protocol { return cure.New() },
	} {
		p := mk()
		rep, err := Run(p, Config{
			Clients: 8, Txns: 72, Mix: workload.Balanced(), Seed: 3,
			Servers: 2, ObjectsPerServer: 1,
			Workers: 2, RecordHistory: true, Certify: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Incomplete != 0 {
			t.Fatalf("%s: %d transactions incomplete", rep.Protocol, rep.Incomplete)
		}
		if rep.Cert == nil || !rep.Cert.OK {
			t.Fatalf("%s violates its claimed level under sharded stepping: %+v", rep.Protocol, rep.Cert)
		}
	}
}

// TestShardedConfigValidation pins the incompatible-knob refusals.
func TestShardedConfigValidation(t *testing.T) {
	if _, err := Run(cops.New(), Config{Txns: 4, Workers: 1, KeepTrace: true}); err == nil {
		t.Fatal("Workers+KeepTrace accepted")
	}
	if _, err := Run(cops.New(), Config{Txns: 4, Workers: 1, NoTimeLeap: true}); err == nil {
		t.Fatal("Workers+NoTimeLeap accepted")
	}
}

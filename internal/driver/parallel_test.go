package driver

import (
	"encoding/json"
	"testing"

	"repro/internal/protocol"
	"repro/internal/protocols/cops"
	"repro/internal/protocols/cure"
	"repro/internal/protocols/spanner"
	"repro/internal/workload"
)

// reportFingerprint marshals a report plus its history with the
// wall-clock (the one nondeterministic field) and the Workers stat (the
// configuration echo under comparison) zeroed, so runs can be compared
// byte for byte.
func reportFingerprint(t *testing.T, rep *Report) string {
	t.Helper()
	cw, workers := rep.CertWall, 0
	rep.CertWall = 0
	if rep.Sharding != nil {
		workers = rep.Sharding.Workers
		rep.Sharding.Workers = 0
	}
	js, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	rep.CertWall = cw
	if rep.Sharding != nil {
		rep.Sharding.Workers = workers
	}
	out := string(js)
	if rep.History != nil {
		out += "\n" + rep.History.String()
	}
	return out
}

// TestShardedWorkersByteIdentical is the serial-equals-parallel contract
// of sharded stepping: for a fixed seed, shard partition and engine,
// Workers is an execution knob, not a semantic one. Workers=1 executes
// the schedule serially and is the differential oracle; Workers=2, 4 and
// 8 must reproduce its report, history and ride-along certification
// verdict byte for byte, across three protocols in both load regimes on
// both the conservative-lookahead and the barrier engine.
func TestShardedWorkersByteIdentical(t *testing.T) {
	protos := []struct {
		name string
		mk   func() protocol.Protocol
	}{
		{"cops", func() protocol.Protocol { return cops.New() }},
		{"cure", func() protocol.Protocol { return cure.New() }},
		{"spanner", func() protocol.Protocol { return spanner.New() }},
	}
	modes := []struct {
		name string
		rate float64
	}{
		{"closed", 0},
		{"open", 800},
	}
	engines := []struct {
		name    string
		barrier bool
	}{
		{"lookahead", false},
		{"barrier", true},
	}
	for _, p := range protos {
		for _, mode := range modes {
			for _, eng := range engines {
				t.Run(p.name+"-"+mode.name+"-"+eng.name, func(t *testing.T) {
					base := Config{
						Clients: 8, Txns: 72, Mix: workload.Balanced(), Seed: 7,
						Servers: 4, ObjectsPerServer: 2,
						Rate:          mode.rate,
						Barrier:       eng.barrier,
						RecordHistory: true, Certify: true,
					}
					runWith := func(workers int) (*Report, string) {
						cfg := base
						cfg.Workers = workers
						rep, err := Run(p.mk(), cfg)
						if err != nil {
							t.Fatalf("workers=%d: %v", workers, err)
						}
						if rep.Incomplete != 0 {
							t.Fatalf("workers=%d: %d transactions incomplete", workers, rep.Incomplete)
						}
						if rep.Committed == 0 {
							t.Fatalf("workers=%d: nothing committed", workers)
						}
						if rep.Sharding == nil || rep.Sharding.Shards != 4 {
							t.Fatalf("workers=%d: sharding stats missing or wrong: %+v", workers, rep.Sharding)
						}
						if rep.Sharding.Lookahead == eng.barrier {
							t.Fatalf("workers=%d: wanted %s engine, stats say Lookahead=%v",
								workers, eng.name, rep.Sharding.Lookahead)
						}
						return rep, reportFingerprint(t, rep)
					}
					oracle, want := runWith(1)
					if oracle.Cert == nil {
						t.Fatal("ride-along certification did not run")
					}
					for _, workers := range []int{2, 4, 8} {
						_, got := runWith(workers)
						diffLines(t, "sharded report", want, got)
					}
				})
			}
		}
	}
}

// TestRebalanceDeterministic: the probe-run shard rebalance is a pure
// function of the seed and configuration — two rebalanced runs reproduce
// each other byte for byte, the measured partition is reported, and the
// rebalanced schedule is still worker-count-independent and certifies
// clean.
func TestRebalanceDeterministic(t *testing.T) {
	base := Config{
		Clients: 8, Txns: 72, Mix: workload.Balanced(), Seed: 7,
		Servers: 4, ObjectsPerServer: 2,
		Rebalance:     true,
		RecordHistory: true, Certify: true,
	}
	runWith := func(workers int) (*Report, string) {
		cfg := base
		cfg.Workers = workers
		rep, err := Run(cops.New(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Sharding == nil || !rep.Sharding.Rebalanced {
			t.Fatalf("workers=%d: rebalance did not happen: %+v", workers, rep.Sharding)
		}
		if len(rep.Sharding.Partition) == 0 {
			t.Fatalf("workers=%d: rebalanced partition not reported", workers)
		}
		if rep.Cert == nil || !rep.Cert.OK {
			t.Fatalf("workers=%d: rebalanced run does not certify: %+v", workers, rep.Cert)
		}
		return rep, reportFingerprint(t, rep)
	}
	_, want := runWith(1)
	_, again := runWith(1)
	diffLines(t, "rebalance repeat", want, again)
	for _, workers := range []int{2, 4} {
		_, got := runWith(workers)
		diffLines(t, "rebalanced report", want, got)
	}
}

// TestMidWindowRefillKeepsThroughput regression-pins the ROADMAP gap the
// mid-window refill closes: with completions re-arming their client
// inside the round, the default lookahead engine's closed-loop
// throughput must not read below the serial engine's at equal
// parameters. The barrier engine keeps a small residual gap — its
// shards restart every window at the merged global clock, delaying
// deliveries the lookahead engine's persistent per-shard clocks make on
// time — so it is only pinned to stay within 5%. (All three schedules
// are deterministic, so the comparisons are exact, not statistical.)
func TestMidWindowRefillKeepsThroughput(t *testing.T) {
	base := Config{
		Clients: 8, Txns: 200, Mix: workload.Balanced(), Seed: 7,
		Servers: 4, ObjectsPerServer: 2,
	}
	run := func(workers int, barrier bool) *Report {
		cfg := base
		cfg.Workers = workers
		cfg.Barrier = barrier
		rep, err := Run(cops.New(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Incomplete != 0 {
			t.Fatalf("workers=%d barrier=%v: %d incomplete", workers, barrier, rep.Incomplete)
		}
		return rep
	}
	serial := run(0, false)
	if la := run(1, false); la.Throughput < serial.Throughput {
		t.Errorf("lookahead closed-loop throughput %.1f reads below serial %.1f at equal parameters",
			la.Throughput, serial.Throughput)
	}
	if ba := run(1, true); ba.Throughput < 0.95*serial.Throughput {
		t.Errorf("barrier closed-loop throughput %.1f fell more than 5%% below serial %.1f",
			ba.Throughput, serial.Throughput)
	}
}

// TestShardedRunsAreValidExecutions: a sharded schedule is a different
// member of the asynchronous model's schedule space, not a weaker one —
// causal protocols must still certify clean at their claimed level on
// sharded histories (the same sweep the ptest conformance suite runs
// serially), under both the lookahead and the barrier engine.
func TestShardedRunsAreValidExecutions(t *testing.T) {
	for _, mk := range []func() protocol.Protocol{
		func() protocol.Protocol { return cops.New() },
		func() protocol.Protocol { return cure.New() },
	} {
		for _, barrier := range []bool{false, true} {
			p := mk()
			rep, err := Run(p, Config{
				Clients: 8, Txns: 72, Mix: workload.Balanced(), Seed: 3,
				Servers: 2, ObjectsPerServer: 1,
				Workers: 2, Barrier: barrier, RecordHistory: true, Certify: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Incomplete != 0 {
				t.Fatalf("%s (barrier=%v): %d transactions incomplete", rep.Protocol, barrier, rep.Incomplete)
			}
			if rep.Cert == nil || !rep.Cert.OK {
				t.Fatalf("%s (barrier=%v) violates its claimed level under sharded stepping: %+v",
					rep.Protocol, barrier, rep.Cert)
			}
		}
	}
}

// TestShardedConfigValidation pins the incompatible-knob refusals.
func TestShardedConfigValidation(t *testing.T) {
	if _, err := Run(cops.New(), Config{Txns: 4, Workers: 1, KeepTrace: true}); err == nil {
		t.Fatal("Workers+KeepTrace accepted")
	}
	if _, err := Run(cops.New(), Config{Txns: 4, Workers: 1, NoTimeLeap: true}); err == nil {
		t.Fatal("Workers+NoTimeLeap accepted")
	}
	if _, err := Run(cops.New(), Config{Txns: 4, Barrier: true}); err == nil {
		t.Fatal("Barrier without Workers accepted")
	}
	if _, err := Run(cops.New(), Config{Txns: 4, Rebalance: true}); err == nil {
		t.Fatal("Rebalance without Workers accepted")
	}
	reb := Config{Clients: 2, Txns: 4, Workers: 1, Rebalance: true}
	reb.defaults()
	d, err := deploy(cops.New(), reb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunOn(d, reb); err == nil {
		t.Fatal("RunOn with Rebalance accepted (needs the probe deployment only Run builds)")
	}
}

package driver

import (
	"strings"
	"testing"

	"repro/internal/history"
	"repro/internal/protocols/cops"
	"repro/internal/protocols/cure"
	"repro/internal/protocols/naivefast"
	"repro/internal/workload"
)

// TestRideAlongCertifiesClosedLoop: a clean protocol under closed-loop
// load certifies ride-along, and the session verdict agrees with the
// batch solver over the same recorded history.
func TestRideAlongCertifiesClosedLoop(t *testing.T) {
	rep, err := Run(cops.New(), Config{
		Clients: 8, Txns: 200, Mix: workload.Balanced(), Seed: 5,
		RecordHistory: true, Certify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cert == nil || rep.CertLevel != "causal" {
		t.Fatalf("certification missing: %+v", rep.Cert)
	}
	if !rep.Cert.OK {
		t.Fatalf("cops failed ride-along certification: %s", rep.Cert.Reason)
	}
	if rep.Cert.FirstViolation != -1 || rep.Cert.Appended != rep.Committed {
		t.Fatalf("clean run verdict malformed: %+v", rep.Cert)
	}
	if batch := history.CheckBatch(rep.History, rep.CertLevel); !batch.OK {
		t.Fatalf("batch disagrees with clean ride-along verdict: %s", batch.Reason)
	}
}

// TestRideAlongCertifiesOpenLoop: the ride-along session also rides the
// open-loop regime, where collection order interleaves across clients
// and reads routinely resolve before their writers are collected.
func TestRideAlongCertifiesOpenLoop(t *testing.T) {
	rep, err := Run(cure.New(), Config{
		Clients: 8, Txns: 160, Mix: workload.Balanced(), Seed: 3, Rate: 1000,
		RecordHistory: true, Certify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cert == nil || !rep.Cert.OK {
		t.Fatalf("cure failed open-loop ride-along certification: %+v", rep.Cert)
	}
	if batch := history.CheckBatch(rep.History, rep.CertLevel); batch.OK != rep.Cert.OK {
		t.Fatalf("open-loop session/batch disagreement: %v vs %v", rep.Cert.OK, batch.OK)
	}
}

// TestRideAlongFirstViolationPin pins the first-offending-commit report
// of a known violator: naivefast (the impossible fast design of Theorem
// 1) under the conformance sweep's configuration is refuted at append
// index 4 — the session seals after 5 commits of the 96-transaction run
// instead of checking the whole history after the fact. The pinned index
// is deterministic: same protocol, config and seed, same first offender.
func TestRideAlongFirstViolationPin(t *testing.T) {
	rep, err := Run(naivefast.New(), Config{
		Clients: 8, Txns: 96, Mix: workload.Balanced(), Seed: 2,
		Servers: 2, ObjectsPerServer: 1,
		RecordHistory: true, Certify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := rep.Cert
	if v.OK {
		t.Fatal("naivefast certified clean — the ride-along lost the theorem's victim")
	}
	const pinnedFirst = 4 // seed 2's first offending commit, txn c4/1
	if v.FirstViolation != pinnedFirst {
		t.Fatalf("first violation at append %d (%s), pinned %d: %s",
			v.FirstViolation, v.FirstViolationID, pinnedFirst, v.Reason)
	}
	if v.Appended != pinnedFirst+1 {
		t.Fatalf("session appended %d commits past the violation", v.Appended-pinnedFirst-1)
	}
	if len(v.WitnessPrefix) != pinnedFirst+1 || v.WitnessPrefix[pinnedFirst] != v.FirstViolationID {
		t.Fatalf("witness prefix malformed: %v", v.WitnessPrefix)
	}
	// Minimality: the prefix through the offender refutes under the batch
	// solver, and re-feeding the records before it raises no violation.
	// (The batch checker on the shorter prefix is no oracle here: it
	// calls a read whose writer has not been collected yet a dangling
	// read, where the session correctly parks it as pending.)
	if pv := history.CheckBatch(rep.History.Prefix(pinnedFirst+1), rep.CertLevel); pv.OK {
		t.Fatal("prefix through the first offending commit certifies clean")
	}
	s := history.NewSession(rep.History.Initials(), rep.CertLevel, pinnedFirst)
	for k, rec := range rep.History.Records()[:pinnedFirst] {
		if !s.Append(rec) {
			t.Fatalf("session violates at %d on re-feed, first violation was %d", k, pinnedFirst)
		}
	}
}

// TestCertifyRefusesPastCeiling: the driver must refuse up front rather
// than let a session capacity refusal masquerade as a violation, naming
// the shared ceiling constant.
func TestCertifyRefusesPastCeiling(t *testing.T) {
	_, err := Run(cops.New(), Config{
		Clients: 4, Txns: history.MaxTxns + 1, Certify: true,
	})
	if err == nil {
		t.Fatalf("run certified %d transactions past the ceiling", history.MaxTxns+1)
	}
	if !strings.Contains(err.Error(), "history.MaxTxns") {
		t.Fatalf("refusal does not name the shared ceiling constant: %v", err)
	}
}

package driver

import (
	"testing"

	"repro/internal/history"
	"repro/internal/protocols/cops"
	"repro/internal/protocols/cure"
	"repro/internal/protocols/naivefast"
	"repro/internal/workload"
)

// TestRideAlongCertifiesClosedLoop: a clean protocol under closed-loop
// load certifies ride-along, and the session verdict agrees with the
// batch solver over the same recorded history.
func TestRideAlongCertifiesClosedLoop(t *testing.T) {
	rep, err := Run(cops.New(), Config{
		Clients: 8, Txns: 200, Mix: workload.Balanced(), Seed: 5,
		RecordHistory: true, Certify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cert == nil || rep.CertLevel != "causal" {
		t.Fatalf("certification missing: %+v", rep.Cert)
	}
	if !rep.Cert.OK {
		t.Fatalf("cops failed ride-along certification: %s", rep.Cert.Reason)
	}
	if rep.Cert.FirstViolation != -1 || rep.Cert.Appended != rep.Committed {
		t.Fatalf("clean run verdict malformed: %+v", rep.Cert)
	}
	if batch := history.CheckBatch(rep.History, rep.CertLevel); !batch.OK {
		t.Fatalf("batch disagrees with clean ride-along verdict: %s", batch.Reason)
	}
}

// TestRideAlongCertifiesOpenLoop: the ride-along session also rides the
// open-loop regime, where collection order interleaves across clients
// and reads routinely resolve before their writers are collected.
func TestRideAlongCertifiesOpenLoop(t *testing.T) {
	rep, err := Run(cure.New(), Config{
		Clients: 8, Txns: 160, Mix: workload.Balanced(), Seed: 3, Rate: 1000,
		RecordHistory: true, Certify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cert == nil || !rep.Cert.OK {
		t.Fatalf("cure failed open-loop ride-along certification: %+v", rep.Cert)
	}
	if batch := history.CheckBatch(rep.History, rep.CertLevel); batch.OK != rep.Cert.OK {
		t.Fatalf("open-loop session/batch disagreement: %v vs %v", rep.Cert.OK, batch.OK)
	}
}

// TestRideAlongFirstViolationPin pins the first-offending-commit report
// of a known violator: naivefast (the impossible fast design of Theorem
// 1) under the conformance sweep's configuration is refuted at append
// index 4 — the session seals after 5 commits of the 96-transaction run
// instead of checking the whole history after the fact. The pinned index
// is deterministic: same protocol, config and seed, same first offender.
func TestRideAlongFirstViolationPin(t *testing.T) {
	rep, err := Run(naivefast.New(), Config{
		Clients: 8, Txns: 96, Mix: workload.Balanced(), Seed: 2,
		Servers: 2, ObjectsPerServer: 1,
		RecordHistory: true, Certify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := rep.Cert
	if v.OK {
		t.Fatal("naivefast certified clean — the ride-along lost the theorem's victim")
	}
	const pinnedFirst = 4 // seed 2's first offending commit, txn c4/1
	if v.FirstViolation != pinnedFirst {
		t.Fatalf("first violation at append %d (%s), pinned %d: %s",
			v.FirstViolation, v.FirstViolationID, pinnedFirst, v.Reason)
	}
	if v.Appended != pinnedFirst+1 {
		t.Fatalf("session appended %d commits past the violation", v.Appended-pinnedFirst-1)
	}
	if len(v.WitnessPrefix) != pinnedFirst+1 || v.WitnessPrefix[pinnedFirst] != v.FirstViolationID {
		t.Fatalf("witness prefix malformed: %v", v.WitnessPrefix)
	}
	// Minimality: the prefix through the offender refutes under the batch
	// solver, and re-feeding the records before it raises no violation.
	// (The batch checker on the shorter prefix is no oracle here: it
	// calls a read whose writer has not been collected yet a dangling
	// read, where the session correctly parks it as pending.)
	if pv := history.CheckBatch(rep.History.Prefix(pinnedFirst+1), rep.CertLevel); pv.OK {
		t.Fatal("prefix through the first offending commit certifies clean")
	}
	s := history.NewSession(rep.History.Initials(), rep.CertLevel, pinnedFirst)
	for k, rec := range rep.History.Records()[:pinnedFirst] {
		if !s.Append(rec) {
			t.Fatalf("session violates at %d on re-feed, first violation was %d", k, pinnedFirst)
		}
	}
}

// TestCertifyPastBatchCeiling: the streaming ride-along session lifts
// the old up-front refusal at history.MaxTxns — a run past the batch
// ceiling certifies exactly, with committed prefixes of the closure
// retired as the run proceeds instead of the driver erroring out.
func TestCertifyPastBatchCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Accepting direction. The cell dilutes contention (32 objects,
	// read-heavy mix) so the causal session needs no solver fallbacks:
	// at the causal level the base order is too sparse for eviction to
	// progress (the documented exactness limit — no real-time edges, so
	// a future constraint may still order a live transaction before any
	// unordered old one), and an unretired 4k window with resolves costs
	// minutes, not seconds.
	rep, err := Run(cops.New(), Config{
		Clients: 8, Txns: history.MaxTxns + 64, Mix: workload.ReadHeavy(), Seed: 5,
		Servers: 4, ObjectsPerServer: 8,
		Certify: true,
	})
	if err != nil {
		t.Fatalf("driver refused a certified run past the batch ceiling: %v", err)
	}
	if rep.Cert == nil || !rep.Cert.OK {
		t.Fatalf("cops failed certification past the ceiling: %+v", rep.Cert)
	}
	if rep.Cert.Appended != rep.Committed || rep.Cert.Appended <= history.MaxTxns {
		t.Fatalf("session appended %d of %d commits (ceiling %d)",
			rep.Cert.Appended, rep.Committed, history.MaxTxns)
	}
	if rep.Cert.FirstViolation != -1 {
		t.Fatalf("clean run pins a violation: %+v", rep.Cert)
	}
	if rep.Cert.PeakWindow == 0 || rep.Cert.PeakWindow > rep.Cert.Appended {
		t.Fatalf("peak window %d out of range for %d appends", rep.Cert.PeakWindow, rep.Cert.Appended)
	}

	// Refuting direction: a violator past the ceiling is still caught
	// and pinned — the session seals at the first offending commit, so
	// the cell stays cheap no matter how large Txns is.
	bad, err := Run(naivefast.New(), Config{
		Clients: 8, Txns: history.MaxTxns + 64, Mix: workload.Balanced(), Seed: 2,
		Servers: 2, ObjectsPerServer: 1,
		Certify: true,
	})
	if err != nil {
		t.Fatalf("driver refused the violating past-ceiling run: %v", err)
	}
	if bad.Cert.OK {
		t.Fatal("naivefast certified clean past the ceiling")
	}
	if bad.Cert.FirstViolation < 0 || bad.Cert.FirstViolation >= history.MaxTxns {
		t.Fatalf("violation not pinned early: %+v", bad.Cert)
	}
}

// TestStalenessProbes: with ProbeStaleness set, committed writes are
// sampled through a frozen reserved reader; the tallies are bounded by
// the sampling cap, internally consistent, and — because probes run on
// kernel snapshots — the measured run itself is unchanged and the
// counts deterministic across repeats.
func TestStalenessProbes(t *testing.T) {
	cfg := Config{
		Clients: 8, Txns: 200, Mix: workload.Balanced(), Seed: 5,
		ProbeStaleness: true,
	}
	rep, err := Run(cops.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Staleness
	if st == nil || st.Probes == 0 {
		t.Fatalf("no staleness probes ran: %+v", st)
	}
	if st.Probes > probeCap {
		t.Fatalf("probes %d exceed the cap %d", st.Probes, probeCap)
	}
	if st.Stale > st.Probes || st.Incomplete > st.Probes {
		t.Fatalf("tallies exceed probe count: %+v", st)
	}

	// The probes must not perturb the measured run: same run without
	// probing, same schedule.
	plain := cfg
	plain.ProbeStaleness = false
	rep2, err := Run(cops.New(), plain)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Committed != rep.Committed || rep2.Events != rep.Events || rep2.Duration != rep.Duration {
		t.Fatalf("probing changed the run: committed %d/%d events %d/%d duration %d/%d",
			rep.Committed, rep2.Committed, rep.Events, rep2.Events, rep.Duration, rep2.Duration)
	}

	// And the tallies themselves are deterministic.
	rep3, err := Run(cops.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *rep3.Staleness != *st {
		t.Fatalf("staleness tallies nondeterministic: %+v vs %+v", st, rep3.Staleness)
	}
}

package driver

import (
	"testing"

	"repro/internal/protocols/cops"
	"repro/internal/protocols/spanner"
	"repro/internal/workload"
)

func TestOpenLoopRunCompletes(t *testing.T) {
	rep, err := Run(cops.New(), Config{
		Clients: 4, Txns: 120, Mix: workload.ReadHeavy(), Seed: 5, Rate: 800,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Issued != 120 {
		t.Fatalf("issued = %d, want 120", rep.Issued)
	}
	if rep.Incomplete != 0 {
		t.Fatalf("incomplete = %d, want 0", rep.Incomplete)
	}
	if rep.Committed+rep.Rejected != rep.Issued {
		t.Fatalf("committed %d + rejected %d != issued %d", rep.Committed, rep.Rejected, rep.Issued)
	}
	if rep.OfferedRate != 800 {
		t.Fatalf("offered rate = %f", rep.OfferedRate)
	}
	if rep.QueueDelay.N != rep.Committed || rep.Service.N != rep.Committed {
		t.Fatalf("queue/service samples = %d/%d, committed = %d",
			rep.QueueDelay.N, rep.Service.N, rep.Committed)
	}
	if rep.InFlight.N != 120 {
		t.Fatalf("in-flight samples = %d, want one per injection", rep.InFlight.N)
	}
	// End-to-end latency decomposes into queueing plus service.
	if rep.Latency.Mean < rep.Service.Mean {
		t.Fatalf("end-to-end mean %.1f below service mean %.1f", rep.Latency.Mean, rep.Service.Mean)
	}
	if rep.QueueDelay.Min < 0 {
		t.Fatalf("negative queueing delay: %+v", rep.QueueDelay)
	}
}

// TestOpenLoopLightLoadHasNoQueueing: at a rate far below capacity each
// transaction finds an idle client, so queueing delay is (near) zero and
// end-to-end latency matches service latency.
func TestOpenLoopLightLoadHasNoQueueing(t *testing.T) {
	rep, err := Run(cops.New(), Config{
		Clients: 4, Txns: 60, Mix: workload.ReadHeavy(), Seed: 9, Rate: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete != 0 {
		t.Fatalf("incomplete = %d", rep.Incomplete)
	}
	if rep.QueueDelay.P50 > 10 {
		t.Fatalf("queueing at light load: p50 = %dµs", rep.QueueDelay.P50)
	}
	if rep.InFlight.Max > 4 {
		t.Fatalf("in-flight depth %d at 50 txn/s over 4 clients", rep.InFlight.Max)
	}
}

// TestOpenLoopOverloadQueues: past saturation the offered load outruns
// completions, so queueing delay dominates service latency and the
// in-flight depth grows with the run.
func TestOpenLoopOverloadQueues(t *testing.T) {
	rep, err := Run(cops.New(), Config{
		Clients: 2, Txns: 150, Mix: workload.ReadHeavy(), Seed: 13, Rate: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete != 0 {
		t.Fatalf("incomplete = %d (drain did not finish)", rep.Incomplete)
	}
	if rep.QueueDelay.P50 <= rep.Service.P50 {
		t.Fatalf("overload but queueing p50 (%d) ≤ service p50 (%d)",
			rep.QueueDelay.P50, rep.Service.P50)
	}
	if rep.InFlight.Max < 10 {
		t.Fatalf("in-flight max = %d under 10× overload", rep.InFlight.Max)
	}
	// Achieved throughput saturates well below the offered rate.
	if rep.Throughput > rep.OfferedRate/2 {
		t.Fatalf("achieved %.0f txn/s at offered %.0f — not saturated?", rep.Throughput, rep.OfferedRate)
	}
}

func TestOpenLoopDeterministicArrivals(t *testing.T) {
	rep, err := Run(cops.New(), Config{
		Clients: 2, Txns: 40, Mix: workload.ReadHeavy(), Seed: 3,
		Rate: 500, DeterministicArrivals: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Committed == 0 || rep.Incomplete != 0 {
		t.Fatalf("run broken: %+v", rep)
	}
}

// TestTimeLeapCutsEventsAtLowRate is the acceptance criterion for the
// scheduler time-leap: an open-loop spanner run at ~10% of saturated
// throughput must not spin parked-server Ready steps — the event count
// per transaction drops by at least 10× against the pre-leap scheduler.
func TestTimeLeapCutsEventsAtLowRate(t *testing.T) {
	run := func(noLeap bool) *Report {
		rep, err := Run(spanner.New(), Config{
			Clients: 2, Txns: 30, Mix: workload.ReadHeavy(), Seed: 17,
			Rate: 50, NoTimeLeap: noLeap,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Incomplete != 0 {
			t.Fatalf("incomplete = %d", rep.Incomplete)
		}
		return rep
	}
	leap := run(false)
	spin := run(true)
	if leap.Committed != spin.Committed {
		t.Fatalf("leap committed %d, spin committed %d", leap.Committed, spin.Committed)
	}
	perTxnLeap := float64(leap.Events) / float64(leap.Committed)
	perTxnSpin := float64(spin.Events) / float64(spin.Committed)
	if perTxnLeap*10 > perTxnSpin {
		t.Fatalf("time-leap saved too little: %.0f events/txn with leap vs %.0f spinning",
			perTxnLeap, perTxnSpin)
	}
}

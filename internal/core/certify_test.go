package core

import (
	"strings"
	"testing"

	"repro/internal/history"
	"repro/internal/workload"
)

// TestThroughputCertifyRideAlong: a certified throughput cell reports
// the agreed verdict with both wall-clocks, and a violator cell pins the
// first offending commit.
func TestThroughputCertifyRideAlong(t *testing.T) {
	clean, err := MeasureThroughputWith(ByName("cops"), workload.Balanced(), 8, 200, 2,
		ThroughputOptions{Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Cert.OK || clean.Cert.Level != "causal" || clean.Cert.Txns != 200 {
		t.Fatalf("cops certification malformed: %+v", clean.Cert)
	}
	if clean.Cert.FirstViolation != -1 {
		t.Fatalf("clean cell pins a first violation: %+v", clean.Cert)
	}

	bad, err := MeasureThroughputWith(ByName("naivefast"), workload.Balanced(), 8, 96, 2,
		ThroughputOptions{ObjectsPerServer: 1, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Cert.OK {
		t.Fatal("naivefast certified clean")
	}
	if bad.Cert.FirstViolation < 0 || bad.Cert.FirstViolation >= bad.Committed {
		t.Fatalf("violator cell must pin the first offending commit: %+v", bad.Cert)
	}
}

// TestThroughputCertifyRefusesPastCeiling: the refusal must fire before
// any run and name the shared ceiling constant.
func TestThroughputCertifyRefusesPastCeiling(t *testing.T) {
	_, err := MeasureThroughputWith(ByName("cops"), workload.Balanced(), 4, history.MaxTxns+1, 1,
		ThroughputOptions{Certify: true})
	if err == nil || !strings.Contains(err.Error(), "history.MaxTxns") {
		t.Fatalf("want a refusal naming history.MaxTxns, got %v", err)
	}
}

// TestLoadCurveCertify: with CurveOptions.Certify every open-loop point
// carries its own ride-along verdict, so certification no longer caps
// the curve's transaction count to a reduced batch window.
func TestLoadCurveCertify(t *testing.T) {
	curve, err := MeasureLoadCurve(ByName("cure"), workload.Balanced(), 4, CurveOptions{
		Clients: 4, Txns: 120, Fractions: []float64{0.25, 0.9}, Certify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(curve.Points))
	}
	for _, pt := range curve.Points {
		if pt.Cert.Level != "causal" || !pt.Cert.OK || pt.Cert.Txns != pt.Committed {
			t.Fatalf("curve point certification malformed: %+v", pt.Cert)
		}
	}
}

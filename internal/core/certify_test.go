package core

import (
	"testing"

	"repro/internal/history"
	"repro/internal/workload"
)

// TestThroughputCertifyRideAlong: a certified throughput cell reports
// the agreed verdict with both wall-clocks, and a violator cell pins the
// first offending commit.
func TestThroughputCertifyRideAlong(t *testing.T) {
	clean, err := MeasureThroughputWith(ByName("cops"), workload.Balanced(), 8, 200, 2,
		ThroughputOptions{Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Cert.OK || clean.Cert.Level != "causal" || clean.Cert.Txns != 200 {
		t.Fatalf("cops certification malformed: %+v", clean.Cert)
	}
	if clean.Cert.FirstViolation != -1 {
		t.Fatalf("clean cell pins a first violation: %+v", clean.Cert)
	}

	bad, err := MeasureThroughputWith(ByName("naivefast"), workload.Balanced(), 8, 96, 2,
		ThroughputOptions{ObjectsPerServer: 1, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Cert.OK {
		t.Fatal("naivefast certified clean")
	}
	if bad.Cert.FirstViolation < 0 || bad.Cert.FirstViolation >= bad.Committed {
		t.Fatalf("violator cell must pin the first offending commit: %+v", bad.Cert)
	}
}

// TestThroughputCertifyPastBatchCeiling: the old up-front refusal at
// history.MaxTxns is gone — a cell past the batch ceiling certifies via
// the streaming session, with the batch cross-check (and the recorded
// history backing it) skipped rather than refusing the run.
func TestThroughputCertifyPastBatchCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := MeasureThroughputWith(ByName("cops"), workload.ReadHeavy(), 8, history.MaxTxns+64, 5,
		ThroughputOptions{Servers: 4, ObjectsPerServer: 8, Certify: true})
	if err != nil {
		t.Fatalf("certified cell past the ceiling errored: %v", err)
	}
	if !rep.Cert.OK || rep.Cert.Txns != history.MaxTxns+64 {
		t.Fatalf("past-ceiling certification malformed: %+v", rep.Cert)
	}
	if rep.Cert.IncrementalWall <= 0 {
		t.Fatalf("ride-along session reported no wall-clock: %+v", rep.Cert)
	}
	if rep.Cert.BatchWall != 0 {
		t.Fatalf("batch cross-check ran past the ceiling (wall %v)", rep.Cert.BatchWall)
	}
}

// TestThroughputStaleness: the staleness probe wiring reaches the core
// report and stays deterministic.
func TestThroughputStaleness(t *testing.T) {
	rep, err := MeasureThroughputWith(ByName("cops"), workload.Balanced(), 8, 200, 5,
		ThroughputOptions{ProbeStaleness: true})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Staleness
	if st == nil || st.Probes == 0 {
		t.Fatalf("staleness tallies missing: %+v", st)
	}
	again, err := MeasureThroughputWith(ByName("cops"), workload.Balanced(), 8, 200, 5,
		ThroughputOptions{ProbeStaleness: true})
	if err != nil {
		t.Fatal(err)
	}
	if *again.Staleness != *st {
		t.Fatalf("staleness tallies nondeterministic: %+v vs %+v", st, again.Staleness)
	}
}

// TestLoadCurveCertify: with CurveOptions.Certify every open-loop point
// carries its own ride-along verdict, so certification no longer caps
// the curve's transaction count to a reduced batch window.
func TestLoadCurveCertify(t *testing.T) {
	curve, err := MeasureLoadCurve(ByName("cure"), workload.Balanced(), 4, CurveOptions{
		Clients: 4, Txns: 120, Fractions: []float64{0.25, 0.9}, Certify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(curve.Points))
	}
	for _, pt := range curve.Points {
		if pt.Cert.Level != "causal" || !pt.Cert.OK || pt.Cert.Txns != pt.Committed {
			t.Fatalf("curve point certification malformed: %+v", pt.Cert)
		}
	}
}

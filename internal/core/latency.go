package core

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// LatencyReport is the outcome of one latency experiment (E7): virtual-time
// latencies of read-only and write transactions under concurrent
// closed-loop load, plus write-visibility staleness measured in a separate
// probe phase.
type LatencyReport struct {
	Protocol   string
	Mix        workload.Mix
	Clients    int
	ROT        stats.Summary // read-only transaction latency (virtual µs)
	Write      stats.Summary // write transaction latency
	Staleness  stats.Summary // write completion → value visibility
	ROTRounds  float64       // mean rounds per ROT
	Throughput float64       // committed txns per virtual second
	Incomplete int           // transactions that did not finish (should be 0)
}

func (r LatencyReport) String() string {
	return fmt.Sprintf("%-12s ROT{%s} rounds=%.2f\n%-12s write{%s}\n%-12s staleness{%s}",
		r.Protocol, r.ROT, r.ROTRounds, "", r.Write, "", r.Staleness)
}

// LatencyOptions scales the latency experiment's deployment.
type LatencyOptions struct {
	// Servers and ObjectsPerServer size the placement (defaults 2, 2).
	Servers          int
	ObjectsPerServer int
	// Clients is the number of concurrent closed-loop clients (default 2).
	Clients int
	// Pipeline is the per-client outstanding-invocation depth (default 1).
	Pipeline int
	// StalenessWrites is the number of writes probed for visibility
	// staleness (default 8; a negative value skips the staleness phase).
	StalenessWrites int
}

// MeasureLatency runs txns transactions of the mix on a fresh deployment
// of p under concurrent closed-loop load (the driver's Network scheduler)
// and reports latencies. Multi-object writes degrade to single-object
// writes for protocols without the W property.
func MeasureLatency(p protocol.Protocol, mix workload.Mix, txns int, seed int64) (LatencyReport, error) {
	return MeasureLatencyWith(p, mix, txns, seed, LatencyOptions{})
}

// MeasureLatencyWith is MeasureLatency with explicit deployment scaling.
func MeasureLatencyWith(p protocol.Protocol, mix workload.Mix, txns int, seed int64, opt LatencyOptions) (LatencyReport, error) {
	if opt.Clients <= 0 {
		opt.Clients = 2
	}
	// Both phases must run on identically sized placements so the
	// staleness numbers describe the same system as the ROT/Write
	// numbers (driver.Config would default these itself, but
	// measureStaleness deploys directly).
	if opt.Servers <= 0 {
		opt.Servers = 2
	}
	if opt.ObjectsPerServer <= 0 {
		opt.ObjectsPerServer = 2
	}
	if opt.StalenessWrites == 0 {
		opt.StalenessWrites = 8
	}
	rep := LatencyReport{Protocol: p.Name(), Mix: mix, Clients: opt.Clients}

	load, err := driver.Run(p, driver.Config{
		Clients:          opt.Clients,
		Pipeline:         opt.Pipeline,
		Txns:             txns,
		Mix:              mix,
		Seed:             seed,
		Servers:          opt.Servers,
		ObjectsPerServer: opt.ObjectsPerServer,
	})
	if err != nil {
		return rep, err
	}
	rep.ROT = load.ROT
	rep.Write = load.Write
	rep.ROTRounds = load.ROTRounds
	rep.Throughput = load.Throughput
	rep.Incomplete = load.Incomplete

	if opt.StalenessWrites > 0 {
		stale, incomplete, err := measureStaleness(p, mix, opt, seed)
		if err != nil {
			return rep, err
		}
		rep.Staleness = stale
		rep.Incomplete += incomplete
	}
	return rep, nil
}

// measureStaleness runs a short lockstep write loop on a fresh deployment
// and measures, per write, the extra virtual time until the written values
// are visible to a fresh reader (the paper's visibility probes need
// snapshots and fine-grained control, so this phase stays sequential).
func measureStaleness(p protocol.Protocol, mix workload.Mix, opt LatencyOptions, seed int64) (stats.Summary, int, error) {
	d := protocol.Deploy(p, protocol.Config{
		Servers: opt.Servers, ObjectsPerServer: opt.ObjectsPerServer,
		Clients: 1, Seed: seed,
	})
	if err := d.InitAll(400_000); err != nil {
		return stats.Summary{}, 0, err
	}
	gen := workload.NewGenerator(mix, d.Place.Objects(), seed*31+7)
	multiWrite := p.Claims().MultiWriteTxn
	stale := stats.NewCollector()
	incomplete := 0
	sched := &sim.Network{}

	// Cross-server writes are the interesting staleness regime: visibility
	// of a multi-server transaction waits on stabilization traffic
	// (gossip, stable cutoffs), while a single-server write in a quiet
	// system is visible the moment it commits.
	srvs := d.Place.Servers()
	spanning := func(i int) *model.Txn {
		var writes []model.Write
		for j := 0; j < 2 && j < len(srvs); j++ {
			obj := d.Place.HostedBy(srvs[(i+j)%len(srvs)])[0]
			writes = append(writes, model.Write{
				Object: obj,
				Value:  model.Value(fmt.Sprintf("stale-%d-%s", i, obj)),
			})
		}
		return model.NewWriteOnly(model.TxnID{}, writes...)
	}

	for i := 0; i < opt.StalenessWrites; i++ {
		txn := gen.NextSingleWrite("c0")
		if multiWrite && mix.WriteWidth > 1 {
			txn = spanning(i)
		}
		res := d.RunTxnWith("c0", txn.Clone(), sched, 500_000)
		if res == nil || !res.OK() {
			incomplete++
			continue
		}
		want := make(map[string]model.Value)
		for _, w := range res.Txn.Writes {
			want[w.Object] = w.Value
		}
		t0 := d.Kernel.Now()
		visible := d.VisibleAll(d.Readers[0], want, true).Visible
		for tries := 0; tries < 64 && !visible; tries++ {
			sim.Run(d.Kernel, sched, nil, 32)
			visible = d.VisibleAll(d.Readers[0], want, true).Visible
		}
		if visible {
			stale.Add(int64(d.Kernel.Now() - t0))
		} else {
			incomplete++
		}
	}
	return stale.Summarize(), incomplete, nil
}

// LatencySweep measures every protocol under the given mix.
func LatencySweep(mix workload.Mix, txns int, seed int64) ([]LatencyReport, error) {
	var out []LatencyReport
	for _, p := range All() {
		rep, err := MeasureLatency(p, mix, txns, seed)
		if err != nil {
			return nil, fmt.Errorf("core: latency for %s: %w", p.Name(), err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// FormatLatency renders a sweep as a table.
func FormatLatency(reports []LatencyReport) string {
	out := fmt.Sprintf("%-12s | %10s | %10s | %8s | %10s | %14s\n",
		"System", "ROT p50", "ROT p99", "rounds", "write p50", "staleness mean")
	out += "---------------------------------------------------------------------------------\n"
	for _, r := range reports {
		// Mean, not p50: quiet-system staleness is bimodal (zero when
		// stabilization traffic beats the commit acks, one gossip delay
		// otherwise), so the median hides the lag entirely.
		out += fmt.Sprintf("%-12s | %10d | %10d | %8.2f | %10d | %14.1f\n",
			r.Protocol, r.ROT.P50, r.ROT.P99, r.ROTRounds, r.Write.P50, r.Staleness.Mean)
	}
	return out
}

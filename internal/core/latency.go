package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// LatencyReport is the outcome of one latency experiment (E7): virtual-time
// latencies of read-only and write transactions and write-visibility
// staleness, under a well-behaved network scheduler.
type LatencyReport struct {
	Protocol   string
	Mix        workload.Mix
	ROT        stats.Summary // read-only transaction latency (virtual µs)
	Write      stats.Summary // write transaction latency
	Staleness  stats.Summary // write completion → value visibility
	ROTRounds  float64       // mean rounds per ROT
	Incomplete int           // transactions that did not finish (should be 0)
}

func (r LatencyReport) String() string {
	return fmt.Sprintf("%-12s ROT{%s} rounds=%.2f\n%-12s write{%s}\n%-12s staleness{%s}",
		r.Protocol, r.ROT, r.ROTRounds, "", r.Write, "", r.Staleness)
}

// MeasureLatency runs txns transactions of the mix on a fresh deployment
// of p, driven by the Network scheduler (earliest-arrival delivery), and
// reports latencies. Multi-object writes degrade to single-object writes
// for protocols without the W property.
func MeasureLatency(p protocol.Protocol, mix workload.Mix, txns int, seed int64) (LatencyReport, error) {
	rep := LatencyReport{Protocol: p.Name(), Mix: mix}
	d := protocol.Deploy(p, protocol.Config{
		Servers: 2, ObjectsPerServer: 2, Clients: 2, Seed: seed,
	})
	if err := d.InitAll(400_000); err != nil {
		return rep, err
	}
	gen := workload.NewGenerator(mix, d.Place.Objects(), seed*31+7)
	multiWrite := p.Claims().MultiWriteTxn

	rot := stats.NewCollector()
	wr := stats.NewCollector()
	stale := stats.NewCollector()
	rounds, nROT := 0, 0
	sched := &sim.Network{}

	for i := 0; i < txns; i++ {
		txn := gen.Next("c0")
		if !txn.IsReadOnly() && !multiWrite {
			txn = gen.NextSingleWrite("c0")
		}
		res := d.RunTxnWith("c0", txn.Clone(), sched, 500_000)
		if res == nil || !res.OK() {
			rep.Incomplete++
			continue
		}
		lat := res.Completed - res.Invoked
		if txn.IsReadOnly() {
			rot.Add(lat)
			rounds += res.Rounds
			nROT++
		} else {
			wr.Add(lat)
			// Staleness: drive the system until the written values are
			// visible to fresh readers and record the extra time.
			want := make(map[string]model.Value)
			for _, w := range res.Txn.Writes {
				want[w.Object] = w.Value
			}
			t0 := d.Kernel.Now()
			visible := d.VisibleAll(d.Readers[0], want, true).Visible
			for tries := 0; tries < 64 && !visible; tries++ {
				sim.Run(d.Kernel, sched, nil, 32)
				visible = d.VisibleAll(d.Readers[0], want, true).Visible
			}
			if visible {
				stale.Add(int64(d.Kernel.Now() - t0))
			} else {
				rep.Incomplete++
			}
		}
	}
	rep.ROT = rot.Summarize()
	rep.Write = wr.Summarize()
	rep.Staleness = stale.Summarize()
	if nROT > 0 {
		rep.ROTRounds = float64(rounds) / float64(nROT)
	}
	return rep, nil
}

// LatencySweep measures every protocol under the given mix.
func LatencySweep(mix workload.Mix, txns int, seed int64) ([]LatencyReport, error) {
	var out []LatencyReport
	for _, p := range All() {
		rep, err := MeasureLatency(p, mix, txns, seed)
		if err != nil {
			return nil, fmt.Errorf("core: latency for %s: %w", p.Name(), err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// FormatLatency renders a sweep as a table.
func FormatLatency(reports []LatencyReport) string {
	out := fmt.Sprintf("%-12s | %10s | %10s | %8s | %10s | %12s\n",
		"System", "ROT p50", "ROT p99", "rounds", "write p50", "staleness p50")
	out += "-------------------------------------------------------------------------------\n"
	for _, r := range reports {
		out += fmt.Sprintf("%-12s | %10d | %10d | %8.2f | %10d | %12d\n",
			r.Protocol, r.ROT.P50, r.ROT.P99, r.ROTRounds, r.Write.P50, r.Staleness.P50)
	}
	return out
}

package core

import (
	"strings"
	"testing"

	"repro/internal/protocols/cops"
	"repro/internal/workload"
)

func TestMeasureLoadCurveShape(t *testing.T) {
	curve, err := MeasureLoadCurve(cops.New(), workload.ReadHeavy(), 5, CurveOptions{
		Clients: 4, Txns: 120, Fractions: []float64{0.1, 0.5, 1.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if curve.Saturated <= 0 {
		t.Fatalf("saturated = %f", curve.Saturated)
	}
	if len(curve.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(curve.Points))
	}
	light, heavy := curve.Points[0], curve.Points[2]
	// Light load: queueing is negligible. Past saturation: it dominates.
	if light.QueueDelay.P50 > light.Service.P50 {
		t.Fatalf("light load already queueing: queue p50 %d > service p50 %d",
			light.QueueDelay.P50, light.Service.P50)
	}
	if heavy.QueueDelay.P50 <= heavy.Service.P50 {
		t.Fatalf("past saturation but no queueing: queue p50 %d ≤ service p50 %d",
			heavy.QueueDelay.P50, heavy.Service.P50)
	}
	// End-to-end latency must grow monotonically enough to show the
	// curve's bend: the overloaded point is far above the light one.
	if heavy.Latency.P50 < 2*light.Latency.P50 {
		t.Fatalf("no latency knee: light p50 %d, overloaded p50 %d",
			light.Latency.P50, heavy.Latency.P50)
	}
	// The knee sits at or below the saturated rate and above zero here.
	if curve.Knee <= 0 {
		t.Fatal("knee not found despite an un-queued light-load point")
	}
	if curve.Knee >= heavy.Offered {
		t.Fatalf("knee %.0f at or past the overloaded point %.0f", curve.Knee, heavy.Offered)
	}
	// Achieved throughput tracks offered load below the knee.
	if light.Achieved < 0.5*light.Offered {
		t.Fatalf("light load achieved %.0f of offered %.0f", light.Achieved, light.Offered)
	}

	// The table renderer covers every point plus the curve header.
	table := FormatLoadCurve(curve)
	if !strings.Contains(table, "cops") || !strings.Contains(table, "knee") {
		t.Fatalf("FormatLoadCurve missing header fields:\n%s", table)
	}
	if got := strings.Count(table, "\n"); got != 2+len(curve.Points) {
		t.Fatalf("FormatLoadCurve rendered %d lines, want %d:\n%s", got, 2+len(curve.Points), table)
	}
}

// TestMeasureLoadCurveKneeRefinement: with RefineKnee the sweep bisects
// the queueing/service crossover with longer-window points instead of
// quantizing the knee to the swept fractions. The swept points stay
// byte-identical to an unrefined sweep, the refinement points ride
// behind them marked Refined, and the refined knee lands strictly
// inside the coarse bracket — deterministically.
func TestMeasureLoadCurveKneeRefinement(t *testing.T) {
	opt := CurveOptions{
		Clients: 4, Txns: 120, Fractions: []float64{0.1, 0.5, 1.2},
	}
	base, err := MeasureLoadCurve(cops.New(), workload.ReadHeavy(), 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	ropt := opt
	ropt.RefineKnee = true
	refined, err := MeasureLoadCurve(cops.New(), workload.ReadHeavy(), 5, ropt)
	if err != nil {
		t.Fatal(err)
	}
	if len(refined.Points) <= len(base.Points) {
		t.Fatalf("refinement added no points: %d vs %d", len(refined.Points), len(base.Points))
	}
	for i, pt := range base.Points {
		if refined.Points[i].Refined {
			t.Fatalf("swept point %d marked refined", i)
		}
		if refined.Points[i].Offered != pt.Offered || refined.Points[i].Committed != pt.Committed {
			t.Fatalf("refinement perturbed swept point %d: %+v vs %+v", i, refined.Points[i], pt)
		}
	}
	// Coarse bracket: the swept knee and the lowest swept point past it.
	hi := 0.0
	for _, pt := range base.Points {
		if pt.QueueDelay.P50 > pt.Service.P50 && (hi == 0 || pt.Offered < hi) {
			hi = pt.Offered
		}
	}
	if hi == 0 {
		t.Fatal("no swept point past the knee; refinement untestable at this config")
	}
	for _, pt := range refined.Points[len(base.Points):] {
		if !pt.Refined {
			t.Fatal("bisection point not marked Refined")
		}
		if pt.Committed != 2*opt.Txns {
			t.Fatalf("refinement point ran %d txns, want the longer window %d", pt.Committed, 2*opt.Txns)
		}
		if pt.Offered <= base.Knee || pt.Offered >= hi {
			t.Fatalf("bisection point %.0f outside the coarse bracket (%.0f, %.0f)", pt.Offered, base.Knee, hi)
		}
	}
	if refined.Knee < base.Knee || refined.Knee >= hi {
		t.Fatalf("refined knee %.0f outside [%.0f, %.0f)", refined.Knee, base.Knee, hi)
	}
	again, err := MeasureLoadCurve(cops.New(), workload.ReadHeavy(), 5, ropt)
	if err != nil {
		t.Fatal(err)
	}
	if again.Knee != refined.Knee || len(again.Points) != len(refined.Points) {
		t.Fatalf("refinement nondeterministic: knee %.2f/%.2f points %d/%d",
			refined.Knee, again.Knee, len(refined.Points), len(again.Points))
	}
}

package core

import (
	"strings"
	"testing"

	"repro/internal/protocols/cops"
	"repro/internal/workload"
)

func TestMeasureLoadCurveShape(t *testing.T) {
	curve, err := MeasureLoadCurve(cops.New(), workload.ReadHeavy(), 5, CurveOptions{
		Clients: 4, Txns: 120, Fractions: []float64{0.1, 0.5, 1.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if curve.Saturated <= 0 {
		t.Fatalf("saturated = %f", curve.Saturated)
	}
	if len(curve.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(curve.Points))
	}
	light, heavy := curve.Points[0], curve.Points[2]
	// Light load: queueing is negligible. Past saturation: it dominates.
	if light.QueueDelay.P50 > light.Service.P50 {
		t.Fatalf("light load already queueing: queue p50 %d > service p50 %d",
			light.QueueDelay.P50, light.Service.P50)
	}
	if heavy.QueueDelay.P50 <= heavy.Service.P50 {
		t.Fatalf("past saturation but no queueing: queue p50 %d ≤ service p50 %d",
			heavy.QueueDelay.P50, heavy.Service.P50)
	}
	// End-to-end latency must grow monotonically enough to show the
	// curve's bend: the overloaded point is far above the light one.
	if heavy.Latency.P50 < 2*light.Latency.P50 {
		t.Fatalf("no latency knee: light p50 %d, overloaded p50 %d",
			light.Latency.P50, heavy.Latency.P50)
	}
	// The knee sits at or below the saturated rate and above zero here.
	if curve.Knee <= 0 {
		t.Fatal("knee not found despite an un-queued light-load point")
	}
	if curve.Knee >= heavy.Offered {
		t.Fatalf("knee %.0f at or past the overloaded point %.0f", curve.Knee, heavy.Offered)
	}
	// Achieved throughput tracks offered load below the knee.
	if light.Achieved < 0.5*light.Offered {
		t.Fatalf("light load achieved %.0f of offered %.0f", light.Achieved, light.Offered)
	}

	// The table renderer covers every point plus the curve header.
	table := FormatLoadCurve(curve)
	if !strings.Contains(table, "cops") || !strings.Contains(table, "knee") {
		t.Fatalf("FormatLoadCurve missing header fields:\n%s", table)
	}
	if got := strings.Count(table, "\n"); got != 2+len(curve.Points) {
		t.Fatalf("FormatLoadCurve rendered %d lines, want %d:\n%s", got, 2+len(curve.Points), table)
	}
}

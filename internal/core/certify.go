package core

import (
	"fmt"
	"time"

	"repro/internal/driver"
	"repro/internal/history"
)

// Certification is the outcome of certifying one load run: the verdict
// of the ride-along incremental session, cross-checked against the
// one-shot batch solver over the same recorded history, with both
// wall-clocks so the incremental-vs-batch cost of every cell is visible
// in the grids.
type Certification struct {
	// Level is the consistency level checked (the protocol's claim).
	Level string
	// OK and Reason are the shared verdict (the two engines must agree;
	// a disagreement is surfaced as an error, not a report).
	OK     bool
	Reason string
	// Txns is the number of committed transactions certified.
	Txns int
	// FirstViolation is the append index of the first offending commit
	// (-1 when the run certified clean) — the incremental session pins
	// violations to the commit that introduced them.
	FirstViolation int
	// IncrementalWall is the cumulative wall-clock the run spent inside
	// the ride-along session; BatchWall is the wall-clock of re-solving
	// the full recorded history from scratch (zero when the cell runs
	// past history.MaxTxns and the batch cross-check is skipped — the
	// streaming session is the only exact checker up there). Both are
	// the only nondeterministic fields of a certified report.
	IncrementalWall time.Duration
	BatchWall       time.Duration
}

// certifyRun extracts the ride-along verdict from a load run and
// re-checks the recorded history with the batch solver. The incremental
// and batch verdicts disagreeing means a checker bug, never a
// measurement: it is returned as an error so no grid can silently
// publish either verdict. Cells past history.MaxTxns skip the
// cross-check (the batch solver refuses histories that large; the
// streaming session's verdict stands alone, differentially validated
// below the ceiling and by the history package's eviction fuzz).
func certifyRun(load *driver.Report) (Certification, error) {
	cert := Certification{
		Level:           load.CertLevel,
		OK:              load.Cert.OK,
		Reason:          load.Cert.Reason,
		Txns:            load.Cert.Appended,
		FirstViolation:  load.Cert.FirstViolation,
		IncrementalWall: load.CertWall,
	}
	if load.History == nil || load.History.Len() > history.MaxTxns {
		return cert, nil
	}
	start := time.Now()
	batch := history.CheckBatch(load.History, load.CertLevel)
	cert.BatchWall = time.Since(start)
	if batch.OK != load.Cert.OK {
		return cert, fmt.Errorf(
			"core: incremental and batch certification disagree for %s at %s: session %v (%s), batch %v (%s)",
			load.Protocol, load.CertLevel, load.Cert.OK, load.Cert.Reason, batch.OK, batch.Reason)
	}
	return cert, nil
}

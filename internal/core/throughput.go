package core

import (
	"fmt"
	"time"

	"repro/internal/driver"
	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ThroughputReport is the outcome of one closed-loop throughput run (the
// load regime the paper's introduction motivates: many concurrent clients
// over a skewed read-heavy mix).
type ThroughputReport struct {
	Protocol string
	Mix      workload.Mix
	Clients  int
	Pipeline int

	Committed  int
	Rejected   int
	Incomplete int
	Events     int

	// Duration is the virtual time the run spanned; Throughput is
	// committed transactions per virtual second.
	Duration   sim.Time
	Throughput float64
	AbortRate  float64

	Latency   stats.Summary
	ROT       stats.Summary
	Write     stats.Summary
	ROTRounds float64

	// Certification outcome (populated when ThroughputOptions.Certify
	// was set): the run's recorded history checked at the protocol's
	// claimed consistency level, with the checker's wall-clock cost.
	// CertLevel is empty when certification was off.
	CertLevel  string
	CertOK     bool
	CertReason string
	CertTxns   int
	CertWall   time.Duration
}

// ThroughputOptions scales a throughput run.
type ThroughputOptions struct {
	Servers          int
	ObjectsPerServer int
	Pipeline         int
	Latency          sim.LatencyModel
	// Certify records the run's history and certifies it at the
	// protocol's claimed consistency level, reporting verdict and
	// checker wall-clock in the Cert* fields. Requires txns within the
	// checker's ceiling (512).
	Certify bool
}

// MeasureThroughput runs txns transactions of the mix over the given
// number of concurrent closed-loop clients and reports throughput and
// latency under load.
func MeasureThroughput(p protocol.Protocol, mix workload.Mix, clients, txns int, seed int64) (ThroughputReport, error) {
	return MeasureThroughputWith(p, mix, clients, txns, seed, ThroughputOptions{})
}

// MeasureThroughputWith is MeasureThroughput with explicit scaling.
func MeasureThroughputWith(p protocol.Protocol, mix workload.Mix, clients, txns int, seed int64, opt ThroughputOptions) (ThroughputReport, error) {
	rep := ThroughputReport{Protocol: p.Name(), Mix: mix, Clients: clients}
	if opt.Certify && txns > history.MaxTxns {
		// Refuse up front: a capacity refusal from the checker must never
		// masquerade as a consistency violation in the report.
		return rep, fmt.Errorf("core: cannot certify %d transactions (checker ceiling %d); lower txns",
			txns, history.MaxTxns)
	}
	load, err := driver.Run(p, driver.Config{
		Clients:          clients,
		Pipeline:         opt.Pipeline,
		Txns:             txns,
		Mix:              mix,
		Seed:             seed,
		Servers:          opt.Servers,
		ObjectsPerServer: opt.ObjectsPerServer,
		Latency:          opt.Latency,
		RecordHistory:    opt.Certify,
	})
	if err != nil {
		return rep, err
	}
	if opt.Certify {
		rep.CertLevel = p.Claims().Consistency
		rep.CertTxns = load.History.Len()
		start := time.Now()
		v := history.Check(load.History, rep.CertLevel)
		rep.CertWall = time.Since(start)
		rep.CertOK = v.OK
		rep.CertReason = v.Reason
	}
	rep.Pipeline = load.Pipeline
	rep.Committed = load.Committed
	rep.Rejected = load.Rejected
	rep.Incomplete = load.Incomplete
	rep.Events = load.Events
	rep.Duration = load.Duration
	rep.Throughput = load.Throughput
	rep.AbortRate = load.AbortRate
	rep.Latency = load.Latency
	rep.ROT = load.ROT
	rep.Write = load.Write
	rep.ROTRounds = load.ROTRounds
	return rep, nil
}

// ThroughputSweep measures every protocol at each client count.
func ThroughputSweep(mix workload.Mix, clientCounts []int, txns int, seed int64) ([]ThroughputReport, error) {
	var out []ThroughputReport
	for _, p := range All() {
		for _, c := range clientCounts {
			rep, err := MeasureThroughput(p, mix, c, txns, seed)
			if err != nil {
				return nil, fmt.Errorf("core: throughput for %s at %d clients: %w", p.Name(), c, err)
			}
			out = append(out, rep)
		}
	}
	return out, nil
}

// FormatThroughput renders a sweep as a table.
func FormatThroughput(reports []ThroughputReport) string {
	out := fmt.Sprintf("%-12s | %7s | %10s | %12s | %8s | %8s | %10s\n",
		"System", "clients", "committed", "thr (txn/s)", "p50", "p99", "incomplete")
	out += "--------------------------------------------------------------------------------\n"
	for _, r := range reports {
		out += fmt.Sprintf("%-12s | %7d | %10d | %12.1f | %8d | %8d | %10d\n",
			r.Protocol, r.Clients, r.Committed, r.Throughput, r.Latency.P50, r.Latency.P99, r.Incomplete)
	}
	return out
}

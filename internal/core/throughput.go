package core

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ThroughputReport is the outcome of one closed-loop throughput run (the
// load regime the paper's introduction motivates: many concurrent clients
// over a skewed read-heavy mix).
type ThroughputReport struct {
	Protocol string
	Mix      workload.Mix
	Clients  int
	Pipeline int

	Committed  int
	Rejected   int
	Incomplete int
	Events     int

	// Duration is the virtual time the run spanned; Throughput is
	// committed transactions per virtual second.
	Duration   sim.Time
	Throughput float64
	AbortRate  float64

	Latency   stats.Summary
	ROT       stats.Summary
	Write     stats.Summary
	ROTRounds float64

	// Cert is the certification outcome (populated when
	// ThroughputOptions.Certify was set): the run certified ride-along by
	// a streaming incremental session as transactions committed,
	// cross-checked by the batch solver when the cell fits under
	// history.MaxTxns, with both wall-clocks. Cert.Level is empty when
	// certification was off.
	Cert Certification

	// Staleness tallies the frozen visibility probes (nil unless
	// ThroughputOptions.ProbeStaleness).
	Staleness *driver.StalenessReport

	// Sharding is the deterministic shape of a sharded-stepping run
	// (ThroughputOptions.Workers ≥ 1): windows, total vs critical-path
	// events, shard occupancy. Nil under the serial engine.
	Sharding *sim.ShardingStats

	// Nemesis is the fault-injection outcome (nil on fault-free runs):
	// applied fault counts, unavailability, recovery latency, the
	// degraded-phase transaction slice, and — for reconfiguration
	// schedules — the replacement catch-up cost (versions re-synced,
	// sync time, sync-phase latency; driver.NemesisReport semantics).
	Nemesis *driver.NemesisReport
}

// ThroughputOptions scales a throughput run.
type ThroughputOptions struct {
	Servers          int
	ObjectsPerServer int
	// Replication > 1 deploys the partially replicated placement
	// (protocol.Config semantics) instead of the disjoint one, charting
	// the partial-replication regimes of Theorem 2 under load.
	Replication int
	Pipeline    int
	Latency     sim.LatencyModel
	// Topology selects a geo-asymmetric deployment (driver.Config
	// semantics: sites, intra-/cross-site latency distributions with
	// declared per-link floors, site-aware shard striping). Nil is the
	// uniform deployment.
	Topology *protocol.Topology
	// Certify certifies the run ride-along at the protocol's claimed
	// consistency level: committed transactions feed a streaming
	// history.Session during the run (so full grid cells certify without
	// a reduced txn count), and the recorded history is re-checked by the
	// batch solver for the incremental-vs-batch comparison in Cert. The
	// batch cross-check only runs for cells at or below history.MaxTxns —
	// past that ceiling the streaming session is the only exact checker
	// and Cert.BatchWall stays zero.
	Certify bool
	// ProbeStaleness samples visibility staleness during the run
	// (driver.Config.ProbeStaleness semantics: frozen reads of committed
	// writes on kernel snapshots); tallies land in Staleness.
	ProbeStaleness bool
	// Workers selects the stepping engine (driver.Config.Workers
	// semantics): 0 the serial scheduler, ≥ 1 sharded stepping with one
	// shard per server and min(Workers, active shards) goroutines. The
	// measured numbers are a function of the shard partition and seed,
	// never of the worker count.
	Workers int
	// Barrier selects the window-synchronized barrier engine instead of
	// the default conservative-lookahead engine when Workers ≥ 1
	// (driver.Config.Barrier semantics); both produce the identical
	// schedule, they differ only in rounds and blocked time.
	Barrier bool
	// Rebalance recomputes the client→shard striping from a short
	// deterministic probe run's per-shard event counts before the
	// measured run (driver.Config.Rebalance semantics). Requires
	// Workers ≥ 1; the chosen partition lands in Sharding.Partition.
	Rebalance bool
	// Nemesis schedules deterministic fault injection into the measured
	// phase (driver.Config.Nemesis semantics): seeded crash/restart,
	// partition/heal, replica-replacement and whole-cluster-restore
	// cycles, byte-identical at every worker count. Nil runs fault-free.
	Nemesis *driver.Nemesis
}

// MeasureThroughput runs txns transactions of the mix over the given
// number of concurrent closed-loop clients and reports throughput and
// latency under load.
func MeasureThroughput(p protocol.Protocol, mix workload.Mix, clients, txns int, seed int64) (ThroughputReport, error) {
	return MeasureThroughputWith(p, mix, clients, txns, seed, ThroughputOptions{})
}

// MeasureThroughputWith is MeasureThroughput with explicit scaling.
func MeasureThroughputWith(p protocol.Protocol, mix workload.Mix, clients, txns int, seed int64, opt ThroughputOptions) (ThroughputReport, error) {
	rep := ThroughputReport{Protocol: p.Name(), Mix: mix, Clients: clients}
	load, err := driver.Run(p, driver.Config{
		Clients:          clients,
		Pipeline:         opt.Pipeline,
		Txns:             txns,
		Mix:              mix,
		Seed:             seed,
		Servers:          opt.Servers,
		ObjectsPerServer: opt.ObjectsPerServer,
		Replication:      opt.Replication,
		Latency:          opt.Latency,
		Topology:         opt.Topology,
		RecordHistory:    opt.Certify && txns <= history.MaxTxns,
		Certify:          opt.Certify,
		ProbeStaleness:   opt.ProbeStaleness,
		Workers:          opt.Workers,
		Barrier:          opt.Barrier,
		Rebalance:        opt.Rebalance,
		Nemesis:          opt.Nemesis,
	})
	if err != nil {
		return rep, err
	}
	rep.Sharding = load.Sharding
	rep.Staleness = load.Staleness
	rep.Nemesis = load.Nemesis
	if opt.Certify {
		if rep.Cert, err = certifyRun(load); err != nil {
			return rep, err
		}
	}
	rep.Pipeline = load.Pipeline
	rep.Committed = load.Committed
	rep.Rejected = load.Rejected
	rep.Incomplete = load.Incomplete
	rep.Events = load.Events
	rep.Duration = load.Duration
	rep.Throughput = load.Throughput
	rep.AbortRate = load.AbortRate
	rep.Latency = load.Latency
	rep.ROT = load.ROT
	rep.Write = load.Write
	rep.ROTRounds = load.ROTRounds
	return rep, nil
}

// ThroughputSweep measures every protocol at each client count.
func ThroughputSweep(mix workload.Mix, clientCounts []int, txns int, seed int64) ([]ThroughputReport, error) {
	var out []ThroughputReport
	for _, p := range All() {
		for _, c := range clientCounts {
			rep, err := MeasureThroughput(p, mix, c, txns, seed)
			if err != nil {
				return nil, fmt.Errorf("core: throughput for %s at %d clients: %w", p.Name(), c, err)
			}
			out = append(out, rep)
		}
	}
	return out, nil
}

// FormatThroughput renders a sweep as a table.
func FormatThroughput(reports []ThroughputReport) string {
	out := fmt.Sprintf("%-12s | %7s | %10s | %12s | %8s | %8s | %10s\n",
		"System", "clients", "committed", "thr (txn/s)", "p50", "p99", "incomplete")
	out += "--------------------------------------------------------------------------------\n"
	for _, r := range reports {
		out += fmt.Sprintf("%-12s | %7d | %10d | %12.1f | %8d | %8d | %10d\n",
			r.Protocol, r.Clients, r.Committed, r.Throughput, r.Latency.P50, r.Latency.P99, r.Incomplete)
	}
	return out
}

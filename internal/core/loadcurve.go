package core

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// CurvePoint is one offered-rate point of a latency–throughput curve: an
// open-loop run at a fixed fraction of the protocol's saturated
// throughput.
type CurvePoint struct {
	Protocol string
	Mix      workload.Mix
	// Fraction of the saturated (closed-loop) throughput offered;
	// Offered is that rate in transactions per virtual second; Achieved
	// is what actually committed.
	Fraction float64
	Offered  float64
	Achieved float64

	Committed  int
	Rejected   int
	Incomplete int
	Events     int
	Duration   sim.Time

	// Latency is end-to-end (scheduled arrival → completion);
	// QueueDelay and Service are its decomposition; InFlight samples the
	// outstanding-transaction depth at every injection.
	Latency    stats.Summary
	QueueDelay stats.Summary
	Service    stats.Summary
	InFlight   stats.Summary

	// Cert is this point's ride-along certification outcome (populated
	// when CurveOptions.Certify was set): every open-loop point of the
	// curve is certified as it runs, same contract as the closed-loop
	// grid.
	Cert Certification

	// Refined marks a knee-bisection point (CurveOptions.RefineKnee):
	// it was not part of the swept fractions and ran with the longer
	// refinement window.
	Refined bool

	// Sharding is the deterministic shape of a sharded-stepping point
	// (CurveOptions.Workers ≥ 1). Nil under the serial engine.
	Sharding *sim.ShardingStats
}

// LoadCurve is a swept latency–throughput curve for one protocol × mix.
type LoadCurve struct {
	Protocol string
	Mix      workload.Mix
	// Saturated is the closed-loop throughput estimate the sweep is
	// anchored to (committed transactions per virtual second with every
	// client saturated).
	Saturated float64
	Points    []CurvePoint
	// Knee is the highest swept offered rate at which queueing delay has
	// not yet overtaken service time (p50 queueing ≤ p50 service): past
	// it the curve bends vertical — latency grows without buying
	// throughput, the regime the paper's lower bounds speak to. Zero
	// when even the lightest point is past the knee.
	Knee float64
}

// CurveOptions scales a load-curve sweep.
type CurveOptions struct {
	Servers          int
	ObjectsPerServer int
	// Replication > 1 deploys the partially replicated placement
	// (protocol.Config semantics) instead of the disjoint one.
	Replication int
	// Clients receiving the open-loop arrivals round-robin (default 8).
	Clients int
	// Txns per curve point (default 400).
	Txns int
	// Fractions of the saturated throughput to sweep, ascending (default
	// 0.1, 0.25, 0.5, 0.75, 0.9, 1.1: light load to past saturation).
	Fractions []float64
	// Deterministic selects fixed-interval arrivals instead of Poisson.
	Deterministic bool
	Latency       sim.LatencyModel
	// Topology selects a geo-asymmetric deployment for every run of the
	// sweep (driver.Config semantics). Nil is the uniform deployment.
	Topology *protocol.Topology
	// Certify certifies every curve point ride-along at the protocol's
	// claimed consistency level (see ThroughputOptions.Certify): the
	// streaming session has no transaction ceiling; the batch
	// cross-check runs for points at or below history.MaxTxns only.
	Certify bool
	// RefineKnee bisects the knee after the fraction sweep: between the
	// highest swept rate still below the queueing/service crossover and
	// the lowest one past it, extra open-loop points run at the midpoint
	// rate until the bracket has collapsed (up to kneeRounds rounds).
	// Refinement points use the longer KneeTxns window — near the
	// crossover queueing and service percentiles are comparable, so the
	// short sweep window quantizes the knee to the swept fractions and
	// its p50s are noisy exactly where the curve bends. Default off: the
	// swept points and their knee are byte-identical to an unrefined
	// sweep; refined points are appended after them, marked Refined, and
	// the reported knee is recomputed over all points.
	RefineKnee bool
	// KneeTxns is the transaction count of each refinement point
	// (default 2×Txns).
	KneeTxns int
	// Workers selects the stepping engine for every run of the sweep,
	// including the closed-loop saturation estimate (see
	// ThroughputOptions.Workers).
	Workers int
	// Barrier selects the window-synchronized barrier engine instead of
	// the default conservative lookahead when Workers ≥ 1 (see
	// ThroughputOptions.Barrier).
	Barrier bool
	// Rebalance recomputes the client→shard striping from a probe run
	// before every run of the sweep (see ThroughputOptions.Rebalance).
	Rebalance bool
}

func (o *CurveOptions) defaults() {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Txns <= 0 {
		o.Txns = 400
	}
	if len(o.Fractions) == 0 {
		o.Fractions = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.1}
	}
	if o.KneeTxns <= 0 {
		o.KneeTxns = 2 * o.Txns
	}
}

// kneeRounds bounds the knee bisection: each round halves the bracket,
// so four rounds pin the knee to ~6% of the swept gap.
const kneeRounds = 4

// MeasureLoadCurve sweeps offered load from light load to past saturation
// for one protocol and mix: it first estimates the saturated throughput
// with a closed-loop run, then drives one open-loop run per fraction of
// it, reporting queueing delay and latency percentiles per point and the
// knee of the resulting curve.
func MeasureLoadCurve(p protocol.Protocol, mix workload.Mix, seed int64, opt CurveOptions) (LoadCurve, error) {
	opt.defaults()
	curve := LoadCurve{Protocol: p.Name(), Mix: mix}

	sat, err := driver.Run(p, driver.Config{
		Clients: opt.Clients, Txns: opt.Txns, Mix: mix, Seed: seed,
		Servers: opt.Servers, ObjectsPerServer: opt.ObjectsPerServer,
		Replication: opt.Replication,
		Latency:     opt.Latency,
		Topology:    opt.Topology,
		Workers:     opt.Workers,
		Barrier:     opt.Barrier,
		Rebalance:   opt.Rebalance,
	})
	if err != nil {
		return curve, fmt.Errorf("core: saturation estimate for %s: %w", p.Name(), err)
	}
	if sat.Throughput <= 0 {
		return curve, fmt.Errorf("core: %s committed nothing in the saturation run", p.Name())
	}
	curve.Saturated = sat.Throughput

	runPoint := func(rate float64, txns int, refined bool) (CurvePoint, error) {
		rep, err := driver.Run(p, driver.Config{
			Clients: opt.Clients, Txns: txns, Mix: mix, Seed: seed,
			Servers: opt.Servers, ObjectsPerServer: opt.ObjectsPerServer,
			Replication: opt.Replication,
			Latency:     opt.Latency,
			Rate:        rate, DeterministicArrivals: opt.Deterministic,
			RecordHistory: opt.Certify && txns <= history.MaxTxns, Certify: opt.Certify,
			Workers: opt.Workers, Barrier: opt.Barrier, Rebalance: opt.Rebalance,
		})
		if err != nil {
			return CurvePoint{}, fmt.Errorf("core: curve point %s at %.0f txn/s: %w", p.Name(), rate, err)
		}
		pt := CurvePoint{
			Protocol: p.Name(), Mix: mix,
			Fraction: rate / curve.Saturated, Offered: rate, Achieved: rep.Throughput,
			Committed: rep.Committed, Rejected: rep.Rejected,
			Incomplete: rep.Incomplete, Events: rep.Events, Duration: rep.Duration,
			Latency: rep.Latency, QueueDelay: rep.QueueDelay,
			Service: rep.Service, InFlight: rep.InFlight,
			Sharding: rep.Sharding,
			Refined:  refined,
		}
		if opt.Certify {
			if pt.Cert, err = certifyRun(rep); err != nil {
				return CurvePoint{}, err
			}
		}
		return pt, nil
	}

	for _, frac := range opt.Fractions {
		pt, err := runPoint(frac*curve.Saturated, opt.Txns, false)
		if err != nil {
			return curve, err
		}
		pt.Fraction = frac // exact, not re-derived through the division
		curve.Points = append(curve.Points, pt)
	}

	// belowKnee is the crossover predicate the knee is defined by:
	// queueing delay has not yet overtaken service time.
	belowKnee := func(pt CurvePoint) bool { return pt.QueueDelay.P50 <= pt.Service.P50 }

	if opt.RefineKnee {
		// Bracket the crossover from the swept points: lo is the highest
		// below-knee rate, hi the lowest past-knee rate above it. With no
		// point past the knee there is nothing to bisect; with every
		// point past it the bracket opens at zero offered load.
		lo, hi := 0.0, 0.0
		for _, pt := range curve.Points {
			if belowKnee(pt) {
				if pt.Offered > lo {
					lo = pt.Offered
				}
			} else if hi == 0 || pt.Offered < hi {
				hi = pt.Offered
			}
		}
		for round := 0; round < kneeRounds && hi > lo; round++ {
			mid := (lo + hi) / 2
			pt, err := runPoint(mid, opt.KneeTxns, true)
			if err != nil {
				return curve, err
			}
			curve.Points = append(curve.Points, pt)
			if belowKnee(pt) {
				lo = mid
			} else {
				hi = mid
			}
		}
	}

	for _, pt := range curve.Points {
		if belowKnee(pt) && pt.Offered > curve.Knee {
			curve.Knee = pt.Offered
		}
	}
	return curve, nil
}

// FormatLoadCurve renders a curve as a table.
func FormatLoadCurve(c LoadCurve) string {
	out := fmt.Sprintf("%s (saturated %.0f txn/s, knee %.0f txn/s)\n", c.Protocol, c.Saturated, c.Knee)
	out += fmt.Sprintf("%8s | %9s | %9s | %10s | %10s | %10s | %8s\n",
		"frac", "offered", "achieved", "e2e p50", "queue p50", "svc p50", "depth")
	for _, pt := range c.Points {
		out += fmt.Sprintf("%8.2f | %9.0f | %9.0f | %10d | %10d | %10d | %8d\n",
			pt.Fraction, pt.Offered, pt.Achieved, pt.Latency.P50, pt.QueueDelay.P50,
			pt.Service.P50, pt.InFlight.Max)
	}
	return out
}

package core

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestMeasureThroughputDeterministic(t *testing.T) {
	run := func() ThroughputReport {
		rep, err := MeasureThroughput(ByName("cops"), workload.ReadHeavy(), 8, 200, 7)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Committed != b.Committed || a.Throughput != b.Throughput ||
		a.Duration != b.Duration || a.Latency.P99 != b.Latency.P99 {
		t.Fatalf("nondeterministic throughput runs:\n%+v\n%+v", a, b)
	}
	if a.Committed != 200 || a.Incomplete != 0 {
		t.Fatalf("run did not complete: %+v", a)
	}
	if a.Throughput <= 0 {
		t.Fatalf("throughput = %f", a.Throughput)
	}
}

func TestThroughputScalesWithClients(t *testing.T) {
	narrow, err := MeasureThroughput(ByName("cops"), workload.ReadHeavy(), 1, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := MeasureThroughput(ByName("cops"), workload.ReadHeavy(), 16, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Throughput < 4*narrow.Throughput {
		t.Fatalf("throughput does not scale: 1 client %.1f txn/s, 16 clients %.1f txn/s",
			narrow.Throughput, wide.Throughput)
	}
}

func TestMeasureLatencyOnDriver(t *testing.T) {
	rep, err := MeasureLatency(ByName("copssnow"), workload.ReadHeavy(), 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete != 0 {
		t.Fatalf("incomplete = %d", rep.Incomplete)
	}
	if rep.ROT.N == 0 || rep.ROT.P50 <= 0 {
		t.Fatalf("no ROT latencies: %+v", rep.ROT)
	}
	// copssnow is the one-round system: exactly one read round per ROT.
	if rep.ROTRounds != 1 {
		t.Fatalf("copssnow rounds = %.2f, want 1", rep.ROTRounds)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput missing from latency report: %+v", rep)
	}
}

func TestFormatThroughput(t *testing.T) {
	rep, err := MeasureThroughput(ByName("cure"), workload.Balanced(), 4, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatThroughput([]ThroughputReport{rep})
	if !strings.Contains(out, "cure") || !strings.Contains(out, "clients") {
		t.Fatalf("table malformed:\n%s", out)
	}
}

// Package core is the top-level harness of the reproduction: it ties the
// protocol models, the property measurements (Definition 4), the
// consistency checkers (Definition 1) and the adversary (Theorem 1/2)
// together, regenerating the paper's Table 1 from measured behaviour and
// producing a theorem verdict for every protocol.
//
// It is also the measurement front door for the load story: closed-loop
// throughput grids (MeasureThroughput), open-loop latency–throughput
// curves (MeasureLoadCurve) and, with the Certify options, ride-along
// certification of every cell — committed transactions feed an
// incremental history.Session during the run and the recorded history is
// re-solved by the batch checker, so every published number is backed by
// two independently agreeing consistency verdicts. The Servers,
// Replication and Workers options scale the deployment across the
// multi-server (and partially replicated) grid, with Workers ≥ 1
// selecting the sharded parallel stepping engine — measured numbers
// depend on the shard partition and seed, never on the worker count
// (sim.ShardedRunner's serial-equals-parallel guarantee).
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/adversary"
	"repro/internal/protocol"
	"repro/internal/protocols/contrarian"
	"repro/internal/protocols/cops"
	"repro/internal/protocols/copssnow"
	"repro/internal/protocols/cure"
	"repro/internal/protocols/eiger"
	"repro/internal/protocols/eigerps"
	"repro/internal/protocols/fatcops"
	"repro/internal/protocols/gentlerain"
	"repro/internal/protocols/naivefast"
	"repro/internal/protocols/orbe"
	"repro/internal/protocols/ramp"
	"repro/internal/protocols/spanner"
	"repro/internal/protocols/twopcfast"
	"repro/internal/protocols/wren"
	"repro/internal/spec"
)

// All returns every modeled protocol, sorted by name.
func All() []protocol.Protocol {
	ps := []protocol.Protocol{
		contrarian.New(), cops.New(), copssnow.New(), cure.New(),
		eiger.New(), eigerps.New(), fatcops.New(), gentlerain.New(), naivefast.New(),
		orbe.New(), ramp.New(), spanner.New(), twopcfast.New(), wren.New(),
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name() < ps[j].Name() })
	return ps
}

// ByName returns the protocol with the given name, or nil.
func ByName(name string) protocol.Protocol {
	for _, p := range All() {
		if p.Name() == name {
			return p
		}
	}
	return nil
}

// Names returns all protocol names.
func Names() []string {
	var out []string
	for _, p := range All() {
		out = append(out, p.Name())
	}
	return out
}

// Row is one measured Table 1 row plus the theorem verdict.
type Row struct {
	Profile spec.Profile
	Verdict *adversary.Verdict
}

// Characterize builds the Table 1 row for one protocol: measured R/V/N/W,
// consistency checks on randomized workloads, and the adversary's verdict.
func Characterize(p protocol.Protocol, seeds []int64) (Row, error) {
	cfg := protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 7}
	prof, err := spec.BuildProfile(p, cfg, seeds)
	if err != nil {
		return Row{}, fmt.Errorf("core: profiling %s: %w", p.Name(), err)
	}
	v, err := adversary.NewAttack(p).Run()
	if err != nil {
		return Row{}, fmt.Errorf("core: attacking %s: %w", p.Name(), err)
	}
	return Row{Profile: prof, Verdict: v}, nil
}

// Table1 characterizes every protocol.
func Table1(seeds []int64) ([]Row, error) {
	var rows []Row
	for _, p := range All() {
		row, err := Characterize(p, seeds)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders rows in the layout of the paper's Table 1, with the
// measured values and the theorem verdict appended.
func FormatTable1(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s | %8s | %8s | %3s | %3s | %-20s | %-12s | %s\n",
		"System", "R(meas.)", "V(meas.)", "N", "WTX", "Consistency(claimed)", "causal-check", "theorem verdict")
	b.WriteString(strings.Repeat("-", 112) + "\n")
	for _, r := range rows {
		n := "yes"
		if !r.Profile.NonBlocking {
			n = "no"
		}
		w := "yes"
		if !r.Profile.MultiWrite {
			w = "no"
		}
		vCol := fmt.Sprintf("%d", r.Profile.ValuesPerObject)
		if r.Profile.ForeignValues {
			vCol += "+f"
		}
		check := "ok"
		if !r.Profile.CausalOK {
			check = "VIOLATED"
		}
		fmt.Fprintf(&b, "%-12s | %8d | %8s | %3s | %3s | %-20s | %-12s | sacrifices %s\n",
			r.Profile.Protocol, r.Profile.ROTRounds, vCol, n, w,
			r.Profile.Claims.Consistency, check, r.Verdict.Sacrifices)
	}
	return b.String()
}

// PaperRows returns the paper's claimed Table 1 rows for the systems we
// model, for side-by-side comparison in EXPERIMENTS.md.
func PaperRows() map[string]string {
	return map[string]string{
		"cops":       "R≤2 V≤2 N=yes WTX=no  causal",
		"copssnow":   "R=1 V=1 N=yes WTX=no  causal (the only fast ROT system in the paper's model)",
		"orbe":       "R=2 V=1 N=no  WTX=no  causal",
		"gentlerain": "R=2 V=1 N=no  WTX=no  causal",
		"contrarian": "R=2 V=1 N=yes WTX=no  causal",
		"eiger":      "R≤3 V≤2 N=yes WTX=yes causal",
		"eigerps":    "Eiger-PS†/SwiftCloud†: R=1 V=1 N=yes WTX=yes — but relies on a system model the paper excludes; in-model it violates minimal progress",
		"wren":       "R=2 V=1 N=yes WTX=yes causal",
		"cure":       "R=2 V=1 N=no  WTX=yes causal",
		"ramp":       "R≤2 V≤2 N=yes WTX=yes read atomicity",
		"spanner":    "R=1 V=1 N=no  WTX=yes strict serializability",
		"naivefast":  "(not in the paper: the impossible design Theorem 1 refutes)",
		"twopcfast":  "(not in the paper: second impossible design, needs the Lemma 3 induction)",
		"fatcops":    "(§3.4 N+R+W sketch: COPS with fat metadata)",
	}
}

package core

import (
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	ps := All()
	if len(ps) != 14 {
		t.Fatalf("protocols = %d, want 14", len(ps))
	}
	for _, p := range ps {
		if ByName(p.Name()) == nil {
			t.Fatalf("ByName(%q) = nil", p.Name())
		}
	}
	if ByName("nonexistent") != nil {
		t.Fatal("ByName of unknown returned a protocol")
	}
	if len(Names()) != 14 {
		t.Fatal("Names size mismatch")
	}
}

func TestCharacterizeVictimAndCorner(t *testing.T) {
	seeds := []int64{1, 2}
	row, err := Characterize(ByName("naivefast"), seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !row.Profile.FastROT() {
		t.Fatalf("naivefast not measured fast: %+v", row.Profile)
	}
	if row.Verdict.Sacrifices != "consistency" {
		t.Fatalf("naivefast verdict = %q", row.Verdict.Sacrifices)
	}

	row, err = Characterize(ByName("copssnow"), seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !row.Profile.FastROT() || row.Profile.MultiWrite {
		t.Fatalf("copssnow profile wrong: %+v", row.Profile)
	}
	if !row.Profile.CausalOK {
		t.Fatalf("copssnow causal check failed: %s", row.Profile.CausalReason)
	}
	if row.Verdict.Sacrifices != "W" {
		t.Fatalf("copssnow verdict = %q", row.Verdict.Sacrifices)
	}
}

func TestFormatTable1(t *testing.T) {
	rows, err := Table1([]int64{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := FormatTable1(rows)
	for _, want := range []string{"copssnow", "wren", "spanner", "sacrifices"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// The theorem: nobody gets everything. Every row sacrifices something.
	for _, r := range rows {
		if r.Verdict.Sacrifices == "" {
			t.Fatalf("%s sacrifices nothing — impossible per Theorem 1", r.Profile.Protocol)
		}
	}
	if len(PaperRows()) != 14 {
		t.Fatal("paper rows incomplete")
	}
}

package protocol

import (
	"repro/internal/sim"
	"repro/internal/store"
)

// This file is the protocol half of the reconfiguration layer (the kernel
// half is sim.Replace/sim.Restore): how a replacement server adopts a
// dead one's shard and catches its state up before serving. Deploy
// registers AdoptShard as every server's replacement hook, so the nemesis
// driver can schedule replica replacement and whole-cluster restore
// against any protocol in the zoo without per-protocol wiring.
//
// Catch-up has three tiers, most specific first:
//
//   1. Syncer — the protocol's own catch-up: the replacement pulls
//      versions AND protocol metadata (dependency tables, write-set
//      annotations) from each live peer replica. cops/fatcops/ramp
//      implement it, because their correctness lives partly in side
//      tables the generic transfer cannot see.
//   2. StoreCarrier — the generic snapshot transfer: every version a
//      live peer replica holds for a shared object that the replacement
//      lacks is deep-copied over, keyed by writer.
//   3. Neither — the replacement keeps whatever its durable image had
//      (sim.Recoverable or a full clone); peers transfer nothing.
//
// Under disjoint placement no peer shares an object with the dead server,
// so peer transfer is structurally empty — the durable image (tier: the
// lose flag) is all there is, which is exactly why a lossy replacement of
// an unreplicated server is real data loss that certification must catch.

// StoreCarrier is implemented by servers whose durable state is a
// store.Store — one line per protocol. It powers both halves of the
// generic catch-up: counting the versions a reattached durable image
// holds, and transferring missing versions from live peers.
type StoreCarrier interface {
	ShardStore() *store.Store
}

// Syncer is the non-default catch-up hook: the replacement pulls objs
// (the objects it shares with the peer) from one live peer replica,
// returning how many versions it adopted. Implementations must be
// deterministic — peers are visited in sorted order and the kernel RNG is
// never consulted — and must deep-copy everything they take: the peer
// keeps running.
type Syncer interface {
	SyncFrom(peer sim.Process, objs []string) int
}

// AdoptShard builds the process that replaces dead server sid: the
// replacement adopts the durable image (Recover() if the server
// implements sim.Recoverable, a full clone otherwise; factory-fresh when
// lose says the disk is gone), then catches up from live peer replicas
// via SyncFrom. Deploy installs it as the kernel replacement hook for
// every server; the kernel keeps the returned process down until the
// companion restart, so it never serves reads before it is caught up.
func (d *Deployment) AdoptShard(k *sim.Kernel, sid sim.ProcessID, old sim.Process, lose bool) (sim.Process, sim.SyncStats) {
	var repl sim.Process
	if lose {
		repl = d.Proto.NewServer(sid, d.Place)
	} else if r, ok := old.(sim.Recoverable); ok {
		repl = r.Recover()
	} else {
		repl = old.Clone()
	}
	st := sim.SyncStats{Snapshot: storedVersions(repl)}
	st.Peer = d.SyncFrom(k, repl, sid)
	return repl, st
}

// SyncFrom catches the replacement for server sid up from every live peer
// replica, in sorted server order: for each object the dead server shared
// with the peer, the replacement adopts the versions it lacks (through
// the protocol's own Syncer when implemented, the generic store transfer
// otherwise). Returns the number of versions transferred. Deterministic
// by construction — placement order and writer identity, never the RNG.
func (d *Deployment) SyncFrom(k *sim.Kernel, repl sim.Process, sid sim.ProcessID) int {
	synced := 0
	for _, peer := range d.Place.Servers() {
		if peer == sid || k.Down(peer) {
			continue
		}
		shared := sharedObjects(d.Place, sid, peer)
		if len(shared) == 0 {
			continue
		}
		src := k.Process(peer)
		if sy, ok := repl.(Syncer); ok {
			synced += sy.SyncFrom(src, shared)
			continue
		}
		synced += CopyMissingVersions(repl, src, shared)
	}
	return synced
}

// sharedObjects returns the objects hosted by both servers, in placement
// (sorted) order.
func sharedObjects(pl *Placement, a, b sim.ProcessID) []string {
	var out []string
	for _, obj := range pl.Objects() {
		if pl.Hosts(a, obj) && pl.Hosts(b, obj) {
			out = append(out, obj)
		}
	}
	return out
}

// CopyMissingVersions is the generic peer transfer: every version src
// holds for objs that dst lacks (keyed by writer) is deep-copied into
// dst's store, preserving visibility, stamps, vectors and dependency
// values. Returns the number of versions copied; 0 when either side does
// not expose its store. Protocol Syncer implementations call this for the
// version chains and then carry their own side tables.
func CopyMissingVersions(dst, src sim.Process, objs []string) int {
	dc, ok := dst.(StoreCarrier)
	if !ok {
		return 0
	}
	sc, ok := src.(StoreCarrier)
	if !ok {
		return 0
	}
	ds, ss := dc.ShardStore(), sc.ShardStore()
	n := 0
	for _, obj := range objs {
		if !ds.Hosts(obj) || !ss.Hosts(obj) {
			continue
		}
		have := make(map[string]bool)
		for _, v := range ds.Versions(obj) {
			have[v.Writer.String()] = true
		}
		for _, v := range ss.Versions(obj) {
			if have[v.Writer.String()] {
				continue
			}
			ds.Install(v.Clone())
			n++
		}
	}
	return n
}

// storedVersions counts the versions a process's durable store holds —
// the snapshot half of a replacement's sync accounting. 0 when the
// process does not expose its store.
func storedVersions(p sim.Process) int {
	sc, ok := p.(StoreCarrier)
	if !ok {
		return 0
	}
	st := sc.ShardStore()
	n := 0
	for _, obj := range st.Objects() {
		n += len(st.Versions(obj))
	}
	return n
}

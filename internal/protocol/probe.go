package protocol

import (
	"repro/internal/model"
	"repro/internal/sim"
)

// ProbeBudget bounds the event count of a single visibility probe.
const ProbeBudget = 4096

// Probe clones the current configuration, runs a fresh read-only
// transaction over objs at the given reader, and returns its result.
//
// The schedule visits servers in the given order: the reader's requests
// are delivered and served order[0] first, then order[1], etc., and the
// responses are delivered in the same order — exactly the fine-grained
// control Constructions 1 and 2 of the paper need (σ_old delivers to p_i
// first; σ_new to p_{1-i} first).
//
// When frozen is true, no message other than the reader's own traffic is
// delivered and no process other than the reader and the servers steps: a
// legal finite prefix in which all other in-transit messages are simply
// delayed. When frozen is false and the transaction is still incomplete
// after the frozen phase, the probe "thaws": servers may run and any
// message addressed to a server or the reader may be delivered (but no
// other client ever steps) — this lets blocking protocols complete so
// their eventual visibility can be observed.
//
// Probe never mutates the original configuration; it returns nil if the
// transaction does not complete within the budget.
func (d *Deployment) Probe(reader sim.ProcessID, objs []string, order []sim.ProcessID, frozen bool) *model.Result {
	k := d.Kernel.Snapshot()
	dd := d.At(k)
	cl := dd.Client(reader)
	tid := dd.Invoke(reader, model.NewReadOnly(model.TxnID{}, objs...))

	budget := ProbeBudget
	spend := func(n int) bool { budget -= n; return budget > 0 }

	// Frozen phase: reader and per-order server service only. Servers
	// downed by a nemesis fault are skipped — the probe simply observes
	// whatever the surviving servers answer (or blocks, if the protocol
	// needs the crashed participant).
	for rounds := 0; rounds < 8 && cl.Busy(); rounds++ {
		progress := false
		if len(k.Inbox(reader)) > 0 || k.Process(reader).Ready() {
			k.StepProcess(reader)
			progress = true
		}
		for _, s := range order {
			if k.Down(s) {
				continue
			}
			for _, m := range k.InTransitOn(sim.Link{From: reader, To: s}) {
				k.Deliver(m.ID)
				progress = true
			}
			if len(k.Inbox(s)) > 0 {
				k.StepProcess(s)
				progress = true
			}
		}
		for _, s := range order {
			for _, m := range k.InTransitOn(sim.Link{From: s, To: reader}) {
				k.Deliver(m.ID)
				progress = true
			}
		}
		if len(k.Inbox(reader)) > 0 {
			k.StepProcess(reader)
			progress = true
		}
		if !progress || !spend(4) {
			break
		}
	}

	if cl.Busy() && !frozen {
		// Thaw: servers plus reader act; deliveries of anything already
		// sent to them are allowed; other clients stay frozen.
		allowed := append(dd.Place.Servers(), reader)
		r := sim.Restrict(allowed...)
		var others []sim.ProcessID
		for _, id := range k.Processes() {
			if !r.AllowsProc(id) {
				others = append(others, id)
			}
		}
		r.AllowDeliveriesFrom(others...)
		sim.Run(k, &sim.RoundRobin{Only: r}, func(*sim.Kernel) bool { return !cl.Busy() }, budget)
	}

	if cl.Busy() {
		return nil
	}
	return cl.Results()[tid]
}

// ProbeOrders returns the battery of server visit orders used by the
// visibility check: each rotation of the server list and the full
// reversal. For two servers this is both permutations.
func (d *Deployment) ProbeOrders(objs []string) [][]sim.ProcessID {
	base := d.Place.ServersFor(objs)
	if len(base) == 0 {
		base = d.Place.Servers()
	}
	var orders [][]sim.ProcessID
	n := len(base)
	for r := 0; r < n; r++ {
		rot := make([]sim.ProcessID, n)
		for i := 0; i < n; i++ {
			rot[i] = base[(i+r)%n]
		}
		orders = append(orders, rot)
	}
	if n > 1 {
		rev := make([]sim.ProcessID, n)
		for i := 0; i < n; i++ {
			rev[i] = base[n-1-i]
		}
		orders = append(orders, rev)
	}
	return orders
}

// Visibility is the outcome of a VisibleAll check.
type Visibility struct {
	// Visible is true when every probe completed and returned the
	// expected value for every object.
	Visible bool
	// Incomplete is true when some probe did not complete (blocking
	// protocols under frozen probing).
	Incomplete bool
	// Counterexample is a probe result that returned something other
	// than the expected values (nil when none did).
	Counterexample *model.Result
}

// VisibleAll implements Definition 2 (value visibility), approximated over
// the probe battery: the values in want are visible iff every probe
// (every server order) returns exactly them. A probe returning anything
// else is a scheduling witness that the value is not (yet) visible.
// Probes run on clones; the configuration is unchanged.
func (d *Deployment) VisibleAll(reader sim.ProcessID, want map[string]model.Value, frozen bool) Visibility {
	objs := make([]string, 0, len(want))
	for o := range want {
		objs = append(objs, o)
	}
	txnObjs := model.NewReadOnly(model.TxnID{}, objs...).ReadSet // sorted, deduped
	out := Visibility{Visible: true}
	for _, order := range d.ProbeOrders(txnObjs) {
		res := d.Probe(reader, txnObjs, order, frozen)
		if res == nil || !res.OK() {
			out.Visible = false
			out.Incomplete = true
			continue
		}
		for _, obj := range txnObjs {
			if res.Value(obj) != want[obj] {
				out.Visible = false
				out.Counterexample = res
			}
		}
	}
	return out
}

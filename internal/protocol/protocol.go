// Package protocol defines the service-provider interface every modeled
// storage system implements: clients and servers as sim processes,
// object placement (disjoint or partially replicated), deployments tying
// a protocol to a kernel, and the value-visibility probes of Definition 2.
package protocol

import (
	"repro/internal/model"
	"repro/internal/sim"
)

// Claims records the fast-read-only-transaction sub-properties a protocol
// claims (Definition 4) plus its claimed consistency level. The spec
// package measures the actual properties from traces; Table 1 compares the
// two.
type Claims struct {
	// OneRound: read-only transactions complete in one round trip.
	OneRound bool
	// OneValue: each server→client message carries at most one written
	// value per object read.
	OneValue bool
	// NonBlocking: servers answer read requests in the computation step
	// that receives them.
	NonBlocking bool
	// MultiWriteTxn: transactions may write more than one object.
	MultiWriteTxn bool
	// Consistency is the claimed level: "causal", "read-atomic",
	// "serializable", "strict-serializable" or "none".
	Consistency string
}

// FastROT reports whether the claims amount to fast read-only transactions
// per Definition 4.
func (c Claims) FastROT() bool { return c.OneRound && c.OneValue && c.NonBlocking }

// Role classifies a payload for trace analysis.
type Role uint8

// Payload roles.
const (
	RoleInternal  Role = iota // server↔server or bookkeeping traffic
	RoleReadReq               // client→server read(-round) request
	RoleReadResp              // server→client read response
	RoleWriteReq              // client→server write/prepare/commit request
	RoleWriteResp             // server→client write ack
)

func (r Role) String() string {
	switch r {
	case RoleReadReq:
		return "read-req"
	case RoleReadResp:
		return "read-resp"
	case RoleWriteReq:
		return "write-req"
	case RoleWriteResp:
		return "write-resp"
	default:
		return "internal"
	}
}

// TxnPayload is implemented by payloads belonging to a transaction; the
// spec package uses it to attribute messages to transactions.
type TxnPayload interface {
	sim.Payload
	Txn() model.TxnID
	PayloadRole() Role
}

// ValueCarrier is implemented by payloads carrying written values; the
// spec package uses it to measure the one-value property. Metadata (e.g.
// timestamps) is not a value — only data written by some transaction into
// some object counts (Definition 4, property 2 and its footnote).
type ValueCarrier interface {
	CarriedValues() []model.ValueRef
}

// Client is a protocol client process. Clients are sequential (the paper's
// model): one transaction is actively executed at a time, and further
// invocations queue behind it in submission order, forming a per-client
// pipeline the load driver keeps saturated.
type Client interface {
	sim.Process
	// Invoke submits a transaction. If the transaction's ID is zero the
	// client assigns the next per-client sequence number. If a
	// transaction is already active the new one queues behind it. The
	// (possibly assigned) ID is returned.
	Invoke(t *model.Txn) model.TxnID
	// Busy reports whether a transaction is actively executing.
	Busy() bool
	// Outstanding reports the number of invoked-but-unfinished
	// transactions (the active one plus the queue).
	Outstanding() int
	// Results returns the completed transactions' results, keyed by ID.
	Results() map[model.TxnID]*model.Result
	// TakeFinished drains the results completed since the previous call,
	// in completion order (per-client program order).
	TakeFinished() []*model.Result
}

// Protocol builds the processes of one modeled system.
type Protocol interface {
	// Name is a short identifier ("copssnow", "wren", ...).
	Name() string
	// Claims returns the claimed properties (the paper-table row).
	Claims() Claims
	// NewServer creates the server process with the given identity.
	NewServer(id sim.ProcessID, pl *Placement) sim.Process
	// NewClient creates a client process.
	NewClient(id sim.ProcessID, pl *Placement) Client
}

package protocol

import (
	"repro/internal/model"
	"repro/internal/sim"
)

// Core is the common client machinery embedded by every protocol client:
// transaction lifecycle, per-client sequence numbers, result collection
// and timing. Protocol clients implement Step around it.
//
// The core pipelines invocations: one transaction is *active* (being
// executed by the protocol state machine) at a time, and further
// invocations queue behind it in submission order. When the active
// transaction finishes, the next queued one becomes active and the
// client's Ready() turns true again, so schedulers pick it up without any
// protocol-specific code. Protocol clients only ever see the active
// transaction (Current/Result); the queue is invisible to them.
type Core struct {
	id      sim.ProcessID
	pl      *Placement
	seq     int
	cur     *model.Txn
	curRes  *model.Result
	queue   []*model.Txn // invoked, waiting for the active txn to finish
	results map[model.TxnID]*model.Result
	// finished collects completed results (in completion order, which is
	// per-client program order) until a driver drains them.
	finished []*model.Result
	// started marks that the first step of the active transaction has
	// run (the client has sent its first round).
	started bool
	rounds  int
}

// NewCore initializes the embedded client core.
func NewCore(id sim.ProcessID, pl *Placement) Core {
	return Core{id: id, pl: pl, results: make(map[model.TxnID]*model.Result)}
}

// ID implements sim.Process.
func (c *Core) ID() sim.ProcessID { return c.id }

// Placement returns the deployment placement.
func (c *Core) Placement() *Placement { return c.pl }

// Invoke implements Client. If a transaction is already active the new one
// queues behind it and starts automatically when its predecessors finish.
func (c *Core) Invoke(t *model.Txn) model.TxnID {
	c.seq++
	if t.ID.IsZero() {
		t.ID = model.TxnID{Client: string(c.id), Seq: c.seq}
	}
	if c.cur != nil {
		c.queue = append(c.queue, t)
		return t.ID
	}
	c.activate(t)
	return t.ID
}

// activate makes t the active transaction.
func (c *Core) activate(t *model.Txn) {
	c.cur = t
	c.curRes = &model.Result{Txn: t, Values: make(map[string]model.Value), Invoked: -1}
	c.started = false
	c.rounds = 0
}

// Busy implements Client: a transaction is active (the queue may hold more).
func (c *Core) Busy() bool { return c.cur != nil }

// Outstanding implements Client: active plus queued invocations.
func (c *Core) Outstanding() int {
	n := len(c.queue)
	if c.cur != nil {
		n++
	}
	return n
}

// Current returns the active transaction (nil when idle).
func (c *Core) Current() *model.Txn { return c.cur }

// Result returns the active transaction's accumulating result.
func (c *Core) Result() *model.Result { return c.curRes }

// Results implements Client.
func (c *Core) Results() map[model.TxnID]*model.Result { return c.results }

// TakeFinished implements Client: it drains the results completed since
// the previous call, in completion order.
func (c *Core) TakeFinished() []*model.Result {
	out := c.finished
	c.finished = nil
	return out
}

// Starting records the start of the active transaction on the first step
// after it became active and reports whether this step is that first step.
func (c *Core) Starting(now sim.Time) bool {
	if c.cur == nil || c.started {
		return false
	}
	c.started = true
	c.curRes.Invoked = int64(now)
	return true
}

// Started reports whether the active transaction's first step has run.
func (c *Core) Started() bool { return c.cur != nil && c.started }

// SentRound counts a request-sending round (for Result.Rounds bookkeeping).
func (c *Core) SentRound() { c.rounds++ }

// complete records res and activates the next queued transaction, if any.
func (c *Core) complete(res *model.Result) {
	c.results[c.cur.ID] = res
	c.finished = append(c.finished, res)
	c.cur, c.curRes = nil, nil
	c.started = false
	if len(c.queue) > 0 {
		next := c.queue[0]
		c.queue = c.queue[1:]
		c.activate(next)
	}
}

// Finish completes the active transaction with the accumulated values.
func (c *Core) Finish(now sim.Time) *model.Result {
	if c.cur == nil {
		panic("protocol: Finish with no transaction in flight")
	}
	res := c.curRes
	res.Completed = int64(now)
	res.Rounds = c.rounds
	c.complete(res)
	return res
}

// Reject completes the active transaction immediately with an error (used
// for unsupported transaction shapes, e.g. multi-object writes on systems
// without write transactions).
func (c *Core) Reject(now sim.Time, why string) *model.Result {
	if c.cur == nil {
		panic("protocol: Reject with no transaction in flight")
	}
	res := c.curRes
	if res.Invoked < 0 {
		res.Invoked = int64(now)
	}
	res.Err = why
	res.Completed = int64(now)
	c.complete(res)
	return res
}

// CloneCore deep-copies the core (for Process.Clone implementations).
func (c *Core) CloneCore() Core {
	cp := *c
	if c.cur != nil {
		cp.cur = c.cur.Clone()
	}
	if c.curRes != nil {
		r := *c.curRes
		r.Txn = cp.cur
		r.Values = make(map[string]model.Value, len(c.curRes.Values))
		for k, v := range c.curRes.Values {
			r.Values[k] = v
		}
		cp.curRes = &r
	}
	// Always detach the queue: even an empty slice may share backing
	// capacity with the original, and appends on both sides would then
	// overwrite each other's queued transactions.
	cp.queue = nil
	for _, t := range c.queue {
		cp.queue = append(cp.queue, t.Clone())
	}
	// Completed results are immutable; slice and map copies suffice.
	cp.finished = append([]*model.Result(nil), c.finished...)
	cp.results = make(map[model.TxnID]*model.Result, len(c.results))
	for k, v := range c.results {
		cp.results[k] = v
	}
	return cp
}

// RejectsMultiWrite reports whether the transaction is a multi-object
// write transaction, which protocols without the W property must reject.
func RejectsMultiWrite(t *model.Txn) bool { return len(t.WriteSet()) > 1 }

package protocol

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sim"
)

// Core is the common client machinery embedded by every protocol client:
// transaction lifecycle, per-client sequence numbers, result collection
// and timing. Protocol clients implement Step around it.
type Core struct {
	id      sim.ProcessID
	pl      *Placement
	seq     int
	cur     *model.Txn
	curRes  *model.Result
	results map[model.TxnID]*model.Result
	// started marks that the first step of the current transaction has
	// run (the client has sent its first round).
	started bool
	rounds  int
}

// NewCore initializes the embedded client core.
func NewCore(id sim.ProcessID, pl *Placement) Core {
	return Core{id: id, pl: pl, results: make(map[model.TxnID]*model.Result)}
}

// ID implements sim.Process.
func (c *Core) ID() sim.ProcessID { return c.id }

// Placement returns the deployment placement.
func (c *Core) Placement() *Placement { return c.pl }

// Invoke implements Client.
func (c *Core) Invoke(t *model.Txn) model.TxnID {
	if c.cur != nil {
		panic(fmt.Sprintf("protocol: client %s already has %s in flight", c.id, c.cur.ID))
	}
	c.seq++
	if t.ID.IsZero() {
		t.ID = model.TxnID{Client: string(c.id), Seq: c.seq}
	}
	c.cur = t
	c.curRes = &model.Result{Txn: t, Values: make(map[string]model.Value), Invoked: -1}
	c.started = false
	c.rounds = 0
	return t.ID
}

// Busy implements Client.
func (c *Core) Busy() bool { return c.cur != nil }

// Current returns the in-flight transaction (nil when idle).
func (c *Core) Current() *model.Txn { return c.cur }

// Result returns the in-flight transaction's accumulating result.
func (c *Core) Result() *model.Result { return c.curRes }

// Results implements Client.
func (c *Core) Results() map[model.TxnID]*model.Result { return c.results }

// Starting records the start of the current transaction on the first step
// after Invoke and reports whether this step is that first step.
func (c *Core) Starting(now sim.Time) bool {
	if c.cur == nil || c.started {
		return false
	}
	c.started = true
	c.curRes.Invoked = int64(now)
	return true
}

// Started reports whether the current transaction's first step has run.
func (c *Core) Started() bool { return c.cur != nil && c.started }

// SentRound counts a request-sending round (for Result.Rounds bookkeeping).
func (c *Core) SentRound() { c.rounds++ }

// Finish completes the current transaction with the accumulated values.
func (c *Core) Finish(now sim.Time) *model.Result {
	if c.cur == nil {
		panic("protocol: Finish with no transaction in flight")
	}
	res := c.curRes
	res.Completed = int64(now)
	res.Rounds = c.rounds
	c.results[c.cur.ID] = res
	c.cur, c.curRes = nil, nil
	return res
}

// Reject completes the current transaction immediately with an error (used
// for unsupported transaction shapes, e.g. multi-object writes on systems
// without write transactions).
func (c *Core) Reject(now sim.Time, why string) *model.Result {
	if c.cur == nil {
		panic("protocol: Reject with no transaction in flight")
	}
	res := c.curRes
	if res.Invoked < 0 {
		res.Invoked = int64(now)
	}
	res.Err = why
	res.Completed = int64(now)
	c.results[c.cur.ID] = res
	c.cur, c.curRes = nil, nil
	return res
}

// CloneCore deep-copies the core (for Process.Clone implementations).
func (c *Core) CloneCore() Core {
	cp := *c
	if c.cur != nil {
		cp.cur = c.cur.Clone()
	}
	if c.curRes != nil {
		r := *c.curRes
		r.Txn = cp.cur
		r.Values = make(map[string]model.Value, len(c.curRes.Values))
		for k, v := range c.curRes.Values {
			r.Values[k] = v
		}
		cp.curRes = &r
	}
	cp.results = make(map[model.TxnID]*model.Result, len(c.results))
	for k, v := range c.results {
		cp.results[k] = v // completed results are immutable
	}
	return cp
}

// RejectsMultiWrite reports whether the transaction is a multi-object
// write transaction, which protocols without the W property must reject.
func RejectsMultiWrite(t *model.Txn) bool { return len(t.WriteSet()) > 1 }

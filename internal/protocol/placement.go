package protocol

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Placement maps objects to the servers storing them. The paper's main
// theorem uses disjoint placement (each object on exactly one server); the
// general theorem (appendix) allows partial replication: replica sets may
// overlap but no server stores every object.
type Placement struct {
	servers  []sim.ProcessID
	objects  []string
	replicas map[string][]sim.ProcessID
	hosted   map[sim.ProcessID][]string
	index    map[sim.ProcessID]int
}

// NewPlacement builds a placement from an explicit object→servers map.
func NewPlacement(replicas map[string][]sim.ProcessID) *Placement {
	p := &Placement{
		replicas: make(map[string][]sim.ProcessID, len(replicas)),
		hosted:   make(map[sim.ProcessID][]string),
		index:    make(map[sim.ProcessID]int),
	}
	for obj, srvs := range replicas {
		if len(srvs) == 0 {
			panic(fmt.Sprintf("protocol: object %s has no replicas", obj))
		}
		cp := append([]sim.ProcessID(nil), srvs...)
		sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
		p.replicas[obj] = cp
		p.objects = append(p.objects, obj)
		for _, s := range cp {
			p.hosted[s] = append(p.hosted[s], obj)
		}
	}
	sort.Strings(p.objects)
	for s := range p.hosted {
		sort.Strings(p.hosted[s])
		p.servers = append(p.servers, s)
	}
	sort.Slice(p.servers, func(i, j int) bool { return p.servers[i] < p.servers[j] })
	for i, s := range p.servers {
		p.index[s] = i
	}
	return p
}

// Disjoint builds the paper's base placement: nServers servers named
// "s0".., each exclusively hosting perServer objects named "X0", "X1", ...
func Disjoint(nServers, perServer int) *Placement {
	replicas := make(map[string][]sim.ProcessID)
	for i := 0; i < nServers; i++ {
		sid := sim.ProcessID(fmt.Sprintf("s%d", i))
		for j := 0; j < perServer; j++ {
			obj := fmt.Sprintf("X%d", i*perServer+j)
			replicas[obj] = []sim.ProcessID{sid}
		}
	}
	return NewPlacement(replicas)
}

// Replicated builds a partially replicated placement: nObjects objects,
// object Xj hosted on the r servers j%n, (j+1)%n, ..., (j+r-1)%n. With
// r < n no server stores every object (for nObjects ≥ n), matching the
// appendix model.
func Replicated(nServers, nObjects, r int) *Placement {
	if r < 1 {
		r = 1
	}
	if r > nServers {
		r = nServers
	}
	replicas := make(map[string][]sim.ProcessID)
	for j := 0; j < nObjects; j++ {
		var srvs []sim.ProcessID
		for k := 0; k < r; k++ {
			srvs = append(srvs, sim.ProcessID(fmt.Sprintf("s%d", (j+k)%nServers)))
		}
		replicas[fmt.Sprintf("X%d", j)] = srvs
	}
	return NewPlacement(replicas)
}

// Servers returns all server IDs, sorted.
func (p *Placement) Servers() []sim.ProcessID {
	return append([]sim.ProcessID(nil), p.servers...)
}

// NumServers returns the server count.
func (p *Placement) NumServers() int { return len(p.servers) }

// Objects returns all object names, sorted.
func (p *Placement) Objects() []string {
	return append([]string(nil), p.objects...)
}

// ReplicasOf returns the servers hosting obj, sorted. Nil if unknown.
func (p *Placement) ReplicasOf(obj string) []sim.ProcessID {
	return append([]sim.ProcessID(nil), p.replicas[obj]...)
}

// PrimaryOf returns the first (coordinating) replica of obj.
func (p *Placement) PrimaryOf(obj string) sim.ProcessID {
	srvs := p.replicas[obj]
	if len(srvs) == 0 {
		panic(fmt.Sprintf("protocol: no placement for object %s", obj))
	}
	return srvs[0]
}

// HostedBy returns the objects stored on server id, sorted.
func (p *Placement) HostedBy(id sim.ProcessID) []string {
	return append([]string(nil), p.hosted[id]...)
}

// Hosts reports whether server id stores obj.
func (p *Placement) Hosts(id sim.ProcessID, obj string) bool {
	for _, o := range p.hosted[id] {
		if o == obj {
			return true
		}
	}
	return false
}

// ServerIndex returns the dense index of a server (for vector clocks).
func (p *Placement) ServerIndex(id sim.ProcessID) int {
	i, ok := p.index[id]
	if !ok {
		panic(fmt.Sprintf("protocol: unknown server %s", id))
	}
	return i
}

// IsReplicated reports whether any object has more than one replica.
func (p *Placement) IsReplicated() bool {
	for _, srvs := range p.replicas {
		if len(srvs) > 1 {
			return true
		}
	}
	return false
}

// ServersFor returns the sorted union of replicas of the given objects.
func (p *Placement) ServersFor(objects []string) []sim.ProcessID {
	seen := make(map[sim.ProcessID]bool)
	var out []sim.ProcessID
	for _, o := range objects {
		for _, s := range p.replicas[o] {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package protocol_test

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/protocols/naivefast"
	"repro/internal/sim"
)

func TestTopologyByName(t *testing.T) {
	for _, name := range []string{"", "uniform"} {
		topo, err := protocol.TopologyByName(name)
		if err != nil || topo != nil {
			t.Fatalf("protocol.TopologyByName(%q) = %v, %v; want nil, nil", name, topo, err)
		}
	}
	for name, sites := range map[string]int{"2site": 2, "3site": 3} {
		topo, err := protocol.TopologyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if topo.Name != name || topo.Sites != sites {
			t.Fatalf("protocol.TopologyByName(%q) = %+v", name, topo)
		}
		if topo.CrossLo <= topo.IntraHi {
			t.Fatalf("%s cross-site floor %d does not clear the intra-site "+
				"ceiling %d — the lookahead separation regime is gone",
				name, topo.CrossLo, topo.IntraHi)
		}
	}
	if _, err := protocol.TopologyByName("moonbase"); err == nil {
		t.Fatal("unknown topology resolved")
	}
}

func TestSiteOfIsPureAndDigitBased(t *testing.T) {
	topo, _ := protocol.TopologyByName("2site")
	for pid, want := range map[sim.ProcessID]int{
		"s0": 0, "s1": 1, "s2": 0, "s3": 1,
		"c0": 0, "c1": 1, "c10": 0, "c13": 1,
		"cin0": 0, "cin3": 1, "r2": 0,
		"noDigits": 0,
	} {
		if got := topo.SiteOf(pid); got != want {
			t.Fatalf("SiteOf(%s) = %d, want %d", pid, got, want)
		}
	}
	three, _ := protocol.TopologyByName("3site")
	if three.SiteOf("s5") != 2 || three.SiteOf("c10") != 1 {
		t.Fatal("3site digit assignment wrong")
	}
}

// TestDeployDeclaresTopologyFloorMatrix: deploying under the 2-site
// topology must yield exactly the per-directed-link floor matrix the
// lookahead engine feeds on — CrossLo on every cross-site link in both
// directions (servers, clients, readers and init clients alike), and
// the global IntraLo floor on every same-site link.
func TestDeployDeclaresTopologyFloorMatrix(t *testing.T) {
	topo, err := protocol.TopologyByName("2site")
	if err != nil {
		t.Fatal(err)
	}
	d := protocol.Deploy(naivefast.New(), protocol.Config{
		Servers: 4, Clients: 4, Seed: 1, Topology: topo,
	})
	k := d.Kernel
	if k.LatencyFloor() != topo.IntraLo {
		t.Fatalf("global floor = %d, want IntraLo %d", k.LatencyFloor(), topo.IntraLo)
	}
	if d.Topo != topo {
		t.Fatal("deployment did not record the topology")
	}
	procs := k.Processes()
	cross, intra := 0, 0
	for _, from := range procs {
		for _, to := range procs {
			if from == to {
				continue
			}
			got := k.LinkLatencyFloor(sim.Link{From: from, To: to})
			want := topo.IntraLo
			if topo.SiteOf(from) != topo.SiteOf(to) {
				want = topo.CrossLo
				cross++
			} else {
				intra++
			}
			if got != want {
				t.Fatalf("floor(%s→%s) = %d, want %d", from, to, got, want)
			}
		}
	}
	if cross == 0 || intra == 0 {
		t.Fatalf("degenerate matrix: %d cross, %d intra links", cross, intra)
	}
}

// TestExplicitLatencyModelWinsOverTopology: an explicit Latency model
// plus its declared floor takes precedence — the topology is ignored
// entirely, preserving every pre-topology deployment byte for byte.
func TestExplicitLatencyModelWinsOverTopology(t *testing.T) {
	topo, _ := protocol.TopologyByName("2site")
	d := protocol.Deploy(naivefast.New(), protocol.Config{
		Servers: 2, Clients: 2, Seed: 1,
		Latency:      sim.UniformLatency(700, 900),
		LatencyFloor: 700,
		Topology:     topo,
	})
	if d.Topo != nil {
		t.Fatal("explicit latency model did not suppress the topology")
	}
	if d.Kernel.LatencyFloor() != 700 {
		t.Fatalf("floor = %d, want the explicit 700", d.Kernel.LatencyFloor())
	}
	l := sim.Link{From: "s0", To: "s1"}
	if d.Kernel.LinkLatencyFloor(l) != 700 {
		t.Fatal("cross-site link floor declared despite explicit model")
	}
}

package protocol

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sim"
)

// Config describes a deployment.
type Config struct {
	// Servers and ObjectsPerServer size the disjoint placement; ignored
	// when Place is set.
	Servers          int
	ObjectsPerServer int
	// Replication > 1 builds a partially replicated placement instead
	// (Replication replicas per object over Servers servers hosting
	// Servers*ObjectsPerServer objects total).
	Replication int
	// Place overrides the computed placement entirely.
	Place *Placement
	// Clients is the number of workload clients ("c0", "c1", ...).
	Clients int
	// Readers is the number of reserved probe/adversary reader clients
	// ("r0", ...). Defaults to 4 (the paper needs at least four clients).
	Readers int
	// Seed seeds the kernel RNG (link latencies, random schedules).
	Seed int64
	// Latency overrides the kernel latency model. LatencyFloor declares
	// its lower bound (used to size the sharded runner's conservative
	// windows); it is ignored when Latency is nil — the default model's
	// floor (500µs) is declared automatically.
	Latency      sim.LatencyModel
	LatencyFloor sim.Time
	// Topology selects a geo-asymmetric deployment: sites, intra- vs
	// cross-site latency distributions and their declared per-link
	// floors (see Topology). Ignored when Latency is set — an explicit
	// model plus its LatencyFloor wins. Nil is the uniform deployment.
	Topology *Topology
}

// Deployment is a protocol instantiated on a kernel: servers, workload
// clients, reserved readers and the initializing clients (one per object,
// per the paper's T_in transactions).
type Deployment struct {
	Kernel  *sim.Kernel
	Proto   Protocol
	Place   *Placement
	Clients []sim.ProcessID
	Readers []sim.ProcessID
	Inits   []sim.ProcessID // cin0, cin1, ... one per object
	// Topo is the deployed topology (nil for the uniform deployment).
	// The driver's shard striping consults it so each shard stays
	// single-site and cross-site links retain their wider lookahead.
	Topo *Topology
}

// Deploy builds a deployment.
func Deploy(p Protocol, cfg Config) *Deployment {
	if cfg.Servers == 0 {
		cfg.Servers = 2
	}
	if cfg.ObjectsPerServer == 0 {
		cfg.ObjectsPerServer = 1
	}
	if cfg.Clients == 0 {
		cfg.Clients = 2
	}
	if cfg.Readers == 0 {
		cfg.Readers = 4
	}
	pl := cfg.Place
	if pl == nil {
		if cfg.Replication > 1 {
			pl = Replicated(cfg.Servers, cfg.Servers*cfg.ObjectsPerServer, cfg.Replication)
		} else {
			pl = Disjoint(cfg.Servers, cfg.ObjectsPerServer)
		}
	}
	topo := cfg.Topology
	lat := cfg.Latency
	if lat != nil {
		topo = nil // an explicit model wins over a topology
	} else if topo != nil {
		lat = topo.Latency()
	}
	k := sim.NewKernel(cfg.Seed, lat)
	switch {
	case topo != nil:
		// Floors are declared below, after the process set is complete.
	case cfg.Latency == nil:
		// The default model is uniform [500µs, 1500µs]; declare its floor
		// so sharded stepping gets full-width windows.
		k.SetLatencyFloor(500)
	default:
		k.SetLatencyFloor(cfg.LatencyFloor)
	}
	d := &Deployment{Kernel: k, Proto: p, Place: pl, Topo: topo}
	// Recovery hooks for lossy crashes (nemesis layer): a process that
	// implements sim.Recoverable rebuilds its own durable state; otherwise
	// a lossy restart yields a factory-fresh replacement — all volatile
	// state gone, exactly the fault model of an unreplicated in-memory
	// store.
	recoverServer := func(sid sim.ProcessID) func(sim.Process) sim.Process {
		return func(old sim.Process) sim.Process {
			if r, ok := old.(sim.Recoverable); ok {
				return r.Recover()
			}
			return p.NewServer(sid, pl)
		}
	}
	recoverClient := func(id sim.ProcessID) func(sim.Process) sim.Process {
		return func(old sim.Process) sim.Process {
			if r, ok := old.(sim.Recoverable); ok {
				return r.Recover()
			}
			return p.NewClient(id, pl)
		}
	}
	for _, sid := range pl.Servers() {
		k.Add(p.NewServer(sid, pl))
		k.SetRecovery(sid, recoverServer(sid))
		// Replacement hook (reconfiguration): a fresh process adopts this
		// server's shard and catches up before serving (sync.go). The
		// kernel is a hook parameter, so deployment snapshots replay
		// replacements against their own copy.
		sid := sid
		k.SetReplacement(sid, func(kk *sim.Kernel, old sim.Process, lose bool) (sim.Process, sim.SyncStats) {
			return d.AdoptShard(kk, sid, old, lose)
		})
	}
	for i := 0; i < cfg.Clients; i++ {
		id := sim.ProcessID(fmt.Sprintf("c%d", i))
		k.Add(p.NewClient(id, pl))
		k.SetRecovery(id, recoverClient(id))
		d.Clients = append(d.Clients, id)
	}
	for i := 0; i < cfg.Readers; i++ {
		id := sim.ProcessID(fmt.Sprintf("r%d", i))
		k.Add(p.NewClient(id, pl))
		k.SetRecovery(id, recoverClient(id))
		d.Readers = append(d.Readers, id)
	}
	for i := range pl.Objects() {
		id := sim.ProcessID(fmt.Sprintf("cin%d", i))
		k.Add(p.NewClient(id, pl))
		k.SetRecovery(id, recoverClient(id))
		d.Inits = append(d.Inits, id)
	}
	if topo != nil {
		topo.DeclareFloors(k)
	}
	return d
}

// At rebinds the deployment metadata to another kernel (typically a
// Snapshot of the original); processes are looked up by ID.
func (d *Deployment) At(k *sim.Kernel) *Deployment {
	c := *d
	c.Kernel = k
	return &c
}

// Client returns the client process with the given ID.
func (d *Deployment) Client(id sim.ProcessID) Client {
	cl, ok := d.Kernel.Process(id).(Client)
	if !ok {
		panic(fmt.Sprintf("protocol: %s is not a client", id))
	}
	return cl
}

// Invoke submits a transaction at a client and annotates the trace.
func (d *Deployment) Invoke(id sim.ProcessID, t *model.Txn) model.TxnID {
	tid := d.Client(id).Invoke(t)
	d.Kernel.Annotate(sim.EvInvoke, id, t.String())
	return tid
}

// Participants returns all servers plus the given clients — the allowed
// set for restricted ("solo") runs.
func (d *Deployment) Participants(clients ...sim.ProcessID) []sim.ProcessID {
	out := d.Place.Servers()
	out = append(out, clients...)
	return out
}

// RunTxn invokes t at the client and drives the whole system round-robin
// until the transaction completes (or maxEvents elapse). It returns the
// result, or nil if the transaction did not complete.
func (d *Deployment) RunTxn(id sim.ProcessID, t *model.Txn, maxEvents int) *model.Result {
	tid := d.Invoke(id, t)
	cl := d.Client(id)
	sim.Run(d.Kernel, &sim.RoundRobin{}, func(*sim.Kernel) bool { return !cl.Busy() }, maxEvents)
	res := cl.Results()[tid]
	if res != nil {
		d.Kernel.Annotate(sim.EvResponse, id, t.ID.String())
	}
	return res
}

// RunTxnWith is RunTxn under an arbitrary scheduler.
func (d *Deployment) RunTxnWith(id sim.ProcessID, t *model.Txn, sched sim.Scheduler, maxEvents int) *model.Result {
	tid := d.Invoke(id, t)
	cl := d.Client(id)
	sim.Run(d.Kernel, sched, func(*sim.Kernel) bool { return !cl.Busy() }, maxEvents)
	res := cl.Results()[tid]
	if res != nil {
		d.Kernel.Annotate(sim.EvResponse, id, t.ID.String())
	}
	return res
}

// Settle drains the system to quiescence (bounded), letting replication
// and stabilization traffic finish.
func (d *Deployment) Settle(maxEvents int) { sim.Drain(d.Kernel, maxEvents) }

// InitialValue returns the conventional initial value written into obj by
// the initializing transactions ("xin<obj>").
func InitialValue(obj string) model.Value { return model.Value("xin_" + obj) }

// IsInitClient reports whether the client ID names one of the deployment's
// initializing clients (cin0, cin1, ...). Timestamp-ordered protocols use
// this to stamp the initializing writes strictly below all others.
func IsInitClient(id sim.ProcessID) bool {
	return len(id) >= 3 && id[:3] == "cin"
}

// InitAll runs the paper's initializing transactions: for every object
// X_i, client cin_i writes the initial value, then the system settles so
// the values are visible (configuration Q_0 / QE_0).
func (d *Deployment) InitAll(maxEvents int) error {
	objs := d.Place.Objects()
	for i, obj := range objs {
		t := model.NewWriteOnly(model.TxnID{}, model.Write{Object: obj, Value: InitialValue(obj)})
		res := d.RunTxn(d.Inits[i], t, maxEvents)
		if !res.OK() {
			return fmt.Errorf("protocol: init write of %s failed: %s", obj, errOf(res))
		}
	}
	d.Settle(maxEvents)
	d.Kernel.Annotate(sim.EvMark, "", "Q0: initial values visible")
	return nil
}

func errOf(r *model.Result) string {
	if r == nil {
		return "did not complete"
	}
	return r.Err
}

// Initials returns the initial-value map for history checking.
func (d *Deployment) Initials() map[string]model.Value {
	out := make(map[string]model.Value)
	for _, obj := range d.Place.Objects() {
		out[obj] = InitialValue(obj)
	}
	return out
}

package protocol

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/sim"
)

func TestDisjointPlacement(t *testing.T) {
	pl := Disjoint(3, 2)
	if pl.NumServers() != 3 {
		t.Fatalf("servers = %d", pl.NumServers())
	}
	if len(pl.Objects()) != 6 {
		t.Fatalf("objects = %v", pl.Objects())
	}
	if pl.IsReplicated() {
		t.Fatal("disjoint placement reported replicated")
	}
	// Each object has exactly one replica; each server hosts exactly 2.
	for _, obj := range pl.Objects() {
		if len(pl.ReplicasOf(obj)) != 1 {
			t.Fatalf("object %s has %d replicas", obj, len(pl.ReplicasOf(obj)))
		}
	}
	for _, s := range pl.Servers() {
		if len(pl.HostedBy(s)) != 2 {
			t.Fatalf("server %s hosts %v", s, pl.HostedBy(s))
		}
	}
	if pl.PrimaryOf("X0") != "s0" || !pl.Hosts("s0", "X0") || pl.Hosts("s1", "X0") {
		t.Fatal("placement mapping wrong")
	}
}

func TestReplicatedPlacementNoServerStoresAll(t *testing.T) {
	f := func(nRaw, rRaw uint8) bool {
		n := int(nRaw%4) + 3 // 3..6 servers
		r := int(rRaw%(uint8(n)-1)) + 1
		if r >= n {
			r = n - 1
		}
		pl := Replicated(n, n, r)
		for _, s := range pl.Servers() {
			if len(pl.HostedBy(s)) >= len(pl.Objects()) {
				return false // some server stores everything
			}
		}
		for _, obj := range pl.Objects() {
			if len(pl.ReplicasOf(obj)) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestServerIndexStable(t *testing.T) {
	pl := Disjoint(3, 1)
	seen := map[int]bool{}
	for _, s := range pl.Servers() {
		idx := pl.ServerIndex(s)
		if idx < 0 || idx >= 3 || seen[idx] {
			t.Fatalf("bad index %d for %s", idx, s)
		}
		seen[idx] = true
	}
}

func TestServersForUnion(t *testing.T) {
	pl := Disjoint(3, 1)
	srvs := pl.ServersFor([]string{"X0", "X2"})
	if len(srvs) != 2 || srvs[0] != "s0" || srvs[1] != "s2" {
		t.Fatalf("ServersFor = %v", srvs)
	}
}

func TestPlacementPanicsOnUnknown(t *testing.T) {
	pl := Disjoint(2, 1)
	for _, fn := range []func(){
		func() { pl.PrimaryOf("nope") },
		func() { pl.ServerIndex("s99") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEmptyReplicaSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPlacement(map[string][]sim.ProcessID{"X": {}})
}

func TestCoreLifecycle(t *testing.T) {
	pl := Disjoint(2, 1)
	c := NewCore("cX", pl)
	if c.Busy() {
		t.Fatal("fresh core busy")
	}
	txn := model.NewReadOnly(model.TxnID{}, "X0")
	id := c.Invoke(txn)
	if id.Client != "cX" || id.Seq != 1 {
		t.Fatalf("assigned id = %v", id)
	}
	if !c.Busy() || c.Started() {
		t.Fatal("state after invoke wrong")
	}
	if !c.Starting(10) || c.Starting(11) {
		t.Fatal("Starting must fire exactly once")
	}
	c.Result().Values["X0"] = "v"
	res := c.Finish(20)
	if res.Invoked != 10 || res.Completed != 20 || c.Busy() {
		t.Fatalf("finish result = %+v", res)
	}
	if c.Results()[id] != res {
		t.Fatal("result not recorded")
	}
	// Sequence numbers advance.
	id2 := c.Invoke(model.NewReadOnly(model.TxnID{}, "X1"))
	if id2.Seq != 2 {
		t.Fatalf("seq = %d", id2.Seq)
	}
}

func TestCorePipelinesSecondInvoke(t *testing.T) {
	c := NewCore("cX", Disjoint(2, 1))
	id1 := c.Invoke(model.NewReadOnly(model.TxnID{}, "X0"))
	id2 := c.Invoke(model.NewReadOnly(model.TxnID{}, "X1"))
	id3 := c.Invoke(model.NewReadOnly(model.TxnID{}, "X0", "X1"))
	if id1.Seq != 1 || id2.Seq != 2 || id3.Seq != 3 {
		t.Fatalf("ids = %v %v %v", id1, id2, id3)
	}
	if c.Outstanding() != 3 {
		t.Fatalf("outstanding = %d, want 3", c.Outstanding())
	}
	// The active transaction is the first one; the rest are queued and
	// invisible to the protocol state machine.
	if c.Current().ID != id1 {
		t.Fatalf("current = %v, want %v", c.Current().ID, id1)
	}
	// Finishing the active transaction activates the next queued one,
	// unstarted, so Ready()-style scheduling picks it up.
	c.Starting(10)
	c.Finish(20)
	if c.Current().ID != id2 || c.Started() {
		t.Fatalf("after finish: current = %v started = %v", c.Current().ID, c.Started())
	}
	if c.Outstanding() != 2 {
		t.Fatalf("outstanding = %d, want 2", c.Outstanding())
	}
	c.Starting(30)
	c.Reject(35, "nope")
	if c.Current().ID != id3 {
		t.Fatalf("after reject: current = %v, want %v", c.Current().ID, id3)
	}
	c.Starting(40)
	c.Finish(50)
	if c.Busy() || c.Outstanding() != 0 {
		t.Fatal("core busy after pipeline drained")
	}
	// TakeFinished drains completion-order results exactly once.
	fin := c.TakeFinished()
	if len(fin) != 3 || fin[0].Txn.ID != id1 || fin[1].Txn.ID != id2 || fin[2].Txn.ID != id3 {
		t.Fatalf("finished = %v", fin)
	}
	if fin[1].Err == "" {
		t.Fatal("rejected result lost its error")
	}
	if len(c.TakeFinished()) != 0 {
		t.Fatal("TakeFinished not drained")
	}
	if len(c.Results()) != 3 {
		t.Fatalf("results = %d", len(c.Results()))
	}
}

func TestCloneCoreDetachesDrainedQueue(t *testing.T) {
	c := NewCore("cX", Disjoint(2, 1))
	c.Invoke(model.NewReadOnly(model.TxnID{}, "X0"))
	c.Invoke(model.NewReadOnly(model.TxnID{}, "X1"))
	c.Starting(1)
	c.Finish(2) // pops the queue: len 0, but backing capacity remains
	cp := c.CloneCore()
	id3 := c.Invoke(model.NewReadOnly(model.TxnID{}, "X0"))
	cp.Invoke(model.NewReadOnly(model.TxnID{}, "X1")) // must not clobber id3
	c.Starting(3)
	c.Finish(4)
	if got := c.Current().ID; got != id3 {
		t.Fatalf("original's queued txn clobbered by clone append: current = %v, want %v", got, id3)
	}
}

func TestCloneCoreCopiesPipeline(t *testing.T) {
	c := NewCore("cX", Disjoint(2, 1))
	c.Invoke(model.NewReadOnly(model.TxnID{}, "X0"))
	c.Invoke(model.NewReadOnly(model.TxnID{}, "X1"))
	cp := c.CloneCore()
	cp.Starting(1)
	cp.Finish(2)
	cp.Starting(3)
	cp.Finish(4)
	if c.Outstanding() != 2 || c.Started() {
		t.Fatal("clone drained the original's queue")
	}
	if len(c.TakeFinished()) != 0 || len(cp.TakeFinished()) != 2 {
		t.Fatal("finished lists shared between clones")
	}
}

func TestCoreReject(t *testing.T) {
	c := NewCore("cX", Disjoint(2, 1))
	id := c.Invoke(model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "a"}, model.Write{Object: "X1", Value: "b"}))
	res := c.Reject(5, "unsupported")
	if res.OK() || res.Err != "unsupported" || c.Busy() {
		t.Fatalf("reject = %+v", res)
	}
	if c.Results()[id] != res {
		t.Fatal("rejected result not recorded")
	}
}

func TestCloneCoreIndependence(t *testing.T) {
	c := NewCore("cX", Disjoint(2, 1))
	c.Invoke(model.NewReadOnly(model.TxnID{}, "X0"))
	c.Starting(1)
	c.Result().Values["X0"] = "orig"
	cp := c.CloneCore()
	cp.Result().Values["X0"] = "mut"
	cp.Current().ReadSet[0] = "Z"
	if c.Result().Values["X0"] != "orig" || c.Current().ReadSet[0] != "X0" {
		t.Fatal("clone shares state")
	}
}

func TestRejectsMultiWriteHelper(t *testing.T) {
	single := model.NewWriteOnly(model.TxnID{}, model.Write{Object: "X0", Value: "a"})
	multi := model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "a"}, model.Write{Object: "X1", Value: "b"})
	if RejectsMultiWrite(single) || !RejectsMultiWrite(multi) {
		t.Fatal("RejectsMultiWrite wrong")
	}
	// Two writes to the same object are still single-object.
	sameObj := model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "a"}, model.Write{Object: "X0", Value: "b"})
	if RejectsMultiWrite(sameObj) {
		t.Fatal("same-object double write misclassified")
	}
}

func TestClaimsFastROT(t *testing.T) {
	full := Claims{OneRound: true, OneValue: true, NonBlocking: true}
	if !full.FastROT() {
		t.Fatal("full claims not fast")
	}
	for _, c := range []Claims{
		{OneValue: true, NonBlocking: true},
		{OneRound: true, NonBlocking: true},
		{OneRound: true, OneValue: true},
	} {
		if c.FastROT() {
			t.Fatalf("partial claims %+v reported fast", c)
		}
	}
}

func TestIsInitClient(t *testing.T) {
	if !IsInitClient("cin0") || IsInitClient("c0") || IsInitClient("r1") || IsInitClient("ci") {
		t.Fatal("IsInitClient wrong")
	}
}

func TestRoleStrings(t *testing.T) {
	for role, want := range map[Role]string{
		RoleReadReq: "read-req", RoleReadResp: "read-resp",
		RoleWriteReq: "write-req", RoleWriteResp: "write-resp",
		RoleInternal: "internal",
	} {
		if role.String() != want {
			t.Fatalf("role %d = %q, want %q", role, role.String(), want)
		}
	}
}

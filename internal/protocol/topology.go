package protocol

import (
	"fmt"

	"repro/internal/sim"
)

// Topology declares a geo-asymmetric deployment shape: every process is
// assigned to a site (a pure function of its ID), links between
// same-site processes draw their latency from the intra-site
// distribution, and links crossing sites from the cross-site one. The
// distributions come with declared floors — IntraLo becomes the kernel's
// global latency floor and CrossLo the per-directed-link floor of every
// cross-site link — which is exactly what the per-link conservative
// lookahead engine (sim.NewLookaheadRunner) feeds on: a shard whose
// peers are all across a site boundary can advance CrossLo/IntraLo times
// further per promise than under a uniform floor, while the
// window-synchronized barrier engine stays pinned to the tightest
// (intra-site) edge. A Topology is a pure function of the deployment
// config — no randomness, no worker-count dependence — so the
// byte-identity-per-engine contract of sharded runs is preserved.
type Topology struct {
	// Name labels the topology in reports and grids ("2site", "3site").
	Name string
	// Sites is the number of sites; processes are assigned by their
	// trailing ID digits modulo Sites (so servers s0/s2 and clients
	// c0/c2 share site 0 of a 2-site topology, s1/c1/... site 1).
	Sites int
	// IntraLo/IntraHi bound the uniform intra-site latency
	// distribution; IntraLo doubles as the declared global floor.
	IntraLo, IntraHi sim.Time
	// CrossLo/CrossHi bound the uniform cross-site latency
	// distribution; CrossLo doubles as the declared floor of every
	// cross-site directed link.
	CrossLo, CrossHi sim.Time
}

// Topologies returns the named topology catalogue: uniform (nil — the
// default single-floor deployment) plus the geo-asymmetric shapes. The
// asymmetric ones put intra-site floors 20× tighter than cross-site
// (100µs vs 2ms), the regime where the paper's cross-site round-trip
// lower bounds dominate protocol latency.
func Topologies() []string { return []string{"uniform", "2site", "3site"} }

// TopologyByName resolves a named topology; "uniform" and "" resolve to
// nil (the default symmetric deployment).
func TopologyByName(name string) (*Topology, error) {
	switch name {
	case "", "uniform":
		return nil, nil
	case "2site":
		return &Topology{Name: "2site", Sites: 2,
			IntraLo: 100, IntraHi: 300, CrossLo: 2000, CrossHi: 4000}, nil
	case "3site":
		return &Topology{Name: "3site", Sites: 3,
			IntraLo: 100, IntraHi: 300, CrossLo: 2000, CrossHi: 4000}, nil
	default:
		return nil, fmt.Errorf("unknown topology %q (have %v)", name, Topologies())
	}
}

// SiteOf assigns a process to a site: the trailing decimal digits of the
// ID modulo Sites (s0→0, s1→1, c10→10%Sites, cin3→3%Sites...). IDs
// without trailing digits land on site 0. The assignment is pure — the
// same ID is always on the same site.
func (t *Topology) SiteOf(pid sim.ProcessID) int {
	if t == nil || t.Sites <= 1 {
		return 0
	}
	n, ok := 0, false
	pow := 1
	for i := len(pid) - 1; i >= 0; i-- {
		d := pid[i]
		if d < '0' || d > '9' {
			break
		}
		n += int(d-'0') * pow
		pow *= 10
		ok = true
		if pow > 1_000_000 { // enough digits; avoid overflow on absurd IDs
			break
		}
	}
	if !ok {
		return 0
	}
	return n % t.Sites
}

// Latency builds the asymmetric latency model: uniform [IntraLo,
// IntraHi] when both endpoints share a site, uniform [CrossLo, CrossHi]
// otherwise. Sampling order on the kernel RNG is identical to any other
// LatencyModel, so runs stay deterministic per seed.
func (t *Topology) Latency() sim.LatencyModel {
	intra := sim.UniformLatency(t.IntraLo, t.IntraHi)
	cross := sim.UniformLatency(t.CrossLo, t.CrossHi)
	return func(l sim.Link, rng *sim.RNG) sim.Time {
		if t.SiteOf(l.From) == t.SiteOf(l.To) {
			return intra(l, rng)
		}
		return cross(l, rng)
	}
}

// DeclareFloors declares the topology's latency lower bounds on the
// kernel: IntraLo as the global floor and CrossLo on every cross-site
// directed link between the currently registered processes. Deploy calls
// it after registering the full process set.
func (t *Topology) DeclareFloors(k *sim.Kernel) {
	k.SetLatencyFloor(t.IntraLo)
	procs := k.Processes()
	for _, from := range procs {
		for _, to := range procs {
			if from == to || t.SiteOf(from) == t.SiteOf(to) {
				continue
			}
			k.SetLinkLatencyFloor(sim.Link{From: from, To: to}, t.CrossLo)
		}
	}
}

// Package sim implements the asynchronous message-passing system model of
// Didona et al., "Distributed Transactional Systems Cannot Be Fast"
// (SPAA 2019), Section 2.
//
// The system is a set of processes (clients and servers) modelled as
// deterministic state machines, connected by reliable links. Two kinds of
// events exist:
//
//   - a delivery event moves one message from the outcome buffer of its
//     source link to the income buffer of its destination, and
//   - a computation step makes one process consume every message currently
//     in its income buffers, update its state, and send at most one message
//     per neighbour.
//
// The order of events is controlled by a Scheduler — the adversary of the
// paper. The kernel supports deep configuration snapshots, which the
// adversary uses to construct the indistinguishable executions of the
// impossibility proof (Constructions 1 and 2, and the β → β_p·β_s
// splitting of Lemma 3).
//
// Beyond the proof machinery, the package carries the load-measurement
// substrate in two stepping modes:
//
//   - Serial: the discrete-event Network scheduler (due deliveries →
//     ready steps → clock jump, with a time-leap past parked servers
//     that declare a wake instant via Waker), one event at a time.
//   - Sharded: ShardedRunner partitions the process set into shards and
//     steps them in conservative time windows on a worker pool, merging
//     sends through a deterministic fixed-shard-order rule. For a fixed
//     seed and partition the schedule never depends on the worker
//     count — Workers=1 runs the identical schedule serially and is the
//     differential oracle for any pool size (the serial-equals-parallel
//     guarantee; see ShardedRunner and DESIGN.md).
//
// Both modes share the seeded arrival processes for open-loop injection
// (arrivals.go), Kernel.AdvanceTo plus horizon gating for bounded runs,
// and a load mode (SetTraceCap/SetPayloadRetention) that keeps memory
// flat over millions of events.
package sim

import "fmt"

// ProcessID names a process. Servers are conventionally "s0", "s1", ...;
// clients "c0", "c1", ....
type ProcessID string

// Time is virtual time in microseconds. It only advances through delivery
// events (per the configured latency model) and fixed per-step costs; the
// adversary is free to ignore it, which models asynchrony.
type Time int64

// Payload is the protocol-specific content of a message. Implementations
// must be deeply clonable so configurations can be snapshotted.
type Payload interface {
	// Kind returns a short label used in traces ("read-req", "commit", ...).
	Kind() string
	// Clone returns a deep copy of the payload.
	Clone() Payload
}

// Message is a message either in transit (in an outcome buffer) or awaiting
// consumption (in an income buffer).
type Message struct {
	// ID is unique within a kernel, assigned at send time in send order.
	ID int64
	// From and To identify the link the message travels on.
	From, To ProcessID
	// LinkSeq is the per-(From,To)-link sequence number, assigned at send
	// time. Replays identify messages by (From, To, LinkSeq) because IDs
	// may differ between an original run and a filtered replay.
	LinkSeq int64
	// Payload is the protocol content.
	Payload Payload
	// SentAt and ReadyAt record virtual send time and earliest network
	// arrival time (SentAt + sampled link latency). The adversary may
	// deliver later than ReadyAt (asynchrony) but never earlier.
	SentAt, ReadyAt Time
	// DeliveredAt is set when the message enters the income buffer.
	DeliveredAt Time
	// gone marks a message removed from transit (delivered or dropped);
	// the arrival heap uses it to discard stale index entries lazily.
	gone bool
	// held marks a message stranded by a nemesis fault (destination
	// crashed or link cut): still in transit, but not deliverable until
	// the fault clears (nemesis.go).
	held bool
}

func (m *Message) String() string {
	return fmt.Sprintf("#%d %s->%s %s (seq %d)", m.ID, m.From, m.To, m.Payload.Kind(), m.LinkSeq)
}

func (m *Message) clone() *Message {
	c := *m
	c.Payload = m.Payload.Clone()
	return &c
}

// Link identifies a directed link between two processes.
type Link struct {
	From, To ProcessID
}

func (l Link) String() string { return string(l.From) + "->" + string(l.To) }

// Outbound is a message a process wants to send during a computation step.
type Outbound struct {
	To      ProcessID
	Payload Payload
}

// Process is a deterministic state machine. Implementations must not share
// mutable state between clones and must not consult any nondeterministic
// source (maps must be iterated in sorted order, no wall clocks, no
// package-level randomness).
type Process interface {
	// ID returns the process identity.
	ID() ProcessID
	// Step executes one computation step. inbox contains every message in
	// the process's income buffers, in delivery order; it may be empty (a
	// spontaneous local step). The return value lists messages to send.
	Step(now Time, inbox []*Message) []Outbound
	// Ready reports whether an empty-inbox step would do useful work
	// (e.g. a client with an invoked-but-unsent transaction, or a server
	// with pending gossip). Schedulers use it to avoid spinning.
	Ready() bool
	// Clone returns a deep copy of the process for configuration
	// snapshots.
	Clone() Process
}

package sim

// ScriptOf converts a slice of trace events into a replayable script. Only
// step and delivery events are scheduler decisions; annotations are skipped.
func ScriptOf(events []Event) []ScriptStep {
	var out []ScriptStep
	for _, ev := range events {
		switch ev.Kind {
		case EvStep:
			out = append(out, ScriptStep{Kind: ActStep, Proc: ev.Proc})
		case EvDeliver:
			for _, r := range ev.Msgs {
				out = append(out, ScriptStep{Kind: ActDeliver, Link: r.Link, Seq: r.LinkSeq})
			}
		}
	}
	return out
}

// FilterProcessSteps returns a copy of script with every step of pid
// removed, together with every delivery of a message *sent by* pid after
// the filtering point. This is the paper's construction of β_p from β'_p:
// "the subsequence in which all steps taken by p have been removed".
// Messages pid sent before the script began (already in transit) are kept:
// their deliveries do not depend on pid taking steps.
//
// Deciding which deliveries to drop requires knowing which link sequence
// numbers pid's in-script steps would have produced; sentBefore gives, for
// each outgoing link of pid, the last sequence number assigned before the
// script's first event. Deliveries on pid's outgoing links with sequence
// numbers greater than sentBefore are dropped.
func FilterProcessSteps(script []ScriptStep, pid ProcessID, sentBefore map[Link]int64) []ScriptStep {
	var out []ScriptStep
	for _, st := range script {
		if st.Kind == ActStep && st.Proc == pid {
			continue
		}
		if st.Kind == ActDeliver && st.Link.From == pid && st.Seq > sentBefore[st.Link] {
			continue
		}
		out = append(out, st)
	}
	return out
}

// StepsBy returns only the steps taken by pid (and the deliveries *to* pid
// needed to feed those steps when includeDeliveries is set). This builds
// the paper's β_s: "the subsequence of β'_s containing only steps by p".
func StepsBy(script []ScriptStep, pid ProcessID, includeDeliveries bool) []ScriptStep {
	var out []ScriptStep
	for _, st := range script {
		if st.Kind == ActStep && st.Proc == pid {
			out = append(out, st)
			continue
		}
		if includeDeliveries && st.Kind == ActDeliver && st.Link.To == pid {
			out = append(out, st)
		}
	}
	return out
}

// LinkSeqHighWater returns, for every link, the highest sequence number
// among messages already sent (in transit or delivered) as implied by the
// kernel's internal counters. The adversary records this before capturing
// a script so FilterProcessSteps can distinguish pre-existing messages.
func (k *Kernel) LinkSeqHighWater() map[Link]int64 {
	out := make(map[Link]int64, len(k.linkSeq))
	for l, s := range k.linkSeq {
		out[l] = s
	}
	return out
}

package sim_test

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/protocols/copssnow"
	"repro/internal/protocols/wren"
	"repro/internal/sim"
)

// TestReplayDeterminismOnRealProtocols checks the property the entire
// adversary machinery rests on: recording a run of a real protocol under a
// random schedule and replaying its script on a snapshot of the starting
// configuration reproduces the exact same results. Deterministic process
// behaviour + script replay = the paper's indistinguishability arguments.
func TestReplayDeterminismOnRealProtocols(t *testing.T) {
	protos := []protocol.Protocol{copssnow.New(), wren.New()}
	f := func(seedRaw uint16) bool {
		seed := int64(seedRaw) + 1
		p := protos[int(seed)%len(protos)]
		d := protocol.Deploy(p, protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: seed})
		if err := d.InitAll(400_000); err != nil {
			return false
		}
		objs := d.Place.Objects()

		// Invoke one write and one read concurrently; snapshot BEFORE any
		// scheduling happens.
		var wtxn *model.Txn
		if p.Claims().MultiWriteTxn {
			wtxn = model.NewWriteOnly(model.TxnID{},
				model.Write{Object: objs[0], Value: "r0"}, model.Write{Object: objs[1], Value: "r1"})
		} else {
			wtxn = model.NewWriteOnly(model.TxnID{}, model.Write{Object: objs[0], Value: "r0"})
		}
		wid := d.Invoke("c0", wtxn)
		rid := d.Invoke("c1", model.NewReadOnly(model.TxnID{}, objs[0], objs[1]))
		base := d.Kernel.Snapshot()

		// Record a random-schedule run to completion of both.
		from := d.Kernel.Trace().Len()
		sim.Run(d.Kernel, sim.NewRandom(seed*13+1), func(*sim.Kernel) bool {
			return !d.Client("c0").Busy() && !d.Client("c1").Busy()
		}, 400_000)
		script := sim.ScriptOf(d.Kernel.Trace().Since(from))

		// Replay on the snapshot.
		rd := d.At(base)
		sched := &sim.Scripted{Steps: script}
		sim.Run(base, sched, nil, len(script)+16)
		if sched.Err != nil {
			t.Logf("seed %d: replay diverged: %v", seed, sched.Err)
			return false
		}
		origW := d.Client("c0").Results()[wid]
		origR := d.Client("c1").Results()[rid]
		replW := rd.Client("c0").Results()[wid]
		replR := rd.Client("c1").Results()[rid]
		if (origW == nil) != (replW == nil) || (origR == nil) != (replR == nil) {
			return false
		}
		if origR != nil && replR != nil {
			for _, obj := range objs {
				if origR.Value(obj) != replR.Value(obj) {
					t.Logf("seed %d: replay read mismatch on %s: %q vs %q",
						seed, obj, origR.Value(obj), replR.Value(obj))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotTransitivity: snapshots of snapshots behave identically to
// first-generation snapshots — the adversary nests them several deep.
func TestSnapshotTransitivity(t *testing.T) {
	d := protocol.Deploy(copssnow.New(), protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 77})
	if err := d.InitAll(400_000); err != nil {
		t.Fatal(err)
	}
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{}, model.Write{Object: "X0", Value: "g1"}))

	s1 := d.Kernel.Snapshot()
	s2 := s1.Snapshot()
	s3 := s2.Snapshot()

	for i, k := range []*sim.Kernel{s1, s2, s3} {
		dd := d.At(k)
		cl := dd.Client("c0")
		sim.Run(k, &sim.RoundRobin{}, func(*sim.Kernel) bool { return !cl.Busy() }, 400_000)
		if cl.Busy() {
			t.Fatalf("generation %d snapshot did not complete the write", i+1)
		}
		res := dd.RunTxn("c1", model.NewReadOnly(model.TxnID{}, "X0"), 400_000)
		if res.Value("X0") != "g1" {
			t.Fatalf("generation %d snapshot read %v", i+1, res.Values)
		}
	}
	// The original is untouched: its write is still pending.
	if !d.Client("c0").Busy() {
		t.Fatal("original kernel was disturbed by snapshot runs")
	}
}

package sim

// RNG is a small, cloneable pseudo-random generator (splitmix64 core with an
// xorshift output mix). The standard library's math/rand generators cannot
// be deep-copied, which configuration snapshots require, so the kernel uses
// this instead. Quality is more than sufficient for latency sampling and
// randomized schedules.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	r := &RNG{state: uint64(seed)}
	// Avoid the all-zero state and decorrelate small seeds.
	r.state += 0x9e3779b97f4a7c15
	r.Uint64()
	return r
}

// Clone returns an independent copy that will produce the same sequence.
func (r *RNG) Clone() *RNG { c := *r; return &c }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudo-random int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

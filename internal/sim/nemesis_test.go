package sim

import "testing"

func mustConserve(t *testing.T, k *Kernel) {
	t.Helper()
	if err := k.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// A persistent crash freezes the target: no progress involving it while
// down, full resumption — nothing lost — after restart.
func TestCrashPersistFreezesAndResumes(t *testing.T) {
	k, a, _ := newPingPair(1, 5)
	if !k.Crash("b", false) {
		t.Fatal("crash b refused")
	}
	Drain(k, 10_000)
	if a.pongs != 0 {
		t.Fatalf("pongs while peer down = %d, want 0", a.pongs)
	}
	if k.HeldMessages() == 0 {
		t.Fatal("no messages held while destination down")
	}
	if k.Quiescent() {
		t.Fatal("held messages should keep the kernel non-quiescent")
	}
	mustConserve(t, k)
	healAt := k.Now() + 500
	k.AdvanceTo(healAt)
	if !k.Restart("b") {
		t.Fatal("restart b refused")
	}
	Drain(k, 10_000)
	if a.pongs != 5 {
		t.Fatalf("pongs after restart = %d, want 5", a.pongs)
	}
	if k.HeldMessages() != 0 || !k.Quiescent() {
		t.Fatalf("held=%d quiescent=%v after heal+drain", k.HeldMessages(), k.Quiescent())
	}
	// Late, never early: nothing was delivered before its ReadyAt.
	mustConserve(t, k)
}

// A lossy crash drops the income buffer and rebuilds the process via its
// recovery hook; message conservation still holds (the lost messages had
// already been delivered).
func TestCrashLoseDropsInboxAndRecovers(t *testing.T) {
	k, a, _ := newPingPair(2, 4)
	k.SetRecovery("b", func(Process) Process {
		return &pinger{id: "b", peer: "a", echo: true}
	})
	// Let a send its pings, then deliver one into b's inbox unconsumed.
	Run(k, &Network{}, func(kk *Kernel) bool { return len(kk.Inbox("b")) > 0 }, 10_000)
	if len(k.Inbox("b")) == 0 {
		t.Fatal("setup: no message pending at b")
	}
	if !k.Crash("b", true) {
		t.Fatal("crash b refused")
	}
	if got := k.LostInboxMessages(); got == 0 {
		t.Fatal("lossy crash dropped no inbox messages")
	}
	mustConserve(t, k)
	k.Restart("b")
	Drain(k, 10_000)
	if a.pongs >= 4 {
		t.Fatalf("pongs = %d: lossy crash lost nothing", a.pongs)
	}
	mustConserve(t, k)
}

// A cut link buffers (never drops) its traffic; heal releases it and the
// run completes as if the messages were merely slow.
func TestCutHealBuffersNeverDrops(t *testing.T) {
	k, a, _ := newPingPair(3, 6)
	f := Fault{Kind: FaultCut, From: []ProcessID{"a"}, To: []ProcessID{"b"}}
	if !k.ApplyFault(f) {
		t.Fatal("cut refused")
	}
	Drain(k, 10_000)
	if a.pongs != 0 {
		t.Fatalf("pongs across a cut link = %d, want 0", a.pongs)
	}
	held := k.HeldMessages()
	if held == 0 {
		t.Fatal("no messages held on the cut link")
	}
	mustConserve(t, k)
	healAt := k.Now() + 1000
	k.AdvanceTo(healAt)
	if !k.ApplyFault(Fault{Kind: FaultHeal, From: []ProcessID{"a"}, To: []ProcessID{"b"}}) {
		t.Fatal("heal refused")
	}
	Drain(k, 10_000)
	if a.pongs != 6 {
		t.Fatalf("pongs after heal = %d, want 6 (a partition must not lose messages)", a.pongs)
	}
	// Released messages were delivered at max(ReadyAt, heal): never early.
	mustConserve(t, k)
}

// Faults are idempotent no-ops when re-applied, so arbitrary (fuzzed)
// schedules are safe.
func TestFaultIdempotence(t *testing.T) {
	k, _, _ := newPingPair(4, 1)
	if !k.Crash("a", false) || k.Crash("a", true) {
		t.Fatal("double crash should refuse")
	}
	if !k.Restart("a") || k.Restart("a") {
		t.Fatal("double restart should refuse")
	}
	l := Link{From: "a", To: "b"}
	if !k.CutLink(l) || k.CutLink(l) {
		t.Fatal("double cut should refuse")
	}
	if !k.HealLink(l) || k.HealLink(l) {
		t.Fatal("double heal should refuse")
	}
	if k.Crash("nosuch", false) || k.Restart("nosuch") {
		t.Fatal("unknown process faults should refuse")
	}
}

// Snapshots carry the fault state: a probe taken mid-outage sees the
// crashed process and the held messages, and evolves independently.
func TestSnapshotPreservesFaultState(t *testing.T) {
	k, _, _ := newPingPair(5, 5)
	k.Crash("b", false)
	k.CutLink(Link{From: "b", To: "a"})
	Drain(k, 10_000)
	held := k.HeldMessages()
	c := k.Snapshot()
	if !c.Down("b") {
		t.Fatal("snapshot lost the crash")
	}
	if !c.LinkCut(Link{From: "b", To: "a"}) {
		t.Fatal("snapshot lost the cut")
	}
	if c.HeldMessages() != held {
		t.Fatalf("snapshot holds %d messages, original %d", c.HeldMessages(), held)
	}
	mustConserve(t, c)
	// Healing the copy must not free the original.
	c.Restart("b")
	c.HealLink(Link{From: "b", To: "a"})
	Drain(c, 10_000)
	if !c.Quiescent() {
		t.Fatal("healed snapshot did not drain")
	}
	if !k.Down("b") || k.HeldMessages() != held {
		t.Fatal("healing the snapshot leaked into the original")
	}
}

// The sharded engines replay a crash/restart schedule identically to
// their own Workers=1 oracle, and faults applied between Runs take
// effect: nothing is stepped or delivered at a downed process.
func TestShardedRunHonorsFaults(t *testing.T) {
	for _, lookahead := range []bool{false, true} {
		k, a, _ := newPingPair(6, 5)
		k.SetTraceCap(-1)
		shardOf := func(pid ProcessID) int {
			if pid == "a" {
				return 0
			}
			return 1
		}
		mk := NewShardedRunner
		if lookahead {
			mk = NewLookaheadRunner
		}
		r, err := mk(k, shardOf, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		k.Crash("b", false)
		r.Run(nil, 10_000)
		if a.pongs != 0 {
			t.Fatalf("lookahead=%v: pongs while peer down = %d, want 0", lookahead, a.pongs)
		}
		k.AdvanceTo(k.Now() + 300)
		k.Restart("b")
		r.Run(nil, 10_000)
		if a.pongs != 5 {
			t.Fatalf("lookahead=%v: pongs after restart = %d, want 5", lookahead, a.pongs)
		}
		mustConserve(t, k)
	}
}

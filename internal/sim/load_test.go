package sim

import "testing"

func TestConstantLatencyIsAModel(t *testing.T) {
	var m LatencyModel = ConstantLatency(250)
	r := NewRNG(1)
	for i := 0; i < 5; i++ {
		if d := m(Link{"a", "b"}, r); d != 250 {
			t.Fatalf("latency = %d, want 250", d)
		}
	}
	k := NewKernel(1, ConstantLatency(7))
	k.Add(&pinger{id: "a", peer: "b", count: 1})
	k.Add(&pinger{id: "b", peer: "a", echo: true})
	k.StepProcess("a")
	m0 := k.InTransit()[0]
	if got := m0.ReadyAt - m0.SentAt; got != 7 {
		t.Fatalf("sampled latency = %d, want 7", got)
	}
}

// TestNetworkHeapMatchesScan cross-checks the heap-backed earliest-arrival
// selection against a straight scan of the transit buffer on every event
// of a run.
func TestNetworkHeapMatchesScan(t *testing.T) {
	k, _, _ := newPingPair(91, 12)
	sched := &Network{}
	for i := 0; i < 10_000; i++ {
		var best *Message
		for _, m := range k.transit {
			if m.gone {
				continue
			}
			if best == nil || m.ReadyAt < best.ReadyAt || (m.ReadyAt == best.ReadyAt && m.ID < best.ID) {
				best = m
			}
		}
		if got := k.EarliestArrival(); (got == nil) != (best == nil) || (got != nil && got.ID != best.ID) {
			t.Fatalf("event %d: heap says %v, scan says %v", i, got, best)
		}
		a, ok := sched.Next(k)
		if !ok {
			return
		}
		Apply(k, a)
	}
}

func TestNetworkSchedulerDeterministic(t *testing.T) {
	run := func() (Time, int) {
		k, a, _ := newPingPair(17, 20)
		Run(k, &Network{}, nil, 10_000)
		return k.Now(), a.pongs
	}
	t1, p1 := run()
	t2, p2 := run()
	if t1 != t2 || p1 != p2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", t1, p1, t2, p2)
	}
	if p1 != 20 {
		t.Fatalf("pongs = %d, want 20", p1)
	}
}

func TestTraceCapBoundsRetainedEvents(t *testing.T) {
	k, a, _ := newPingPair(31, 50)
	k.SetTraceCap(16)
	Drain(k, 100_000)
	if a.pongs != 50 {
		t.Fatalf("pongs = %d, want 50", a.pongs)
	}
	tr := k.Trace()
	if len(tr.Events) >= 32 {
		t.Fatalf("retained %d events, cap 16 allows < 32", len(tr.Events))
	}
	if tr.Dropped == 0 {
		t.Fatal("no events dropped despite cap")
	}
	// Sequence numbers keep advancing over drops: the last retained event
	// carries its true position.
	last := tr.Events[len(tr.Events)-1]
	if last.Seq != tr.Dropped+int64(len(tr.Events))-1 {
		t.Fatalf("last seq = %d, dropped = %d, retained = %d", last.Seq, tr.Dropped, len(tr.Events))
	}
}

func TestTraceDisabledStillRuns(t *testing.T) {
	k, a, _ := newPingPair(37, 25)
	k.SetTraceCap(-1)
	k.SetPayloadRetention(false)
	Drain(k, 100_000)
	if a.pongs != 25 {
		t.Fatalf("pongs = %d, want 25", a.pongs)
	}
	if len(k.Trace().Events) != 0 {
		t.Fatalf("retained %d events with tracing off", len(k.Trace().Events))
	}
	if k.Trace().Dropped == 0 {
		t.Fatal("dropped counter not advanced")
	}
	if k.PayloadOf(1) != nil {
		t.Fatal("payload retained with retention off")
	}
}

// TestLoadModeRunMatchesTracedRun verifies that disabling tracing does not
// change the execution itself: same seed, same final state and clock.
func TestLoadModeRunMatchesTracedRun(t *testing.T) {
	run := func(loadMode bool) (Time, int) {
		k, a, _ := newPingPair(43, 30)
		if loadMode {
			k.SetTraceCap(-1)
			k.SetPayloadRetention(false)
		}
		Run(k, &Network{}, nil, 100_000)
		return k.Now(), a.pongs
	}
	tt, pt := run(false)
	tl, pl := run(true)
	if tt != tl || pt != pl {
		t.Fatalf("load mode diverged: traced (%d,%d) vs load (%d,%d)", tt, pt, tl, pl)
	}
}

func TestSnapshotPreservesArrivalIndex(t *testing.T) {
	k, _, _ := newPingPair(47, 6)
	k.StepProcess("a")
	k.StepProcess("a")
	snap := k.Snapshot()
	// The snapshot's heap must index its own cloned messages.
	orig := k.EarliestArrival()
	cp := snap.EarliestArrival()
	if orig == nil || cp == nil || orig == cp {
		t.Fatal("snapshot shares or lost arrival index entries")
	}
	if orig.ID != cp.ID {
		t.Fatalf("earliest arrival differs: %d vs %d", orig.ID, cp.ID)
	}
	// Draining the snapshot must not disturb the original's index.
	Drain(snap, 10_000)
	if k.EarliestArrival() == nil {
		t.Fatal("original arrival index disturbed by snapshot drain")
	}
}

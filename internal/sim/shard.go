package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ShardedRunner steps a kernel in conservative time windows with the
// process set partitioned into shards, so the protocol state machines of
// different shards execute concurrently on a worker pool while the
// run stays fully deterministic.
//
// The execution model is window-synchronized parallel discrete-event
// simulation (the classic "bounded lag" / time-bucket design):
//
//  1. The runner (serial) picks the next window [T, T+Δ), where Δ is the
//     kernel's declared latency floor. If nothing can act at the current
//     instant it first leaps T to the earliest future arrival or declared
//     process wake time, exactly like the Network scheduler's time-leap.
//  2. It pops every in-transit message with ReadyAt < T+Δ from the global
//     arrival index and routes it to the destination process's shard.
//  3. Every shard with work runs an independent local sub-simulation of
//     the window — the Network scheduler's policy (pending inboxes first,
//     then due deliveries in (ReadyAt, ID) order, then Ready steps, with
//     Waker-declared wake leaps bounded by the window end) over its own
//     processes and a local clock starting at T. Sends are buffered;
//     nothing global is touched. Shards are data-disjoint, so this phase
//     runs on min(Workers, active shards) goroutines.
//  4. The runner (serial again) merges: buffered sends are committed to
//     the kernel in fixed shard order, then send order — assigning
//     message IDs, link sequence numbers and latency samples from the
//     single kernel RNG in an order that no longer depends on worker
//     interleaving — and the kernel clock advances to the latest shard-
//     local clock.
//
// The merge rule is what makes the mode deterministic: for a fixed seed,
// shard partition and window width, the recorded history, every report
// field and the full JSON output are byte-identical whatever the worker
// count — Workers=1 executes the identical schedule serially and is the
// differential oracle for Workers≥2 (asserted by tests in internal/driver
// and cmd/bench and by the CI equivalence smoke).
//
// Why no message sent inside a window can matter inside it: link latency
// is at least the declared floor Δ, so a message sent at or after T has
// ReadyAt ≥ T+Δ — past the window end — and cross-shard interaction
// within a window is impossible. Shard-local clocks may run past the
// window end while draining step chains; deliveries are then simply late
// (DeliveredAt ≥ ReadyAt always holds), which the asynchronous system
// model explicitly permits — the adversary may delay any delivery. A
// sharded execution is therefore a valid execution of the model, just a
// different member of the schedule space than the serial Network
// scheduler picks; histories it produces certify at the protocols'
// claimed consistency levels like any other schedule (asserted
// ride-along by the driver's certification).
type ShardedRunner struct {
	k       *Kernel
	workers int
	delta   Time
	shards  []*shard
	shardOf map[ProcessID]*shard
	nProcs  int
	horizon Time

	stats ShardingStats
}

// ShardingStats counts the deterministic shape of a sharded run — every
// field is a pure function of seed, configuration and shard partition,
// never of worker count or thread timing.
type ShardingStats struct {
	// Shards is the partition size; Workers the configured pool size.
	Shards  int
	Workers int
	// Rounds is the number of executed windows; Events the total events
	// (deliveries + steps) across all shards and rounds.
	Rounds int
	Events int
	// CriticalEvents sums each round's largest per-shard event count: the
	// serialized length of the run under unbounded workers. The ratio
	// Events/CriticalEvents is the measured shard-parallelism of the
	// workload — the wall-clock speedup ceiling a perfectly balanced
	// multi-core pool could reach.
	CriticalEvents int
	// ActiveShardRounds sums the number of shards that had work per
	// round (occupancy: ActiveShardRounds/Rounds ≤ Shards).
	ActiveShardRounds int
}

// shardSend is one buffered outbound message awaiting the serial merge.
type shardSend struct {
	from ProcessID
	out  Outbound
	at   Time
}

// shard owns a disjoint subset of the kernel's processes plus the
// transient per-window state of its local sub-simulation.
type shard struct {
	procs []Process
	ids   []ProcessID
	local map[ProcessID]int

	due     []*Message   // window deliveries, (ReadyAt, ID) order
	inbox   [][]*Message // per local process
	pending int
	t       Time
	events  int
	sends   []shardSend
	di      int // first undelivered entry of due
}

// NewShardedRunner partitions the kernel's current process set with
// shardOf (which must map every process to [0, nShards)) and returns a
// runner executing sharded stepping on max(1, workers) goroutines.
// Workers=1 runs the identical schedule serially.
//
// The kernel must be in load mode (event recording disabled via
// SetTraceCap(-1)): shards execute off the global event path, so there is
// no meaningful global interleaving to record. The process set must not
// change for the runner's lifetime.
func NewShardedRunner(k *Kernel, shardOf func(ProcessID) int, nShards, workers int) (*ShardedRunner, error) {
	if nShards < 1 {
		return nil, fmt.Errorf("sim: sharded runner needs at least 1 shard, got %d", nShards)
	}
	if k.traceCap >= 0 {
		return nil, fmt.Errorf("sim: sharded stepping requires load mode (SetTraceCap(-1)); full traces only exist for the serial schedulers")
	}
	if workers < 1 {
		workers = 1
	}
	r := &ShardedRunner{
		k:       k,
		workers: workers,
		delta:   k.latencyFloor,
		shards:  make([]*shard, nShards),
		shardOf: make(map[ProcessID]*shard, len(k.order)),
		nProcs:  len(k.order),
		stats:   ShardingStats{Shards: nShards, Workers: workers},
	}
	if r.delta < 1 {
		r.delta = 1
	}
	for i := range r.shards {
		r.shards[i] = &shard{local: make(map[ProcessID]int)}
	}
	// k.order is sorted, so every shard's process list is sorted too and
	// the shard-local pending-inbox scan matches the Network scheduler's
	// sorted-ID tie-break.
	for _, pid := range k.order {
		s := shardOf(pid)
		if s < 0 || s >= nShards {
			return nil, fmt.Errorf("sim: process %s mapped to shard %d, want [0,%d)", pid, s, nShards)
		}
		sh := r.shards[s]
		sh.local[pid] = len(sh.procs)
		sh.procs = append(sh.procs, k.procs[pid])
		sh.ids = append(sh.ids, pid)
		r.shardOf[pid] = sh
	}
	for _, sh := range r.shards {
		sh.inbox = make([][]*Message, len(sh.procs))
	}
	return r, nil
}

// Stats returns the deterministic run-shape counters accumulated so far.
func (r *ShardedRunner) Stats() ShardingStats { return r.stats }

// SetHorizon bounds the windows like Network.Horizon: no window starts
// at or past it (Run returns instead, handing control back to the
// driver's open-loop injection) and window ends are clipped to it. The
// bound has window granularity, not event granularity: a shard draining
// a deliver→step chain that began before the horizon may push its local
// clock — and thus the kernel clock — a few StepCosts past it, so an
// arrival scheduled at the horizon is invoked at the first actionable
// instant at or after its scheduled one. The driver accounts queueing
// delay from the scheduled instant either way, so the lag lands in the
// measured queueing delay, deterministically. 0 disables the bound.
func (r *ShardedRunner) SetHorizon(t Time) { r.horizon = t }

// Run executes windows until the system quiesces, the stop predicate
// returns true (checked between windows — the sharded counterpart of
// sim.Run checking between events), the horizon is reached, or at least
// maxEvents events have executed. It returns the events executed. The
// event budget has window granularity: the run stops after the first
// window that crosses it, overshooting by at most the active shard
// count (each shard of a round is capped at an equal share of the
// remaining budget) — deterministically so.
func (r *ShardedRunner) Run(stop func(*Kernel) bool, maxEvents int) int {
	n := 0
	for n < maxEvents {
		if stop != nil && stop(r.k) {
			return n
		}
		executed, more := r.round(maxEvents - n)
		n += executed
		if !more {
			return n
		}
	}
	return n
}

// round executes one window. It returns the events executed and whether
// another window could do work.
func (r *ShardedRunner) round(budget int) (int, bool) {
	k := r.k
	if len(k.order) != r.nProcs {
		panic("sim: process set changed under a ShardedRunner")
	}

	// Adopt any messages sitting in kernel income buffers (leftovers of a
	// budget-exhausted window, or deliveries a serial scheduler made
	// before this runner took over): they move into the owning shard's
	// local buffers and make it actable now.
	anyPending := false
	if k.pendingInboxes > 0 {
		for _, pid := range k.order {
			msgs := k.inbox[pid]
			if len(msgs) == 0 {
				continue
			}
			sh := r.shardOf[pid]
			li := sh.local[pid]
			if len(sh.inbox[li]) == 0 {
				sh.pending++
			}
			sh.inbox[li] = append(sh.inbox[li], msgs...)
			k.inbox[pid] = nil
			anyPending = true
		}
		k.pendingInboxes = 0
	}

	// Serial pre-scan: earliest arrival, process readiness and wakes.
	var earliest Time
	haveArrival := false
	if m := k.EarliestArrival(); m != nil {
		earliest, haveArrival = m.ReadyAt, true
	}
	readyNow := false
	var wakeMin Time
	haveWake := false
	shardReady := make([]bool, len(r.shards))
	shardWake := make([]Time, len(r.shards))
	shardHasWake := make([]bool, len(r.shards))
	for si, sh := range r.shards {
		for _, p := range sh.procs {
			if !p.Ready() {
				continue
			}
			if w, ok := p.(Waker); ok {
				wt, useful := w.WakeAt(k.now)
				if !useful {
					continue // waiting on a delivery, not on time
				}
				if wt > k.now {
					if !haveWake || wt < wakeMin {
						wakeMin, haveWake = wt, true
					}
					if !shardHasWake[si] || wt < shardWake[si] {
						shardWake[si], shardHasWake[si] = wt, true
					}
					continue
				}
			}
			readyNow = true
			shardReady[si] = true
		}
	}

	// Window start: now if anyone can act, else leap to the earliest
	// future arrival or wake (the sharded counterpart of the Network
	// scheduler's time-leap). Nothing anywhere: quiescent.
	tstart := k.now
	if !readyNow && !anyPending && !(haveArrival && earliest <= k.now) {
		leap := Time(0)
		switch {
		case haveArrival && (!haveWake || earliest <= wakeMin):
			leap = earliest
		case haveWake:
			leap = wakeMin
		default:
			return 0, false // quiescent
		}
		tstart = leap
	}
	if r.horizon > 0 && tstart >= r.horizon {
		return 0, false
	}
	tend := tstart + r.delta
	if r.horizon > 0 && tend > r.horizon {
		tend = r.horizon
	}

	// Route window deliveries to destination shards. Heap pop order is
	// (ReadyAt, ID), so each shard's due list arrives sorted.
	for {
		m := k.EarliestArrival()
		if m == nil || m.ReadyAt >= tend {
			break
		}
		delete(k.byID, m.ID)
		m.gone = true
		r.shardOf[m.To].due = append(r.shardOf[m.To].due, m)
	}

	// Run the active shards — in parallel when there is both a pool and
	// enough of them. Activity is decided serially from round inputs, so
	// it cannot depend on worker timing.
	active := r.shards[:0:0]
	for si, sh := range r.shards {
		if len(sh.due) > 0 || sh.pending > 0 || shardReady[si] || (shardHasWake[si] && shardWake[si] < tend) {
			active = append(active, sh)
		}
	}
	if len(active) == 0 {
		// A wake or arrival exists but lies at or past the horizon-clipped
		// window end; advance to the window end and let the next round
		// reach it.
		if r.horizon > 0 && tend >= r.horizon {
			return 0, false
		}
		k.AdvanceTo(tend)
		return 0, true
	}
	// Each shard gets an equal share of the remaining budget (at least
	// one event), so a round overshoots the budget by at most the active
	// shard count instead of a factor of it. The share is a pure function
	// of round inputs — worker-independent like everything else.
	share := (budget + len(active) - 1) / len(active)
	if share < 1 {
		share = 1
	}
	if r.workers <= 1 || len(active) == 1 {
		for _, sh := range active {
			sh.runWindow(tstart, tend, share)
		}
	} else {
		nw := r.workers
		if nw > len(active) {
			nw = len(active)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(nw)
		for w := 0; w < nw; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(active) {
						return
					}
					active[i].runWindow(tstart, tend, share)
				}
			}()
		}
		wg.Wait()
	}

	// Serial merge, fixed shard order: commit sends (IDs, link sequence
	// numbers, latency draws from the kernel RNG), restore any leftovers
	// a budget-exhausted shard could not process, advance the clock, and
	// account events.
	total, crit := 0, 0
	newNow := tstart
	for _, sh := range active {
		for _, ps := range sh.sends {
			k.send(ps.from, ps.out, ps.at)
		}
		sh.sends = sh.sends[:0]
		for _, m := range sh.due[sh.di:] {
			// Budget ran out before delivery: the message goes back into
			// transit untouched.
			m.gone = false
			k.byID[m.ID] = m
			k.pushArrival(m)
		}
		sh.due = sh.due[:0]
		sh.di = 0
		for li, in := range sh.inbox {
			if len(in) == 0 {
				continue
			}
			// Budget ran out between delivery and the consuming step: the
			// messages persist in the kernel income buffer.
			pid := sh.ids[li]
			if len(k.inbox[pid]) == 0 {
				k.pendingInboxes++
			}
			k.inbox[pid] = append(k.inbox[pid], in...)
			sh.inbox[li] = nil
		}
		sh.pending = 0
		total += sh.events
		if sh.events > crit {
			crit = sh.events
		}
		if sh.t > newNow {
			newNow = sh.t
		}
		sh.events = 0
	}
	k.AdvanceTo(newNow)
	k.compactTransit()
	// Load-mode event accounting, identical to what per-event record()
	// calls would have done.
	k.evSeq += int64(total)
	k.trace.Dropped += int64(total)

	r.stats.Rounds++
	r.stats.Events += total
	r.stats.CriticalEvents += crit
	r.stats.ActiveShardRounds += len(active)
	return total, true
}

// runWindow is the shard-local sub-simulation of one window: the Network
// scheduler's policy over the shard's processes only, on a local clock.
// It touches no global kernel state.
func (sh *shard) runWindow(tstart, tend Time, budget int) {
	sh.t = tstart
	for sh.events < budget {
		// 1. Processes with pending input act first, in sorted ID order.
		if sh.pending > 0 {
			for li := range sh.procs {
				if len(sh.inbox[li]) > 0 {
					sh.step(li)
					break
				}
			}
			continue
		}
		// 2. Deliveries already due at the local instant.
		if sh.di < len(sh.due) && sh.due[sh.di].ReadyAt <= sh.t {
			sh.deliver()
			continue
		}
		// 3. Ready processes act now — except Wakers declaring a future
		// wake instant (or none at all: those wait for a delivery).
		acted := false
		var wake Time
		wakeLi := -1
		for li, p := range sh.procs {
			if !p.Ready() {
				continue
			}
			if w, ok := p.(Waker); ok {
				wt, useful := w.WakeAt(sh.t)
				if !useful {
					continue
				}
				if wt > sh.t {
					if wakeLi < 0 || wt < wake {
						wake, wakeLi = wt, li
					}
					continue
				}
			}
			sh.step(li)
			acted = true
			break
		}
		if acted {
			continue
		}
		// 4. Nobody can act at this instant: advance the local clock to
		// the next useful one inside the window. Arrivals win ties so the
		// woken process sees every message due by its wake instant.
		if sh.di < len(sh.due) && (wakeLi < 0 || sh.due[sh.di].ReadyAt <= wake) {
			sh.deliver()
			continue
		}
		if wakeLi >= 0 && wake < tend {
			// The step itself costs StepCost, so the process runs at
			// exactly its wake instant.
			if wake-StepCost > sh.t {
				sh.t = wake - StepCost
			}
			sh.step(wakeLi)
			continue
		}
		return // idle within this window
	}
}

// deliver moves the next due message into its local income buffer.
func (sh *shard) deliver() {
	m := sh.due[sh.di]
	sh.di++
	if m.ReadyAt > sh.t {
		sh.t = m.ReadyAt
	}
	m.DeliveredAt = sh.t
	li := sh.local[m.To]
	if len(sh.inbox[li]) == 0 {
		sh.pending++
	}
	sh.inbox[li] = append(sh.inbox[li], m)
	sh.events++
}

// step executes one computation step of the local process li, buffering
// its sends for the merge.
func (sh *shard) step(li int) {
	in := sh.inbox[li]
	if len(in) > 0 {
		sh.pending--
		sh.inbox[li] = nil
	}
	sh.t += StepCost
	for _, o := range sh.procs[li].Step(sh.t, in) {
		sh.sends = append(sh.sends, shardSend{from: sh.ids[li], out: o, at: sh.t})
	}
	sh.events++
}

package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
)

// ShardedRunner steps a kernel with the process set partitioned into
// shards, so the protocol state machines of different shards execute
// concurrently on a worker pool while the run stays fully deterministic.
// It implements two conservative parallel discrete-event engines sharing
// one merge discipline:
//
//   - The window-synchronized barrier (NewShardedRunner), the classic
//     "bounded lag" / time-bucket design: every round executes one global
//     window [T, T+Δ) where Δ is the kernel's declared latency floor.
//   - Per-link conservative lookahead (NewLookaheadRunner), the classic
//     Chandy–Misra null-message design: shards keep persistent local
//     clocks and each round computes, per shard, the earliest instant any
//     other shard could still affect it — its advancement bound — from
//     the other shards' next-event promises plus the per-link latency
//     floors. A shard whose bound lies past the global window edge simply
//     keeps going; no shard ever waits on one it cannot be affected by.
//
// A barrier round proceeds as:
//
//  1. The runner (serial) picks the next window [T, T+Δ). If nothing can
//     act at the current instant it first leaps T to the earliest future
//     arrival or declared process wake time, exactly like the Network
//     scheduler's time-leap.
//  2. It pops every in-transit message with ReadyAt < T+Δ from the global
//     arrival index and routes it to the destination process's shard.
//  3. Every shard with work runs an independent local sub-simulation of
//     the window — the Network scheduler's policy (pending inboxes first,
//     then due deliveries in (ReadyAt, ID) order, then Ready steps, with
//     Waker-declared wake leaps bounded by the window end) over its own
//     processes and a local clock starting at T. Sends are buffered;
//     nothing global is touched. Shards are data-disjoint, so this phase
//     runs on min(Workers, active shards) goroutines.
//  4. The runner (serial again) merges: buffered sends are committed to
//     the kernel in fixed shard order, then send order — assigning
//     message IDs, link sequence numbers and latency samples from the
//     single kernel RNG in an order that no longer depends on worker
//     interleaving — and the kernel clock advances to the latest shard-
//     local clock.
//
// A lookahead round replaces steps 1–2 with the null-message bound
// computation (see roundLookahead) and gives every shard its own window
// [clock_i, bound_i); steps 3–4 are identical. The merge rule is what
// makes both modes deterministic: for a fixed seed, shard partition and
// engine, the recorded history, every report field and the full JSON
// output are byte-identical whatever the worker count — Workers=1
// executes the identical schedule serially and is the differential
// oracle for Workers≥2 (asserted by tests in internal/driver and
// cmd/bench and by the CI equivalence smoke).
//
// Why no message sent inside a window can matter inside it: link latency
// is at least the declared floor, so a message sent at or after a shard's
// window start has ReadyAt past the shard's bound — cross-shard
// interaction within a round is impossible. Shard-local clocks may run
// past the window end while draining step chains; deliveries are then
// simply late (DeliveredAt ≥ ReadyAt always holds), which the
// asynchronous system model explicitly permits — the adversary may delay
// any delivery. A sharded execution is therefore a valid execution of the
// model, just a different member of the schedule space than the serial
// Network scheduler picks; histories it produces certify at the
// protocols' claimed consistency levels like any other schedule (asserted
// ride-along by the driver's certification).
type ShardedRunner struct {
	k         *Kernel
	workers   int
	delta     Time
	lookahead bool
	shards    []*shard
	shardOf   map[ProcessID]*shard
	nProcs    int
	horizon   Time

	// floors is the lookahead engine's shard-pair bound matrix:
	// floors[j][i] is the smallest declared latency floor over links from
	// a shard-j process to a shard-i process — the minimum transit time of
	// any influence j can exert on i. Always ≥ 1.
	floors [][]Time
	// Per-round scratch (lookahead), sized to the shard count once.
	e, prom, bnd []Time
	settled      []bool
	arrTop       []*Message
	shardReady   []bool
	shardWake    []Time

	stats ShardingStats
}

// infTime is the promise value of a shard with no next event: far enough
// past any reachable virtual instant that adding a latency floor cannot
// overflow.
const infTime = Time(1) << 60

// ShardingStats counts the deterministic shape of a sharded run — every
// field is a pure function of seed, configuration, engine and shard
// partition, never of worker count or thread timing.
type ShardingStats struct {
	// Shards is the partition size; Workers the configured pool size.
	Shards  int
	Workers int
	// Lookahead identifies the engine: false is the window-synchronized
	// barrier, true the per-link conservative lookahead.
	Lookahead bool
	// Rounds is the number of executed rounds; Events the total events
	// (deliveries + steps) across all shards and rounds.
	Rounds int
	Events int
	// CriticalEvents sums each round's largest per-shard event count: the
	// serialized length of the run under unbounded workers. The ratio
	// Events/CriticalEvents is the measured shard-parallelism of the
	// workload — the wall-clock speedup ceiling a perfectly balanced
	// multi-core pool could reach.
	CriticalEvents int
	// ActiveShardRounds sums the number of shards that had work per
	// round (occupancy: ActiveShardRounds/Rounds ≤ Shards).
	ActiveShardRounds int
	// NullAdvances counts shard-rounds whose advancement bound exceeded
	// the global barrier edge (earliest pending event plus the global
	// floor): rounds where the per-link bounds provably admitted more
	// progress than a barrier window would have. Lookahead only.
	NullAdvances int
	// BlockedShardRounds counts shard-rounds that had a next local event
	// but whose bound did not yet admit it; BlockedTime sums the
	// shortfall (next event minus bound) over them. Lookahead only.
	BlockedShardRounds int
	BlockedTime        Time
	// PerShard breaks events and blocking down by shard index.
	PerShard []ShardLoad
	// Partition records the process→shard assignment of the run;
	// Rebalanced is set by the driver when the assignment came from a
	// measured probe run rather than the static stripe.
	Rebalanced bool
	Partition  map[string]int
}

// ShardLoad is one shard's slice of the run.
type ShardLoad struct {
	Events        int
	BlockedRounds int
	BlockedTime   Time
}

// shardSend is one buffered outbound message awaiting the serial merge.
type shardSend struct {
	from ProcessID
	out  Outbound
	at   Time
}

// shard owns a disjoint subset of the kernel's processes plus the
// transient per-round state of its local sub-simulation.
type shard struct {
	idx   int
	la    bool
	procs []Process
	ids   []ProcessID
	local map[ProcessID]int
	// down marks crashed local processes. Refreshed serially at Run
	// start (faults only change between engine runs), so reads from
	// worker goroutines during a round are race-free.
	down []bool

	due       []*Message   // barrier: window deliveries, (ReadyAt, ID) order
	arr       arrivalHeap  // lookahead: undelivered arrivals for this shard
	inbox     [][]*Message // per local process
	pending   int
	t         Time
	events    int
	evBy      []int // per local process, for the rebalance load profile
	sends     []shardSend
	di        int        // first undelivered entry of due (barrier)
	delivered []*Message // messages delivered this round (lookahead)

	wstart, wend Time // this round's window (barrier)
	bound        Time // this round's advancement bound (lookahead)

	refill func(ProcessID, Time)
}

// NewShardedRunner partitions the kernel's current process set with
// shardOf (which must map every process to [0, nShards)) and returns a
// runner executing barrier-windowed sharded stepping on max(1, workers)
// goroutines. Workers=1 runs the identical schedule serially.
//
// The kernel must be in load mode (event recording disabled via
// SetTraceCap(-1)): shards execute off the global event path, so there is
// no meaningful global interleaving to record. The process set must not
// change for the runner's lifetime.
func NewShardedRunner(k *Kernel, shardOf func(ProcessID) int, nShards, workers int) (*ShardedRunner, error) {
	return newShardedRunner(k, shardOf, nShards, workers, false)
}

// NewLookaheadRunner is NewShardedRunner with the per-link conservative
// lookahead engine: shards keep persistent local clocks and advance to
// per-shard null-message bounds instead of a global window edge. While a
// lookahead runner is stepping, it owns the kernel's arrival index; Run
// hands it back before returning, so the kernel stays coherent between
// Runs exactly as under the barrier engine.
func NewLookaheadRunner(k *Kernel, shardOf func(ProcessID) int, nShards, workers int) (*ShardedRunner, error) {
	return newShardedRunner(k, shardOf, nShards, workers, true)
}

func newShardedRunner(k *Kernel, shardOf func(ProcessID) int, nShards, workers int, lookahead bool) (*ShardedRunner, error) {
	if nShards < 1 {
		return nil, fmt.Errorf("sim: sharded runner needs at least 1 shard, got %d", nShards)
	}
	if k.traceCap >= 0 {
		return nil, fmt.Errorf("sim: sharded stepping requires load mode (SetTraceCap(-1)); full traces only exist for the serial schedulers")
	}
	if workers < 1 {
		workers = 1
	}
	r := &ShardedRunner{
		k:         k,
		workers:   workers,
		delta:     k.latencyFloor,
		lookahead: lookahead,
		shards:    make([]*shard, nShards),
		shardOf:   make(map[ProcessID]*shard, len(k.order)),
		nProcs:    len(k.order),
		stats: ShardingStats{
			Shards:    nShards,
			Workers:   workers,
			Lookahead: lookahead,
			PerShard:  make([]ShardLoad, nShards),
			Partition: make(map[string]int, len(k.order)),
		},
	}
	if r.delta < 1 {
		r.delta = 1
	}
	for i := range r.shards {
		r.shards[i] = &shard{idx: i, la: lookahead, local: make(map[ProcessID]int), t: k.now}
	}
	// k.order is sorted, so every shard's process list is sorted too and
	// the shard-local pending-inbox scan matches the Network scheduler's
	// sorted-ID tie-break.
	for _, pid := range k.order {
		s := shardOf(pid)
		if s < 0 || s >= nShards {
			return nil, fmt.Errorf("sim: process %s mapped to shard %d, want [0,%d)", pid, s, nShards)
		}
		sh := r.shards[s]
		sh.local[pid] = len(sh.procs)
		sh.procs = append(sh.procs, k.procs[pid])
		sh.ids = append(sh.ids, pid)
		r.shardOf[pid] = sh
		r.stats.Partition[string(pid)] = s
	}
	for _, sh := range r.shards {
		sh.inbox = make([][]*Message, len(sh.procs))
		sh.evBy = make([]int, len(sh.procs))
		sh.down = make([]bool, len(sh.procs))
	}
	if lookahead {
		r.e = make([]Time, nShards)
		r.prom = make([]Time, nShards)
		r.bnd = make([]Time, nShards)
		r.settled = make([]bool, nShards)
		r.arrTop = make([]*Message, nShards)
		r.shardReady = make([]bool, nShards)
		r.shardWake = make([]Time, nShards)
		r.buildFloors()
	}
	return r, nil
}

// buildFloors fills the shard-pair bound matrix. Without per-link floor
// declarations every entry is the global floor; with them, the exact
// minimum over the links between each shard pair (a one-time O(P²) pass,
// only paid when per-link floors exist).
func (r *ShardedRunner) buildFloors() {
	S := len(r.shards)
	base := r.delta
	r.floors = make([][]Time, S)
	for i := range r.floors {
		row := make([]Time, S)
		for j := range row {
			row[j] = base
		}
		r.floors[i] = row
	}
	if len(r.k.linkFloor) == 0 {
		return
	}
	for i := range r.floors {
		for j := range r.floors[i] {
			if i != j {
				r.floors[i][j] = infTime
			}
		}
	}
	for _, from := range r.k.order {
		si := r.shardOf[from].idx
		for _, to := range r.k.order {
			sj := r.shardOf[to].idx
			if si == sj {
				continue
			}
			f := r.k.LinkLatencyFloor(Link{From: from, To: to})
			if f < 1 {
				f = 1
			}
			if f < r.floors[si][sj] {
				r.floors[si][sj] = f
			}
		}
	}
}

// Stats returns the deterministic run-shape counters accumulated so far.
func (r *ShardedRunner) Stats() ShardingStats { return r.stats }

// ProcessEvents returns how many events (deliveries to, plus steps of)
// each process has executed so far — the deterministic load profile the
// driver's shard rebalance derives its striping from.
func (r *ShardedRunner) ProcessEvents() map[ProcessID]int {
	out := make(map[ProcessID]int, r.nProcs)
	for _, sh := range r.shards {
		for li, n := range sh.evBy {
			out[sh.ids[li]] = n
		}
	}
	return out
}

// SetRefill installs a hook called after every process step, from inside
// the parallel window execution, with the stepped process's ID and the
// shard-local clock. The closed-loop driver uses it to top a client back
// up the moment a transaction completes — mid-window — instead of waiting
// for the round to end. The hook runs on worker goroutines: it must touch
// only state owned by the stepped process (the driver's per-client
// generators qualify; anything kernel-global does not).
func (r *ShardedRunner) SetRefill(f func(ProcessID, Time)) {
	for _, sh := range r.shards {
		sh.refill = f
	}
}

// NotifyInvoked tells the runner about an external injection (the
// open-loop driver invoking a client) at the given instant. The lookahead
// engine lifts the owning shard's persistent clock to it so the injected
// work is never stepped before its scheduled arrival; barrier windows
// already start at or after the kernel clock, so this is a no-op there.
func (r *ShardedRunner) NotifyInvoked(pid ProcessID, at Time) {
	if !r.lookahead {
		return
	}
	if sh, ok := r.shardOf[pid]; ok && at > sh.t {
		sh.t = at
	}
}

// SetHorizon bounds the run like Network.Horizon: no round starts at or
// past it (Run returns instead, handing control back to the driver's
// open-loop injection) and window ends / advancement bounds are clipped
// to it. The bound has window granularity, not event granularity: a shard
// draining a deliver→step chain that began before the horizon may push
// its local clock — and thus the kernel clock — a few StepCosts past it,
// so an arrival scheduled at the horizon is invoked at the first
// actionable instant at or after its scheduled one. The driver accounts
// queueing delay from the scheduled instant either way, so the lag lands
// in the measured queueing delay, deterministically. 0 disables the bound.
func (r *ShardedRunner) SetHorizon(t Time) { r.horizon = t }

// Run executes rounds until the system quiesces, the stop predicate
// returns true (checked between rounds — the sharded counterpart of
// sim.Run checking between events), the horizon is reached, or at least
// maxEvents events have executed. It returns the events executed. The
// event budget has round granularity: the run stops after the first
// round that crosses it, overshooting by at most the active shard
// count (each shard of a round is capped at an equal share of the
// remaining budget) — deterministically so.
func (r *ShardedRunner) Run(stop func(*Kernel) bool, maxEvents int) int {
	r.syncFaults()
	if r.lookahead {
		defer r.restoreArrivals()
	}
	n := 0
	for n < maxEvents {
		if stop != nil && stop(r.k) {
			return n
		}
		var executed int
		var more bool
		if r.lookahead {
			executed, more = r.roundLookahead(maxEvents - n)
		} else {
			executed, more = r.round(maxEvents - n)
		}
		n += executed
		if !more {
			return n
		}
	}
	return n
}

// syncFaults refreshes the shards' view of nemesis state at Run start:
// the per-process down flags, and the process pointers themselves — a
// lossy restart swaps a fresh process into the kernel between engine
// runs, and the shard must step the replacement, not the corpse. Faults
// are applied only between Runs (serially, by the driver), so one
// refresh per Run keeps every worker's view exact and race-free.
func (r *ShardedRunner) syncFaults() {
	for _, sh := range r.shards {
		for li, id := range sh.ids {
			sh.procs[li] = r.k.procs[id]
			sh.down[li] = r.k.Down(id)
		}
	}
}

// restoreArrivals hands arrival indexing back to the kernel when a
// lookahead Run returns: every undelivered message parked in a shard heap
// goes back onto the kernel heap, so between Runs the kernel is exactly
// as coherent as under the serial schedulers or the barrier engine.
func (r *ShardedRunner) restoreArrivals() {
	for _, sh := range r.shards {
		for sh.arr.Len() > 0 {
			m := heap.Pop(&sh.arr).(*Message)
			if !m.gone {
				r.k.pushArrival(m)
			}
		}
	}
}

// adoptPending moves kernel income buffers (leftovers of a
// budget-exhausted round, or deliveries a serial scheduler made before
// this runner took over) into the owning shards' local buffers.
func (r *ShardedRunner) adoptPending() {
	k := r.k
	if k.pendingInboxes == 0 {
		return
	}
	kept := 0
	for _, pid := range k.order {
		msgs := k.inbox[pid]
		if len(msgs) == 0 {
			continue
		}
		if k.Down(pid) {
			// A persistently-crashed process keeps its delivered-but-
			// unconsumed messages in the kernel buffer until restart.
			kept++
			continue
		}
		sh := r.shardOf[pid]
		li := sh.local[pid]
		if len(sh.inbox[li]) == 0 {
			sh.pending++
		}
		sh.inbox[li] = append(sh.inbox[li], msgs...)
		k.inbox[pid] = nil
	}
	k.pendingInboxes = kept
}

// runActive executes the active shards' windows — in parallel when there
// is both a pool and enough of them. Each shard gets an equal share of
// the remaining budget (at least one event), so a round overshoots the
// budget by at most the active shard count instead of a factor of it.
// The share is a pure function of round inputs — worker-independent like
// everything else.
func (r *ShardedRunner) runActive(active []*shard, budget int) {
	share := (budget + len(active) - 1) / len(active)
	if share < 1 {
		share = 1
	}
	if r.workers <= 1 || len(active) == 1 {
		for _, sh := range active {
			sh.run(share)
		}
		return
	}
	nw := r.workers
	if nw > len(active) {
		nw = len(active)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(active) {
					return
				}
				active[i].run(share)
			}
		}()
	}
	wg.Wait()
}

// merge is the serial commit phase shared by both engines: buffered sends
// enter the kernel in fixed shard order, then send order (IDs, link
// sequence numbers, latency draws from the single kernel RNG), leftovers
// of budget-exhausted shards are restored, the kernel clock advances to
// the latest shard-local clock, and events are accounted.
func (r *ShardedRunner) merge(active []*shard) int {
	k := r.k
	total, crit := 0, 0
	newNow := k.now
	for _, sh := range active {
		for _, ps := range sh.sends {
			k.send(ps.from, ps.out, ps.at)
		}
		sh.sends = sh.sends[:0]
		k.deliveredMsgs += int64(sh.di) + int64(len(sh.delivered))
		for _, m := range sh.due[sh.di:] {
			// Budget ran out before delivery: the message goes back into
			// transit untouched.
			m.gone = false
			k.byID[m.ID] = m
			k.pushArrival(m)
		}
		sh.due = sh.due[:0]
		sh.di = 0
		for _, m := range sh.delivered {
			delete(k.byID, m.ID)
		}
		sh.delivered = sh.delivered[:0]
		for li, in := range sh.inbox {
			if len(in) == 0 {
				continue
			}
			// Budget ran out between delivery and the consuming step: the
			// messages persist in the kernel income buffer.
			pid := sh.ids[li]
			if len(k.inbox[pid]) == 0 {
				k.pendingInboxes++
			}
			k.inbox[pid] = append(k.inbox[pid], in...)
			sh.inbox[li] = nil
		}
		sh.pending = 0
		total += sh.events
		r.stats.PerShard[sh.idx].Events += sh.events
		if sh.events > crit {
			crit = sh.events
		}
		if sh.t > newNow {
			newNow = sh.t
		}
		sh.events = 0
	}
	k.AdvanceTo(newNow)
	k.compactTransit()
	// Load-mode event accounting, identical to what per-event record()
	// calls would have done.
	k.evSeq += int64(total)
	k.trace.Dropped += int64(total)

	r.stats.Rounds++
	r.stats.Events += total
	r.stats.CriticalEvents += crit
	r.stats.ActiveShardRounds += len(active)
	return total
}

// round executes one barrier window. It returns the events executed and
// whether another round could do work.
func (r *ShardedRunner) round(budget int) (int, bool) {
	k := r.k
	if len(k.order) != r.nProcs {
		panic("sim: process set changed under a ShardedRunner")
	}
	r.adoptPending()
	anyPending := false
	for _, sh := range r.shards {
		if sh.pending > 0 {
			anyPending = true
			break
		}
	}

	// Serial pre-scan: earliest arrival, process readiness and wakes.
	var earliest Time
	haveArrival := false
	if m := k.EarliestArrival(); m != nil {
		earliest, haveArrival = m.ReadyAt, true
	}
	readyNow := false
	var wakeMin Time
	haveWake := false
	shardReady := make([]bool, len(r.shards))
	shardWake := make([]Time, len(r.shards))
	shardHasWake := make([]bool, len(r.shards))
	for si, sh := range r.shards {
		for li, p := range sh.procs {
			if sh.down[li] || !p.Ready() {
				continue
			}
			if w, ok := p.(Waker); ok {
				wt, useful := w.WakeAt(k.now)
				if !useful {
					continue // waiting on a delivery, not on time
				}
				if wt > k.now {
					if !haveWake || wt < wakeMin {
						wakeMin, haveWake = wt, true
					}
					if !shardHasWake[si] || wt < shardWake[si] {
						shardWake[si], shardHasWake[si] = wt, true
					}
					continue
				}
			}
			readyNow = true
			shardReady[si] = true
		}
	}

	// Window start: now if anyone can act, else leap to the earliest
	// future arrival or wake (the sharded counterpart of the Network
	// scheduler's time-leap). Nothing anywhere: quiescent.
	tstart := k.now
	if !readyNow && !anyPending && !(haveArrival && earliest <= k.now) {
		leap := Time(0)
		switch {
		case haveArrival && (!haveWake || earliest <= wakeMin):
			leap = earliest
		case haveWake:
			leap = wakeMin
		default:
			return 0, false // quiescent
		}
		tstart = leap
	}
	if r.horizon > 0 && tstart >= r.horizon {
		return 0, false
	}
	tend := tstart + r.delta
	if r.horizon > 0 && tend > r.horizon {
		tend = r.horizon
	}

	// Route window deliveries to destination shards. Heap pop order is
	// (ReadyAt, ID), so each shard's due list arrives sorted.
	for {
		m := k.EarliestArrival()
		if m == nil || m.ReadyAt >= tend {
			break
		}
		delete(k.byID, m.ID)
		m.gone = true
		r.shardOf[m.To].due = append(r.shardOf[m.To].due, m)
	}

	// Activity is decided serially from round inputs, so it cannot depend
	// on worker timing.
	active := r.shards[:0:0]
	for si, sh := range r.shards {
		if len(sh.due) > 0 || sh.pending > 0 || shardReady[si] || (shardHasWake[si] && shardWake[si] < tend) {
			sh.wstart, sh.wend = tstart, tend
			active = append(active, sh)
		}
	}
	if len(active) == 0 {
		// A wake or arrival exists but lies at or past the horizon-clipped
		// window end; advance to the window end and let the next round
		// reach it.
		if r.horizon > 0 && tend >= r.horizon {
			return 0, false
		}
		k.AdvanceTo(tend)
		return 0, true
	}
	r.runActive(active, budget)
	return r.merge(active), true
}

// roundLookahead executes one per-link lookahead round:
//
//  1. Adopt pending inboxes and freshly committed sends (the kernel
//     arrival heap drains into the destination shards' heaps — while the
//     runner is live, it owns arrival indexing).
//  2. Serial pre-scan: per shard, the earliest instant e_i it could act —
//     the minimum over its pending inboxes (now), Ready processes (now),
//     declared wake instants, and its earliest undelivered arrival.
//  3. Promise fixpoint: shard i cannot send before
//     P_i = min(e_i, min_{j≠i}(P_j + floor[j→i])) — its own next event,
//     or the earliest instant another shard's message could trigger one.
//     Because the floors are positive this is a shortest-path problem
//     over the shard graph, solved exactly with one Dijkstra pass.
//  4. Per-shard advancement bound: no future message can reach shard i
//     with ReadyAt below bound_i = min_{j≠i}(P_j + floor[j→i]) — the
//     null-message guarantee. Every shard executes its own window
//     [clock_i, bound_i): deliveries strictly below the bound (in global
//     (ReadyAt, ID) order, so per-shard delivery order matches the serial
//     index), wake leaps strictly below the bound, Ready chains
//     unbounded, exactly like a barrier window.
//  5. The shared serial merge commits sends and advances the kernel.
//
// The globally earliest event always lies strictly below its shard's
// bound (bounds exceed min e_i by at least one positive floor), so every
// non-quiescent round makes progress and quiescence is detected exactly.
// Unlike classic null-message rings there is no Δ-at-a-time creep toward
// distant wakes: promises are next-EVENT times, not clocks, so an idle
// gap is crossed in a single round.
func (r *ShardedRunner) roundLookahead(budget int) (int, bool) {
	k := r.k
	if len(k.order) != r.nProcs {
		panic("sim: process set changed under a ShardedRunner")
	}
	r.adoptPending()
	for {
		m := k.EarliestArrival()
		if m == nil {
			break
		}
		heap.Pop(&k.arrivals)
		heap.Push(&r.shardOf[m.To].arr, m)
	}

	// Pre-scan: e_i = earliest instant shard i could act.
	minE := infTime
	for si, sh := range r.shards {
		e := infTime
		if sh.pending > 0 {
			e = sh.t
		}
		top := sh.peekArr()
		r.arrTop[si] = top
		if top != nil {
			at := top.ReadyAt
			if sh.t > at {
				at = sh.t
			}
			if at < e {
				e = at
			}
		}
		r.shardReady[si] = false
		r.shardWake[si] = infTime
		for li, p := range sh.procs {
			if sh.down[li] || !p.Ready() {
				continue
			}
			if w, ok := p.(Waker); ok {
				wt, useful := w.WakeAt(sh.t)
				if !useful {
					continue // waiting on a delivery, not on time
				}
				if wt > sh.t {
					if wt < r.shardWake[si] {
						r.shardWake[si] = wt
					}
					continue
				}
			}
			r.shardReady[si] = true
		}
		if r.shardReady[si] && sh.t < e {
			e = sh.t
		}
		if r.shardWake[si] < e {
			e = r.shardWake[si]
		}
		r.e[si] = e
		if e < minE {
			minE = e
		}
	}
	if minE == infTime {
		return 0, false // quiescent
	}
	if r.horizon > 0 && minE >= r.horizon {
		return 0, false
	}
	r.computeBounds()

	// Activity and blocked accounting, decided serially from round inputs.
	barrierEdge := minE + r.delta
	active := r.shards[:0:0]
	for si, sh := range r.shards {
		bound := r.bnd[si]
		if r.horizon > 0 && bound > r.horizon {
			bound = r.horizon
		}
		sh.bound = bound
		top := r.arrTop[si]
		if sh.pending > 0 || r.shardReady[si] ||
			(top != nil && top.ReadyAt < bound) ||
			r.shardWake[si] < bound {
			active = append(active, sh)
			if bound > barrierEdge {
				r.stats.NullAdvances++
			}
		} else if r.e[si] < infTime {
			gap := r.e[si] - bound
			if gap < 0 {
				gap = 0
			}
			r.stats.BlockedShardRounds++
			r.stats.BlockedTime += gap
			r.stats.PerShard[si].BlockedRounds++
			r.stats.PerShard[si].BlockedTime += gap
		}
	}
	if len(active) == 0 {
		// Unreachable while minE is below the horizon (the globally
		// earliest event is always admitted), kept as a defensive exit.
		return 0, false
	}
	r.runActive(active, budget)
	return r.merge(active), true
}

// computeBounds derives each shard's advancement bound from the next-event
// times in r.e: first the promise fixpoint over the shard graph (one
// Dijkstra pass — floors are positive, so settling in ascending promise
// order is exact), then bound_i as the earliest promised influence on i.
func (r *ShardedRunner) computeBounds() {
	S := len(r.shards)
	if S == 1 {
		// A single shard can never be affected from outside.
		r.bnd[0] = infTime
		return
	}
	copy(r.prom, r.e)
	for i := range r.settled {
		r.settled[i] = false
	}
	for it := 0; it < S; it++ {
		u, best := -1, infTime
		for i, s := range r.settled {
			if !s && r.prom[i] < best {
				u, best = i, r.prom[i]
			}
		}
		if u < 0 {
			break
		}
		r.settled[u] = true
		for v := 0; v < S; v++ {
			if v == u || r.settled[v] {
				continue
			}
			if nb := best + r.floors[u][v]; nb < r.prom[v] {
				r.prom[v] = nb
			}
		}
	}
	for i := 0; i < S; i++ {
		b := infTime
		for j := 0; j < S; j++ {
			if j == i {
				continue
			}
			if nb := r.prom[j] + r.floors[j][i]; nb < b {
				b = nb
			}
		}
		r.bnd[i] = b
	}
}

// run executes this shard's window for the round under its engine.
func (sh *shard) run(budget int) {
	if sh.la {
		sh.runWindowLA(budget)
	} else {
		sh.runWindow(sh.wstart, sh.wend, budget)
	}
}

// runWindow is the shard-local sub-simulation of one barrier window: the
// Network scheduler's policy over the shard's processes only, on a local
// clock. It touches no global kernel state.
func (sh *shard) runWindow(tstart, tend Time, budget int) {
	sh.t = tstart
	for sh.events < budget {
		// 1. Processes with pending input act first, in sorted ID order.
		if sh.pending > 0 {
			for li := range sh.procs {
				if len(sh.inbox[li]) > 0 {
					sh.step(li)
					break
				}
			}
			continue
		}
		// 2. Deliveries already due at the local instant.
		if sh.di < len(sh.due) && sh.due[sh.di].ReadyAt <= sh.t {
			sh.deliver()
			continue
		}
		// 3. Ready processes act now — except Wakers declaring a future
		// wake instant (or none at all: those wait for a delivery).
		acted := false
		var wake Time
		wakeLi := -1
		for li, p := range sh.procs {
			if sh.down[li] || !p.Ready() {
				continue
			}
			if w, ok := p.(Waker); ok {
				wt, useful := w.WakeAt(sh.t)
				if !useful {
					continue
				}
				if wt > sh.t {
					if wakeLi < 0 || wt < wake {
						wake, wakeLi = wt, li
					}
					continue
				}
			}
			sh.step(li)
			acted = true
			break
		}
		if acted {
			continue
		}
		// 4. Nobody can act at this instant: advance the local clock to
		// the next useful one inside the window. Arrivals win ties so the
		// woken process sees every message due by its wake instant.
		if sh.di < len(sh.due) && (wakeLi < 0 || sh.due[sh.di].ReadyAt <= wake) {
			sh.deliver()
			continue
		}
		if wakeLi >= 0 && wake < tend {
			// The step itself costs StepCost, so the process runs at
			// exactly its wake instant.
			if wake-StepCost > sh.t {
				sh.t = wake - StepCost
			}
			sh.step(wakeLi)
			continue
		}
		return // idle within this window
	}
}

// runWindowLA is the lookahead counterpart of runWindow: the same local
// policy, but over the shard's persistent clock, with deliveries popped
// from the shard's own arrival heap and both deliveries and wake leaps
// admitted strictly below the shard's advancement bound.
func (sh *shard) runWindowLA(budget int) {
	bound := sh.bound
	for sh.events < budget {
		// 1. Processes with pending input act first, in sorted ID order.
		if sh.pending > 0 {
			for li := range sh.procs {
				if len(sh.inbox[li]) > 0 {
					sh.step(li)
					break
				}
			}
			continue
		}
		// 2. Deliveries already due at the local instant.
		if m := sh.peekArr(); m != nil && m.ReadyAt < bound && m.ReadyAt <= sh.t {
			sh.deliverLA()
			continue
		}
		// 3. Ready processes act now — except Wakers declaring a future
		// wake instant (or none at all: those wait for a delivery).
		acted := false
		var wake Time
		wakeLi := -1
		for li, p := range sh.procs {
			if sh.down[li] || !p.Ready() {
				continue
			}
			if w, ok := p.(Waker); ok {
				wt, useful := w.WakeAt(sh.t)
				if !useful {
					continue
				}
				if wt > sh.t {
					if wakeLi < 0 || wt < wake {
						wake, wakeLi = wt, li
					}
					continue
				}
			}
			sh.step(li)
			acted = true
			break
		}
		if acted {
			continue
		}
		// 4. Nobody can act at this instant: advance the local clock to
		// the next useful one below the bound. Arrivals win ties so the
		// woken process sees every message due by its wake instant.
		if m := sh.peekArr(); m != nil && m.ReadyAt < bound && (wakeLi < 0 || m.ReadyAt <= wake) {
			sh.deliverLA()
			continue
		}
		if wakeLi >= 0 && wake < bound {
			// The step itself costs StepCost, so the process runs at
			// exactly its wake instant.
			if wake-StepCost > sh.t {
				sh.t = wake - StepCost
			}
			sh.step(wakeLi)
			continue
		}
		return // nothing more admissible under this round's bound
	}
}

// peekArr returns the shard's earliest undelivered arrival, discarding
// stale (dropped) heap tops on the way, or nil.
func (sh *shard) peekArr() *Message {
	for sh.arr.Len() > 0 {
		m := sh.arr[0]
		if m.gone {
			heap.Pop(&sh.arr)
			continue
		}
		return m
	}
	return nil
}

// deliver moves the next due message into its local income buffer
// (barrier engine).
func (sh *shard) deliver() {
	m := sh.due[sh.di]
	sh.di++
	sh.admit(m)
}

// deliverLA pops the shard heap's top — the caller has checked it against
// the bound — and admits it. The message is marked gone here (shard-owned
// while the round runs); its global index entry is removed at the merge.
func (sh *shard) deliverLA() {
	m := heap.Pop(&sh.arr).(*Message)
	m.gone = true
	sh.delivered = append(sh.delivered, m)
	sh.admit(m)
}

// admit finishes a delivery: clock, timestamp, income buffer, accounting.
func (sh *shard) admit(m *Message) {
	if m.ReadyAt > sh.t {
		sh.t = m.ReadyAt
	}
	m.DeliveredAt = sh.t
	li := sh.local[m.To]
	if len(sh.inbox[li]) == 0 {
		sh.pending++
	}
	sh.inbox[li] = append(sh.inbox[li], m)
	sh.events++
	sh.evBy[li]++
}

// step executes one computation step of the local process li, buffering
// its sends for the merge.
func (sh *shard) step(li int) {
	in := sh.inbox[li]
	if len(in) > 0 {
		sh.pending--
		sh.inbox[li] = nil
	}
	sh.t += StepCost
	for _, o := range sh.procs[li].Step(sh.t, in) {
		sh.sends = append(sh.sends, shardSend{from: sh.ids[li], out: o, at: sh.t})
	}
	sh.events++
	sh.evBy[li]++
	if sh.refill != nil {
		sh.refill(sh.ids[li], sh.t)
	}
}

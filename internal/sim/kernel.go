package sim

import (
	"fmt"
	"sort"
)

// LatencyModel samples the network latency for a message on a link.
type LatencyModel func(l Link, rng *RNG) Time

// UniformLatency returns a model sampling uniformly from [lo, hi].
func UniformLatency(lo, hi Time) LatencyModel {
	if hi < lo {
		lo, hi = hi, lo
	}
	return func(_ Link, rng *RNG) Time {
		if hi == lo {
			return lo
		}
		return lo + Time(rng.Int63n(int64(hi-lo+1)))
	}
}

// ConstantLatency returns a model with a fixed per-message latency.
func ConstantLatency(d Time) LatencyModel {
	return func(Link, *RNG) Time { return d }
}

// StepCost is the virtual time consumed by one computation step.
const StepCost Time = 1

// Kernel holds a configuration of the system: every process's state plus
// the contents of all income and outcome buffers. It is the executable
// counterpart of a "configuration" in the paper; Snapshot produces the
// deep copies the proof's indistinguishability arguments manipulate.
type Kernel struct {
	now   Time
	procs map[ProcessID]Process
	order []ProcessID // sorted IDs, for deterministic iteration
	// transit is the outcome buffers in send order. Delivered/dropped
	// messages are only marked gone (lazy deletion) and physically removed
	// by compactTransit once they outnumber the live ones, so delivery
	// never pays an O(in-flight) scan+shift. byID is the primary lookup
	// structure: every live in-transit message, keyed by message ID.
	transit []*Message
	byID    map[int64]*Message
	inbox   map[ProcessID][]*Message
	// pendingInboxes counts processes with a non-empty income buffer, so
	// schedulers can skip the per-process scan when nothing is pending.
	pendingInboxes int
	// arrivals indexes transit by (ReadyAt, ID) for the Network scheduler.
	arrivals arrivalHeap
	nextID   int64
	linkSeq  map[Link]int64
	rng      *RNG
	latency  LatencyModel
	trace    *Trace
	// evSeq numbers trace events. It keeps advancing even when events are
	// capped or discarded, so retained events carry their true positions.
	evSeq int64
	// traceCap bounds the retained trace: 0 keeps everything (the proof
	// machinery needs full traces), n > 0 keeps roughly the most recent n
	// events, and a negative cap disables recording entirely (load mode).
	traceCap int
	// keepPayloads controls the sent-payload registry below. Load-mode
	// runs disable it so memory stays flat over millions of events.
	keepPayloads bool
	// latencyFloor is a declared lower bound on the latency model's
	// samples (0 = undeclared). The sharded runner sizes its conservative
	// time windows by it: any message sent inside a window of that width
	// cannot come due before the window ends. An undeclared floor is
	// always safe — windows shrink to a single microsecond.
	latencyFloor Time
	// linkFloor overrides the global floor per link (nil until the first
	// declaration). The lookahead runner derives per-shard-pair null-message
	// bounds from it: a slow link declared with a higher floor buys the
	// receiving shard more lookahead than the global floor would.
	linkFloor map[Link]Time
	// sent is a registry of every payload ever sent, by message ID, used
	// by trace analysis (spec measurements). Payloads are immutable after
	// send by convention, so snapshots share the registry entries.
	sent map[int64]Payload
	// Nemesis state (nemesis.go): crashed processes, severed directed
	// links, the stash of held (undeliverable) messages, and the recovery
	// hooks run after a lossy crash. All nil/empty on fault-free runs —
	// the hot paths gate on the map lengths, so the fault layer costs a
	// fault-free run nothing observable.
	crashed  map[ProcessID]crashInfo
	cut      map[Link]bool
	heldMsgs []*Message
	recovery map[ProcessID]func(Process) Process
	// replacement holds the catch-up hooks run by Replace/Restore
	// (reconfiguration: a fresh process adopts a dead one's shard).
	replacement map[ProcessID]ReplacementHook
	// Conservation counters (CheckConservation): deliveries executed,
	// messages dropped from transit (DropInTransit), and delivered-but-
	// unconsumed messages discarded by lossy crashes.
	deliveredMsgs int64
	lostTransit   int64
	lostInbox     int64
}

// NewKernel creates an empty configuration. Latency defaults to a uniform
// [500µs, 1500µs] model when lat is nil.
func NewKernel(seed int64, lat LatencyModel) *Kernel {
	if lat == nil {
		lat = UniformLatency(500, 1500)
	}
	return &Kernel{
		procs:        make(map[ProcessID]Process),
		byID:         make(map[int64]*Message),
		inbox:        make(map[ProcessID][]*Message),
		linkSeq:      make(map[Link]int64),
		rng:          NewRNG(seed),
		latency:      lat,
		trace:        &Trace{},
		keepPayloads: true,
		sent:         make(map[int64]Payload),
	}
}

// SetTraceCap bounds the retained execution trace. n == 0 restores the
// default unbounded trace, n > 0 retains at least the most recent n events
// (the buffer is compacted when it reaches 2n, so between n and 2n events
// are resident), and n < 0 disables event recording entirely. Event
// sequence numbers keep advancing regardless, and Trace().Dropped counts
// the discarded events.
func (k *Kernel) SetTraceCap(n int) { k.traceCap = n }

// SetPayloadRetention toggles the sent-payload registry backing PayloadOf.
// Trace analysis (the spec measurements) needs it; load-mode throughput
// runs disable it so memory stays flat over millions of sends.
func (k *Kernel) SetPayloadRetention(on bool) { k.keepPayloads = on }

// SetLatencyFloor declares a lower bound on the latency model's samples.
// The model itself is an opaque sampling function, so the bound cannot be
// derived — whoever constructed the model states it (protocol.Deploy does
// for the default model). The sharded runner uses the floor as its
// conservative window width; declaring a floor larger than the model's
// true minimum breaks no invariant of the asynchronous model (deliveries
// are never early, only later), but understates concurrency; 0 (the
// default) is always safe and makes sharded stepping degenerate to
// 1µs windows.
func (k *Kernel) SetLatencyFloor(d Time) {
	if d < 0 {
		d = 0
	}
	k.latencyFloor = d
}

// LatencyFloor returns the declared latency lower bound (0 = undeclared).
func (k *Kernel) LatencyFloor() Time { return k.latencyFloor }

// SetLinkLatencyFloor declares a per-link lower bound on the latency
// model's samples, overriding the global floor for that link only. Like
// the global floor it is a declaration, not a measurement: whoever
// constructed the latency model states it. The lookahead runner folds
// per-link floors into its shard-pair bound matrix, so links declared
// slower than the global floor widen the receiving shard's conservative
// advancement bound. Declaring a floor above the model's true minimum on
// a link understates nothing for correctness of the asynchronous model
// (deliveries are never early) but would let the lookahead runner deliver
// a faster message later than the serial scheduler would — still a valid
// schedule, just a different one.
func (k *Kernel) SetLinkLatencyFloor(l Link, d Time) {
	if d < 0 {
		d = 0
	}
	if k.linkFloor == nil {
		k.linkFloor = make(map[Link]Time)
	}
	k.linkFloor[l] = d
}

// LinkLatencyFloor returns the declared floor for the link: its own
// declaration if present, the global floor otherwise.
func (k *Kernel) LinkLatencyFloor(l Link) Time {
	if f, ok := k.linkFloor[l]; ok {
		return f
	}
	return k.latencyFloor
}

// Add registers a process. It panics on duplicate IDs.
func (k *Kernel) Add(p Process) {
	id := p.ID()
	if _, dup := k.procs[id]; dup {
		panic(fmt.Sprintf("sim: duplicate process %s", id))
	}
	k.procs[id] = p
	k.order = append(k.order, id)
	sort.Slice(k.order, func(i, j int) bool { return k.order[i] < k.order[j] })
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Trace returns the execution trace.
func (k *Kernel) Trace() *Trace { return k.trace }

// Process returns the registered process with the given ID, or nil.
func (k *Kernel) Process(id ProcessID) Process { return k.procs[id] }

// Processes returns all process IDs in sorted order.
func (k *Kernel) Processes() []ProcessID {
	out := make([]ProcessID, len(k.order))
	copy(out, k.order)
	return out
}

// InTransit returns the messages currently in outcome buffers, in send
// order. The returned slice is a copy; the messages are not.
func (k *Kernel) InTransit() []*Message {
	out := make([]*Message, 0, len(k.byID))
	for _, m := range k.transit {
		if !m.gone {
			out = append(out, m)
		}
	}
	return out
}

// InTransitOn returns deliverable in-transit messages on the given link,
// oldest first. Held messages (stranded by a crash or cut) are excluded:
// callers use this to drive deliveries, and a held message is not a legal
// delivery until the fault clears.
func (k *Kernel) InTransitOn(l Link) []*Message {
	var out []*Message
	for _, m := range k.transit {
		if !m.gone && !m.held && m.From == l.From && m.To == l.To {
			out = append(out, m)
		}
	}
	return out
}

// FindInTransit locates a deliverable in-transit message by link and
// sequence number (held messages excluded, like InTransitOn).
func (k *Kernel) FindInTransit(l Link, seq int64) *Message {
	for _, m := range k.transit {
		if !m.gone && !m.held && m.From == l.From && m.To == l.To && m.LinkSeq == seq {
			return m
		}
	}
	return nil
}

// Inbox returns the messages delivered to pid but not yet consumed.
func (k *Kernel) Inbox(pid ProcessID) []*Message {
	out := make([]*Message, len(k.inbox[pid]))
	copy(out, k.inbox[pid])
	return out
}

// Quiescent reports whether no message is in transit or awaiting
// consumption and no process is Ready. It corresponds to the paper's
// quiescent configurations once all invoked transactions have completed.
func (k *Kernel) Quiescent() bool {
	if len(k.byID) > 0 || k.pendingInboxes > 0 {
		return false
	}
	for _, id := range k.order {
		if k.procs[id].Ready() {
			return false
		}
	}
	return true
}

// Deliver moves the identified in-transit message into the destination's
// income buffer. Virtual time advances to at least the message's ReadyAt.
// It panics if the message is not in transit (scheduler bug). Removal is
// by ID index plus lazy slice deletion: O(1) amortized, matching the
// arrival heap's O(log n) selection.
func (k *Kernel) Deliver(msgID int64) *Message {
	m, ok := k.byID[msgID]
	if !ok {
		panic(fmt.Sprintf("sim: Deliver(%d): message not in transit", msgID))
	}
	if m.held {
		panic(fmt.Sprintf("sim: Deliver(%d): message is held by a fault (destination down or link cut)", msgID))
	}
	delete(k.byID, msgID)
	k.deliveredMsgs++
	m.gone = true
	k.compactTransit()
	if m.ReadyAt > k.now {
		k.now = m.ReadyAt
	}
	m.DeliveredAt = k.now
	if len(k.inbox[m.To]) == 0 {
		k.pendingInboxes++
	}
	k.inbox[m.To] = append(k.inbox[m.To], m)
	k.record(Event{
		Kind: EvDeliver,
		Msgs: []MsgRef{refOf(m)},
	})
	return m
}

// compactTransit physically removes gone messages from the send-order
// slice once they outnumber the live ones, keeping deletion amortized
// O(1) and iteration proportional to the live count.
func (k *Kernel) compactTransit() {
	if len(k.transit) < 32 || len(k.transit) < 2*len(k.byID) {
		return
	}
	live := k.transit[:0]
	for _, m := range k.transit {
		if !m.gone {
			live = append(live, m)
		}
	}
	for i := len(live); i < len(k.transit); i++ {
		k.transit[i] = nil
	}
	k.transit = live
}

// AdvanceTo jumps virtual time forward to t (no-op when t ≤ now). The
// Network scheduler's time-leap and the open-loop driver use it to skip
// idle stretches instead of spinning 1µs steps through them.
func (k *Kernel) AdvanceTo(t Time) {
	if t > k.now {
		k.now = t
	}
}

// StepProcess executes one computation step of pid: the process consumes
// its entire income buffer and may send messages. Returns the sent
// messages. It panics on unknown processes.
func (k *Kernel) StepProcess(pid ProcessID) []*Message {
	p, ok := k.procs[pid]
	if !ok {
		panic(fmt.Sprintf("sim: StepProcess(%s): unknown process", pid))
	}
	if k.Down(pid) {
		panic(fmt.Sprintf("sim: StepProcess(%s): process is crashed", pid))
	}
	in := k.inbox[pid]
	if len(in) > 0 {
		k.pendingInboxes--
	}
	k.inbox[pid] = nil
	k.now += StepCost

	outs := p.Step(k.now, in)
	sent := make([]*Message, 0, len(outs))
	for _, o := range outs {
		sent = append(sent, k.send(pid, o, k.now))
	}

	ev := Event{Kind: EvStep, Proc: pid}
	for _, m := range in {
		ev.Consumed = append(ev.Consumed, refOf(m))
	}
	for _, m := range sent {
		ev.Sent = append(ev.Sent, refOf(m))
	}
	k.record(ev)
	return sent
}

// send materializes one outbound message sent by pid at virtual instant
// at: it assigns the global message ID and per-link sequence number,
// samples the link latency from the kernel RNG, and registers the message
// in the transit structures. It is the single commit point for sends —
// StepProcess calls it inline; the sharded runner calls it during its
// serial merge phase, in deterministic shard-then-send order, which is
// what keeps IDs, sequence numbers and latency draws independent of how
// many workers executed the steps.
func (k *Kernel) send(from ProcessID, o Outbound, at Time) *Message {
	if _, ok := k.procs[o.To]; !ok {
		panic(fmt.Sprintf("sim: %s sent to unknown process %s", from, o.To))
	}
	l := Link{From: from, To: o.To}
	k.nextID++
	k.linkSeq[l]++
	m := &Message{
		ID:      k.nextID,
		From:    from,
		To:      o.To,
		LinkSeq: k.linkSeq[l],
		Payload: o.Payload,
		SentAt:  at,
	}
	m.ReadyAt = at + k.latency(l, k.rng)
	k.transit = append(k.transit, m)
	k.byID[m.ID] = m
	if k.blocked(from, o.To) {
		// Destination down or link cut: the message is committed (ID,
		// sequence number, latency draw) but held out of the arrival
		// index until the fault clears.
		k.hold(m)
	} else {
		k.pushArrival(m)
	}
	if k.keepPayloads {
		k.sent[m.ID] = m.Payload
	}
	return m
}

// Annotate appends an annotation event (invoke/response/mark) to the trace.
func (k *Kernel) Annotate(kind EventKind, pid ProcessID, note string) {
	k.record(Event{Kind: kind, Proc: pid, Note: note})
}

func (k *Kernel) record(ev Event) {
	if k.traceCap < 0 {
		k.evSeq++
		k.trace.Dropped++
		return
	}
	ev.Seq = k.evSeq
	k.evSeq++
	ev.At = k.now
	k.trace.Events = append(k.trace.Events, ev)
	if k.traceCap > 0 && len(k.trace.Events) >= 2*k.traceCap {
		drop := len(k.trace.Events) - k.traceCap
		k.trace.Dropped += int64(drop)
		k.trace.Events = append(k.trace.Events[:0:0], k.trace.Events[drop:]...)
	}
}

func refOf(m *Message) MsgRef {
	return MsgRef{ID: m.ID, Link: Link{From: m.From, To: m.To}, LinkSeq: m.LinkSeq, Kind: m.Payload.Kind()}
}

// PayloadOf returns the payload of any message ever sent in this kernel
// (or its snapshot ancestors), by message ID. Returns nil if unknown or if
// payload retention is disabled.
func (k *Kernel) PayloadOf(id int64) Payload { return k.sent[id] }

// Snapshot returns a deep copy of the configuration: process states, all
// buffers, RNG state, link sequence counters and the trace so far. The
// copy's future evolution is completely independent of the original's.
func (k *Kernel) Snapshot() *Kernel {
	c := &Kernel{
		now:            k.now,
		procs:          make(map[ProcessID]Process, len(k.procs)),
		order:          append([]ProcessID(nil), k.order...),
		byID:           make(map[int64]*Message, len(k.byID)),
		inbox:          make(map[ProcessID][]*Message, len(k.inbox)),
		pendingInboxes: k.pendingInboxes,
		nextID:         k.nextID,
		linkSeq:        make(map[Link]int64, len(k.linkSeq)),
		rng:            k.rng.Clone(),
		latency:        k.latency,
		trace:          k.trace.clone(),
		evSeq:          k.evSeq,
		traceCap:       k.traceCap,
		keepPayloads:   k.keepPayloads,
		latencyFloor:   k.latencyFloor,
		sent:           make(map[int64]Payload, len(k.sent)),
		deliveredMsgs:  k.deliveredMsgs,
		lostTransit:    k.lostTransit,
		lostInbox:      k.lostInbox,
	}
	if len(k.crashed) > 0 {
		c.crashed = make(map[ProcessID]crashInfo, len(k.crashed))
		for id, ci := range k.crashed {
			c.crashed[id] = ci
		}
	}
	if len(k.cut) > 0 {
		c.cut = make(map[Link]bool, len(k.cut))
		for l := range k.cut {
			c.cut[l] = true
		}
	}
	if len(k.recovery) > 0 {
		c.recovery = make(map[ProcessID]func(Process) Process, len(k.recovery))
		for id, f := range k.recovery {
			c.recovery[id] = f
		}
	}
	if len(k.replacement) > 0 {
		c.replacement = make(map[ProcessID]ReplacementHook, len(k.replacement))
		for id, f := range k.replacement {
			c.replacement[id] = f
		}
	}
	if len(k.linkFloor) > 0 {
		c.linkFloor = make(map[Link]Time, len(k.linkFloor))
		for l, f := range k.linkFloor {
			c.linkFloor[l] = f
		}
	}
	for id, p := range k.sent {
		c.sent[id] = p
	}
	for id, p := range k.procs {
		c.procs[id] = p.Clone()
	}
	c.transit = make([]*Message, 0, len(k.byID))
	for _, m := range k.transit {
		if m.gone {
			continue
		}
		cp := m.clone()
		c.transit = append(c.transit, cp)
		c.byID[cp.ID] = cp
		if cp.held {
			c.heldMsgs = append(c.heldMsgs, cp)
		}
	}
	c.rebuildArrivals()
	for id, msgs := range k.inbox {
		if len(msgs) == 0 {
			continue
		}
		cp := make([]*Message, len(msgs))
		for i, m := range msgs {
			cp[i] = m.clone()
		}
		c.inbox[id] = cp
	}
	for l, s := range k.linkSeq {
		c.linkSeq[l] = s
	}
	return c
}

// DropInTransit removes (loses) an in-transit message. The paper's links
// are reliable, so the adversary never uses this; it exists only for
// failure-injection tests, which verify the checkers catch the resulting
// anomalies.
func (k *Kernel) DropInTransit(msgID int64) bool {
	m, ok := k.byID[msgID]
	if !ok {
		return false
	}
	delete(k.byID, msgID)
	m.gone = true
	k.lostTransit++
	k.compactTransit()
	k.Annotate(EvMark, m.From, fmt.Sprintf("dropped %s", m))
	return true
}

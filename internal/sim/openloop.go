package sim

import "math"

// ArrivalProcess generates a deterministic, nondecreasing sequence of
// virtual-time instants at which an open-loop load generator injects
// transactions. Unlike a closed loop, the process never waits for
// completions: arrivals keep coming at the offered rate whether or not
// the system has finished the previous ones, which is what exposes the
// queueing-delay side of the latency–throughput curve.
type ArrivalProcess interface {
	// Next returns the next arrival instant. Successive calls are
	// nondecreasing.
	Next() Time
}

// UniformArrivals is a deterministic-rate process: arrivals exactly
// 1e6/rate virtual microseconds apart. The phase accumulates in floating
// point so non-integer periods do not drift.
type UniformArrivals struct {
	period float64
	at     float64
}

// NewUniformArrivals returns a fixed-rate process of rate arrivals per
// virtual second, starting one period after start. It panics on a
// non-positive rate.
func NewUniformArrivals(rate float64, start Time) *UniformArrivals {
	if rate <= 0 {
		panic("sim: NewUniformArrivals with non-positive rate")
	}
	return &UniformArrivals{period: 1e6 / rate, at: float64(start)}
}

// Next implements ArrivalProcess.
func (u *UniformArrivals) Next() Time {
	u.at += u.period
	return Time(u.at)
}

// PoissonArrivals is a Poisson process of the given rate: inter-arrival
// gaps are exponentially distributed, sampled from a dedicated seeded RNG
// stream so the sequence is independent of everything else in the run and
// reproducible from the seed alone.
type PoissonArrivals struct {
	rate float64
	rng  *RNG
	at   float64
}

// NewPoissonArrivals returns a Poisson process of rate arrivals per
// virtual second starting at start. It panics on a non-positive rate.
func NewPoissonArrivals(rate float64, seed int64, start Time) *PoissonArrivals {
	if rate <= 0 {
		panic("sim: NewPoissonArrivals with non-positive rate")
	}
	return &PoissonArrivals{rate: rate, rng: NewRNG(seed), at: float64(start)}
}

// Next implements ArrivalProcess: inverse-CDF exponential sampling.
func (p *PoissonArrivals) Next() Time {
	u := p.rng.Float64() // in [0, 1): 1-u is in (0, 1], so the log is finite
	gap := -math.Log(1-u) * 1e6 / p.rate
	p.at += gap
	return Time(p.at)
}

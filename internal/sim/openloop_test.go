package sim

import (
	"math"
	"testing"
)

func TestUniformArrivalsExactSpacing(t *testing.T) {
	a := NewUniformArrivals(1000, 500) // 1 per ms, starting at 500µs
	want := Time(1500)
	for i := 0; i < 5; i++ {
		if got := a.Next(); got != want {
			t.Fatalf("arrival %d = %d, want %d", i, got, want)
		}
		want += 1000
	}
}

func TestUniformArrivalsNonIntegerPeriodDoesNotDrift(t *testing.T) {
	a := NewUniformArrivals(3000, 0) // period 333.33µs
	var last Time
	for i := 1; i <= 3000; i++ {
		last = a.Next()
	}
	// 3000 arrivals at 3000/s must land at 1 virtual second, not at
	// 3000·333 = 999000µs (truncated-period drift).
	if last < 999_990 || last > 1_000_010 {
		t.Fatalf("3000th arrival at %dµs, want ~1e6", last)
	}
}

func TestPoissonArrivalsDeterministicAndSeedSensitive(t *testing.T) {
	seq := func(seed int64) []Time {
		a := NewPoissonArrivals(2000, seed, 0)
		out := make([]Time, 50)
		for i := range out {
			out[i] = a.Next()
		}
		return out
	}
	a1, a2, b := seq(7), seq(7), seq(8)
	same := true
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed diverged at arrival %d: %d vs %d", i, a1[i], a2[i])
		}
		if a1[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrival sequences")
	}
	for i := 1; i < len(a1); i++ {
		if a1[i] < a1[i-1] {
			t.Fatalf("arrivals not monotone: %d then %d", a1[i-1], a1[i])
		}
	}
}

func TestPoissonArrivalsMeanRate(t *testing.T) {
	const rate = 1000.0
	a := NewPoissonArrivals(rate, 3, 0)
	const n = 20000
	var last Time
	for i := 0; i < n; i++ {
		last = a.Next()
	}
	// n arrivals should span about n/rate seconds: mean gap 1e6/rate µs.
	gotMean := float64(last) / n
	wantMean := 1e6 / rate
	if math.Abs(gotMean-wantMean) > 0.05*wantMean {
		t.Fatalf("mean inter-arrival = %.1fµs, want %.1f ± 5%%", gotMean, wantMean)
	}
}

// timerProc is Ready until its fire time: a minimal Waker. Without the
// time-leap a scheduler must spin StepCost-sized steps to reach fireAt.
type timerProc struct {
	id     ProcessID
	fireAt Time
	fired  bool
	steps  int
}

func (p *timerProc) ID() ProcessID { return p.id }
func (p *timerProc) Ready() bool   { return !p.fired }
func (p *timerProc) Clone() Process {
	c := *p
	return &c
}
func (p *timerProc) Step(now Time, inbox []*Message) []Outbound {
	p.steps++
	if now >= p.fireAt {
		p.fired = true
	}
	return nil
}
func (p *timerProc) WakeAt(now Time) (Time, bool) {
	if p.fired {
		return 0, false
	}
	if p.fireAt < now {
		return now, true
	}
	return p.fireAt, true
}

func TestNetworkTimeLeapSkipsIdleSpinning(t *testing.T) {
	k := NewKernel(1, nil)
	p := &timerProc{id: "t0", fireAt: 50_000}
	k.Add(p)
	n := Run(k, &Network{}, nil, 1000)
	if !p.fired {
		t.Fatalf("timer did not fire after %d events (now=%d)", n, k.Now())
	}
	if n > 3 {
		t.Fatalf("time-leap still spun: %d events to cross 50ms", n)
	}
	if k.Now() != p.fireAt {
		t.Fatalf("woke at %d, want exactly %d", k.Now(), p.fireAt)
	}
}

func TestNetworkNoTimeLeapSpins(t *testing.T) {
	k := NewKernel(1, nil)
	p := &timerProc{id: "t0", fireAt: 2_000}
	k.Add(p)
	n := Run(k, &Network{NoTimeLeap: true}, nil, 100_000)
	if !p.fired {
		t.Fatal("timer did not fire")
	}
	if n < 1_000 {
		t.Fatalf("expected ~2000 spin steps without the leap, got %d", n)
	}
}

func TestNetworkHorizonStopsBeforeLeap(t *testing.T) {
	k := NewKernel(1, nil)
	p := &timerProc{id: "t0", fireAt: 50_000}
	k.Add(p)
	n := Run(k, &Network{Horizon: 10_000}, nil, 1000)
	if p.fired {
		t.Fatal("timer fired past the horizon")
	}
	if n != 0 {
		t.Fatalf("executed %d events, want 0 (only action leaps past horizon)", n)
	}
	if k.Now() > 10_000 {
		t.Fatalf("clock advanced to %d past horizon 10000", k.Now())
	}
}

// TestTimeLeapWaiterBlockedOnDeliveryIsSkipped: a Waker reporting ok=false
// (progress needs a delivery) must not be stepped; the message delivery
// proceeds and unblocks it.
type blockedProc struct {
	id       ProcessID
	peer     ProcessID
	got      bool
	sentPing bool
	steps    int
}

func (p *blockedProc) ID() ProcessID { return p.id }
func (p *blockedProc) Ready() bool   { return !p.got }
func (p *blockedProc) Clone() Process {
	c := *p
	return &c
}
func (p *blockedProc) Step(now Time, inbox []*Message) []Outbound {
	p.steps++
	for range inbox {
		p.got = true
	}
	return nil
}
func (p *blockedProc) WakeAt(Time) (Time, bool) { return 0, false }

type oneShotSender struct {
	id   ProcessID
	peer ProcessID
	sent bool
}

func (p *oneShotSender) ID() ProcessID { return p.id }
func (p *oneShotSender) Ready() bool   { return !p.sent }
func (p *oneShotSender) Clone() Process {
	c := *p
	return &c
}
func (p *oneShotSender) Step(now Time, inbox []*Message) []Outbound {
	if p.sent {
		return nil
	}
	p.sent = true
	return []Outbound{{To: p.peer, Payload: &pingPayload{}}}
}

func TestTimeLeapWaiterBlockedOnDeliveryIsSkipped(t *testing.T) {
	k := NewKernel(1, ConstantLatency(800))
	b := &blockedProc{id: "b", peer: "a"}
	k.Add(b)
	k.Add(&oneShotSender{id: "a", peer: "b"})
	Run(k, &Network{}, nil, 1000)
	if !b.got {
		t.Fatal("blocked process never received the message")
	}
	// One step to consume the delivery; zero useless spins before it.
	if b.steps != 1 {
		t.Fatalf("blocked process stepped %d times, want exactly 1", b.steps)
	}
}

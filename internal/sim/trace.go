package sim

import "fmt"

// EventKind classifies trace events.
type EventKind uint8

// Trace event kinds. EvStep and EvDeliver are the two event types of the
// paper's model; the others are annotations recorded by the protocol layer
// (transaction invocations and responses) and by experiments (marks).
const (
	EvStep EventKind = iota
	EvDeliver
	EvInvoke
	EvResponse
	EvMark
)

func (k EventKind) String() string {
	switch k {
	case EvStep:
		return "step"
	case EvDeliver:
		return "deliver"
	case EvInvoke:
		return "invoke"
	case EvResponse:
		return "response"
	case EvMark:
		return "mark"
	}
	return "unknown"
}

// MsgRef identifies a message by link and per-link sequence number. Unlike
// raw message IDs, MsgRefs remain stable across filtered replays as long as
// the sender's behaviour is unchanged, which is exactly the
// indistinguishability property the proof's constructions rely on. The ID
// field is informational (payload lookup); replay matching uses Link+LinkSeq.
type MsgRef struct {
	ID      int64
	Link    Link
	LinkSeq int64
	Kind    string // payload kind, for rendering
}

func (r MsgRef) String() string {
	return fmt.Sprintf("%s[%d]%s", r.Link, r.LinkSeq, r.Kind)
}

// Event is one entry of an execution trace.
type Event struct {
	Seq  int64     // position in the trace
	At   Time      // virtual time after the event
	Kind EventKind // what happened

	// For EvStep: the process that stepped, the messages it consumed and
	// the messages it sent. For EvDeliver: Msgs has the single delivered
	// message. For EvInvoke / EvResponse / EvMark: Proc and Note describe
	// the annotation.
	Proc     ProcessID
	Consumed []MsgRef
	Sent     []MsgRef
	Msgs     []MsgRef
	Note     string
}

func (e Event) String() string {
	switch e.Kind {
	case EvStep:
		return fmt.Sprintf("%4d step    %-4s consume=%v send=%v", e.Seq, e.Proc, e.Consumed, e.Sent)
	case EvDeliver:
		return fmt.Sprintf("%4d deliver %v", e.Seq, e.Msgs)
	default:
		return fmt.Sprintf("%4d %-7s %-4s %s", e.Seq, e.Kind, e.Proc, e.Note)
	}
}

// Trace is an append-only execution log. Under a trace cap (load mode) it
// retains only the most recent events; Dropped counts the discarded ones.
type Trace struct {
	Events []Event
	// Dropped is the number of events discarded under a trace cap. The
	// full history spans Dropped+len(Events) events.
	Dropped int64
}

// clone returns a deep copy (Event values are immutable once recorded, so a
// slice copy suffices).
func (t *Trace) clone() *Trace {
	c := &Trace{Events: make([]Event, len(t.Events)), Dropped: t.Dropped}
	copy(c.Events, t.Events)
	return c
}

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.Events) }

// Since returns the events recorded at or after trace position from.
func (t *Trace) Since(from int) []Event {
	if from < 0 {
		from = 0
	}
	if from > len(t.Events) {
		from = len(t.Events)
	}
	return t.Events[from:]
}

package sim

import "container/heap"

// arrivalHeap is an indexed min-heap over in-transit messages, ordered by
// (ReadyAt, ID). It is the Network scheduler's earliest-arrival index:
// instead of rescanning every in-transit message per event (previously an
// O(n) scan over a fresh slice copy), the next arrival is a heap peek.
// Entries are lazily invalidated — Deliver/DropInTransit mark the message
// gone and the heap discards stale tops on the next peek — so every
// message is pushed and popped exactly once, O(log n) amortized per send.
// (Executing the delivery still walks the transit buffer, which is O(in-
// flight messages); making the heap the primary transit structure is a
// ROADMAP item.)
type arrivalHeap []*Message

func (h arrivalHeap) Len() int { return len(h) }

func (h arrivalHeap) Less(i, j int) bool {
	if h[i].ReadyAt != h[j].ReadyAt {
		return h[i].ReadyAt < h[j].ReadyAt
	}
	return h[i].ID < h[j].ID
}

func (h arrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *arrivalHeap) Push(x any) { *h = append(*h, x.(*Message)) }

func (h *arrivalHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return m
}

// push adds a freshly sent message to the index.
func (k *Kernel) pushArrival(m *Message) {
	heap.Push(&k.arrivals, m)
}

// EarliestArrival returns the deliverable in-transit message with the
// smallest (ReadyAt, ID), or nil when nothing is deliverable. Stale heap
// entries (messages already delivered or dropped) and held entries
// (stranded by a crash or cut — the kernel's held stash keeps them and
// re-pushes on release, so discarding the index entry loses nothing) are
// discarded on the way.
func (k *Kernel) EarliestArrival() *Message {
	for k.arrivals.Len() > 0 {
		m := k.arrivals[0]
		if m.gone || m.held {
			heap.Pop(&k.arrivals)
			continue
		}
		return m
	}
	return nil
}

// rebuildArrivals reindexes the heap from the transit buffer (used by
// Snapshot, whose messages are fresh clones). Held messages stay out:
// they are re-pushed by releaseHeld when their fault clears.
func (k *Kernel) rebuildArrivals() {
	k.arrivals = k.arrivals[:0]
	for _, m := range k.transit {
		if !m.held {
			k.arrivals = append(k.arrivals, m)
		}
	}
	heap.Init(&k.arrivals)
}

package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

// pingPayload is a trivial test payload.
type pingPayload struct {
	N int
}

func (p *pingPayload) Kind() string   { return "ping" }
func (p *pingPayload) Clone() Payload { c := *p; return &c }

// pinger sends `count` pings to peer, one per local step, and counts pongs.
type pinger struct {
	id      ProcessID
	peer    ProcessID
	count   int
	sent    int
	pongs   int
	echo    bool // echo mode: respond to every ping with a ping back
	stepLog []int
}

func (p *pinger) ID() ProcessID { return p.id }
func (p *pinger) Ready() bool   { return !p.echo && p.sent < p.count }
func (p *pinger) Clone() Process {
	c := *p
	c.stepLog = append([]int(nil), p.stepLog...)
	return &c
}

func (p *pinger) Step(now Time, inbox []*Message) []Outbound {
	var out []Outbound
	for _, m := range inbox {
		pl := m.Payload.(*pingPayload)
		p.stepLog = append(p.stepLog, pl.N)
		if p.echo {
			out = append(out, Outbound{To: m.From, Payload: &pingPayload{N: pl.N}})
		} else {
			p.pongs++
		}
	}
	if !p.echo && p.sent < p.count {
		out = append(out, Outbound{To: p.peer, Payload: &pingPayload{N: p.sent}})
		p.sent++
	}
	return out
}

func newPingPair(seed int64, count int) (*Kernel, *pinger, *pinger) {
	k := NewKernel(seed, UniformLatency(10, 100))
	a := &pinger{id: "a", peer: "b", count: count}
	b := &pinger{id: "b", peer: "a", echo: true}
	k.Add(a)
	k.Add(b)
	return k, a, b
}

func TestDrainCompletesPingPong(t *testing.T) {
	k, a, _ := newPingPair(1, 5)
	n := Drain(k, 10_000)
	if n == 0 {
		t.Fatal("no events executed")
	}
	if !k.Quiescent() {
		t.Fatal("kernel not quiescent after drain")
	}
	if a.pongs != 5 {
		t.Fatalf("pongs = %d, want 5", a.pongs)
	}
}

func TestDeterminismSameSeedSameTrace(t *testing.T) {
	run := func(seed int64) []string {
		k, _, _ := newPingPair(seed, 8)
		Run(k, NewRandom(seed*7+3), nil, 10_000)
		var out []string
		for _, ev := range k.Trace().Events {
			out = append(out, ev.String())
		}
		return out
	}
	t1, t2 := run(42), run(42)
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d:\n%s\n%s", i, t1[i], t2[i])
		}
	}
}

func TestSnapshotIndependence(t *testing.T) {
	k, a, _ := newPingPair(3, 6)
	// Run partway.
	Run(k, &RoundRobin{}, func(k *Kernel) bool { return a.pongs >= 2 }, 10_000)
	snap := k.Snapshot()

	// Finish the original.
	Drain(k, 10_000)
	if a.pongs != 6 {
		t.Fatalf("original pongs = %d, want 6", a.pongs)
	}

	// The snapshot must still be at the midpoint and independently runnable.
	sa := snap.Process("a").(*pinger)
	if sa.pongs != 2 {
		t.Fatalf("snapshot pongs = %d, want 2", sa.pongs)
	}
	Drain(snap, 10_000)
	if sa.pongs != 6 {
		t.Fatalf("snapshot after drain pongs = %d, want 6", sa.pongs)
	}
	// And the original must not have been disturbed further.
	if a.pongs != 6 {
		t.Fatalf("original disturbed by snapshot run: pongs = %d", a.pongs)
	}
}

func TestSnapshotDeepCopiesInTransit(t *testing.T) {
	k, _, _ := newPingPair(5, 3)
	// Step a once to put a message in transit.
	k.StepProcess("a")
	if len(k.InTransit()) != 1 {
		t.Fatalf("in transit = %d, want 1", len(k.InTransit()))
	}
	snap := k.Snapshot()
	orig := k.InTransit()[0]
	cp := snap.InTransit()[0]
	if orig == cp {
		t.Fatal("snapshot shares message pointers")
	}
	if orig.Payload == cp.Payload {
		t.Fatal("snapshot shares payload pointers")
	}
	orig.Payload.(*pingPayload).N = 999
	if cp.Payload.(*pingPayload).N == 999 {
		t.Fatal("payload mutation leaked into snapshot")
	}
}

func TestRestrictionFreezesProcesses(t *testing.T) {
	k := NewKernel(7, UniformLatency(1, 1))
	a := &pinger{id: "a", peer: "b", count: 4}
	b := &pinger{id: "b", peer: "a", echo: true}
	c := &pinger{id: "c", peer: "b", count: 4}
	k.Add(a)
	k.Add(b)
	k.Add(c)
	r := Restrict("a", "b")
	DrainRestricted(k, r, 10_000)
	if a.pongs != 4 {
		t.Fatalf("a pongs = %d, want 4", a.pongs)
	}
	if c.sent != 0 {
		t.Fatalf("frozen process c took steps: sent = %d", c.sent)
	}
	// c's messages (none yet) and steps must resume after lifting.
	Drain(k, 10_000)
	if c.pongs != 4 {
		t.Fatalf("c pongs after lifting = %d, want 4", c.pongs)
	}
}

func TestDeliverAdvancesTimeMonotonically(t *testing.T) {
	k, _, _ := newPingPair(11, 10)
	var last Time
	Run(k, &RoundRobin{}, func(k *Kernel) bool {
		if k.Now() < last {
			t.Fatalf("time went backwards: %d -> %d", last, k.Now())
		}
		last = k.Now()
		return false
	}, 10_000)
}

func TestLinkSeqAssignedPerLink(t *testing.T) {
	k, _, _ := newPingPair(13, 3)
	// a sends 3 pings; each should get link seq 1,2,3 on a->b.
	k.StepProcess("a")
	k.StepProcess("a")
	k.StepProcess("a")
	msgs := k.InTransitOn(Link{From: "a", To: "b"})
	if len(msgs) != 3 {
		t.Fatalf("in transit on a->b = %d, want 3", len(msgs))
	}
	for i, m := range msgs {
		if m.LinkSeq != int64(i+1) {
			t.Fatalf("msg %d has link seq %d, want %d", i, m.LinkSeq, i+1)
		}
	}
}

func TestScriptedReplayReproducesRun(t *testing.T) {
	// Record a random run, then replay its script on a fresh snapshot and
	// compare final states.
	k, _, _ := newPingPair(17, 5)
	base := k.Snapshot()
	Run(k, NewRandom(99), nil, 10_000)
	script := ScriptOf(k.Trace().Events)

	replSched := &Scripted{Steps: script}
	Run(base, replSched, nil, 100_000)
	if replSched.Err != nil {
		t.Fatalf("replay diverged: %v", replSched.Err)
	}
	pa := k.Process("a").(*pinger)
	ra := base.Process("a").(*pinger)
	if pa.pongs != ra.pongs || pa.sent != ra.sent {
		t.Fatalf("replay state mismatch: (%d,%d) vs (%d,%d)", pa.pongs, pa.sent, ra.pongs, ra.sent)
	}
	if fmt.Sprint(pa.stepLog) != fmt.Sprint(ra.stepLog) {
		t.Fatalf("replay step log mismatch: %v vs %v", pa.stepLog, ra.stepLog)
	}
}

func TestScriptedDivergenceDetected(t *testing.T) {
	k, _, _ := newPingPair(19, 2)
	sched := &Scripted{Steps: []ScriptStep{
		{Kind: ActDeliver, Link: Link{From: "a", To: "b"}, Seq: 42},
	}}
	Run(k, sched, nil, 100)
	if sched.Err == nil {
		t.Fatal("expected divergence error")
	}
}

func TestDropInTransit(t *testing.T) {
	k, _, _ := newPingPair(23, 1)
	k.StepProcess("a")
	msgs := k.InTransit()
	if len(msgs) != 1 {
		t.Fatalf("in transit = %d", len(msgs))
	}
	if !k.DropInTransit(msgs[0].ID) {
		t.Fatal("drop failed")
	}
	if len(k.InTransit()) != 0 {
		t.Fatal("message still in transit after drop")
	}
	if k.DropInTransit(msgs[0].ID) {
		t.Fatal("double drop succeeded")
	}
}

func TestRNGCloneProducesSameSequence(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		r.Uint64()
		c := r.Clone()
		for i := 0; i < 16; i++ {
			if r.Uint64() != c.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnInRange(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		bound := int(n%31) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformLatencyBounds(t *testing.T) {
	f := func(seed int64, a, b uint16) bool {
		lo, hi := Time(a%1000), Time(b%1000)
		m := UniformLatency(lo, hi)
		if hi < lo {
			lo, hi = hi, lo
		}
		r := NewRNG(seed)
		for i := 0; i < 20; i++ {
			d := m(Link{"x", "y"}, r)
			if d < lo || d > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate Add")
		}
	}()
	k := NewKernel(1, nil)
	k.Add(&pinger{id: "a"})
	k.Add(&pinger{id: "a"})
}

func TestDeliverUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown Deliver")
		}
	}()
	k := NewKernel(1, nil)
	k.Deliver(123)
}

func TestQuiescentInitially(t *testing.T) {
	k := NewKernel(1, nil)
	k.Add(&pinger{id: "b", echo: true})
	if !k.Quiescent() {
		t.Fatal("empty system with idle echo process should be quiescent")
	}
}

func TestTraceSince(t *testing.T) {
	k, _, _ := newPingPair(29, 2)
	mid := k.Trace().Len()
	k.StepProcess("a")
	evs := k.Trace().Since(mid)
	if len(evs) != 1 || evs[0].Kind != EvStep {
		t.Fatalf("Since returned %v", evs)
	}
	if got := k.Trace().Since(-5); len(got) != k.Trace().Len() {
		t.Fatal("Since with negative index should return whole trace")
	}
	if got := k.Trace().Since(10_000); len(got) != 0 {
		t.Fatal("Since beyond end should return empty")
	}
}

package sim

import "fmt"

// This file is the kernel half of the deterministic nemesis layer: fault
// events (server crash/restart, directed link cut/heal) applied to a
// kernel at scheduled virtual instants. Faults are first-class
// configuration changes, not schedule tricks, and they compose with every
// stepping engine because the driver applies them only between engine
// runs — when all pending inboxes and arrivals live in the kernel — so
// the same schedule replays byte-for-byte at any worker count.
//
// Semantics (see DESIGN.md, "Deterministic fault injection"):
//
//   - Crash freezes a process: it takes no steps and receives no
//     deliveries until Restart. Messages addressed to it — in transit or
//     sent while it is down — are held, never dropped. With lose=false
//     (persistence) its state and income buffer survive: the whole
//     outage is indistinguishable from a long network delay, a schedule
//     the asynchronous model already contains. With lose=true the income
//     buffer is discarded at crash time and the process state is rebuilt
//     at restart by the registered recovery hook (the default installed
//     by protocol.Deploy drops all volatile state: a factory-fresh
//     process).
//   - Cut severs one directed link: messages in transit on it and
//     messages sent on it while cut are held. Heal releases them; they
//     become deliverable no earlier than max(ReadyAt, heal instant).
//     Links stay reliable — a partition delays, it never loses.
//   - Replace swaps a fresh process into a dead server's slot (adopting
//     its ID-space and shard) and catches it up via the registered
//     replacement hook; Restore is the coordinated whole-cluster
//     stop-and-rebuild from durable snapshots. Both leave the targets
//     down until companion restarts model the catch-up completing, so a
//     replacement never serves reads before it is caught up.
//
// Held messages keep their transit registration (byID, transit buffer)
// so configuration accounting is exact; only the arrival index skips
// them, which is what makes them undeliverable.

// FaultKind classifies nemesis events.
type FaultKind uint8

// Nemesis event kinds.
const (
	// FaultCrash halts Proc. Lose selects volatile-state loss.
	FaultCrash FaultKind = iota
	// FaultRestart brings Proc back (running the recovery hook if the
	// crash was lossy).
	FaultRestart
	// FaultCut severs every directed link between the From and To groups
	// (both directions).
	FaultCut
	// FaultHeal restores those links.
	FaultHeal
	// FaultReplace swaps a fresh process into Proc's slot: the target is
	// crashed (if still up), rebuilt by its replacement hook — which
	// adopts the dead server's ID-space and catches its state up — and
	// stays down until a companion FaultRestart models the catch-up
	// completing. Lose selects disk loss: the replacement starts
	// factory-fresh and owns only what live peers can transfer; without
	// it the replacement reattaches the durable image (snapshot restore).
	FaultReplace
	// FaultRestore is the coordinated whole-cluster stop-and-rebuild:
	// every process in From is crashed first, then each is rebuilt from
	// its latest durable snapshot (peers are all down, so no live
	// transfer happens). Lose wipes the snapshots too — total data loss.
	FaultRestore
)

func (fk FaultKind) String() string {
	switch fk {
	case FaultCrash:
		return "crash"
	case FaultRestart:
		return "restart"
	case FaultCut:
		return "cut"
	case FaultHeal:
		return "heal"
	case FaultReplace:
		return "replace"
	case FaultRestore:
		return "restore"
	}
	return fmt.Sprintf("fault(%d)", fk)
}

// Fault is one scheduled nemesis event. At is a virtual instant —
// relative to the run start in driver schedules, absolute by the time
// ApplyFault sees it.
type Fault struct {
	At   Time
	Kind FaultKind
	// Proc is the crash/restart/replace target.
	Proc ProcessID
	// Lose selects volatile-state loss for a crash: the income buffer is
	// dropped immediately and the process is rebuilt by its recovery hook
	// at restart. False models persistence: state and inbox survive the
	// outage untouched.
	Lose bool
	// From and To are the partition groups for cut/heal: every directed
	// link between a From process and a To process, in both directions,
	// is affected. For restore, From is the set of processes to stop and
	// rebuild together (To is unused).
	From, To []ProcessID
}

func (f Fault) String() string {
	switch f.Kind {
	case FaultCrash, FaultRestart, FaultReplace:
		return fmt.Sprintf("%s(%s,lose=%v)@%d", f.Kind, f.Proc, f.Lose, f.At)
	case FaultRestore:
		return fmt.Sprintf("%s(%v,lose=%v)@%d", f.Kind, f.From, f.Lose, f.At)
	default:
		return fmt.Sprintf("%s(%v|%v)@%d", f.Kind, f.From, f.To, f.At)
	}
}

// Recoverable is optionally implemented by processes that keep durable
// state across a lossy crash: Recover returns the post-restart process
// (same ID), typically preserving on-disk fields and discarding the
// rest. Processes without it are rebuilt factory-fresh by the recovery
// hook protocol.Deploy installs — the default drop-all-volatile model.
type Recoverable interface {
	Recover() Process
}

type crashInfo struct {
	at   Time
	lose bool
}

// SyncStats accounts the state a replacement process adopted during
// catch-up: Snapshot counts the versions loaded from the durable image it
// reattached (0 on a lossy replace — the disk is gone), Peer the versions
// transferred from live peer replicas. The driver derives the
// deterministic catch-up duration from the total.
type SyncStats struct {
	Snapshot int
	Peer     int
}

// Total returns the number of versions the replacement adopted.
func (s SyncStats) Total() int { return s.Snapshot + s.Peer }

// ReplacementHook builds the process that replaces old under the same ID
// during a FaultReplace/FaultRestore: it adopts the dead process's
// ID-space and shard, catches its state up (from the durable image, from
// live peers, or both), and reports what it synced. The kernel is passed
// explicitly so hooks installed before a Snapshot keep working on the
// copy. protocol.Deploy installs hooks for every server.
type ReplacementHook func(k *Kernel, old Process, lose bool) (Process, SyncStats)

// SetRecovery registers the hook that rebuilds pid after a lossy crash.
// Restart calls it with the pre-crash process and installs the returned
// one under the same ID; without a hook the old state is kept (which
// degrades lose to persist). protocol.Deploy installs hooks for every
// process it creates.
func (k *Kernel) SetRecovery(pid ProcessID, f func(old Process) Process) {
	if k.recovery == nil {
		k.recovery = make(map[ProcessID]func(Process) Process)
	}
	k.recovery[pid] = f
}

// SetReplacement registers the hook that rebuilds pid during a
// FaultReplace or FaultRestore. Without one, Replace degrades to a crash:
// the process stays down until its companion restart, which runs the
// recovery hook if the replace was lossy.
func (k *Kernel) SetReplacement(pid ProcessID, f ReplacementHook) {
	if k.replacement == nil {
		k.replacement = make(map[ProcessID]ReplacementHook)
	}
	k.replacement[pid] = f
}

// Down reports whether pid is currently crashed.
func (k *Kernel) Down(pid ProcessID) bool {
	if len(k.crashed) == 0 {
		return false
	}
	_, down := k.crashed[pid]
	return down
}

// LinkCut reports whether the directed link is currently severed.
func (k *Kernel) LinkCut(l Link) bool { return len(k.cut) > 0 && k.cut[l] }

// blocked reports whether a message on the link can currently make
// progress toward delivery. Hot path: both checks short-circuit on the
// map lengths, so fault-free runs pay two integer compares.
func (k *Kernel) blocked(from, to ProcessID) bool {
	if len(k.crashed) > 0 {
		if _, down := k.crashed[to]; down {
			return true
		}
	}
	return len(k.cut) > 0 && k.cut[Link{From: from, To: to}]
}

// hold strands a live in-transit message: it stays registered in transit
// and byID (configuration accounting is exact) but leaves the arrival
// index, so no scheduler can deliver it until released.
func (k *Kernel) hold(m *Message) {
	m.held = true
	k.heldMsgs = append(k.heldMsgs, m)
}

// holdMatching strands every live in-transit message the predicate
// selects (crash: addressed to the target; cut: on the severed link).
func (k *Kernel) holdMatching(match func(*Message) bool) {
	for _, m := range k.transit {
		if !m.gone && !m.held && match(m) {
			k.hold(m)
		}
	}
}

// releaseHeld re-arms every held message that is no longer blocked,
// pushing it back onto the arrival index. Delivery then happens at
// max(ReadyAt, now): never early, possibly late — a schedule the
// asynchronous model already contains.
func (k *Kernel) releaseHeld() {
	kept := k.heldMsgs[:0]
	for _, m := range k.heldMsgs {
		if m.gone {
			continue // dropped while held
		}
		if k.blocked(m.From, m.To) {
			kept = append(kept, m)
			continue
		}
		m.held = false
		k.pushArrival(m)
	}
	for i := len(kept); i < len(k.heldMsgs); i++ {
		k.heldMsgs[i] = nil
	}
	k.heldMsgs = kept
}

// Crash halts pid at the current instant. Returns false (no-op) if pid
// is unknown or already down. With lose, the income buffer is dropped on
// the spot; state is rebuilt at Restart by the recovery hook. Without,
// state and inbox are frozen intact. Either way every in-transit message
// addressed to pid is held until Restart.
func (k *Kernel) Crash(pid ProcessID, lose bool) bool {
	if _, ok := k.procs[pid]; !ok {
		return false
	}
	if k.Down(pid) {
		return false
	}
	if k.crashed == nil {
		k.crashed = make(map[ProcessID]crashInfo)
	}
	k.crashed[pid] = crashInfo{at: k.now, lose: lose}
	if lose {
		if n := len(k.inbox[pid]); n > 0 {
			k.pendingInboxes--
			k.lostInbox += int64(n)
			k.inbox[pid] = nil
		}
	}
	k.holdMatching(func(m *Message) bool { return m.To == pid })
	k.Annotate(EvMark, pid, fmt.Sprintf("crash lose=%v", lose))
	return true
}

// Restart brings a crashed pid back at the current instant. After a
// lossy crash the recovery hook rebuilds the process (factory-fresh by
// default); after a persistent crash the frozen state simply resumes.
// Held messages addressed to pid become deliverable again (unless their
// link is also cut).
func (k *Kernel) Restart(pid ProcessID) bool {
	info, down := k.crashed[pid]
	if !down {
		return false
	}
	delete(k.crashed, pid)
	if info.lose {
		if rec := k.recovery[pid]; rec != nil {
			k.procs[pid] = rec(k.procs[pid])
		}
	}
	k.releaseHeld()
	k.Annotate(EvMark, pid, "restart")
	return true
}

// Replace swaps a fresh process into pid's slot at the current instant:
// the target is crashed first (if still up), then rebuilt by its
// replacement hook, which adopts the dead process's ID-space and catches
// its state up. The process REMAINS DOWN afterwards — it only starts
// serving once a companion Restart fires, which is how the caller models
// the catch-up taking time. With lose, the replacement's disk is gone:
// any delivered-but-unconsumed income buffer is discarded (accounted like
// a lossy crash) and the hook starts factory-fresh, owning only what live
// peers transfer. Without, the durable image (state and inbox) reattaches
// intact. Returns false only for unknown processes.
func (k *Kernel) Replace(pid ProcessID, lose bool) (SyncStats, bool) {
	if _, ok := k.procs[pid]; !ok {
		return SyncStats{}, false
	}
	if !k.Down(pid) {
		k.Crash(pid, lose)
	} else if lose {
		// Already down from an earlier (persistent) crash: the fresh
		// disk never saw the delivered-but-unconsumed buffer either.
		if n := len(k.inbox[pid]); n > 0 {
			k.pendingInboxes--
			k.lostInbox += int64(n)
			k.inbox[pid] = nil
		}
	}
	hook := k.replacement[pid]
	if hook == nil {
		// No catch-up protocol registered: degrade to a plain crash. The
		// recovery hook (if lossy) rebuilds at the companion restart.
		ci := k.crashed[pid]
		ci.lose = lose
		k.crashed[pid] = ci
		k.Annotate(EvMark, pid, fmt.Sprintf("replace lose=%v (no hook)", lose))
		return SyncStats{}, true
	}
	p, st := hook(k, k.procs[pid], lose)
	if p != nil {
		k.procs[pid] = p
	}
	// The replacement is already caught up; the companion restart must
	// resume it as-is, not run the lossy-recovery hook over it.
	ci := k.crashed[pid]
	ci.lose = false
	k.crashed[pid] = ci
	k.Annotate(EvMark, pid, fmt.Sprintf("replace lose=%v synced=%d+%d", lose, st.Snapshot, st.Peer))
	return st, true
}

// Restore performs the coordinated whole-cluster stop-and-rebuild over
// procs: every process is crashed first (a coordinated stop — no peer is
// live during the rebuild, so replacement hooks transfer nothing from
// peers), then each is rebuilt from its latest durable snapshot via
// Replace. All of them remain down until companion Restarts fire. With
// lose the snapshots are gone too: every process comes back factory-fresh
// — total data loss, which certification must catch. Returns the summed
// sync stats and how many processes were restored.
func (k *Kernel) Restore(procs []ProcessID, lose bool) (SyncStats, int) {
	var total SyncStats
	done := 0
	for _, pid := range procs {
		if _, ok := k.procs[pid]; !ok {
			continue
		}
		if !k.Down(pid) {
			k.Crash(pid, lose)
		}
	}
	for _, pid := range procs {
		st, ok := k.Replace(pid, lose)
		if !ok {
			continue
		}
		total.Snapshot += st.Snapshot
		total.Peer += st.Peer
		done++
	}
	if done > 0 {
		k.Annotate(EvMark, "", fmt.Sprintf("restore %d procs lose=%v synced=%d+%d", done, lose, total.Snapshot, total.Peer))
	}
	return total, done
}

// CutLink severs one directed link. In-transit messages on it are held;
// so is everything sent on it until HealLink. Returns false if already
// cut.
func (k *Kernel) CutLink(l Link) bool {
	if k.LinkCut(l) {
		return false
	}
	if k.cut == nil {
		k.cut = make(map[Link]bool)
	}
	k.cut[l] = true
	k.holdMatching(func(m *Message) bool { return m.From == l.From && m.To == l.To })
	return true
}

// HealLink restores a severed link and releases its held messages
// (unless their destination is still down). Returns false if not cut.
func (k *Kernel) HealLink(l Link) bool {
	if !k.LinkCut(l) {
		return false
	}
	delete(k.cut, l)
	k.releaseHeld()
	return true
}

// ApplyFault executes one nemesis event against the kernel at the
// current instant (the caller advances the clock to f.At first). It
// reports whether anything changed — re-crashing a downed process or
// re-cutting a severed link is a deliberate no-op, which makes arbitrary
// (fuzzed) schedules safe to apply.
func (k *Kernel) ApplyFault(f Fault) bool {
	switch f.Kind {
	case FaultCrash:
		return k.Crash(f.Proc, f.Lose)
	case FaultRestart:
		return k.Restart(f.Proc)
	case FaultCut:
		applied := false
		for _, a := range f.From {
			for _, b := range f.To {
				if a == b {
					continue
				}
				if k.CutLink(Link{From: a, To: b}) {
					applied = true
				}
				if k.CutLink(Link{From: b, To: a}) {
					applied = true
				}
			}
		}
		if applied {
			k.Annotate(EvMark, "", fmt.Sprintf("cut %v|%v", f.From, f.To))
		}
		return applied
	case FaultHeal:
		applied := false
		for _, a := range f.From {
			for _, b := range f.To {
				if a == b {
					continue
				}
				if k.HealLink(Link{From: a, To: b}) {
					applied = true
				}
				if k.HealLink(Link{From: b, To: a}) {
					applied = true
				}
			}
		}
		if applied {
			k.Annotate(EvMark, "", fmt.Sprintf("heal %v|%v", f.From, f.To))
		}
		return applied
	case FaultReplace:
		_, ok := k.Replace(f.Proc, f.Lose)
		return ok
	case FaultRestore:
		_, done := k.Restore(f.From, f.Lose)
		return done > 0
	}
	return false
}

// HeldMessages returns how many messages are currently held (strand by a
// crash or cut), and LostInboxMessages how many delivered-but-unconsumed
// messages lossy crashes have discarded so far.
func (k *Kernel) HeldMessages() int {
	n := 0
	for _, m := range k.heldMsgs {
		if !m.gone {
			n++
		}
	}
	return n
}

// LostInboxMessages returns the number of income-buffer messages dropped
// by lossy crashes so far.
func (k *Kernel) LostInboxMessages() int64 { return k.lostInbox }

// CheckConservation verifies the kernel's message accounting: every
// message ever sent is either still live in transit (held included),
// was delivered exactly once, or was explicitly dropped from transit.
// Lossy crashes discard only already-delivered messages, so they never
// unbalance the equation. Fault-injection tests assert this after
// arbitrary schedules.
func (k *Kernel) CheckConservation() error {
	live := int64(len(k.byID))
	if k.nextID != k.deliveredMsgs+live+k.lostTransit {
		return fmt.Errorf("sim: message conservation broken: sent %d != delivered %d + live %d + dropped %d",
			k.nextID, k.deliveredMsgs, live, k.lostTransit)
	}
	held := 0
	for _, m := range k.transit {
		if !m.gone && m.held {
			held++
			if _, ok := k.byID[m.ID]; !ok {
				return fmt.Errorf("sim: held message %s not registered live", m)
			}
			if !k.blocked(m.From, m.To) {
				return fmt.Errorf("sim: message %s held but neither destination down nor link cut", m)
			}
		}
	}
	if hm := k.HeldMessages(); hm != held {
		return fmt.Errorf("sim: held stash tracks %d messages, transit has %d held", hm, held)
	}
	return nil
}

package sim

// ActionKind classifies scheduler decisions.
type ActionKind uint8

// Scheduler action kinds.
const (
	ActDeliver ActionKind = iota
	ActStep
)

// Action is a single scheduling decision: deliver a specific message or
// step a specific process.
type Action struct {
	Kind ActionKind
	Msg  int64     // for ActDeliver
	Proc ProcessID // for ActStep
}

// Scheduler decides the next event of an execution; it is the adversary of
// the paper's model. Next returns false to stop the run.
type Scheduler interface {
	Next(k *Kernel) (Action, bool)
}

// Apply executes one action against the kernel.
func Apply(k *Kernel, a Action) {
	switch a.Kind {
	case ActDeliver:
		k.Deliver(a.Msg)
	case ActStep:
		k.StepProcess(a.Proc)
	}
}

// Run drives the kernel with sched until the scheduler stops, the optional
// stop predicate returns true, or maxEvents events have executed. It
// returns the number of events executed.
func Run(k *Kernel, sched Scheduler, stop func(*Kernel) bool, maxEvents int) int {
	n := 0
	for n < maxEvents {
		if stop != nil && stop(k) {
			return n
		}
		a, ok := sched.Next(k)
		if !ok {
			return n
		}
		Apply(k, a)
		n++
	}
	return n
}

// Restriction limits which processes may act. A nil Restriction allows
// everything. It implements the paper's "executes solo" runs: only the
// writing client and the servers take steps, and only messages between
// allowed processes are delivered.
type Restriction struct {
	allowed map[ProcessID]bool
	// deliverFrom lists extra processes whose already-sent messages may
	// still be delivered even though the processes themselves are frozen
	// (delivering an old message is a delivery event, not a step of the
	// sender — Definition 2 executions may include such deliveries).
	deliverFrom map[ProcessID]bool
}

// Restrict builds a Restriction allowing only the listed processes.
func Restrict(ids ...ProcessID) *Restriction {
	r := &Restriction{allowed: make(map[ProcessID]bool, len(ids))}
	for _, id := range ids {
		r.allowed[id] = true
	}
	return r
}

// AllowDeliveriesFrom additionally permits delivering in-transit messages
// sent by the listed (otherwise frozen) processes. Returns r for chaining.
func (r *Restriction) AllowDeliveriesFrom(ids ...ProcessID) *Restriction {
	if r.deliverFrom == nil {
		r.deliverFrom = make(map[ProcessID]bool, len(ids))
	}
	for _, id := range ids {
		r.deliverFrom[id] = true
	}
	return r
}

// AllowsProc reports whether the process may take steps.
func (r *Restriction) AllowsProc(id ProcessID) bool {
	return r == nil || r.allowed[id]
}

// AllowsMsg reports whether the message may be delivered. The destination
// must be an allowed process; the source must be allowed or listed via
// AllowDeliveriesFrom.
func (r *Restriction) AllowsMsg(m *Message) bool {
	return r == nil || ((r.allowed[m.From] || r.deliverFrom[m.From]) && r.allowed[m.To])
}

// enabled lists the currently enabled actions under a restriction, in a
// deterministic order: deliveries in send order first, then steps of
// processes with pending inboxes, then steps of Ready processes. It reads
// kernel state directly (no per-event copies or re-sorting; k.order is
// maintained sorted).
func enabled(k *Kernel, r *Restriction) []Action {
	var acts []Action
	for _, m := range k.transit {
		if !m.gone && !m.held && r.AllowsMsg(m) {
			acts = append(acts, Action{Kind: ActDeliver, Msg: m.ID})
		}
	}
	for _, id := range k.order {
		if !r.AllowsProc(id) || k.Down(id) {
			continue
		}
		if len(k.inbox[id]) > 0 {
			acts = append(acts, Action{Kind: ActStep, Proc: id})
		}
	}
	for _, id := range k.order {
		if !r.AllowsProc(id) || k.Down(id) {
			continue
		}
		if len(k.inbox[id]) == 0 && k.procs[id].Ready() {
			acts = append(acts, Action{Kind: ActStep, Proc: id})
		}
	}
	return acts
}

// firstPendingInbox returns the first process (in sorted ID order) allowed
// by r whose income buffer is non-empty. The kernel's pending-inbox
// counter short-circuits the scan when nothing is pending.
func firstPendingInbox(k *Kernel, r *Restriction) (ProcessID, bool) {
	if k.pendingInboxes == 0 {
		return "", false
	}
	for _, id := range k.order {
		if r.AllowsProc(id) && !k.Down(id) && len(k.inbox[id]) > 0 {
			return id, true
		}
	}
	return "", false
}

// RoundRobin is a fair deterministic scheduler: it prefers stepping
// processes that have pending input, then delivers the oldest in-transit
// message, then steps Ready processes. Within a restriction it drains the
// system to quiescence.
type RoundRobin struct {
	Only *Restriction
}

// Next implements Scheduler.
func (s *RoundRobin) Next(k *Kernel) (Action, bool) {
	if id, ok := firstPendingInbox(k, s.Only); ok {
		return Action{Kind: ActStep, Proc: id}, true
	}
	for _, m := range k.transit {
		if !m.gone && !m.held && s.Only.AllowsMsg(m) {
			return Action{Kind: ActDeliver, Msg: m.ID}, true
		}
	}
	for _, id := range k.order {
		if s.Only.AllowsProc(id) && !k.Down(id) && k.procs[id].Ready() {
			return Action{Kind: ActStep, Proc: id}, true
		}
	}
	return Action{}, false
}

// Random chooses uniformly among enabled actions using its own seeded RNG,
// modelling an arbitrary (but reproducible) asynchronous adversary.
type Random struct {
	Rng  *RNG
	Only *Restriction
}

// NewRandom returns a Random scheduler with the given seed.
func NewRandom(seed int64) *Random { return &Random{Rng: NewRNG(seed)} }

// Next implements Scheduler.
func (s *Random) Next(k *Kernel) (Action, bool) {
	acts := enabled(k, s.Only)
	if len(acts) == 0 {
		return Action{}, false
	}
	return acts[s.Rng.Intn(len(acts))], true
}

// Waker is optionally implemented by processes whose Ready() may be
// waiting only for virtual time to pass (reads parked behind a safe-time
// rule, commit-wait). WakeAt returns the earliest virtual instant at
// which an empty-inbox step would make progress; ok == false means no
// purely time-driven work is pending — progress needs a message delivery
// first, so stepping the process before one arrives is a no-op. The
// Network scheduler uses it to leap the clock to the wake instant instead
// of spinning 1µs Ready steps through the idle stretch.
type Waker interface {
	WakeAt(now Time) (wake Time, ok bool)
}

// Network delivers messages in earliest-ReadyAt order and steps any process
// with pending input immediately, modelling a well-behaved network for the
// latency and throughput experiments (no adversarial reordering beyond
// sampled latency). Unrestricted, it finds the next arrival through the
// kernel's indexed min-arrival heap instead of rescanning every in-transit
// message, which keeps per-event cost logarithmic under concurrent load.
//
// When nobody can act at the current instant, the scheduler leaps virtual
// time to the earliest useful one: the next message arrival or the
// earliest wake time a parked process declares via Waker. NoTimeLeap
// restores the pre-leap behaviour (spin parked Ready processes 1µs per
// step), kept for measuring what the leap saves.
type Network struct {
	Only *Restriction
	// NoTimeLeap disables the time-leap (comparison/debugging only).
	NoTimeLeap bool
	// Horizon, when > 0, stops the scheduler at that virtual instant:
	// actions run only while now is strictly before the horizon, and an
	// idle-time advance (future delivery or wake leap) that would land at
	// or past it returns false instead, handing control back to the
	// driver (which injects open-loop arrivals at the horizon instant).
	// The gate applies identically with and without the time-leap, so
	// spin and leap runs inject arrivals at the same instants.
	Horizon Time
}

// nextArrival returns the earliest-(ReadyAt, ID) in-transit message under
// the restriction: heap peek when unrestricted, scan otherwise (restricted
// runs are small proof-machinery executions).
func nextArrival(k *Kernel, r *Restriction) *Message {
	if r == nil {
		return k.EarliestArrival()
	}
	var best *Message
	for _, m := range k.transit {
		if m.gone || m.held || !r.AllowsMsg(m) {
			continue
		}
		if best == nil || m.ReadyAt < best.ReadyAt || (m.ReadyAt == best.ReadyAt && m.ID < best.ID) {
			best = m
		}
	}
	return best
}

// Next implements Scheduler. The policy is a discrete-event simulation
// step: react to pending input, deliver messages already due (ReadyAt ≤
// now), let Ready processes act at the current instant (a freshly invoked
// client sends its first round *now*, it does not wait for unrelated
// traffic to drain — essential for concurrent closed-loop load), and only
// when nobody can act now, advance the clock to the earliest useful
// instant — the next arrival or the earliest declared wake time.
func (s *Network) Next(k *Kernel) (Action, bool) {
	if s.Horizon > 0 && k.now >= s.Horizon {
		return Action{}, false
	}
	if id, ok := firstPendingInbox(k, s.Only); ok {
		return Action{Kind: ActStep, Proc: id}, true
	}
	m := nextArrival(k, s.Only)
	if m != nil && m.ReadyAt <= k.now {
		return Action{Kind: ActDeliver, Msg: m.ID}, true
	}
	// Ready processes act at the current instant — except, with the leap
	// enabled, those that declare (via Waker) that a step would only be
	// useful at a future instant, or not until a delivery arrives.
	var wake Time
	var wakeProc ProcessID
	haveWake := false
	for _, id := range k.order {
		if !s.Only.AllowsProc(id) || k.Down(id) || !k.procs[id].Ready() {
			continue
		}
		if !s.NoTimeLeap {
			if w, isWaker := k.procs[id].(Waker); isWaker {
				t, useful := w.WakeAt(k.now)
				if !useful {
					continue // waiting on a delivery, not on time
				}
				if t > k.now {
					if !haveWake || t < wake {
						wake, wakeProc, haveWake = t, id, true
					}
					continue
				}
			}
		}
		return Action{Kind: ActStep, Proc: id}, true
	}
	// Nobody can act now: leap. Arrivals win ties so the woken process
	// sees every message due by its wake instant.
	if m != nil && (!haveWake || m.ReadyAt <= wake) {
		if s.Horizon > 0 && m.ReadyAt >= s.Horizon {
			return Action{}, false
		}
		return Action{Kind: ActDeliver, Msg: m.ID}, true
	}
	if haveWake {
		if s.Horizon > 0 && wake >= s.Horizon {
			return Action{}, false
		}
		// The step itself costs StepCost, so the process runs at exactly
		// its wake instant.
		k.AdvanceTo(wake - StepCost)
		return Action{Kind: ActStep, Proc: wakeProc}, true
	}
	return Action{}, false
}

// Scripted replays a fixed sequence of actions, used by the adversary's
// replay engine. Actions reference messages by (link, seq) so the script
// survives filtered re-executions.
type Scripted struct {
	Steps []ScriptStep
	pos   int
	// Err records the first divergence (a referenced message that does
	// not exist); the run stops there.
	Err error
}

// ScriptStep is one scripted event.
type ScriptStep struct {
	Kind ActionKind
	Proc ProcessID // for ActStep
	Link Link      // for ActDeliver
	Seq  int64     // for ActDeliver
}

// Next implements Scheduler.
func (s *Scripted) Next(k *Kernel) (Action, bool) {
	if s.Err != nil || s.pos >= len(s.Steps) {
		return Action{}, false
	}
	st := s.Steps[s.pos]
	s.pos++
	if st.Kind == ActStep {
		return Action{Kind: ActStep, Proc: st.Proc}, true
	}
	m := k.FindInTransit(st.Link, st.Seq)
	if m == nil {
		s.Err = &DivergenceError{Link: st.Link, Seq: st.Seq, Pos: s.pos - 1}
		return Action{}, false
	}
	return Action{Kind: ActDeliver, Msg: m.ID}, true
}

// DivergenceError reports that a scripted replay referenced a message that
// was never sent — the replayed execution diverged from the recording,
// meaning the process behaviour was not indistinguishable.
type DivergenceError struct {
	Link Link
	Seq  int64
	Pos  int
}

func (e *DivergenceError) Error() string {
	return "sim: replay diverged at step " + string(rune('0'+e.Pos%10)) + ": missing " + e.Link.String()
}

// DrainRestricted runs round-robin under the restriction until quiescence
// of the allowed sub-system or maxEvents. It returns the events executed.
func DrainRestricted(k *Kernel, r *Restriction, maxEvents int) int {
	return Run(k, &RoundRobin{Only: r}, nil, maxEvents)
}

// Drain runs the whole system round-robin to quiescence (or maxEvents).
func Drain(k *Kernel, maxEvents int) int {
	return DrainRestricted(k, nil, maxEvents)
}

package sim

import (
	"reflect"
	"testing"
)

// shardedPingSetup builds two ping pairs (a↔b, c↔d) in load mode with a
// constant-latency model and a declared floor, partitioned pair-per-shard,
// under either engine.
func shardedPingSetup(t *testing.T, count int, workers int, lookahead bool) (*Kernel, *ShardedRunner, *pinger, *pinger) {
	t.Helper()
	k := NewKernel(1, ConstantLatency(50))
	k.SetLatencyFloor(50)
	k.SetTraceCap(-1)
	a := &pinger{id: "a", peer: "b", count: count}
	b := &pinger{id: "b", peer: "a", echo: true}
	c := &pinger{id: "c", peer: "d", count: count}
	d := &pinger{id: "d", peer: "c", echo: true}
	for _, p := range []*pinger{a, b, c, d} {
		k.Add(p)
	}
	shardOf := func(pid ProcessID) int {
		if pid == "a" || pid == "b" {
			return 0
		}
		return 1
	}
	mk := NewShardedRunner
	if lookahead {
		mk = NewLookaheadRunner
	}
	r, err := mk(k, shardOf, 2, workers)
	if err != nil {
		t.Fatal(err)
	}
	return k, r, a, c
}

// engines names both sharded engines for table-driven subtests.
var engines = []struct {
	name      string
	lookahead bool
}{
	{"barrier", false},
	{"lookahead", true},
}

// TestShardedRunnerDrains: the runner drives both shards to quiescence,
// every ping is answered, deliveries are never early, and the kernel is
// quiescent afterwards — under both engines.
func TestShardedRunnerDrains(t *testing.T) {
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			k, r, a, c := shardedPingSetup(t, 5, 2, eng.lookahead)
			n := r.Run(nil, 100_000)
			if n == 0 {
				t.Fatal("no events executed")
			}
			if a.pongs != 5 || c.pongs != 5 {
				t.Fatalf("pongs = %d, %d, want 5, 5", a.pongs, c.pongs)
			}
			if !k.Quiescent() {
				t.Fatal("kernel not quiescent after drain")
			}
			st := r.Stats()
			if st.Events != n || st.Rounds == 0 || st.CriticalEvents > st.Events {
				t.Fatalf("inconsistent stats: %+v (n=%d)", st, n)
			}
			if st.Lookahead != eng.lookahead {
				t.Fatalf("stats claim Lookahead=%v under the %s engine", st.Lookahead, eng.name)
			}
			perShard := 0
			for _, ps := range st.PerShard {
				perShard += ps.Events
			}
			if perShard != st.Events {
				t.Fatalf("per-shard events sum to %d, want %d", perShard, st.Events)
			}
			if len(st.Partition) != 4 || st.Partition["a"] != 0 || st.Partition["c"] != 1 {
				t.Fatalf("partition not reported: %v", st.Partition)
			}
		})
	}
}

// TestShardedRunnerWorkerIndependence: every observable — event count,
// final clock, process state, stats (minus the Workers echo), message IDs
// — matches across worker counts under both engines, the
// serial-equals-parallel invariant at the sim layer.
func TestShardedRunnerWorkerIndependence(t *testing.T) {
	type outcome struct {
		n      int
		now    Time
		pongsA int
		pongsC int
		nextID int64
		stats  ShardingStats
	}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			run := func(workers int) outcome {
				k, r, a, c := shardedPingSetup(t, 7, workers, eng.lookahead)
				n := r.Run(nil, 100_000)
				st := r.Stats()
				st.Workers = 0
				return outcome{n: n, now: k.Now(), pongsA: a.pongs, pongsC: c.pongs, nextID: k.nextID, stats: st}
			}
			want := run(1)
			for _, w := range []int{2, 4, 8} {
				if got := run(w); !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d diverged: %+v vs %+v", w, got, want)
				}
			}
		})
	}
}

// crossShardPing builds a pinger in shard 0 bursting count pings at an
// echo in shard 1, with latency sampled from [lo, hi] and the global
// floor declared at floor — arrivals spread over far more than one floor
// window, the shape where per-link bounds beat barrier windows.
func crossShardPing(t *testing.T, count int, lo, hi, floor Time, lookahead bool) (*Kernel, *ShardedRunner, *pinger) {
	t.Helper()
	k := NewKernel(11, UniformLatency(lo, hi))
	k.SetLatencyFloor(floor)
	k.SetTraceCap(-1)
	a := &pinger{id: "a", peer: "b", count: count}
	b := &pinger{id: "b", peer: "a", echo: true}
	k.Add(a)
	k.Add(b)
	shardOf := func(pid ProcessID) int {
		if pid == "a" {
			return 0
		}
		return 1
	}
	mk := NewShardedRunner
	if lookahead {
		mk = NewLookaheadRunner
	}
	r, err := mk(k, shardOf, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return k, r, a
}

// TestLookaheadBeatsBarrierRounds: with arrivals spread over five floor
// widths, the barrier engine needs a window per floor width while the
// lookahead engine's bounds — fed by the idle peer shard's far-future
// promise — cover several at once: same events, strictly fewer rounds,
// and NullAdvances > 0 (bounds provably past the barrier edge).
func TestLookaheadBeatsBarrierRounds(t *testing.T) {
	_, rb, ab := crossShardPing(t, 9, 50, 300, 50, false)
	rb.Run(nil, 100_000)
	_, rl, al := crossShardPing(t, 9, 50, 300, 50, true)
	rl.Run(nil, 100_000)
	if ab.pongs != 9 || al.pongs != 9 {
		t.Fatalf("pongs = %d (barrier), %d (lookahead), want 9", ab.pongs, al.pongs)
	}
	b, l := rb.Stats(), rl.Stats()
	if l.Events != b.Events {
		t.Fatalf("engines executed different event counts: lookahead %d vs barrier %d", l.Events, b.Events)
	}
	if l.Rounds >= b.Rounds {
		t.Fatalf("lookahead used %d rounds, barrier %d — no win", l.Rounds, b.Rounds)
	}
	if l.NullAdvances == 0 {
		t.Fatal("lookahead never advanced a shard past the barrier edge")
	}
	if b.NullAdvances != 0 || b.BlockedShardRounds != 0 {
		t.Fatalf("barrier engine reported lookahead counters: %+v", b)
	}
}

// TestLookaheadPerLinkFloors: declaring the true 300µs link floor on the
// cross-shard links (the global declaration understates it at 50µs)
// widens the advancement bounds sixfold and must drain the same run in
// fewer rounds.
func TestLookaheadPerLinkFloors(t *testing.T) {
	_, narrow, _ := crossShardPing(t, 9, 300, 600, 50, true)
	narrow.Run(nil, 100_000)
	k2 := NewKernel(11, UniformLatency(300, 600))
	k2.SetLatencyFloor(50)
	k2.SetTraceCap(-1)
	a := &pinger{id: "a", peer: "b", count: 9}
	k2.Add(a)
	k2.Add(&pinger{id: "b", peer: "a", echo: true})
	k2.SetLinkLatencyFloor(Link{From: "a", To: "b"}, 300)
	k2.SetLinkLatencyFloor(Link{From: "b", To: "a"}, 300)
	wide, err := NewLookaheadRunner(k2, func(pid ProcessID) int {
		if pid == "a" {
			return 0
		}
		return 1
	}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	wide.Run(nil, 100_000)
	n, w := narrow.Stats(), wide.Stats()
	if a.pongs != 9 {
		t.Fatalf("pongs = %d, want 9", a.pongs)
	}
	if w.Events != n.Events {
		t.Fatalf("event counts diverged: %d vs %d", w.Events, n.Events)
	}
	if w.Rounds >= n.Rounds {
		t.Fatalf("per-link floors did not reduce rounds: %d (declared) vs %d (global only)", w.Rounds, n.Rounds)
	}
}

// TestShardedRunnerHorizon: no round starts at or past the horizon;
// work due later stays unexecuted until the horizon is lifted — the
// contract the open-loop driver injects arrivals by. (The bound has
// window granularity: a chain straddling the horizon may push the clock
// a few steps past it — see SetHorizon — but nothing here is due before
// it, so the clock must stay strictly below.)
func TestShardedRunnerHorizon(t *testing.T) {
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			k, r, a, _ := shardedPingSetup(t, 3, 2, eng.lookahead)
			r.SetHorizon(30) // before the first 50µs delivery can land
			n := r.Run(nil, 100_000)
			if k.Now() >= 30 {
				t.Fatalf("clock %d reached the horizon", k.Now())
			}
			if a.pongs != 0 {
				t.Fatalf("pongs %d arrived before the horizon allowed", a.pongs)
			}
			r.SetHorizon(0)
			n += r.Run(nil, 100_000)
			if a.pongs != 3 {
				t.Fatalf("pongs = %d after lifting the horizon, want 3", a.pongs)
			}
			if n == 0 || !k.Quiescent() {
				t.Fatalf("n=%d quiescent=%v", n, k.Quiescent())
			}
		})
	}
}

// TestShardedRunnerBudgetLeftovers: an event budget that lands inside a
// round leaves the kernel coherent — undelivered messages back in
// transit, unconsumed income buffers visible — and a later Run resumes
// without losing anything. Under both engines.
func TestShardedRunnerBudgetLeftovers(t *testing.T) {
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			k, r, a, c := shardedPingSetup(t, 6, 2, eng.lookahead)
			total := 0
			for i := 0; i < 1000 && !k.Quiescent(); i++ {
				total += r.Run(nil, 3) // tiny budgets force mid-round cuts
			}
			if a.pongs != 6 || c.pongs != 6 {
				t.Fatalf("pongs = %d, %d after resumed runs, want 6, 6", a.pongs, c.pongs)
			}
			// The chopped-up run must execute the same events as an
			// uninterrupted one (round boundaries differ, but nothing may be
			// lost): compare against a fresh uninterrupted drain.
			k2, r2, a2, c2 := shardedPingSetup(t, 6, 2, eng.lookahead)
			n2 := r2.Run(nil, 100_000)
			if a2.pongs != 6 || c2.pongs != 6 {
				t.Fatalf("control run pongs = %d, %d", a2.pongs, c2.pongs)
			}
			if total != n2 {
				t.Logf("note: chopped run executed %d events vs %d uninterrupted (both drained)", total, n2)
			}
			if !k2.Quiescent() || !k.Quiescent() {
				t.Fatal("kernels not quiescent")
			}
		})
	}
}

// TestLookaheadRunHandsArrivalsBack: between Runs the kernel's own
// arrival index must be whole again — a serial scheduler taking over
// right after a budget-exhausted lookahead Run sees every in-transit
// message.
func TestLookaheadRunHandsArrivalsBack(t *testing.T) {
	k, r, a, c := shardedPingSetup(t, 4, 2, true)
	r.Run(nil, 3) // stops with messages parked mid-flight
	if len(k.InTransit()) > 0 && k.EarliestArrival() == nil {
		t.Fatal("in-transit messages invisible to the kernel arrival index between Runs")
	}
	// The serial scheduler can finish the run from here.
	Run(k, &Network{}, nil, 100_000)
	if a.pongs != 4 || c.pongs != 4 {
		t.Fatalf("pongs = %d, %d after serial handover, want 4, 4", a.pongs, c.pongs)
	}
	if !k.Quiescent() {
		t.Fatal("kernel not quiescent")
	}
}

// TestShardedRunnerRefusesTracing: full traces only exist for the serial
// schedulers; the runner must refuse a kernel still recording events.
func TestShardedRunnerRefusesTracing(t *testing.T) {
	k := NewKernel(1, nil)
	k.Add(&pinger{id: "a", peer: "a", count: 0})
	if _, err := NewShardedRunner(k, func(ProcessID) int { return 0 }, 1, 2); err == nil {
		t.Fatal("runner accepted a tracing kernel")
	}
	if _, err := NewLookaheadRunner(k, func(ProcessID) int { return 0 }, 1, 2); err == nil {
		t.Fatal("lookahead runner accepted a tracing kernel")
	}
	k.SetTraceCap(-1)
	if _, err := NewShardedRunner(k, func(ProcessID) int { return 1 }, 1, 2); err == nil {
		t.Fatal("runner accepted an out-of-range shard assignment")
	}
	if _, err := NewShardedRunner(k, func(ProcessID) int { return 0 }, 1, 2); err != nil {
		t.Fatalf("valid runner refused: %v", err)
	}
}

// timingCheck wraps a pinger and verifies, from inside Step, that every
// consumed message respects the model: delivery never before ReadyAt,
// step time never before delivery.
type timingCheck struct {
	pinger
	bad int // per-process, so parallel shards never share the counter
}

func (p *timingCheck) Step(now Time, inbox []*Message) []Outbound {
	for _, m := range inbox {
		if m.DeliveredAt < m.ReadyAt || now < m.DeliveredAt || m.ReadyAt < m.SentAt {
			p.bad++
		}
	}
	return p.pinger.Step(now, inbox)
}

func (p *timingCheck) Clone() Process { c := *p; return &c }

// TestShardedDeliveriesNeverEarly: DeliveredAt ≥ ReadyAt for every
// message a sharded run delivers — late deliveries are the adversary's
// right, early ones would break the model. Checked from inside every
// process step across three shards, under both engines.
func TestShardedDeliveriesNeverEarly(t *testing.T) {
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			k := NewKernel(3, UniformLatency(20, 120))
			k.SetLatencyFloor(20)
			k.SetTraceCap(-1)
			var all []*timingCheck
			for i := 0; i < 6; i += 2 {
				a := &timingCheck{pinger: pinger{id: ProcessID(rune('a' + i)), peer: ProcessID(rune('a' + i + 1)), count: 4}}
				b := &timingCheck{pinger: pinger{id: ProcessID(rune('a' + i + 1)), peer: ProcessID(rune('a' + i)), echo: true}}
				k.Add(a)
				k.Add(b)
				all = append(all, a, b)
			}
			shardOf := func(pid ProcessID) int { return (int(pid[0]) - 'a') / 2 }
			mk := NewShardedRunner
			if eng.lookahead {
				mk = NewLookaheadRunner
			}
			r, err := mk(k, shardOf, 3, 3)
			if err != nil {
				t.Fatal(err)
			}
			r.Run(nil, 100_000)
			if !k.Quiescent() {
				t.Fatal("not quiescent")
			}
			for _, p := range all {
				if p.bad != 0 {
					t.Fatalf("%s: %d messages violated delivery timing", p.id, p.bad)
				}
				if !p.echo && p.pongs != 4 {
					t.Fatalf("%s pongs = %d, want 4", p.id, p.pongs)
				}
			}
		})
	}
}

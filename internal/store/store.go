// Package store provides the per-server multi-version object store the
// protocol models build on. Each object holds an append-ordered version
// chain; versions carry the metadata the various systems need (logical
// timestamps, dependency lists, sibling writes, reader-exclusion sets) and
// an explicit visibility gate, which is how protocols such as COPS-SNOW or
// Eiger keep a written-but-not-yet-stable version from being served.
package store

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/vclock"
)

// Version is one installed version of an object.
type Version struct {
	Object string
	Value  model.Value
	Writer model.TxnID
	// Seq is the per-object install sequence number (1-based), assigned
	// by Install.
	Seq int64
	// Stamp is the protocol's logical timestamp for the version (HLC or
	// Lamport packed into an HLCStamp; zero when unused).
	Stamp vclock.HLCStamp
	// Vec is a vector timestamp (Cure-style; nil when unused).
	Vec vclock.Vector
	// Visible gates whether reads may return this version.
	Visible bool
	// HiddenFrom lists reader transactions that must not see this
	// version even when visible (COPS-SNOW old-reader exclusion).
	HiddenFrom map[model.TxnID]bool
	// Deps lists writer transactions this version causally depends on
	// (COPS/Eiger-style dependency metadata).
	Deps []model.TxnID
	// Siblings carries the other writes of the same transaction
	// (RAMP/fat-metadata designs), keyed by object.
	Siblings map[string]model.Value
	// DepValues carries the values of causal dependencies (the §3.4
	// N+O+W "fat COPS" design), keyed by object.
	DepValues map[string]model.Value
}

// Clone returns a deep copy of the version.
func (v *Version) Clone() *Version {
	c := *v
	if v.Vec != nil {
		c.Vec = v.Vec.Clone()
	}
	if v.HiddenFrom != nil {
		c.HiddenFrom = make(map[model.TxnID]bool, len(v.HiddenFrom))
		for k, b := range v.HiddenFrom {
			c.HiddenFrom[k] = b
		}
	}
	c.Deps = append([]model.TxnID(nil), v.Deps...)
	if v.Siblings != nil {
		c.Siblings = make(map[string]model.Value, len(v.Siblings))
		for k, val := range v.Siblings {
			c.Siblings[k] = val
		}
	}
	if v.DepValues != nil {
		c.DepValues = make(map[string]model.Value, len(v.DepValues))
		for k, val := range v.DepValues {
			c.DepValues[k] = val
		}
	}
	return &c
}

func (v *Version) String() string {
	vis := "hidden"
	if v.Visible {
		vis = "visible"
	}
	return fmt.Sprintf("%s=%s@%d(%s,%s)", v.Object, v.Value, v.Seq, v.Writer, vis)
}

// Store is a multi-version store for the objects one server hosts.
type Store struct {
	objects map[string][]*Version
	// vecOrdered marks chains built exclusively through InstallOrdered
	// (and re-sorted by Restamp): such chains are sorted by the uniform
	// vector order, which lets SnapshotReadVec stop at the first visible
	// covered version from the tail instead of rescanning the whole
	// chain on every read. A plain Install into such a chain clears the
	// flag and reads fall back to the full scan. Chains built by plain
	// Install stay in exact install order — protocols whose version
	// order IS arrival order (orbe's per-server counters, the
	// install-order Latest readers) are never reordered behind their
	// backs.
	vecOrdered map[string]bool
}

// New creates an empty store hosting the given objects.
func New(objects ...string) *Store {
	s := &Store{
		objects:    make(map[string][]*Version, len(objects)),
		vecOrdered: make(map[string]bool),
	}
	for _, o := range objects {
		s.objects[o] = nil
	}
	return s
}

// Objects returns the hosted object names, sorted.
func (s *Store) Objects() []string {
	out := make([]string, 0, len(s.objects))
	for o := range s.objects {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Hosts reports whether the store hosts obj.
func (s *Store) Hosts(obj string) bool {
	_, ok := s.objects[obj]
	return ok
}

// Install appends a version to obj's chain, assigning its Seq, and returns
// it. It panics if the store does not host obj (placement bug). The chain
// stays in exact install order; snapshot-by-vector protocols should use
// InstallOrdered instead so their reads can early-exit.
func (s *Store) Install(v *Version) *Version {
	chain, ok := s.objects[v.Object]
	if !ok {
		panic(fmt.Sprintf("store: install on unhosted object %s", v.Object))
	}
	if len(chain) > 0 {
		// Mixing plain installs into an ordered chain voids the sorted
		// invariant; reads fall back to the full scan.
		s.vecOrdered[v.Object] = false
	}
	v.Seq = int64(len(chain)) + 1
	s.objects[v.Object] = append(chain, v)
	return v
}

// InstallOrdered adds a vectored version at its uniform-vector-order
// position (vecVersionLess) instead of appending, assigning its Seq (the
// 1-based install sequence number, still counting install order), and
// returns it. Commits mostly arrive in order, so the insert is an append
// or a short shift near the tail; the sorted chain is what lets
// SnapshotReadVec stop at the first visible covered version. It panics on
// an unhosted object or a version without a vector.
//
// Only protocols whose version order IS the uniform vector order (the
// Cure-style snapshot readers) should install through this: it makes
// Latest's reverse scan mean "largest in uniform order", not "most
// recently installed". Protocols reading by install order keep using
// Install and are never reordered.
func (s *Store) InstallOrdered(v *Version) *Version {
	chain, ok := s.objects[v.Object]
	if !ok {
		panic(fmt.Sprintf("store: install on unhosted object %s", v.Object))
	}
	if v.Vec == nil {
		panic(fmt.Sprintf("store: InstallOrdered of %s without a vector", v.Object))
	}
	v.Seq = int64(len(chain)) + 1
	wasOrdered := len(chain) == 0 || s.vecOrdered[v.Object]
	s.vecOrdered[v.Object] = wasOrdered
	chain = append(chain, v)
	if wasOrdered {
		// Insertion sort step: shift v left past strictly greater
		// versions; amortized O(1) for in-order commit streams.
		for i := len(chain) - 1; i > 0 && vecVersionLess(v, chain[i-1]); i-- {
			chain[i] = chain[i-1]
			chain[i-1] = v
		}
	}
	s.objects[v.Object] = chain
	return v
}

// Versions returns obj's version chain (nil if unknown): install order
// for chains built by Install, uniform vector order for chains built by
// InstallOrdered (see both).
func (s *Store) Versions(obj string) []*Version { return s.objects[obj] }

// Restamp replaces the vector timestamp of obj's version by writer — the
// prepare-then-commit protocols install a version with its prepare-time
// vector and learn the final commit vector later — and, on an
// InstallOrdered chain, moves the version to its new uniform-order
// position so the chain stays sorted. Returns the version, or nil if the
// writer has no version of obj. On ordered chains, mutating Version.Vec
// directly instead of calling Restamp voids the invariant
// SnapshotReadVec's early exit relies on.
func (s *Store) Restamp(obj string, writer model.TxnID, vec vclock.Vector) *Version {
	chain := s.objects[obj]
	idx := -1
	for i, v := range chain {
		if v.Writer == writer {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	v := chain[idx]
	v.Vec = vec
	if !s.vecOrdered[obj] {
		return v
	}
	if vec == nil {
		// A vector can only be withdrawn, not reordered by: give up the
		// invariant for this chain rather than serve misordered reads.
		s.vecOrdered[obj] = false
		return v
	}
	for idx > 0 && vecVersionLess(v, chain[idx-1]) {
		chain[idx] = chain[idx-1]
		chain[idx-1] = v
		idx--
	}
	for idx < len(chain)-1 && vecVersionLess(chain[idx+1], v) {
		chain[idx] = chain[idx+1]
		chain[idx+1] = v
		idx++
	}
	return v
}

// Find returns the version of obj written by writer, or nil.
func (s *Store) Find(obj string, writer model.TxnID) *Version {
	for _, v := range s.objects[obj] {
		if v.Writer == writer {
			return v
		}
	}
	return nil
}

// MakeVisible marks the version of obj written by writer visible and
// reports whether it was found.
func (s *Store) MakeVisible(obj string, writer model.TxnID) bool {
	if v := s.Find(obj, writer); v != nil {
		v.Visible = true
		return true
	}
	return false
}

// Latest returns the newest version of obj satisfying pred (nil pred
// accepts everything), or nil if none does. "Newest" is install order,
// which the protocols keep consistent with their timestamp order.
func (s *Store) Latest(obj string, pred func(*Version) bool) *Version {
	chain := s.objects[obj]
	for i := len(chain) - 1; i >= 0; i-- {
		if pred == nil || pred(chain[i]) {
			return chain[i]
		}
	}
	return nil
}

// LatestVisible returns the newest visible version of obj, or nil.
func (s *Store) LatestVisible(obj string) *Version {
	return s.Latest(obj, func(v *Version) bool { return v.Visible })
}

// LatestVisibleFor returns the newest visible version of obj that is not
// hidden from reader (COPS-SNOW semantics), or nil.
func (s *Store) LatestVisibleFor(obj string, reader model.TxnID) *Version {
	return s.Latest(obj, func(v *Version) bool {
		return v.Visible && !v.HiddenFrom[reader]
	})
}

// LatestVisibleAtOrBefore returns the newest visible version of obj with
// Stamp ≤ at (snapshot reads at a stable cutoff), or nil.
func (s *Store) LatestVisibleAtOrBefore(obj string, at vclock.HLCStamp) *Version {
	return s.Latest(obj, func(v *Version) bool {
		return v.Visible && !at.Before(v.Stamp)
	})
}

// LatestVisibleVecLeq returns the newest version in *install order* among
// visible versions whose vector timestamp is ≤ the snapshot vector.
// Versions without vectors are treated as ≤ everything. Snapshot-reading
// protocols should use SnapshotReadVec instead: install order of
// concurrent transactions differs across servers, so selecting by it
// fractures atomic multi-object snapshots.
func (s *Store) LatestVisibleVecLeq(obj string, snap vclock.Vector) *Version {
	return s.Latest(obj, func(v *Version) bool {
		if !v.Visible {
			return false
		}
		return v.Vec == nil || v.Vec.LessEq(snap)
	})
}

// SnapshotReadVec returns the visible version of obj that is largest in
// the uniform vector order (vclock.Vector.Compare, writer ID as the final
// tie-break) among those with Vec ≤ snap, or nil. Versions without
// vectors are treated as ≤ everything and older than any vectored
// version. Because every server applies the same total order, two servers
// serving the same snapshot agree on which of two concurrent transactions
// wins — keeping multi-object write transactions atomically visible.
//
// On chains kept uniformly ordered by InstallOrdered/Restamp (the
// snapshot protocols' steady state — they stamp every install) the scan
// walks backward from the tail and stops at the first visible covered
// version: anything further left is smaller in the uniform order. The
// read path is then O(versions above the snapshot), not O(chain length),
// so reads stay bounded as runs grow. Chains without the ordering
// invariant fall back to the full scan.
func (s *Store) SnapshotReadVec(obj string, snap vclock.Vector) *Version {
	chain := s.objects[obj]
	if !s.vecOrdered[obj] {
		return snapshotReadVecScan(chain, snap)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		v := chain[i]
		if !v.Visible || !v.Vec.LessEq(snap) {
			continue
		}
		// First covered visible version from the tail: the maximum —
		// everything to its left is smaller in the uniform order.
		return v
	}
	return nil
}

// snapshotReadVecScan is the unordered-chain fallback: a full scan for
// the uniform-order maximum among visible covered versions.
func snapshotReadVecScan(chain []*Version, snap vclock.Vector) *Version {
	var best *Version
	for _, v := range chain {
		if !v.Visible || (v.Vec != nil && !v.Vec.LessEq(snap)) {
			continue
		}
		if best == nil || vecVersionLess(best, v) {
			best = v
		}
	}
	return best
}

// vecVersionLess orders versions by (has-vector, Vector.Compare, Writer).
func vecVersionLess(a, b *Version) bool {
	if (a.Vec == nil) != (b.Vec == nil) {
		return a.Vec == nil
	}
	if a.Vec != nil {
		if c := a.Vec.Compare(b.Vec); c != 0 {
			return c < 0
		}
	}
	return a.Writer.String() < b.Writer.String()
}

// VersionLess is the global version order timestamp-based protocols use:
// stamp first, writer ID as the tie-break. Using one order on servers and
// clients alike is what keeps concurrent equal-stamp transactions from
// being observed in different orders at different servers.
func VersionLess(aStamp vclock.HLCStamp, aWriter model.TxnID, bStamp vclock.HLCStamp, bWriter model.TxnID) bool {
	if c := aStamp.Compare(bStamp); c != 0 {
		return c < 0
	}
	return aWriter.String() < bWriter.String()
}

// SnapshotRead returns the visible version of obj that is largest in the
// global version order among those with Stamp ≤ at, or nil.
func (s *Store) SnapshotRead(obj string, at vclock.HLCStamp) *Version {
	var best *Version
	for _, v := range s.objects[obj] {
		if !v.Visible || at.Before(v.Stamp) {
			continue
		}
		if best == nil || VersionLess(best.Stamp, best.Writer, v.Stamp, v.Writer) {
			best = v
		}
	}
	return best
}

// LatestVisibleByStamp returns the visible version of obj with the largest
// Stamp (ties broken by install order), or nil. Protocols whose version
// order is timestamp order (not arrival order) read through this.
func (s *Store) LatestVisibleByStamp(obj string) *Version {
	var best *Version
	for _, v := range s.objects[obj] {
		if !v.Visible {
			continue
		}
		if best == nil || best.Stamp.Before(v.Stamp) ||
			(best.Stamp.Compare(v.Stamp) == 0 && v.Seq > best.Seq) {
			best = v
		}
	}
	return best
}

// MaxVisibleStamp returns the largest Stamp among visible versions across
// all hosted objects (zero if none), used by stabilization protocols.
func (s *Store) MaxVisibleStamp() vclock.HLCStamp {
	var max vclock.HLCStamp
	for _, obj := range s.Objects() {
		for _, v := range s.objects[obj] {
			if v.Visible && max.Before(v.Stamp) {
				max = v.Stamp
			}
		}
	}
	return max
}

// Clone returns a deep copy of the store.
func (s *Store) Clone() *Store {
	c := &Store{
		objects:    make(map[string][]*Version, len(s.objects)),
		vecOrdered: make(map[string]bool, len(s.vecOrdered)),
	}
	for o, b := range s.vecOrdered {
		c.vecOrdered[o] = b
	}
	for o, chain := range s.objects {
		if chain == nil {
			c.objects[o] = nil
			continue
		}
		cp := make([]*Version, len(chain))
		for i, v := range chain {
			cp[i] = v.Clone()
		}
		c.objects[o] = cp
	}
	return c
}

package store

import (
	"testing"

	"repro/internal/model"
	"repro/internal/vclock"
)

// TestSnapshotReadVecUniformAcrossInstallOrders pins the cure
// write-atomicity fix: two servers that install the same pair of
// concurrent multi-object transactions in OPPOSITE orders must serve the
// same winner for the same snapshot, so no reader can observe one
// transaction's write on one server and the other's on the second — a
// half-visible transaction. The regression this guards: selecting by
// install order (LatestVisibleVecLeq) instead of the uniform vector
// order fractures atomic visibility exactly this way.
func TestSnapshotReadVecUniformAcrossInstallOrders(t *testing.T) {
	// Transactions A and B both write X0 and X1 with concurrent commit
	// vectors: A committed first at server 0, B first at server 1.
	vecA := vclock.Vector{5, 1}
	vecB := vclock.Vector{1, 5}
	tidA := model.TxnID{Client: "ca", Seq: 1}
	tidB := model.TxnID{Client: "cb", Seq: 1}
	mk := func(obj string, val model.Value, tid model.TxnID, vec vclock.Vector) *Version {
		return &Version{Object: obj, Value: val, Writer: tid, Vec: vec.Clone(), Visible: true}
	}

	// s0 installs A then B; s1 installs B then A (prepare/commit
	// deliveries raced in opposite orders). Cure-style servers install
	// through InstallOrdered, so both chains land in the uniform order.
	s0 := New("X0", "X1")
	s0.InstallOrdered(mk("X0", "a0", tidA, vecA))
	s0.InstallOrdered(mk("X1", "a1", tidA, vecA))
	s0.InstallOrdered(mk("X0", "b0", tidB, vecB))
	s0.InstallOrdered(mk("X1", "b1", tidB, vecB))
	s1 := New("X0", "X1")
	s1.InstallOrdered(mk("X1", "b1", tidB, vecB))
	s1.InstallOrdered(mk("X0", "b0", tidB, vecB))
	s1.InstallOrdered(mk("X1", "a1", tidA, vecA))
	s1.InstallOrdered(mk("X0", "a0", tidA, vecA))

	// A snapshot covering both transactions: a reader fetching X0 from
	// s0 and X1 from s1 must be handed the SAME transaction's writes.
	snap := vclock.Vector{5, 5}
	v0 := s0.SnapshotReadVec("X0", snap)
	v1 := s1.SnapshotReadVec("X1", snap)
	if v0 == nil || v1 == nil {
		t.Fatalf("snapshot read returned nil: %v %v", v0, v1)
	}
	if v0.Writer != v1.Writer {
		t.Fatalf("half-visible transaction: X0 from s0 by %s, X1 from s1 by %s",
			v0.Writer, v1.Writer)
	}
	// And every object individually agrees across servers.
	for _, obj := range []string{"X0", "X1"} {
		a, b := s0.SnapshotReadVec(obj, snap), s1.SnapshotReadVec(obj, snap)
		if a.Writer != b.Writer || a.Value != b.Value {
			t.Fatalf("servers disagree on %s: %s vs %s", obj, a, b)
		}
	}

	// InstallOrdered keeps vectored chains in the uniform order at commit
	// time, so BOTH servers hold identical chains despite installing in
	// opposite orders — which is what lets SnapshotReadVec stop at the
	// first visible covered version instead of rescanning the full chain.
	for _, obj := range []string{"X0", "X1"} {
		c0, c1 := s0.Versions(obj), s1.Versions(obj)
		if len(c0) != 2 || len(c1) != 2 {
			t.Fatalf("chain lengths: %d vs %d, want 2", len(c0), len(c1))
		}
		for i := range c0 {
			if c0[i].Writer != c1[i].Writer {
				t.Fatalf("%s chains ordered differently at %d: %s vs %s",
					obj, i, c0[i].Writer, c1[i].Writer)
			}
		}
		if vecVersionLess(c0[1], c0[0]) {
			t.Fatalf("%s chain not in uniform vector order: %s before %s",
				obj, c0[0], c0[1])
		}
	}
	// The pre-fix behaviour — reading by raw chain position — survives
	// only on chains that lost the ordering invariant; the dedicated
	// ordering tests in store_test.go pin that fallback.
}

// TestSnapshotReadVecExcludesUncovered: a version above the snapshot in
// any component is outside it, even when the other component is far
// ahead — partial coverage must not leak a half-committed transaction.
func TestSnapshotReadVecExcludesUncovered(t *testing.T) {
	s := New("X0")
	s.Install(&Version{Object: "X0", Value: "old", Writer: model.TxnID{Client: "c", Seq: 1},
		Vec: vclock.Vector{1, 1}, Visible: true})
	s.Install(&Version{Object: "X0", Value: "new", Writer: model.TxnID{Client: "c", Seq: 2},
		Vec: vclock.Vector{2, 9}, Visible: true})
	v := s.SnapshotReadVec("X0", vclock.Vector{8, 8})
	if v == nil || v.Value != "old" {
		t.Fatalf("snapshot {8,8} read %v, want the covered version 'old'", v)
	}
}

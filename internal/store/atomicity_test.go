package store

import (
	"testing"

	"repro/internal/model"
	"repro/internal/vclock"
)

// TestSnapshotReadVecUniformAcrossInstallOrders pins the cure
// write-atomicity fix: two servers that install the same pair of
// concurrent multi-object transactions in OPPOSITE orders must serve the
// same winner for the same snapshot, so no reader can observe one
// transaction's write on one server and the other's on the second — a
// half-visible transaction. The regression this guards: selecting by
// install order (LatestVisibleVecLeq) instead of the uniform vector
// order fractures atomic visibility exactly this way.
func TestSnapshotReadVecUniformAcrossInstallOrders(t *testing.T) {
	// Transactions A and B both write X0 and X1 with concurrent commit
	// vectors: A committed first at server 0, B first at server 1.
	vecA := vclock.Vector{5, 1}
	vecB := vclock.Vector{1, 5}
	tidA := model.TxnID{Client: "ca", Seq: 1}
	tidB := model.TxnID{Client: "cb", Seq: 1}
	mk := func(obj string, val model.Value, tid model.TxnID, vec vclock.Vector) *Version {
		return &Version{Object: obj, Value: val, Writer: tid, Vec: vec.Clone(), Visible: true}
	}

	// s0 installs A then B; s1 installs B then A (prepare/commit
	// deliveries raced in opposite orders).
	s0 := New("X0", "X1")
	s0.Install(mk("X0", "a0", tidA, vecA))
	s0.Install(mk("X1", "a1", tidA, vecA))
	s0.Install(mk("X0", "b0", tidB, vecB))
	s0.Install(mk("X1", "b1", tidB, vecB))
	s1 := New("X0", "X1")
	s1.Install(mk("X1", "b1", tidB, vecB))
	s1.Install(mk("X0", "b0", tidB, vecB))
	s1.Install(mk("X1", "a1", tidA, vecA))
	s1.Install(mk("X0", "a0", tidA, vecA))

	// A snapshot covering both transactions: a reader fetching X0 from
	// s0 and X1 from s1 must be handed the SAME transaction's writes.
	snap := vclock.Vector{5, 5}
	v0 := s0.SnapshotReadVec("X0", snap)
	v1 := s1.SnapshotReadVec("X1", snap)
	if v0 == nil || v1 == nil {
		t.Fatalf("snapshot read returned nil: %v %v", v0, v1)
	}
	if v0.Writer != v1.Writer {
		t.Fatalf("half-visible transaction: X0 from s0 by %s, X1 from s1 by %s",
			v0.Writer, v1.Writer)
	}
	// And every object individually agrees across servers.
	for _, obj := range []string{"X0", "X1"} {
		a, b := s0.SnapshotReadVec(obj, snap), s1.SnapshotReadVec(obj, snap)
		if a.Writer != b.Writer || a.Value != b.Value {
			t.Fatalf("servers disagree on %s: %s vs %s", obj, a, b)
		}
	}

	// The install-order read (the pre-fix behaviour) picks opposite
	// winners on the two servers — the exact fracture the fix removed.
	// This guards the test itself: if the scenario stops distinguishing
	// the two read paths, it no longer pins anything.
	i0 := s0.LatestVisibleVecLeq("X0", snap)
	i1 := s1.LatestVisibleVecLeq("X1", snap)
	if i0.Writer == i1.Writer {
		t.Fatalf("install-order read no longer fractures (%s vs %s) — scenario lost its teeth",
			i0.Writer, i1.Writer)
	}
}

// TestSnapshotReadVecExcludesUncovered: a version above the snapshot in
// any component is outside it, even when the other component is far
// ahead — partial coverage must not leak a half-committed transaction.
func TestSnapshotReadVecExcludesUncovered(t *testing.T) {
	s := New("X0")
	s.Install(&Version{Object: "X0", Value: "old", Writer: model.TxnID{Client: "c", Seq: 1},
		Vec: vclock.Vector{1, 1}, Visible: true})
	s.Install(&Version{Object: "X0", Value: "new", Writer: model.TxnID{Client: "c", Seq: 2},
		Vec: vclock.Vector{2, 9}, Visible: true})
	v := s.SnapshotReadVec("X0", vclock.Vector{8, 8})
	if v == nil || v.Value != "old" {
		t.Fatalf("snapshot {8,8} read %v, want the covered version 'old'", v)
	}
}

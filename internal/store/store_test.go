package store

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/vclock"
)

func tid(c string, n int) model.TxnID { return model.TxnID{Client: c, Seq: n} }

func TestInstallAssignsMonotoneSeq(t *testing.T) {
	s := New("X")
	for i := 1; i <= 5; i++ {
		v := s.Install(&Version{Object: "X", Value: model.Value(fmt.Sprint(i)), Writer: tid("c", i)})
		if v.Seq != int64(i) {
			t.Fatalf("seq = %d, want %d", v.Seq, i)
		}
	}
	if len(s.Versions("X")) != 5 {
		t.Fatalf("chain length = %d", len(s.Versions("X")))
	}
}

func TestInstallUnhostedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("X").Install(&Version{Object: "Y"})
}

func TestVisibilityGate(t *testing.T) {
	s := New("X")
	s.Install(&Version{Object: "X", Value: "old", Writer: tid("init", 0), Visible: true})
	s.Install(&Version{Object: "X", Value: "new", Writer: tid("w", 1)})

	if got := s.LatestVisible("X"); got == nil || got.Value != "old" {
		t.Fatalf("latest visible = %v, want old", got)
	}
	if !s.MakeVisible("X", tid("w", 1)) {
		t.Fatal("MakeVisible failed")
	}
	if got := s.LatestVisible("X"); got == nil || got.Value != "new" {
		t.Fatalf("latest visible after gate = %v, want new", got)
	}
	if s.MakeVisible("X", tid("nobody", 9)) {
		t.Fatal("MakeVisible of unknown writer succeeded")
	}
}

func TestHiddenFromReader(t *testing.T) {
	s := New("X")
	s.Install(&Version{Object: "X", Value: "old", Writer: tid("init", 0), Visible: true})
	s.Install(&Version{
		Object: "X", Value: "new", Writer: tid("w", 1), Visible: true,
		HiddenFrom: map[model.TxnID]bool{tid("r", 7): true},
	})
	if got := s.LatestVisibleFor("X", tid("r", 7)); got.Value != "old" {
		t.Fatalf("excluded reader saw %q", got.Value)
	}
	if got := s.LatestVisibleFor("X", tid("r", 8)); got.Value != "new" {
		t.Fatalf("other reader saw %q", got.Value)
	}
}

func TestLatestAtOrBefore(t *testing.T) {
	s := New("X")
	for i := 1; i <= 4; i++ {
		s.Install(&Version{
			Object: "X", Value: model.Value(fmt.Sprint(i)), Writer: tid("c", i),
			Stamp: vclock.HLCStamp{Wall: int64(i * 10)}, Visible: true,
		})
	}
	got := s.LatestVisibleAtOrBefore("X", vclock.HLCStamp{Wall: 25})
	if got == nil || got.Value != "2" {
		t.Fatalf("snapshot read = %v, want 2", got)
	}
	got = s.LatestVisibleAtOrBefore("X", vclock.HLCStamp{Wall: 40})
	if got == nil || got.Value != "4" {
		t.Fatalf("snapshot read = %v, want 4", got)
	}
	if got = s.LatestVisibleAtOrBefore("X", vclock.HLCStamp{Wall: 5}); got != nil {
		t.Fatalf("snapshot read before all stamps = %v, want nil", got)
	}
}

func TestLatestVecLeq(t *testing.T) {
	s := New("X")
	s.Install(&Version{Object: "X", Value: "a", Writer: tid("c", 1), Visible: true, Vec: vclock.Vector{1, 0}})
	s.Install(&Version{Object: "X", Value: "b", Writer: tid("c", 2), Visible: true, Vec: vclock.Vector{2, 3}})
	got := s.LatestVisibleVecLeq("X", vclock.Vector{1, 5})
	if got == nil || got.Value != "a" {
		t.Fatalf("vec read = %v, want a", got)
	}
	got = s.LatestVisibleVecLeq("X", vclock.Vector{2, 3})
	if got == nil || got.Value != "b" {
		t.Fatalf("vec read = %v, want b", got)
	}
}

func TestFind(t *testing.T) {
	s := New("X")
	s.Install(&Version{Object: "X", Value: "a", Writer: tid("c", 1)})
	if v := s.Find("X", tid("c", 1)); v == nil || v.Value != "a" {
		t.Fatal("Find failed")
	}
	if v := s.Find("X", tid("c", 2)); v != nil {
		t.Fatal("Find of absent writer returned a version")
	}
}

func TestMaxVisibleStamp(t *testing.T) {
	s := New("X", "Y")
	s.Install(&Version{Object: "X", Value: "a", Writer: tid("c", 1), Visible: true, Stamp: vclock.HLCStamp{Wall: 5}})
	s.Install(&Version{Object: "Y", Value: "b", Writer: tid("c", 2), Visible: true, Stamp: vclock.HLCStamp{Wall: 9}})
	s.Install(&Version{Object: "Y", Value: "c", Writer: tid("c", 3), Visible: false, Stamp: vclock.HLCStamp{Wall: 99}})
	if got := s.MaxVisibleStamp(); got.Wall != 9 {
		t.Fatalf("max visible stamp = %v, want 9", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := New("X")
	v := s.Install(&Version{
		Object: "X", Value: "a", Writer: tid("c", 1), Visible: false,
		HiddenFrom: map[model.TxnID]bool{tid("r", 1): true},
		Siblings:   map[string]model.Value{"Y": "sib"},
		DepValues:  map[string]model.Value{"Z": "dep"},
		Deps:       []model.TxnID{tid("d", 1)},
		Vec:        vclock.Vector{1, 2},
	})
	c := s.Clone()
	cv := c.Versions("X")[0]
	cv.Visible = true
	cv.HiddenFrom[tid("r", 2)] = true
	cv.Siblings["Y"] = "mut"
	cv.Vec[0] = 99
	cv.Deps[0] = tid("d", 2)

	if v.Visible || v.HiddenFrom[tid("r", 2)] || v.Siblings["Y"] != "sib" || v.Vec[0] != 1 || v.Deps[0] != tid("d", 1) {
		t.Fatal("clone shares state with original")
	}
}

func TestObjectsSorted(t *testing.T) {
	s := New("Z", "A", "M")
	objs := s.Objects()
	if len(objs) != 3 || objs[0] != "A" || objs[1] != "M" || objs[2] != "Z" {
		t.Fatalf("objects = %v", objs)
	}
	if !s.Hosts("M") || s.Hosts("Q") {
		t.Fatal("Hosts wrong")
	}
}

// Property: LatestVisible always returns the version with the highest Seq
// among visible versions.
func TestLatestVisibleIsMaxSeqProperty(t *testing.T) {
	f := func(visibles []bool) bool {
		s := New("X")
		var wantSeq int64
		for i, vis := range visibles {
			v := s.Install(&Version{Object: "X", Value: model.Value(fmt.Sprint(i)), Writer: tid("c", i), Visible: vis})
			if vis {
				wantSeq = v.Seq
			}
		}
		got := s.LatestVisible("X")
		if wantSeq == 0 {
			return got == nil
		}
		return got != nil && got.Seq == wantSeq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestInstallNeverReorders pins the plain-Install contract the
// install-order protocols (orbe's per-server counters, every Latest
// reader) rely on: chains built by Install stay in exact install order
// even when vector timestamps arrive wildly out of uniform order, and
// Latest keeps returning the most recent install.
func TestInstallNeverReorders(t *testing.T) {
	s := New("X")
	s.Install(&Version{Object: "X", Value: "first", Writer: tid("a", 1), Vec: vclock.Vector{5, 1}, Visible: true})
	s.Install(&Version{Object: "X", Value: "second", Writer: tid("b", 1), Vec: vclock.Vector{0, 2}, Visible: true})
	chain := s.Versions("X")
	if chain[0].Value != "first" || chain[1].Value != "second" {
		t.Fatalf("plain Install reordered the chain: %v %v", chain[0], chain[1])
	}
	snap := vclock.Vector{9, 9}
	got := s.Latest("X", func(v *Version) bool { return v.Visible && v.Vec.LessEq(snap) })
	if got == nil || got.Value != "second" {
		t.Fatalf("Latest = %v, want the most recent install", got)
	}
}

// TestInstallOrderedKeepsUniformVectorOrder pins the commit-time
// ordering invariant behind SnapshotReadVec's early exit: whatever order
// vectored versions are installed in, the chain ends up sorted by the
// uniform vector order (vecVersionLess), with Seq still recording
// install order.
func TestInstallOrderedKeepsUniformVectorOrder(t *testing.T) {
	vecs := []vclock.Vector{{5, 1}, {1, 5}, {3, 3}, {1, 5}, {0, 9}}
	perm := []int{3, 0, 4, 2, 1} // adversarial install order
	s := New("X")
	for install, idx := range perm {
		v := s.InstallOrdered(&Version{Object: "X", Value: model.Value(fmt.Sprint(idx)),
			Writer: tid(fmt.Sprintf("c%d", idx), 1), Vec: vecs[idx].Clone(), Visible: true})
		if v.Seq != int64(install)+1 {
			t.Fatalf("Seq = %d for install %d, want install order preserved", v.Seq, install+1)
		}
	}
	chain := s.Versions("X")
	if len(chain) != len(vecs) {
		t.Fatalf("chain length %d, want %d", len(chain), len(vecs))
	}
	for i := 1; i < len(chain); i++ {
		if vecVersionLess(chain[i], chain[i-1]) {
			t.Fatalf("chain out of uniform order at %d: %s after %s", i, chain[i], chain[i-1])
		}
	}
	// The maximum sits at the tail, so the early-exit read returns it
	// without touching the rest of the chain.
	if got := s.SnapshotReadVec("X", vclock.Vector{9, 9}); got == nil || got.Vec.Compare(vclock.Vector{5, 1}) != 0 {
		t.Fatalf("snapshot read = %v, want the {5,1} version", got)
	}
}

// TestSnapshotReadVecEarlyExitMatchesFullScan: the ordered-chain early
// exit must agree with the reference full scan on every snapshot, across
// random install orders, visibility, and coverage patterns.
func TestSnapshotReadVecEarlyExitMatchesFullScan(t *testing.T) {
	f := func(raw []uint8, snapA, snapB uint8) bool {
		s := New("X")
		for i, b := range raw {
			s.InstallOrdered(&Version{Object: "X", Value: model.Value(fmt.Sprint(i)),
				Writer:  tid(fmt.Sprintf("c%d", i%3), i),
				Vec:     vclock.Vector{int64(b % 7), int64((b / 7) % 7)},
				Visible: b%5 != 0,
			})
		}
		snap := vclock.Vector{int64(snapA % 8), int64(snapB % 8)}
		got := s.SnapshotReadVec("X", snap)
		want := snapshotReadVecScan(s.Versions("X"), snap)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotReadVecMixedChainFallback: a plain Install into an
// ordered chain voids the ordering invariant; reads must fall back to
// the full scan and still return the uniform-order maximum (vectorless
// versions rank below every vectored one).
func TestSnapshotReadVecMixedChainFallback(t *testing.T) {
	s := New("X")
	s.InstallOrdered(&Version{Object: "X", Value: "v1", Writer: tid("a", 1), Vec: vclock.Vector{2, 2}, Visible: true})
	s.Install(&Version{Object: "X", Value: "bare", Writer: tid("b", 1), Visible: true})
	s.InstallOrdered(&Version{Object: "X", Value: "v2", Writer: tid("c", 1), Vec: vclock.Vector{1, 3}, Visible: true})
	snap := vclock.Vector{3, 3}
	got := s.SnapshotReadVec("X", snap)
	if got == nil || got.Value != "v1" {
		t.Fatalf("mixed-chain read = %v, want the {2,2} version", got)
	}
	// A vectorless-prefix chain (plain init install first, ordered
	// installs after) also reads through the fallback, with vectorless
	// versions ranking below every vectored one.
	p := New("Y")
	p.Install(&Version{Object: "Y", Value: "init", Writer: tid("in", 1), Visible: true})
	p.InstallOrdered(&Version{Object: "Y", Value: "v", Writer: tid("a", 2), Vec: vclock.Vector{1, 1}, Visible: true})
	if got := p.SnapshotReadVec("Y", vclock.Vector{0, 0}); got == nil || got.Value != "init" {
		t.Fatalf("prefix fallback = %v, want the vectorless init version", got)
	}
	if got := p.SnapshotReadVec("Y", vclock.Vector{2, 2}); got == nil || got.Value != "v" {
		t.Fatalf("covered read = %v, want the vectored version", got)
	}
}

package store

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/vclock"
)

func tid(c string, n int) model.TxnID { return model.TxnID{Client: c, Seq: n} }

func TestInstallAssignsMonotoneSeq(t *testing.T) {
	s := New("X")
	for i := 1; i <= 5; i++ {
		v := s.Install(&Version{Object: "X", Value: model.Value(fmt.Sprint(i)), Writer: tid("c", i)})
		if v.Seq != int64(i) {
			t.Fatalf("seq = %d, want %d", v.Seq, i)
		}
	}
	if len(s.Versions("X")) != 5 {
		t.Fatalf("chain length = %d", len(s.Versions("X")))
	}
}

func TestInstallUnhostedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("X").Install(&Version{Object: "Y"})
}

func TestVisibilityGate(t *testing.T) {
	s := New("X")
	s.Install(&Version{Object: "X", Value: "old", Writer: tid("init", 0), Visible: true})
	s.Install(&Version{Object: "X", Value: "new", Writer: tid("w", 1)})

	if got := s.LatestVisible("X"); got == nil || got.Value != "old" {
		t.Fatalf("latest visible = %v, want old", got)
	}
	if !s.MakeVisible("X", tid("w", 1)) {
		t.Fatal("MakeVisible failed")
	}
	if got := s.LatestVisible("X"); got == nil || got.Value != "new" {
		t.Fatalf("latest visible after gate = %v, want new", got)
	}
	if s.MakeVisible("X", tid("nobody", 9)) {
		t.Fatal("MakeVisible of unknown writer succeeded")
	}
}

func TestHiddenFromReader(t *testing.T) {
	s := New("X")
	s.Install(&Version{Object: "X", Value: "old", Writer: tid("init", 0), Visible: true})
	s.Install(&Version{
		Object: "X", Value: "new", Writer: tid("w", 1), Visible: true,
		HiddenFrom: map[model.TxnID]bool{tid("r", 7): true},
	})
	if got := s.LatestVisibleFor("X", tid("r", 7)); got.Value != "old" {
		t.Fatalf("excluded reader saw %q", got.Value)
	}
	if got := s.LatestVisibleFor("X", tid("r", 8)); got.Value != "new" {
		t.Fatalf("other reader saw %q", got.Value)
	}
}

func TestLatestAtOrBefore(t *testing.T) {
	s := New("X")
	for i := 1; i <= 4; i++ {
		s.Install(&Version{
			Object: "X", Value: model.Value(fmt.Sprint(i)), Writer: tid("c", i),
			Stamp: vclock.HLCStamp{Wall: int64(i * 10)}, Visible: true,
		})
	}
	got := s.LatestVisibleAtOrBefore("X", vclock.HLCStamp{Wall: 25})
	if got == nil || got.Value != "2" {
		t.Fatalf("snapshot read = %v, want 2", got)
	}
	got = s.LatestVisibleAtOrBefore("X", vclock.HLCStamp{Wall: 40})
	if got == nil || got.Value != "4" {
		t.Fatalf("snapshot read = %v, want 4", got)
	}
	if got = s.LatestVisibleAtOrBefore("X", vclock.HLCStamp{Wall: 5}); got != nil {
		t.Fatalf("snapshot read before all stamps = %v, want nil", got)
	}
}

func TestLatestVecLeq(t *testing.T) {
	s := New("X")
	s.Install(&Version{Object: "X", Value: "a", Writer: tid("c", 1), Visible: true, Vec: vclock.Vector{1, 0}})
	s.Install(&Version{Object: "X", Value: "b", Writer: tid("c", 2), Visible: true, Vec: vclock.Vector{2, 3}})
	got := s.LatestVisibleVecLeq("X", vclock.Vector{1, 5})
	if got == nil || got.Value != "a" {
		t.Fatalf("vec read = %v, want a", got)
	}
	got = s.LatestVisibleVecLeq("X", vclock.Vector{2, 3})
	if got == nil || got.Value != "b" {
		t.Fatalf("vec read = %v, want b", got)
	}
}

func TestFind(t *testing.T) {
	s := New("X")
	s.Install(&Version{Object: "X", Value: "a", Writer: tid("c", 1)})
	if v := s.Find("X", tid("c", 1)); v == nil || v.Value != "a" {
		t.Fatal("Find failed")
	}
	if v := s.Find("X", tid("c", 2)); v != nil {
		t.Fatal("Find of absent writer returned a version")
	}
}

func TestMaxVisibleStamp(t *testing.T) {
	s := New("X", "Y")
	s.Install(&Version{Object: "X", Value: "a", Writer: tid("c", 1), Visible: true, Stamp: vclock.HLCStamp{Wall: 5}})
	s.Install(&Version{Object: "Y", Value: "b", Writer: tid("c", 2), Visible: true, Stamp: vclock.HLCStamp{Wall: 9}})
	s.Install(&Version{Object: "Y", Value: "c", Writer: tid("c", 3), Visible: false, Stamp: vclock.HLCStamp{Wall: 99}})
	if got := s.MaxVisibleStamp(); got.Wall != 9 {
		t.Fatalf("max visible stamp = %v, want 9", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := New("X")
	v := s.Install(&Version{
		Object: "X", Value: "a", Writer: tid("c", 1), Visible: false,
		HiddenFrom: map[model.TxnID]bool{tid("r", 1): true},
		Siblings:   map[string]model.Value{"Y": "sib"},
		DepValues:  map[string]model.Value{"Z": "dep"},
		Deps:       []model.TxnID{tid("d", 1)},
		Vec:        vclock.Vector{1, 2},
	})
	c := s.Clone()
	cv := c.Versions("X")[0]
	cv.Visible = true
	cv.HiddenFrom[tid("r", 2)] = true
	cv.Siblings["Y"] = "mut"
	cv.Vec[0] = 99
	cv.Deps[0] = tid("d", 2)

	if v.Visible || v.HiddenFrom[tid("r", 2)] || v.Siblings["Y"] != "sib" || v.Vec[0] != 1 || v.Deps[0] != tid("d", 1) {
		t.Fatal("clone shares state with original")
	}
}

func TestObjectsSorted(t *testing.T) {
	s := New("Z", "A", "M")
	objs := s.Objects()
	if len(objs) != 3 || objs[0] != "A" || objs[1] != "M" || objs[2] != "Z" {
		t.Fatalf("objects = %v", objs)
	}
	if !s.Hosts("M") || s.Hosts("Q") {
		t.Fatal("Hosts wrong")
	}
}

// Property: LatestVisible always returns the version with the highest Seq
// among visible versions.
func TestLatestVisibleIsMaxSeqProperty(t *testing.T) {
	f := func(visibles []bool) bool {
		s := New("X")
		var wantSeq int64
		for i, vis := range visibles {
			v := s.Install(&Version{Object: "X", Value: model.Value(fmt.Sprint(i)), Writer: tid("c", i), Visible: vis})
			if vis {
				wantSeq = v.Seq
			}
		}
		got := s.LatestVisible("X")
		if wantSeq == 0 {
			return got == nil
		}
		return got != nil && got.Seq == wantSeq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package model

import (
	"testing"
	"testing/quick"
)

func TestTxnKinds(t *testing.T) {
	ro := NewReadOnly(TxnID{"c0", 1}, "X1", "X0", "X1")
	if !ro.IsReadOnly() || ro.IsWriteOnly() {
		t.Fatal("read-only misclassified")
	}
	if len(ro.ReadSet) != 2 || ro.ReadSet[0] != "X0" || ro.ReadSet[1] != "X1" {
		t.Fatalf("read set not deduped/sorted: %v", ro.ReadSet)
	}
	wo := NewWriteOnly(TxnID{"c0", 2}, Write{"X0", "a"}, Write{"X1", "b"})
	if !wo.IsWriteOnly() || wo.IsReadOnly() {
		t.Fatal("write-only misclassified")
	}
	rw := &Txn{ID: TxnID{"c0", 3}, ReadSet: []string{"X0"}, Writes: []Write{{"X0", "c"}}}
	if rw.IsReadOnly() || rw.IsWriteOnly() {
		t.Fatal("read-write misclassified")
	}
}

func TestWriteSetAndWrittenValue(t *testing.T) {
	w := NewWriteOnly(TxnID{"c1", 1},
		Write{"X1", "v1"}, Write{"X0", "v0"}, Write{"X1", "v2"})
	ws := w.WriteSet()
	if len(ws) != 2 || ws[0] != "X0" || ws[1] != "X1" {
		t.Fatalf("write set = %v", ws)
	}
	// Last write wins within a transaction.
	if v, ok := w.WrittenValue("X1"); !ok || v != "v2" {
		t.Fatalf("WrittenValue(X1) = %q, %v", v, ok)
	}
	if _, ok := w.WrittenValue("X9"); ok {
		t.Fatal("WrittenValue of unwritten object reported ok")
	}
}

func TestObjectsUnion(t *testing.T) {
	txn := &Txn{ID: TxnID{"c", 1}, ReadSet: []string{"B", "A"}, Writes: []Write{{"C", "x"}, {"A", "y"}}}
	objs := txn.Objects()
	want := []string{"A", "B", "C"}
	if len(objs) != 3 {
		t.Fatalf("objects = %v", objs)
	}
	for i := range want {
		if objs[i] != want[i] {
			t.Fatalf("objects = %v, want %v", objs, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := &Txn{ID: TxnID{"c", 1}, ReadSet: []string{"A"}, Writes: []Write{{"B", "v"}}}
	c := orig.Clone()
	c.ReadSet[0] = "Z"
	c.Writes[0].Value = "w"
	if orig.ReadSet[0] != "A" || orig.Writes[0].Value != "v" {
		t.Fatal("clone shares storage with original")
	}
}

func TestResultHelpers(t *testing.T) {
	var nilRes *Result
	if nilRes.OK() {
		t.Fatal("nil result reported OK")
	}
	if nilRes.Value("X") != Bottom {
		t.Fatal("nil result value not Bottom")
	}
	r := &Result{Values: map[string]Value{"X": "v"}}
	if !r.OK() || r.Value("X") != "v" || r.Value("Y") != Bottom {
		t.Fatal("result accessors wrong")
	}
	r.Err = "boom"
	if r.OK() {
		t.Fatal("errored result reported OK")
	}
}

func TestDedupeSortedProperty(t *testing.T) {
	f := func(raw []string) bool {
		out := dedupeSorted(raw)
		for i := 1; i < len(out); i++ {
			if out[i-1] >= out[i] {
				return false // must be strictly increasing
			}
		}
		// every input present in output
		set := make(map[string]bool, len(out))
		for _, s := range out {
			set[s] = true
		}
		for _, s := range raw {
			if !set[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTxnIDString(t *testing.T) {
	id := TxnID{Client: "c3", Seq: 42}
	if id.String() != "c3/42" {
		t.Fatalf("String() = %q", id.String())
	}
	if id.IsZero() {
		t.Fatal("non-zero ID reported zero")
	}
	if !(TxnID{}).IsZero() {
		t.Fatal("zero ID not reported zero")
	}
}

// Package model defines the transaction model of the paper (Section 2):
// static transactions with read sets and write sets over named objects,
// identified clients, and opaque distinct values. It is shared by the
// store, the protocol SPI, the history checkers and the property
// measurements; it has no dependencies of its own.
package model

import (
	"fmt"
	"sort"
)

// Value is an opaque stored value. The paper assumes (w.l.o.g.) that all
// written values are distinct; workloads enforce this by construction.
type Value string

// Bottom is the "no value" placeholder (⊥).
const Bottom Value = ""

// TxnID identifies a transaction by the invoking client and a per-client
// sequence number.
type TxnID struct {
	Client string
	Seq    int
}

func (t TxnID) String() string { return fmt.Sprintf("%s/%d", t.Client, t.Seq) }

// IsZero reports whether the ID is unset.
func (t TxnID) IsZero() bool { return t.Client == "" && t.Seq == 0 }

// Write is a single write operation w(Object)Value.
type Write struct {
	Object string
	Value  Value
}

func (w Write) String() string { return fmt.Sprintf("w(%s)%s", w.Object, w.Value) }

// Txn is a static transaction T = (R_T, W_T): the read set and write set
// are known up front. A transaction with an empty write set is read-only;
// one with an empty read set is write-only. Within a read-write
// transaction, reads are taken to precede writes.
type Txn struct {
	ID      TxnID
	ReadSet []string
	Writes  []Write
}

// NewReadOnly builds a read-only transaction over the given objects.
func NewReadOnly(id TxnID, objects ...string) *Txn {
	return &Txn{ID: id, ReadSet: dedupeSorted(objects)}
}

// NewWriteOnly builds a write-only transaction performing the given writes.
func NewWriteOnly(id TxnID, writes ...Write) *Txn {
	return &Txn{ID: id, Writes: writes}
}

// IsReadOnly reports whether the transaction writes nothing.
func (t *Txn) IsReadOnly() bool { return len(t.Writes) == 0 }

// IsWriteOnly reports whether the transaction reads nothing.
func (t *Txn) IsWriteOnly() bool { return len(t.ReadSet) == 0 }

// WriteSet returns the sorted set of objects written.
func (t *Txn) WriteSet() []string {
	objs := make([]string, 0, len(t.Writes))
	for _, w := range t.Writes {
		objs = append(objs, w.Object)
	}
	return dedupeSorted(objs)
}

// Objects returns the sorted set of all objects accessed.
func (t *Txn) Objects() []string {
	return dedupeSorted(append(append([]string{}, t.ReadSet...), t.WriteSet()...))
}

// WrittenValue returns the last value the transaction writes to obj, and
// whether it writes obj at all.
func (t *Txn) WrittenValue(obj string) (Value, bool) {
	var v Value
	found := false
	for _, w := range t.Writes {
		if w.Object == obj {
			v, found = w.Value, true
		}
	}
	return v, found
}

// Clone returns a deep copy.
func (t *Txn) Clone() *Txn {
	c := &Txn{ID: t.ID}
	c.ReadSet = append([]string(nil), t.ReadSet...)
	c.Writes = append([]Write(nil), t.Writes...)
	return c
}

func (t *Txn) String() string {
	s := "T" + t.ID.String() + "("
	for i, o := range t.ReadSet {
		if i > 0 {
			s += ","
		}
		s += "r(" + o + ")"
	}
	for i, w := range t.Writes {
		if i > 0 || len(t.ReadSet) > 0 {
			s += ","
		}
		s += w.String()
	}
	return s + ")"
}

// Result is the response of a completed transaction: a value per object in
// the read set and an ack (implicit) per write, or an error for rejected
// transactions (e.g. a multi-object write transaction submitted to a
// protocol that does not support them).
type Result struct {
	Txn    *Txn
	Values map[string]Value
	Err    string
	// Invoked and Completed are virtual times (sim.Time values) recorded
	// by the client, used by latency experiments and the strict
	// serializability checker.
	Invoked, Completed int64
	// Rounds counts the client's request-sending steps (filled by the
	// client implementations for convenience; the spec package measures
	// it independently from traces).
	Rounds int
}

// OK reports whether the transaction completed without error.
func (r *Result) OK() bool { return r != nil && r.Err == "" }

// Value returns the value read for obj (Bottom if absent).
func (r *Result) Value(obj string) Value {
	if r == nil || r.Values == nil {
		return Bottom
	}
	return r.Values[obj]
}

// ValueRef describes one written value carried inside a message, used by
// the one-value-messages measurement (Definition 4, property 2).
type ValueRef struct {
	Object string
	Value  Value
	Writer TxnID
}

func (v ValueRef) String() string {
	return fmt.Sprintf("%s=%s by %s", v.Object, v.Value, v.Writer)
}

func dedupeSorted(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	out := append([]string(nil), in...)
	sort.Strings(out)
	j := 0
	for i := 1; i < len(out); i++ {
		if out[i] != out[j] {
			j++
			out[j] = out[i]
		}
	}
	return out[:j+1]
}

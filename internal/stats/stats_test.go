package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	c := NewCollector()
	for i := int64(1); i <= 100; i++ {
		c.Add(i)
	}
	s := c.Summarize()
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 50.5 {
		t.Fatalf("mean = %f", s.Mean)
	}
	if s.P50 < 45 || s.P50 > 55 {
		t.Fatalf("p50 = %d", s.P50)
	}
	if s.P99 < 95 {
		t.Fatalf("p99 = %d", s.P99)
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewCollector().Summarize()
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s.Histogram(4) != "(no samples)" {
		t.Fatal("empty histogram rendering wrong")
	}
}

func TestPercentilesOrdered(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		c := NewCollector()
		for _, v := range raw {
			c.Add(int64(v))
		}
		s := c.Summarize()
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramCountsAllSamples(t *testing.T) {
	c := NewCollector()
	c.AddAll(1, 2, 3, 10, 20, 30, 100)
	s := c.Summarize()
	h := s.Histogram(5)
	if !strings.Contains(h, "#") {
		t.Fatalf("histogram has no bars:\n%s", h)
	}
	if len(strings.Split(strings.TrimSpace(h), "\n")) != 5 {
		t.Fatalf("histogram rows wrong:\n%s", h)
	}
}

func TestStringRendering(t *testing.T) {
	c := NewCollector()
	c.AddAll(5, 5, 5)
	if got := c.Summarize().String(); !strings.Contains(got, "n=3") {
		t.Fatalf("string = %q", got)
	}
}

// Package stats provides the summary statistics the latency experiments
// report: mean, percentiles and simple fixed-width histograms over
// virtual-time samples.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Summary is a one-pass description of a sample set.
type Summary struct {
	N                int
	Mean             float64
	Min, Max         int64
	P50, P90, P99    int64
	samplesRetained  []int64
	retainedIsSorted bool
}

// Collector accumulates samples.
type Collector struct {
	samples []int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add records one sample.
func (c *Collector) Add(v int64) { c.samples = append(c.samples, v) }

// AddAll records many samples.
func (c *Collector) AddAll(vs ...int64) { c.samples = append(c.samples, vs...) }

// N returns the number of samples.
func (c *Collector) N() int { return len(c.samples) }

// Summarize computes the summary.
func (c *Collector) Summarize() Summary {
	s := Summary{N: len(c.samples)}
	if s.N == 0 {
		return s
	}
	sorted := append([]int64(nil), c.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	s.Mean = float64(sum) / float64(s.N)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P99 = percentile(sorted, 0.99)
	s.samplesRetained = sorted
	s.retainedIsSorted = true
	return s
}

func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p90=%d p99=%d min=%d max=%d",
		s.N, s.Mean, s.P50, s.P90, s.P99, s.Min, s.Max)
}

// Histogram renders a fixed-width ASCII histogram with the given number of
// buckets.
func (s Summary) Histogram(buckets int) string {
	if s.N == 0 || buckets <= 0 {
		return "(no samples)"
	}
	lo, hi := s.Min, s.Max
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, buckets)
	width := float64(hi-lo) / float64(buckets)
	for _, v := range s.samplesRetained {
		b := int(float64(v-lo) / width)
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		bLo := lo + int64(float64(i)*width)
		bHi := lo + int64(float64(i+1)*width)
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", c*40/maxCount)
		}
		fmt.Fprintf(&b, "%8d-%-8d %6d %s\n", bLo, bHi, c, bar)
	}
	return b.String()
}

package vclock

import (
	"testing"
	"testing/quick"
)

func TestLamportMonotone(t *testing.T) {
	l := &Lamport{}
	prev := int64(0)
	for i := 0; i < 10; i++ {
		v := l.Tick()
		if v <= prev {
			t.Fatalf("tick not monotone: %d after %d", v, prev)
		}
		prev = v
	}
	if got := l.Observe(100); got != 101 {
		t.Fatalf("observe(100) = %d, want 101", got)
	}
	if got := l.Observe(5); got != 102 {
		t.Fatalf("observe(5) = %d, want 102", got)
	}
}

func TestLamportClone(t *testing.T) {
	l := &Lamport{T: 7}
	c := l.Clone()
	c.Tick()
	if l.T != 7 {
		t.Fatal("clone mutated original")
	}
}

func mkVec(a [4]int8) Vector {
	v := NewVector(4)
	for i, x := range a {
		if x < 0 {
			x = -x
		}
		v[i] = int64(x)
	}
	return v
}

func TestVectorMergeIsLUB(t *testing.T) {
	// merge(a,b) dominates both and is the least such vector.
	f := func(a, b [4]int8) bool {
		va, vb := mkVec(a), mkVec(b)
		m := va.Clone()
		m.Merge(vb)
		if !va.LessEq(m) || !vb.LessEq(m) {
			return false
		}
		for i := range m {
			if m[i] != va[i] && m[i] != vb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorMergeCommutativeIdempotent(t *testing.T) {
	f := func(a, b [4]int8) bool {
		va, vb := mkVec(a), mkVec(b)
		m1 := va.Clone()
		m1.Merge(vb)
		m2 := vb.Clone()
		m2.Merge(va)
		if !m1.Equal(m2) {
			return false
		}
		m3 := m1.Clone()
		m3.Merge(m1)
		return m3.Equal(m1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorPartialOrder(t *testing.T) {
	f := func(a, b, c [4]int8) bool {
		va, vb, vc := mkVec(a), mkVec(b), mkVec(c)
		// reflexive
		if !va.LessEq(va) {
			return false
		}
		// antisymmetric
		if va.LessEq(vb) && vb.LessEq(va) && !va.Equal(vb) {
			return false
		}
		// transitive
		if va.LessEq(vb) && vb.LessEq(vc) && !va.LessEq(vc) {
			return false
		}
		// concurrency is symmetric and excludes order
		if va.Concurrent(vb) != vb.Concurrent(va) {
			return false
		}
		if va.Concurrent(vb) && (va.LessEq(vb) || vb.LessEq(va)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorMinIsGLB(t *testing.T) {
	f := func(a, b [4]int8) bool {
		va, vb := mkVec(a), mkVec(b)
		m := Min(va, vb)
		if !m.LessEq(va) || !m.LessEq(vb) {
			return false
		}
		for i := range m {
			if m[i] != va[i] && m[i] != vb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVector(2).Merge(NewVector(3))
}

func TestHLCSendMonotone(t *testing.T) {
	h := &HLC{}
	var prev HLCStamp
	phys := []int64{5, 5, 5, 3, 7, 7, 2}
	for _, p := range phys {
		s := h.Now(p)
		if !prev.Before(s) {
			t.Fatalf("HLC not monotone: %v then %v", prev, s)
		}
		prev = s
	}
}

func TestHLCObserveOrdersAfterRemote(t *testing.T) {
	f := func(physA, physB uint16, l uint8) bool {
		a, b := &HLC{}, &HLC{}
		sa := a.Now(int64(physA))
		for i := uint8(0); i < l%8; i++ {
			sa = a.Now(int64(physA))
		}
		sb := b.Observe(int64(physB), sa)
		// The receive stamp must be after the send stamp.
		return sa.Before(sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHLCCompare(t *testing.T) {
	a := HLCStamp{Wall: 1, Logical: 2}
	b := HLCStamp{Wall: 1, Logical: 3}
	c := HLCStamp{Wall: 2, Logical: 0}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("bad compare within wall")
	}
	if b.Compare(c) != -1 {
		t.Fatal("bad compare across wall")
	}
}

func TestHLCWallBoundedByMaxPhysical(t *testing.T) {
	// The HLC wall component never exceeds the largest physical time seen,
	// a standard HLC boundedness property.
	f := func(seq [8]uint8) bool {
		h := &HLC{}
		var maxPhys int64
		for _, p := range seq {
			phys := int64(p)
			if phys > maxPhys {
				maxPhys = phys
			}
			h.Now(phys)
			if h.Wall > maxPhys {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDepMatrix(t *testing.T) {
	d := NewDepMatrix(3)
	d.Set(0, 1, 5)
	d.Set(0, 1, 3) // must not lower
	if d.Get(0, 1) != 5 {
		t.Fatalf("get = %d, want 5", d.Get(0, 1))
	}
	d.MergeRow(0, Vector{1, 9, 2})
	row := d.Row(0)
	if row[0] != 1 || row[1] != 9 || row[2] != 2 {
		t.Fatalf("row = %v", row)
	}
	c := d.Clone()
	c.Set(2, 2, 11)
	if d.Get(2, 2) != 0 {
		t.Fatal("clone mutated original")
	}
}

func TestSortStamps(t *testing.T) {
	ss := []HLCStamp{{3, 0}, {1, 2}, {1, 1}, {2, 5}}
	SortStamps(ss)
	for i := 1; i < len(ss); i++ {
		if ss[i].Before(ss[i-1]) {
			t.Fatalf("not sorted: %v", ss)
		}
	}
}

// Package vclock provides the logical-time substrates used by the modeled
// storage systems: Lamport clocks (GentleRain-style global stable time),
// vector clocks (Cure-style stable vectors), hybrid logical clocks (Wren)
// and dependency matrices (Orbe).
package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// Lamport is a scalar logical clock.
type Lamport struct {
	T int64
}

// Tick advances the clock for a local event and returns the new value.
func (l *Lamport) Tick() int64 {
	l.T++
	return l.T
}

// Observe merges a remote timestamp (receive rule) and ticks.
func (l *Lamport) Observe(remote int64) int64 {
	if remote > l.T {
		l.T = remote
	}
	return l.Tick()
}

// Clone returns a copy.
func (l *Lamport) Clone() *Lamport { c := *l; return &c }

// Vector is a vector clock over a fixed number of entries (one per server
// or per replica, depending on the protocol).
type Vector []int64

// NewVector returns a zero vector of n entries.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Merge sets v to the entrywise maximum of v and o. Vectors must have the
// same length; Merge panics otherwise (a protocol wiring bug).
func (v Vector) Merge(o Vector) {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vclock: merge of mismatched vectors %d vs %d", len(v), len(o)))
	}
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

// LessEq reports whether v ≤ o entrywise (v happened-before-or-equals o).
func (v Vector) LessEq(o Vector) bool {
	if len(v) != len(o) {
		panic("vclock: compare of mismatched vectors")
	}
	for i, x := range v {
		if x > o[i] {
			return false
		}
	}
	return true
}

// Less reports whether v < o (LessEq and not equal).
func (v Vector) Less(o Vector) bool { return v.LessEq(o) && !v.Equal(o) }

// Compare is a total order on equal-length vectors: lexicographic by
// entry. It extends the happened-before partial order (if v ≤ o entrywise
// then Compare(v, o) ≤ 0), giving concurrent vectors a uniform arbitration
// every process agrees on — the vector analogue of store.VersionLess.
func (v Vector) Compare(o Vector) int {
	if len(v) != len(o) {
		panic("vclock: compare of mismatched vectors")
	}
	for i, x := range v {
		if x != o[i] {
			if x < o[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Equal reports entrywise equality.
func (v Vector) Equal(o Vector) bool {
	if len(v) != len(o) {
		return false
	}
	for i, x := range v {
		if x != o[i] {
			return false
		}
	}
	return true
}

// Concurrent reports whether neither vector dominates the other.
func (v Vector) Concurrent(o Vector) bool { return !v.LessEq(o) && !o.LessEq(v) }

// Min returns the entrywise minimum of the given vectors. It panics when
// vs is empty. GentleRain/Cure-style stabilization computes this over the
// per-server version vectors.
func Min(vs ...Vector) Vector {
	if len(vs) == 0 {
		panic("vclock: Min of no vectors")
	}
	out := vs[0].Clone()
	for _, v := range vs[1:] {
		if len(v) != len(out) {
			panic("vclock: Min of mismatched vectors")
		}
		for i, x := range v {
			if x < out[i] {
				out[i] = x
			}
		}
	}
	return out
}

func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// HLC is a hybrid logical clock: a physical component (the process's local
// clock, possibly skewed) combined with a logical counter that restores
// the happened-before property.
type HLC struct {
	Wall    int64 // last observed physical time
	Logical int64 // tie-breaking logical counter
}

// HLCStamp is a totally ordered HLC timestamp.
type HLCStamp struct {
	Wall    int64
	Logical int64
}

// Before reports strict order.
func (s HLCStamp) Before(o HLCStamp) bool {
	if s.Wall != o.Wall {
		return s.Wall < o.Wall
	}
	return s.Logical < o.Logical
}

// Compare returns -1, 0 or 1.
func (s HLCStamp) Compare(o HLCStamp) int {
	switch {
	case s.Before(o):
		return -1
	case o.Before(s):
		return 1
	default:
		return 0
	}
}

func (s HLCStamp) String() string { return fmt.Sprintf("%d.%d", s.Wall, s.Logical) }

// Now advances the clock for a local/send event given the current physical
// time and returns the new stamp.
func (h *HLC) Now(phys int64) HLCStamp {
	if phys > h.Wall {
		h.Wall = phys
		h.Logical = 0
	} else {
		h.Logical++
	}
	return HLCStamp{Wall: h.Wall, Logical: h.Logical}
}

// Observe merges a remote stamp on receive and returns the new local stamp.
func (h *HLC) Observe(phys int64, remote HLCStamp) HLCStamp {
	switch {
	case phys > h.Wall && phys > remote.Wall:
		h.Wall = phys
		h.Logical = 0
	case remote.Wall > h.Wall:
		h.Wall = remote.Wall
		h.Logical = remote.Logical + 1
	case h.Wall > remote.Wall:
		h.Logical++
	default: // equal walls
		if remote.Logical > h.Logical {
			h.Logical = remote.Logical
		}
		h.Logical++
	}
	return HLCStamp{Wall: h.Wall, Logical: h.Logical}
}

// Clone returns a copy.
func (h *HLC) Clone() *HLC { c := *h; return &c }

// DepMatrix is an Orbe-style dependency matrix: entry (i, j) is the highest
// sequence number of server j's updates that partition i's state depends
// on. For our single-datacenter model we use a flat N×N matrix keyed by
// server index.
type DepMatrix struct {
	N int
	M []int64
}

// NewDepMatrix returns an N×N zero matrix.
func NewDepMatrix(n int) *DepMatrix { return &DepMatrix{N: n, M: make([]int64, n*n)} }

// Get returns entry (i, j).
func (d *DepMatrix) Get(i, j int) int64 { return d.M[i*d.N+j] }

// Set records entry (i, j) = v if v is larger than the current entry.
func (d *DepMatrix) Set(i, j int, v int64) {
	if v > d.M[i*d.N+j] {
		d.M[i*d.N+j] = v
	}
}

// Row returns a copy of row i as a Vector.
func (d *DepMatrix) Row(i int) Vector {
	out := make(Vector, d.N)
	copy(out, d.M[i*d.N:(i+1)*d.N])
	return out
}

// MergeRow merges v into row i entrywise-max.
func (d *DepMatrix) MergeRow(i int, v Vector) {
	if len(v) != d.N {
		panic("vclock: MergeRow of mismatched width")
	}
	for j, x := range v {
		d.Set(i, j, x)
	}
}

// Clone returns a deep copy.
func (d *DepMatrix) Clone() *DepMatrix {
	c := &DepMatrix{N: d.N, M: make([]int64, len(d.M))}
	copy(c.M, d.M)
	return c
}

func (d *DepMatrix) String() string {
	var b strings.Builder
	for i := 0; i < d.N; i++ {
		b.WriteString(d.Row(i).String())
	}
	return b.String()
}

// SortStamps sorts a slice of HLC stamps ascending (test/debug helper).
func SortStamps(ss []HLCStamp) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].Before(ss[j]) })
}

package eiger_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/protocols/eiger"
	"repro/internal/protocols/ptest"
	"repro/internal/sim"
)

func TestConformance(t *testing.T) {
	ptest.Run(t, eiger.New(), ptest.Expect{
		ROTRounds:  1, // happy path; retries under pending commits
		Blocking:   false,
		MultiWrite: true,
		Causal:     true,
	})
}

// TestRetryResolvesPendingCommit: the ROT races a write transaction whose
// commit reaches s1 before s0. Round 1 observes new X1 and old X0 with a
// pending marker; the client must keep re-polling (not return the mixed
// pair) until the commit lands at s0.
func TestRetryResolvesPendingCommit(t *testing.T) {
	d := ptest.Deploy(t, eiger.New(), ptest.Expect{}, 103)
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "n0"}, model.Write{Object: "X1", Value: "n1"}))
	d.Kernel.StepProcess("c0")
	// Prepare at both, acks back, commits out; deliver commit only to s1.
	for _, s := range []sim.ProcessID{"s0", "s1"} {
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: s}) {
			d.Kernel.Deliver(m.ID)
		}
		d.Kernel.StepProcess(s)
	}
	for _, s := range []sim.ProcessID{"s0", "s1"} {
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: s, To: "c0"}) {
			d.Kernel.Deliver(m.ID)
		}
	}
	d.Kernel.StepProcess("c0")
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: "s1"}) {
		d.Kernel.Deliver(m.ID)
	}
	d.Kernel.StepProcess("s1")

	// Run the ROT with the commit to s0 frozen: round 1 observes new X1
	// and old X0 with a pending marker, so the client must keep retrying
	// instead of returning the mixed pair.
	rotID := d.Invoke("r0", model.NewReadOnly(model.TxnID{}, "X0", "X1"))
	frozen := &sim.RoundRobin{Only: sim.Restrict("r0", "s0", "s1")}
	sim.Run(d.Kernel, frozen, func(*sim.Kernel) bool { return !d.Client("r0").Busy() }, 300)
	if !d.Client("r0").Busy() {
		res := d.Client("r0").Results()[rotID]
		v0, v1 := res.Value("X0"), res.Value("X1")
		if (v0 == "n0") != (v1 == "n1") {
			t.Fatalf("mixed read escaped the retry protocol: %v", res.Values)
		}
	}

	// Release the commit; the ROT must now complete consistently and the
	// retry rounds must be visible.
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: "s0"}) {
		d.Kernel.Deliver(m.ID)
	}
	sim.Run(d.Kernel, &sim.RoundRobin{}, func(*sim.Kernel) bool { return !d.Client("r0").Busy() }, 400_000)
	res := d.Client("r0").Results()[rotID]
	if res == nil || !res.OK() {
		t.Fatalf("ROT failed: %v", res)
	}
	v0, v1 := res.Value("X0"), res.Value("X1")
	if (v0 == "n0") != (v1 == "n1") {
		t.Fatalf("mixed read escaped the retry protocol: %v", res.Values)
	}
	if res.Rounds < 2 {
		t.Fatalf("saw pending-affected snapshot without retrying: rounds=%d values=%v", res.Rounds, res.Values)
	}
}

func TestWriteIsTwoPhase(t *testing.T) {
	d := ptest.Deploy(t, eiger.New(), ptest.Expect{}, 107)
	res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "w0"}, model.Write{Object: "X1", Value: "w1"}), 400_000)
	if !res.OK() || res.Rounds != 2 {
		t.Fatalf("write rounds = %d, want 2", res.Rounds)
	}
}

// TestLoadConformance: expected-failing. The model's read protocol
// ignores the second-round At timestamp, so a reader straddling a
// multi-server commit can observe half of it under concurrent load; see
// the ROADMAP item "Eiger fractures atomic visibility under concurrent
// load". The suite skips when the fracture manifests.
func TestLoadConformance(t *testing.T) {
	ptest.RunLoad(t, eiger.New(), ptest.Expect{
		LoadTxns:     96,
		FractureNote: "ROADMAP: Eiger fractures atomic visibility under concurrent load — second-round read-at-time not implemented",
	})
}

package eiger_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/protocols/eiger"
	"repro/internal/protocols/ptest"
	"repro/internal/sim"
)

func TestConformance(t *testing.T) {
	ptest.Run(t, eiger.New(), ptest.Expect{
		ROTRounds:  1, // happy path; retries under pending commits
		Blocking:   false,
		MultiWrite: true,
		Causal:     true,
	})
}

// TestRetryResolvesPendingCommit: the ROT races a write transaction whose
// commit reaches s1 before s0. Round 1 observes new X1 and old X0 with a
// pending marker; the client must keep re-polling (not return the mixed
// pair) until the commit lands at s0.
func TestRetryResolvesPendingCommit(t *testing.T) {
	d := ptest.Deploy(t, eiger.New(), ptest.Expect{}, 103)
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "n0"}, model.Write{Object: "X1", Value: "n1"}))
	d.Kernel.StepProcess("c0")
	// Prepare at both, acks back, commits out; deliver commit only to s1.
	for _, s := range []sim.ProcessID{"s0", "s1"} {
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: s}) {
			d.Kernel.Deliver(m.ID)
		}
		d.Kernel.StepProcess(s)
	}
	for _, s := range []sim.ProcessID{"s0", "s1"} {
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: s, To: "c0"}) {
			d.Kernel.Deliver(m.ID)
		}
	}
	d.Kernel.StepProcess("c0")
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: "s1"}) {
		d.Kernel.Deliver(m.ID)
	}
	d.Kernel.StepProcess("s1")

	// Run the ROT with the commit to s0 frozen: round 1 observes new X1
	// and old X0 with a pending marker, so the client must keep retrying
	// instead of returning the mixed pair.
	rotID := d.Invoke("r0", model.NewReadOnly(model.TxnID{}, "X0", "X1"))
	frozen := &sim.RoundRobin{Only: sim.Restrict("r0", "s0", "s1")}
	sim.Run(d.Kernel, frozen, func(*sim.Kernel) bool { return !d.Client("r0").Busy() }, 300)
	if !d.Client("r0").Busy() {
		res := d.Client("r0").Results()[rotID]
		v0, v1 := res.Value("X0"), res.Value("X1")
		if (v0 == "n0") != (v1 == "n1") {
			t.Fatalf("mixed read escaped the retry protocol: %v", res.Values)
		}
	}

	// Release the commit; the ROT must now complete consistently and the
	// retry rounds must be visible.
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: "s0"}) {
		d.Kernel.Deliver(m.ID)
	}
	sim.Run(d.Kernel, &sim.RoundRobin{}, func(*sim.Kernel) bool { return !d.Client("r0").Busy() }, 400_000)
	res := d.Client("r0").Results()[rotID]
	if res == nil || !res.OK() {
		t.Fatalf("ROT failed: %v", res)
	}
	v0, v1 := res.Value("X0"), res.Value("X1")
	if (v0 == "n0") != (v1 == "n1") {
		t.Fatalf("mixed read escaped the retry protocol: %v", res.Values)
	}
	if res.Rounds < 2 {
		t.Fatalf("saw pending-affected snapshot without retrying: rounds=%d values=%v", res.Rounds, res.Values)
	}
}

func TestWriteIsTwoPhase(t *testing.T) {
	d := ptest.Deploy(t, eiger.New(), ptest.Expect{}, 107)
	res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "w0"}, model.Write{Object: "X1", Value: "w1"}), 400_000)
	if !res.OK() || res.Rounds != 2 {
		t.Fatalf("write rounds = %d, want 2", res.Rounds)
	}
}

// TestLoadConformance: eiger must certify clean under concurrent load on
// both stepping engines. The second-round read-at-time (server honors the
// At timestamp, client settles on SafeT/PendingBelow at the effective
// time) closed the straddling-read fracture that used to make this suite
// expected-failing; TestReadAtTimeClosesStraddlingRead pins the exact
// schedule that fractured.
func TestLoadConformance(t *testing.T) {
	ptest.RunLoad(t, eiger.New(), ptest.Expect{
		LoadTxns: 96,
	})
}

// TestReadAtTimeClosesStraddlingRead pins the schedule that used to
// fracture atomic visibility: a reader whose round-1 request reaches s0
// BEFORE the writer's prepare even arrives there (so s0 reports no
// pending marker at all) while its request to s1 arrives after the
// commit. The old protocol saw no pending marker, skipped the retry and
// returned the mixed pair; read-at-time forces a second round at the
// effective time, which cannot settle at s0 until the commit lands.
func TestReadAtTimeClosesStraddlingRead(t *testing.T) {
	d := ptest.Deploy(t, eiger.New(), ptest.Expect{}, 109)

	// Writer c0: multi-server write {X0=n0, X1=n1}.
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "n0"}, model.Write{Object: "X1", Value: "n1"}))
	d.Kernel.StepProcess("c0")

	// Reader r0 fires its round-1 reads NOW: both requests are in flight
	// before any prepare has been delivered.
	rotID := d.Invoke("r0", model.NewReadOnly(model.TxnID{}, "X0", "X1"))
	d.Kernel.StepProcess("r0")

	// Deliver r0's round-1 request to s0 first: s0 has no pending marker
	// and answers with the old X0 and PendingBelow = 0.
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "r0", To: "s0"}) {
		d.Kernel.Deliver(m.ID)
	}
	d.Kernel.StepProcess("s0")

	// Now run the write to completion: prepares, acks, commits at both.
	for _, s := range []sim.ProcessID{"s0", "s1"} {
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: s}) {
			d.Kernel.Deliver(m.ID)
		}
		d.Kernel.StepProcess(s)
	}
	for _, s := range []sim.ProcessID{"s0", "s1"} {
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: s, To: "c0"}) {
			d.Kernel.Deliver(m.ID)
		}
	}
	d.Kernel.StepProcess("c0") // send commits
	for _, s := range []sim.ProcessID{"s0", "s1"} {
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: s}) {
			d.Kernel.Deliver(m.ID)
		}
		d.Kernel.StepProcess(s)
	}

	// Only now deliver r0's round-1 request to s1: it answers with the
	// NEW X1 at the commit timestamp. Round 1 is now a mixed snapshot
	// with no pending marker anywhere.
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "r0", To: "s1"}) {
		d.Kernel.Deliver(m.ID)
	}
	d.Kernel.StepProcess("s1")

	// Let the ROT finish: the read-at-time second round must repair X0.
	sim.Run(d.Kernel, &sim.RoundRobin{}, func(*sim.Kernel) bool { return !d.Client("r0").Busy() }, 400_000)
	res := d.Client("r0").Results()[rotID]
	if res == nil || !res.OK() {
		t.Fatalf("ROT did not complete: %v", res)
	}
	v0, v1 := res.Value("X0"), res.Value("X1")
	if (v0 == "n0") != (v1 == "n1") {
		t.Fatalf("straddling read fractured the write: X0=%v X1=%v", v0, v1)
	}
	if v1 != "n1" {
		t.Fatalf("round 1 was scheduled after the commit at s1, want new X1: %v", res.Values)
	}
	if res.Rounds < 2 {
		t.Fatalf("mixed round-1 snapshot settled without a read-at-time round: rounds=%d values=%v",
			res.Rounds, res.Values)
	}
}

// TestFaultConformance certifies the standard persistent crash+restart
// and partition+heal nemesis sweeps on both stepping engines
// (ptest.RunFaults semantics).
func TestFaultConformance(t *testing.T) {
	ptest.RunFaults(t, eiger.New(), ptest.Expect{})
}

// TestReconfigConformance certifies the standard replica-replacement and
// whole-cluster-restore sweeps on both stepping engines (ptest.RunReconfig
// semantics): non-lossy reconfiguration must lose nothing.
func TestReconfigConformance(t *testing.T) {
	ptest.RunReconfig(t, eiger.New(), ptest.Expect{})
}

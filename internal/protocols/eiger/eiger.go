// Package eiger models Eiger (Lloyd et al., NSDI 2013): causally
// consistent multi-object write transactions via two-phase commit with
// commit-invisible pending versions (2PC-CI), plus non-blocking read-only
// transactions that take up to three rounds: round 1 fetches the latest
// visible values, pending markers and each server's clock; the client
// computes the effective time (the newest fetched commit timestamp) and,
// unless every server certified its answer at that time, re-requests the
// snapshot AT the effective time — servers observe it into their clocks
// and serve the read-at-time definitively once nothing prepared at or
// below it is still pending (the client re-polls, bounded, until the
// pending commit lands). Logical Lamport timestamps order commits.
package eiger

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/vclock"
)

// MaxReadRounds bounds ROT retries. Real Eiger resolves a pending
// transaction in at most 3 rounds by asking the pending transaction's
// coordinator for its commit decision; our model has no server-side
// coordinator, so the client simply re-polls until the commit lands
// (guaranteed in every legal execution, where all messages are delivered).
// The bound is a safety valve against pathological schedules.
const MaxReadRounds = 64

// tieBreak derives a deterministic per-transaction logical component
// (FNV-1a of the transaction ID) for the commit stamp. Two transactions
// can commit at the same Lamport wall time — ticked by different servers
// — and the store's stamp-tie fallback is per-server install order, which
// is NOT uniform across servers: a reader could then see the tie resolve
// differently at each primary and observe half of each transaction. Real
// Eiger orders commits by (timestamp, coordinator id); the logical field
// plays that role here.
func tieBreak(tid model.TxnID) int64 {
	h := uint64(1469598103934665603)
	for _, b := range []byte(tid.String()) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int64(h & (1<<62 - 1))
}

// Protocol is the eiger factory.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Name implements protocol.Protocol.
func (*Protocol) Name() string { return "eiger" }

// Claims implements protocol.Protocol.
func (*Protocol) Claims() protocol.Claims {
	return protocol.Claims{
		OneRound:      false, // ≤ 3
		OneValue:      true,
		NonBlocking:   true,
		MultiWriteTxn: true,
		Consistency:   "causal",
	}
}

// NewServer implements protocol.Protocol.
func (*Protocol) NewServer(id sim.ProcessID, pl *protocol.Placement) sim.Process {
	return &server{
		id: id, pl: pl, st: store.New(pl.HostedBy(id)...),
		clock: &vclock.Lamport{}, pending: make(map[model.TxnID]int64),
	}
}

// NewClient implements protocol.Protocol.
func (*Protocol) NewClient(id sim.ProcessID, pl *protocol.Placement) protocol.Client {
	return &client{Core: protocol.NewCore(id, pl)}
}

// --- payloads ---

type readReq struct {
	TID  model.TxnID
	Objs []string
	// At > 0 requests values at the given effective time (retry rounds).
	At int64
}

func (p *readReq) Kind() string               { return "read-req" }
func (p *readReq) Clone() sim.Payload         { c := *p; c.Objs = append([]string(nil), p.Objs...); return &c }
func (p *readReq) Txn() model.TxnID           { return p.TID }
func (p *readReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type readVal struct {
	Ref model.ValueRef
	TS  int64
	// PendingBelow is the smallest pending-prepare timestamp on the
	// object's server (0 = none): a value with TS < effective time while
	// PendingBelow ≤ effective time may be superseded.
	PendingBelow int64
	// SafeT is the server's Lamport clock when it answered. Any write
	// transaction that prepares at the server after this response will
	// commit with a timestamp strictly above SafeT (its prepare ack ticks
	// past the clock and the commit timestamp is the max over acks), so a
	// value accompanied by SafeT ≥ eff and no pending prepare at or below
	// eff is provably the value at effective time eff.
	SafeT int64
}

type readResp struct {
	TID  model.TxnID
	Vals []readVal
}

func (p *readResp) Kind() string { return "read-resp" }
func (p *readResp) Clone() sim.Payload {
	c := *p
	c.Vals = append([]readVal(nil), p.Vals...)
	return &c
}
func (p *readResp) Txn() model.TxnID           { return p.TID }
func (p *readResp) PayloadRole() protocol.Role { return protocol.RoleReadResp }
func (p *readResp) CarriedValues() []model.ValueRef {
	out := make([]model.ValueRef, 0, len(p.Vals))
	for _, v := range p.Vals {
		if v.Ref.Value != model.Bottom {
			out = append(out, v.Ref)
		}
	}
	return out
}

type prepareReq struct {
	TID    model.TxnID
	Writes []model.Write
	DepTS  int64
}

func (p *prepareReq) Kind() string { return "prepare" }
func (p *prepareReq) Clone() sim.Payload {
	c := *p
	c.Writes = append([]model.Write(nil), p.Writes...)
	return &c
}
func (p *prepareReq) Txn() model.TxnID           { return p.TID }
func (p *prepareReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type prepareAck struct {
	TID model.TxnID
	TS  int64
}

func (p *prepareAck) Kind() string               { return "prepare-ack" }
func (p *prepareAck) Clone() sim.Payload         { c := *p; return &c }
func (p *prepareAck) Txn() model.TxnID           { return p.TID }
func (p *prepareAck) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

type commitReq struct {
	TID model.TxnID
	TS  int64
}

func (p *commitReq) Kind() string               { return "commit" }
func (p *commitReq) Clone() sim.Payload         { c := *p; return &c }
func (p *commitReq) Txn() model.TxnID           { return p.TID }
func (p *commitReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type commitAck struct {
	TID model.TxnID
	TS  int64
}

func (p *commitAck) Kind() string               { return "commit-ack" }
func (p *commitAck) Clone() sim.Payload         { c := *p; return &c }
func (p *commitAck) Txn() model.TxnID           { return p.TID }
func (p *commitAck) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

// --- server ---

type server struct {
	id      sim.ProcessID
	pl      *protocol.Placement
	st      *store.Store
	clock   *vclock.Lamport
	pending map[model.TxnID]int64
}

func (s *server) ID() sim.ProcessID { return s.id }
func (s *server) Ready() bool       { return false }

func (s *server) Clone() sim.Process {
	c := &server{id: s.id, pl: s.pl, st: s.st.Clone(), clock: s.clock.Clone(),
		pending: make(map[model.TxnID]int64, len(s.pending))}
	for k, v := range s.pending {
		c.pending[k] = v
	}
	return c
}

func (s *server) minPending() int64 {
	min := int64(0)
	for _, ts := range s.pending {
		if min == 0 || ts < min {
			min = ts
		}
	}
	return min
}

func (s *server) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *readReq:
			// Second-round read-at-time: the client requests the snapshot at
			// its computed effective time. Observing At pushes the clock past
			// it, so after this response every future prepare at this server
			// acks above At — the answer is definitive unless an already-
			// pending prepare at or below At could still commit under it
			// (reported via PendingBelow; the client re-polls until it
			// lands).
			at := int64(1 << 62)
			if p.At > 0 {
				s.clock.Observe(p.At)
				at = p.At
			}
			resp := &readResp{TID: p.TID}
			for _, obj := range p.Objs {
				// Logical ceiling: a read at eff includes every commit whose
				// wall time is exactly eff, whatever its tie-break.
				v := s.st.SnapshotRead(obj, vclock.HLCStamp{Wall: at, Logical: 1 << 62})
				if v == nil {
					resp.Vals = append(resp.Vals, readVal{
						Ref:          model.ValueRef{Object: obj, Value: model.Bottom},
						PendingBelow: s.minPending(),
						SafeT:        s.clock.T,
					})
					continue
				}
				resp.Vals = append(resp.Vals, readVal{
					Ref:          model.ValueRef{Object: obj, Value: v.Value, Writer: v.Writer},
					TS:           v.Stamp.Wall,
					PendingBelow: s.minPending(),
					SafeT:        s.clock.T,
				})
			}
			out = append(out, sim.Outbound{To: m.From, Payload: resp})
		case *prepareReq:
			s.clock.Observe(p.DepTS)
			ts := s.clock.Tick()
			s.pending[p.TID] = ts
			for _, w := range p.Writes {
				s.st.Install(&store.Version{Object: w.Object, Value: w.Value, Writer: p.TID,
					Stamp: vclock.HLCStamp{Wall: ts}})
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &prepareAck{TID: p.TID, TS: ts}})
		case *commitReq:
			s.clock.Observe(p.TS)
			delete(s.pending, p.TID)
			for _, obj := range s.st.Objects() {
				if v := s.st.Find(obj, p.TID); v != nil {
					v.Stamp = vclock.HLCStamp{Wall: p.TS, Logical: tieBreak(p.TID)}
					v.Visible = true
				}
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &commitAck{TID: p.TID, TS: p.TS}})
		default:
			panic(fmt.Sprintf("eiger: server %s got %T", s.id, m.Payload))
		}
	}
	return out
}

// --- client ---

type phase uint8

const (
	idle phase = iota
	reading
	preparing
	committing
)

type client struct {
	protocol.Core
	phase    phase
	pending  int
	depTS    int64
	commitTS int64
	rounds   int
	writeTo  []sim.ProcessID
	got      map[string]readVal
}

func (c *client) Clone() sim.Process {
	cp := &client{Core: c.CloneCore(), phase: c.phase, pending: c.pending,
		depTS: c.depTS, commitTS: c.commitTS, rounds: c.rounds}
	cp.writeTo = append([]sim.ProcessID(nil), c.writeTo...)
	if c.got != nil {
		cp.got = make(map[string]readVal, len(c.got))
		for k, v := range c.got {
			cp.got[k] = v
		}
	}
	return cp
}

func (c *client) Ready() bool { return c.Busy() && !c.Started() }

func (c *client) sendReads(at int64) []sim.Outbound {
	var out []sim.Outbound
	t := c.Current()
	readsBy := make(map[sim.ProcessID][]string)
	for _, obj := range t.ReadSet {
		p := c.Placement().PrimaryOf(obj)
		readsBy[p] = append(readsBy[p], obj)
	}
	srvs := make([]sim.ProcessID, 0, len(readsBy))
	for srv := range readsBy {
		srvs = append(srvs, srv)
	}
	sort.Slice(srvs, func(i, j int) bool { return srvs[i] < srvs[j] })
	for _, srv := range srvs {
		out = append(out, sim.Outbound{To: srv, Payload: &readReq{TID: t.ID, Objs: readsBy[srv], At: at}})
		c.pending++
	}
	c.SentRound()
	c.rounds++
	return out
}

// effTime is the transaction's effective time: the newest commit
// timestamp among the fetched values (Eiger's "effective time" of the
// read-only transaction).
func (c *client) effTime() int64 {
	eff := int64(0)
	for _, v := range c.got {
		if v.TS > eff {
			eff = v.TS
		}
	}
	return eff
}

// settled reports whether every fetched value is provably the value at
// the effective time: the answering server's clock had passed eff (so no
// later-prepared transaction can commit at or below it) and no prepare
// pending at or below eff could still commit underneath. Both checks are
// required even when a value's own timestamp equals eff — two concurrent
// transactions can tie at eff, and the tie loser may still be pending at
// one server while the winner is visible at another.
func (c *client) settled(eff int64) bool {
	for _, v := range c.got {
		if v.SafeT < eff {
			return false
		}
		if v.PendingBelow > 0 && v.PendingBelow <= eff {
			return false
		}
	}
	return true
}

func (c *client) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		if !c.Busy() {
			continue
		}
		switch p := m.Payload.(type) {
		case *readResp:
			if p.TID == c.Current().ID && c.phase == reading {
				for _, v := range p.Vals {
					if cur, fetched := c.got[v.Ref.Object]; !fetched || v.TS >= cur.TS {
						c.got[v.Ref.Object] = v
					}
				}
				c.pending--
			}
		case *prepareAck:
			if p.TID == c.Current().ID && c.phase == preparing {
				if p.TS > c.commitTS {
					c.commitTS = p.TS
				}
				c.pending--
			}
		case *commitAck:
			if p.TID == c.Current().ID && c.phase == committing {
				c.pending--
			}
		}
	}
	if c.Starting(now) {
		t := c.Current()
		if len(t.Writes) > 0 && len(t.ReadSet) > 0 {
			c.Reject(now, "eiger: read-write transactions unsupported in this model")
			return out
		}
		if t.IsReadOnly() {
			c.phase = reading
			c.rounds = 0
			c.got = make(map[string]readVal)
			out = append(out, c.sendReads(0)...)
		} else {
			c.phase = preparing
			c.commitTS = 0
			writesBy := make(map[sim.ProcessID][]model.Write)
			for _, w := range t.Writes {
				for _, srv := range c.Placement().ReplicasOf(w.Object) {
					writesBy[srv] = append(writesBy[srv], w)
				}
			}
			srvs := make([]sim.ProcessID, 0, len(writesBy))
			for srv := range writesBy {
				srvs = append(srvs, srv)
			}
			sort.Slice(srvs, func(i, j int) bool { return srvs[i] < srvs[j] })
			c.writeTo = srvs
			for _, srv := range srvs {
				out = append(out, sim.Outbound{To: srv, Payload: &prepareReq{
					TID: t.ID, Writes: writesBy[srv], DepTS: c.depTS,
				}})
				c.pending++
			}
			c.SentRound()
		}
		return out
	}
	if c.Busy() && c.Started() && c.pending == 0 {
		t := c.Current()
		switch c.phase {
		case reading:
			if eff := c.effTime(); eff > 0 && !c.settled(eff) && c.rounds < MaxReadRounds {
				// Second round, read-at-time: re-request the snapshot at the
				// effective time. The servers observe eff into their clocks,
				// so the retry either settles every object at eff or keeps
				// re-polling while a prepare at or below eff is pending.
				out = append(out, c.sendReads(eff)...)
				return out
			}
			for _, obj := range t.ReadSet {
				v := c.got[obj]
				c.Result().Values[obj] = v.Ref.Value
				if v.TS > c.depTS {
					c.depTS = v.TS
				}
			}
			c.phase = idle
			c.got = nil
			c.Finish(now)
		case preparing:
			c.phase = committing
			for _, srv := range c.writeTo {
				out = append(out, sim.Outbound{To: srv, Payload: &commitReq{TID: t.ID, TS: c.commitTS}})
				c.pending++
			}
			c.SentRound()
		case committing:
			if c.commitTS > c.depTS {
				c.depTS = c.commitTS
			}
			c.phase = idle
			c.writeTo = nil
			c.Finish(now)
		}
	}
	return out
}

// ShardStore exposes the durable version store for the reconfiguration
// layer's generic catch-up (protocol.StoreCarrier): a replacement server
// adopts missing versions from live peer replicas before serving.
func (s *server) ShardStore() *store.Store { return s.st }

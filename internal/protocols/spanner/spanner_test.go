package spanner_test

import (
	"testing"

	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/protocols/ptest"
	"repro/internal/protocols/spanner"
	"repro/internal/sim"
)

func TestConformance(t *testing.T) {
	ptest.Run(t, spanner.New(), ptest.Expect{
		ROTRounds:  1,
		Blocking:   true, // safe-time waits
		MultiWrite: true,
		Causal:     true, // strict serializability implies causal
	})
}

// TestStrictSerializability: concurrent transactions under random
// schedules must produce strictly serializable histories — the TrueTime
// commit-wait is what buys this.
func TestStrictSerializability(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		d := ptest.Deploy(t, spanner.New(), ptest.Expect{}, seed*1000)
		h := history.New(d.Initials())
		sched := sim.NewRandom(seed)
		phase := func(invs map[sim.ProcessID]*model.Txn) {
			ids := make(map[sim.ProcessID]model.TxnID)
			for c, txn := range invs {
				ids[c] = d.Invoke(c, txn)
			}
			sim.Run(d.Kernel, sched, func(*sim.Kernel) bool {
				for c := range invs {
					if d.Client(c).Busy() {
						return false
					}
				}
				return true
			}, 400_000)
			for c := range invs {
				res := d.Client(c).Results()[ids[c]]
				if res == nil {
					t.Fatalf("seed %d: txn at %s incomplete", seed, c)
				}
				if res.OK() {
					h.AddResult(res)
				}
			}
		}
		phase(map[sim.ProcessID]*model.Txn{
			"c0": model.NewWriteOnly(model.TxnID{},
				model.Write{Object: "X0", Value: model.Value("a0")},
				model.Write{Object: "X1", Value: model.Value("a1")}),
			"c1": model.NewReadOnly(model.TxnID{}, "X0", "X1"),
		})
		phase(map[sim.ProcessID]*model.Txn{
			"c0": model.NewReadOnly(model.TxnID{}, "X0", "X1"),
			"c1": model.NewWriteOnly(model.TxnID{},
				model.Write{Object: "X0", Value: model.Value("b0")},
				model.Write{Object: "X1", Value: model.Value("b1")}),
			"c2": model.NewReadOnly(model.TxnID{}, "X1"),
		})
		phase(map[sim.ProcessID]*model.Txn{
			"c1": model.NewReadOnly(model.TxnID{}, "X0", "X1"),
			"c2": model.NewReadOnly(model.TxnID{}, "X0"),
		})
		if v := history.CheckStrictSerializable(h); !v.OK {
			t.Fatalf("seed %d: not strictly serializable: %s\n%s", seed, v.Reason, h)
		}
	}
}

// TestReadsNeverReturnMixedTransaction: even with adversarial partial
// commit delivery, the safe-time rule prevents a reader from observing a
// half-committed transaction.
func TestReadsNeverReturnMixedTransaction(t *testing.T) {
	d := ptest.Deploy(t, spanner.New(), ptest.Expect{}, 91)
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "n0"}, model.Write{Object: "X1", Value: "n1"}))
	d.Kernel.StepProcess("c0")
	// Deliver prepares everywhere, acks back, commits out — but deliver
	// the commit only at s1.
	for _, s := range []sim.ProcessID{"s0", "s1"} {
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: s}) {
			d.Kernel.Deliver(m.ID)
		}
		d.Kernel.StepProcess(s)
	}
	for _, s := range []sim.ProcessID{"s0", "s1"} {
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: s, To: "c0"}) {
			d.Kernel.Deliver(m.ID)
		}
	}
	d.Kernel.StepProcess("c0")
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: "s1"}) {
		d.Kernel.Deliver(m.ID)
	}
	d.Kernel.StepProcess("s1")

	// A reader now probes with thaw allowed (spanner reads block): s0
	// still has the prepare pending, so the read at the snapshot must
	// wait for the commit — it cannot return a mixed result. With the
	// commit to s0 frozen forever, the probe must NOT complete.
	res := d.Probe("r0", []string{"X0", "X1"}, []sim.ProcessID{"s0", "s1"}, true)
	if res != nil {
		v0, v1 := res.Value("X0"), res.Value("X1")
		if (v0 == "n0") != (v1 == "n1") {
			t.Fatalf("mixed read despite safe-time rule: %v", res.Values)
		}
	}
}

// TestLoadConformance certifies concurrent closed- and open-loop driver
// sweeps at the claimed consistency level.
func TestLoadConformance(t *testing.T) {
	ptest.RunLoad(t, spanner.New(), ptest.Expect{LoadTxns: 96})
}

// TestFaultConformance certifies the standard persistent crash+restart
// and partition+heal nemesis sweeps on both stepping engines
// (ptest.RunFaults semantics).
func TestFaultConformance(t *testing.T) {
	ptest.RunFaults(t, spanner.New(), ptest.Expect{})
}

// TestReconfigConformance certifies the standard replica-replacement and
// whole-cluster-restore sweeps on both stepping engines (ptest.RunReconfig
// semantics): non-lossy reconfiguration must lose nothing.
func TestReconfigConformance(t *testing.T) {
	ptest.RunReconfig(t, spanner.New(), ptest.Expect{})
}

// Package spanner models Spanner (Corbett et al., OSDI 2012), the paper's
// O+V+W corner: one-round, one-value read-only transactions with full
// multi-object write transactions and strict serializability — at the
// price of the non-blocking property. The enabling assumption the paper
// highlights is tightly synchronized physical clocks: TrueTime exposes a
// bounded clock uncertainty ε, commit timestamps respect real time via
// commit-wait, and reads at a chosen timestamp block until the server's
// safe time passes it.
//
// The simulation gives every process a deterministic clock skew in
// [-ε, +ε] over the kernel's virtual time; TrueTime intervals are
// [local-ε, local+ε], so true time is always inside the interval.
package spanner

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/vclock"
)

// Epsilon is the TrueTime uncertainty bound (virtual microseconds). It is
// deliberately larger than the kernel's default link latency so that
// uncertainty waits are visible in the simulation: reads at TT.now().latest
// genuinely block until safe time passes, and commit-wait genuinely delays
// write completion — the costs Table 1 attributes to the R+V+W corner.
const Epsilon int64 = 2500

// skewOf derives a deterministic per-process clock skew in [-ε, +ε].
func skewOf(id sim.ProcessID) int64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return int64(h%uint64(2*Epsilon+1)) - Epsilon
}

// Protocol is the spanner factory.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Name implements protocol.Protocol.
func (*Protocol) Name() string { return "spanner" }

// Claims implements protocol.Protocol.
func (*Protocol) Claims() protocol.Claims {
	return protocol.Claims{
		OneRound:      true,
		OneValue:      true,
		NonBlocking:   false,
		MultiWriteTxn: true,
		Consistency:   "strict-serializable",
	}
}

// NewServer implements protocol.Protocol.
func (*Protocol) NewServer(id sim.ProcessID, pl *protocol.Placement) sim.Process {
	return &server{
		id: id, pl: pl, st: store.New(pl.HostedBy(id)...),
		skew:    skewOf(id),
		pending: make(map[model.TxnID]int64),
	}
}

// NewClient implements protocol.Protocol.
func (*Protocol) NewClient(id sim.ProcessID, pl *protocol.Placement) protocol.Client {
	return &client{Core: protocol.NewCore(id, pl), skew: skewOf(id)}
}

// --- payloads ---

type readReq struct {
	TID  model.TxnID
	Objs []string
	TS   int64 // read timestamp (TT.now().latest at the client)
}

func (p *readReq) Kind() string               { return "read-req" }
func (p *readReq) Clone() sim.Payload         { c := *p; c.Objs = append([]string(nil), p.Objs...); return &c }
func (p *readReq) Txn() model.TxnID           { return p.TID }
func (p *readReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type readResp struct {
	TID  model.TxnID
	Vals []model.ValueRef
}

func (p *readResp) Kind() string { return "read-resp" }
func (p *readResp) Clone() sim.Payload {
	c := *p
	c.Vals = append([]model.ValueRef(nil), p.Vals...)
	return &c
}
func (p *readResp) Txn() model.TxnID                { return p.TID }
func (p *readResp) PayloadRole() protocol.Role      { return protocol.RoleReadResp }
func (p *readResp) CarriedValues() []model.ValueRef { return p.Vals }

type prepareReq struct {
	TID    model.TxnID
	Writes []model.Write
}

func (p *prepareReq) Kind() string { return "prepare" }
func (p *prepareReq) Clone() sim.Payload {
	c := *p
	c.Writes = append([]model.Write(nil), p.Writes...)
	return &c
}
func (p *prepareReq) Txn() model.TxnID           { return p.TID }
func (p *prepareReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type prepareAck struct {
	TID model.TxnID
	TS  int64 // prepare timestamp proposal
}

func (p *prepareAck) Kind() string               { return "prepare-ack" }
func (p *prepareAck) Clone() sim.Payload         { c := *p; return &c }
func (p *prepareAck) Txn() model.TxnID           { return p.TID }
func (p *prepareAck) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

type commitReq struct {
	TID model.TxnID
	TS  int64 // commit timestamp
}

func (p *commitReq) Kind() string               { return "commit" }
func (p *commitReq) Clone() sim.Payload         { c := *p; return &c }
func (p *commitReq) Txn() model.TxnID           { return p.TID }
func (p *commitReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type commitAck struct {
	TID model.TxnID
}

func (p *commitAck) Kind() string               { return "commit-ack" }
func (p *commitAck) Clone() sim.Payload         { c := *p; return &c }
func (p *commitAck) Txn() model.TxnID           { return p.TID }
func (p *commitAck) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

// --- server ---

type deferredRead struct {
	From sim.ProcessID
	Req  *readReq
}

type server struct {
	id      sim.ProcessID
	pl      *protocol.Placement
	st      *store.Store
	skew    int64
	pending map[model.TxnID]int64 // prepared-but-uncommitted timestamps
	parked  []deferredRead        // reads waiting for safe time
	lastTS  int64                 // monotonicity guard for prepare stamps
}

func (s *server) ID() sim.ProcessID { return s.id }

// Ready keeps the server schedulable while reads are parked: stepping it
// advances virtual time, which advances its safe time.
func (s *server) Ready() bool { return len(s.parked) > 0 }

// WakeAt implements sim.Waker: the earliest instant at which some parked
// read becomes serveable by the passage of time alone (safe time is
// now+skew-ε when nothing is prepared below the read timestamp). Reads
// blocked behind a prepared-but-uncommitted transaction need the commit
// delivery, not time, and do not contribute a wake instant.
func (s *server) WakeAt(now sim.Time) (sim.Time, bool) {
	minPending := int64(1)<<62 - 1
	for _, ts := range s.pending {
		if ts-1 < minPending {
			minPending = ts - 1
		}
	}
	var wake sim.Time
	ok := false
	for _, d := range s.parked {
		if d.Req.TS > minPending {
			continue // a pending prepare caps safe time below this read
		}
		t := sim.Time(d.Req.TS - s.skew + Epsilon)
		if !ok || t < wake {
			wake, ok = t, true
		}
	}
	if ok && wake < now {
		wake = now
	}
	return wake, ok
}

func (s *server) Clone() sim.Process {
	c := &server{
		id: s.id, pl: s.pl, st: s.st.Clone(), skew: s.skew, lastTS: s.lastTS,
		pending: make(map[model.TxnID]int64, len(s.pending)),
	}
	for k, v := range s.pending {
		c.pending[k] = v
	}
	for _, d := range s.parked {
		cp := *d.Req
		c.parked = append(c.parked, deferredRead{From: d.From, Req: &cp})
	}
	return c
}

// safeTime is the largest timestamp at which reads are complete: nothing
// can commit below it anymore.
func (s *server) safeTime(now sim.Time) int64 {
	safe := int64(now) + s.skew - Epsilon
	for _, ts := range s.pending {
		if ts-1 < safe {
			safe = ts - 1
		}
	}
	return safe
}

func (s *server) serveRead(from sim.ProcessID, req *readReq) sim.Outbound {
	resp := &readResp{TID: req.TID}
	for _, obj := range req.Objs {
		if v := s.st.SnapshotRead(obj, vclock.HLCStamp{Wall: req.TS}); v != nil {
			resp.Vals = append(resp.Vals, model.ValueRef{Object: obj, Value: v.Value, Writer: v.Writer})
		} else {
			resp.Vals = append(resp.Vals, model.ValueRef{Object: obj, Value: model.Bottom})
		}
	}
	return sim.Outbound{To: from, Payload: resp}
}

func (s *server) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *readReq:
			if s.safeTime(now) >= p.TS {
				out = append(out, s.serveRead(m.From, p))
			} else {
				// Blocking: park until safe time catches up.
				s.parked = append(s.parked, deferredRead{From: m.From, Req: p})
			}
		case *prepareReq:
			ts := int64(now) + s.skew + Epsilon
			if ts <= s.lastTS {
				ts = s.lastTS + 1
			}
			s.lastTS = ts
			s.pending[p.TID] = ts
			for _, w := range p.Writes {
				s.st.Install(&store.Version{Object: w.Object, Value: w.Value, Writer: p.TID})
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &prepareAck{TID: p.TID, TS: ts}})
		case *commitReq:
			delete(s.pending, p.TID)
			for _, obj := range s.st.Objects() {
				if v := s.st.Find(obj, p.TID); v != nil {
					v.Stamp = vclock.HLCStamp{Wall: p.TS}
					v.Visible = true
				}
			}
			if p.TS > s.lastTS {
				s.lastTS = p.TS
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &commitAck{TID: p.TID}})
		default:
			panic(fmt.Sprintf("spanner: server %s got %T", s.id, m.Payload))
		}
	}
	// Un-park reads whose timestamp is now safe.
	if len(s.parked) > 0 {
		var still []deferredRead
		for _, d := range s.parked {
			if s.safeTime(now) >= d.Req.TS {
				out = append(out, s.serveRead(d.From, d.Req))
			} else {
				still = append(still, d)
			}
		}
		s.parked = still
	}
	return out
}

// --- client ---

type phase uint8

const (
	idle phase = iota
	reading
	preparing
	committing
	commitWait
)

type client struct {
	protocol.Core
	skew     int64
	phase    phase
	pending  int
	commitTS int64
	writeTo  []sim.ProcessID
}

func (c *client) Clone() sim.Process {
	cp := &client{Core: c.CloneCore(), skew: c.skew, phase: c.phase, pending: c.pending, commitTS: c.commitTS}
	cp.writeTo = append([]sim.ProcessID(nil), c.writeTo...)
	return cp
}

// Ready: commit-wait needs steps to observe time passing.
func (c *client) Ready() bool {
	return c.Busy() && (!c.Started() || c.phase == commitWait)
}

// WakeAt implements sim.Waker: a fresh transaction is useful immediately;
// commit-wait completes once TT.now().earliest passes the commit
// timestamp, i.e. at commitTS - skew + ε + 1.
func (c *client) WakeAt(now sim.Time) (sim.Time, bool) {
	if !c.Busy() {
		return 0, false
	}
	if !c.Started() {
		return now, true
	}
	if c.phase == commitWait {
		t := sim.Time(c.commitTS - c.skew + Epsilon + 1)
		if t < now {
			t = now
		}
		return t, true
	}
	return 0, false
}

func (c *client) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		if !c.Busy() {
			continue
		}
		switch p := m.Payload.(type) {
		case *readResp:
			if p.TID == c.Current().ID && c.phase == reading {
				for _, vr := range p.Vals {
					c.Result().Values[vr.Object] = vr.Value
				}
				c.pending--
			}
		case *prepareAck:
			if p.TID == c.Current().ID && c.phase == preparing {
				if p.TS > c.commitTS {
					c.commitTS = p.TS
				}
				c.pending--
			}
		case *commitAck:
			if p.TID == c.Current().ID && c.phase == committing {
				c.pending--
			}
		}
	}
	if c.Starting(now) {
		t := c.Current()
		pl := c.Placement()
		if len(t.Writes) > 0 && len(t.ReadSet) > 0 {
			c.Reject(now, "spanner: read-write transactions unsupported in this model")
			return out
		}
		if t.IsReadOnly() {
			c.phase = reading
			ts := int64(now) + c.skew + Epsilon // TT.now().latest
			readsBy := make(map[sim.ProcessID][]string)
			for _, obj := range t.ReadSet {
				p := pl.PrimaryOf(obj)
				readsBy[p] = append(readsBy[p], obj)
			}
			for _, srv := range pl.Servers() {
				if objs, involved := readsBy[srv]; involved {
					out = append(out, sim.Outbound{To: srv, Payload: &readReq{TID: t.ID, Objs: objs, TS: ts}})
					c.pending++
				}
			}
			c.SentRound()
		} else {
			c.phase = preparing
			c.commitTS = 0
			writesBy := make(map[sim.ProcessID][]model.Write)
			for _, w := range t.Writes {
				for _, srv := range pl.ReplicasOf(w.Object) {
					writesBy[srv] = append(writesBy[srv], w)
				}
			}
			srvs := make([]sim.ProcessID, 0, len(writesBy))
			for srv := range writesBy {
				srvs = append(srvs, srv)
			}
			sort.Slice(srvs, func(i, j int) bool { return srvs[i] < srvs[j] })
			c.writeTo = srvs
			for _, srv := range srvs {
				out = append(out, sim.Outbound{To: srv, Payload: &prepareReq{TID: t.ID, Writes: writesBy[srv]}})
				c.pending++
			}
			c.SentRound()
		}
		return out
	}
	if c.Busy() && c.Started() && c.pending == 0 {
		switch c.phase {
		case reading:
			c.phase = idle
			c.Finish(now)
		case preparing:
			c.phase = committing
			for _, srv := range c.writeTo {
				out = append(out, sim.Outbound{To: srv, Payload: &commitReq{TID: c.Current().ID, TS: c.commitTS}})
				c.pending++
			}
			c.SentRound()
		case committing:
			c.phase = commitWait
		case commitWait:
			// Commit-wait: do not report commit until TT.now().earliest
			// has passed the commit timestamp, guaranteeing real-time
			// order.
			if int64(now)+c.skew-Epsilon > c.commitTS {
				c.phase = idle
				c.writeTo = nil
				c.Finish(now)
			}
		}
	}
	return out
}

// ShardStore exposes the durable version store for the reconfiguration
// layer's generic catch-up (protocol.StoreCarrier): a replacement server
// adopts missing versions from live peer replicas before serving.
func (s *server) ShardStore() *store.Store { return s.st }

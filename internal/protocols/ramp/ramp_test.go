package ramp_test

import (
	"testing"

	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/protocols/ptest"
	"repro/internal/protocols/ramp"
	"repro/internal/sim"
)

func TestConformance(t *testing.T) {
	ptest.Run(t, ramp.New(), ptest.Expect{
		ROTRounds:  1, // happy path; 2 with repair
		Blocking:   false,
		MultiWrite: true,
		Causal:     false, // RAMP guarantees read atomicity, not causality
	})
}

// TestRepairRoundFixesFracturedRead: commit delivered at s1 only; the ROT
// sees new X1 whose metadata names X0; the repair round fetches the
// prepared-but-uncommitted X0 version by writer, producing an atomic pair.
func TestRepairRoundFixesFracturedRead(t *testing.T) {
	d := ptest.Deploy(t, ramp.New(), ptest.Expect{}, 109)
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "n0"}, model.Write{Object: "X1", Value: "n1"}))
	d.Kernel.StepProcess("c0")
	for _, s := range []sim.ProcessID{"s0", "s1"} {
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: s}) {
			d.Kernel.Deliver(m.ID)
		}
		d.Kernel.StepProcess(s)
	}
	for _, s := range []sim.ProcessID{"s0", "s1"} {
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: s, To: "c0"}) {
			d.Kernel.Deliver(m.ID)
		}
	}
	d.Kernel.StepProcess("c0") // commits out
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: "s1"}) {
		d.Kernel.Deliver(m.ID)
	}
	d.Kernel.StepProcess("s1") // s1 committed; s0 still prepared-only

	// A frozen probe freezes the commit to s0 forever: the reader must
	// still return an ATOMIC pair thanks to the by-writer repair round.
	res := d.Probe("r0", []string{"X0", "X1"}, []sim.ProcessID{"s0", "s1"}, true)
	if res == nil {
		t.Fatal("probe did not complete — RAMP reads are non-blocking")
	}
	v0, v1 := res.Value("X0"), res.Value("X1")
	if (v0 == "n0") != (v1 == "n1") {
		t.Fatalf("fractured read escaped RAMP repair: %v", res.Values)
	}
	if v1 == "n1" && v0 != "n0" {
		t.Fatalf("saw new X1 without repaired X0: %v", res.Values)
	}
}

// TestReadAtomicityUnderRandomSchedules: RAMP histories satisfy read
// atomicity even when causal consistency is not guaranteed.
func TestReadAtomicityUnderRandomSchedules(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		d := ptest.Deploy(t, ramp.New(), ptest.Expect{}, seed*77)
		h := history.New(d.Initials())
		sched := sim.NewRandom(seed * 3)
		phase := func(invs map[sim.ProcessID]*model.Txn) {
			ids := make(map[sim.ProcessID]model.TxnID)
			for c, txn := range invs {
				ids[c] = d.Invoke(c, txn)
			}
			sim.Run(d.Kernel, sched, func(*sim.Kernel) bool {
				for c := range invs {
					if d.Client(c).Busy() {
						return false
					}
				}
				return true
			}, 400_000)
			for c := range invs {
				if res := d.Client(c).Results()[ids[c]]; res.OK() {
					h.AddResult(res)
				}
			}
		}
		phase(map[sim.ProcessID]*model.Txn{
			"c0": model.NewWriteOnly(model.TxnID{},
				model.Write{Object: "X0", Value: model.Value("a0")},
				model.Write{Object: "X1", Value: model.Value("a1")}),
			"c1": model.NewReadOnly(model.TxnID{}, "X0", "X1"),
		})
		phase(map[sim.ProcessID]*model.Txn{
			"c0": model.NewReadOnly(model.TxnID{}, "X0", "X1"),
			"c1": model.NewWriteOnly(model.TxnID{},
				model.Write{Object: "X0", Value: model.Value("b0")},
				model.Write{Object: "X1", Value: model.Value("b1")}),
			"c2": model.NewReadOnly(model.TxnID{}, "X0", "X1"),
		})
		if v := history.CheckReadAtomic(h); !v.OK {
			t.Fatalf("seed %d: read atomicity violated: %s\n%s", seed, v.Reason, h)
		}
	}
}

// TestLoadConformance certifies concurrent closed- and open-loop driver
// sweeps at the claimed consistency level.
func TestLoadConformance(t *testing.T) {
	ptest.RunLoad(t, ramp.New(), ptest.Expect{LoadTxns: 96})
}

// TestFaultConformance certifies the standard persistent crash+restart
// and partition+heal nemesis sweeps on both stepping engines
// (ptest.RunFaults semantics).
func TestFaultConformance(t *testing.T) {
	ptest.RunFaults(t, ramp.New(), ptest.Expect{})
}

// TestReconfigConformance certifies the standard replica-replacement and
// whole-cluster-restore sweeps on both stepping engines (ptest.RunReconfig
// semantics): non-lossy reconfiguration must lose nothing.
func TestReconfigConformance(t *testing.T) {
	ptest.RunReconfig(t, ramp.New(), ptest.Expect{})
}

// Package ramp models RAMP-Fast (Bailis et al., SIGMOD 2014): read-atomic
// multi-object write transactions. Writes run two-phase commit carrying
// the transaction's write-set as metadata; read-only transactions take one
// round in the race-free case and a second repair round when a fractured
// read is detected — the metadata tells the reader exactly which sibling
// versions it is missing, and prepared-but-uncommitted versions can be
// fetched by writer ID (the reader's observation proves the commit).
//
// RAMP guarantees read atomicity, not causal consistency: there is no
// cross-transaction dependency tracking.
package ramp

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/vclock"
)

// Protocol is the ramp factory.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Name implements protocol.Protocol.
func (*Protocol) Name() string { return "ramp" }

// Claims implements protocol.Protocol.
func (*Protocol) Claims() protocol.Claims {
	return protocol.Claims{
		OneRound:      false, // ≤ 2
		OneValue:      true,  // per message; ≤ 2 per object per ROT
		NonBlocking:   true,
		MultiWriteTxn: true,
		Consistency:   "read-atomic",
	}
}

// NewServer implements protocol.Protocol.
func (*Protocol) NewServer(id sim.ProcessID, pl *protocol.Placement) sim.Process {
	return &server{id: id, pl: pl, st: store.New(pl.HostedBy(id)...), meta: make(map[string][]string)}
}

// NewClient implements protocol.Protocol.
func (*Protocol) NewClient(id sim.ProcessID, pl *protocol.Placement) protocol.Client {
	clock := int64(1)
	if protocol.IsInitClient(id) {
		clock = 0
	}
	return &client{Core: protocol.NewCore(id, pl), clock: clock}
}

// after is the global version order (timestamp, then writer).
func after(ts1 int64, w1 model.TxnID, ts2 int64, w2 model.TxnID) bool {
	if ts1 != ts2 {
		return ts1 > ts2
	}
	return w1.String() > w2.String()
}

// --- payloads ---

type readReq struct {
	TID  model.TxnID
	Objs []string
}

func (p *readReq) Kind() string               { return "read-req" }
func (p *readReq) Clone() sim.Payload         { c := *p; c.Objs = append([]string(nil), p.Objs...); return &c }
func (p *readReq) Txn() model.TxnID           { return p.TID }
func (p *readReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type readVal struct {
	Ref model.ValueRef
	TS  int64
	// WriteSet lists the other objects written by the same transaction
	// (RAMP metadata used for fracture detection).
	WriteSet []string
}

type readResp struct {
	TID  model.TxnID
	Vals []readVal
}

func (p *readResp) Kind() string { return "read-resp" }
func (p *readResp) Clone() sim.Payload {
	c := *p
	c.Vals = make([]readVal, len(p.Vals))
	for i, v := range p.Vals {
		v.WriteSet = append([]string(nil), v.WriteSet...)
		c.Vals[i] = v
	}
	return &c
}
func (p *readResp) Txn() model.TxnID           { return p.TID }
func (p *readResp) PayloadRole() protocol.Role { return protocol.RoleReadResp }
func (p *readResp) CarriedValues() []model.ValueRef {
	out := make([]model.ValueRef, 0, len(p.Vals))
	for _, v := range p.Vals {
		if v.Ref.Value != model.Bottom {
			out = append(out, v.Ref)
		}
	}
	return out
}

// byWriterReq fetches a specific version in the repair round.
type byWriterReq struct {
	TID    model.TxnID
	Object string
	Writer model.TxnID
}

func (p *byWriterReq) Kind() string               { return "by-writer-req" }
func (p *byWriterReq) Clone() sim.Payload         { c := *p; return &c }
func (p *byWriterReq) Txn() model.TxnID           { return p.TID }
func (p *byWriterReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type prepareReq struct {
	TID      model.TxnID
	TS       int64
	Writes   []model.Write
	WriteSet []string
}

func (p *prepareReq) Kind() string { return "prepare" }
func (p *prepareReq) Clone() sim.Payload {
	c := *p
	c.Writes = append([]model.Write(nil), p.Writes...)
	c.WriteSet = append([]string(nil), p.WriteSet...)
	return &c
}
func (p *prepareReq) Txn() model.TxnID           { return p.TID }
func (p *prepareReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type prepareAck struct{ TID model.TxnID }

func (p *prepareAck) Kind() string               { return "prepare-ack" }
func (p *prepareAck) Clone() sim.Payload         { c := *p; return &c }
func (p *prepareAck) Txn() model.TxnID           { return p.TID }
func (p *prepareAck) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

type commitReq struct{ TID model.TxnID }

func (p *commitReq) Kind() string               { return "commit" }
func (p *commitReq) Clone() sim.Payload         { c := *p; return &c }
func (p *commitReq) Txn() model.TxnID           { return p.TID }
func (p *commitReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type commitAck struct{ TID model.TxnID }

func (p *commitAck) Kind() string               { return "commit-ack" }
func (p *commitAck) Clone() sim.Payload         { c := *p; return &c }
func (p *commitAck) Txn() model.TxnID           { return p.TID }
func (p *commitAck) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

// --- server ---

type server struct {
	id   sim.ProcessID
	pl   *protocol.Placement
	st   *store.Store
	meta map[string][]string // (object\x00writer) -> write set
}

func metaKey(obj string, w model.TxnID) string { return obj + "\x00" + w.String() }

func (s *server) ID() sim.ProcessID { return s.id }
func (s *server) Ready() bool       { return false }

func (s *server) Clone() sim.Process {
	c := &server{id: s.id, pl: s.pl, st: s.st.Clone(), meta: make(map[string][]string, len(s.meta))}
	for k, v := range s.meta {
		c.meta[k] = append([]string(nil), v...)
	}
	return c
}

func (s *server) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *readReq:
			resp := &readResp{TID: p.TID}
			for _, obj := range p.Objs {
				var best *store.Version
				for _, cand := range s.st.Versions(obj) {
					if !cand.Visible {
						continue
					}
					if best == nil || after(cand.Stamp.Wall, cand.Writer, best.Stamp.Wall, best.Writer) {
						best = cand
					}
				}
				if best == nil {
					resp.Vals = append(resp.Vals, readVal{Ref: model.ValueRef{Object: obj, Value: model.Bottom}})
					continue
				}
				resp.Vals = append(resp.Vals, readVal{
					Ref:      model.ValueRef{Object: obj, Value: best.Value, Writer: best.Writer},
					TS:       best.Stamp.Wall,
					WriteSet: s.meta[metaKey(obj, best.Writer)],
				})
			}
			out = append(out, sim.Outbound{To: m.From, Payload: resp})
		case *byWriterReq:
			resp := &readResp{TID: p.TID}
			// Prepared-but-uncommitted versions are fetchable: the reader
			// has proof the transaction committed elsewhere.
			if v := s.st.Find(p.Object, p.Writer); v != nil {
				resp.Vals = append(resp.Vals, readVal{
					Ref:      model.ValueRef{Object: p.Object, Value: v.Value, Writer: v.Writer},
					TS:       v.Stamp.Wall,
					WriteSet: s.meta[metaKey(p.Object, v.Writer)],
				})
			} else {
				resp.Vals = append(resp.Vals, readVal{Ref: model.ValueRef{Object: p.Object, Value: model.Bottom}})
			}
			out = append(out, sim.Outbound{To: m.From, Payload: resp})
		case *prepareReq:
			for _, w := range p.Writes {
				s.st.Install(&store.Version{
					Object: w.Object, Value: w.Value, Writer: p.TID,
					Stamp: vclock.HLCStamp{Wall: p.TS},
				})
				var others []string
				for _, o := range p.WriteSet {
					if o != w.Object {
						others = append(others, o)
					}
				}
				s.meta[metaKey(w.Object, p.TID)] = others
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &prepareAck{TID: p.TID}})
		case *commitReq:
			for _, obj := range s.st.Objects() {
				s.st.MakeVisible(obj, p.TID)
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &commitAck{TID: p.TID}})
		default:
			panic(fmt.Sprintf("ramp: server %s got %T", s.id, m.Payload))
		}
	}
	return out
}

// --- client ---

type phase uint8

const (
	idle phase = iota
	round1
	round2
	preparing
	committing
)

type client struct {
	protocol.Core
	clock   int64
	phase   phase
	pending int
	writeTo []sim.ProcessID
	got     map[string]readVal
}

func (c *client) Clone() sim.Process {
	cp := &client{Core: c.CloneCore(), clock: c.clock, phase: c.phase, pending: c.pending}
	cp.writeTo = append([]sim.ProcessID(nil), c.writeTo...)
	if c.got != nil {
		cp.got = make(map[string]readVal, len(c.got))
		for k, v := range c.got {
			cp.got[k] = v
		}
	}
	return cp
}

func (c *client) Ready() bool { return c.Busy() && !c.Started() }

// fractures returns, per object, the writer whose sibling write is missing
// from the fetched snapshot.
func (c *client) fractures() map[string]readVal {
	repair := make(map[string]readVal)
	for _, v := range c.got {
		if v.Ref.Value == model.Bottom {
			continue
		}
		for _, sibling := range v.WriteSet {
			have, fetched := c.got[sibling]
			if !fetched {
				continue // outside the read set
			}
			if have.Ref.Writer != v.Ref.Writer && after(v.TS, v.Ref.Writer, have.TS, have.Ref.Writer) {
				if cur, dup := repair[sibling]; !dup || after(v.TS, v.Ref.Writer, cur.TS, cur.Ref.Writer) {
					repair[sibling] = v
				}
			}
		}
	}
	return repair
}

func (c *client) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		if !c.Busy() {
			continue
		}
		switch p := m.Payload.(type) {
		case *readResp:
			if p.TID == c.Current().ID && (c.phase == round1 || c.phase == round2) {
				for _, v := range p.Vals {
					cur, fetched := c.got[v.Ref.Object]
					if !fetched || after(v.TS, v.Ref.Writer, cur.TS, cur.Ref.Writer) {
						c.got[v.Ref.Object] = v
					}
				}
				c.pending--
			}
		case *prepareAck:
			if p.TID == c.Current().ID && c.phase == preparing {
				c.pending--
			}
		case *commitAck:
			if p.TID == c.Current().ID && c.phase == committing {
				c.pending--
			}
		}
	}
	if c.Starting(now) {
		t := c.Current()
		if len(t.Writes) > 0 && len(t.ReadSet) > 0 {
			c.Reject(now, "ramp: read-write transactions unsupported in this model")
			return out
		}
		if t.IsReadOnly() {
			c.phase = round1
			c.got = make(map[string]readVal)
			readsBy := make(map[sim.ProcessID][]string)
			for _, obj := range t.ReadSet {
				p := c.Placement().PrimaryOf(obj)
				readsBy[p] = append(readsBy[p], obj)
			}
			for _, srv := range c.Placement().Servers() {
				if objs, involved := readsBy[srv]; involved {
					out = append(out, sim.Outbound{To: srv, Payload: &readReq{TID: t.ID, Objs: objs}})
					c.pending++
				}
			}
		} else {
			c.phase = preparing
			c.clock++
			ws := t.WriteSet()
			writesBy := make(map[sim.ProcessID][]model.Write)
			for _, w := range t.Writes {
				for _, srv := range c.Placement().ReplicasOf(w.Object) {
					writesBy[srv] = append(writesBy[srv], w)
				}
			}
			srvs := make([]sim.ProcessID, 0, len(writesBy))
			for srv := range writesBy {
				srvs = append(srvs, srv)
			}
			sort.Slice(srvs, func(i, j int) bool { return srvs[i] < srvs[j] })
			c.writeTo = srvs
			for _, srv := range srvs {
				out = append(out, sim.Outbound{To: srv, Payload: &prepareReq{
					TID: t.ID, TS: c.clock, Writes: writesBy[srv], WriteSet: ws,
				}})
				c.pending++
			}
		}
		c.SentRound()
		return out
	}
	if c.Busy() && c.Started() && c.pending == 0 {
		t := c.Current()
		switch c.phase {
		case round1:
			repair := c.fractures()
			if len(repair) == 0 {
				c.finishRead(now)
				return out
			}
			c.phase = round2
			objs := make([]string, 0, len(repair))
			for o := range repair {
				objs = append(objs, o)
			}
			sort.Strings(objs)
			for _, o := range objs {
				out = append(out, sim.Outbound{To: c.Placement().PrimaryOf(o), Payload: &byWriterReq{
					TID: t.ID, Object: o, Writer: repair[o].Ref.Writer,
				}})
				c.pending++
			}
			c.SentRound()
		case round2:
			c.finishRead(now)
		case preparing:
			c.phase = committing
			for _, srv := range c.writeTo {
				out = append(out, sim.Outbound{To: srv, Payload: &commitReq{TID: t.ID}})
				c.pending++
			}
			c.SentRound()
		case committing:
			c.phase = idle
			c.writeTo = nil
			c.Finish(now)
		}
	}
	return out
}

func (c *client) finishRead(now sim.Time) {
	t := c.Current()
	for _, obj := range t.ReadSet {
		v := c.got[obj]
		c.Result().Values[obj] = v.Ref.Value
		if v.TS > c.clock {
			c.clock = v.TS
		}
	}
	c.phase = idle
	c.got = nil
	c.Finish(now)
}

// ShardStore exposes the durable version store for the reconfiguration
// layer's catch-up (protocol.StoreCarrier).
func (s *server) ShardStore() *store.Store { return s.st }

// SyncFrom implements protocol.Syncer, the non-default catch-up: a
// replacement adopts the peer's missing versions AND their write-set
// annotations — RAMP's read repair detects fractured reads by comparing
// write sets, so a version without one would never trigger the second
// round.
func (s *server) SyncFrom(peer sim.Process, objs []string) int {
	n := protocol.CopyMissingVersions(s, peer, objs)
	src, ok := peer.(*server)
	if !ok {
		return n
	}
	for _, obj := range objs {
		for _, v := range src.st.Versions(obj) {
			key := metaKey(obj, v.Writer)
			m, found := src.meta[key]
			if !found {
				continue
			}
			if _, have := s.meta[key]; !have {
				s.meta[key] = append([]string(nil), m...)
			}
		}
	}
	return n
}

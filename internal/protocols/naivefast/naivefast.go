// Package naivefast implements the "impossible" design the theorem rules
// out: it claims fast read-only transactions (one round, one value,
// non-blocking) AND multi-object write transactions AND causal
// consistency. Writes are applied and made visible the moment they reach a
// server; reads are answered immediately with the latest visible value.
//
// The claim is false — the adversary (internal/adversary) constructs the
// paper's execution γ against it and exhibits a mixed read that violates
// Lemma 1 — which is exactly the point: this protocol is the executable
// witness that the four properties cannot coexist.
package naivefast

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/store"
)

// Protocol is the naivefast protocol factory.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Name implements protocol.Protocol.
func (*Protocol) Name() string { return "naivefast" }

// Claims implements protocol.Protocol. All four properties are claimed;
// the consistency claim is the one the adversary refutes.
func (*Protocol) Claims() protocol.Claims {
	return protocol.Claims{
		OneRound:      true,
		OneValue:      true,
		NonBlocking:   true,
		MultiWriteTxn: true,
		Consistency:   "causal",
	}
}

// NewServer implements protocol.Protocol.
func (*Protocol) NewServer(id sim.ProcessID, pl *Placement) sim.Process {
	return &server{id: id, pl: pl, st: store.New(pl.HostedBy(id)...)}
}

// NewClient implements protocol.Protocol.
func (*Protocol) NewClient(id sim.ProcessID, pl *Placement) protocol.Client {
	return &client{Core: protocol.NewCore(id, pl)}
}

// Placement aliases protocol.Placement for the constructor signatures.
type Placement = protocol.Placement

// --- payloads ---

type readReq struct {
	TID  model.TxnID
	Objs []string
}

func (p *readReq) Kind() string               { return "read-req" }
func (p *readReq) Clone() sim.Payload         { c := *p; c.Objs = append([]string(nil), p.Objs...); return &c }
func (p *readReq) Txn() model.TxnID           { return p.TID }
func (p *readReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type readResp struct {
	TID  model.TxnID
	Vals []model.ValueRef
}

func (p *readResp) Kind() string { return "read-resp" }
func (p *readResp) Clone() sim.Payload {
	c := *p
	c.Vals = append([]model.ValueRef(nil), p.Vals...)
	return &c
}
func (p *readResp) Txn() model.TxnID                { return p.TID }
func (p *readResp) PayloadRole() protocol.Role      { return protocol.RoleReadResp }
func (p *readResp) CarriedValues() []model.ValueRef { return p.Vals }

type writeReq struct {
	TID    model.TxnID
	Writes []model.Write
}

func (p *writeReq) Kind() string { return "write-req" }
func (p *writeReq) Clone() sim.Payload {
	c := *p
	c.Writes = append([]model.Write(nil), p.Writes...)
	return &c
}
func (p *writeReq) Txn() model.TxnID           { return p.TID }
func (p *writeReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }
func (p *writeReq) CarriedValues() []model.ValueRef {
	out := make([]model.ValueRef, len(p.Writes))
	for i, w := range p.Writes {
		out[i] = model.ValueRef{Object: w.Object, Value: w.Value, Writer: p.TID}
	}
	return out
}

type writeResp struct {
	TID model.TxnID
}

func (p *writeResp) Kind() string               { return "write-resp" }
func (p *writeResp) Clone() sim.Payload         { c := *p; return &c }
func (p *writeResp) Txn() model.TxnID           { return p.TID }
func (p *writeResp) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

// --- server ---

type server struct {
	id sim.ProcessID
	pl *Placement
	st *store.Store
}

func (s *server) ID() sim.ProcessID { return s.id }
func (s *server) Ready() bool       { return false }

func (s *server) Clone() sim.Process {
	return &server{id: s.id, pl: s.pl, st: s.st.Clone()}
}

func (s *server) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *readReq:
			resp := &readResp{TID: p.TID}
			for _, obj := range p.Objs {
				if v := s.st.LatestVisible(obj); v != nil {
					resp.Vals = append(resp.Vals, model.ValueRef{Object: obj, Value: v.Value, Writer: v.Writer})
				} else {
					resp.Vals = append(resp.Vals, model.ValueRef{Object: obj, Value: model.Bottom})
				}
			}
			out = append(out, sim.Outbound{To: m.From, Payload: resp})
		case *writeReq:
			for _, w := range p.Writes {
				s.st.Install(&store.Version{Object: w.Object, Value: w.Value, Writer: p.TID, Visible: true})
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &writeResp{TID: p.TID}})
		default:
			panic(fmt.Sprintf("naivefast: server %s got %T", s.id, m.Payload))
		}
	}
	return out
}

// --- client ---

type client struct {
	protocol.Core
	// pending counts outstanding responses; -1 marks "not yet started".
	pending int
}

func (c *client) Clone() sim.Process {
	return &client{Core: c.CloneCore(), pending: c.pending}
}

func (c *client) Ready() bool { return c.Busy() && !c.Started() }

func (c *client) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *readResp:
			if c.Busy() && p.TID == c.Current().ID {
				for _, vr := range p.Vals {
					c.Result().Values[vr.Object] = vr.Value
				}
				c.pending--
			}
		case *writeResp:
			if c.Busy() && p.TID == c.Current().ID {
				c.pending--
			}
		}
	}
	if c.Starting(now) {
		t := c.Current()
		pl := c.Placement()
		// Reads go to the primary replica of each object; writes go to
		// every replica of the written object.
		readsBy := make(map[sim.ProcessID][]string)
		for _, obj := range t.ReadSet {
			p := pl.PrimaryOf(obj)
			readsBy[p] = append(readsBy[p], obj)
		}
		writesBy := make(map[sim.ProcessID][]model.Write)
		for _, w := range t.Writes {
			for _, srv := range pl.ReplicasOf(w.Object) {
				writesBy[srv] = append(writesBy[srv], w)
			}
		}
		for _, srv := range pl.Servers() {
			if objs, okR := readsBy[srv]; okR {
				out = append(out, sim.Outbound{To: srv, Payload: &readReq{TID: t.ID, Objs: objs}})
				c.pending++
			}
			if ws, okW := writesBy[srv]; okW {
				out = append(out, sim.Outbound{To: srv, Payload: &writeReq{TID: t.ID, Writes: ws}})
				c.pending++
			}
		}
		c.SentRound()
	}
	if c.Busy() && c.Started() && c.pending == 0 {
		// All responses in: complete.
		c.Finish(now)
	}
	return out
}

// ShardStore exposes the durable version store for the reconfiguration
// layer's generic catch-up (protocol.StoreCarrier): a replacement server
// adopts missing versions from live peer replicas before serving.
func (s *server) ShardStore() *store.Store { return s.st }

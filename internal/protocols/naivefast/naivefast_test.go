package naivefast

import (
	"testing"

	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/protocols/ptest"
	"repro/internal/sim"
)

func deploy(t *testing.T) *protocol.Deployment {
	t.Helper()
	d := protocol.Deploy(New(), protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 1})
	if err := d.InitAll(100_000); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInitAndReadBack(t *testing.T) {
	d := deploy(t)
	res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 100_000)
	if !res.OK() {
		t.Fatalf("read failed: %v", res)
	}
	if res.Value("X0") != protocol.InitialValue("X0") || res.Value("X1") != protocol.InitialValue("X1") {
		t.Fatalf("read wrong initials: %v", res.Values)
	}
}

func TestWriteThenRead(t *testing.T) {
	d := deploy(t)
	w := model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "a"}, model.Write{Object: "X1", Value: "b"})
	if res := d.RunTxn("c0", w, 100_000); !res.OK() {
		t.Fatalf("write failed: %v", res)
	}
	r := d.RunTxn("c1", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 100_000)
	if r.Value("X0") != "a" || r.Value("X1") != "b" {
		t.Fatalf("read after write = %v", r.Values)
	}
}

func TestOneRoundROT(t *testing.T) {
	d := deploy(t)
	res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 100_000)
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
}

// TestMixedVisibilityUnderAdversary shows the protocol's flaw directly: if
// the adversary delivers Tw's write to s1 but not to s0, a fresh reader
// sees the new X1 with the old X0 — the mixed read Lemma 1 forbids.
func TestMixedVisibilityUnderAdversary(t *testing.T) {
	d := deploy(t)
	// cw reads the initial values first (establishes causality, as in the
	// paper's C0 construction).
	if res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 100_000); !res.OK() {
		t.Fatal("setup read failed")
	}
	// Invoke Tw but deliver only the write to s1.
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "x0new"}, model.Write{Object: "X1", Value: "x1new"}))
	d.Kernel.StepProcess("c0") // emits both write requests
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: "s1"}) {
		d.Kernel.Deliver(m.ID)
	}
	d.Kernel.StepProcess("s1")

	res := d.Probe("r0", []string{"X0", "X1"}, []sim.ProcessID{"s0", "s1"}, true)
	if res == nil {
		t.Fatal("probe did not complete")
	}
	if res.Value("X0") != protocol.InitialValue("X0") || res.Value("X1") != "x1new" {
		t.Fatalf("expected mixed read (old X0, new X1), got %v", res.Values)
	}
}

func TestVisibilityProbeBattery(t *testing.T) {
	d := deploy(t)
	want := map[string]model.Value{"X0": protocol.InitialValue("X0"), "X1": protocol.InitialValue("X1")}
	vis := d.VisibleAll("r0", want, true)
	if !vis.Visible {
		t.Fatalf("initial values not visible: %+v", vis)
	}
	// New values are not visible before Tw runs.
	vis = d.VisibleAll("r0", map[string]model.Value{"X0": "nope", "X1": "nope"}, true)
	if vis.Visible {
		t.Fatal("unwritten values reported visible")
	}
	if vis.Counterexample == nil {
		t.Fatal("no counterexample probe recorded")
	}
}

func TestProbeDoesNotDisturbConfiguration(t *testing.T) {
	d := deploy(t)
	before := d.Kernel.Trace().Len()
	d.Probe("r0", []string{"X0"}, []sim.ProcessID{"s0"}, true)
	if d.Kernel.Trace().Len() != before {
		t.Fatal("probe mutated the original kernel")
	}
	if d.Client("r0").Busy() {
		t.Fatal("probe left original reader busy")
	}
}

func TestClientCloneIndependence(t *testing.T) {
	d := deploy(t)
	d.Invoke("c0", model.NewReadOnly(model.TxnID{}, "X0"))
	snap := d.Kernel.Snapshot()
	// Run the original to completion.
	cl := d.Client("c0")
	sim.Run(d.Kernel, &sim.RoundRobin{}, func(*sim.Kernel) bool { return !cl.Busy() }, 100_000)
	// The clone's client must still be busy.
	if !snap.Process("c0").(protocol.Client).Busy() {
		t.Fatal("clone client shares state with original")
	}
}

func TestRejectsNothing(t *testing.T) {
	// naivefast claims multi-write support: multi-object writes succeed.
	d := deploy(t)
	res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "m0"}, model.Write{Object: "X1", Value: "m1"}), 100_000)
	if !res.OK() {
		t.Fatalf("multi-write rejected: %v", res.Err)
	}
}

func TestReadWriteTxn(t *testing.T) {
	d := deploy(t)
	rw := &model.Txn{ReadSet: []string{"X1"}, Writes: []model.Write{{Object: "X0", Value: "rw0"}}}
	res := d.RunTxn("c0", rw, 100_000)
	if !res.OK() || res.Value("X1") != protocol.InitialValue("X1") {
		t.Fatalf("read-write txn = %v", res)
	}
	r := d.RunTxn("c1", model.NewReadOnly(model.TxnID{}, "X0"), 100_000)
	if r.Value("X0") != "rw0" {
		t.Fatalf("write part not applied: %v", r.Values)
	}
}

// TestDroppedWriteDetectedByChecker is a failure-injection test: the
// paper's links never lose messages, but if one write of a multi-object
// transaction is dropped, the resulting permanent mixed state produces a
// history the Definition 1 checker rejects — evidence the checker catches
// real anomalies, not just the adversary's constructions.
func TestDroppedWriteDetectedByChecker(t *testing.T) {
	d := deploy(t)
	// Establish causality: c0 reads the initials first.
	setup := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 100_000)
	if !setup.OK() {
		t.Fatal("setup read failed")
	}
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "d0"}, model.Write{Object: "X1", Value: "d1"}))
	d.Kernel.StepProcess("c0")
	// Drop the write to s0; deliver the one to s1.
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: "s0"}) {
		if !d.Kernel.DropInTransit(m.ID) {
			t.Fatal("drop failed")
		}
	}
	d.Settle(100_000)

	r := d.RunTxn("c1", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 100_000)
	if r.Value("X1") != "d1" || r.Value("X0") == "d0" {
		t.Fatalf("expected permanently mixed state, got %v", r.Values)
	}

	h := history.New(d.Initials())
	h.AddResult(setup)
	// The write transaction "completed" from the system's perspective is
	// moot (the client never got s0's ack) — record it as comm(H) does,
	// i.e. completed.
	h.Add(&history.TxnRecord{
		ID: model.TxnID{Client: "c0", Seq: 2}, Client: "c0",
		Writes: []model.Write{{Object: "X0", Value: "d0"}, {Object: "X1", Value: "d1"}},
	})
	h.AddResult(r)
	if v := history.CheckCausal(h); v.OK {
		t.Fatal("checker accepted the lost-write anomaly")
	}
}

// TestLoadConformance: naivefast is a theorem victim — concurrent sweeps
// must FAIL certification at its claimed level (fast reads are paid for
// with consistency, exactly as the paper's lower bounds demand).
func TestLoadConformance(t *testing.T) {
	ptest.RunLoad(t, New(), ptest.Expect{ViolatesUnderLoad: true, LoadTxns: 96})
}

// TestFaultConformance certifies the standard persistent crash+restart
// and partition+heal nemesis sweeps on both stepping engines
// (ptest.RunFaults semantics).
func TestFaultConformance(t *testing.T) {
	ptest.RunFaults(t, New(), ptest.Expect{ViolatesUnderLoad: true})
}

// TestReconfigConformance certifies the standard replica-replacement and
// whole-cluster-restore sweeps on both stepping engines (ptest.RunReconfig
// semantics): non-lossy reconfiguration must lose nothing.
func TestReconfigConformance(t *testing.T) {
	ptest.RunReconfig(t, New(), ptest.Expect{ViolatesUnderLoad: true})
}

// Package orbe models Orbe (Du et al., SoCC 2013): causal consistency via
// dependency vectors (the DM protocol's dependency matrices collapse to
// one row per server in our single-datacenter deployment). Writes are
// single-object; each server numbers its writes with a local counter and
// versions are identified by (server, seq). Read-only transactions take
// two rounds: fetch a global stable vector, then read at the (causal-past-
// raised) snapshot vector; a server parks a read whose snapshot entry is
// ahead of its applied counter. In a disjoint single-cluster deployment
// the parking path only triggers for causally-ahead readers — the paper's
// N=no for Orbe refers to geo-replicated operation, where replication lag
// makes it common.
package orbe

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/vclock"
)

// Protocol is the orbe factory.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Name implements protocol.Protocol.
func (*Protocol) Name() string { return "orbe" }

// Claims implements protocol.Protocol.
func (*Protocol) Claims() protocol.Claims {
	return protocol.Claims{
		OneRound:      false,
		OneValue:      true,
		NonBlocking:   false,
		MultiWriteTxn: false,
		Consistency:   "causal",
	}
}

// NewServer implements protocol.Protocol.
func (*Protocol) NewServer(id sim.ProcessID, pl *protocol.Placement) sim.Process {
	return &server{
		id: id, pl: pl, st: store.New(pl.HostedBy(id)...),
		idx: pl.ServerIndex(id), n: pl.NumServers(),
		known: vclock.NewVector(pl.NumServers()),
	}
}

// NewClient implements protocol.Protocol.
func (*Protocol) NewClient(id sim.ProcessID, pl *protocol.Placement) protocol.Client {
	return &client{Core: protocol.NewCore(id, pl), dep: vclock.NewVector(pl.NumServers())}
}

// --- payloads ---

type gsvReq struct{ TID model.TxnID }

func (p *gsvReq) Kind() string               { return "gsv-req" }
func (p *gsvReq) Clone() sim.Payload         { c := *p; return &c }
func (p *gsvReq) Txn() model.TxnID           { return p.TID }
func (p *gsvReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type gsvResp struct {
	TID model.TxnID
	GSV vclock.Vector
}

func (p *gsvResp) Kind() string               { return "gsv-resp" }
func (p *gsvResp) Clone() sim.Payload         { c := *p; c.GSV = p.GSV.Clone(); return &c }
func (p *gsvResp) Txn() model.TxnID           { return p.TID }
func (p *gsvResp) PayloadRole() protocol.Role { return protocol.RoleReadResp }

type readReq struct {
	TID  model.TxnID
	Objs []string
	Snap vclock.Vector
}

func (p *readReq) Kind() string { return "read-req" }
func (p *readReq) Clone() sim.Payload {
	c := *p
	c.Objs = append([]string(nil), p.Objs...)
	c.Snap = p.Snap.Clone()
	return &c
}
func (p *readReq) Txn() model.TxnID           { return p.TID }
func (p *readReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type readVal struct {
	Ref model.ValueRef
	Vec vclock.Vector
}

type readResp struct {
	TID  model.TxnID
	Vals []readVal
}

func (p *readResp) Kind() string { return "read-resp" }
func (p *readResp) Clone() sim.Payload {
	c := *p
	c.Vals = make([]readVal, len(p.Vals))
	for i, v := range p.Vals {
		if v.Vec != nil {
			v.Vec = v.Vec.Clone()
		}
		c.Vals[i] = v
	}
	return &c
}
func (p *readResp) Txn() model.TxnID           { return p.TID }
func (p *readResp) PayloadRole() protocol.Role { return protocol.RoleReadResp }
func (p *readResp) CarriedValues() []model.ValueRef {
	out := make([]model.ValueRef, 0, len(p.Vals))
	for _, v := range p.Vals {
		if v.Ref.Value != model.Bottom {
			out = append(out, v.Ref)
		}
	}
	return out
}

type writeReq struct {
	TID model.TxnID
	W   model.Write
	Dep vclock.Vector
}

func (p *writeReq) Kind() string               { return "write-req" }
func (p *writeReq) Clone() sim.Payload         { c := *p; c.Dep = p.Dep.Clone(); return &c }
func (p *writeReq) Txn() model.TxnID           { return p.TID }
func (p *writeReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type writeResp struct {
	TID model.TxnID
	Vec vclock.Vector
}

func (p *writeResp) Kind() string               { return "write-ack" }
func (p *writeResp) Clone() sim.Payload         { c := *p; c.Vec = p.Vec.Clone(); return &c }
func (p *writeResp) Txn() model.TxnID           { return p.TID }
func (p *writeResp) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

type gossip struct {
	From sim.ProcessID
	Idx  int
	Cnt  int64
}

func (p *gossip) Kind() string               { return "cnt-gossip" }
func (p *gossip) Clone() sim.Payload         { c := *p; return &c }
func (p *gossip) Txn() model.TxnID           { return model.TxnID{} }
func (p *gossip) PayloadRole() protocol.Role { return protocol.RoleInternal }

// --- server ---

type parkedRead struct {
	From sim.ProcessID
	Req  *readReq
}

type server struct {
	id     sim.ProcessID
	pl     *protocol.Placement
	st     *store.Store
	idx, n int
	cnt    int64 // local applied-write counter
	known  vclock.Vector
	parked []parkedRead
}

func (s *server) ID() sim.ProcessID { return s.id }
func (s *server) Ready() bool       { return false } // parks resolve on write arrival

func (s *server) Clone() sim.Process {
	c := &server{id: s.id, pl: s.pl, st: s.st.Clone(), idx: s.idx, n: s.n, cnt: s.cnt, known: s.known.Clone()}
	for _, d := range s.parked {
		cp := *d.Req
		cp.Snap = d.Req.Snap.Clone()
		c.parked = append(c.parked, parkedRead{From: d.From, Req: &cp})
	}
	return c
}

func (s *server) gsv() vclock.Vector {
	g := s.known.Clone()
	g[s.idx] = s.cnt
	return g
}

func (s *server) canServe(snap vclock.Vector) bool { return snap[s.idx] <= s.cnt }

func (s *server) serveRead(from sim.ProcessID, req *readReq) sim.Outbound {
	resp := &readResp{TID: req.TID}
	for _, obj := range req.Objs {
		// Entire dependency vector must be dominated by the snapshot —
		// an entry above it means a dependency is outside the snapshot.
		v := s.st.Latest(obj, func(v *store.Version) bool {
			return v.Visible && v.Vec.LessEq(req.Snap)
		})
		if v != nil {
			resp.Vals = append(resp.Vals, readVal{
				Ref: model.ValueRef{Object: obj, Value: v.Value, Writer: v.Writer},
				Vec: v.Vec,
			})
		} else {
			resp.Vals = append(resp.Vals, readVal{Ref: model.ValueRef{Object: obj, Value: model.Bottom}})
		}
	}
	return sim.Outbound{To: from, Payload: resp}
}

func (s *server) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	// Retry parked reads before consuming new input (so a park is always
	// observable as a deferred response).
	if len(s.parked) > 0 {
		var still []parkedRead
		for _, d := range s.parked {
			if s.canServe(d.Req.Snap) {
				out = append(out, s.serveRead(d.From, d.Req))
			} else {
				still = append(still, d)
			}
		}
		s.parked = still
	}
	gossipDue := false
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *gsvReq:
			out = append(out, sim.Outbound{To: m.From, Payload: &gsvResp{TID: p.TID, GSV: s.gsv()}})
		case *readReq:
			if s.canServe(p.Snap) {
				out = append(out, s.serveRead(m.From, p))
			} else {
				s.parked = append(s.parked, parkedRead{From: m.From, Req: p})
			}
		case *writeReq:
			s.cnt++
			vec := vclock.NewVector(s.n)
			vec.Merge(p.Dep)
			vec[s.idx] = s.cnt
			s.st.Install(&store.Version{Object: p.W.Object, Value: p.W.Value, Writer: p.TID, Vec: vec, Visible: true})
			out = append(out, sim.Outbound{To: m.From, Payload: &writeResp{TID: p.TID, Vec: vec}})
			gossipDue = true
		case *gossip:
			if p.Cnt > s.known[p.Idx] {
				s.known[p.Idx] = p.Cnt
			}
		default:
			panic(fmt.Sprintf("orbe: server %s got %T", s.id, m.Payload))
		}
	}
	if gossipDue {
		for _, other := range s.pl.Servers() {
			if other != s.id {
				out = append(out, sim.Outbound{To: other, Payload: &gossip{From: s.id, Idx: s.idx, Cnt: s.cnt}})
			}
		}
	}
	return out
}

// --- client ---

type phase uint8

const (
	idle phase = iota
	gsvWait
	reading
	writing
)

type client struct {
	protocol.Core
	phase   phase
	pending int
	dep     vclock.Vector
	snap    vclock.Vector
	got     map[string]readVal
}

func (c *client) Clone() sim.Process {
	cp := &client{Core: c.CloneCore(), phase: c.phase, pending: c.pending, dep: c.dep.Clone()}
	if c.snap != nil {
		cp.snap = c.snap.Clone()
	}
	if c.got != nil {
		cp.got = make(map[string]readVal, len(c.got))
		for k, v := range c.got {
			cp.got[k] = v
		}
	}
	return cp
}

func (c *client) Ready() bool { return c.Busy() && !c.Started() }

func (c *client) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		if !c.Busy() {
			continue
		}
		switch p := m.Payload.(type) {
		case *gsvResp:
			if p.TID == c.Current().ID && c.phase == gsvWait {
				c.snap = p.GSV.Clone()
				c.pending--
			}
		case *readResp:
			if p.TID == c.Current().ID && c.phase == reading {
				for _, v := range p.Vals {
					c.got[v.Ref.Object] = v
				}
				c.pending--
			}
		case *writeResp:
			if p.TID == c.Current().ID && c.phase == writing {
				c.dep.Merge(p.Vec)
				c.pending--
			}
		}
	}
	if c.Starting(now) {
		t := c.Current()
		if len(t.WriteSet()) > 1 {
			c.Reject(now, "orbe: multi-object write transactions unsupported")
			return out
		}
		if len(t.Writes) > 0 && len(t.ReadSet) > 0 {
			c.Reject(now, "orbe: read-write transactions unsupported")
			return out
		}
		if t.IsReadOnly() {
			c.phase = gsvWait
			c.got = make(map[string]readVal)
			last := t.ReadSet[len(t.ReadSet)-1]
			out = append(out, sim.Outbound{To: c.Placement().PrimaryOf(last), Payload: &gsvReq{TID: t.ID}})
			c.pending = 1
		} else {
			c.phase = writing
			w := t.Writes[len(t.Writes)-1]
			out = append(out, sim.Outbound{To: c.Placement().PrimaryOf(w.Object), Payload: &writeReq{
				TID: t.ID, W: w, Dep: c.dep.Clone(),
			}})
			c.pending = 1
		}
		c.SentRound()
		return out
	}
	if c.Busy() && c.Started() && c.pending == 0 {
		t := c.Current()
		switch c.phase {
		case gsvWait:
			c.snap.Merge(c.dep) // snapshot covers the causal past
			c.phase = reading
			readsBy := make(map[sim.ProcessID][]string)
			for _, obj := range t.ReadSet {
				p := c.Placement().PrimaryOf(obj)
				readsBy[p] = append(readsBy[p], obj)
			}
			for _, srv := range c.Placement().Servers() {
				if objs, involved := readsBy[srv]; involved {
					out = append(out, sim.Outbound{To: srv, Payload: &readReq{TID: t.ID, Objs: objs, Snap: c.snap.Clone()}})
					c.pending++
				}
			}
			c.SentRound()
		case reading:
			for _, obj := range t.ReadSet {
				v := c.got[obj]
				c.Result().Values[obj] = v.Ref.Value
				if v.Vec != nil {
					c.dep.Merge(v.Vec)
				}
			}
			c.phase = idle
			c.got = nil
			c.Finish(now)
		case writing:
			c.phase = idle
			c.Finish(now)
		}
	}
	return out
}

// ShardStore exposes the durable version store for the reconfiguration
// layer's generic catch-up (protocol.StoreCarrier): a replacement server
// adopts missing versions from live peer replicas before serving.
func (s *server) ShardStore() *store.Store { return s.st }

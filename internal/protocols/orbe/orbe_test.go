package orbe

import (
	"testing"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/protocols/ptest"
	"repro/internal/sim"
	"repro/internal/vclock"
)

func TestConformance(t *testing.T) {
	ptest.Run(t, New(), ptest.Expect{
		ROTRounds:  2, // stable-vector fetch + reads
		Blocking:   false,
		MultiWrite: false,
		Causal:     true,
	})
}

func TestRejectsMultiWrite(t *testing.T) {
	d := ptest.Deploy(t, New(), ptest.Expect{}, 137)
	res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "m0"}, model.Write{Object: "X1", Value: "m1"}), 400_000)
	if res.OK() {
		t.Fatal("multi-object write accepted")
	}
}

// TestParkPathServesWhenCounterCatchesUp exercises the blocking path
// directly (white-box): a read whose snapshot entry is ahead of the
// server's applied counter parks, and is served once a later write
// advances the counter. In the single-cluster deployments of the other
// tests this path never triggers (clients' snapshots always trail their
// completed operations); in Orbe's geo-replicated setting replication lag
// makes it the common case — hence N=no in Table 1.
func TestParkPathServesWhenCounterCatchesUp(t *testing.T) {
	pl := protocol.Disjoint(2, 1)
	srv := New().NewServer("s0", pl).(*server)

	// Craft a read at snapshot (2, 0) while s0 has applied only 1 write.
	writeMsg := &sim.Message{From: "c9", To: "s0", Payload: &writeReq{
		TID: model.TxnID{Client: "c9", Seq: 1},
		W:   model.Write{Object: "X0", Value: "v1"},
		Dep: vclock.NewVector(2),
	}}
	srv.Step(1, []*sim.Message{writeMsg})

	readMsg := &sim.Message{From: "r9", To: "s0", Payload: &readReq{
		TID:  model.TxnID{Client: "r9", Seq: 1},
		Objs: []string{"X0"},
		Snap: vclock.Vector{2, 0},
	}}
	out := srv.Step(2, []*sim.Message{readMsg})
	for _, o := range out {
		if _, isResp := o.Payload.(*readResp); isResp {
			t.Fatal("read served although snapshot is ahead of applied counter")
		}
	}
	if len(srv.parked) != 1 {
		t.Fatalf("parked = %d, want 1", len(srv.parked))
	}

	// A second write advances the counter to 2; the parked read must be
	// served on the next step, with the new value.
	writeMsg2 := &sim.Message{From: "c9", To: "s0", Payload: &writeReq{
		TID: model.TxnID{Client: "c9", Seq: 2},
		W:   model.Write{Object: "X0", Value: "v2"},
		Dep: vclock.NewVector(2),
	}}
	srv.Step(3, []*sim.Message{writeMsg2})
	out = srv.Step(4, nil)
	served := false
	for _, o := range out {
		if resp, isResp := o.Payload.(*readResp); isResp {
			served = true
			if resp.Vals[0].Ref.Value != "v2" {
				t.Fatalf("parked read returned %q, want v2", resp.Vals[0].Ref.Value)
			}
		}
	}
	if !served {
		t.Fatal("parked read never served after counter caught up")
	}
}

// TestLoadConformance certifies concurrent closed- and open-loop driver
// sweeps at the claimed consistency level.
func TestLoadConformance(t *testing.T) {
	ptest.RunLoad(t, New(), ptest.Expect{LoadTxns: 96})
}

// TestFaultConformance certifies the standard persistent crash+restart
// and partition+heal nemesis sweeps on both stepping engines
// (ptest.RunFaults semantics).
func TestFaultConformance(t *testing.T) {
	ptest.RunFaults(t, New(), ptest.Expect{})
}

// TestReconfigConformance certifies the standard replica-replacement and
// whole-cluster-restore sweeps on both stepping engines (ptest.RunReconfig
// semantics): non-lossy reconfiguration must lose nothing.
func TestReconfigConformance(t *testing.T) {
	ptest.RunReconfig(t, New(), ptest.Expect{})
}

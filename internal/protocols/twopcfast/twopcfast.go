// Package twopcfast is the second "impossible" design: like naivefast it
// claims fast read-only transactions plus multi-object write transactions,
// but it tries harder — writes go through two-phase commit (prepare
// installs a hidden version, commit makes it visible), so a write
// transaction's values flip visible atomically *per server*. The flaw the
// theorem exposes remains: between the delivery of the two commit messages
// there is a configuration where one server shows the new value and the
// other the old one, and a fast (one-round, one-value, non-blocking)
// reader has no way to detect it. The adversary exhibits the mixed read.
//
// twopcfast also demonstrates the induction of Lemma 3, claim 1: its
// servers send prepare/commit acknowledgements to the writing client, and
// after receiving them the client messages the other server — exactly the
// "implicit message" msk the proof tracks.
package twopcfast

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/store"
)

// Protocol is the twopcfast factory.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Name implements protocol.Protocol.
func (*Protocol) Name() string { return "twopcfast" }

// Claims implements protocol.Protocol.
func (*Protocol) Claims() protocol.Claims {
	return protocol.Claims{
		OneRound:      true,
		OneValue:      true,
		NonBlocking:   true,
		MultiWriteTxn: true,
		Consistency:   "causal",
	}
}

// NewServer implements protocol.Protocol.
func (*Protocol) NewServer(id sim.ProcessID, pl *protocol.Placement) sim.Process {
	return &server{id: id, pl: pl, st: store.New(pl.HostedBy(id)...)}
}

// NewClient implements protocol.Protocol.
func (*Protocol) NewClient(id sim.ProcessID, pl *protocol.Placement) protocol.Client {
	return &client{Core: protocol.NewCore(id, pl)}
}

// --- payloads ---

type readReq struct {
	TID  model.TxnID
	Objs []string
}

func (p *readReq) Kind() string               { return "read-req" }
func (p *readReq) Clone() sim.Payload         { c := *p; c.Objs = append([]string(nil), p.Objs...); return &c }
func (p *readReq) Txn() model.TxnID           { return p.TID }
func (p *readReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type readResp struct {
	TID  model.TxnID
	Vals []model.ValueRef
}

func (p *readResp) Kind() string { return "read-resp" }
func (p *readResp) Clone() sim.Payload {
	c := *p
	c.Vals = append([]model.ValueRef(nil), p.Vals...)
	return &c
}
func (p *readResp) Txn() model.TxnID                { return p.TID }
func (p *readResp) PayloadRole() protocol.Role      { return protocol.RoleReadResp }
func (p *readResp) CarriedValues() []model.ValueRef { return p.Vals }

type prepareReq struct {
	TID    model.TxnID
	Writes []model.Write
}

func (p *prepareReq) Kind() string { return "prepare" }
func (p *prepareReq) Clone() sim.Payload {
	c := *p
	c.Writes = append([]model.Write(nil), p.Writes...)
	return &c
}
func (p *prepareReq) Txn() model.TxnID           { return p.TID }
func (p *prepareReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type prepareAck struct {
	TID model.TxnID
}

func (p *prepareAck) Kind() string               { return "prepare-ack" }
func (p *prepareAck) Clone() sim.Payload         { c := *p; return &c }
func (p *prepareAck) Txn() model.TxnID           { return p.TID }
func (p *prepareAck) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

type commitReq struct {
	TID model.TxnID
}

func (p *commitReq) Kind() string               { return "commit" }
func (p *commitReq) Clone() sim.Payload         { c := *p; return &c }
func (p *commitReq) Txn() model.TxnID           { return p.TID }
func (p *commitReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type commitAck struct {
	TID model.TxnID
}

func (p *commitAck) Kind() string               { return "commit-ack" }
func (p *commitAck) Clone() sim.Payload         { c := *p; return &c }
func (p *commitAck) Txn() model.TxnID           { return p.TID }
func (p *commitAck) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

// --- server ---

type server struct {
	id sim.ProcessID
	pl *protocol.Placement
	st *store.Store
}

func (s *server) ID() sim.ProcessID { return s.id }
func (s *server) Ready() bool       { return false }
func (s *server) Clone() sim.Process {
	return &server{id: s.id, pl: s.pl, st: s.st.Clone()}
}

func (s *server) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *readReq:
			resp := &readResp{TID: p.TID}
			for _, obj := range p.Objs {
				if v := s.st.LatestVisible(obj); v != nil {
					resp.Vals = append(resp.Vals, model.ValueRef{Object: obj, Value: v.Value, Writer: v.Writer})
				} else {
					resp.Vals = append(resp.Vals, model.ValueRef{Object: obj, Value: model.Bottom})
				}
			}
			out = append(out, sim.Outbound{To: m.From, Payload: resp})
		case *prepareReq:
			for _, w := range p.Writes {
				s.st.Install(&store.Version{Object: w.Object, Value: w.Value, Writer: p.TID})
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &prepareAck{TID: p.TID}})
		case *commitReq:
			for _, obj := range s.st.Objects() {
				s.st.MakeVisible(obj, p.TID)
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &commitAck{TID: p.TID}})
		default:
			panic(fmt.Sprintf("twopcfast: server %s got %T", s.id, m.Payload))
		}
	}
	return out
}

// --- client ---

type phase uint8

const (
	idle phase = iota
	reading
	preparing
	committing
)

type client struct {
	protocol.Core
	phase   phase
	pending int
	writeTo []sim.ProcessID // servers involved in the write
}

func (c *client) Clone() sim.Process {
	cp := &client{Core: c.CloneCore(), phase: c.phase, pending: c.pending}
	cp.writeTo = append([]sim.ProcessID(nil), c.writeTo...)
	return cp
}

func (c *client) Ready() bool { return c.Busy() && !c.Started() }

func (c *client) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		if !c.Busy() {
			continue
		}
		switch p := m.Payload.(type) {
		case *readResp:
			if p.TID == c.Current().ID && c.phase == reading {
				for _, vr := range p.Vals {
					c.Result().Values[vr.Object] = vr.Value
				}
				c.pending--
			}
		case *prepareAck:
			if p.TID == c.Current().ID && c.phase == preparing {
				c.pending--
			}
		case *commitAck:
			if p.TID == c.Current().ID && c.phase == committing {
				c.pending--
			}
		}
	}
	if c.Starting(now) {
		t := c.Current()
		pl := c.Placement()
		if len(t.Writes) > 0 && len(t.ReadSet) > 0 {
			c.Reject(now, "twopcfast: read-write transactions unsupported")
			return out
		}
		if t.IsReadOnly() {
			c.phase = reading
			readsBy := make(map[sim.ProcessID][]string)
			for _, obj := range t.ReadSet {
				p := pl.PrimaryOf(obj)
				readsBy[p] = append(readsBy[p], obj)
			}
			for _, srv := range pl.Servers() {
				if objs, okR := readsBy[srv]; okR {
					out = append(out, sim.Outbound{To: srv, Payload: &readReq{TID: t.ID, Objs: objs}})
					c.pending++
				}
			}
			c.SentRound()
		} else {
			c.phase = preparing
			writesBy := make(map[sim.ProcessID][]model.Write)
			for _, w := range t.Writes {
				for _, srv := range pl.ReplicasOf(w.Object) {
					writesBy[srv] = append(writesBy[srv], w)
				}
			}
			c.writeTo = nil
			for _, srv := range pl.Servers() {
				if ws, okW := writesBy[srv]; okW {
					out = append(out, sim.Outbound{To: srv, Payload: &prepareReq{TID: t.ID, Writes: ws}})
					c.writeTo = append(c.writeTo, srv)
					c.pending++
				}
			}
			c.SentRound()
		}
		return out
	}
	if c.Busy() && c.Started() && c.pending == 0 {
		switch c.phase {
		case reading:
			c.phase = idle
			c.Finish(now)
		case preparing:
			// All prepared: commit everywhere.
			c.phase = committing
			for _, srv := range c.writeTo {
				out = append(out, sim.Outbound{To: srv, Payload: &commitReq{TID: c.Current().ID}})
				c.pending++
			}
			c.SentRound()
		case committing:
			c.phase = idle
			c.writeTo = nil
			c.Finish(now)
		}
	}
	return out
}

// ShardStore exposes the durable version store for the reconfiguration
// layer's generic catch-up (protocol.StoreCarrier): a replacement server
// adopts missing versions from live peer replicas before serving.
func (s *server) ShardStore() *store.Store { return s.st }

package twopcfast_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/protocols/ptest"
	"repro/internal/protocols/twopcfast"
	"repro/internal/sim"
)

func TestConformance(t *testing.T) {
	ptest.Run(t, twopcfast.New(), ptest.Expect{
		ROTRounds:  1,
		Blocking:   false,
		MultiWrite: true,
		// Causal intentionally false: twopcfast is a theorem victim; the
		// adversary package proves its causal claim wrong.
	})
}

// TestAtomicPerServerButNotAcrossServers shows both that 2PC fixes
// naivefast's per-server partial visibility and that it cannot fix the
// cross-server window the theorem exploits.
func TestAtomicPerServerButNotAcrossServers(t *testing.T) {
	d := ptest.Deploy(t, twopcfast.New(), ptest.Expect{}, 31)

	// cw establishes causality (reads initials), then starts Tw.
	if res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 200_000); !res.OK() {
		t.Fatal("setup read failed")
	}
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "n0"}, model.Write{Object: "X1", Value: "n1"}))
	d.Kernel.StepProcess("c0") // prepares go out

	// Deliver both prepares; servers install hidden versions.
	for _, s := range []sim.ProcessID{"s0", "s1"} {
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: s}) {
			d.Kernel.Deliver(m.ID)
		}
		d.Kernel.StepProcess(s)
	}
	// Prepared-but-uncommitted: both objects still show the initials.
	vis := d.VisibleAll("r0", map[string]model.Value{
		"X0": protocol.InitialValue("X0"), "X1": protocol.InitialValue("X1")}, true)
	if !vis.Visible {
		t.Fatalf("prepared values leaked before commit: %+v", vis)
	}

	// Deliver prepare acks; client sends commits; deliver only s1's commit.
	for _, s := range []sim.ProcessID{"s0", "s1"} {
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: s, To: "c0"}) {
			d.Kernel.Deliver(m.ID)
		}
	}
	d.Kernel.StepProcess("c0") // commits go out
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: "s1"}) {
		d.Kernel.Deliver(m.ID)
	}
	d.Kernel.StepProcess("s1")

	// The mixed window: s1 committed, s0 not — a fast reader sees it.
	res := d.Probe("r0", []string{"X0", "X1"}, []sim.ProcessID{"s0", "s1"}, true)
	if res == nil {
		t.Fatal("probe did not complete")
	}
	if res.Value("X0") != protocol.InitialValue("X0") || res.Value("X1") != "n1" {
		t.Fatalf("expected mixed read (old X0, new X1), got %v", res.Values)
	}
}

func TestWriteUsesTwoRounds(t *testing.T) {
	d := ptest.Deploy(t, twopcfast.New(), ptest.Expect{}, 37)
	res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "a"}, model.Write{Object: "X1", Value: "b"}), 200_000)
	if !res.OK() {
		t.Fatalf("write failed: %v", res)
	}
	if res.Rounds != 2 {
		t.Fatalf("write rounds = %d, want 2 (prepare + commit)", res.Rounds)
	}
}

func TestRejectsReadWrite(t *testing.T) {
	d := ptest.Deploy(t, twopcfast.New(), ptest.Expect{}, 41)
	rw := &model.Txn{ReadSet: []string{"X0"}, Writes: []model.Write{{Object: "X1", Value: "v"}}}
	res := d.RunTxn("c0", rw, 200_000)
	if res.OK() {
		t.Fatal("read-write transaction unexpectedly accepted")
	}
}

// TestLoadConformance: twopcfast is a theorem victim — concurrent sweeps must
// FAIL certification at its claimed level (fast reads are paid for with
// consistency, exactly as the paper's lower bounds demand).
func TestLoadConformance(t *testing.T) {
	ptest.RunLoad(t, twopcfast.New(), ptest.Expect{ViolatesUnderLoad: true, LoadTxns: 96})
}

// TestFaultConformance certifies the standard persistent crash+restart
// and partition+heal nemesis sweeps on both stepping engines
// (ptest.RunFaults semantics).
func TestFaultConformance(t *testing.T) {
	ptest.RunFaults(t, twopcfast.New(), ptest.Expect{ViolatesUnderLoad: true})
}

// TestReconfigConformance certifies the standard replica-replacement and
// whole-cluster-restore sweeps on both stepping engines (ptest.RunReconfig
// semantics): non-lossy reconfiguration must lose nothing.
func TestReconfigConformance(t *testing.T) {
	ptest.RunReconfig(t, twopcfast.New(), ptest.Expect{ViolatesUnderLoad: true})
}

// Package cure models Cure (Akkoorath et al., ICDCS 2016): causally
// consistent multi-object write transactions (two-phase commit with vector
// timestamps) and read-only transactions that read at a globally stable
// vector snapshot. Reads take two rounds (snapshot fetch + reads) and
// block whenever the snapshot is ahead of a server's locally stable state
// — in particular while a prepared-but-uncommitted transaction sits below
// the snapshot.
package cure

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/vclock"
)

// Protocol is the cure factory.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Name implements protocol.Protocol.
func (*Protocol) Name() string { return "cure" }

// Claims implements protocol.Protocol.
func (*Protocol) Claims() protocol.Claims {
	return protocol.Claims{
		OneRound:      false,
		OneValue:      true,
		NonBlocking:   false,
		MultiWriteTxn: true,
		Consistency:   "causal",
	}
}

// NewServer implements protocol.Protocol.
func (*Protocol) NewServer(id sim.ProcessID, pl *protocol.Placement) sim.Process {
	return &server{
		id: id, pl: pl, st: store.New(pl.HostedBy(id)...),
		idx: pl.ServerIndex(id), n: pl.NumServers(),
		known:   vclock.NewVector(pl.NumServers()),
		pending: make(map[model.TxnID]int64),
	}
}

// NewClient implements protocol.Protocol.
func (*Protocol) NewClient(id sim.ProcessID, pl *protocol.Placement) protocol.Client {
	return &client{Core: protocol.NewCore(id, pl), dep: vclock.NewVector(pl.NumServers())}
}

// --- payloads ---

type gsvReq struct{ TID model.TxnID }

func (p *gsvReq) Kind() string               { return "gsv-req" }
func (p *gsvReq) Clone() sim.Payload         { c := *p; return &c }
func (p *gsvReq) Txn() model.TxnID           { return p.TID }
func (p *gsvReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type gsvResp struct {
	TID model.TxnID
	GSV vclock.Vector
}

func (p *gsvResp) Kind() string               { return "gsv-resp" }
func (p *gsvResp) Clone() sim.Payload         { c := *p; c.GSV = p.GSV.Clone(); return &c }
func (p *gsvResp) Txn() model.TxnID           { return p.TID }
func (p *gsvResp) PayloadRole() protocol.Role { return protocol.RoleReadResp }

type readReq struct {
	TID  model.TxnID
	Objs []string
	Snap vclock.Vector
}

func (p *readReq) Kind() string { return "read-req" }
func (p *readReq) Clone() sim.Payload {
	c := *p
	c.Objs = append([]string(nil), p.Objs...)
	c.Snap = p.Snap.Clone()
	return &c
}
func (p *readReq) Txn() model.TxnID           { return p.TID }
func (p *readReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type readVal struct {
	Ref model.ValueRef
	Vec vclock.Vector
}

type readResp struct {
	TID  model.TxnID
	Vals []readVal
}

func (p *readResp) Kind() string { return "read-resp" }
func (p *readResp) Clone() sim.Payload {
	c := *p
	c.Vals = make([]readVal, len(p.Vals))
	for i, v := range p.Vals {
		if v.Vec != nil {
			v.Vec = v.Vec.Clone()
		}
		c.Vals[i] = v
	}
	return &c
}
func (p *readResp) Txn() model.TxnID           { return p.TID }
func (p *readResp) PayloadRole() protocol.Role { return protocol.RoleReadResp }
func (p *readResp) CarriedValues() []model.ValueRef {
	out := make([]model.ValueRef, 0, len(p.Vals))
	for _, v := range p.Vals {
		if v.Ref.Value != model.Bottom {
			out = append(out, v.Ref)
		}
	}
	return out
}

type prepareReq struct {
	TID    model.TxnID
	Writes []model.Write
	Dep    vclock.Vector
}

func (p *prepareReq) Kind() string { return "prepare" }
func (p *prepareReq) Clone() sim.Payload {
	c := *p
	c.Writes = append([]model.Write(nil), p.Writes...)
	c.Dep = p.Dep.Clone()
	return &c
}
func (p *prepareReq) Txn() model.TxnID           { return p.TID }
func (p *prepareReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type prepareAck struct {
	TID model.TxnID
	Idx int
	Seq int64
}

func (p *prepareAck) Kind() string               { return "prepare-ack" }
func (p *prepareAck) Clone() sim.Payload         { c := *p; return &c }
func (p *prepareAck) Txn() model.TxnID           { return p.TID }
func (p *prepareAck) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

type commitReq struct {
	TID model.TxnID
	Vec vclock.Vector
}

func (p *commitReq) Kind() string               { return "commit" }
func (p *commitReq) Clone() sim.Payload         { c := *p; c.Vec = p.Vec.Clone(); return &c }
func (p *commitReq) Txn() model.TxnID           { return p.TID }
func (p *commitReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type commitAck struct {
	TID model.TxnID
	Vec vclock.Vector
}

func (p *commitAck) Kind() string               { return "commit-ack" }
func (p *commitAck) Clone() sim.Payload         { c := *p; c.Vec = p.Vec.Clone(); return &c }
func (p *commitAck) Txn() model.TxnID           { return p.TID }
func (p *commitAck) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

type gossip struct {
	Idx    int
	Stable int64
}

func (p *gossip) Kind() string               { return "stable-gossip" }
func (p *gossip) Clone() sim.Payload         { c := *p; return &c }
func (p *gossip) Txn() model.TxnID           { return model.TxnID{} }
func (p *gossip) PayloadRole() protocol.Role { return protocol.RoleInternal }

// --- server ---

type parkedRead struct {
	From sim.ProcessID
	Req  *readReq
}

type server struct {
	id         sim.ProcessID
	pl         *protocol.Placement
	st         *store.Store
	idx, n     int
	nextSeq    int64
	applied    int64
	pending    map[model.TxnID]int64
	known      vclock.Vector
	lastGossip int64
	parked     []parkedRead
}

func (s *server) ID() sim.ProcessID { return s.id }
func (s *server) Ready() bool       { return false } // parks resolve on commit arrival

func (s *server) Clone() sim.Process {
	c := &server{
		id: s.id, pl: s.pl, st: s.st.Clone(), idx: s.idx, n: s.n,
		nextSeq: s.nextSeq, applied: s.applied, known: s.known.Clone(),
		lastGossip: s.lastGossip,
		pending:    make(map[model.TxnID]int64, len(s.pending)),
	}
	for k, v := range s.pending {
		c.pending[k] = v
	}
	for _, d := range s.parked {
		cp := *d.Req
		cp.Snap = d.Req.Snap.Clone()
		c.parked = append(c.parked, parkedRead{From: d.From, Req: &cp})
	}
	return c
}

// stable is the largest sequence with no pending prepare at or below it.
func (s *server) stable() int64 {
	st := s.applied
	for _, seq := range s.pending {
		if seq-1 < st {
			st = seq - 1
		}
	}
	return st
}

func (s *server) gsv() vclock.Vector {
	g := s.known.Clone()
	g[s.idx] = s.stable()
	return g
}

func (s *server) canServe(snap vclock.Vector) bool { return snap[s.idx] <= s.stable() }

func (s *server) serveRead(from sim.ProcessID, req *readReq) sim.Outbound {
	resp := &readResp{TID: req.TID}
	for _, obj := range req.Objs {
		// A version is inside the snapshot only if its entire commit
		// vector is dominated: an entry for another server above the
		// snapshot means the version (or a dependency) is not covered.
		// Among covered versions the winner is picked by the uniform
		// vector order, NOT install order: concurrent transactions
		// prepare in different orders at different servers, and an
		// install-order read would fracture their atomic visibility.
		v := s.st.SnapshotReadVec(obj, req.Snap)
		if v != nil {
			resp.Vals = append(resp.Vals, readVal{
				Ref: model.ValueRef{Object: obj, Value: v.Value, Writer: v.Writer},
				Vec: v.Vec,
			})
		} else {
			resp.Vals = append(resp.Vals, readVal{Ref: model.ValueRef{Object: obj, Value: model.Bottom}})
		}
	}
	return sim.Outbound{To: from, Payload: resp}
}

func (s *server) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	// Retry parked reads first so parking is observable as deferral.
	if len(s.parked) > 0 {
		var still []parkedRead
		for _, d := range s.parked {
			if s.canServe(d.Req.Snap) {
				out = append(out, s.serveRead(d.From, d.Req))
			} else {
				still = append(still, d)
			}
		}
		s.parked = still
	}
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *gsvReq:
			out = append(out, sim.Outbound{To: m.From, Payload: &gsvResp{TID: p.TID, GSV: s.gsv()}})
		case *readReq:
			if s.canServe(p.Snap) {
				out = append(out, s.serveRead(m.From, p))
			} else {
				s.parked = append(s.parked, parkedRead{From: m.From, Req: p})
			}
		case *prepareReq:
			s.nextSeq++
			seq := s.nextSeq
			s.pending[p.TID] = seq
			vec := vclock.NewVector(s.n)
			vec.Merge(p.Dep)
			vec[s.idx] = seq
			for _, w := range p.Writes {
				s.st.InstallOrdered(&store.Version{Object: w.Object, Value: w.Value, Writer: p.TID, Vec: vec})
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &prepareAck{TID: p.TID, Idx: s.idx, Seq: seq}})
		case *commitReq:
			delete(s.pending, p.TID)
			for _, obj := range s.st.Objects() {
				// Restamp (not a raw Vec overwrite) moves the version from
				// its prepare-time chain position to its commit-vector one,
				// keeping the chain in the uniform order snapshot reads
				// early-exit on.
				if v := s.st.Restamp(obj, p.TID, p.Vec.Clone()); v != nil {
					v.Visible = true
				}
			}
			if p.Vec[s.idx] > s.applied {
				s.applied = p.Vec[s.idx]
			}
			if s.nextSeq < s.applied {
				s.nextSeq = s.applied
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &commitAck{TID: p.TID, Vec: p.Vec.Clone()}})
		case *gossip:
			if p.Stable > s.known[p.Idx] {
				s.known[p.Idx] = p.Stable
			}
		default:
			panic(fmt.Sprintf("cure: server %s got %T", s.id, m.Payload))
		}
	}
	// Gossip the stable sequence when it advances.
	if st := s.stable(); st > s.lastGossip {
		s.lastGossip = st
		for _, other := range s.pl.Servers() {
			if other != s.id {
				out = append(out, sim.Outbound{To: other, Payload: &gossip{Idx: s.idx, Stable: st}})
			}
		}
	}
	return out
}

// --- client ---

type phase uint8

const (
	idle phase = iota
	gsvWait
	reading
	preparing
	committing
)

type client struct {
	protocol.Core
	phase   phase
	pending int
	dep     vclock.Vector
	snap    vclock.Vector
	commit  vclock.Vector
	writeTo []sim.ProcessID
	got     map[string]readVal
}

func (c *client) Clone() sim.Process {
	cp := &client{Core: c.CloneCore(), phase: c.phase, pending: c.pending, dep: c.dep.Clone()}
	if c.snap != nil {
		cp.snap = c.snap.Clone()
	}
	if c.commit != nil {
		cp.commit = c.commit.Clone()
	}
	cp.writeTo = append([]sim.ProcessID(nil), c.writeTo...)
	if c.got != nil {
		cp.got = make(map[string]readVal, len(c.got))
		for k, v := range c.got {
			cp.got[k] = v
		}
	}
	return cp
}

func (c *client) Ready() bool { return c.Busy() && !c.Started() }

func (c *client) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		if !c.Busy() {
			continue
		}
		switch p := m.Payload.(type) {
		case *gsvResp:
			if p.TID == c.Current().ID && c.phase == gsvWait {
				c.snap = p.GSV.Clone()
				c.pending--
			}
		case *readResp:
			if p.TID == c.Current().ID && c.phase == reading {
				for _, v := range p.Vals {
					c.got[v.Ref.Object] = v
				}
				c.pending--
			}
		case *prepareAck:
			if p.TID == c.Current().ID && c.phase == preparing {
				if p.Seq > c.commit[p.Idx] {
					c.commit[p.Idx] = p.Seq
				}
				c.pending--
			}
		case *commitAck:
			if p.TID == c.Current().ID && c.phase == committing {
				c.dep.Merge(p.Vec)
				c.pending--
			}
		}
	}
	if c.Starting(now) {
		t := c.Current()
		if len(t.Writes) > 0 && len(t.ReadSet) > 0 {
			c.Reject(now, "cure: read-write transactions unsupported in this model")
			return out
		}
		if t.IsReadOnly() {
			c.phase = gsvWait
			c.got = make(map[string]readVal)
			last := t.ReadSet[len(t.ReadSet)-1]
			out = append(out, sim.Outbound{To: c.Placement().PrimaryOf(last), Payload: &gsvReq{TID: t.ID}})
			c.pending = 1
		} else {
			c.phase = preparing
			c.commit = c.dep.Clone()
			writesBy := make(map[sim.ProcessID][]model.Write)
			for _, w := range t.Writes {
				for _, srv := range c.Placement().ReplicasOf(w.Object) {
					writesBy[srv] = append(writesBy[srv], w)
				}
			}
			srvs := make([]sim.ProcessID, 0, len(writesBy))
			for srv := range writesBy {
				srvs = append(srvs, srv)
			}
			sort.Slice(srvs, func(i, j int) bool { return srvs[i] < srvs[j] })
			c.writeTo = srvs
			for _, srv := range srvs {
				out = append(out, sim.Outbound{To: srv, Payload: &prepareReq{
					TID: t.ID, Writes: writesBy[srv], Dep: c.dep.Clone(),
				}})
				c.pending++
			}
		}
		c.SentRound()
		return out
	}
	if c.Busy() && c.Started() && c.pending == 0 {
		t := c.Current()
		switch c.phase {
		case gsvWait:
			c.snap.Merge(c.dep)
			c.phase = reading
			readsBy := make(map[sim.ProcessID][]string)
			for _, obj := range t.ReadSet {
				p := c.Placement().PrimaryOf(obj)
				readsBy[p] = append(readsBy[p], obj)
			}
			for _, srv := range c.Placement().Servers() {
				if objs, involved := readsBy[srv]; involved {
					out = append(out, sim.Outbound{To: srv, Payload: &readReq{TID: t.ID, Objs: objs, Snap: c.snap.Clone()}})
					c.pending++
				}
			}
			c.SentRound()
		case reading:
			for _, obj := range t.ReadSet {
				v := c.got[obj]
				c.Result().Values[obj] = v.Ref.Value
				if v.Vec != nil {
					c.dep.Merge(v.Vec)
				}
			}
			c.phase = idle
			c.got = nil
			c.Finish(now)
		case preparing:
			c.phase = committing
			for _, srv := range c.writeTo {
				out = append(out, sim.Outbound{To: srv, Payload: &commitReq{TID: t.ID, Vec: c.commit.Clone()}})
				c.pending++
			}
			c.SentRound()
		case committing:
			c.phase = idle
			c.writeTo = nil
			c.Finish(now)
		}
	}
	return out
}

// ShardStore exposes the durable version store for the reconfiguration
// layer's generic catch-up (protocol.StoreCarrier): a replacement server
// adopts missing versions from live peer replicas before serving.
func (s *server) ShardStore() *store.Store { return s.st }

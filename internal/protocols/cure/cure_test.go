package cure_test

import (
	"testing"

	"repro/internal/driver"
	"repro/internal/model"
	"repro/internal/protocols/cure"
	"repro/internal/protocols/ptest"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestConformance(t *testing.T) {
	ptest.Run(t, cure.New(), ptest.Expect{
		ROTRounds:  2,
		Blocking:   false, // happy path; parks under pending 2PC, below
		MultiWrite: true,
		Causal:     true,
	})
}

// TestReadParksBehindPendingPrepare: a prepared-but-uncommitted
// transaction below the requested snapshot parks the read; it is served
// once the commit arrives — and with the committed value, never a
// half-applied state.
func TestReadParksBehindPendingPrepare(t *testing.T) {
	d := ptest.Deploy(t, cure.New(), ptest.Expect{}, 139)
	// First a committed write to raise the stable vector.
	if res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "a0"}, model.Write{Object: "X1", Value: "a1"}), 400_000); !res.OK() {
		t.Fatal("first write failed")
	}
	d.Settle(400_000)

	// Second write: deliver prepares, but freeze the commit to s0.
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "b0"}, model.Write{Object: "X1", Value: "b1"}))
	d.Kernel.StepProcess("c0")
	for _, s := range []sim.ProcessID{"s0", "s1"} {
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: s}) {
			d.Kernel.Deliver(m.ID)
		}
		d.Kernel.StepProcess(s)
	}
	for _, s := range []sim.ProcessID{"s0", "s1"} {
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: s, To: "c0"}) {
			d.Kernel.Deliver(m.ID)
		}
	}
	d.Kernel.StepProcess("c0") // commits out
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: "s1"}) {
		d.Kernel.Deliver(m.ID)
	}
	d.Kernel.StepProcess("s1") // s1 committed; s0 pending

	// A frozen probe cannot complete against s0 if its snapshot covers
	// the pending write... but the stable vector advertised by the
	// servers excludes it, so the probe reads the PREVIOUS consistent
	// snapshot (a0, a1) — stale, consistent, non-mixed.
	res := d.Probe("r0", []string{"X0", "X1"}, []sim.ProcessID{"s0", "s1"}, true)
	if res != nil {
		v0, v1 := res.Value("X0"), res.Value("X1")
		if (v0 == "b0") != (v1 == "b1") {
			t.Fatalf("mixed read under pending 2PC: %v", res.Values)
		}
	}

	// After the commit is released, the new values become visible.
	d.Settle(400_000)
	vis := d.VisibleAll("r1", map[string]model.Value{"X0": "b0", "X1": "b1"}, true)
	if !vis.Visible {
		t.Fatalf("values invisible after commit released: %+v", vis)
	}
}

func TestWriterReadsOwnWritesImmediately(t *testing.T) {
	d := ptest.Deploy(t, cure.New(), ptest.Expect{}, 149)
	if res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "c0v"}, model.Write{Object: "X1", Value: "c1v"}), 400_000); !res.OK() {
		t.Fatal("write failed")
	}
	res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 400_000)
	if !res.OK() || res.Value("X0") != "c0v" || res.Value("X1") != "c1v" {
		t.Fatalf("writer misses own writes: %v", res)
	}
}

// TestLoadConformance certifies concurrent closed- and open-loop driver
// sweeps at the claimed consistency level.
func TestLoadConformance(t *testing.T) {
	ptest.RunLoad(t, cure.New(), ptest.Expect{LoadTxns: 128})
}

// TestConcurrentOppositeOrderCommitsStayAtomic pins the write-atomicity
// fix the concurrent harness exposed: two multi-server write transactions
// whose prepares and commits are delivered in OPPOSITE orders at the two
// servers (A first at s0, B first at s1) must never be observed
// half-visible — a reader fetching X0 from s0 and X1 from s1 at a
// snapshot covering both gets one transaction's pair, not a mix. The fix
// reads by the uniform vector order (store.SnapshotReadVec) instead of
// per-server install order.
func TestConcurrentOppositeOrderCommitsStayAtomic(t *testing.T) {
	d := ptest.Deploy(t, cure.New(), ptest.Expect{}, 163)
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "a0"}, model.Write{Object: "X1", Value: "a1"}))
	d.Invoke("c1", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "b0"}, model.Write{Object: "X1", Value: "b1"}))
	d.Kernel.StepProcess("c0") // prepares out
	d.Kernel.StepProcess("c1")

	// deliverStep hands every in-transit message on one link to its
	// destination and steps it, so per-link delivery order is exactly
	// the order of these calls.
	deliverStep := func(from, to sim.ProcessID) {
		t.Helper()
		for _, m := range d.Kernel.InTransitOn(sim.Link{From: from, To: to}) {
			d.Kernel.Deliver(m.ID)
			d.Kernel.StepProcess(to)
		}
	}

	// Prepares install in opposite orders: A then B at s0, B then A at s1.
	deliverStep("c0", "s0")
	deliverStep("c1", "s0")
	deliverStep("c1", "s1")
	deliverStep("c0", "s1")
	// Acks back; each client sends its commits.
	deliverStep("s0", "c0")
	deliverStep("s1", "c0")
	deliverStep("s0", "c1")
	deliverStep("s1", "c1")
	// Commits also land in opposite orders.
	deliverStep("c0", "s0")
	deliverStep("c1", "s0")
	deliverStep("c1", "s1")
	deliverStep("c0", "s1")
	if cl := d.Client("c0"); cl.Busy() {
		// Commit acks are still in transit; finish both writers.
		deliverStep("s0", "c0")
		deliverStep("s1", "c0")
		deliverStep("s0", "c1")
		deliverStep("s1", "c1")
	}

	// Let stabilization gossip advance the GSV over both commits, then
	// read across the servers.
	d.Settle(400_000)
	res := d.RunTxn("c2", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 400_000)
	if !res.OK() {
		t.Fatalf("cross-server read failed: %v", res)
	}
	v0, v1 := res.Value("X0"), res.Value("X1")
	pairA := v0 == "a0" && v1 == "a1"
	pairB := v0 == "b0" && v1 == "b1"
	if !pairA && !pairB {
		t.Fatalf("half-visible transaction under opposite-order commits: X0=%s X1=%s", v0, v1)
	}
}

// TestSnapshotArbitrationFractureIsInherent pins the minimal
// reproducer bisected from the E11/E13 cure fracture (16 clients /
// readheavy / seed 42): at 6 clients, 2 servers and a 70%-read mix the
// serial engine deterministically produces a history the causal-memory
// checker rejects for client c3 at index 135 (txn c3/23).
//
// The root cause is NOT a read/commit race in the model — it is
// inherent to Cure-style vector-stamped snapshot reads. Two concurrent
// multi-object write transactions A and B with incomparable commit
// vectors are arbitrated by the store's uniform vector order (say
// B > A), but snapshot covering is componentwise LessEq, which is not
// prefix-closed under that order: a snapshot can cover B without
// covering A. A client whose earlier ROT pins B into its past while
// reading another of A's objects from an older writer, and whose later
// ROT covers A, can no longer serialize its reads — A must land after
// the earlier ROT, yet A's write to the object shared with B is masked
// by B, which arbitration orders BEFORE A. Both snapshots are valid
// TCC snapshots (causally closed, transaction-atomic), so Cure's own
// guarantee holds; single-client causal-memory serializability is
// strictly stronger. See DESIGN.md "Cure: snapshot covering vs
// arbitration order" for the worked three-transaction witness.
func TestSnapshotArbitrationFractureIsInherent(t *testing.T) {
	mix := workload.Mix{ReadFraction: 0.7, ReadWidth: 2, WriteWidth: 2, ZipfS: 0.99}
	rep, err := driver.Run(cure.New(), driver.Config{
		Clients: 6, Txns: 138, Mix: mix, Seed: 6,
		Servers: 2, Rate: 0, Workers: 0,
		RecordHistory: true, Certify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cert.OK {
		t.Fatal("the pinned cure fracture certified clean; if a store or " +
			"protocol change legitimately closed the snapshot-covering gap, " +
			"update DESIGN.md and retire this reproducer")
	}
	if rep.Cert.FirstViolationID.String() != "c3/23" || rep.Cert.FirstViolation != 135 {
		t.Fatalf("fracture moved: first=%d id=%s (want 135 / c3/23) — the "+
			"schedule is no longer the bisected witness",
			rep.Cert.FirstViolation, rep.Cert.FirstViolationID)
	}
}

// TestFaultConformance certifies the standard persistent crash+restart
// and partition+heal nemesis sweeps on both stepping engines
// (ptest.RunFaults semantics).
func TestFaultConformance(t *testing.T) {
	ptest.RunFaults(t, cure.New(), ptest.Expect{})
}

// TestReconfigConformance certifies the standard replica-replacement and
// whole-cluster-restore sweeps on both stepping engines (ptest.RunReconfig
// semantics): non-lossy reconfiguration must lose nothing.
func TestReconfigConformance(t *testing.T) {
	ptest.RunReconfig(t, cure.New(), ptest.Expect{})
}

package ptest

import (
	"testing"

	"repro/internal/driver"
	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/workload"
)

// loadRate is the open-loop offered rate (transactions per virtual
// second) of the conformance sweep: moderate load for every modeled
// protocol — inter-arrival 1ms against service latencies of 2–8ms keeps
// a handful of transactions in flight without collapsing into pure
// queueing.
const loadRate = 1000

// RunLoad drives the protocol through a concurrent driver sweep — one
// closed-loop and one open-loop run per seed — and certifies each
// recorded history against the protocol's claimed consistency level via
// history.Check. It is the concurrency counterpart of Run's sequential
// suite: every protocol must survive real overlap, and the theorem's
// victims must be caught violating.
//
// Expectations come from the load fields of Expect: ViolatesUnderLoad
// requires at least one sweep to fail certification; FractureNote marks
// a known modeling gap as expected-failing (the suite skips, pointing at
// the ROADMAP item, when the fracture manifests); otherwise every sweep
// must certify clean.
func RunLoad(t *testing.T, p protocol.Protocol, e Expect) {
	t.Helper()
	seeds := e.LoadSeeds
	if len(seeds) == 0 {
		seeds = []int64{2}
	}
	txns := e.LoadTxns
	if txns == 0 {
		// One default for everyone: since the constraint-propagation
		// solver replaced the exhaustive search, refutation (proving NO
		// serialization exists for a violator) costs the same order as
		// acceptance, so violators no longer need a smaller window.
		txns = 72
	}
	if txns > history.MaxTxns {
		// Refuse up front: past the ceiling history.Check returns a
		// capacity refusal, which the ViolatesUnderLoad branch below
		// would otherwise count as the expected violation — a vacuous
		// pass with the checker never actually running.
		t.Fatalf("LoadTxns %d exceeds the checker ceiling %d", txns, history.MaxTxns)
	}
	srv, ops := e.Servers, e.ObjectsPerServer
	if srv == 0 {
		srv = 2
	}
	if ops == 0 {
		ops = 1
	}
	level := p.Claims().Consistency

	violations := 0
	for _, seed := range seeds {
		for _, rate := range []float64{0, loadRate} {
			mode := "closed"
			if rate > 0 {
				mode = "open"
			}
			rep, err := driver.Run(p, driver.Config{
				Clients: 8, Txns: txns, Mix: workload.Balanced(), Seed: seed,
				Servers: srv, ObjectsPerServer: ops,
				RecordHistory: true, Rate: rate,
			})
			if err != nil {
				t.Fatalf("%s-loop run (seed %d): %v", mode, seed, err)
			}
			if rep.Incomplete != 0 {
				t.Fatalf("%s-loop run (seed %d): %d transactions incomplete", mode, seed, rep.Incomplete)
			}
			if rep.Committed+rep.Rejected != rep.Issued {
				t.Fatalf("%s-loop run (seed %d): committed %d + rejected %d != issued %d",
					mode, seed, rep.Committed, rep.Rejected, rep.Issued)
			}
			if rate > 0 && rep.QueueDelay.N != rep.Committed {
				t.Fatalf("open-loop run (seed %d): %d queueing samples for %d commits",
					seed, rep.QueueDelay.N, rep.Committed)
			}
			v := history.Check(rep.History, level)
			switch {
			case v.OK:
				// certified at the claimed level
			case e.ViolatesUnderLoad:
				violations++
			case e.FractureNote != "":
				t.Skipf("known fracture under concurrent load (%s): %s-loop seed %d: %s",
					e.FractureNote, mode, seed, v.Reason)
			default:
				t.Fatalf("%s-loop run (seed %d) violates claimed %s: %s\n%s",
					mode, seed, level, v.Reason, rep.History)
			}
		}
	}
	if e.ViolatesUnderLoad && violations == 0 {
		t.Fatalf("%s is a known %s violator, but every concurrent sweep certified clean — "+
			"the load suite lost its teeth (seeds %v, %d txns)", p.Name(), level, seeds, txns)
	}
	if e.FractureNote != "" {
		t.Logf("%s: fracture did not manifest in this sweep (%s) — the marker may be removable",
			p.Name(), e.FractureNote)
	}
}

package ptest

import (
	"testing"

	"repro/internal/driver"
	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/workload"
)

// loadRate is the open-loop offered rate (transactions per virtual
// second) of the conformance sweep: moderate load for every modeled
// protocol — inter-arrival 1ms against service latencies of 2–8ms keeps
// a handful of transactions in flight without collapsing into pure
// queueing.
const loadRate = 1000

// RunLoad drives the protocol through a concurrent driver sweep — one
// closed-loop and one open-loop run per seed — with ride-along
// certification at the protocol's claimed consistency level: an
// incremental history.Session checks every commit as it lands, and the
// recorded history is re-checked by the batch solver, which must agree
// verdict for verdict. It is the concurrency counterpart of Run's
// sequential suite: every protocol must survive real overlap, and the
// theorem's victims must be caught violating — at a pinned first
// offending commit whose prefix itself refutes.
//
// Expectations come from the load fields of Expect: ViolatesUnderLoad
// requires at least one sweep to fail certification under EVERY stepping
// engine (a violator that only misbehaves on one engine's schedule would
// silently lose coverage when the default engine changes); FractureNote
// marks a known modeling gap as expected-failing (the suite skips,
// pointing at the ROADMAP item, when the fracture manifests); otherwise
// every sweep must certify clean.
//
// Every sweep runs twice: once on the serial scheduler and once on the
// sharded conservative-lookahead engine (Workers=1) — two different,
// equally valid deterministic schedules, and a protocol's claimed level
// must hold on both.
func RunLoad(t *testing.T, p protocol.Protocol, e Expect) {
	t.Helper()
	seeds := e.LoadSeeds
	if len(seeds) == 0 {
		seeds = []int64{2}
	}
	txns := e.LoadTxns
	if txns == 0 {
		// One default for everyone: since the constraint-propagation
		// solver replaced the exhaustive search, refutation (proving NO
		// serialization exists for a violator) costs the same order as
		// acceptance, so violators no longer need a smaller window.
		txns = 72
	}
	srv, ops := e.Servers, e.ObjectsPerServer
	if srv == 0 {
		srv = 2
	}
	if ops == 0 {
		ops = 1
	}
	level := p.Claims().Consistency

	engines := []struct {
		name    string
		workers int
	}{
		{"serial", 0},
		{"lookahead", 1},
	}
	violations := map[string]int{}
	for _, eng := range engines {
		for _, seed := range seeds {
			for _, rate := range []float64{0, loadRate} {
				mode := eng.name + "/closed"
				if rate > 0 {
					mode = eng.name + "/open"
				}
				rep, err := driver.Run(p, driver.Config{
					Clients: 8, Txns: txns, Mix: workload.Balanced(), Seed: seed,
					Servers: srv, ObjectsPerServer: ops,
					RecordHistory: true, Rate: rate, Certify: true,
					Workers: eng.workers,
				})
				if err != nil {
					t.Fatalf("%s-loop run (seed %d): %v", mode, seed, err)
				}
				if rep.Incomplete != 0 {
					t.Fatalf("%s-loop run (seed %d): %d transactions incomplete", mode, seed, rep.Incomplete)
				}
				if rep.Committed+rep.Rejected != rep.Issued {
					t.Fatalf("%s-loop run (seed %d): committed %d + rejected %d != issued %d",
						mode, seed, rep.Committed, rep.Rejected, rep.Issued)
				}
				if rate > 0 && rep.QueueDelay.N != rep.Committed {
					t.Fatalf("%s-loop run (seed %d): %d queueing samples for %d commits",
						mode, seed, rep.QueueDelay.N, rep.Committed)
				}
				v := *rep.Cert
				if rep.History.Len() <= history.MaxTxns {
					// The ride-along session and the one-shot batch solver
					// must agree on every sweep of every protocol — the
					// conformance half of the incremental checker's
					// contract. (Past history.MaxTxns the batch solver
					// refuses outright and the streaming session stands
					// alone; the conformance sweeps stay far below it.)
					if batch := history.CheckBatch(rep.History, level); batch.OK != v.OK {
						t.Fatalf("%s-loop run (seed %d): ride-along session says OK=%v (%s), batch says OK=%v (%s)",
							mode, seed, v.OK, v.Reason, batch.OK, batch.Reason)
					}
					// And the evicting ride-along session must match the
					// non-evicting bounded session verdict for verdict,
					// first offence included — the eviction sweep may never
					// change what is accepted, only what is retained.
					if want := history.CheckIncremental(rep.History, level); want.OK != v.OK ||
						want.FirstViolation != v.FirstViolation {
						t.Fatalf("%s-loop run (seed %d): evicting session OK=%v fv=%d (%s); bounded session OK=%v fv=%d (%s)",
							mode, seed, v.OK, v.FirstViolation, v.Reason,
							want.OK, want.FirstViolation, want.Reason)
					}
				}
				if !v.OK && e.ViolatesUnderLoad {
					// A violation must be pinned to its first offending
					// commit, and the appended prefix through it must itself
					// refute.
					if v.FirstViolation < 0 || v.FirstViolation >= rep.History.Len() {
						t.Fatalf("%s-loop run (seed %d): first violation index %d out of range: %s",
							mode, seed, v.FirstViolation, v.Reason)
					}
					if len(v.WitnessPrefix) != v.FirstViolation+1 {
						t.Fatalf("%s-loop run (seed %d): witness prefix has %d entries for first violation %d",
							mode, seed, len(v.WitnessPrefix), v.FirstViolation)
					}
					if pv := history.CheckBatch(rep.History.Prefix(v.FirstViolation+1), level); pv.OK {
						t.Fatalf("%s-loop run (seed %d): prefix through first offending commit %d certifies clean",
							mode, seed, v.FirstViolation)
					}
				}
				switch {
				case v.OK:
					// certified at the claimed level
				case e.ViolatesUnderLoad:
					violations[eng.name]++
				case e.FractureNote != "":
					t.Skipf("known fracture under concurrent load (%s): %s-loop seed %d: %s",
						e.FractureNote, mode, seed, v.Reason)
				default:
					t.Fatalf("%s-loop run (seed %d) violates claimed %s: %s\n%s",
						mode, seed, level, v.Reason, rep.History)
				}
			}
		}
	}
	if e.ViolatesUnderLoad {
		for _, eng := range engines {
			if violations[eng.name] == 0 {
				t.Fatalf("%s is a known %s violator, but every concurrent sweep on the %s engine "+
					"certified clean — the load suite lost its teeth (seeds %v, %d txns)",
					p.Name(), level, eng.name, seeds, txns)
			}
		}
	}
	if e.FractureNote != "" {
		t.Logf("%s: fracture did not manifest in this sweep (%s) — the marker may be removable",
			p.Name(), e.FractureNote)
	}
}

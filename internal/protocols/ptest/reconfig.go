package ptest

import (
	"testing"

	"repro/internal/driver"
	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/workload"
)

// RunReconfig drives the protocol through the standard reconfiguration
// sweep: one replica replacement (a fresh process adopts a dead server's
// shard, re-syncs from the durable image and live peers, and serves only
// once caught up) and one coordinated whole-cluster restore, each
// certified ride-along at the protocol's claimed consistency level on
// both stepping engines (serial and sharded lookahead). Both cycles are
// non-lossy — the durable image reattaches, held traffic is delayed and
// never dropped — so a protocol that certifies clean fault-free must
// certify clean through a reconfiguration too, losing nothing: this is
// the conformance half of the reconfiguration layer's contract, the
// reconfiguration mirror of RunFaults.
//
// Expectations reuse the load fields of Expect exactly as RunFaults does:
// ViolatesUnderLoad requires at least one reconfigured sweep to fail
// certification under EVERY engine; FaultFractureNote (or FractureNote)
// marks a known modeling gap as expected-failing; otherwise every sweep
// must certify clean, complete every transaction once the replacement has
// caught up, and lose no messages.
func RunReconfig(t *testing.T, p protocol.Protocol, e Expect) {
	t.Helper()
	seeds := e.LoadSeeds
	if len(seeds) == 0 {
		seeds = []int64{2}
	}
	txns := e.LoadTxns
	if txns == 0 {
		txns = 72
	}
	srv, ops := e.Servers, e.ObjectsPerServer
	if srv == 0 {
		srv = 2
	}
	if ops == 0 {
		ops = 1
	}
	fracture := e.FaultFractureNote
	if fracture == "" {
		fracture = e.FractureNote
	}
	level := p.Claims().Consistency

	engines := []struct {
		name    string
		workers int
	}{
		{"serial", 0},
		{"lookahead", 1},
	}
	schedules := []struct {
		name string
		nem  func() *driver.Nemesis
	}{
		// One replacement cycle (fires at Start+Period/4 = 9000): the
		// target is killed, a replacement adopts its shard and catches up,
		// the companion restart brings it back once synced.
		{"replace", func() *driver.Nemesis {
			return &driver.Nemesis{Replaces: 1, Start: 4_000, Period: 20_000}
		}},
		// One coordinated restore cycle (fires at Start+3·Period/4 =
		// 10000): every server stops together and rebuilds from its
		// durable snapshot.
		{"restore", func() *driver.Nemesis {
			return &driver.Nemesis{Restores: 1, Start: 4_000, Period: 8_000}
		}},
	}
	violations := map[string]int{}
	for _, eng := range engines {
		for _, sched := range schedules {
			for _, seed := range seeds {
				mode := eng.name + "/" + sched.name
				rep, err := driver.Run(p, driver.Config{
					Clients: 8, Txns: txns, Mix: workload.Balanced(), Seed: seed,
					Servers: srv, ObjectsPerServer: ops,
					RecordHistory: true, Certify: true,
					Workers: eng.workers,
					Nemesis: sched.nem(),
				})
				if err != nil {
					t.Fatalf("%s sweep (seed %d): %v", mode, seed, err)
				}
				if rep.Incomplete != 0 {
					t.Fatalf("%s sweep (seed %d): %d transactions incomplete after the replacement caught up",
						mode, seed, rep.Incomplete)
				}
				n := rep.Nemesis
				if n == nil || n.Replacements+n.Restores == 0 {
					t.Fatalf("%s sweep (seed %d): no reconfiguration applied: %+v", mode, seed, n)
				}
				if n.Applied != n.Scheduled {
					t.Fatalf("%s sweep (seed %d): applied %d of %d scheduled faults (companion restarts included)",
						mode, seed, n.Applied, n.Scheduled)
				}
				if n.SyncedVersions == 0 || n.SyncTime <= 0 {
					t.Fatalf("%s sweep (seed %d): replacement adopted no state (synced=%d, sync time %d)",
						mode, seed, n.SyncedVersions, n.SyncTime)
				}
				if n.UnavailableTime <= 0 {
					t.Fatalf("%s sweep (seed %d): reconfiguration applied but no unavailability window",
						mode, seed)
				}
				if n.LostMessages != 0 {
					t.Fatalf("%s sweep (seed %d): non-lossy reconfiguration lost %d messages",
						mode, seed, n.LostMessages)
				}
				v := *rep.Cert
				if rep.History.Len() <= history.MaxTxns {
					// The ride-along session and the batch solver must agree
					// across a reconfiguration exactly as fault-free.
					if batch := history.CheckBatch(rep.History, level); batch.OK != v.OK {
						t.Fatalf("%s sweep (seed %d): ride-along session says OK=%v (%s), batch says OK=%v (%s)",
							mode, seed, v.OK, v.Reason, batch.OK, batch.Reason)
					}
				}
				if !v.OK {
					// Every refutation — expected or not — must be pinned to
					// a first offending commit whose prefix itself refutes.
					if v.FirstViolation < 0 || v.FirstViolation >= rep.History.Len() {
						t.Fatalf("%s sweep (seed %d): first violation index %d out of range: %s",
							mode, seed, v.FirstViolation, v.Reason)
					}
					if pv := history.CheckBatch(rep.History.Prefix(v.FirstViolation+1), level); pv.OK {
						t.Fatalf("%s sweep (seed %d): prefix through first offending commit %d certifies clean",
							mode, seed, v.FirstViolation)
					}
				}
				switch {
				case v.OK:
					// Certified clean through the reconfiguration.
				case e.ViolatesUnderLoad:
					violations[eng.name]++
				case fracture != "":
					t.Skipf("known fracture under faults (%s): %s seed %d: %s",
						fracture, mode, seed, v.Reason)
				default:
					t.Fatalf("%s sweep (seed %d) violates claimed %s: %s\n%s",
						mode, seed, level, v.Reason, rep.History)
				}
			}
		}
	}
	if e.ViolatesUnderLoad {
		for _, eng := range engines {
			if violations[eng.name] == 0 {
				t.Fatalf("%s is a known %s violator, but every reconfigured sweep on the %s engine "+
					"certified clean — the reconfiguration suite lost its teeth (seeds %v, %d txns)",
					p.Name(), level, eng.name, seeds, txns)
			}
		}
	}
}

package ptest

import (
	"testing"

	"repro/internal/driver"
	"repro/internal/history"
	"repro/internal/protocol"
	"repro/internal/workload"
)

// RunFaults drives the protocol through the standard nemesis sweep: one
// persistent crash→restart cycle and one partition→heal cycle, each
// certified ride-along at the protocol's claimed consistency level on
// both stepping engines (serial and sharded lookahead). Persistence makes
// every fault observationally a long delay — held traffic is released,
// never dropped — so a protocol that certifies clean fault-free must
// certify clean here too: the sweep is the conformance half of the
// nemesis layer's contract, the mirror of RunLoad for faulted schedules.
//
// Expectations reuse the load fields of Expect: ViolatesUnderLoad
// requires at least one faulted sweep to fail certification under EVERY
// engine (the theorem's victims must stay caught when the network
// misbehaves, not only when it is merely slow); FaultFractureNote (or,
// if unset, FractureNote) marks a known modeling gap as expected-failing
// under faults; otherwise every sweep must certify clean, complete every
// transaction after heal, and lose no messages.
func RunFaults(t *testing.T, p protocol.Protocol, e Expect) {
	t.Helper()
	seeds := e.LoadSeeds
	if len(seeds) == 0 {
		seeds = []int64{2}
	}
	txns := e.LoadTxns
	if txns == 0 {
		txns = 72
	}
	srv, ops := e.Servers, e.ObjectsPerServer
	if srv == 0 {
		srv = 2
	}
	if ops == 0 {
		ops = 1
	}
	fracture := e.FaultFractureNote
	if fracture == "" {
		fracture = e.FractureNote
	}
	level := p.Claims().Consistency

	engines := []struct {
		name    string
		workers int
	}{
		{"serial", 0},
		{"lookahead", 1},
	}
	schedules := []struct {
		name string
		nem  func() *driver.Nemesis
	}{
		// Persistent crash: state and inbox survive the outage.
		{"crash", func() *driver.Nemesis {
			return &driver.Nemesis{Crashes: 1, Start: 5_000, Duration: 8_000}
		}},
		// Full bisection: every link across the cut severed, then healed.
		{"partition", func() *driver.Nemesis {
			return &driver.Nemesis{Partitions: 1, Start: 5_000, Duration: 8_000}
		}},
	}
	violations := map[string]int{}
	for _, eng := range engines {
		for _, sched := range schedules {
			for _, seed := range seeds {
				mode := eng.name + "/" + sched.name
				rep, err := driver.Run(p, driver.Config{
					Clients: 8, Txns: txns, Mix: workload.Balanced(), Seed: seed,
					Servers: srv, ObjectsPerServer: ops,
					RecordHistory: true, Certify: true,
					Workers: eng.workers,
					Nemesis: sched.nem(),
				})
				if err != nil {
					t.Fatalf("%s sweep (seed %d): %v", mode, seed, err)
				}
				if rep.Incomplete != 0 {
					t.Fatalf("%s sweep (seed %d): %d transactions incomplete after heal",
						mode, seed, rep.Incomplete)
				}
				n := rep.Nemesis
				if n == nil || n.Applied == 0 {
					t.Fatalf("%s sweep (seed %d): no fault applied: %+v", mode, seed, n)
				}
				if n.LostMessages != 0 {
					t.Fatalf("%s sweep (seed %d): persistent faults lost %d messages",
						mode, seed, n.LostMessages)
				}
				if n.UnavailableTime <= 0 {
					t.Fatalf("%s sweep (seed %d): fault applied but no unavailability window",
						mode, seed)
				}
				v := *rep.Cert
				if rep.History.Len() <= history.MaxTxns {
					// The ride-along session and the batch solver must agree
					// on faulted schedules exactly as on fault-free ones.
					if batch := history.CheckBatch(rep.History, level); batch.OK != v.OK {
						t.Fatalf("%s sweep (seed %d): ride-along session says OK=%v (%s), batch says OK=%v (%s)",
							mode, seed, v.OK, v.Reason, batch.OK, batch.Reason)
					}
				}
				if !v.OK {
					// Every refutation — expected or not — must be pinned to
					// a first offending commit whose prefix itself refutes.
					if v.FirstViolation < 0 || v.FirstViolation >= rep.History.Len() {
						t.Fatalf("%s sweep (seed %d): first violation index %d out of range: %s",
							mode, seed, v.FirstViolation, v.Reason)
					}
					if pv := history.CheckBatch(rep.History.Prefix(v.FirstViolation+1), level); pv.OK {
						t.Fatalf("%s sweep (seed %d): prefix through first offending commit %d certifies clean",
							mode, seed, v.FirstViolation)
					}
				}
				switch {
				case v.OK:
					// Certified clean across the fault.
				case e.ViolatesUnderLoad:
					violations[eng.name]++
				case fracture != "":
					t.Skipf("known fracture under faults (%s): %s seed %d: %s",
						fracture, mode, seed, v.Reason)
				default:
					t.Fatalf("%s sweep (seed %d) violates claimed %s: %s\n%s",
						mode, seed, level, v.Reason, rep.History)
				}
			}
		}
	}
	if e.ViolatesUnderLoad {
		for _, eng := range engines {
			if violations[eng.name] == 0 {
				t.Fatalf("%s is a known %s violator, but every faulted sweep on the %s engine "+
					"certified clean — the fault suite lost its teeth (seeds %v, %d txns)",
					p.Name(), level, eng.name, seeds, txns)
			}
		}
	}
}

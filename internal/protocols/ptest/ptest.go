// Package ptest provides a reusable conformance suite for protocol
// implementations: every modeled system must pass the same lifecycle,
// isolation and measurement checks, plus per-protocol property
// expectations (rounds, blocking, write-transaction support).
package ptest

import (
	"fmt"
	"testing"

	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/spec"
)

// Expect describes the measured properties a protocol must exhibit.
type Expect struct {
	// ROTRounds is the exact number of rounds a read-only transaction
	// over two objects takes on the happy path.
	ROTRounds int
	// MaxValuesPerObject is the per-object value bound in responses.
	MaxValuesPerObject int
	// Blocking is whether servers defer read responses.
	Blocking bool
	// MultiWrite is whether multi-object write transactions complete.
	MultiWrite bool
	// Causal is whether randomized workload histories must check causal.
	Causal bool
	// Servers/ObjectsPerServer size the test deployment (default 2/1).
	Servers, ObjectsPerServer int
	// SettleBeforeRead lets asynchronous visibility (cutoff/GST gossip)
	// complete before read-back assertions.
	SettleBeforeRead bool
	// ReadAsWriter makes the write-then-read and measurement checks read
	// from the writing client. Snapshot-based protocols (GentleRain,
	// Orbe, Cure) only guarantee immediate read-back for causally-ahead
	// clients; independent readers see a consistent-but-stale snapshot
	// until stabilization catches up.
	ReadAsWriter bool

	// --- RunLoad (concurrent driver sweep) expectations ---

	// ViolatesUnderLoad marks a known-by-design victim of the theorem
	// (naivefast, twopcfast, eigerps): at least one concurrent sweep
	// must FAIL certification at the claimed consistency level, and the
	// suite errors if every sweep certifies clean.
	ViolatesUnderLoad bool
	// FractureNote marks a protocol whose concurrent certification is
	// expected to fail because of a known modeling gap (eiger, fatcops —
	// see the ROADMAP open item named in the note). When the fracture
	// manifests, the load suite skips with this note; when it does not,
	// the suite passes and logs that the marker may be removable.
	FractureNote string
	// LoadSeeds are the driver seeds the load suite sweeps (default 2).
	// Fracture configurations pin the seeds where the race is known to
	// manifest.
	LoadSeeds []int64
	// FaultFractureNote marks a protocol whose certification is expected
	// to fail only under the RunFaults nemesis sweep (a fault-free-clean
	// protocol whose visibility fractures under the outage's reshuffled
	// delivery). When unset, RunFaults falls back to FractureNote.
	FaultFractureNote string
	// LoadTxns is the transaction count per load run (default 72). The
	// streaming ride-along session has no transaction ceiling (it
	// retires committed prefixes of its closure as the sweep runs), so
	// suites are free to sweep long concurrent windows; violators no
	// longer need a reduced window for refutation to finish. Sweeps at
	// or below history.MaxTxns additionally cross-check the verdict
	// against the batch solver and the non-evicting bounded session.
	LoadTxns int
}

// Deploy builds and initializes a deployment for tests.
func Deploy(t *testing.T, p protocol.Protocol, e Expect, seed int64) *protocol.Deployment {
	t.Helper()
	srv, ops := e.Servers, e.ObjectsPerServer
	if srv == 0 {
		srv = 2
	}
	if ops == 0 {
		ops = 1
	}
	d := protocol.Deploy(p, protocol.Config{Servers: srv, ObjectsPerServer: ops, Clients: 3, Seed: seed})
	if err := d.InitAll(400_000); err != nil {
		t.Fatalf("InitAll: %v", err)
	}
	return d
}

// Run executes the full conformance suite.
func Run(t *testing.T, p protocol.Protocol, e Expect) {
	t.Helper()
	t.Run("InitAndReadBack", func(t *testing.T) { initAndReadBack(t, p, e) })
	t.Run("WriteThenRead", func(t *testing.T) { writeThenRead(t, p, e) })
	t.Run("MeasuredProperties", func(t *testing.T) { measuredProperties(t, p, e) })
	t.Run("MultiWriteSupport", func(t *testing.T) { multiWrite(t, p, e) })
	t.Run("CloneIndependence", func(t *testing.T) { cloneIndependence(t, p, e) })
	t.Run("SequentialHistoryConsistent", func(t *testing.T) { sequentialHistory(t, p, e) })
	if e.Causal {
		t.Run("RandomSchedulesCausal", func(t *testing.T) { randomCausal(t, p, e) })
	}
}

func initAndReadBack(t *testing.T, p protocol.Protocol, e Expect) {
	d := Deploy(t, p, e, 11)
	objs := d.Place.Objects()
	res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, objs[0], objs[1]), 400_000)
	if !res.OK() {
		t.Fatalf("ROT failed: %v", res)
	}
	for _, o := range objs[:2] {
		if res.Value(o) != protocol.InitialValue(o) {
			t.Fatalf("read %s = %q, want initial %q", o, res.Value(o), protocol.InitialValue(o))
		}
	}
}

func writeThenRead(t *testing.T, p protocol.Protocol, e Expect) {
	d := Deploy(t, p, e, 13)
	objs := d.Place.Objects()
	if e.MultiWrite {
		w := model.NewWriteOnly(model.TxnID{},
			model.Write{Object: objs[0], Value: "w-a"}, model.Write{Object: objs[1], Value: "w-b"})
		if res := d.RunTxn("c0", w, 400_000); !res.OK() {
			t.Fatalf("multi-write failed: %v", res)
		}
	} else {
		for i, v := range []model.Value{"w-a", "w-b"} {
			w := model.NewWriteOnly(model.TxnID{}, model.Write{Object: objs[i], Value: v})
			if res := d.RunTxn("c0", w, 400_000); !res.OK() {
				t.Fatalf("write %d failed: %v", i, res)
			}
		}
	}
	if e.SettleBeforeRead {
		d.Settle(400_000)
	}
	reader := sim.ProcessID("c1")
	if e.ReadAsWriter {
		reader = "c0"
	}
	r := d.RunTxn(reader, model.NewReadOnly(model.TxnID{}, objs[0], objs[1]), 400_000)
	if r == nil || !r.OK() {
		t.Fatalf("read after write did not complete: %v", r)
	}
	if r.Value(objs[0]) != "w-a" || r.Value(objs[1]) != "w-b" {
		t.Fatalf("read after write = %v, want w-a/w-b", r.Values)
	}
}

func measuredProperties(t *testing.T, p protocol.Protocol, e Expect) {
	d := Deploy(t, p, e, 17)
	objs := d.Place.Objects()
	// Produce data so responses carry real values.
	if e.MultiWrite {
		d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
			model.Write{Object: objs[0], Value: "m-a"}, model.Write{Object: objs[1], Value: "m-b"}), 400_000)
	} else {
		d.RunTxn("c0", model.NewWriteOnly(model.TxnID{}, model.Write{Object: objs[0], Value: "m-a"}), 400_000)
		d.RunTxn("c0", model.NewWriteOnly(model.TxnID{}, model.Write{Object: objs[1], Value: "m-b"}), 400_000)
	}
	reader := sim.ProcessID("c1")
	if e.ReadAsWriter {
		reader = "c0" // read while causally ahead: exercises blocking
	} else {
		d.Settle(400_000)
	}
	from := d.Kernel.Trace().Len()
	res := d.RunTxn(reader, model.NewReadOnly(model.TxnID{}, objs[0], objs[1]), 400_000)
	if res == nil || !res.OK() {
		t.Fatalf("measured ROT failed: %v", res)
	}
	m := spec.MeasureResult(d, from, res)
	if m.Rounds != e.ROTRounds {
		t.Fatalf("rounds = %d, want %d (%s)", m.Rounds, e.ROTRounds, m)
	}
	maxV := e.MaxValuesPerObject
	if maxV == 0 {
		maxV = 1
	}
	if m.MaxValuesPerObject > maxV {
		t.Fatalf("values per object = %d, want <= %d", m.MaxValuesPerObject, maxV)
	}
	if m.Deferred != e.Blocking {
		t.Fatalf("deferred = %v, want %v (%s)", m.Deferred, e.Blocking, m)
	}
}

func multiWrite(t *testing.T, p protocol.Protocol, e Expect) {
	d := Deploy(t, p, e, 19)
	objs := d.Place.Objects()
	w := model.NewWriteOnly(model.TxnID{},
		model.Write{Object: objs[0], Value: "mw-a"}, model.Write{Object: objs[1], Value: "mw-b"})
	res := d.RunTxn("c0", w, 400_000)
	if e.MultiWrite && !res.OK() {
		t.Fatalf("multi-write rejected: %v", res)
	}
	if !e.MultiWrite && res.OK() {
		t.Fatal("multi-write accepted by a protocol without the W property")
	}
	// Claims must agree with behaviour.
	if p.Claims().MultiWriteTxn != e.MultiWrite {
		t.Fatalf("claims.MultiWriteTxn = %v, expected %v", p.Claims().MultiWriteTxn, e.MultiWrite)
	}
}

func cloneIndependence(t *testing.T, p protocol.Protocol, e Expect) {
	d := Deploy(t, p, e, 23)
	objs := d.Place.Objects()
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{}, model.Write{Object: objs[0], Value: "cl-a"}))
	snap := d.Kernel.Snapshot()
	cl := d.Client("c0")
	sim.Run(d.Kernel, &sim.RoundRobin{}, func(*sim.Kernel) bool { return !cl.Busy() }, 400_000)
	if cl.Busy() {
		t.Fatal("write did not complete")
	}
	if !snap.Process("c0").(protocol.Client).Busy() {
		t.Fatal("snapshot client shares state with original")
	}
	// The snapshot must be independently runnable to completion too.
	scl := snap.Process("c0").(protocol.Client)
	sim.Run(snap, &sim.RoundRobin{}, func(*sim.Kernel) bool { return !scl.Busy() }, 400_000)
	if scl.Busy() {
		t.Fatal("snapshot run did not complete")
	}
}

// sequentialHistory runs a strictly sequential workload and requires the
// recorded history to be causally consistent (every protocol, even the
// victims, is consistent when transactions never overlap and the system
// settles in between).
func sequentialHistory(t *testing.T, p protocol.Protocol, e Expect) {
	d := Deploy(t, p, e, 29)
	objs := d.Place.Objects()
	h := history.New(d.Initials())
	add := func(res *model.Result) {
		if res == nil || !res.OK() {
			t.Fatalf("sequential txn failed: %v", res)
		}
		h.AddResult(res)
	}
	add(d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, objs[0], objs[1]), 400_000))
	if e.MultiWrite {
		add(d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
			model.Write{Object: objs[0], Value: "sq-a"}, model.Write{Object: objs[1], Value: "sq-b"}), 400_000))
	} else {
		add(d.RunTxn("c0", model.NewWriteOnly(model.TxnID{}, model.Write{Object: objs[0], Value: "sq-a"}), 400_000))
		add(d.RunTxn("c0", model.NewWriteOnly(model.TxnID{}, model.Write{Object: objs[1], Value: "sq-b"}), 400_000))
	}
	d.Settle(400_000)
	add(d.RunTxn("c1", model.NewReadOnly(model.TxnID{}, objs[0], objs[1]), 400_000))
	add(d.RunTxn("c2", model.NewReadOnly(model.TxnID{}, objs[1]), 400_000))
	if v := history.CheckCausal(h); !v.OK {
		t.Fatalf("sequential history not causal: %s\n%s", v.Reason, h)
	}
}

// randomCausal checks causal consistency of concurrent workloads under
// several random schedules. Only protocols that actually guarantee causal
// consistency opt in.
func randomCausal(t *testing.T, p protocol.Protocol, e Expect) {
	for seed := int64(1); seed <= 5; seed++ {
		d := Deploy(t, p, e, seed*100)
		objs := d.Place.Objects()
		h := history.New(d.Initials())
		sched := sim.NewRandom(seed * 7)

		phase := func(invs map[sim.ProcessID]*model.Txn) {
			ids := make(map[sim.ProcessID]model.TxnID)
			for c, txn := range invs {
				ids[c] = d.Invoke(c, txn)
			}
			sim.Run(d.Kernel, sched, func(*sim.Kernel) bool {
				for c := range invs {
					if d.Client(c).Busy() {
						return false
					}
				}
				return true
			}, 400_000)
			for c := range invs {
				res := d.Client(c).Results()[ids[c]]
				if res == nil {
					t.Fatalf("seed %d: txn at %s did not complete", seed, c)
				}
				if res.OK() {
					h.AddResult(res)
				}
			}
		}
		mkw := func(tag string) *model.Txn {
			if e.MultiWrite {
				return model.NewWriteOnly(model.TxnID{},
					model.Write{Object: objs[0], Value: model.Value(tag + "0")},
					model.Write{Object: objs[1], Value: model.Value(tag + "1")})
			}
			return model.NewWriteOnly(model.TxnID{}, model.Write{Object: objs[0], Value: model.Value(tag + "0")})
		}
		phase(map[sim.ProcessID]*model.Txn{
			"c0": model.NewReadOnly(model.TxnID{}, objs[0], objs[1]),
			"c1": mkw(fmt.Sprintf("a%d-", seed)),
		})
		phase(map[sim.ProcessID]*model.Txn{
			"c0": mkw(fmt.Sprintf("b%d-", seed)),
			"c1": model.NewReadOnly(model.TxnID{}, objs[0], objs[1]),
			"c2": model.NewReadOnly(model.TxnID{}, objs[1]),
		})
		phase(map[sim.ProcessID]*model.Txn{
			"c0": model.NewReadOnly(model.TxnID{}, objs[0], objs[1]),
			"c2": model.NewReadOnly(model.TxnID{}, objs[0]),
		})
		if v := history.CheckCausal(h); !v.OK {
			t.Fatalf("seed %d: history not causal: %s\n%s", seed, v.Reason, h)
		}
	}
}

package gentlerain_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/protocols/gentlerain"
	"repro/internal/protocols/ptest"
)

func TestConformance(t *testing.T) {
	ptest.Run(t, gentlerain.New(), ptest.Expect{
		ROTRounds:    2,    // GST fetch + snapshot reads
		Blocking:     true, // causally-ahead readers park
		MultiWrite:   false,
		Causal:       true,
		ReadAsWriter: true, // GST freshness lags for independent readers
	})
}

func TestIndependentReaderSeesConsistentStaleSnapshot(t *testing.T) {
	d := ptest.Deploy(t, gentlerain.New(), ptest.Expect{}, 113)
	// c0 writes both objects (single-object transactions, X0 then X1).
	if res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{}, model.Write{Object: "X0", Value: "g0"}), 400_000); !res.OK() {
		t.Fatal("write g0 failed")
	}
	if res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{}, model.Write{Object: "X1", Value: "g1"}), 400_000); !res.OK() {
		t.Fatal("write g1 failed")
	}
	// An independent reader may see stale values (GST lag) but never an
	// inverted pair: g1 (which causally follows g0) without g0.
	res := d.RunTxn("c1", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 400_000)
	if !res.OK() {
		t.Fatal("read failed")
	}
	if res.Value("X1") == "g1" && res.Value("X0") != "g0" {
		t.Fatalf("causal inversion: %v", res.Values)
	}
}

func TestWriterReadsOwnCausalPast(t *testing.T) {
	d := ptest.Deploy(t, gentlerain.New(), ptest.Expect{}, 127)
	if res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{}, model.Write{Object: "X1", Value: "h1"}), 400_000); !res.OK() {
		t.Fatal("write failed")
	}
	res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 400_000)
	if !res.OK() || res.Value("X1") != "h1" {
		t.Fatalf("writer did not read own write: %v", res)
	}
	if res.Value("X0") != protocol.InitialValue("X0") {
		t.Fatalf("unexpected X0: %v", res.Values)
	}
}

func TestRejectsMultiWrite(t *testing.T) {
	d := ptest.Deploy(t, gentlerain.New(), ptest.Expect{}, 131)
	res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "m0"}, model.Write{Object: "X1", Value: "m1"}), 400_000)
	if res.OK() {
		t.Fatal("multi-object write accepted")
	}
}

// TestLoadConformance certifies concurrent closed- and open-loop driver
// sweeps at the claimed consistency level.
func TestLoadConformance(t *testing.T) {
	ptest.RunLoad(t, gentlerain.New(), ptest.Expect{LoadTxns: 96})
}

// TestFaultConformance certifies the standard persistent crash+restart
// and partition+heal nemesis sweeps on both stepping engines
// (ptest.RunFaults semantics).
func TestFaultConformance(t *testing.T) {
	ptest.RunFaults(t, gentlerain.New(), ptest.Expect{})
}

// TestReconfigConformance certifies the standard replica-replacement and
// whole-cluster-restore sweeps on both stepping engines (ptest.RunReconfig
// semantics): non-lossy reconfiguration must lose nothing.
func TestReconfigConformance(t *testing.T) {
	ptest.RunReconfig(t, gentlerain.New(), ptest.Expect{})
}

// Package gentlerain models GentleRain (Du et al., SoCC 2014): causally
// consistent single-object writes stamped with (loosely synchronized)
// physical clocks, and read-only transactions that read at the Global
// Stable Time (GST) — the minimum clock across servers. Reads take two
// rounds (GST fetch + snapshot reads) and BLOCK when the snapshot —
// raised by the client's own causal past — is ahead of a server's clock.
// Freshness is sacrificed: a reader with no causal past sees the possibly
// lagging GST snapshot.
package gentlerain

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/vclock"
)

// Protocol is the gentlerain factory.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Name implements protocol.Protocol.
func (*Protocol) Name() string { return "gentlerain" }

// Claims implements protocol.Protocol.
func (*Protocol) Claims() protocol.Claims {
	return protocol.Claims{
		OneRound:      false,
		OneValue:      true,
		NonBlocking:   false,
		MultiWriteTxn: false,
		Consistency:   "causal",
	}
}

// NewServer implements protocol.Protocol.
func (*Protocol) NewServer(id sim.ProcessID, pl *protocol.Placement) sim.Process {
	return &server{
		id: id, pl: pl, st: store.New(pl.HostedBy(id)...),
		hlc: &vclock.HLC{}, known: make(map[sim.ProcessID]vclock.HLCStamp),
	}
}

// NewClient implements protocol.Protocol.
func (*Protocol) NewClient(id sim.ProcessID, pl *protocol.Placement) protocol.Client {
	return &client{Core: protocol.NewCore(id, pl)}
}

// --- payloads ---

type gstReq struct{ TID model.TxnID }

func (p *gstReq) Kind() string               { return "gst-req" }
func (p *gstReq) Clone() sim.Payload         { c := *p; return &c }
func (p *gstReq) Txn() model.TxnID           { return p.TID }
func (p *gstReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type gstResp struct {
	TID model.TxnID
	GST vclock.HLCStamp
}

func (p *gstResp) Kind() string               { return "gst-resp" }
func (p *gstResp) Clone() sim.Payload         { c := *p; return &c }
func (p *gstResp) Txn() model.TxnID           { return p.TID }
func (p *gstResp) PayloadRole() protocol.Role { return protocol.RoleReadResp }

type readReq struct {
	TID  model.TxnID
	Objs []string
	Snap vclock.HLCStamp
}

func (p *readReq) Kind() string               { return "read-req" }
func (p *readReq) Clone() sim.Payload         { c := *p; c.Objs = append([]string(nil), p.Objs...); return &c }
func (p *readReq) Txn() model.TxnID           { return p.TID }
func (p *readReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type readVal struct {
	Ref   model.ValueRef
	Stamp vclock.HLCStamp
}

type readResp struct {
	TID  model.TxnID
	Vals []readVal
}

func (p *readResp) Kind() string { return "read-resp" }
func (p *readResp) Clone() sim.Payload {
	c := *p
	c.Vals = append([]readVal(nil), p.Vals...)
	return &c
}
func (p *readResp) Txn() model.TxnID           { return p.TID }
func (p *readResp) PayloadRole() protocol.Role { return protocol.RoleReadResp }
func (p *readResp) CarriedValues() []model.ValueRef {
	out := make([]model.ValueRef, 0, len(p.Vals))
	for _, v := range p.Vals {
		if v.Ref.Value != model.Bottom {
			out = append(out, v.Ref)
		}
	}
	return out
}

type writeReq struct {
	TID   model.TxnID
	W     model.Write
	DepTS vclock.HLCStamp
}

func (p *writeReq) Kind() string               { return "write-req" }
func (p *writeReq) Clone() sim.Payload         { c := *p; return &c }
func (p *writeReq) Txn() model.TxnID           { return p.TID }
func (p *writeReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type writeResp struct {
	TID model.TxnID
	TS  vclock.HLCStamp
}

func (p *writeResp) Kind() string               { return "write-ack" }
func (p *writeResp) Clone() sim.Payload         { c := *p; return &c }
func (p *writeResp) Txn() model.TxnID           { return p.TID }
func (p *writeResp) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

type gossip struct {
	From  sim.ProcessID
	Clock vclock.HLCStamp
}

func (p *gossip) Kind() string               { return "clock-gossip" }
func (p *gossip) Clone() sim.Payload         { c := *p; return &c }
func (p *gossip) Txn() model.TxnID           { return model.TxnID{} }
func (p *gossip) PayloadRole() protocol.Role { return protocol.RoleInternal }

// --- server ---

type parkedRead struct {
	From sim.ProcessID
	Req  *readReq
}

type server struct {
	id         sim.ProcessID
	pl         *protocol.Placement
	st         *store.Store
	hlc        *vclock.HLC
	known      map[sim.ProcessID]vclock.HLCStamp
	lastGossip vclock.HLCStamp
	parked     []parkedRead
	initSeq    int64
}

func (s *server) ID() sim.ProcessID { return s.id }
func (s *server) Ready() bool       { return len(s.parked) > 0 }

// WakeAt implements sim.Waker: a read parked on a snapshot ahead of the
// server clock unparks once the clock's wall time (which tracks virtual
// time) strictly passes the snapshot's wall component — Snap.Wall+1 is
// always enough regardless of the logical tie-break.
func (s *server) WakeAt(now sim.Time) (sim.Time, bool) {
	var wake sim.Time
	ok := false
	for _, d := range s.parked {
		t := sim.Time(d.Req.Snap.Wall + 1)
		if !ok || t < wake {
			wake, ok = t, true
		}
	}
	if ok && wake < now {
		wake = now
	}
	return wake, ok
}

func (s *server) Clone() sim.Process {
	c := &server{
		id: s.id, pl: s.pl, st: s.st.Clone(), hlc: s.hlc.Clone(),
		known:      make(map[sim.ProcessID]vclock.HLCStamp, len(s.known)),
		lastGossip: s.lastGossip, initSeq: s.initSeq,
	}
	for k, v := range s.known {
		c.known[k] = v
	}
	for _, d := range s.parked {
		cp := *d.Req
		c.parked = append(c.parked, parkedRead{From: d.From, Req: &cp})
	}
	return c
}

func (s *server) clock() vclock.HLCStamp {
	return vclock.HLCStamp{Wall: s.hlc.Wall, Logical: s.hlc.Logical}
}

func (s *server) gst() vclock.HLCStamp {
	g := s.clock()
	for _, other := range s.pl.Servers() {
		if other == s.id {
			continue
		}
		ks, heard := s.known[other]
		if !heard {
			return vclock.HLCStamp{}
		}
		if ks.Before(g) {
			g = ks
		}
	}
	return g
}

func (s *server) serveRead(from sim.ProcessID, req *readReq) sim.Outbound {
	resp := &readResp{TID: req.TID}
	for _, obj := range req.Objs {
		if v := s.st.SnapshotRead(obj, req.Snap); v != nil {
			resp.Vals = append(resp.Vals, readVal{
				Ref:   model.ValueRef{Object: obj, Value: v.Value, Writer: v.Writer},
				Stamp: v.Stamp,
			})
		} else {
			resp.Vals = append(resp.Vals, readVal{Ref: model.ValueRef{Object: obj, Value: model.Bottom}})
		}
	}
	return sim.Outbound{To: from, Payload: resp}
}

func (s *server) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	// Retry parked reads FIRST (before new input): a read parked in step k
	// is served in step k+1 at the earliest, so the wait is observable as
	// a deferred (blocking) response.
	if len(s.parked) > 0 {
		s.hlc.Now(int64(now))
		var still []parkedRead
		for _, d := range s.parked {
			if d.Req.Snap.Before(s.clock()) || d.Req.Snap.Compare(s.clock()) == 0 {
				out = append(out, s.serveRead(d.From, d.Req))
			} else {
				still = append(still, d)
			}
		}
		s.parked = still
	}
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *gstReq:
			// Clocks track physical time: advance before answering so the
			// GST is not stuck at the last write.
			s.hlc.Now(int64(now))
			out = append(out, sim.Outbound{To: m.From, Payload: &gstResp{TID: p.TID, GST: s.gst()}})
		case *readReq:
			if p.Snap.Before(s.clock()) || p.Snap.Compare(s.clock()) == 0 {
				out = append(out, s.serveRead(m.From, p))
			} else {
				s.parked = append(s.parked, parkedRead{From: m.From, Req: p})
			}
		case *writeReq:
			var ts vclock.HLCStamp
			if protocol.IsInitClient(sim.ProcessID(p.TID.Client)) {
				// Initial versions sit at the bottom of the timestamp
				// order so any GST covers them.
				s.initSeq++
				ts = vclock.HLCStamp{Wall: 1, Logical: s.initSeq}
				s.hlc.Observe(int64(now), ts)
			} else {
				s.hlc.Observe(int64(now), p.DepTS)
				ts = s.hlc.Now(int64(now))
			}
			s.st.Install(&store.Version{Object: p.W.Object, Value: p.W.Value, Writer: p.TID, Stamp: ts, Visible: true})
			out = append(out, sim.Outbound{To: m.From, Payload: &writeResp{TID: p.TID, TS: ts}})
		case *gossip:
			if cur, heard := s.known[p.From]; !heard || cur.Before(p.Clock) {
				s.known[p.From] = p.Clock
			}
		default:
			panic(fmt.Sprintf("gentlerain: server %s got %T", s.id, m.Payload))
		}
	}
	// Event-driven clock gossip whenever the clock advanced.
	if c := s.clock(); s.lastGossip.Before(c) {
		s.lastGossip = c
		for _, other := range s.pl.Servers() {
			if other != s.id {
				out = append(out, sim.Outbound{To: other, Payload: &gossip{From: s.id, Clock: c}})
			}
		}
	}
	return out
}

// --- client ---

type phase uint8

const (
	idle phase = iota
	gstWait
	reading
	writing
)

type client struct {
	protocol.Core
	phase   phase
	pending int
	depTS   vclock.HLCStamp
	snap    vclock.HLCStamp
	got     map[string]readVal
}

func (c *client) Clone() sim.Process {
	cp := &client{Core: c.CloneCore(), phase: c.phase, pending: c.pending, depTS: c.depTS, snap: c.snap}
	if c.got != nil {
		cp.got = make(map[string]readVal, len(c.got))
		for k, v := range c.got {
			cp.got[k] = v
		}
	}
	return cp
}

func (c *client) Ready() bool { return c.Busy() && !c.Started() }

func (c *client) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		if !c.Busy() {
			continue
		}
		switch p := m.Payload.(type) {
		case *gstResp:
			if p.TID == c.Current().ID && c.phase == gstWait {
				c.snap = p.GST
				c.pending--
			}
		case *readResp:
			if p.TID == c.Current().ID && c.phase == reading {
				for _, v := range p.Vals {
					c.got[v.Ref.Object] = v
				}
				c.pending--
			}
		case *writeResp:
			if p.TID == c.Current().ID && c.phase == writing {
				if c.depTS.Before(p.TS) {
					c.depTS = p.TS
				}
				c.pending--
			}
		}
	}
	if c.Starting(now) {
		t := c.Current()
		if len(t.WriteSet()) > 1 {
			c.Reject(now, "gentlerain: multi-object write transactions unsupported")
			return out
		}
		if len(t.Writes) > 0 && len(t.ReadSet) > 0 {
			c.Reject(now, "gentlerain: read-write transactions unsupported")
			return out
		}
		if t.IsReadOnly() {
			c.phase = gstWait
			c.got = make(map[string]readVal)
			// GST from the client's designated server (we use the server
			// of the last object in the read set).
			last := t.ReadSet[len(t.ReadSet)-1]
			out = append(out, sim.Outbound{To: c.Placement().PrimaryOf(last), Payload: &gstReq{TID: t.ID}})
			c.pending = 1
		} else {
			c.phase = writing
			w := t.Writes[len(t.Writes)-1]
			out = append(out, sim.Outbound{To: c.Placement().PrimaryOf(w.Object), Payload: &writeReq{
				TID: t.ID, W: w, DepTS: c.depTS,
			}})
			c.pending = 1
		}
		c.SentRound()
		return out
	}
	if c.Busy() && c.Started() && c.pending == 0 {
		t := c.Current()
		switch c.phase {
		case gstWait:
			// The snapshot must cover the client's causal past — this is
			// what makes reads block when the client is ahead of a
			// server's clock.
			if c.snap.Before(c.depTS) {
				c.snap = c.depTS
			}
			c.phase = reading
			readsBy := make(map[sim.ProcessID][]string)
			for _, obj := range t.ReadSet {
				p := c.Placement().PrimaryOf(obj)
				readsBy[p] = append(readsBy[p], obj)
			}
			for _, srv := range c.Placement().Servers() {
				if objs, involved := readsBy[srv]; involved {
					out = append(out, sim.Outbound{To: srv, Payload: &readReq{TID: t.ID, Objs: objs, Snap: c.snap}})
					c.pending++
				}
			}
			c.SentRound()
		case reading:
			for _, obj := range t.ReadSet {
				v := c.got[obj]
				c.Result().Values[obj] = v.Ref.Value
				if c.depTS.Before(v.Stamp) {
					c.depTS = v.Stamp
				}
			}
			c.phase = idle
			c.got = nil
			c.Finish(now)
		case writing:
			c.phase = idle
			c.Finish(now)
		}
	}
	return out
}

// ShardStore exposes the durable version store for the reconfiguration
// layer's generic catch-up (protocol.StoreCarrier): a replacement server
// adopts missing versions from live peer replicas before serving.
func (s *server) ShardStore() *store.Store { return s.st }

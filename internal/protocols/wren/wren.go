// Package wren models Wren (Spirovska et al., DSN 2018), the paper's
// N+V+W corner: non-blocking, one-value read-only transactions that
// coexist with multi-object write transactions and causal consistency —
// at the price of the one-round property (every ROT pays an extra round
// to learn the stable cutoff timestamp).
//
// Mechanism: write transactions run two-phase commit with hybrid logical
// clock timestamps; a version is pending between prepare and commit.
// Every server maintains a local stable timestamp (no pending transaction
// at or below it) and gossips it; the cutoff — the minimum across servers
// — identifies a snapshot that read-only transactions can read without
// blocking. Round 1 of a ROT fetches the cutoff from one server (a pure
// metadata exchange, allowed by the one-value property); round 2 reads
// every object at that snapshot. Clients additionally cache their own
// writes so they read their own writes even when the cutoff lags.
package wren

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/vclock"
)

// Protocol is the wren factory.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Name implements protocol.Protocol.
func (*Protocol) Name() string { return "wren" }

// Claims implements protocol.Protocol.
func (*Protocol) Claims() protocol.Claims {
	return protocol.Claims{
		OneRound:      false, // the extra cutoff round
		OneValue:      true,
		NonBlocking:   true,
		MultiWriteTxn: true,
		Consistency:   "causal",
	}
}

// NewServer implements protocol.Protocol.
func (*Protocol) NewServer(id sim.ProcessID, pl *protocol.Placement) sim.Process {
	return &server{
		id: id, pl: pl, st: store.New(pl.HostedBy(id)...),
		hlc:     &vclock.HLC{},
		pending: make(map[model.TxnID]vclock.HLCStamp),
		known:   make(map[sim.ProcessID]vclock.HLCStamp),
	}
}

// NewClient implements protocol.Protocol.
func (*Protocol) NewClient(id sim.ProcessID, pl *protocol.Placement) protocol.Client {
	return &client{Core: protocol.NewCore(id, pl), cache: make(map[string]cached)}
}

// --- payloads ---

type stableReq struct {
	TID model.TxnID
}

func (p *stableReq) Kind() string               { return "stable-req" }
func (p *stableReq) Clone() sim.Payload         { c := *p; return &c }
func (p *stableReq) Txn() model.TxnID           { return p.TID }
func (p *stableReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type stableResp struct {
	TID    model.TxnID
	Cutoff vclock.HLCStamp
}

func (p *stableResp) Kind() string               { return "stable-resp" }
func (p *stableResp) Clone() sim.Payload         { c := *p; return &c }
func (p *stableResp) Txn() model.TxnID           { return p.TID }
func (p *stableResp) PayloadRole() protocol.Role { return protocol.RoleReadResp }

type readReq struct {
	TID  model.TxnID
	Objs []string
	Snap vclock.HLCStamp
}

func (p *readReq) Kind() string               { return "read-req" }
func (p *readReq) Clone() sim.Payload         { c := *p; c.Objs = append([]string(nil), p.Objs...); return &c }
func (p *readReq) Txn() model.TxnID           { return p.TID }
func (p *readReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type readVal struct {
	Ref   model.ValueRef
	Stamp vclock.HLCStamp
}

type readResp struct {
	TID  model.TxnID
	Vals []readVal
}

func (p *readResp) Kind() string { return "read-resp" }
func (p *readResp) Clone() sim.Payload {
	c := *p
	c.Vals = append([]readVal(nil), p.Vals...)
	return &c
}
func (p *readResp) Txn() model.TxnID           { return p.TID }
func (p *readResp) PayloadRole() protocol.Role { return protocol.RoleReadResp }
func (p *readResp) CarriedValues() []model.ValueRef {
	out := make([]model.ValueRef, 0, len(p.Vals))
	for _, v := range p.Vals {
		if v.Ref.Value != model.Bottom {
			out = append(out, v.Ref)
		}
	}
	return out
}

type prepareReq struct {
	TID    model.TxnID
	Writes []model.Write
	DepTS  vclock.HLCStamp
}

func (p *prepareReq) Kind() string { return "prepare" }
func (p *prepareReq) Clone() sim.Payload {
	c := *p
	c.Writes = append([]model.Write(nil), p.Writes...)
	return &c
}
func (p *prepareReq) Txn() model.TxnID           { return p.TID }
func (p *prepareReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type prepareAck struct {
	TID model.TxnID
	TS  vclock.HLCStamp
}

func (p *prepareAck) Kind() string               { return "prepare-ack" }
func (p *prepareAck) Clone() sim.Payload         { c := *p; return &c }
func (p *prepareAck) Txn() model.TxnID           { return p.TID }
func (p *prepareAck) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

type commitReq struct {
	TID model.TxnID
	TS  vclock.HLCStamp
}

func (p *commitReq) Kind() string               { return "commit" }
func (p *commitReq) Clone() sim.Payload         { c := *p; return &c }
func (p *commitReq) Txn() model.TxnID           { return p.TID }
func (p *commitReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type commitAck struct {
	TID model.TxnID
	TS  vclock.HLCStamp
}

func (p *commitAck) Kind() string               { return "commit-ack" }
func (p *commitAck) Clone() sim.Payload         { c := *p; return &c }
func (p *commitAck) Txn() model.TxnID           { return p.TID }
func (p *commitAck) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

type gossip struct {
	From   sim.ProcessID
	Stable vclock.HLCStamp
}

func (p *gossip) Kind() string               { return "stable-gossip" }
func (p *gossip) Clone() sim.Payload         { c := *p; return &c }
func (p *gossip) Txn() model.TxnID           { return model.TxnID{} }
func (p *gossip) PayloadRole() protocol.Role { return protocol.RoleInternal }

// --- server ---

type server struct {
	id      sim.ProcessID
	pl      *protocol.Placement
	st      *store.Store
	hlc     *vclock.HLC
	pending map[model.TxnID]vclock.HLCStamp
	known   map[sim.ProcessID]vclock.HLCStamp
	// lastGossip is the last stable value broadcast, to gossip only on
	// change (keeps the event-driven gossip from looping forever).
	lastGossip vclock.HLCStamp
}

func (s *server) ID() sim.ProcessID { return s.id }
func (s *server) Ready() bool       { return false }

func (s *server) Clone() sim.Process {
	c := &server{
		id: s.id, pl: s.pl, st: s.st.Clone(), hlc: s.hlc.Clone(),
		pending:    make(map[model.TxnID]vclock.HLCStamp, len(s.pending)),
		known:      make(map[sim.ProcessID]vclock.HLCStamp, len(s.known)),
		lastGossip: s.lastGossip,
	}
	for k, v := range s.pending {
		c.pending[k] = v
	}
	for k, v := range s.known {
		c.known[k] = v
	}
	return c
}

// localStable returns the largest timestamp with no pending prepare at or
// below it.
func (s *server) localStable() vclock.HLCStamp {
	st := vclock.HLCStamp{Wall: s.hlc.Wall, Logical: s.hlc.Logical}
	for _, ts := range s.pending {
		below := vclock.HLCStamp{Wall: ts.Wall, Logical: ts.Logical - 1}
		if below.Before(st) {
			st = below
		}
	}
	return st
}

// cutoff is the minimum stable timestamp across all servers as known here.
func (s *server) cutoff() vclock.HLCStamp {
	cut := s.localStable()
	for _, other := range s.pl.Servers() {
		if other == s.id {
			continue
		}
		ks, heard := s.known[other]
		if !heard {
			return vclock.HLCStamp{} // no information: snapshot at zero
		}
		if ks.Before(cut) {
			cut = ks
		}
	}
	return cut
}

func (s *server) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *stableReq:
			// The local clock tracks physical time (as in Wren); advance
			// it so the stable time is not stuck at the last write.
			s.hlc.Now(int64(now))
			out = append(out, sim.Outbound{To: m.From, Payload: &stableResp{TID: p.TID, Cutoff: s.cutoff()}})
		case *readReq:
			resp := &readResp{TID: p.TID}
			for _, obj := range p.Objs {
				if v := s.st.SnapshotRead(obj, p.Snap); v != nil {
					resp.Vals = append(resp.Vals, readVal{
						Ref:   model.ValueRef{Object: obj, Value: v.Value, Writer: v.Writer},
						Stamp: v.Stamp,
					})
				} else {
					resp.Vals = append(resp.Vals, readVal{Ref: model.ValueRef{Object: obj, Value: model.Bottom}})
				}
			}
			out = append(out, sim.Outbound{To: m.From, Payload: resp})
		case *prepareReq:
			s.hlc.Observe(int64(now), p.DepTS)
			ts := s.hlc.Now(int64(now))
			s.pending[p.TID] = ts
			for _, w := range p.Writes {
				s.st.Install(&store.Version{Object: w.Object, Value: w.Value, Writer: p.TID, Stamp: ts})
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &prepareAck{TID: p.TID, TS: ts}})
		case *commitReq:
			s.hlc.Observe(int64(now), p.TS)
			delete(s.pending, p.TID)
			for _, obj := range s.st.Objects() {
				if v := s.st.Find(obj, p.TID); v != nil {
					v.Stamp = p.TS
					v.Visible = true
				}
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &commitAck{TID: p.TID, TS: p.TS}})
		case *gossip:
			if cur, heard := s.known[p.From]; !heard || cur.Before(p.Stable) {
				s.known[p.From] = p.Stable
			}
		default:
			panic(fmt.Sprintf("wren: server %s got %T", s.id, m.Payload))
		}
	}
	// Event-driven stabilization: broadcast the local stable time whenever
	// it advances.
	if ls := s.localStable(); s.lastGossip.Before(ls) {
		s.lastGossip = ls
		for _, other := range s.pl.Servers() {
			if other != s.id {
				out = append(out, sim.Outbound{To: other, Payload: &gossip{From: s.id, Stable: ls}})
			}
		}
	}
	return out
}

// --- client ---

type cached struct {
	Val model.Value
	TID model.TxnID
	TS  vclock.HLCStamp
}

type phase uint8

const (
	idle phase = iota
	cutoffWait
	reading
	preparing
	committing
)

type client struct {
	protocol.Core
	phase    phase
	pending  int
	depTS    vclock.HLCStamp // max timestamp of observed values/commits
	snap     vclock.HLCStamp
	maxPrep  vclock.HLCStamp
	writeTo  []sim.ProcessID
	cache    map[string]cached // own committed writes (read-your-writes)
	readVals map[string]readVal
}

func (c *client) Clone() sim.Process {
	cp := &client{
		Core: c.CloneCore(), phase: c.phase, pending: c.pending,
		depTS: c.depTS, snap: c.snap, maxPrep: c.maxPrep,
		cache: make(map[string]cached, len(c.cache)),
	}
	cp.writeTo = append([]sim.ProcessID(nil), c.writeTo...)
	for k, v := range c.cache {
		cp.cache[k] = v
	}
	if c.readVals != nil {
		cp.readVals = make(map[string]readVal, len(c.readVals))
		for k, v := range c.readVals {
			cp.readVals[k] = v
		}
	}
	return cp
}

func (c *client) Ready() bool { return c.Busy() && !c.Started() }

func (c *client) serversForReads() map[sim.ProcessID][]string {
	by := make(map[sim.ProcessID][]string)
	for _, obj := range c.Current().ReadSet {
		p := c.Placement().PrimaryOf(obj)
		by[p] = append(by[p], obj)
	}
	return by
}

func (c *client) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		if !c.Busy() {
			continue
		}
		switch p := m.Payload.(type) {
		case *stableResp:
			if p.TID == c.Current().ID && c.phase == cutoffWait {
				c.snap = p.Cutoff
				c.pending--
			}
		case *readResp:
			if p.TID == c.Current().ID && c.phase == reading {
				for _, v := range p.Vals {
					c.readVals[v.Ref.Object] = v
				}
				c.pending--
			}
		case *prepareAck:
			if p.TID == c.Current().ID && c.phase == preparing {
				if c.maxPrep.Before(p.TS) {
					c.maxPrep = p.TS
				}
				c.pending--
			}
		case *commitAck:
			if p.TID == c.Current().ID && c.phase == committing {
				c.pending--
			}
		}
	}
	if c.Starting(now) {
		t := c.Current()
		if len(t.Writes) > 0 && len(t.ReadSet) > 0 {
			c.Reject(now, "wren: read-write transactions unsupported")
			return out
		}
		if t.IsReadOnly() {
			// Round 1: fetch the cutoff from one server (any will do; we
			// use the primary of the first object).
			c.phase = cutoffWait
			c.readVals = make(map[string]readVal)
			first := c.Placement().PrimaryOf(t.ReadSet[0])
			out = append(out, sim.Outbound{To: first, Payload: &stableReq{TID: t.ID}})
			c.pending = 1
			c.SentRound()
		} else {
			c.phase = preparing
			c.maxPrep = vclock.HLCStamp{}
			writesBy := make(map[sim.ProcessID][]model.Write)
			for _, w := range t.Writes {
				for _, srv := range c.Placement().ReplicasOf(w.Object) {
					writesBy[srv] = append(writesBy[srv], w)
				}
			}
			srvs := make([]sim.ProcessID, 0, len(writesBy))
			for srv := range writesBy {
				srvs = append(srvs, srv)
			}
			sort.Slice(srvs, func(i, j int) bool { return srvs[i] < srvs[j] })
			c.writeTo = srvs
			for _, srv := range srvs {
				out = append(out, sim.Outbound{To: srv, Payload: &prepareReq{
					TID: t.ID, Writes: writesBy[srv], DepTS: c.depTS,
				}})
				c.pending++
			}
			c.SentRound()
		}
		return out
	}
	if c.Busy() && c.Started() && c.pending == 0 {
		t := c.Current()
		switch c.phase {
		case cutoffWait:
			// Round 2: snapshot reads at the cutoff.
			c.phase = reading
			targets := c.serversForReads()
			for _, srv := range c.Placement().Servers() {
				objs, involved := targets[srv]
				if !involved {
					continue
				}
				out = append(out, sim.Outbound{To: srv, Payload: &readReq{TID: t.ID, Objs: objs, Snap: c.snap}})
				c.pending++
			}
			c.SentRound()
		case reading:
			for _, obj := range t.ReadSet {
				v := c.readVals[obj]
				val, ts := v.Ref.Value, v.Stamp
				// Read-your-writes: a cached own write beyond the snapshot
				// wins.
				if own, cachedOK := c.cache[obj]; cachedOK && ts.Before(own.TS) {
					val = own.Val
				}
				c.Result().Values[obj] = val
				if c.depTS.Before(ts) {
					c.depTS = ts
				}
			}
			c.phase = idle
			c.readVals = nil
			c.Finish(now)
		case preparing:
			c.phase = committing
			for _, srv := range c.writeTo {
				out = append(out, sim.Outbound{To: srv, Payload: &commitReq{TID: t.ID, TS: c.maxPrep}})
				c.pending++
			}
			c.SentRound()
		case committing:
			for _, w := range t.Writes {
				c.cache[w.Object] = cached{Val: w.Value, TID: t.ID, TS: c.maxPrep}
			}
			if c.depTS.Before(c.maxPrep) {
				c.depTS = c.maxPrep
			}
			c.phase = idle
			c.writeTo = nil
			c.Finish(now)
		}
	}
	return out
}

// ShardStore exposes the durable version store for the reconfiguration
// layer's generic catch-up (protocol.StoreCarrier): a replacement server
// adopts missing versions from live peer replicas before serving.
func (s *server) ShardStore() *store.Store { return s.st }

package wren_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/protocols/ptest"
	"repro/internal/protocols/wren"
	"repro/internal/sim"
)

func TestConformance(t *testing.T) {
	ptest.Run(t, wren.New(), ptest.Expect{
		ROTRounds:        2, // cutoff round + read round
		Blocking:         false,
		MultiWrite:       true,
		Causal:           true,
		SettleBeforeRead: true, // cutoff gossip must propagate
	})
}

// TestNewValuesInvisibleUntilCutoffAdvances: after Tw commits, a reader
// whose cutoff round happens before the stabilization gossip is delivered
// still reads the OLD values — consistently. This is the visibility
// staleness Wren trades for non-blocking one-value reads.
func TestNewValuesInvisibleUntilCutoffAdvances(t *testing.T) {
	d := ptest.Deploy(t, wren.New(), ptest.Expect{}, 71)
	if res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 400_000); !res.OK() {
		t.Fatal("setup read failed")
	}

	// Run Tw under a restriction that freezes server-to-server gossip:
	// only client→server and server→client messages are delivered.
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "n0"}, model.Write{Object: "X1", Value: "n1"}))
	cl := d.Client("c0")
	for i := 0; i < 10_000 && cl.Busy(); i++ {
		// Deliver only messages touching c0.
		delivered := false
		for _, m := range d.Kernel.InTransit() {
			if m.From == "c0" || m.To == "c0" {
				d.Kernel.Deliver(m.ID)
				delivered = true
			}
		}
		for _, p := range d.Kernel.Processes() {
			if len(d.Kernel.Inbox(p)) > 0 {
				d.Kernel.StepProcess(p)
				delivered = true
			}
		}
		if !delivered {
			if cl.Busy() {
				d.Kernel.StepProcess("c0")
			}
		}
	}
	if cl.Busy() {
		t.Fatal("Tw did not complete")
	}

	// Gossip is still in transit: a fresh reader must see the OLD values
	// for BOTH objects (consistent, just stale) — never a mix.
	res := d.Probe("r0", []string{"X0", "X1"}, []sim.ProcessID{"s0", "s1"}, true)
	if res == nil {
		t.Fatal("frozen probe did not complete — wren reads must be non-blocking")
	}
	old0, old1 := protocol.InitialValue("X0"), protocol.InitialValue("X1")
	v0, v1 := res.Value("X0"), res.Value("X1")
	consistent := (v0 == old0 && v1 == old1) || (v0 == "n0" && v1 == "n1")
	if !consistent {
		t.Fatalf("mixed read under frozen gossip: %v", res.Values)
	}

	// After gossip settles, the new values must be visible.
	d.Settle(400_000)
	vis := d.VisibleAll("r1", map[string]model.Value{"X0": "n0", "X1": "n1"}, true)
	if !vis.Visible {
		t.Fatalf("new values not visible after settle: %+v", vis)
	}
}

func TestReadYourWritesDespiteStaleCutoff(t *testing.T) {
	d := ptest.Deploy(t, wren.New(), ptest.Expect{}, 73)
	// c0 writes and then reads back immediately, before stabilization has
	// necessarily caught up: the client-side cache must supply its own
	// writes.
	if res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "y0"}, model.Write{Object: "X1", Value: "y1"}), 400_000); !res.OK() {
		t.Fatal("write failed")
	}
	res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 400_000)
	if !res.OK() {
		t.Fatal("read failed")
	}
	if res.Value("X0") != "y0" || res.Value("X1") != "y1" {
		t.Fatalf("read-your-writes violated: %v", res.Values)
	}
}

func TestWriteIsTwoPhase(t *testing.T) {
	d := ptest.Deploy(t, wren.New(), ptest.Expect{}, 79)
	res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "z0"}, model.Write{Object: "X1", Value: "z1"}), 400_000)
	if !res.OK() || res.Rounds != 2 {
		t.Fatalf("write rounds = %d, want 2", res.Rounds)
	}
}

// TestLoadConformance certifies concurrent closed- and open-loop driver
// sweeps at the claimed consistency level.
func TestLoadConformance(t *testing.T) {
	ptest.RunLoad(t, wren.New(), ptest.Expect{LoadTxns: 96})
}

// TestFaultConformance certifies the standard persistent crash+restart
// and partition+heal nemesis sweeps on both stepping engines
// (ptest.RunFaults semantics).
func TestFaultConformance(t *testing.T) {
	ptest.RunFaults(t, wren.New(), ptest.Expect{})
}

// TestReconfigConformance certifies the standard replica-replacement and
// whole-cluster-restore sweeps on both stepping engines (ptest.RunReconfig
// semantics): non-lossy reconfiguration must lose nothing.
func TestReconfigConformance(t *testing.T) {
	ptest.RunReconfig(t, wren.New(), ptest.Expect{})
}

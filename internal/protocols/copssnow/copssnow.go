// Package copssnow models COPS-SNOW (Lu et al., OSDI 2016 — the system the
// SNOW paper builds to show the achievable N+O+V corner): read-only
// transactions are fast (one round, one value, non-blocking), consistency
// is causal, and the price is functionality — only single-object write
// transactions are supported.
//
// Mechanism (simplified but message-pattern faithful): every read-only
// transaction is recorded at each server it reads from, together with the
// version it read. A write carries the client's causal dependencies;
// before making the new version visible, the server contacts the servers
// storing the dependencies, which (a) confirm the dependency is visible
// and (b) return the identifiers of read-only transactions that read an
// older version ("old readers"). The new version is then made visible but
// hidden from those old readers, so no ROT ever observes a causal
// inversion.
package copssnow

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/store"
)

// Protocol is the copssnow factory.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Name implements protocol.Protocol.
func (*Protocol) Name() string { return "copssnow" }

// Claims implements protocol.Protocol: fast ROTs, no multi-object writes.
func (*Protocol) Claims() protocol.Claims {
	return protocol.Claims{
		OneRound:      true,
		OneValue:      true,
		NonBlocking:   true,
		MultiWriteTxn: false,
		Consistency:   "causal",
	}
}

// NewServer implements protocol.Protocol.
func (*Protocol) NewServer(id sim.ProcessID, pl *protocol.Placement) sim.Process {
	return &server{
		id: id, pl: pl, st: store.New(pl.HostedBy(id)...),
		readers: make(map[string][]readerRec),
		pending: make(map[model.TxnID]*pendingWrite),
	}
}

// NewClient implements protocol.Protocol.
func (*Protocol) NewClient(id sim.ProcessID, pl *protocol.Placement) protocol.Client {
	return &client{Core: protocol.NewCore(id, pl), deps: make(map[string]model.ValueRef)}
}

// --- payloads ---

type readReq struct {
	TID  model.TxnID
	Objs []string
}

func (p *readReq) Kind() string               { return "read-req" }
func (p *readReq) Clone() sim.Payload         { c := *p; c.Objs = append([]string(nil), p.Objs...); return &c }
func (p *readReq) Txn() model.TxnID           { return p.TID }
func (p *readReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type readResp struct {
	TID  model.TxnID
	Vals []model.ValueRef
}

func (p *readResp) Kind() string { return "read-resp" }
func (p *readResp) Clone() sim.Payload {
	c := *p
	c.Vals = append([]model.ValueRef(nil), p.Vals...)
	return &c
}
func (p *readResp) Txn() model.TxnID                { return p.TID }
func (p *readResp) PayloadRole() protocol.Role      { return protocol.RoleReadResp }
func (p *readResp) CarriedValues() []model.ValueRef { return p.Vals }

type writeReq struct {
	TID  model.TxnID
	W    model.Write
	Deps []model.ValueRef // causal dependencies (object, value, writer)
}

func (p *writeReq) Kind() string { return "write-req" }
func (p *writeReq) Clone() sim.Payload {
	c := *p
	c.Deps = append([]model.ValueRef(nil), p.Deps...)
	return &c
}
func (p *writeReq) Txn() model.TxnID           { return p.TID }
func (p *writeReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type writeResp struct {
	TID model.TxnID
}

func (p *writeResp) Kind() string               { return "write-ack" }
func (p *writeResp) Clone() sim.Payload         { c := *p; return &c }
func (p *writeResp) Txn() model.TxnID           { return p.TID }
func (p *writeResp) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

// depCheck asks the server storing a dependency to confirm it is visible
// and to report the read-only transactions that read an older version.
type depCheck struct {
	ForTxn model.TxnID // the writing transaction
	Items  []model.ValueRef
}

func (p *depCheck) Kind() string { return "dep-check" }
func (p *depCheck) Clone() sim.Payload {
	c := *p
	c.Items = append([]model.ValueRef(nil), p.Items...)
	return &c
}
func (p *depCheck) Txn() model.TxnID           { return p.ForTxn }
func (p *depCheck) PayloadRole() protocol.Role { return protocol.RoleInternal }

type depResp struct {
	ForTxn     model.TxnID
	Resolved   int
	OldReaders []model.TxnID
}

func (p *depResp) Kind() string { return "dep-resp" }
func (p *depResp) Clone() sim.Payload {
	c := *p
	c.OldReaders = append([]model.TxnID(nil), p.OldReaders...)
	return &c
}
func (p *depResp) Txn() model.TxnID           { return p.ForTxn }
func (p *depResp) PayloadRole() protocol.Role { return protocol.RoleInternal }

// --- server ---

type readerRec struct {
	rot model.TxnID
	seq int64 // version sequence number the ROT read (0 = initial/none)
}

type pendingWrite struct {
	w          model.Write
	client     sim.ProcessID
	remaining  int
	oldReaders []model.TxnID
}

type deferredCheck struct {
	origin sim.ProcessID
	forTxn model.TxnID
	item   model.ValueRef
}

type server struct {
	id       sim.ProcessID
	pl       *protocol.Placement
	st       *store.Store
	readers  map[string][]readerRec
	pending  map[model.TxnID]*pendingWrite
	deferred []deferredCheck
}

func (s *server) ID() sim.ProcessID { return s.id }
func (s *server) Ready() bool       { return false }

func (s *server) Clone() sim.Process {
	c := &server{
		id: s.id, pl: s.pl, st: s.st.Clone(),
		readers: make(map[string][]readerRec, len(s.readers)),
		pending: make(map[model.TxnID]*pendingWrite, len(s.pending)),
	}
	for k, v := range s.readers {
		c.readers[k] = append([]readerRec(nil), v...)
	}
	for k, v := range s.pending {
		pw := *v
		pw.oldReaders = append([]model.TxnID(nil), v.oldReaders...)
		c.pending[k] = &pw
	}
	c.deferred = append([]deferredCheck(nil), s.deferred...)
	return c
}

// oldReadersOf returns the ROTs that read a version of obj older than seq.
func (s *server) oldReadersOf(obj string, seq int64) []model.TxnID {
	var out []model.TxnID
	for _, r := range s.readers[obj] {
		if r.seq < seq {
			out = append(out, r.rot)
		}
	}
	return out
}

// resolveCheck tries to answer one dependency item; ok=false means the
// dependency version is not visible here yet.
func (s *server) resolveCheck(item model.ValueRef) ([]model.TxnID, bool) {
	v := s.st.Find(item.Object, item.Writer)
	if v == nil || !v.Visible {
		return nil, false
	}
	return s.oldReadersOf(item.Object, v.Seq), true
}

// finishWrite installs the pending write visibly, hidden from old readers.
func (s *server) finishWrite(tid model.TxnID) sim.Outbound {
	pw := s.pending[tid]
	delete(s.pending, tid)
	hidden := make(map[model.TxnID]bool, len(pw.oldReaders))
	for _, r := range pw.oldReaders {
		hidden[r] = true
	}
	s.st.Install(&store.Version{
		Object: pw.w.Object, Value: pw.w.Value, Writer: tid,
		Visible: true, HiddenFrom: hidden,
	})
	return sim.Outbound{To: pw.client, Payload: &writeResp{TID: tid}}
}

func (s *server) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *readReq:
			resp := &readResp{TID: p.TID}
			for _, obj := range p.Objs {
				v := s.st.LatestVisibleFor(obj, p.TID)
				var seq int64
				if v != nil {
					seq = v.Seq
					resp.Vals = append(resp.Vals, model.ValueRef{Object: obj, Value: v.Value, Writer: v.Writer})
				} else {
					resp.Vals = append(resp.Vals, model.ValueRef{Object: obj, Value: model.Bottom})
				}
				s.readers[obj] = append(s.readers[obj], readerRec{rot: p.TID, seq: seq})
			}
			out = append(out, sim.Outbound{To: m.From, Payload: resp})

		case *writeReq:
			pw := &pendingWrite{w: p.W, client: m.From}
			s.pending[p.TID] = pw
			// Partition dependencies: local ones resolve now; remote ones
			// are batched per owning server.
			remote := make(map[sim.ProcessID][]model.ValueRef)
			for _, dep := range p.Deps {
				owner := s.pl.PrimaryOf(dep.Object)
				if owner == s.id {
					if olds, resolved := s.resolveCheck(dep); resolved {
						pw.oldReaders = append(pw.oldReaders, olds...)
					} else {
						// Local dependency not visible yet: defer to self.
						pw.remaining++
						s.deferred = append(s.deferred, deferredCheck{origin: s.id, forTxn: p.TID, item: dep})
					}
					continue
				}
				remote[owner] = append(remote[owner], dep)
				pw.remaining++
			}
			owners := make([]sim.ProcessID, 0, len(remote))
			for o := range remote {
				owners = append(owners, o)
			}
			sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
			for _, o := range owners {
				out = append(out, sim.Outbound{To: o, Payload: &depCheck{ForTxn: p.TID, Items: remote[o]}})
			}
			if pw.remaining == 0 {
				out = append(out, s.finishWrite(p.TID))
			}

		case *depCheck:
			resp := &depResp{ForTxn: p.ForTxn}
			for _, item := range p.Items {
				if olds, resolved := s.resolveCheck(item); resolved {
					resp.Resolved++
					resp.OldReaders = append(resp.OldReaders, olds...)
				} else {
					s.deferred = append(s.deferred, deferredCheck{origin: m.From, forTxn: p.ForTxn, item: item})
				}
			}
			if resp.Resolved > 0 {
				out = append(out, sim.Outbound{To: m.From, Payload: resp})
			}

		case *depResp:
			if pw, exists := s.pending[p.ForTxn]; exists {
				pw.remaining -= p.Resolved
				pw.oldReaders = append(pw.oldReaders, p.OldReaders...)
				if pw.remaining <= 0 {
					out = append(out, s.finishWrite(p.ForTxn))
				}
			}

		case *writeResp:
			// A self-addressed ack can't happen; ignore defensively.

		default:
			panic(fmt.Sprintf("copssnow: server %s got %T", s.id, m.Payload))
		}
	}

	// Retry deferred dependency checks: new versions may have become
	// visible during this step.
	if len(s.deferred) > 0 {
		var still []deferredCheck
		resp := make(map[sim.ProcessID]*depResp)
		for _, dc := range s.deferred {
			olds, resolved := s.resolveCheck(dc.item)
			if !resolved {
				still = append(still, dc)
				continue
			}
			if dc.origin == s.id {
				// Local deferral: credit the pending write directly.
				if pw, exists := s.pending[dc.forTxn]; exists {
					pw.remaining--
					pw.oldReaders = append(pw.oldReaders, olds...)
					if pw.remaining <= 0 {
						out = append(out, s.finishWrite(dc.forTxn))
					}
				}
				continue
			}
			r := resp[dc.origin]
			if r == nil {
				r = &depResp{ForTxn: dc.forTxn}
				resp[dc.origin] = r
			}
			r.Resolved++
			r.OldReaders = append(r.OldReaders, olds...)
		}
		s.deferred = still
		origins := make([]sim.ProcessID, 0, len(resp))
		for o := range resp {
			origins = append(origins, o)
		}
		sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
		for _, o := range origins {
			out = append(out, sim.Outbound{To: o, Payload: resp[o]})
		}
	}
	return out
}

// --- client ---

type client struct {
	protocol.Core
	deps    map[string]model.ValueRef // latest observed value per object
	pending int
}

func (c *client) Clone() sim.Process {
	cp := &client{Core: c.CloneCore(), pending: c.pending, deps: make(map[string]model.ValueRef, len(c.deps))}
	for k, v := range c.deps {
		cp.deps[k] = v
	}
	return cp
}

func (c *client) Ready() bool { return c.Busy() && !c.Started() }

func (c *client) depList() []model.ValueRef {
	objs := make([]string, 0, len(c.deps))
	for o := range c.deps {
		objs = append(objs, o)
	}
	sort.Strings(objs)
	out := make([]model.ValueRef, 0, len(objs))
	for _, o := range objs {
		if c.deps[o].Writer.IsZero() {
			continue // initial values carry no dependency
		}
		out = append(out, c.deps[o])
	}
	return out
}

func (c *client) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		if !c.Busy() {
			continue
		}
		switch p := m.Payload.(type) {
		case *readResp:
			if p.TID == c.Current().ID {
				for _, vr := range p.Vals {
					c.Result().Values[vr.Object] = vr.Value
					if vr.Value != model.Bottom {
						c.deps[vr.Object] = vr
					}
				}
				c.pending--
			}
		case *writeResp:
			if p.TID == c.Current().ID {
				c.pending--
			}
		}
	}
	if c.Starting(now) {
		t := c.Current()
		pl := c.Placement()
		if len(t.WriteSet()) > 1 {
			c.Reject(now, "copssnow: multi-object write transactions unsupported")
			return out
		}
		if len(t.Writes) > 0 && len(t.ReadSet) > 0 {
			c.Reject(now, "copssnow: read-write transactions unsupported")
			return out
		}
		if t.IsReadOnly() {
			readsBy := make(map[sim.ProcessID][]string)
			for _, obj := range t.ReadSet {
				p := pl.PrimaryOf(obj)
				readsBy[p] = append(readsBy[p], obj)
			}
			for _, srv := range pl.Servers() {
				if objs, okR := readsBy[srv]; okR {
					out = append(out, sim.Outbound{To: srv, Payload: &readReq{TID: t.ID, Objs: objs}})
					c.pending++
				}
			}
		} else {
			w := t.Writes[len(t.Writes)-1]
			out = append(out, sim.Outbound{
				To:      pl.PrimaryOf(w.Object),
				Payload: &writeReq{TID: t.ID, W: w, Deps: c.depList()},
			})
			c.pending++
		}
		c.SentRound()
		return out
	}
	if c.Busy() && c.Started() && c.pending == 0 {
		t := c.Current()
		// A completed write becomes its own dependency.
		for _, w := range t.Writes {
			c.deps[w.Object] = model.ValueRef{Object: w.Object, Value: w.Value, Writer: t.ID}
		}
		c.Finish(now)
	}
	return out
}

// ShardStore exposes the durable version store for the reconfiguration
// layer's generic catch-up (protocol.StoreCarrier): a replacement server
// adopts missing versions from live peer replicas before serving.
func (s *server) ShardStore() *store.Store { return s.st }

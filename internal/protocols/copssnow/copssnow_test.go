package copssnow_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/protocols/copssnow"
	"repro/internal/protocols/ptest"
	"repro/internal/sim"
)

func TestConformance(t *testing.T) {
	ptest.Run(t, copssnow.New(), ptest.Expect{
		ROTRounds:  1,
		Blocking:   false,
		MultiWrite: false,
		Causal:     true,
	})
}

// TestDependencyGatesVisibility: a write whose dependency has not reached
// its server is not made visible until the dependency check completes —
// the server-to-server message pattern the induction of Lemma 3 predicts.
func TestDependencyGatesVisibility(t *testing.T) {
	d := ptest.Deploy(t, copssnow.New(), ptest.Expect{}, 43)

	// c0 reads both objects (so its writes depend on the initials), then
	// writes X1. The write carries a dependency on X0's initial value.
	if res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 200_000); !res.OK() {
		t.Fatal("setup read failed")
	}
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{}, model.Write{Object: "X1", Value: "b1"}))
	d.Kernel.StepProcess("c0")
	// Deliver the write to s1 and step it: s1 must now dep-check with s0
	// (X0's initial value is a dependency), keeping b1 invisible.
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: "s1"}) {
		d.Kernel.Deliver(m.ID)
	}
	d.Kernel.StepProcess("s1")

	if len(d.Kernel.InTransitOn(sim.Link{From: "s1", To: "s0"})) == 0 {
		t.Fatal("no dependency-check message from s1 to s0")
	}
	vis := d.VisibleAll("r0", map[string]model.Value{"X1": "b1"}, true)
	if vis.Visible {
		t.Fatal("b1 visible before the dependency check completed")
	}

	// Let the dep-check complete; the value must become visible.
	d.Settle(200_000)
	vis = d.VisibleAll("r0", map[string]model.Value{"X1": "b1"}, true)
	if !vis.Visible {
		t.Fatalf("b1 not visible after settle: %+v", vis)
	}
}

// TestOldReaderExclusion: a ROT that read an old version of X0 must never
// see a later write to X1 that depends on a newer X0 (the COPS-SNOW
// mechanism).
func TestOldReaderExclusion(t *testing.T) {
	d := ptest.Deploy(t, copssnow.New(), ptest.Expect{}, 47)

	// A long-running ROT (r0's txn) reads X0 = initial first. We model the
	// "simultaneous" ROT by probing its first half manually: invoke the
	// ROT at r0, deliver only the X0 read.
	rotID := d.Invoke("r0", model.NewReadOnly(model.TxnID{}, "X0", "X1"))
	d.Kernel.StepProcess("r0")
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "r0", To: "s0"}) {
		d.Kernel.Deliver(m.ID)
	}
	d.Kernel.StepProcess("s0") // X0 read served and recorded; X1 request still in transit

	// Meanwhile c0 writes X0 = a0, then X1 = b1 (depending on X0 = a0).
	if res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{}, model.Write{Object: "X0", Value: "a0"}), 200_000); !res.OK() {
		t.Fatal("write a0 failed")
	}
	if res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{}, model.Write{Object: "X1", Value: "b1"}), 200_000); !res.OK() {
		t.Fatal("write b1 failed")
	}
	d.Settle(200_000)

	// Now the ROT's X1 read arrives: because the ROT read the OLD X0, it
	// must not see b1 (which depends on the NEW X0).
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "r0", To: "s1"}) {
		d.Kernel.Deliver(m.ID)
	}
	d.Kernel.StepProcess("s1")
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "s1", To: "r0"}) {
		d.Kernel.Deliver(m.ID)
	}
	d.Kernel.StepProcess("r0")

	cl := d.Client("r0")
	if cl.Busy() {
		t.Fatal("ROT did not complete")
	}
	res := cl.Results()[rotID]
	if res.Value("X0") != protocol.InitialValue("X0") {
		t.Fatalf("ROT read X0 = %q, want initial", res.Value("X0"))
	}
	if res.Value("X1") == "b1" {
		t.Fatalf("old reader saw dependent write b1: %v — causal inversion", res.Values)
	}
}

func TestRejectsMultiWrite(t *testing.T) {
	d := ptest.Deploy(t, copssnow.New(), ptest.Expect{}, 53)
	res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "m0"}, model.Write{Object: "X1", Value: "m1"}), 200_000)
	if res.OK() {
		t.Fatal("multi-object write accepted by copssnow")
	}
}

// TestLoadConformance certifies concurrent closed- and open-loop driver
// sweeps at the claimed consistency level.
func TestLoadConformance(t *testing.T) {
	ptest.RunLoad(t, copssnow.New(), ptest.Expect{LoadTxns: 96})
}

// TestFaultConformance certifies the standard persistent crash+restart
// and partition+heal nemesis sweeps on both stepping engines
// (ptest.RunFaults semantics).
func TestFaultConformance(t *testing.T) {
	ptest.RunFaults(t, copssnow.New(), ptest.Expect{})
}

// TestReconfigConformance certifies the standard replica-replacement and
// whole-cluster-restore sweeps on both stepping engines (ptest.RunReconfig
// semantics): non-lossy reconfiguration must lose nothing.
func TestReconfigConformance(t *testing.T) {
	ptest.RunReconfig(t, copssnow.New(), ptest.Expect{})
}

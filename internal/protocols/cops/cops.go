// Package cops models COPS (Lloyd et al., SOSP 2011): causally consistent,
// single-object writes carrying explicit dependency metadata, and get-
// transactions (read-only transactions) that are non-blocking and take at
// most two rounds — the first round optimistically fetches the latest
// value of every object plus its dependency list; if the returned versions
// are mutually inconsistent (some value depends on a newer version of
// another object than the one returned), a second round fetches the
// specific missing versions. Each message carries at most one value per
// object, but an object may be fetched twice across the two rounds (the
// "≤ 2 rounds, ≤ 2 values" row of Table 1).
package cops

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/store"
)

// Protocol is the cops factory.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Name implements protocol.Protocol.
func (*Protocol) Name() string { return "cops" }

// Claims implements protocol.Protocol.
func (*Protocol) Claims() protocol.Claims {
	return protocol.Claims{
		OneRound:      false, // up to 2
		OneValue:      true,  // per message
		NonBlocking:   true,
		MultiWriteTxn: false,
		Consistency:   "causal",
	}
}

// NewServer implements protocol.Protocol.
func (*Protocol) NewServer(id sim.ProcessID, pl *protocol.Placement) sim.Process {
	return &server{id: id, pl: pl, st: store.New(pl.HostedBy(id)...), deps: make(map[string][]depRef)}
}

// NewClient implements protocol.Protocol.
func (*Protocol) NewClient(id sim.ProcessID, pl *protocol.Placement) protocol.Client {
	return &client{Core: protocol.NewCore(id, pl), ctx: make(map[string]depRef)}
}

// depRef names a specific version: object, writer and per-object sequence.
type depRef struct {
	Object string
	Writer model.TxnID
	Seq    int64
}

// --- payloads ---

type readReq struct {
	TID  model.TxnID
	Objs []string
}

func (p *readReq) Kind() string               { return "read-req" }
func (p *readReq) Clone() sim.Payload         { c := *p; c.Objs = append([]string(nil), p.Objs...); return &c }
func (p *readReq) Txn() model.TxnID           { return p.TID }
func (p *readReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type readVal struct {
	Ref  model.ValueRef
	Seq  int64
	Deps []depRef
}

type readResp struct {
	TID  model.TxnID
	Vals []readVal
}

func (p *readResp) Kind() string { return "read-resp" }
func (p *readResp) Clone() sim.Payload {
	c := *p
	c.Vals = make([]readVal, len(p.Vals))
	for i, v := range p.Vals {
		v.Deps = append([]depRef(nil), v.Deps...)
		c.Vals[i] = v
	}
	return &c
}
func (p *readResp) Txn() model.TxnID           { return p.TID }
func (p *readResp) PayloadRole() protocol.Role { return protocol.RoleReadResp }
func (p *readResp) CarriedValues() []model.ValueRef {
	out := make([]model.ValueRef, 0, len(p.Vals))
	for _, v := range p.Vals {
		if v.Ref.Value != model.Bottom {
			out = append(out, v.Ref)
		}
	}
	return out
}

// readAtReq is the second-round fetch of a version at or after minSeq.
type readAtReq struct {
	TID    model.TxnID
	Object string
	MinSeq int64
}

func (p *readAtReq) Kind() string               { return "read-at-req" }
func (p *readAtReq) Clone() sim.Payload         { c := *p; return &c }
func (p *readAtReq) Txn() model.TxnID           { return p.TID }
func (p *readAtReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type writeReq struct {
	TID  model.TxnID
	W    model.Write
	Deps []depRef
}

func (p *writeReq) Kind() string { return "write-req" }
func (p *writeReq) Clone() sim.Payload {
	c := *p
	c.Deps = append([]depRef(nil), p.Deps...)
	return &c
}
func (p *writeReq) Txn() model.TxnID           { return p.TID }
func (p *writeReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type writeResp struct {
	TID model.TxnID
	Seq int64
}

func (p *writeResp) Kind() string               { return "write-ack" }
func (p *writeResp) Clone() sim.Payload         { c := *p; return &c }
func (p *writeResp) Txn() model.TxnID           { return p.TID }
func (p *writeResp) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

// --- server ---

type server struct {
	id   sim.ProcessID
	pl   *protocol.Placement
	st   *store.Store
	deps map[string][]depRef // (object\x00writer) -> dependency list
}

func depsKey(obj string, w model.TxnID) string { return obj + "\x00" + w.String() }

func (s *server) ID() sim.ProcessID { return s.id }
func (s *server) Ready() bool       { return false }

func (s *server) Clone() sim.Process {
	c := &server{id: s.id, pl: s.pl, st: s.st.Clone(), deps: make(map[string][]depRef, len(s.deps))}
	for k, v := range s.deps {
		c.deps[k] = append([]depRef(nil), v...)
	}
	return c
}

func (s *server) valOf(v *store.Version) readVal {
	return readVal{
		Ref:  model.ValueRef{Object: v.Object, Value: v.Value, Writer: v.Writer},
		Seq:  v.Seq,
		Deps: s.deps[depsKey(v.Object, v.Writer)],
	}
}

func (s *server) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *readReq:
			resp := &readResp{TID: p.TID}
			for _, obj := range p.Objs {
				if v := s.st.LatestVisible(obj); v != nil {
					resp.Vals = append(resp.Vals, s.valOf(v))
				} else {
					resp.Vals = append(resp.Vals, readVal{Ref: model.ValueRef{Object: obj, Value: model.Bottom}})
				}
			}
			out = append(out, sim.Outbound{To: m.From, Payload: resp})
		case *readAtReq:
			resp := &readResp{TID: p.TID}
			// The latest visible version's sequence is ≥ MinSeq whenever
			// the dependency was written by a completed transaction, so
			// this never blocks.
			if v := s.st.LatestVisible(p.Object); v != nil && v.Seq >= p.MinSeq {
				resp.Vals = append(resp.Vals, s.valOf(v))
			} else if v != nil {
				resp.Vals = append(resp.Vals, s.valOf(v))
			} else {
				resp.Vals = append(resp.Vals, readVal{Ref: model.ValueRef{Object: p.Object, Value: model.Bottom}})
			}
			out = append(out, sim.Outbound{To: m.From, Payload: resp})
		case *writeReq:
			v := s.st.Install(&store.Version{Object: p.W.Object, Value: p.W.Value, Writer: p.TID, Visible: true})
			s.deps[depsKey(p.W.Object, p.TID)] = append([]depRef(nil), p.Deps...)
			out = append(out, sim.Outbound{To: m.From, Payload: &writeResp{TID: p.TID, Seq: v.Seq}})
		default:
			panic(fmt.Sprintf("cops: server %s got %T", s.id, m.Payload))
		}
	}
	return out
}

// --- client ---

type phase uint8

const (
	idle phase = iota
	round1
	round2
	writing
)

type client struct {
	protocol.Core
	phase   phase
	pending int
	ctx     map[string]depRef // causal context: latest observed version per object
	got     map[string]readVal
}

func (c *client) Clone() sim.Process {
	cp := &client{Core: c.CloneCore(), phase: c.phase, pending: c.pending, ctx: make(map[string]depRef, len(c.ctx))}
	for k, v := range c.ctx {
		cp.ctx[k] = v
	}
	if c.got != nil {
		cp.got = make(map[string]readVal, len(c.got))
		for k, v := range c.got {
			cp.got[k] = v
		}
	}
	return cp
}

func (c *client) Ready() bool { return c.Busy() && !c.Started() }

func (c *client) observe(v readVal) {
	cur, seen := c.ctx[v.Ref.Object]
	if !seen || v.Seq > cur.Seq {
		c.ctx[v.Ref.Object] = depRef{Object: v.Ref.Object, Writer: v.Ref.Writer, Seq: v.Seq}
	}
}

func (c *client) ctxList() []depRef {
	objs := make([]string, 0, len(c.ctx))
	for o := range c.ctx {
		objs = append(objs, o)
	}
	sort.Strings(objs)
	out := make([]depRef, 0, len(objs))
	for _, o := range objs {
		out = append(out, c.ctx[o])
	}
	return out
}

// inconsistencies returns, per object, the minimum sequence required by
// the dependencies of the fetched versions that the fetched snapshot does
// not meet.
func (c *client) inconsistencies() map[string]int64 {
	need := make(map[string]int64)
	for _, v := range c.got {
		for _, d := range v.Deps {
			have, fetched := c.got[d.Object]
			if !fetched {
				continue // dependency outside the read set: irrelevant
			}
			if have.Seq < d.Seq && need[d.Object] < d.Seq {
				need[d.Object] = d.Seq
			}
		}
	}
	return need
}

func (c *client) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		if !c.Busy() {
			continue
		}
		switch p := m.Payload.(type) {
		case *readResp:
			if p.TID == c.Current().ID && (c.phase == round1 || c.phase == round2) {
				for _, v := range p.Vals {
					if cur, fetched := c.got[v.Ref.Object]; !fetched || v.Seq > cur.Seq {
						c.got[v.Ref.Object] = v
					}
				}
				c.pending--
			}
		case *writeResp:
			if p.TID == c.Current().ID && c.phase == writing {
				w := c.Current().Writes[len(c.Current().Writes)-1]
				c.ctx[w.Object] = depRef{Object: w.Object, Writer: p.TID, Seq: p.Seq}
				c.pending--
			}
		}
	}
	if c.Starting(now) {
		t := c.Current()
		if len(t.WriteSet()) > 1 {
			c.Reject(now, "cops: multi-object write transactions unsupported")
			return out
		}
		if len(t.Writes) > 0 && len(t.ReadSet) > 0 {
			c.Reject(now, "cops: read-write transactions unsupported")
			return out
		}
		if t.IsReadOnly() {
			c.phase = round1
			c.got = make(map[string]readVal)
			readsBy := make(map[sim.ProcessID][]string)
			for _, obj := range t.ReadSet {
				p := c.Placement().PrimaryOf(obj)
				readsBy[p] = append(readsBy[p], obj)
			}
			for _, srv := range c.Placement().Servers() {
				if objs, involved := readsBy[srv]; involved {
					out = append(out, sim.Outbound{To: srv, Payload: &readReq{TID: t.ID, Objs: objs}})
					c.pending++
				}
			}
		} else {
			c.phase = writing
			w := t.Writes[len(t.Writes)-1]
			out = append(out, sim.Outbound{To: c.Placement().PrimaryOf(w.Object), Payload: &writeReq{
				TID: t.ID, W: w, Deps: c.ctxList(),
			}})
			c.pending++
		}
		c.SentRound()
		return out
	}
	if c.Busy() && c.Started() && c.pending == 0 {
		t := c.Current()
		switch c.phase {
		case round1:
			need := c.inconsistencies()
			if len(need) == 0 {
				c.finishRead(now)
				return out
			}
			// Second round: fetch the specific newer versions.
			c.phase = round2
			objs := make([]string, 0, len(need))
			for o := range need {
				objs = append(objs, o)
			}
			sort.Strings(objs)
			for _, o := range objs {
				out = append(out, sim.Outbound{To: c.Placement().PrimaryOf(o), Payload: &readAtReq{
					TID: t.ID, Object: o, MinSeq: need[o],
				}})
				c.pending++
			}
			c.SentRound()
		case round2:
			c.finishRead(now)
		case writing:
			c.phase = idle
			c.Finish(now)
		}
	}
	return out
}

func (c *client) finishRead(now sim.Time) {
	t := c.Current()
	for _, obj := range t.ReadSet {
		v := c.got[obj]
		c.Result().Values[obj] = v.Ref.Value
		if v.Ref.Value != model.Bottom {
			c.observe(v)
		}
	}
	c.phase = idle
	c.got = nil
	c.Finish(now)
}

// ShardStore exposes the durable version store for the reconfiguration
// layer's catch-up (protocol.StoreCarrier).
func (s *server) ShardStore() *store.Store { return s.st }

// SyncFrom implements protocol.Syncer, the non-default catch-up: a
// replacement adopts the peer's missing versions AND the dependency
// side-table entries that make them safe to serve — a COPS version
// without its deps list would answer get-transactions with an empty
// dependency cut, so the generic store transfer alone is not enough here.
func (s *server) SyncFrom(peer sim.Process, objs []string) int {
	n := protocol.CopyMissingVersions(s, peer, objs)
	src, ok := peer.(*server)
	if !ok {
		return n
	}
	for _, obj := range objs {
		for _, v := range src.st.Versions(obj) {
			key := depsKey(obj, v.Writer)
			d, found := src.deps[key]
			if !found {
				continue
			}
			if _, have := s.deps[key]; !have {
				s.deps[key] = append([]depRef(nil), d...)
			}
		}
	}
	return n
}

package cops_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/protocols/cops"
	"repro/internal/protocols/ptest"
	"repro/internal/sim"
)

func TestConformance(t *testing.T) {
	ptest.Run(t, cops.New(), ptest.Expect{
		ROTRounds:  1, // happy path; ≤ 2 with repair round
		Blocking:   false,
		MultiWrite: false,
		Causal:     true,
	})
}

// TestSecondRoundRepairsDependencyInversion: X1's new value depends on a
// new X0; if the ROT's optimistic round observes new X1 but old X0, the
// dependency metadata triggers a second round that fetches the newer X0.
func TestSecondRoundRepairsDependencyInversion(t *testing.T) {
	d := ptest.Deploy(t, cops.New(), ptest.Expect{}, 97)

	// Start the ROT and serve its X0 read first (old X0 observed).
	rotID := d.Invoke("r0", model.NewReadOnly(model.TxnID{}, "X0", "X1"))
	d.Kernel.StepProcess("r0")
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "r0", To: "s0"}) {
		d.Kernel.Deliver(m.ID)
	}
	d.Kernel.StepProcess("s0")

	// Meanwhile c0 writes X0 = a0, then X1 = b1 depending on it. The
	// writes run restricted to c0 and the servers so the ROT's pending
	// X1 request stays in transit throughout.
	solo := &sim.RoundRobin{Only: sim.Restrict("c0", "s0", "s1")}
	if res := d.RunTxnWith("c0", model.NewWriteOnly(model.TxnID{}, model.Write{Object: "X0", Value: "a0"}), solo, 200_000); !res.OK() {
		t.Fatal("write a0 failed")
	}
	if res := d.RunTxnWith("c0", model.NewWriteOnly(model.TxnID{}, model.Write{Object: "X1", Value: "b1"}), solo, 200_000); !res.OK() {
		t.Fatal("write b1 failed")
	}

	// Now the ROT's X1 read arrives: it returns b1 with a dependency on
	// the new X0, and the client's second round must repair X0.
	sim.Run(d.Kernel, &sim.RoundRobin{}, func(*sim.Kernel) bool { return !d.Client("r0").Busy() }, 200_000)
	res := d.Client("r0").Results()[rotID]
	if res == nil {
		t.Fatal("ROT incomplete")
	}
	if res.Value("X1") == "b1" && res.Value("X0") != "a0" {
		t.Fatalf("dependency inversion not repaired: %v", res.Values)
	}
	if res.Rounds < 2 {
		t.Fatalf("expected a repair round, got rounds=%d values=%v", res.Rounds, res.Values)
	}
}

func TestRejectsMultiWrite(t *testing.T) {
	d := ptest.Deploy(t, cops.New(), ptest.Expect{}, 101)
	res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "m0"}, model.Write{Object: "X1", Value: "m1"}), 200_000)
	if res.OK() {
		t.Fatal("multi-object write accepted by cops")
	}
}

// TestLoadConformance certifies concurrent closed- and open-loop driver
// sweeps at the claimed consistency level.
func TestLoadConformance(t *testing.T) {
	ptest.RunLoad(t, cops.New(), ptest.Expect{LoadTxns: 128})
}

// TestFaultConformance certifies the standard persistent crash+restart
// and partition+heal nemesis sweeps on both stepping engines
// (ptest.RunFaults semantics).
func TestFaultConformance(t *testing.T) {
	ptest.RunFaults(t, cops.New(), ptest.Expect{})
}

// TestReconfigConformance certifies the standard replica-replacement and
// whole-cluster-restore sweeps on both stepping engines (ptest.RunReconfig
// semantics): non-lossy reconfiguration must lose nothing.
func TestReconfigConformance(t *testing.T) {
	ptest.RunReconfig(t, cops.New(), ptest.Expect{})
}

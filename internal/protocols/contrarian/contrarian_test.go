package contrarian_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/protocols/contrarian"
	"repro/internal/protocols/ptest"
)

func TestConformance(t *testing.T) {
	ptest.Run(t, contrarian.New(), ptest.Expect{
		ROTRounds:  2, // snapshot negotiation + reads
		Blocking:   false,
		MultiWrite: false,
		Causal:     true,
	})
}

func TestRejectsMultiWrite(t *testing.T) {
	d := ptest.Deploy(t, contrarian.New(), ptest.Expect{}, 83)
	res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "m0"}, model.Write{Object: "X1", Value: "m1"}), 400_000)
	if res.OK() {
		t.Fatal("multi-object write accepted")
	}
}

// TestSnapshotCoversCausalPast: a client that read a fresh value must get
// a snapshot at least as new on its next ROT (monotone reads across its
// transactions).
func TestSnapshotCoversCausalPast(t *testing.T) {
	d := ptest.Deploy(t, contrarian.New(), ptest.Expect{}, 89)
	if res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{}, model.Write{Object: "X0", Value: "f0"}), 400_000); !res.OK() {
		t.Fatal("write failed")
	}
	// The writer's next read must observe its own write (dep timestamp
	// raises the snapshot above the write's commit stamp).
	res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 400_000)
	if !res.OK() || res.Value("X0") != "f0" {
		t.Fatalf("writer did not observe own write: %v", res)
	}
	// And any later reader of the same client stays monotone.
	res2 := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0"), 400_000)
	if res2.Value("X0") != "f0" {
		t.Fatalf("monotone reads violated: %v", res2.Values)
	}
}

// TestLoadConformance certifies concurrent closed- and open-loop driver
// sweeps at the claimed consistency level.
func TestLoadConformance(t *testing.T) {
	ptest.RunLoad(t, contrarian.New(), ptest.Expect{LoadTxns: 96})
}

// TestFaultConformance certifies the standard persistent crash+restart
// and partition+heal nemesis sweeps on both stepping engines
// (ptest.RunFaults semantics).
func TestFaultConformance(t *testing.T) {
	ptest.RunFaults(t, contrarian.New(), ptest.Expect{})
}

// TestReconfigConformance certifies the standard replica-replacement and
// whole-cluster-restore sweeps on both stepping engines (ptest.RunReconfig
// semantics): non-lossy reconfiguration must lose nothing.
func TestReconfigConformance(t *testing.T) {
	ptest.RunReconfig(t, contrarian.New(), ptest.Expect{})
}

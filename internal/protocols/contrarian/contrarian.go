// Package contrarian models Contrarian (Didona et al., VLDB 2018): causally
// consistent read-only transactions that are non-blocking and one-value but
// take two rounds — the first round negotiates a safe snapshot timestamp
// with the involved servers (metadata only), the second round reads at that
// snapshot. Write transactions are single-object (no W property).
//
// Writes are stamped with hybrid logical clocks and visible immediately;
// because the snapshot is the minimum of the involved servers' current
// times, every read at the snapshot is below each server's clock and can be
// answered without blocking.
package contrarian

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/vclock"
)

// Protocol is the contrarian factory.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Name implements protocol.Protocol.
func (*Protocol) Name() string { return "contrarian" }

// Claims implements protocol.Protocol.
func (*Protocol) Claims() protocol.Claims {
	return protocol.Claims{
		OneRound:      false,
		OneValue:      true,
		NonBlocking:   true,
		MultiWriteTxn: false,
		Consistency:   "causal",
	}
}

// NewServer implements protocol.Protocol.
func (*Protocol) NewServer(id sim.ProcessID, pl *protocol.Placement) sim.Process {
	return &server{id: id, pl: pl, st: store.New(pl.HostedBy(id)...), hlc: &vclock.HLC{}}
}

// NewClient implements protocol.Protocol.
func (*Protocol) NewClient(id sim.ProcessID, pl *protocol.Placement) protocol.Client {
	return &client{Core: protocol.NewCore(id, pl)}
}

// --- payloads ---

type snapReq struct {
	TID model.TxnID
}

func (p *snapReq) Kind() string               { return "snap-req" }
func (p *snapReq) Clone() sim.Payload         { c := *p; return &c }
func (p *snapReq) Txn() model.TxnID           { return p.TID }
func (p *snapReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type snapResp struct {
	TID model.TxnID
	TS  vclock.HLCStamp
}

func (p *snapResp) Kind() string               { return "snap-resp" }
func (p *snapResp) Clone() sim.Payload         { c := *p; return &c }
func (p *snapResp) Txn() model.TxnID           { return p.TID }
func (p *snapResp) PayloadRole() protocol.Role { return protocol.RoleReadResp }

type readReq struct {
	TID  model.TxnID
	Objs []string
	Snap vclock.HLCStamp
}

func (p *readReq) Kind() string               { return "read-req" }
func (p *readReq) Clone() sim.Payload         { c := *p; c.Objs = append([]string(nil), p.Objs...); return &c }
func (p *readReq) Txn() model.TxnID           { return p.TID }
func (p *readReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type readVal struct {
	Ref   model.ValueRef
	Stamp vclock.HLCStamp
}

type readResp struct {
	TID  model.TxnID
	Vals []readVal
}

func (p *readResp) Kind() string { return "read-resp" }
func (p *readResp) Clone() sim.Payload {
	c := *p
	c.Vals = append([]readVal(nil), p.Vals...)
	return &c
}
func (p *readResp) Txn() model.TxnID           { return p.TID }
func (p *readResp) PayloadRole() protocol.Role { return protocol.RoleReadResp }
func (p *readResp) CarriedValues() []model.ValueRef {
	out := make([]model.ValueRef, 0, len(p.Vals))
	for _, v := range p.Vals {
		if v.Ref.Value != model.Bottom {
			out = append(out, v.Ref)
		}
	}
	return out
}

type writeReq struct {
	TID   model.TxnID
	W     model.Write
	DepTS vclock.HLCStamp
}

func (p *writeReq) Kind() string               { return "write-req" }
func (p *writeReq) Clone() sim.Payload         { c := *p; return &c }
func (p *writeReq) Txn() model.TxnID           { return p.TID }
func (p *writeReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type writeResp struct {
	TID model.TxnID
	TS  vclock.HLCStamp
}

func (p *writeResp) Kind() string               { return "write-ack" }
func (p *writeResp) Clone() sim.Payload         { c := *p; return &c }
func (p *writeResp) Txn() model.TxnID           { return p.TID }
func (p *writeResp) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

// --- server ---

type server struct {
	id  sim.ProcessID
	pl  *protocol.Placement
	st  *store.Store
	hlc *vclock.HLC
}

func (s *server) ID() sim.ProcessID { return s.id }
func (s *server) Ready() bool       { return false }
func (s *server) Clone() sim.Process {
	return &server{id: s.id, pl: s.pl, st: s.st.Clone(), hlc: s.hlc.Clone()}
}

func (s *server) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *snapReq:
			// The server's current time: every version stamped at or
			// below it is already installed (writes are visible on
			// arrival), so reads at this snapshot never block. The clock
			// tracks physical time so snapshots do not lag behind other
			// servers' write activity.
			ts := s.hlc.Now(int64(now))
			out = append(out, sim.Outbound{To: m.From, Payload: &snapResp{TID: p.TID, TS: ts}})
		case *readReq:
			resp := &readResp{TID: p.TID}
			for _, obj := range p.Objs {
				if v := s.st.SnapshotRead(obj, p.Snap); v != nil {
					resp.Vals = append(resp.Vals, readVal{
						Ref:   model.ValueRef{Object: obj, Value: v.Value, Writer: v.Writer},
						Stamp: v.Stamp,
					})
				} else {
					resp.Vals = append(resp.Vals, readVal{Ref: model.ValueRef{Object: obj, Value: model.Bottom}})
				}
			}
			out = append(out, sim.Outbound{To: m.From, Payload: resp})
		case *writeReq:
			s.hlc.Observe(int64(now), p.DepTS)
			ts := s.hlc.Now(int64(now))
			s.st.Install(&store.Version{Object: p.W.Object, Value: p.W.Value, Writer: p.TID, Stamp: ts, Visible: true})
			out = append(out, sim.Outbound{To: m.From, Payload: &writeResp{TID: p.TID, TS: ts}})
		default:
			panic(fmt.Sprintf("contrarian: server %s got %T", s.id, m.Payload))
		}
	}
	return out
}

// --- client ---

type phase uint8

const (
	idle phase = iota
	snapshotting
	reading
	writing
)

type client struct {
	protocol.Core
	phase    phase
	pending  int
	depTS    vclock.HLCStamp
	snap     vclock.HLCStamp
	haveSnap bool
	readVals map[string]readVal
}

func (c *client) Clone() sim.Process {
	cp := &client{
		Core: c.CloneCore(), phase: c.phase, pending: c.pending,
		depTS: c.depTS, snap: c.snap, haveSnap: c.haveSnap,
	}
	if c.readVals != nil {
		cp.readVals = make(map[string]readVal, len(c.readVals))
		for k, v := range c.readVals {
			cp.readVals[k] = v
		}
	}
	return cp
}

func (c *client) Ready() bool { return c.Busy() && !c.Started() }

func (c *client) readTargets() map[sim.ProcessID][]string {
	by := make(map[sim.ProcessID][]string)
	for _, obj := range c.Current().ReadSet {
		p := c.Placement().PrimaryOf(obj)
		by[p] = append(by[p], obj)
	}
	return by
}

func (c *client) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		if !c.Busy() {
			continue
		}
		switch p := m.Payload.(type) {
		case *snapResp:
			if p.TID == c.Current().ID && c.phase == snapshotting {
				// Snapshot = minimum of the involved servers' times, but
				// never below the client's causal past (so the snapshot
				// includes everything the client depends on).
				if !c.haveSnap || p.TS.Before(c.snap) {
					c.snap = p.TS
					c.haveSnap = true
				}
				c.pending--
			}
		case *readResp:
			if p.TID == c.Current().ID && c.phase == reading {
				for _, v := range p.Vals {
					c.readVals[v.Ref.Object] = v
				}
				c.pending--
			}
		case *writeResp:
			if p.TID == c.Current().ID && c.phase == writing {
				if c.depTS.Before(p.TS) {
					c.depTS = p.TS
				}
				c.pending--
			}
		}
	}
	if c.Starting(now) {
		t := c.Current()
		if len(t.WriteSet()) > 1 {
			c.Reject(now, "contrarian: multi-object write transactions unsupported")
			return out
		}
		if len(t.Writes) > 0 && len(t.ReadSet) > 0 {
			c.Reject(now, "contrarian: read-write transactions unsupported")
			return out
		}
		if t.IsReadOnly() {
			c.phase = snapshotting
			c.haveSnap = false
			c.readVals = make(map[string]readVal)
			targets := c.readTargets()
			for _, srv := range c.Placement().Servers() {
				if _, involved := targets[srv]; involved {
					out = append(out, sim.Outbound{To: srv, Payload: &snapReq{TID: t.ID}})
					c.pending++
				}
			}
			c.SentRound()
		} else {
			c.phase = writing
			w := t.Writes[len(t.Writes)-1]
			out = append(out, sim.Outbound{To: c.Placement().PrimaryOf(w.Object), Payload: &writeReq{
				TID: t.ID, W: w, DepTS: c.depTS,
			}})
			c.pending++
			c.SentRound()
		}
		return out
	}
	if c.Busy() && c.Started() && c.pending == 0 {
		t := c.Current()
		switch c.phase {
		case snapshotting:
			// The snapshot must cover the client's causal past.
			if c.snap.Before(c.depTS) {
				c.snap = c.depTS
			}
			c.phase = reading
			targets := c.readTargets()
			for _, srv := range c.Placement().Servers() {
				objs, involved := targets[srv]
				if !involved {
					continue
				}
				out = append(out, sim.Outbound{To: srv, Payload: &readReq{TID: t.ID, Objs: objs, Snap: c.snap}})
				c.pending++
			}
			c.SentRound()
		case reading:
			for _, obj := range t.ReadSet {
				v := c.readVals[obj]
				c.Result().Values[obj] = v.Ref.Value
				if c.depTS.Before(v.Stamp) {
					c.depTS = v.Stamp
				}
			}
			c.phase = idle
			c.readVals = nil
			c.Finish(now)
		case writing:
			c.phase = idle
			c.Finish(now)
		}
	}
	return out
}

// ShardStore exposes the durable version store for the reconfiguration
// layer's generic catch-up (protocol.StoreCarrier): a replacement server
// adopts missing versions from live peer replicas before serving.
func (s *server) ShardStore() *store.Store { return s.st }

// Package fatcops implements the N+O+W design sketched in §3.4 of the
// paper: one-round, non-blocking read-only transactions that coexist with
// multi-object write transactions and causal consistency — at the price of
// the one-value property. Every write carries (a) the values of the other
// objects written by the same transaction and (b) the values of all the
// objects the transaction causally depends on; servers store this fat
// metadata alongside the version and return all of it to readers, who then
// locally select, per object, the newest value they can prove consistent.
//
// The responses therefore carry values for objects the answering server
// does not even store — a direct violation of the (general) one-value
// property, which is exactly the trade the paper describes: "this protocol
// is not efficient, as it requires to store and communicate a
// prohibitively big amount of data".
package fatcops

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/vclock"
)

// Protocol is the fatcops factory.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Name implements protocol.Protocol.
func (*Protocol) Name() string { return "fatcops" }

// Claims implements protocol.Protocol: one round, non-blocking,
// multi-writes — but NOT one-value.
func (*Protocol) Claims() protocol.Claims {
	return protocol.Claims{
		OneRound:      true,
		OneValue:      false,
		NonBlocking:   true,
		MultiWriteTxn: true,
		Consistency:   "causal",
	}
}

// NewServer implements protocol.Protocol.
func (*Protocol) NewServer(id sim.ProcessID, pl *protocol.Placement) sim.Process {
	return &server{id: id, pl: pl, st: store.New(pl.HostedBy(id)...)}
}

// NewClient implements protocol.Protocol.
func (*Protocol) NewClient(id sim.ProcessID, pl *protocol.Placement) protocol.Client {
	// Initializing clients stamp their writes at 1; every other client
	// boots its clock at 1 so even a blind first write is stamped 2 and
	// strictly dominates the initial values.
	clock := int64(1)
	if protocol.IsInitClient(id) {
		clock = 0
	}
	return &client{Core: protocol.NewCore(id, pl), clock: clock, ctx: make(map[string]stamped)}
}

// stamped is a value with its Lamport timestamp and writer.
type stamped struct {
	Val    model.Value
	Writer model.TxnID
	TS     int64
}

// after reports whether version (ts1, w1) follows (ts2, w2) in the global
// version order: Lamport timestamp first, writer ID as a tie-break. Every
// comparison in the protocol — server-side "latest" selection and
// client-side reconciliation alike — uses this one order, which is what
// makes the fat-metadata repair sound: all parties agree on which of two
// concurrent transactions is "newer".
func after(ts1 int64, w1 model.TxnID, ts2 int64, w2 model.TxnID) bool {
	if ts1 != ts2 {
		return ts1 > ts2
	}
	return w1.String() > w2.String()
}

// --- payloads ---

type readReq struct {
	TID  model.TxnID
	Objs []string
}

func (p *readReq) Kind() string               { return "read-req" }
func (p *readReq) Clone() sim.Payload         { c := *p; c.Objs = append([]string(nil), p.Objs...); return &c }
func (p *readReq) Txn() model.TxnID           { return p.TID }
func (p *readReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

// fatEntry is one object's candidate value in a fat response.
type fatEntry struct {
	Object string
	Val    model.Value
	Writer model.TxnID
	TS     int64
}

type readResp struct {
	TID     model.TxnID
	Entries []fatEntry // direct values plus sibling/dependency values
}

func (p *readResp) Kind() string { return "fat-read-resp" }
func (p *readResp) Clone() sim.Payload {
	c := *p
	c.Entries = append([]fatEntry(nil), p.Entries...)
	return &c
}
func (p *readResp) Txn() model.TxnID           { return p.TID }
func (p *readResp) PayloadRole() protocol.Role { return protocol.RoleReadResp }
func (p *readResp) CarriedValues() []model.ValueRef {
	out := make([]model.ValueRef, 0, len(p.Entries))
	for _, e := range p.Entries {
		if e.Val == model.Bottom {
			continue
		}
		out = append(out, model.ValueRef{Object: e.Object, Value: e.Val, Writer: e.Writer})
	}
	return out
}

type writeReq struct {
	TID    model.TxnID
	TS     int64
	Writes []model.Write // writes for objects hosted at the destination
	// Siblings are the transaction's writes to other objects; DepVals are
	// the causally depended-on values — both shipped and stored whole.
	Siblings []fatEntry
	DepVals  []fatEntry
}

func (p *writeReq) Kind() string { return "fat-write-req" }
func (p *writeReq) Clone() sim.Payload {
	c := *p
	c.Writes = append([]model.Write(nil), p.Writes...)
	c.Siblings = append([]fatEntry(nil), p.Siblings...)
	c.DepVals = append([]fatEntry(nil), p.DepVals...)
	return &c
}
func (p *writeReq) Txn() model.TxnID           { return p.TID }
func (p *writeReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type writeResp struct {
	TID model.TxnID
}

func (p *writeResp) Kind() string               { return "fat-write-ack" }
func (p *writeResp) Clone() sim.Payload         { c := *p; return &c }
func (p *writeResp) Txn() model.TxnID           { return p.TID }
func (p *writeResp) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

// --- server ---

type server struct {
	id sim.ProcessID
	pl *protocol.Placement
	st *store.Store
	// meta holds the fat metadata per (object, writer) as flat entries.
	meta map[string][]fatEntry
}

func (s *server) ID() sim.ProcessID { return s.id }
func (s *server) Ready() bool       { return false }

func metaKey(obj string, w model.TxnID) string { return obj + "\x00" + w.String() }

func (s *server) Clone() sim.Process {
	c := &server{id: s.id, pl: s.pl, st: s.st.Clone(), meta: make(map[string][]fatEntry, len(s.meta))}
	for k, v := range s.meta {
		c.meta[k] = append([]fatEntry(nil), v...)
	}
	return c
}

func (s *server) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	if s.meta == nil {
		s.meta = make(map[string][]fatEntry)
	}
	var out []sim.Outbound
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *readReq:
			resp := &readResp{TID: p.TID}
			for _, obj := range p.Objs {
				var v *store.Version
				for _, cand := range s.st.Versions(obj) {
					if !cand.Visible {
						continue
					}
					if v == nil || after(cand.Stamp.Wall, cand.Writer, v.Stamp.Wall, v.Writer) {
						v = cand
					}
				}
				if v == nil {
					resp.Entries = append(resp.Entries, fatEntry{Object: obj, Val: model.Bottom})
					continue
				}
				resp.Entries = append(resp.Entries, fatEntry{Object: obj, Val: v.Value, Writer: v.Writer, TS: v.Stamp.Wall})
				// Attach the stored fat metadata (siblings + dep values).
				resp.Entries = append(resp.Entries, s.meta[metaKey(obj, v.Writer)]...)
			}
			out = append(out, sim.Outbound{To: m.From, Payload: resp})
		case *writeReq:
			for _, w := range p.Writes {
				s.st.Install(&store.Version{
					Object: w.Object, Value: w.Value, Writer: p.TID,
					Visible: true, Stamp: vclock.HLCStamp{Wall: p.TS},
				})
				var extras []fatEntry
				extras = append(extras, p.Siblings...)
				extras = append(extras, p.DepVals...)
				s.meta[metaKey(w.Object, p.TID)] = extras
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &writeResp{TID: p.TID}})
		default:
			panic(fmt.Sprintf("fatcops: server %s got %T", s.id, m.Payload))
		}
	}
	return out
}

// --- client ---

type client struct {
	protocol.Core
	clock   int64
	ctx     map[string]stamped // causal context: newest observed value per object
	pending int
}

func (c *client) Clone() sim.Process {
	cp := &client{Core: c.CloneCore(), clock: c.clock, pending: c.pending, ctx: make(map[string]stamped, len(c.ctx))}
	for k, v := range c.ctx {
		cp.ctx[k] = v
	}
	return cp
}

func (c *client) Ready() bool { return c.Busy() && !c.Started() }

// observe merges a candidate value into the causal context (the global
// version order decides which value wins).
func (c *client) observe(e fatEntry) {
	cur, exists := c.ctx[e.Object]
	if !exists || after(e.TS, e.Writer, cur.TS, cur.Writer) {
		c.ctx[e.Object] = stamped{Val: e.Val, Writer: e.Writer, TS: e.TS}
	}
	if e.TS > c.clock {
		c.clock = e.TS
	}
}

func (c *client) ctxEntries() []fatEntry {
	objs := make([]string, 0, len(c.ctx))
	for o := range c.ctx {
		objs = append(objs, o)
	}
	sort.Strings(objs)
	out := make([]fatEntry, 0, len(objs))
	for _, o := range objs {
		s := c.ctx[o]
		out = append(out, fatEntry{Object: o, Val: s.Val, Writer: s.Writer, TS: s.TS})
	}
	return out
}

func (c *client) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		if !c.Busy() {
			continue
		}
		switch p := m.Payload.(type) {
		case *readResp:
			if p.TID == c.Current().ID {
				for _, e := range p.Entries {
					if e.Val != model.Bottom {
						c.observe(e)
					}
				}
				c.pending--
			}
		case *writeResp:
			if p.TID == c.Current().ID {
				c.pending--
			}
		}
	}
	if c.Starting(now) {
		t := c.Current()
		pl := c.Placement()
		if len(t.Writes) > 0 && len(t.ReadSet) > 0 {
			c.Reject(now, "fatcops: read-write transactions unsupported")
			return out
		}
		if t.IsReadOnly() {
			readsBy := make(map[sim.ProcessID][]string)
			for _, obj := range t.ReadSet {
				p := pl.PrimaryOf(obj)
				readsBy[p] = append(readsBy[p], obj)
			}
			for _, srv := range pl.Servers() {
				if objs, okR := readsBy[srv]; okR {
					out = append(out, sim.Outbound{To: srv, Payload: &readReq{TID: t.ID, Objs: objs}})
					c.pending++
				}
			}
		} else {
			c.clock++
			ts := c.clock
			deps := c.ctxEntries()
			var siblings []fatEntry
			for _, w := range t.Writes {
				siblings = append(siblings, fatEntry{Object: w.Object, Val: w.Value, Writer: t.ID, TS: ts})
			}
			writesBy := make(map[sim.ProcessID][]model.Write)
			for _, w := range t.Writes {
				for _, srv := range pl.ReplicasOf(w.Object) {
					writesBy[srv] = append(writesBy[srv], w)
				}
			}
			for _, srv := range pl.Servers() {
				ws, involved := writesBy[srv]
				if !involved {
					continue
				}
				// Siblings shipped to each server exclude its own writes.
				var sib []fatEntry
				for _, e := range siblings {
					if !pl.Hosts(srv, e.Object) {
						sib = append(sib, e)
					}
				}
				out = append(out, sim.Outbound{To: srv, Payload: &writeReq{
					TID: t.ID, TS: ts, Writes: ws, Siblings: sib, DepVals: deps,
				}})
				c.pending++
			}
		}
		c.SentRound()
		return out
	}
	if c.Busy() && c.Started() && c.pending == 0 {
		t := c.Current()
		if t.IsReadOnly() {
			// Reconcile: the causal context now holds, per object, the
			// newest value any response (directly or via fat metadata)
			// established; report those for the read set.
			for _, obj := range t.ReadSet {
				if s, exists := c.ctx[obj]; exists {
					c.Result().Values[obj] = s.Val
				} else {
					c.Result().Values[obj] = model.Bottom
				}
			}
		} else {
			for _, w := range t.Writes {
				c.observe(fatEntry{Object: w.Object, Val: w.Value, Writer: t.ID, TS: c.clock})
			}
		}
		c.Finish(now)
	}
	return out
}

// Package fatcops implements the N+O+W design sketched in §3.4 of the
// paper: one-round, non-blocking read-only transactions that coexist with
// multi-object write transactions and causal consistency — at the price of
// the one-value property. Every write carries (a) the values of the other
// objects written by the same transaction and (b) the values of all the
// objects the transaction causally depends on; servers store this fat
// metadata alongside the version and return all of it to readers.
//
// The responses therefore carry values for objects the answering server
// does not even store — a direct violation of the (general) one-value
// property, which is exactly the trade the paper describes: "this protocol
// is not efficient, as it requires to store and communicate a
// prohibitively big amount of data".
//
// Client model. Each client IS a tiny replica. A write's dependency
// metadata is the writer's ENTIRE applied history with values (full
// causal delivery), so a read response parses into a batch of complete
// transactions — the current version with its siblings, plus every
// transaction in its transitive causal past, each carrying its FULL
// write-set of values — and the client applies them like a replicated
// store would:
//
//   - a transaction already applied is skipped (dependency vectors count
//     per-client write transactions, and a client's writes always apply
//     in order, so the vector test is exact);
//   - the remainder are applied in (Lamport timestamp, writer) order — a
//     linear extension of happens-before — each one atomically installing
//     values for its whole write-set.
//
// The client's serialization is its application order with reads
// interleaved, which is causally legal by construction: a response can
// never bring a transaction into the causal past without also delivering
// the values of every predecessor, so happens-before is respected across
// batches, and atomic full-write-set application means two transactions
// that wrote the same set of objects can never be observed mixed.
//
// Thriftier clients were tried first and all fracture under concurrent
// load at 2 objects/server: per-object freshest-value heuristics silently
// commit cross-object ordering (reading X1's initial value next to a
// fresh X0 orders every unseen X1 write after that X0) that later choices
// contradict, and shipping only the writer's current dependency CUT
// (latest value per object) lets a write drag a transaction into the
// reader's past without its values, wedging objects the skipped entries
// no longer cover. Full causal delivery is what the paper's "store and
// communicate a prohibitively big amount of data" verdict is about.
package fatcops

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/vclock"
)

// vec is a dependency vector: client → number of that client's write
// transactions in the causal past. Vectors are immutable once built.
type vec map[string]int64

// leq reports a ≤ b pointwise (a is in b's causal past or equal).
func (a vec) leq(b vec) bool {
	for k, v := range a {
		if v > b[k] {
			return false
		}
	}
	return true
}

// mergeInto folds a into dst pointwise (dst is the caller's mutable copy).
func (a vec) mergeInto(dst vec) {
	for k, v := range a {
		if v > dst[k] {
			dst[k] = v
		}
	}
}

func (a vec) clone() vec {
	c := make(vec, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// Protocol is the fatcops factory.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Name implements protocol.Protocol.
func (*Protocol) Name() string { return "fatcops" }

// Claims implements protocol.Protocol: one round, non-blocking,
// multi-writes — but NOT one-value.
func (*Protocol) Claims() protocol.Claims {
	return protocol.Claims{
		OneRound:      true,
		OneValue:      false,
		NonBlocking:   true,
		MultiWriteTxn: true,
		Consistency:   "causal",
	}
}

// NewServer implements protocol.Protocol.
func (*Protocol) NewServer(id sim.ProcessID, pl *protocol.Placement) sim.Process {
	return &server{id: id, pl: pl, st: store.New(pl.HostedBy(id)...)}
}

// NewClient implements protocol.Protocol.
func (*Protocol) NewClient(id sim.ProcessID, pl *protocol.Placement) protocol.Client {
	// Initializing clients stamp their writes at 1; every other client
	// boots its clock at 1 so even a blind first write is stamped 2 and
	// is applied after the initial values.
	clock := int64(1)
	if protocol.IsInitClient(id) {
		clock = 0
	}
	return &client{Core: protocol.NewCore(id, pl), clock: clock,
		vec: make(vec), ctx: make(map[string]stamped)}
}

// stamped is an applied value with its writer, the writer's Lamport
// timestamp, and the writing transaction's dependency vector, write-set
// and full value map. All are immutable once built.
type stamped struct {
	Val    model.Value
	Writer model.TxnID
	TS     int64
	Vec    vec
	WSet   []string
	Vals   map[string]model.Value
}

// --- payloads ---

type readReq struct {
	TID  model.TxnID
	Objs []string
}

func (p *readReq) Kind() string               { return "read-req" }
func (p *readReq) Clone() sim.Payload         { c := *p; c.Objs = append([]string(nil), p.Objs...); return &c }
func (p *readReq) Txn() model.TxnID           { return p.TID }
func (p *readReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

// fatEntry is one object's candidate value in a fat response, together
// with the writing transaction's dependency vector and write-set.
type fatEntry struct {
	Object string
	Val    model.Value
	Writer model.TxnID
	TS     int64
	Vec    vec
	WSet   []string
}

func cloneEntries(es []fatEntry) []fatEntry {
	c := make([]fatEntry, len(es))
	for i, e := range es {
		e.Vec = e.Vec.clone()
		e.WSet = append([]string(nil), e.WSet...)
		c[i] = e
	}
	return c
}

// directVal is the primary's answer for one requested object: the current
// version (last installed at the primary) plus the writing transaction's
// stored fat metadata.
type directVal struct {
	Object string
	Val    model.Value
	Writer model.TxnID
	TS     int64
	Vec    vec
	WSet   []string   // all objects the current writer's transaction wrote
	Sibs   []fatEntry // current writer's sibling writes
	Deps   []fatEntry // current writer's dependency values
}

type readResp struct {
	TID  model.TxnID
	Vals []directVal
}

func (p *readResp) Kind() string { return "fat-read-resp" }
func (p *readResp) Clone() sim.Payload {
	c := *p
	c.Vals = make([]directVal, len(p.Vals))
	for i, v := range p.Vals {
		v.Vec = v.Vec.clone()
		v.WSet = append([]string(nil), v.WSet...)
		v.Sibs = cloneEntries(v.Sibs)
		v.Deps = cloneEntries(v.Deps)
		c.Vals[i] = v
	}
	return &c
}
func (p *readResp) Txn() model.TxnID           { return p.TID }
func (p *readResp) PayloadRole() protocol.Role { return protocol.RoleReadResp }
func (p *readResp) CarriedValues() []model.ValueRef {
	var out []model.ValueRef
	for _, v := range p.Vals {
		if v.Val != model.Bottom {
			out = append(out, model.ValueRef{Object: v.Object, Value: v.Val, Writer: v.Writer})
		}
		for _, e := range append(append([]fatEntry(nil), v.Sibs...), v.Deps...) {
			if e.Val != model.Bottom {
				out = append(out, model.ValueRef{Object: e.Object, Value: e.Val, Writer: e.Writer})
			}
		}
	}
	return out
}

type writeReq struct {
	TID model.TxnID
	TS  int64
	Vec vec
	// Writes are the writes for objects hosted at the destination.
	Writes []model.Write
	// Siblings are ALL of the transaction's writes (co-hosted ones
	// included — readers apply the whole write-set atomically); DepVals
	// are the causally depended-on values. Both are shipped and stored.
	Siblings []fatEntry
	DepVals  []fatEntry
}

func (p *writeReq) Kind() string { return "fat-write-req" }
func (p *writeReq) Clone() sim.Payload {
	c := *p
	c.Vec = p.Vec.clone()
	c.Writes = append([]model.Write(nil), p.Writes...)
	c.Siblings = cloneEntries(p.Siblings)
	c.DepVals = cloneEntries(p.DepVals)
	return &c
}
func (p *writeReq) Txn() model.TxnID           { return p.TID }
func (p *writeReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type writeResp struct {
	TID model.TxnID
}

func (p *writeResp) Kind() string               { return "fat-write-ack" }
func (p *writeResp) Clone() sim.Payload         { c := *p; return &c }
func (p *writeResp) Txn() model.TxnID           { return p.TID }
func (p *writeResp) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

// --- server ---

// metaBlob is the fat metadata stored per (object, writer).
type metaBlob struct {
	Sibs []fatEntry
	Deps []fatEntry
	WSet []string // every object the writing transaction touched
	Vec  vec      // the writing transaction's dependency vector
}

type server struct {
	id   sim.ProcessID
	pl   *protocol.Placement
	st   *store.Store
	meta map[string]metaBlob
}

func (s *server) ID() sim.ProcessID { return s.id }
func (s *server) Ready() bool       { return false }

func metaKey(obj string, w model.TxnID) string { return obj + "\x00" + w.String() }

func (s *server) Clone() sim.Process {
	c := &server{id: s.id, pl: s.pl, st: s.st.Clone(), meta: make(map[string]metaBlob, len(s.meta))}
	for k, v := range s.meta {
		c.meta[k] = metaBlob{
			Sibs: cloneEntries(v.Sibs),
			Deps: cloneEntries(v.Deps),
			WSet: append([]string(nil), v.WSet...),
			Vec:  v.Vec.clone(),
		}
	}
	return c
}

func (s *server) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	if s.meta == nil {
		s.meta = make(map[string]metaBlob)
	}
	var out []sim.Outbound
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *readReq:
			resp := &readResp{TID: p.TID}
			for _, obj := range p.Objs {
				chain := s.st.Versions(obj)
				if len(chain) == 0 {
					resp.Vals = append(resp.Vals, directVal{Object: obj, Val: model.Bottom})
					continue
				}
				// The current version is the last installed one.
				v := chain[len(chain)-1]
				blob := s.meta[metaKey(obj, v.Writer)]
				resp.Vals = append(resp.Vals, directVal{
					Object: obj, Val: v.Value, Writer: v.Writer, TS: v.Stamp.Wall,
					Vec: blob.Vec, WSet: blob.WSet, Sibs: blob.Sibs, Deps: blob.Deps,
				})
			}
			out = append(out, sim.Outbound{To: m.From, Payload: resp})
		case *writeReq:
			// The sibling list carries the transaction's full write-set.
			wset := make([]string, 0, len(p.Siblings))
			for _, e := range p.Siblings {
				wset = append(wset, e.Object)
			}
			for _, w := range p.Writes {
				s.st.Install(&store.Version{
					Object: w.Object, Value: w.Value, Writer: p.TID,
					Visible: true, Stamp: vclock.HLCStamp{Wall: p.TS},
				})
				s.meta[metaKey(w.Object, p.TID)] = metaBlob{
					Sibs: p.Siblings, Deps: p.DepVals, WSet: wset, Vec: p.Vec,
				}
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &writeResp{TID: p.TID}})
		default:
			panic(fmt.Sprintf("fatcops: server %s got %T", s.id, m.Payload))
		}
	}
	return out
}

// --- client ---

type client struct {
	protocol.Core
	clock  int64
	writes int64 // own write transactions issued (this client's vector entry)
	vec    vec   // applied causal past: exactly the transactions applied
	// ctx is the local replica state: the latest applied value per object.
	ctx map[string]stamped
	// past is the client's entire applied history, flattened to (writer,
	// object, value) entries in application order. It is shipped verbatim
	// as the dependency metadata of every write — the whole transitive
	// causal past with values, which is what lets any reader causally
	// deliver a write it was missing predecessors for. This is the
	// "prohibitively big amount of data" of §3.4, kept deliberately.
	past    []fatEntry
	pending int
}

func (c *client) Clone() sim.Process {
	cp := &client{Core: c.CloneCore(), clock: c.clock, writes: c.writes, pending: c.pending,
		vec:  c.vec.clone(),
		ctx:  make(map[string]stamped, len(c.ctx)),
		past: append([]fatEntry(nil), c.past...)}
	for k, v := range c.ctx {
		cp.ctx[k] = v
	}
	return cp
}

func (c *client) Ready() bool { return c.Busy() && !c.Started() }

func (c *client) tick(ts int64) {
	if ts > c.clock {
		c.clock = ts
	}
}

// txnCand is one complete transaction reconstructed from a fat response:
// its full write-set with values, ready to be applied atomically.
type txnCand struct {
	id   model.TxnID
	ts   int64
	vc   vec
	wset []string
	vals map[string]model.Value
}

// applyBatch parses one read response into complete transactions and
// applies them to the local replica state. A transaction already applied
// is skipped (the vector test is exact: counters are per-client
// sequential and a client's writes always apply in order); the rest are
// applied in (TS, writer) order — a linear extension of happens-before,
// because causally ordered writes have strictly increasing Lamport
// timestamps — each atomically installing its whole write-set. Because
// every write travels with its full transitive past, a response never
// introduces a transaction into the causal past without also delivering
// its values, so the application order with reads interleaved is a legal
// causal serialization by construction.
func (c *client) applyBatch(vals []directVal) {
	cands := make(map[string]*txnCand)
	ensure := func(w model.TxnID, ts int64, vc vec, wset []string) *txnCand {
		k := w.String()
		t := cands[k]
		if t == nil {
			t = &txnCand{id: w, ts: ts, vc: vc, wset: wset, vals: make(map[string]model.Value)}
			cands[k] = t
		}
		return t
	}
	for _, dv := range vals {
		if dv.Val == model.Bottom {
			continue
		}
		t := ensure(dv.Writer, dv.TS, dv.Vec, dv.WSet)
		t.vals[dv.Object] = dv.Val
		for _, e := range dv.Sibs {
			t.vals[e.Object] = e.Val
		}
		for _, e := range dv.Deps {
			d := ensure(e.Writer, e.TS, e.Vec, e.WSet)
			d.vals[e.Object] = e.Val
		}
	}
	batch := make([]*txnCand, 0, len(cands))
	for _, t := range cands {
		batch = append(batch, t)
	}
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].ts != batch[j].ts {
			return batch[i].ts < batch[j].ts
		}
		return batch[i].id.String() < batch[j].id.String()
	})
	for _, t := range batch {
		c.tick(t.ts)
		if t.vc.leq(c.vec) {
			continue // already in the causal past: superseded
		}
		if protocol.IsInitClient(sim.ProcessID(t.id.Client)) {
			// Initial writes precede everything, but blind writers do not
			// record them in dependency vectors, so the vector test above
			// cannot supersede them: an initial value only fills an
			// object the client has never seen written.
			for _, o := range t.wset {
				if _, held := c.ctx[o]; held {
					continue
				}
				c.ctx[o] = stamped{Val: t.vals[o], Writer: t.id, TS: t.ts,
					Vec: t.vc, WSet: t.wset, Vals: t.vals}
			}
			c.record(t)
			continue
		}
		wset := t.wset
		if len(wset) == 0 {
			wset = make([]string, 0, len(t.vals))
			for o := range t.vals {
				wset = append(wset, o)
			}
			sort.Strings(wset)
		}
		complete := true
		for _, o := range wset {
			if _, known := t.vals[o]; !known {
				complete = false
				break
			}
		}
		if !complete {
			// Partial application would leave the cut inconsistent;
			// the invariant (siblings always carry the full write-set)
			// makes this unreachable, but skip defensively.
			continue
		}
		for _, o := range wset {
			c.ctx[o] = stamped{Val: t.vals[o], Writer: t.id, TS: t.ts,
				Vec: t.vc, WSet: wset, Vals: t.vals}
		}
		c.record(t)
	}
}

// record appends an applied transaction to the client's flattened history
// and folds it into the applied-past vector.
func (c *client) record(t *txnCand) {
	wset := t.wset
	if len(wset) == 0 {
		wset = make([]string, 0, len(t.vals))
		for o := range t.vals {
			wset = append(wset, o)
		}
		sort.Strings(wset)
	}
	for _, o := range wset {
		c.past = append(c.past, fatEntry{Object: o, Val: t.vals[o], Writer: t.id,
			TS: t.ts, Vec: t.vc, WSet: wset})
	}
	t.vc.mergeInto(c.vec)
}

func (c *client) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		if !c.Busy() {
			continue
		}
		switch p := m.Payload.(type) {
		case *readResp:
			if p.TID == c.Current().ID {
				c.applyBatch(p.Vals)
				c.pending--
			}
		case *writeResp:
			if p.TID == c.Current().ID {
				c.pending--
			}
		}
	}
	if c.Starting(now) {
		t := c.Current()
		pl := c.Placement()
		if len(t.Writes) > 0 && len(t.ReadSet) > 0 {
			c.Reject(now, "fatcops: read-write transactions unsupported")
			return out
		}
		if t.IsReadOnly() {
			readsBy := make(map[sim.ProcessID][]string)
			for _, obj := range t.ReadSet {
				p := pl.PrimaryOf(obj)
				readsBy[p] = append(readsBy[p], obj)
			}
			for _, srv := range pl.Servers() {
				if objs, okR := readsBy[srv]; okR {
					out = append(out, sim.Outbound{To: srv, Payload: &readReq{TID: t.ID, Objs: objs}})
					c.pending++
				}
			}
		} else {
			c.clock++
			c.writes++
			ts := c.clock
			// The write's dependency metadata is the client's ENTIRE
			// applied history with values — full causal delivery.
			deps := append([]fatEntry(nil), c.past...)
			// wv is shipped and stored remotely, so it must be frozen
			// here: the client's own mutable vec is a separate copy.
			wv := c.vec.clone()
			wv[string(c.ID())] = c.writes
			c.vec = wv.clone()
			wset := make([]string, 0, len(t.Writes))
			for _, w := range t.Writes {
				wset = append(wset, w.Object)
			}
			var siblings []fatEntry
			for _, w := range t.Writes {
				siblings = append(siblings, fatEntry{Object: w.Object, Val: w.Value, Writer: t.ID,
					TS: ts, Vec: wv, WSet: wset})
			}
			writesBy := make(map[sim.ProcessID][]model.Write)
			for _, w := range t.Writes {
				for _, srv := range pl.ReplicasOf(w.Object) {
					writesBy[srv] = append(writesBy[srv], w)
				}
			}
			for _, srv := range pl.Servers() {
				ws, involved := writesBy[srv]
				if !involved {
					continue
				}
				out = append(out, sim.Outbound{To: srv, Payload: &writeReq{
					TID: t.ID, TS: ts, Vec: wv, Writes: ws, Siblings: siblings, DepVals: deps,
				}})
				c.pending++
			}
		}
		c.SentRound()
		return out
	}
	if c.Busy() && c.Started() && c.pending == 0 {
		t := c.Current()
		if t.IsReadOnly() {
			// Every response batch has been applied; the replica state is
			// the read's snapshot.
			for _, obj := range t.ReadSet {
				if s, exists := c.ctx[obj]; exists {
					c.Result().Values[obj] = s.Val
				} else {
					c.Result().Values[obj] = model.Bottom
				}
			}
		} else {
			// The client's own writes are the newest thing in its causal
			// past: apply them to the local replica unconditionally.
			vals := make(map[string]model.Value, len(t.Writes))
			wset := make([]string, 0, len(t.Writes))
			for _, w := range t.Writes {
				vals[w.Object] = w.Value
				wset = append(wset, w.Object)
			}
			wv := c.vec.clone()
			for _, w := range t.Writes {
				c.ctx[w.Object] = stamped{Val: w.Value, Writer: t.ID, TS: c.clock,
					Vec: wv, WSet: wset, Vals: vals}
			}
			c.record(&txnCand{id: t.ID, ts: c.clock, vc: wv, wset: wset, vals: vals})
		}
		c.Finish(now)
	}
	return out
}

// ShardStore exposes the durable version store for the reconfiguration
// layer's catch-up (protocol.StoreCarrier).
func (s *server) ShardStore() *store.Store { return s.st }

// SyncFrom implements protocol.Syncer, the non-default catch-up: a
// replacement adopts the peer's missing versions AND their sibling/dep
// metadata blobs — fat-COPS answers reads straight from the blob, so a
// version transferred without it would serve an empty dependency set.
func (s *server) SyncFrom(peer sim.Process, objs []string) int {
	n := protocol.CopyMissingVersions(s, peer, objs)
	src, ok := peer.(*server)
	if !ok {
		return n
	}
	if s.meta == nil {
		s.meta = make(map[string]metaBlob)
	}
	for _, obj := range objs {
		for _, v := range src.st.Versions(obj) {
			key := metaKey(obj, v.Writer)
			m, found := src.meta[key]
			if !found {
				continue
			}
			if _, have := s.meta[key]; !have {
				s.meta[key] = metaBlob{
					Sibs: cloneEntries(m.Sibs),
					Deps: cloneEntries(m.Deps),
					WSet: append([]string(nil), m.WSet...),
					Vec:  m.Vec.clone(),
				}
			}
		}
	}
	return n
}

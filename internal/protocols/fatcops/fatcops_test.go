package fatcops_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/protocols/fatcops"
	"repro/internal/protocols/ptest"
	"repro/internal/sim"
	"repro/internal/spec"
)

func TestConformance(t *testing.T) {
	ptest.Run(t, fatcops.New(), ptest.Expect{
		ROTRounds:          1,
		MaxValuesPerObject: 3, // fat responses may stack candidates
		Blocking:           false,
		MultiWrite:         true,
		Causal:             true,
	})
}

// TestForeignValuesMeasured: fat responses carry values for objects the
// server does not store — the general one-value property is violated,
// which is the documented price of the N+O+W corner.
func TestForeignValuesMeasured(t *testing.T) {
	d := ptest.Deploy(t, fatcops.New(), ptest.Expect{}, 59)
	// A multi-object write creates sibling metadata at both servers.
	if res := d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "f0"}, model.Write{Object: "X1", Value: "f1"}), 200_000); !res.OK() {
		t.Fatal("write failed")
	}
	from := d.Kernel.Trace().Len()
	res := d.RunTxn("c1", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 200_000)
	if !res.OK() {
		t.Fatal("read failed")
	}
	m := spec.MeasureResult(d, from, res)
	if !m.ForeignValues {
		t.Fatalf("fat responses not measured as carrying foreign values: %s", m)
	}
	if m.FastROT() {
		t.Fatal("fatcops measured as fast ROT despite foreign values")
	}
}

// TestSiblingMetadataRepairsMixedRead is the point of the design: even if
// the adversary delays Tw's write at s0, a reader that sees the new X1
// learns the new X0 from the sibling metadata and returns a consistent
// (new, new) pair instead of the forbidden mixed pair.
func TestSiblingMetadataRepairsMixedRead(t *testing.T) {
	d := ptest.Deploy(t, fatcops.New(), ptest.Expect{}, 61)
	if res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 200_000); !res.OK() {
		t.Fatal("setup read failed")
	}
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "n0"}, model.Write{Object: "X1", Value: "n1"}))
	d.Kernel.StepProcess("c0")
	// Deliver the write only to s1.
	for _, m := range d.Kernel.InTransitOn(sim.Link{From: "c0", To: "s1"}) {
		d.Kernel.Deliver(m.ID)
	}
	d.Kernel.StepProcess("s1")

	res := d.Probe("r0", []string{"X0", "X1"}, []sim.ProcessID{"s0", "s1"}, true)
	if res == nil {
		t.Fatal("probe did not complete")
	}
	if res.Value("X1") != "n1" {
		t.Fatalf("reader missed the delivered write: %v", res.Values)
	}
	if res.Value("X0") != "n0" {
		t.Fatalf("sibling metadata did not repair X0: got %q, want n0 (mixed read would violate Lemma 1)", res.Value("X0"))
	}
}

func TestInitialsVisible(t *testing.T) {
	d := ptest.Deploy(t, fatcops.New(), ptest.Expect{}, 67)
	vis := d.VisibleAll("r1", map[string]model.Value{
		"X0": protocol.InitialValue("X0"), "X1": protocol.InitialValue("X1")}, true)
	if !vis.Visible {
		t.Fatalf("initials not visible: %+v", vis)
	}
}

// TestOppositeInstallOrdersRepairedAtomically pins the schedule that used
// to fracture the load suite (seed 5, client c2): two concurrent
// transactions both write {X0, X1}, and the adversary delivers them in
// opposite orders at the two primaries, so the per-object tails disagree
// about which transaction came last. Atomic full-write-set application
// means a reader must still report BOTH objects from a single
// transaction, never a mixed pair.
func TestOppositeInstallOrdersRepairedAtomically(t *testing.T) {
	d := ptest.Deploy(t, fatcops.New(), ptest.Expect{}, 71)
	d.Invoke("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "a0"}, model.Write{Object: "X1", Value: "a1"}))
	d.Kernel.StepProcess("c0")
	d.Invoke("c1", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "b0"}, model.Write{Object: "X1", Value: "b1"}))
	d.Kernel.StepProcess("c1")
	// s0 installs c0's write then c1's; s1 installs them in the opposite
	// order.
	for _, link := range []sim.Link{
		{From: "c0", To: "s0"}, {From: "c1", To: "s0"},
		{From: "c1", To: "s1"}, {From: "c0", To: "s1"},
	} {
		for _, m := range d.Kernel.InTransitOn(link) {
			d.Kernel.Deliver(m.ID)
		}
		d.Kernel.StepProcess(link.To)
	}
	res := d.Probe("r0", []string{"X0", "X1"}, []sim.ProcessID{"s0", "s1"}, true)
	if res == nil {
		t.Fatal("probe did not complete")
	}
	v0, v1 := res.Value("X0"), res.Value("X1")
	if !(v0 == "a0" && v1 == "a1") && !(v0 == "b0" && v1 == "b1") {
		t.Fatalf("mixed pair from opposite install orders: X0=%v X1=%v", v0, v1)
	}
}

// TestLoadConformance: fatcops must certify clean under concurrent load
// at 2 objects per server on both stepping engines. Each client is a
// replica receiving full causal delivery (every write travels with its
// entire transitive past, values included) and applying whole write-sets
// atomically, so its read sequence is causally serializable by
// construction; TestOppositeInstallOrdersRepairedAtomically pins the
// adversarial schedule that used to fracture here.
func TestLoadConformance(t *testing.T) {
	ptest.RunLoad(t, fatcops.New(), ptest.Expect{
		ObjectsPerServer: 2,
		LoadSeeds:        []int64{5},
		LoadTxns:         96,
	})
}

// TestFaultConformance certifies the standard persistent crash+restart
// and partition+heal nemesis sweeps on both stepping engines
// (ptest.RunFaults semantics).
func TestFaultConformance(t *testing.T) {
	ptest.RunFaults(t, fatcops.New(), ptest.Expect{ObjectsPerServer: 2, LoadSeeds: []int64{5}})
}

// TestReconfigConformance certifies the standard replica-replacement and
// whole-cluster-restore sweeps on both stepping engines (ptest.RunReconfig
// semantics): non-lossy reconfiguration must lose nothing.
func TestReconfigConformance(t *testing.T) {
	ptest.RunReconfig(t, fatcops.New(), ptest.Expect{ObjectsPerServer: 2, LoadSeeds: []int64{5}})
}

package eigerps_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/protocols/eigerps"
	"repro/internal/protocols/ptest"
	"repro/internal/spec"
)

// eigerps deliberately does NOT run the full conformance suite: its defining
// behaviour is that non-initial writes never become visible in-model (the
// †-rows of Table 1 rely on out-of-band communication the paper's system
// model excludes), so write-then-read freshness checks do not apply.

func TestInitialValuesVisible(t *testing.T) {
	d := ptest.Deploy(t, eigerps.New(), ptest.Expect{}, 151)
	res := d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 200_000)
	if !res.OK() || res.Value("X0") != protocol.InitialValue("X0") {
		t.Fatalf("initial read = %v", res)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}

func TestWritesCompleteButStayInvisible(t *testing.T) {
	d := ptest.Deploy(t, eigerps.New(), ptest.Expect{}, 157)
	w := model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "n0"}, model.Write{Object: "X1", Value: "n1"})
	if res := d.RunTxn("c0", w, 200_000); !res.OK() {
		t.Fatalf("write failed: %v", res)
	}
	d.Settle(200_000)
	// The values never become visible — readers still see the initials.
	vis := d.VisibleAll("r0", map[string]model.Value{
		"X0": protocol.InitialValue("X0"), "X1": protocol.InitialValue("X1")}, true)
	if !vis.Visible {
		t.Fatalf("stale initials not uniformly visible: %+v", vis)
	}
	newVis := d.VisibleAll("r1", map[string]model.Value{"X0": "n0", "X1": "n1"}, true)
	if newVis.Visible {
		t.Fatal("hidden writes became visible")
	}
}

func TestMeasuredFastDespiteWrites(t *testing.T) {
	d := ptest.Deploy(t, eigerps.New(), ptest.Expect{}, 163)
	d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "m0"}, model.Write{Object: "X1", Value: "m1"}), 200_000)
	from := d.Kernel.Trace().Len()
	res := d.RunTxn("c1", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 200_000)
	m := spec.MeasureResult(d, from, res)
	if !m.FastROT() {
		t.Fatalf("eigerps ROT not fast: %s", m)
	}
}

func TestHistoryStaysCausalBecauseReadsAreStale(t *testing.T) {
	// Readers only ever see the initial values, which is trivially
	// causally consistent — the paper's point about these designs: they
	// are "consistent" only because reads can be indefinitely stale.
	d := ptest.Deploy(t, eigerps.New(), ptest.Expect{}, 167)
	d.RunTxn("c0", model.NewWriteOnly(model.TxnID{},
		model.Write{Object: "X0", Value: "s0v"}, model.Write{Object: "X1", Value: "s1v"}), 200_000)
	r := d.RunTxn("c1", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 200_000)
	if r.Value("X0") != protocol.InitialValue("X0") || r.Value("X1") != protocol.InitialValue("X1") {
		t.Fatalf("reader saw non-initial values: %v", r.Values)
	}
}

// TestLoadConformance: eigerps is a theorem victim — concurrent sweeps must
// FAIL certification at its claimed level (fast reads are paid for with
// consistency, exactly as the paper's lower bounds demand).
func TestLoadConformance(t *testing.T) {
	ptest.RunLoad(t, eigerps.New(), ptest.Expect{ViolatesUnderLoad: true, LoadTxns: 96})
}

// TestFaultConformance certifies the standard persistent crash+restart
// and partition+heal nemesis sweeps on both stepping engines
// (ptest.RunFaults semantics).
func TestFaultConformance(t *testing.T) {
	ptest.RunFaults(t, eigerps.New(), ptest.Expect{ViolatesUnderLoad: true})
}

// TestReconfigConformance certifies the standard replica-replacement and
// whole-cluster-restore sweeps on both stepping engines (ptest.RunReconfig
// semantics): non-lossy reconfiguration must lose nothing.
func TestReconfigConformance(t *testing.T) {
	ptest.RunReconfig(t, eigerps.New(), ptest.Expect{ViolatesUnderLoad: true})
}

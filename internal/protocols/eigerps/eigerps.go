// Package eigerps models the †-marked rows of the paper's Table 1
// (Eiger-PS, SwiftCloud): systems that provide fast read-only transactions
// AND multi-object write transactions — seemingly beating the theorem —
// by relying on a system model the paper excludes. Their writes complete,
// "but the values they write may be invisible to some clients for an
// indefinitely long time" (§4); making them visible requires out-of-band
// server-to-client communication, which the paper's model (and this
// simulation) forbids.
//
// In-model behaviour: write transactions install hidden versions and
// complete immediately; the servers then exchange synchronization tokens
// forever without ever making the versions visible (visibility would need
// the excluded out-of-band channel). Read-only transactions are genuinely
// fast — one round, one value, non-blocking — and always causally
// consistent, because they only ever see the initial values.
//
// The theorem adversary's verdict is exactly the paper's criticism: the
// protocol violates minimal progress (Definition 3) — its troublesome
// execution α really is infinite, with a server message ms_k in every
// induction segment and the written values never visible.
package eigerps

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/store"
)

// Protocol is the eigerps factory.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Name implements protocol.Protocol.
func (*Protocol) Name() string { return "eigerps" }

// Claims implements protocol.Protocol. All four properties are claimed —
// the price is paid in progress, not in any of {N, O, V, W}.
func (*Protocol) Claims() protocol.Claims {
	return protocol.Claims{
		OneRound:      true,
		OneValue:      true,
		NonBlocking:   true,
		MultiWriteTxn: true,
		Consistency:   "causal",
	}
}

// NewServer implements protocol.Protocol.
func (*Protocol) NewServer(id sim.ProcessID, pl *protocol.Placement) sim.Process {
	return &server{id: id, pl: pl, st: store.New(pl.HostedBy(id)...)}
}

// NewClient implements protocol.Protocol.
func (*Protocol) NewClient(id sim.ProcessID, pl *protocol.Placement) protocol.Client {
	return &client{Core: protocol.NewCore(id, pl)}
}

// --- payloads ---

type readReq struct {
	TID  model.TxnID
	Objs []string
}

func (p *readReq) Kind() string               { return "read-req" }
func (p *readReq) Clone() sim.Payload         { c := *p; c.Objs = append([]string(nil), p.Objs...); return &c }
func (p *readReq) Txn() model.TxnID           { return p.TID }
func (p *readReq) PayloadRole() protocol.Role { return protocol.RoleReadReq }

type readResp struct {
	TID  model.TxnID
	Vals []model.ValueRef
}

func (p *readResp) Kind() string { return "read-resp" }
func (p *readResp) Clone() sim.Payload {
	c := *p
	c.Vals = append([]model.ValueRef(nil), p.Vals...)
	return &c
}
func (p *readResp) Txn() model.TxnID                { return p.TID }
func (p *readResp) PayloadRole() protocol.Role      { return protocol.RoleReadResp }
func (p *readResp) CarriedValues() []model.ValueRef { return p.Vals }

type writeReq struct {
	TID    model.TxnID
	Writes []model.Write
}

func (p *writeReq) Kind() string { return "write-req" }
func (p *writeReq) Clone() sim.Payload {
	c := *p
	c.Writes = append([]model.Write(nil), p.Writes...)
	return &c
}
func (p *writeReq) Txn() model.TxnID           { return p.TID }
func (p *writeReq) PayloadRole() protocol.Role { return protocol.RoleWriteReq }

type writeResp struct {
	TID model.TxnID
}

func (p *writeResp) Kind() string               { return "write-ack" }
func (p *writeResp) Clone() sim.Payload         { c := *p; return &c }
func (p *writeResp) Txn() model.TxnID           { return p.TID }
func (p *writeResp) PayloadRole() protocol.Role { return protocol.RoleWriteResp }

// sync is the never-ending background synchronization: the out-of-band
// visibility mechanism the paper's model excludes would be driven by it.
type syncToken struct {
	Round int64
}

func (p *syncToken) Kind() string               { return "sync" }
func (p *syncToken) Clone() sim.Payload         { c := *p; return &c }
func (p *syncToken) Txn() model.TxnID           { return model.TxnID{} }
func (p *syncToken) PayloadRole() protocol.Role { return protocol.RoleInternal }

// --- server ---

type server struct {
	id sim.ProcessID
	pl *protocol.Placement
	st *store.Store
}

func (s *server) ID() sim.ProcessID { return s.id }
func (s *server) Ready() bool       { return false }
func (s *server) Clone() sim.Process {
	return &server{id: s.id, pl: s.pl, st: s.st.Clone()}
}

func (s *server) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case *readReq:
			resp := &readResp{TID: p.TID}
			for _, obj := range p.Objs {
				if v := s.st.LatestVisible(obj); v != nil {
					resp.Vals = append(resp.Vals, model.ValueRef{Object: obj, Value: v.Value, Writer: v.Writer})
				} else {
					resp.Vals = append(resp.Vals, model.ValueRef{Object: obj, Value: model.Bottom})
				}
			}
			out = append(out, sim.Outbound{To: m.From, Payload: resp})
		case *writeReq:
			init := protocol.IsInitClient(sim.ProcessID(p.TID.Client))
			for _, w := range p.Writes {
				// Initializing writes are visible (the system must boot);
				// everything else stays hidden pending the out-of-band
				// mechanism that never arrives in this model.
				s.st.Install(&store.Version{Object: w.Object, Value: w.Value, Writer: p.TID, Visible: init})
			}
			out = append(out, sim.Outbound{To: m.From, Payload: &writeResp{TID: p.TID}})
			if !init {
				// Kick off the endless synchronization exchange.
				for _, other := range s.pl.Servers() {
					if other != s.id {
						out = append(out, sim.Outbound{To: other, Payload: &syncToken{Round: 1}})
					}
				}
			}
		case *syncToken:
			// Ping-pong synchronization that never makes anything visible.
			// (Bounded per write so that bounded experiment budgets are
			// not consumed by the exchange; every new write starts a new
			// chain, so in the adversary's solo runs there is always one
			// more server message — the ms_k of Lemma 3.)
			if p.Round < 16 {
				out = append(out, sim.Outbound{To: m.From, Payload: &syncToken{Round: p.Round + 1}})
			}
		default:
			panic(fmt.Sprintf("eigerps: server %s got %T", s.id, m.Payload))
		}
	}
	return out
}

// --- client ---

type client struct {
	protocol.Core
	pending int
}

func (c *client) Clone() sim.Process {
	return &client{Core: c.CloneCore(), pending: c.pending}
}

func (c *client) Ready() bool { return c.Busy() && !c.Started() }

func (c *client) Step(now sim.Time, inbox []*sim.Message) []sim.Outbound {
	var out []sim.Outbound
	for _, m := range inbox {
		if !c.Busy() {
			continue
		}
		switch p := m.Payload.(type) {
		case *readResp:
			if p.TID == c.Current().ID {
				for _, vr := range p.Vals {
					c.Result().Values[vr.Object] = vr.Value
				}
				c.pending--
			}
		case *writeResp:
			if p.TID == c.Current().ID {
				c.pending--
			}
		}
	}
	if c.Starting(now) {
		t := c.Current()
		pl := c.Placement()
		if len(t.Writes) > 0 && len(t.ReadSet) > 0 {
			c.Reject(now, "eigerps: read-write transactions unsupported")
			return out
		}
		if t.IsReadOnly() {
			readsBy := make(map[sim.ProcessID][]string)
			for _, obj := range t.ReadSet {
				p := pl.PrimaryOf(obj)
				readsBy[p] = append(readsBy[p], obj)
			}
			for _, srv := range pl.Servers() {
				if objs, involved := readsBy[srv]; involved {
					out = append(out, sim.Outbound{To: srv, Payload: &readReq{TID: t.ID, Objs: objs}})
					c.pending++
				}
			}
		} else {
			writesBy := make(map[sim.ProcessID][]model.Write)
			for _, w := range t.Writes {
				for _, srv := range pl.ReplicasOf(w.Object) {
					writesBy[srv] = append(writesBy[srv], w)
				}
			}
			for _, srv := range pl.Servers() {
				if ws, involved := writesBy[srv]; involved {
					out = append(out, sim.Outbound{To: srv, Payload: &writeReq{TID: t.ID, Writes: ws}})
					c.pending++
				}
			}
		}
		c.SentRound()
		return out
	}
	if c.Busy() && c.Started() && c.pending == 0 {
		c.Finish(now)
	}
	return out
}

// ShardStore exposes the durable version store for the reconfiguration
// layer's generic catch-up (protocol.StoreCarrier): a replacement server
// adopts missing versions from live peer replicas before serving.
func (s *server) ShardStore() *store.Store { return s.st }

package trace

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/protocols/naivefast"
	"repro/internal/sim"
)

func TestRenderSetupTrace(t *testing.T) {
	d := protocol.Deploy(naivefast.New(), protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 3})
	if err := d.InitAll(100_000); err != nil {
		t.Fatal(err)
	}
	from := d.Kernel.Trace().Len()
	d.RunTxn("c0", model.NewReadOnly(model.TxnID{}, "X0", "X1"), 100_000)
	events := d.Kernel.Trace().Since(from)

	out := Render(events, []sim.ProcessID{"c0", "s0", "s1"})
	for _, want := range []string{"c0", "s0", "s1", "read-req", "invoke"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderAutoDetectsProcesses(t *testing.T) {
	d := protocol.Deploy(naivefast.New(), protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 1, Seed: 5})
	if err := d.InitAll(100_000); err != nil {
		t.Fatal(err)
	}
	out := Render(d.Kernel.Trace().Events, nil)
	if !strings.Contains(out, "cin0") {
		t.Fatalf("auto-detected lanes missing cin0:\n%s", out)
	}
}

func TestSummarize(t *testing.T) {
	d := protocol.Deploy(naivefast.New(), protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 1, Seed: 7})
	if err := d.InitAll(100_000); err != nil {
		t.Fatal(err)
	}
	s := Summarize(d.Kernel.Trace().Events)
	if !strings.Contains(s, "steps") || !strings.Contains(s, "deliveries") {
		t.Fatalf("summary = %q", s)
	}
}

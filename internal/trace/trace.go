// Package trace renders kernel execution traces as space-time diagrams,
// regenerating the figures of the paper (Figure 1: Q_in → Q_0 → C_0;
// Figure 2: Constructions 1 and 2; Figure 3: β/β_new and γ) as textual
// lanes — one column per process, message sends and deliveries drawn as
// labelled hops.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Render draws the events as a lane diagram: one column per process.
func Render(events []sim.Event, procs []sim.ProcessID) string {
	if len(procs) == 0 {
		seen := make(map[sim.ProcessID]bool)
		for _, ev := range events {
			if ev.Proc != "" {
				seen[ev.Proc] = true
			}
			for _, r := range ev.Msgs {
				seen[r.Link.From] = true
				seen[r.Link.To] = true
			}
		}
		for p := range seen {
			procs = append(procs, p)
		}
		sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	}
	col := make(map[sim.ProcessID]int, len(procs))
	for i, p := range procs {
		col[p] = i
	}
	const colWidth = 14
	var b strings.Builder

	// Header.
	for _, p := range procs {
		fmt.Fprintf(&b, "%-*s", colWidth, p)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", colWidth*len(procs)) + "\n")

	line := func(pos int, text string) string {
		if pos < 0 {
			return text
		}
		pad := strings.Repeat(" ", pos*colWidth)
		return pad + text
	}

	for _, ev := range events {
		switch ev.Kind {
		case sim.EvStep:
			c, known := col[ev.Proc]
			if !known {
				continue
			}
			label := "step"
			if len(ev.Sent) > 0 {
				var kinds []string
				for _, r := range ev.Sent {
					kinds = append(kinds, fmt.Sprintf("%s>%s", r.Kind, r.Link.To))
				}
				label = "send " + strings.Join(kinds, ",")
			} else if len(ev.Consumed) > 0 {
				label = "recv+step"
			}
			b.WriteString(line(c, "* "+label) + "\n")
		case sim.EvDeliver:
			for _, r := range ev.Msgs {
				from, okF := col[r.Link.From]
				to, okT := col[r.Link.To]
				if !okF || !okT {
					continue
				}
				lo, hi := from, to
				arrow := ">"
				if from > to {
					lo, hi = to, from
					arrow = "<"
				}
				span := (hi - lo) * colWidth
				if span < 2 {
					span = 2
				}
				wire := strings.Repeat("-", span-1) + arrow
				if arrow == "<" {
					wire = "<" + strings.Repeat("-", span-1)
				}
				b.WriteString(line(lo, wire+" "+r.Kind) + "\n")
			}
		case sim.EvInvoke:
			c := col[ev.Proc]
			b.WriteString(line(c, "! invoke "+ev.Note) + "\n")
		case sim.EvResponse:
			c := col[ev.Proc]
			b.WriteString(line(c, "! done "+ev.Note) + "\n")
		case sim.EvMark:
			b.WriteString("== " + ev.Note + " ==\n")
		}
	}
	return b.String()
}

// Summarize counts event types for quick reports.
func Summarize(events []sim.Event) string {
	steps, delivers, sends := 0, 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case sim.EvStep:
			steps++
			sends += len(ev.Sent)
		case sim.EvDeliver:
			delivers += len(ev.Msgs)
		}
	}
	return fmt.Sprintf("%d steps, %d deliveries, %d messages sent", steps, delivers, sends)
}

package adversary

import (
	"errors"
	"fmt"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// ErrEscapedRounds reports that the reader did not complete its read-only
// transaction within the one-round schedule of the contradiction execution
// — i.e. the protocol escaped the trap by spending additional rounds
// (repair/retry rounds), which is exactly the paper's point: it sacrifices
// the one-round property instead of consistency.
var ErrEscapedRounds = errors.New("adversary: reader took additional rounds in the contradiction execution")

// buildContradiction assembles the paper's execution γ (or δ — the code is
// identical, only the β/ρ script differs) on a snapshot of base:
//
//	σ_old  — the reader's fast ROT starts; the servers in oldFirst
//	         receive its requests and answer (necessarily with values not
//	         including Tw's writes, Observation 1);
//	β_new  — the recorded solo execution β (from which the values become
//	         visible) is replayed with every step of the oldFirst servers
//	         filtered out (β_p · β_s, Figure 3a) — legal by the
//	         indistinguishability argument, since those servers sent no
//	         ms_k;
//	σ_new  — the remaining server now receives the reader's request in a
//	         configuration where Tw's value is visible and answers with
//	         the new value (Observation 2);
//
// and finally the responses are delivered and the reader completes. For a
// protocol with fast ROTs + multi-object writes the result mixes initial
// and new values — the Lemma 1 contradiction.
func (a *Attack) buildContradiction(base *protocol.Deployment, beta []sim.Event,
	oldFirst []sim.ProcessID, newSrv sim.ProcessID, reader sim.ProcessID) (*model.Result, error) {

	k := base.Kernel.Snapshot()
	d := base.At(k)
	cw := d.Clients[0]
	objs := d.Place.Objects()
	highwater := base.Kernel.LinkSeqHighWater()
	traceStart := k.Trace().Len()
	defer func() { a.LastContradictionTrace = append([]sim.Event(nil), k.Trace().Since(traceStart)...) }()

	// --- σ_old ---
	tid := d.Invoke(reader, model.NewReadOnly(model.TxnID{}, objs...))
	k.StepProcess(reader) // the one-round ROT sends all its requests now
	for _, q := range oldFirst {
		for _, m := range k.InTransitOn(sim.Link{From: reader, To: q}) {
			k.Deliver(m.ID)
		}
		if len(k.Inbox(q)) > 0 {
			k.StepProcess(q)
		}
	}
	k.Annotate(sim.EvMark, reader, "σ_old applied")

	// --- β_new = β_p · β_s ---
	script := sim.ScriptOf(beta)
	// β'_p: the shortest prefix of β containing every message c_w sends
	// to newSrv. Locate the last such send in the script.
	split := -1
	pos := 0
	for _, ev := range beta {
		switch ev.Kind {
		case sim.EvStep:
			if ev.Proc == cw {
				for _, ref := range ev.Sent {
					if ref.Link.To == newSrv {
						split = pos
					}
				}
			}
			pos++
		case sim.EvDeliver:
			pos += len(ev.Msgs)
		}
	}
	prefix := script
	var suffix []sim.ScriptStep
	if split >= 0 {
		prefix = script[:split+1]
		suffix = script[split+1:]
	} else {
		prefix = nil
		suffix = script
	}
	// β_p: remove the oldFirst servers' steps (and the deliveries of the
	// messages those steps would have sent).
	bp := prefix
	for _, q := range oldFirst {
		bp = sim.FilterProcessSteps(bp, q, highwater)
	}
	// β_s: only newSrv's steps and the deliveries feeding them, again
	// excluding messages the filtered servers never sent.
	bs := sim.StepsBy(suffix, newSrv, true)
	for _, q := range oldFirst {
		bs = sim.FilterProcessSteps(bs, q, highwater)
	}
	replay := &sim.Scripted{Steps: append(append([]sim.ScriptStep(nil), bp...), bs...)}
	sim.Run(k, replay, nil, len(replay.Steps)+8)
	if replay.Err != nil {
		return nil, fmt.Errorf("β_new replay diverged: %w", replay.Err)
	}
	k.Annotate(sim.EvMark, cw, "β_new applied")

	// --- σ_new ---
	for _, m := range k.InTransitOn(sim.Link{From: reader, To: newSrv}) {
		k.Deliver(m.ID)
	}
	if len(k.Inbox(newSrv)) > 0 {
		k.StepProcess(newSrv)
	}
	k.Annotate(sim.EvMark, newSrv, "σ_new applied")

	// --- deliver responses, complete T_r ---
	cl := d.Client(reader)
	for i := 0; i < 16 && cl.Busy(); i++ {
		delivered := false
		for _, srv := range d.Place.Servers() {
			for _, m := range k.InTransitOn(sim.Link{From: srv, To: reader}) {
				k.Deliver(m.ID)
				delivered = true
			}
		}
		if len(k.Inbox(reader)) > 0 {
			k.StepProcess(reader)
			delivered = true
		}
		if !delivered {
			break
		}
	}
	if cl.Busy() {
		return nil, ErrEscapedRounds
	}
	return cl.Results()[tid], nil
}

// Package adversary implements the impossibility proof of the paper as an
// executable attack. Given any protocol that claims fast read-only
// transactions (Definition 4) together with multi-object write
// transactions, it constructs the executions of Theorem 1:
//
//   - the setup execution Q_in → Q_0 → C_0 (Figure 1),
//   - Constructions 1 and 2 (σ_old/γ_old and σ_new/γ_new, Figure 2),
//   - the filtered execution β_new = β_p · β_s and the contradiction
//     execution γ = σ_old · β_new · σ_new (Figure 3), via deterministic
//     script replay on configuration snapshots, and
//   - the induction of Lemma 3: the prefixes α_k of the troublesome
//     execution α, cut at the messages ms_k that some server must keep
//     sending for the written values to become visible.
//
// For the "victim" protocols (naivefast, twopcfast) the adversary produces
// a concrete mixed-read execution violating Lemma 1 — the causal-
// consistency contradiction at the heart of the proof. For honest
// protocols it reports which of the four properties {W, O, V, N} the
// protocol sacrifices, reproducing the paper's Table 1 from behaviour.
package adversary

import (
	"errors"
	"fmt"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/spec"
)

// StepReport describes one induction step k of Lemma 3.
type StepReport struct {
	K int
	// Msk describes the message the server had to send (claim 1): either
	// a direct server→server message or a server→client message that
	// made the writing client relay to the other server.
	Msk string
	// Events is the number of events in the segment α'_k.
	Events int
	// NewValuesVisible must be false (claim 2); true means the claim-2
	// contradiction (execution δ) was constructed.
	NewValuesVisible bool
}

// Witness is a concrete Lemma-1-violating execution found by the attack.
type Witness struct {
	// Kind is "gamma" (claim 1, Figure 3) or "delta" (claim 2).
	Kind string
	// K is the induction step at which the contradiction arose.
	K int
	// Reader is the client that observed the mixed read.
	Reader sim.ProcessID
	// Returned maps objects to the values the read-only transaction
	// returned: a mix of initial and new values, forbidden by Lemma 1.
	Returned map[string]model.Value
	// OldValues / NewValues give the reference points.
	OldValues, NewValues map[string]model.Value
}

func (w *Witness) String() string {
	return fmt.Sprintf("%s-execution at k=%d: reader %s returned mixed values %v (old=%v new=%v)",
		w.Kind, w.K, w.Reader, w.Returned, w.OldValues, w.NewValues)
}

// Verdict is the outcome of running the theorem against a protocol.
type Verdict struct {
	Protocol string
	Claims   protocol.Claims
	// FastClaimed is true when the protocol claims all of N, O, V.
	FastClaimed bool
	// Sacrifices names the property the protocol gives up: "W"
	// (multi-object write transactions), "O" (one round), "V" (one
	// value), "N" (non-blocking), or "consistency" when the adversary
	// refuted the causal-consistency claim, or "minimal-progress" when
	// the written values never became visible.
	Sacrifices string
	// Witness is the Lemma-1 violation when Sacrifices == "consistency".
	Witness *Witness
	// Steps reports the induction prefixes α_1 ⊂ α_2 ⊂ ... examined.
	Steps []StepReport
	// Detail is a human-readable explanation.
	Detail string
}

func (v *Verdict) String() string {
	s := fmt.Sprintf("%s: sacrifices %s — %s", v.Protocol, v.Sacrifices, v.Detail)
	if v.Witness != nil {
		s += "\n  witness: " + v.Witness.String()
	}
	for _, st := range v.Steps {
		s += fmt.Sprintf("\n  α_%d: %d events, ms_%d = %s, visible=%v",
			st.K, st.Events, st.K, st.Msk, st.NewValuesVisible)
	}
	return s
}

// Attack is a configured theorem run.
type Attack struct {
	Proto protocol.Protocol
	Cfg   protocol.Config
	// MaxK bounds the induction depth (default 8).
	MaxK int
	// SegmentCap bounds the solo-run length per induction step.
	SegmentCap int
	// LastContradictionTrace holds the events of the most recent γ/δ
	// construction, for rendering (Figure 3).
	LastContradictionTrace []sim.Event
}

// NewAttack builds an attack with defaults: the paper's minimal system (2
// servers, 1 object each, ≥ 4 clients).
func NewAttack(p protocol.Protocol) *Attack {
	return &Attack{
		Proto:      p,
		Cfg:        protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Readers: 6, Seed: 42},
		MaxK:       8,
		SegmentCap: 4000,
	}
}

// newValues returns the values Tw writes (one per object).
func newValues(objs []string) map[string]model.Value {
	out := make(map[string]model.Value, len(objs))
	for _, o := range objs {
		out[o] = model.Value("new_" + o)
	}
	return out
}

// Run executes the theorem against the protocol.
func (a *Attack) Run() (*Verdict, error) {
	claims := a.Proto.Claims()
	v := &Verdict{Protocol: a.Proto.Name(), Claims: claims, FastClaimed: claims.FastROT()}

	// Gate 1: protocols without multi-object write transactions sacrifice
	// W — the paper's conclusion for COPS-SNOW and friends. Verified
	// behaviourally, not just by the claim.
	d, err := SetupC0(a.Proto, a.Cfg)
	if err != nil {
		return nil, err
	}
	objs := d.Place.Objects()
	if len(objs) < 2 {
		return nil, fmt.Errorf("adversary: need at least 2 objects")
	}
	x0, x1 := objs[0], objs[1]
	cw := d.Clients[0]

	probe := protocol.Deploy(a.Proto, a.Cfg)
	if err := probe.InitAll(200_000); err != nil {
		return nil, err
	}
	mw := probe.RunTxn(probe.Clients[1], model.NewWriteOnly(model.TxnID{},
		model.Write{Object: x0, Value: "wprobe0"}, model.Write{Object: x1, Value: "wprobe1"}), 200_000)
	if !mw.OK() {
		v.Sacrifices = "W"
		v.Detail = "multi-object write transactions rejected: " + errStr(mw)
		return v, nil
	}

	// Gate 2: measure the fast-ROT sub-properties. A protocol that is
	// honest about paying an extra round / extra values / blocking is
	// consistent with the theorem.
	probe.Settle(200_000)
	from := probe.Kernel.Trace().Len()
	rot := probe.RunTxn(probe.Clients[0], model.NewReadOnly(model.TxnID{}, x0, x1), 400_000)
	if rot == nil || !rot.OK() {
		return nil, fmt.Errorf("adversary: measurement ROT failed under %s", a.Proto.Name())
	}
	m := spec.MeasureResult(probe, from, rot)
	switch {
	case m.Rounds > 1:
		v.Sacrifices = "O"
		v.Detail = fmt.Sprintf("read-only transactions take %d rounds", m.Rounds)
		return v, nil
	case m.MaxValuesPerObject > 1 || m.ForeignValues:
		v.Sacrifices = "V"
		v.Detail = fmt.Sprintf("responses carry %d values per object (foreign values: %v)",
			m.MaxValuesPerObject, m.ForeignValues)
		return v, nil
	case m.Deferred:
		v.Sacrifices = "N"
		v.Detail = "servers defer read responses (blocking)"
		return v, nil
	}

	// The protocol exhibits fast ROTs AND multi-object writes: by
	// Theorem 1 it cannot be causally consistent. Run the induction and
	// construct the contradiction.
	w, steps, err := a.induction(d, cw)
	v.Steps = steps
	if errors.Is(err, ErrEscapedRounds) {
		v.Sacrifices = "O"
		v.Detail = "under the adversarial schedule the read-only transaction needed extra rounds (retry/repair), so the one-round property does not actually hold"
		return v, nil
	}
	if err != nil {
		return nil, err
	}
	if w != nil {
		v.Sacrifices = "consistency"
		v.Witness = w
		v.Detail = "fast ROTs + multi-object writes: the adversary constructed a mixed read violating Lemma 1"
		return v, nil
	}
	v.Sacrifices = "minimal-progress"
	v.Detail = fmt.Sprintf(
		"after %d induction steps the values written by Tw are still not visible and every step required another server message — the infinite execution α of Theorem 1",
		len(steps))
	return v, nil
}

func errStr(r *model.Result) string {
	if r == nil {
		return "did not complete"
	}
	return r.Err
}

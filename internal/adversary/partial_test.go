package adversary

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/protocols/copssnow"
	"repro/internal/protocols/naivefast"
	"repro/internal/protocols/twopcfast"
)

// partialAttack configures the general (Theorem 2) system: m servers,
// partially replicated objects, no server storing everything.
func partialAttack(p protocol.Protocol, servers int) *Attack {
	a := NewAttack(p)
	a.Cfg = protocol.Config{
		Servers: servers, ObjectsPerServer: 1, Replication: 2,
		Clients: 2, Readers: 8, Seed: 101,
	}
	return a
}

// TestTheorem2PlacementIsPartiallyReplicated sanity-checks the model of
// the appendix: overlapping replica sets, no server stores all objects.
func TestTheorem2PlacementIsPartiallyReplicated(t *testing.T) {
	pl := protocol.Replicated(3, 3, 2)
	if !pl.IsReplicated() {
		t.Fatal("placement not replicated")
	}
	for _, s := range pl.Servers() {
		if len(pl.HostedBy(s)) >= len(pl.Objects()) {
			t.Fatalf("server %s stores every object — violates the appendix model", s)
		}
	}
}

// TestTheorem2NaivefastPartialReplication: the impossibility also holds
// for partially replicated systems (Theorem 2): the adversary constructs
// the mixed read against naivefast on 3 servers with 2 replicas/object.
func TestTheorem2NaivefastPartialReplication(t *testing.T) {
	for _, servers := range []int{3, 4} {
		v, err := partialAttack(naivefast.New(), servers).Run()
		if err != nil {
			t.Fatalf("m=%d: %v", servers, err)
		}
		t.Logf("m=%d: %s", servers, v)
		if v.Sacrifices != "consistency" || v.Witness == nil {
			t.Fatalf("m=%d: verdict %q, want a consistency violation", servers, v.Sacrifices)
		}
	}
}

// TestTheorem2TwopcfastPartialReplication: the induction-based victim
// also falls in the general model.
func TestTheorem2TwopcfastPartialReplication(t *testing.T) {
	v, err := partialAttack(twopcfast.New(), 3).Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", v)
	if v.Sacrifices != "consistency" || v.Witness == nil {
		t.Fatalf("verdict %q, want a consistency violation", v.Sacrifices)
	}
}

// TestTheorem2HonestProtocolStillSacrificesW: the honest fast design keeps
// its verdict under partial replication.
func TestTheorem2HonestProtocolStillSacrificesW(t *testing.T) {
	v, err := partialAttack(copssnow.New(), 3).Run()
	if err != nil {
		t.Fatal(err)
	}
	if v.Sacrifices != "W" {
		t.Fatalf("verdict %q, want W", v.Sacrifices)
	}
}

package adversary

import (
	"repro/internal/history"
	"repro/internal/model"
)

// witnessHistory reconstructs the formal history implied by a witness
// execution, exactly as in Lemma 1's proof: the initializing writes, c_w's
// read of the initial values (T_in_r), the write-only transaction Tw, and
// the reader's mixed read-only transaction.
func witnessHistory(v *Verdict) *history.History {
	h := history.New(nil)
	objs := sortedKeys(v.Witness.OldValues)
	// Initializing writes (one client per object).
	for i, obj := range objs {
		h.Add(&history.TxnRecord{
			ID:     model.TxnID{Client: clientName("cin", i), Seq: 1},
			Client: clientName("cin", i),
			Writes: []model.Write{{Object: obj, Value: v.Witness.OldValues[obj]}},
		})
	}
	// c_w reads the initial values...
	reads := make(map[string]model.Value, len(objs))
	for _, obj := range objs {
		reads[obj] = v.Witness.OldValues[obj]
	}
	h.Add(&history.TxnRecord{
		ID: model.TxnID{Client: "cw", Seq: 1}, Client: "cw", Reads: reads,
	})
	// ... then writes the new values in one transaction.
	var writes []model.Write
	for _, obj := range objs {
		writes = append(writes, model.Write{Object: obj, Value: v.Witness.NewValues[obj]})
	}
	h.Add(&history.TxnRecord{
		ID: model.TxnID{Client: "cw", Seq: 2}, Client: "cw", Writes: writes,
	})
	// The reader observes the mixed values.
	h.Add(&history.TxnRecord{
		ID: model.TxnID{Client: string(v.Witness.Reader), Seq: 1}, Client: string(v.Witness.Reader),
		Reads: v.Witness.Returned,
	})
	return h
}

// checkCausal returns whether the history is causally consistent.
func checkCausal(h *history.History) bool { return history.CheckCausal(h).OK }

func sortedKeys(m map[string]model.Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func clientName(prefix string, i int) string {
	return prefix + string(rune('0'+i%10))
}

package adversary

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/protocols/contrarian"
	"repro/internal/protocols/cops"
	"repro/internal/protocols/copssnow"
	"repro/internal/protocols/cure"
	"repro/internal/protocols/eiger"
	"repro/internal/protocols/fatcops"
	"repro/internal/protocols/gentlerain"
	"repro/internal/protocols/naivefast"
	"repro/internal/protocols/orbe"
	"repro/internal/protocols/ramp"
	"repro/internal/protocols/spanner"
	"repro/internal/protocols/twopcfast"
	"repro/internal/protocols/wren"
)

func run(t *testing.T, p protocol.Protocol) *Verdict {
	t.Helper()
	v, err := NewAttack(p).Run()
	if err != nil {
		t.Fatalf("attack on %s failed: %v", p.Name(), err)
	}
	t.Logf("%s", v)
	return v
}

// TestNaivefastViolatesLemma1: the theorem's first victim. The adversary
// must construct the γ execution and exhibit a mixed read.
func TestNaivefastViolatesLemma1(t *testing.T) {
	v := run(t, naivefast.New())
	if v.Sacrifices != "consistency" {
		t.Fatalf("verdict = %q, want consistency", v.Sacrifices)
	}
	if v.Witness == nil {
		t.Fatal("no witness execution")
	}
	if v.Witness.Kind != "gamma" && v.Witness.Kind != "delta" {
		t.Fatalf("witness kind = %q", v.Witness.Kind)
	}
	// The witness must genuinely mix old and new values.
	sawOld, sawNew := false, false
	for obj, val := range v.Witness.Returned {
		if val == v.Witness.OldValues[obj] {
			sawOld = true
		}
		if val == v.Witness.NewValues[obj] {
			sawNew = true
		}
	}
	if !sawOld || !sawNew {
		t.Fatalf("witness is not mixed: %v", v.Witness.Returned)
	}
}

// TestTwopcfastViolatesLemma1: the second victim needs the induction —
// its prepare acknowledgements are the implicit messages ms_1, ms_2 of
// Lemma 3 — before the contradiction appears.
func TestTwopcfastViolatesLemma1(t *testing.T) {
	v := run(t, twopcfast.New())
	if v.Sacrifices != "consistency" {
		t.Fatalf("verdict = %q, want consistency", v.Sacrifices)
	}
	if v.Witness == nil {
		t.Fatal("no witness execution")
	}
	if len(v.Steps) < 2 {
		t.Fatalf("expected at least 2 induction steps (the prepare acks), got %d", len(v.Steps))
	}
	for _, s := range v.Steps {
		if s.NewValuesVisible {
			t.Fatalf("claim 2 violated at step %d but no δ verdict", s.K)
		}
	}
}

// TestHonestProtocolsSacrificeExactlyOneProperty reproduces the paper's
// conclusion: every honest design gives up exactly one of {W, O, V, N}.
func TestHonestProtocolsSacrificeExactlyOneProperty(t *testing.T) {
	cases := []struct {
		p    protocol.Protocol
		want string
	}{
		{copssnow.New(), "W"},   // fast ROTs, single-object writes (N+O+V)
		{cops.New(), "W"},       // no write transactions
		{contrarian.New(), "W"}, // no write transactions
		{gentlerain.New(), "W"}, // no write transactions
		{orbe.New(), "W"},       // no write transactions
		{wren.New(), "O"},       // cutoff round (N+V+W)
		{cure.New(), "O"},       // stable-vector round
		{spanner.New(), "N"},    // safe-time blocking (O+V+W)
		{fatcops.New(), "V"},    // fat responses (N+O+W)
	}
	for _, c := range cases {
		v := run(t, c.p)
		if v.Sacrifices != c.want {
			t.Errorf("%s: sacrifices %q, want %q (%s)", c.p.Name(), v.Sacrifices, c.want, v.Detail)
		}
		if v.Witness != nil {
			t.Errorf("%s: unexpected consistency violation: %v", c.p.Name(), v.Witness)
		}
	}
}

// TestRetryProtocolsEscapeViaExtraRounds: eiger and ramp look fast on the
// happy path but escape the adversary's trap by spending extra rounds —
// the verdict must be "sacrifices O", not a consistency violation.
func TestRetryProtocolsEscapeViaExtraRounds(t *testing.T) {
	for _, p := range []protocol.Protocol{eiger.New(), ramp.New()} {
		v := run(t, p)
		if v.Sacrifices != "O" {
			t.Errorf("%s: sacrifices %q, want O (%s)", p.Name(), v.Sacrifices, v.Detail)
		}
		if v.Witness != nil {
			t.Errorf("%s: unexpected violation witness", p.Name())
		}
	}
}

// TestSetupC0 verifies Figure 1: after setup, c_w has read the initial
// values and the system is quiescent.
func TestSetupC0(t *testing.T) {
	d, err := SetupC0(naivefast.New(), protocol.Config{Servers: 2, ObjectsPerServer: 1, Clients: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Kernel.Quiescent() {
		t.Fatal("C0 not quiescent")
	}
	vis := d.VisibleAll("r0", oldValues(d), true)
	if !vis.Visible {
		t.Fatalf("initial values not visible at C0: %+v", vis)
	}
}

// TestWitnessHistoryFailsCausalCheck ties the adversary to the formal
// checker: feeding the witness execution's transactions into the
// Definition 1 checker must yield a causal-consistency violation.
func TestWitnessHistoryFailsCausalCheck(t *testing.T) {
	v := run(t, naivefast.New())
	if v.Witness == nil {
		t.Fatal("no witness")
	}
	// Reconstruct the history the witness implies (cf. Lemma 1's proof):
	// T_in writes, c_w's initial read, Tw, and the mixed read.
	h := witnessHistory(v)
	if verdict := checkCausal(h); verdict {
		t.Fatal("witness history unexpectedly causal")
	}
}

package adversary

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// SetupC0 builds the paper's configuration C_0 (Figure 1): deploy the
// system, run the initializing transactions T_in_i and settle (Q_0), then
// let the writing client c_w run the read-only transaction T_in_r over all
// objects, returning the initial values — establishing the causal
// dependency of c_w's future writes on the initial values — and settle so
// no message is in transit.
func SetupC0(p protocol.Protocol, cfg protocol.Config) (*protocol.Deployment, error) {
	d := protocol.Deploy(p, cfg)
	if err := d.InitAll(400_000); err != nil {
		return nil, err
	}
	cw := d.Clients[0]
	objs := d.Place.Objects()
	res := d.RunTxn(cw, model.NewReadOnly(model.TxnID{}, objs...), 400_000)
	if res == nil || !res.OK() {
		return nil, fmt.Errorf("adversary: T_in_r did not complete: %v", res)
	}
	for _, obj := range objs {
		if res.Value(obj) != protocol.InitialValue(obj) {
			return nil, fmt.Errorf("adversary: T_in_r read %s = %q, want the initial value %q",
				obj, res.Value(obj), protocol.InitialValue(obj))
		}
	}
	d.Settle(400_000)
	d.Kernel.Annotate(sim.EvMark, cw, "C0: T_in_r complete, no message in transit")
	return d, nil
}

// oldValues returns the initial-value map for the deployment's objects.
func oldValues(d *protocol.Deployment) map[string]model.Value {
	out := make(map[string]model.Value)
	for _, obj := range d.Place.Objects() {
		out[obj] = protocol.InitialValue(obj)
	}
	return out
}
